GO ?= go

.PHONY: all build test vet fmt check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: build vet fmt test

# bench runs the E1-E10 microbenchmarks with allocation stats, then
# regenerates the experiment tables (including the E7 shard sweep) and
# writes them, plus the recorded seed/PR-1 baselines, to BENCH_PR2.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
	$(GO) run ./cmd/benchharness -json BENCH_PR2.json

# race exercises the concurrent paths (shard workers, engine fan-out,
# sensor epoch sinks) under the race detector; mirrored by the CI job.
.PHONY: race
race:
	$(GO) test -race ./internal/stream/... ./internal/sensor/... ./internal/plan/... ./internal/core/...
