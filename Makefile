GO ?= go

.PHONY: all build test vet fmt check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: build vet fmt test

# bench runs the E1-E10 microbenchmarks with allocation stats, then
# regenerates the experiment tables and writes them (plus the recorded seed
# baselines) to BENCH_PR1.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
	$(GO) run ./cmd/benchharness -json BENCH_PR1.json
