GO ?= go

.PHONY: all build test vet fmt check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: build vet fmt test

# bench runs the E1-E11 microbenchmarks with allocation stats, then
# regenerates the experiment tables (including the E7 shard,
# global-aggregate, multi-node, elastic/failover-armed sweeps, the
# E11 query-density sweep, the E2-remote fragment-at-worker
# comparison and the coordinator snapshot size/latency table) and
# writes them, plus the recorded seed/PR-1..PR-9 baselines, to
# $(BENCH_OUT).
BENCH_OUT ?= BENCH_PR10.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
	$(GO) run ./cmd/benchharness -json $(BENCH_OUT)

# bench-smoke compiles and runs every benchmark in every package exactly
# once, so benchmarks cannot rot uncompiled between PRs; mirrored by the
# CI bench-smoke step.
.PHONY: bench-smoke
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# race exercises the concurrent paths (shard workers, engine fan-out,
# sensor epoch sinks, the randomized serial-vs-sharded differential
# harness) under the race detector; mirrored by the CI job.
.PHONY: race
race:
	$(GO) test -race ./internal/stream/... ./internal/sensor/... ./internal/plan/... ./internal/core/...

# dist runs the serial-vs-multi-node differential under the race detector:
# random plans deploy their shard replicas over loopback shard workers
# (in-process, so both wire ends are race-checked) and over two real
# shardworker processes, and must stay multiset-identical to serial
# execution. Mirrored by the CI `distributed` job.
.PHONY: dist
dist:
	$(GO) test -race -run 'ShardDifferentialMultiNode|ShardDifferentialMixedLocalRemote|DistributedWorkerProcesses' \
		./internal/plan/ -fuzzshard.nodes=2 -fuzzshard.n=40 -v
	$(GO) test -race -run 'RemoteSensorFragment|FragmentIneligible|CompileShardedRemoteFragment|CompileShardedFragmentStaysCentral' \
		./internal/core/ ./internal/plan/ -v

# chaos runs the kill-mode differential under the race detector: random
# plans deploy with checkpointed failover armed over loopback shard
# workers — and over 2 real shardworker processes, one SIGKILLed — with a
# worker killed at a random epoch mid-run; the materialized result must
# stay multiset-equal to serial execution and Flush must stay an exact
# barrier. The stream-level matrix (kill-during-flush/-deploy, double
# failure, rejoin, wedged worker, per-operator checkpoint round-trips)
# rides along. Mirrored by the CI `distributed` job.
.PHONY: chaos
chaos:
	$(GO) test -race -run 'ShardDifferentialChaos|ChaosWorkerProcessKill' \
		./internal/plan/ -fuzzshard.kill=8 -v
	$(GO) test -race -run 'Failover|CheckpointRestore|TrimOpaqueTail' ./internal/stream/ -v
	$(GO) test -race -run 'RemoteSensorFragmentSurvivesWorkerKill|FragmentSnapshotRestart' ./internal/core/ -v
	$(GO) test -race -run 'SnapshotSaveCrashPoints' ./internal/plan/ -v

# elastic runs the join/leave/restart differential under the race
# detector: random plans serve while workers are added and removed
# (live rescales over the mux), killed (failover, then heal-back when a
# replacement rejoins), and while the coordinator itself is restarted
# mid-run and rehydrated from its snapshot — the materialized result
# must stay multiset-equal to serial execution, including the
# forced-hash-collision sweep. The PR-10 restart differentials ride
# along: shared-chain window state and sensor-fragment deployments
# must come back from a snapshot v2 file exactly as an uninterrupted
# run would have them, across all three fragment rehydration tiers.
# The stream-level elastic matrix (pool eviction/redial race,
# per-shard undeploy, rescale validation) rides along. Mirrored by
# the CI `distributed` job.
.PHONY: elastic
elastic:
	$(GO) test -race -run 'ShardDifferentialElastic|ShardDifferentialJoinLeaveRestart|RescaleLiveDeployment|RescaleHealBack|CoordinatorSnapshot|SnapshotLoadFaults|SnapshotSkipListSurfaced|SnapshotChainsRequireSharing|SharedChainRestartDifferential|ParseNodesErrors|SnapFragmentRoundTrip|CoordinatorFragmentSnapshotRestore' \
		./internal/plan/ -fuzzshard.elastic=6 -v
	$(GO) test -race -run 'ShardPoolEvictionRedialRace|ShardConnUndeploy|RescaleValidation' \
		./internal/stream/ -v
	$(GO) test -race -run 'FragmentSnapshotRestart' ./internal/core/ -v

# cover gates statement coverage of the partition-parallel core packages:
# the floors rise as coverage grows (PR 3 introduced the gate; PR 5 raised
# it with the failover subsystem; PR 6 with the wire codec + mux tests;
# PR 7 with the elastic rescale + coordinator snapshot tests; PR 8 with
# the detach/fanout and shared-prefix tests; PR 9 added the sensor floor
# with the fragment runner + churn tests; PR 10 raised the plan floor
# with the snapshot v2 restart differentials and fragment round-trip
# tests), so new code must arrive tested.
COVER_FLOOR_STREAM := 91.7
COVER_FLOOR_PLAN   := 89.5
COVER_FLOOR_SENSOR := 86.5
.PHONY: cover
cover:
	@check() { \
		pct=$$($(GO) test -cover $$1 | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$1: coverage run failed"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$2" 'BEGIN { print (p+0 >= f+0) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "$$1: coverage $$pct% below floor $$2%"; exit 1; fi; \
		echo "$$1: coverage $$pct% (floor $$2%)"; \
	}; \
	check ./internal/stream/ $(COVER_FLOOR_STREAM) && \
	check ./internal/plan/ $(COVER_FLOOR_PLAN) && \
	check ./internal/sensor/ $(COVER_FLOOR_SENSOR)

# lint runs the static analyzers the CI lint job pins (staticcheck for
# correctness/simplification findings, govulncheck for known-vulnerable
# call paths). The binaries are not vendored; when absent locally the
# target says how to get them and fails, matching CI's install step.
STATICCHECK ?= staticcheck
GOVULNCHECK ?= govulncheck
.PHONY: lint
lint:
	@command -v $(STATICCHECK) >/dev/null 2>&1 || \
		{ echo "staticcheck not found; install with: go install honnef.co/go/tools/cmd/staticcheck@2025.1.1"; exit 1; }
	@command -v $(GOVULNCHECK) >/dev/null 2>&1 || \
		{ echo "govulncheck not found; install with: go install golang.org/x/vuln/cmd/govulncheck@v1.1.4"; exit 1; }
	$(STATICCHECK) ./...
	$(GOVULNCHECK) ./...
