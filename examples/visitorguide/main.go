// Visitorguide reproduces the paper's §4 demonstration: a visitor with an
// active RFID badge walks the Moore building, asks for a machine with
// Fedora, and SmartCIS plots a route to the nearest free one — rendered as
// Figure 2-style text frames, with the live federated plan in the status
// panel.
//
//	go run ./examples/visitorguide
package main

import (
	"fmt"
	"log"

	"aspen"
)

func main() {
	app, err := aspen.NewSmartCIS(aspen.SmartCISOptions{
		Building: aspen.DefaultBuilding(),
		Seed:     2009,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()
	app.Start()

	// Scene setting: one lab is dark, a few desks are taken.
	app.SetRoomLights("L103", false)
	app.SetDeskOccupied("L101", 1, true)
	app.SetDeskOccupied("L102", 2, true)

	// Deploy the paper's workstation-monitoring query; the federated
	// optimizer pushes it in-network.
	occ, err := app.OccupancyQuery()
	if err != nil {
		log.Fatal(err)
	}

	// The visitor arrives and walks down the hallway (their mote beacon is
	// heard by successive readers, §4's "simulates moving in the building").
	app.VisitorArrives("visitor")
	app.Sched.RunFor(2e9) // two sensing epochs

	for _, waypoint := range []string{"hall1", "hall2"} {
		if err := app.MoveVisitorTo("visitor", waypoint); err != nil {
			log.Fatal(err)
		}
		app.Sched.RunFor(1e9)
	}

	// The visitor requests a free machine with Fedora.
	g, err := app.Guide("visitor", "fedora linux")
	if err != nil {
		log.Fatal(err)
	}

	status := aspen.StatusPanel(app, map[string]string{
		"occupancy plan": occ.Partition.Chosen.Desc,
		"guidance":       fmt.Sprintf("%s at %s desk %d via %s", g.Machine.Name, g.Machine.Room, g.Machine.Desk, g.Route),
	})
	fmt.Print(aspen.RenderGUI(app, aspen.GUIOptions{
		Route:   &g.Route,
		Visitor: "visitor",
		Status:  status,
	}))

	// Live query results for the demo area (double-click on a lab in the
	// real GUI; here, a snapshot).
	rows, err := occ.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noccupied desks seen by the in-network join:")
	for _, r := range rows {
		fmt.Printf("  %s desk %d (machine temp %.1f°C)\n",
			r.Vals[0].AsString(), r.Vals[1].AsInt(), r.Vals[2].AsFloat())
	}
}
