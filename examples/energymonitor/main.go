// Energymonitor exercises SmartCIS's power-management side (§2): PDU web
// interfaces are scraped every 10 s into a stream, joined with machine soft
// sensors, aggregated per room, and temperature alarms fire when a machine
// overheats — all over virtual time, so a half hour of monitoring runs in
// milliseconds.
//
//	go run ./examples/energymonitor
package main

import (
	"fmt"
	"log"

	"aspen"
)

func main() {
	app, err := aspen.NewSmartCIS(aspen.SmartCISOptions{
		Building: aspen.BuildingConfig{Labs: 3, DesksPerLab: 4, HallSpacing: 100, Offices: 1},
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()
	app.Start() // machine workload, soft sensors, PDU scraping

	energy, err := app.EnergyByRoom()
	if err != nil {
		log.Fatal(err)
	}
	alarms, err := app.AlarmQuery(45)
	if err != nil {
		log.Fatal(err)
	}
	users, err := app.ResourcesByUser()
	if err != nil {
		log.Fatal(err)
	}

	// Thirty virtual minutes of building operation.
	app.Sched.RunFor(30 * 60 * 1e9)

	fmt.Println("power draw per room (last PDU scrape window):")
	rows, err := energy.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-6s %8.1f W\n", r.Vals[0].AsString(), r.Vals[1].AsFloat())
	}

	fmt.Println("\ntop resource consumers (current window):")
	urows, err := users.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range urows {
		if i == 5 {
			break
		}
		fmt.Printf("  %-10s cpu %.2f cores, mem %.0f MB\n",
			r.Vals[0].AsString(), r.Vals[1].AsFloat(), r.Vals[2].AsFloat())
	}

	// Inject a failure: a server room overheats; the alarm query catches it
	// on the next sensing epoch.
	app.SetRoomTemp("MR1", 60)
	app.Sched.RunFor(3e9)
	arows, err := alarms.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalarms after overheating MR1 (%d rows):\n", len(arows))
	seen := map[string]bool{}
	for _, r := range arows {
		key := r.Vals[0].AsString()
		if !seen[key] {
			seen[key] = true
			fmt.Printf("  ALARM room=%s temp=%.1f°C\n", key, r.Vals[2].AsFloat())
		}
	}

	m := app.Net.Metrics()
	fmt.Printf("\nradio traffic for the whole session: %d messages, %.1f mJ\n",
		m.Sent, m.EnergyMJ)
}
