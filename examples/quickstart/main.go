// Quickstart: a bare ASPEN runtime integrating one stream and one table
// with a continuous windowed join — no sensors, no building, ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aspen"
)

func main() {
	rt := aspen.NewRuntime(aspen.RuntimeConfig{})
	defer rt.Close()

	// A machine-room temperature stream.
	temps := aspen.NewStreamSchema("Temps",
		aspen.Col("machine", aspen.TString), aspen.Col("deg", aspen.TFloat))
	in, err := rt.RegisterStream("Temps", temps, 10)
	if err != nil {
		log.Fatal(err)
	}

	// A static table mapping machines to rooms.
	rooms := aspen.NewSchema("Placement",
		aspen.Col("machine", aspen.TString), aspen.Col("room", aspen.TString))
	rel := aspen.NewRelation(rooms)
	rel.MustInsert(aspen.Str("srv-1"), aspen.Str("MR1"))
	rel.MustInsert(aspen.Str("srv-2"), aspen.Str("MR1"))
	rel.MustInsert(aspen.Str("ws-1"), aspen.Str("L101"))
	if err := rt.RegisterTable("Placement", rel); err != nil {
		log.Fatal(err)
	}

	// Average temperature per room over the last 50 readings, live.
	q, err := rt.Run(`SELECT p.room, avg(t.deg) AS avgdeg, count(*) AS n
		FROM Temps t [ROWS 50], Placement p
		WHERE t.machine = p.machine
		GROUP BY p.room ORDER BY p.room`)
	if err != nil {
		log.Fatal(err)
	}

	// Feed readings; the result maintains itself incrementally.
	for i := 0; i < 60; i++ {
		m := []string{"srv-1", "srv-2", "ws-1"}[i%3]
		in.Push(aspen.NewTuple(aspen.Time(i+1),
			aspen.Str(m), aspen.Float(20+float64(i%10))))
	}

	rows, err := q.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("room      avg(deg)  n")
	for _, r := range rows {
		fmt.Printf("%-9s %-9.2f %d\n",
			r.Vals[0].AsString(), r.Vals[1].AsFloat(), r.Vals[2].AsInt())
	}
}
