// Labfinder runs the paper's Figure 1 query end to end through StreamSQL:
// the OpenMachineInfo view over area and seat sensors, joined with the
// Machines table and a visitor's needs, listing free machines with the
// requested capability in open labs — and shows how the result reacts as
// labs close and seats fill.
//
//	go run ./examples/labfinder
package main

import (
	"fmt"
	"log"

	"aspen"
)

func main() {
	app, err := aspen.NewSmartCIS(aspen.SmartCISOptions{
		Building: aspen.BuildingConfig{Labs: 3, DesksPerLab: 3, HallSpacing: 100},
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	// Figure 1's view, over the raw light streams ('open' and 'free'
	// become light-level thresholds; see DESIGN.md):
	// AreaSensors(room, light) and SeatSensors(room, desk, light) are
	// created by SmartCIS at startup. Define the free-machine view.
	if _, err := app.RT.Run(`CREATE VIEW OpenMachineInfo AS (
		SELECT ss.room AS room, ss.desk AS desk FROM AreaSensors sa, SeatSensors ss
		WHERE sa.room = ss.room)`); err != nil {
		log.Fatal(err)
	}

	// The body of Figure 1's rewritten query, bound to a concrete need.
	q, err := app.RT.Run(`SELECT O.room, O.desk, m.name
		FROM OpenMachineInfo O, Machines m
		WHERE O.room = m.room AND O.desk = m.desk AND m.software LIKE '%fedora%'
		ORDER BY O.room`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("federated plan:", q.Partition.Chosen.Desc)
	for _, alt := range q.Partition.Alternatives {
		fmt.Printf("  candidate: %-50s unified cost %.5f\n", alt.Desc, alt.Unified)
	}

	show := func(label string) {
		app.Sched.RunFor(2e9) // let sensing epochs refresh the windows
		rows, err := q.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s → %d candidates\n", label, len(rows))
		seen := map[string]bool{}
		for _, r := range rows {
			key := fmt.Sprintf("%s#%d", r.Vals[0].AsString(), r.Vals[1].AsInt())
			if !seen[key] {
				seen[key] = true
				fmt.Printf("  %s desk %d: %s\n",
					r.Vals[0].AsString(), r.Vals[1].AsInt(), r.Vals[2].AsString())
			}
		}
	}

	show("all labs open, all seats free")

	app.SetDeskOccupied("L101", 1, true)
	show("after someone sits at L101 desk 1")

	app.SetRoomLights("L102", false)
	show("after L102 closes")
}
