package data

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation. Rel is the relation alias
// that qualifies the column ("ss" in "ss.room"); it may be empty for computed
// columns.
type Column struct {
	Rel  string
	Name string
	Type Type
}

// QName returns the qualified column name.
func (c Column) QName() string {
	if c.Rel == "" {
		return c.Name
	}
	return c.Rel + "." + c.Name
}

// Schema describes the shape of a relation or stream.
type Schema struct {
	Name     string // relation name (catalog name or alias)
	Cols     []Column
	IsStream bool // stream (unbounded, timestamped) vs stored table
}

// NewSchema builds a schema whose columns are all qualified by rel.
func NewSchema(rel string, cols ...Column) *Schema {
	s := &Schema{Name: rel, Cols: make([]Column, len(cols))}
	copy(s.Cols, cols)
	for i := range s.Cols {
		if s.Cols[i].Rel == "" {
			s.Cols[i].Rel = rel
		}
	}
	return s
}

// Col is a convenience constructor for Column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Cols) }

// ColIndex resolves a possibly-qualified column reference to an index.
// "alias.col" matches exactly; a bare "col" matches if unambiguous. The
// second result is an error describing failure.
func (s *Schema) ColIndex(ref string) (int, error) {
	rel, name := SplitQualified(ref)
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if rel != "" && !strings.EqualFold(c.Rel, rel) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("data: ambiguous column %q in %s", ref, s.Name)
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("data: no column %q in %s(%s)", ref, s.Name, s.ColNames())
	}
	return found, nil
}

// MustColIndex is ColIndex for schemas known statically; it panics on error.
func (s *Schema) MustColIndex(ref string) int {
	i, err := s.ColIndex(ref)
	if err != nil {
		panic(err)
	}
	return i
}

// HasCol reports whether ref resolves in this schema.
func (s *Schema) HasCol(ref string) bool {
	_, err := s.ColIndex(ref)
	return err == nil
}

// ColNames returns a comma-separated list of qualified column names.
func (s *Schema) ColNames() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.QName()
	}
	return strings.Join(parts, ", ")
}

// Rename returns a copy of the schema with every column re-qualified by
// alias and the schema renamed.
func (s *Schema) Rename(alias string) *Schema {
	out := &Schema{Name: alias, IsStream: s.IsStream, Cols: make([]Column, len(s.Cols))}
	copy(out.Cols, s.Cols)
	for i := range out.Cols {
		out.Cols[i].Rel = alias
	}
	return out
}

// Concat returns the schema of the join of s and o (columns of s then o).
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{
		Name:     s.Name + "⋈" + o.Name,
		IsStream: s.IsStream || o.IsStream,
		Cols:     make([]Column, 0, len(s.Cols)+len(o.Cols)),
	}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// Project returns a schema containing the columns at the given indexes.
func (s *Schema) Project(idx []int) *Schema {
	out := &Schema{Name: s.Name, IsStream: s.IsStream, Cols: make([]Column, len(idx))}
	for i, j := range idx {
		out.Cols[i] = s.Cols[j]
	}
	return out
}

// Equal reports structural equality of schemas (names, relations, types).
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Cols) != len(o.Cols) || s.IsStream != o.IsStream {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	if s.IsStream {
		b.WriteString(" [stream]")
	}
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.QName(), c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// SplitQualified splits "rel.col" into its parts; a bare name yields an
// empty rel.
func SplitQualified(ref string) (rel, name string) {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return "", ref
}
