package data

import "math"

// FNV-1a constants.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Fnv64 hashes b with 64-bit FNV-1a.
func Fnv64(b []byte) uint64 {
	h := fnvOffset64
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// Hasher computes 64-bit hashes of tuple keys without materializing key
// strings: values are folded into an FNV-1a state through a binary
// canonical encoding that mirrors Value.AppendKey branch for branch (ints
// hash as float bits when exactly representable, strings are
// length-prefixed, every value carries its type tag), so two tuples hash
// identically exactly when their canonical keys are equal. Steady-state
// hashing performs no heap allocation. Distinct keys may collide, so
// hash-table users must keep collision buckets and verify candidates with
// EqualVals / EqualOn.
type Hasher struct{}

// Hash returns the hash of the tuple's full canonical key (all values; TS
// and Op excluded). Tuples with equal Key() hash identically.
func (h *Hasher) Hash(t Tuple) uint64 { return h.HashOn(t, nil) }

// HashOn returns the hash of the canonical key of the values at idx (all
// values when idx is nil). Tuples with equal KeyOn(idx) hash identically.
func (h *Hasher) HashOn(t Tuple, idx []int) uint64 {
	hv := fnvOffset64
	if idx == nil {
		for i := range t.Vals {
			hv = hashValue(hv, t.Vals[i])
		}
		return hv
	}
	for _, j := range idx {
		hv = hashValue(hv, t.Vals[j])
	}
	return hv
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

func fnvWord(h uint64, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime64
		w >>= 8
	}
	return h
}

// hashValue folds one value into the FNV state, following the same
// numeric-coercion branches as Value.AppendKey so that grouping by hash
// agrees with grouping by canonical key.
func hashValue(h uint64, v Value) uint64 {
	switch v.T {
	case TNull:
		return fnvByte(h, 'n')
	case TInt:
		if f := float64(v.I); int64(f) == v.I {
			return fnvWord(fnvByte(h, 'f'), math.Float64bits(f))
		}
		return fnvWord(fnvByte(h, 'i'), uint64(v.I))
	case TFloat:
		f := v.F
		if f != f {
			// All NaNs share one canonical encoding, like AppendKey's "NaN".
			f = math.NaN()
		}
		if i := int64(f); float64(i) == f {
			// Mirror TInt's exact-integer branch (and fold -0 onto +0,
			// since int64(-0.0) == 0 round-trips exactly).
			return fnvWord(fnvByte(h, 'f'), math.Float64bits(float64(i)))
		}
		return fnvWord(fnvByte(h, 'f'), math.Float64bits(f))
	case TString:
		h = fnvWord(fnvByte(h, 's'), uint64(len(v.S)))
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= fnvPrime64
		}
		return h
	case TBool:
		if v.I != 0 {
			return fnvByte(h, 'T')
		}
		return fnvByte(h, 'F')
	case TTime:
		return fnvWord(fnvByte(h, 't'), uint64(v.I))
	}
	return fnvByte(h, '?')
}
