package data

import (
	"strings"

	"aspen/internal/vtime"
)

// Op is the polarity of a tuple flowing through an engine: a normal insertion
// or a retraction produced by incremental view maintenance.
type Op uint8

// Tuple polarities.
const (
	Insert Op = iota
	Delete
)

// String names the polarity.
func (o Op) String() string {
	if o == Delete {
		return "-"
	}
	return "+"
}

// Tuple is one timestamped row. Vals is positional with respect to the
// owning operator's schema.
type Tuple struct {
	Vals []Value
	TS   vtime.Time
	Op   Op
}

// NewTuple builds an insert tuple at timestamp ts.
func NewTuple(ts vtime.Time, vals ...Value) Tuple {
	return Tuple{Vals: vals, TS: ts}
}

// Clone deep-copies the tuple (the Vals slice is copied).
func (t Tuple) Clone() Tuple {
	vals := make([]Value, len(t.Vals))
	copy(vals, t.Vals)
	return Tuple{Vals: vals, TS: t.TS, Op: t.Op}
}

// CloneInto deep-copies the tuple into dst's backing array when its
// capacity suffices, allocating only on growth; operators use it with
// pooled buffers to keep steady-state cloning allocation-free.
func (t Tuple) CloneInto(dst []Value) Tuple {
	return Tuple{Vals: append(dst[:0], t.Vals...), TS: t.TS, Op: t.Op}
}

// Negate returns the tuple with flipped polarity.
func (t Tuple) Negate() Tuple {
	if t.Op == Insert {
		t.Op = Delete
	} else {
		t.Op = Insert
	}
	return t
}

// Concat returns the concatenation of t and o's values, keeping t's
// timestamp if later, else o's (join output carries the max event time).
func (t Tuple) Concat(o Tuple) Tuple {
	return t.ConcatInto(make([]Value, 0, len(t.Vals)+len(o.Vals)), o)
}

// ConcatInto is Concat writing the concatenated values into dst's backing
// array when its capacity suffices. The result aliases dst; callers that
// hand it to a retaining consumer must Clone first.
func (t Tuple) ConcatInto(dst []Value, o Tuple) Tuple {
	vals := append(dst[:0], t.Vals...)
	vals = append(vals, o.Vals...)
	ts := t.TS
	if o.TS > ts {
		ts = o.TS
	}
	op := Insert
	if t.Op != o.Op {
		// delta join: (+a)(-b) or (-a)(+b) yields a retraction
		op = Delete
	} else if t.Op == Delete {
		// (-a)(-b) yields an insertion in delta algebra; for the engines here
		// both inputs are never simultaneously deltas of opposite polarity,
		// but the algebra is kept correct regardless.
		op = Insert
	}
	return Tuple{Vals: vals, TS: ts, Op: op}
}

// Project returns a tuple with the values at the given indexes.
func (t Tuple) Project(idx []int) Tuple {
	vals := make([]Value, len(idx))
	for i, j := range idx {
		vals[i] = t.Vals[j]
	}
	return Tuple{Vals: vals, TS: t.TS, Op: t.Op}
}

// EqualVals reports positional SQL equality of values (ignores TS and Op).
func (t Tuple) EqualVals(o Tuple) bool {
	if len(t.Vals) != len(o.Vals) {
		return false
	}
	for i := range t.Vals {
		a, b := t.Vals[i], o.Vals[i]
		if a.IsNull() && b.IsNull() {
			continue
		}
		if !a.Equal(b) {
			return false
		}
	}
	return true
}

// EqualOn reports SQL equality between t's values at idx and o's values at
// oIdx (same length), with NULLs comparing equal — exactly the equality the
// canonical key encoding captures. Hash-table users call it to verify
// candidates that share a 64-bit key hash.
func (t Tuple) EqualOn(idx []int, o Tuple, oIdx []int) bool {
	for i := range idx {
		a, b := t.Vals[idx[i]], o.Vals[oIdx[i]]
		if a.IsNull() || b.IsNull() {
			if a.IsNull() != b.IsNull() {
				return false
			}
			continue
		}
		if !a.Equal(b) {
			return false
		}
	}
	return true
}

// HashOn returns the 64-bit hash of the canonical key of the values at idx
// (all values when idx is nil), written through h's reusable buffer.
func (t Tuple) HashOn(h *Hasher, idx []int) uint64 { return h.HashOn(t, idx) }

// Key returns a canonical encoding of all values, usable as a map key for
// set semantics and provenance identity. TS and Op are excluded.
func (t Tuple) Key() string {
	return string(t.AppendKey(nil, nil))
}

// KeyOn returns the canonical encoding of the values at idx only.
func (t Tuple) KeyOn(idx []int) string {
	return string(t.AppendKey(nil, idx))
}

// AppendKey appends the canonical encoding of the values at idx (all values
// when idx is nil) to buf.
func (t Tuple) AppendKey(buf []byte, idx []int) []byte {
	if idx == nil {
		for i := range t.Vals {
			buf = t.Vals[i].AppendKey(buf)
			buf = append(buf, '|')
		}
		return buf
	}
	for _, j := range idx {
		buf = t.Vals[j].AppendKey(buf)
		buf = append(buf, '|')
	}
	return buf
}

// String renders the tuple for diagnostics.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteString(t.Op.String())
	b.WriteByte('(')
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(")@")
	b.WriteString(t.TS.String())
	return b.String()
}
