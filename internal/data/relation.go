package data

import (
	"fmt"
	"sort"
	"sync"
)

// Relation is a thread-safe in-memory bag of tuples with a fixed schema.
// It backs the DB wrapper, catalog tables and tests.
type Relation struct {
	mu     sync.RWMutex
	schema *Schema
	rows   []Tuple
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Insert appends a row after checking arity and types.
func (r *Relation) Insert(t Tuple) error {
	if len(t.Vals) != r.schema.Arity() {
		return fmt.Errorf("data: arity mismatch inserting into %s: got %d vals, want %d",
			r.schema.Name, len(t.Vals), r.schema.Arity())
	}
	for i, v := range t.Vals {
		want := r.schema.Cols[i].Type
		if v.T != TNull && v.T != want && !(v.T.Numeric() && want.Numeric()) {
			return fmt.Errorf("data: type mismatch in %s.%s: got %s, want %s",
				r.schema.Name, r.schema.Cols[i].Name, v.T, want)
		}
	}
	r.mu.Lock()
	r.rows = append(r.rows, t.Clone())
	r.mu.Unlock()
	return nil
}

// MustInsert inserts vals as a row and panics on error; for static data.
func (r *Relation) MustInsert(vals ...Value) {
	if err := r.Insert(Tuple{Vals: vals}); err != nil {
		panic(err)
	}
}

// Delete removes all rows with values equal to t's, returning the count.
func (r *Relation) Delete(t Tuple) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	out := r.rows[:0]
	for _, row := range r.rows {
		if row.EqualVals(t) {
			n++
			continue
		}
		out = append(out, row)
	}
	r.rows = out
	return n
}

// Len returns the row count.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rows)
}

// Scan calls fn for each row (a private copy) until fn returns false.
func (r *Relation) Scan(fn func(Tuple) bool) {
	r.mu.RLock()
	snapshot := make([]Tuple, len(r.rows))
	copy(snapshot, r.rows)
	r.mu.RUnlock()
	for _, row := range snapshot {
		if !fn(row.Clone()) {
			return
		}
	}
}

// Rows returns a deep copy of all rows.
func (r *Relation) Rows() []Tuple {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Tuple, len(r.rows))
	for i, row := range r.rows {
		out[i] = row.Clone()
	}
	return out
}

// SortedRows returns rows sorted by their canonical key; handy for
// deterministic test assertions.
func (r *Relation) SortedRows() []Tuple {
	rows := r.Rows()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key() < rows[j].Key() })
	return rows
}

// Clear removes all rows.
func (r *Relation) Clear() {
	r.mu.Lock()
	r.rows = r.rows[:0]
	r.mu.Unlock()
}
