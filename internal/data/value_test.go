package data

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"aspen/internal/vtime"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		typ  Type
		i    int64
		f    float64
		b    bool
		s    string
		repr string
	}{
		{Int(42), TInt, 42, 42, true, "42", "42"},
		{Int(0), TInt, 0, 0, false, "0", "0"},
		{Float(2.5), TFloat, 2, 2.5, true, "2.5", "2.5"},
		{Str("hi"), TString, 0, 0, true, "hi", "hi"},
		{Str(""), TString, 0, 0, false, "", ""},
		{Bool(true), TBool, 1, 1, true, "true", "true"},
		{Bool(false), TBool, 0, 0, false, "false", "false"},
		{Null, TNull, 0, 0, false, "NULL", "NULL"},
		{TimeVal(vtime.Second), TTime, int64(vtime.Second), float64(vtime.Second), true, "1s", "1s"},
	}
	for _, c := range cases {
		if c.v.T != c.typ {
			t.Errorf("%v: type = %v, want %v", c.v, c.v.T, c.typ)
		}
		if got := c.v.AsInt(); got != c.i {
			t.Errorf("%v: AsInt = %d, want %d", c.v, got, c.i)
		}
		if got := c.v.AsFloat(); got != c.f {
			t.Errorf("%v: AsFloat = %g, want %g", c.v, got, c.f)
		}
		if got := c.v.AsBool(); got != c.b {
			t.Errorf("%v: AsBool = %t, want %t", c.v, got, c.b)
		}
		if got := c.v.AsString(); got != c.s {
			t.Errorf("%v: AsString = %q, want %q", c.v, got, c.s)
		}
		if got := c.v.String(); got != c.repr {
			t.Errorf("String = %q, want %q", got, c.repr)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.5), -1, true},
		{Float(1.5), Int(1), 1, true},
		{Int(1), Float(1.0), 0, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{TimeVal(1), TimeVal(2), -1, true},
		{Null, Int(1), 0, false},
		{Int(1), Null, 0, false},
		{Null, Null, 0, false},
		{Str("1"), Int(1), 0, false},
		{Bool(true), Int(1), 0, false},
	}
	for _, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v, %v) = %d,%t want %d,%t", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestValueEqualCoercion(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Null.Equal(Null) {
		t.Error("NULL must not equal NULL")
	}
}

// Property: key encoding respects SQL equality — equal values have equal
// keys, and numerically equal int/float pairs share a key.
func TestValueKeyConsistentWithEqual(t *testing.T) {
	f := func(i int64, g float64, s string) bool {
		if math.IsNaN(g) {
			return true
		}
		vi, vf, vs := Int(i), Float(g), Str(s)
		if vi.Equal(vf) != (vi.Key() == vf.Key()) {
			return false
		}
		if vi.Key() == vs.Key() || vf.Key() == vs.Key() {
			return false
		}
		return vi.Key() == Int(i).Key() && vf.Key() == Float(g).Key() && vs.Key() == Str(s).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and total on non-null same-type values.
func TestValueCompareAntisymmetric(t *testing.T) {
	gen := func(r *rand.Rand) Value {
		switch r.Intn(4) {
		case 0:
			return Int(r.Int63n(100) - 50)
		case 1:
			return Float(r.Float64()*100 - 50)
		case 2:
			return Str(string(rune('a' + r.Intn(26))))
		default:
			return Bool(r.Intn(2) == 0)
		}
	}
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 2000; n++ {
		a, b := gen(r), gen(r)
		ab, ok1 := a.Compare(b)
		ba, ok2 := b.Compare(a)
		if ok1 != ok2 {
			t.Fatalf("comparability not symmetric: %v vs %v", a, b)
		}
		if ok1 && ab != -ba {
			t.Fatalf("Compare(%v,%v)=%d but Compare(%v,%v)=%d", a, b, ab, b, a, ba)
		}
	}
}

func TestValueKeyDistinctStrings(t *testing.T) {
	// The length-prefixed string encoding must not collide across boundaries.
	a := Tuple{Vals: []Value{Str("ab"), Str("c")}}
	b := Tuple{Vals: []Value{Str("a"), Str("bc")}}
	if a.Key() == b.Key() {
		t.Fatal("tuple keys collide across string boundaries")
	}
}

func TestTypeString(t *testing.T) {
	want := map[Type]string{TNull: "NULL", TInt: "INT", TFloat: "FLOAT", TString: "STRING", TBool: "BOOL", TTime: "TIME"}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still format")
	}
	if !TInt.Numeric() || !TFloat.Numeric() || TString.Numeric() {
		t.Error("Numeric misclassifies")
	}
}

var sinkKey string

func BenchmarkValueKey(b *testing.B) {
	v := Str("machine-state-stream-value")
	for i := 0; i < b.N; i++ {
		sinkKey = v.Key()
	}
}

func TestQuickValueRoundTripVia(t *testing.T) {
	// AsInt/AsFloat coercions agree for integral floats.
	f := func(i int32) bool {
		v := Float(float64(i))
		return v.AsInt() == int64(i) && Int(int64(i)).AsFloat() == float64(i)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	_ = reflect.TypeOf(f)
}
