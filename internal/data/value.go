// Package data defines the relational data model shared by every ASPEN
// engine: typed values, schemas, and timestamped tuples.
//
// Tuples carry an insert/delete polarity so the same operator pipeline can
// process both base streams and the +/- deltas produced by incremental view
// maintenance (see internal/views).
package data

import (
	"fmt"
	"strconv"
	"strings"

	"aspen/internal/vtime"
)

// Type enumerates the value types of the StreamSQL type system.
type Type uint8

// Value types.
const (
	TNull Type = iota
	TInt
	TFloat
	TString
	TBool
	TTime
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	case TBool:
		return "BOOL"
	case TTime:
		return "TIME"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Numeric reports whether the type participates in arithmetic.
func (t Type) Numeric() bool { return t == TInt || t == TFloat }

// Value is a tagged union holding one StreamSQL value. The zero Value is
// NULL. Values are comparable with == only when both operands were produced
// by the same constructor (no numeric coercion); use Equal or Compare for
// SQL semantics.
type Value struct {
	T Type
	I int64 // TInt payload; TBool as 0/1; TTime as nanoseconds
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{T: TInt, I: i} }

// Float returns a floating point value.
func Float(f float64) Value { return Value{T: TFloat, F: f} }

// String_ returns a string value. (Named with a trailing underscore because
// Value already has a String method.)
func String_(s string) Value { return Value{T: TString, S: s} }

// Str is shorthand for String_.
func Str(s string) Value { return String_(s) }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{T: TBool, I: 1}
	}
	return Value{T: TBool}
}

// TimeVal returns a time value.
func TimeVal(t vtime.Time) Value { return Value{T: TTime, I: int64(t)} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.T == TNull }

// AsInt returns the value as int64, coercing floats by truncation.
func (v Value) AsInt() int64 {
	switch v.T {
	case TInt, TBool, TTime:
		return v.I
	case TFloat:
		return int64(v.F)
	}
	return 0
}

// AsFloat returns the value as float64, coercing integers.
func (v Value) AsFloat() float64 {
	switch v.T {
	case TInt, TBool, TTime:
		return float64(v.I)
	case TFloat:
		return v.F
	}
	return 0
}

// AsBool returns the truth value; NULL is false.
func (v Value) AsBool() bool {
	switch v.T {
	case TBool, TInt, TTime:
		return v.I != 0
	case TFloat:
		return v.F != 0
	case TString:
		return v.S != ""
	}
	return false
}

// AsString returns the string payload for TString and a formatted rendering
// otherwise.
func (v Value) AsString() string {
	if v.T == TString {
		return v.S
	}
	return v.String()
}

// AsTime returns the value as a vtime.Time.
func (v Value) AsTime() vtime.Time { return vtime.Time(v.I) }

// String renders the value for display.
func (v Value) String() string {
	switch v.T {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	case TBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case TTime:
		return vtime.Time(v.I).String()
	}
	return "?"
}

// Equal reports SQL equality with numeric coercion. NULL equals nothing,
// including NULL (use IsNull to test for NULL).
func (v Value) Equal(o Value) bool {
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Compare orders two values: -1, 0, +1. The second result is false when the
// values are incomparable (NULL involved, or mixed non-numeric types).
func (v Value) Compare(o Value) (int, bool) {
	if v.T == TNull || o.T == TNull {
		return 0, false
	}
	if v.T.Numeric() && o.T.Numeric() {
		if v.T == TInt && o.T == TInt {
			return cmpInt(v.I, o.I), true
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
	if v.T != o.T {
		return 0, false
	}
	switch v.T {
	case TString:
		return strings.Compare(v.S, o.S), true
	case TBool, TTime:
		return cmpInt(v.I, o.I), true
	}
	return 0, false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// AppendKey appends a canonical, collision-free encoding of the value to buf,
// for use as a hash/group key. Numerically equal INT and FLOAT values encode
// identically so that grouping follows SQL equality.
func (v Value) AppendKey(buf []byte) []byte {
	switch v.T {
	case TNull:
		return append(buf, 'n')
	case TInt:
		// Encode integral values in a float-compatible way when exact.
		if f := float64(v.I); int64(f) == v.I {
			buf = append(buf, 'f')
			return strconv.AppendFloat(buf, f, 'b', -1, 64)
		}
		buf = append(buf, 'i')
		return strconv.AppendInt(buf, v.I, 36)
	case TFloat:
		buf = append(buf, 'f')
		return strconv.AppendFloat(buf, v.F, 'b', -1, 64)
	case TString:
		buf = append(buf, 's')
		buf = strconv.AppendInt(buf, int64(len(v.S)), 10)
		buf = append(buf, ':')
		return append(buf, v.S...)
	case TBool:
		if v.I != 0 {
			return append(buf, 'T')
		}
		return append(buf, 'F')
	case TTime:
		buf = append(buf, 't')
		return strconv.AppendInt(buf, v.I, 36)
	}
	return append(buf, '?')
}

// Key returns the canonical key encoding as a string.
func (v Value) Key() string { return string(v.AppendKey(nil)) }
