package data

import (
	"math"
	"testing"
)

// Canonical keys must be injection-proof: values containing the tuple
// delimiter or each other's prefixes must not alias across column
// boundaries.
func TestKeyDelimiterInjection(t *testing.T) {
	cases := [][2]Tuple{
		{NewTuple(0, Str("a|"), Str("b")), NewTuple(0, Str("a"), Str("|b"))},
		{NewTuple(0, Str("a"), Str("bc")), NewTuple(0, Str("ab"), Str("c"))},
		{NewTuple(0, Str(""), Str("x")), NewTuple(0, Str("x"), Str(""))},
		{NewTuple(0, Str("s12:"), Str("")), NewTuple(0, Str("s"), Str("12:"))},
		{NewTuple(0, Str("1")), NewTuple(0, Int(1))},
		{NewTuple(0, Str("true")), NewTuple(0, Bool(true))},
	}
	var h Hasher
	for _, c := range cases {
		a, b := c[0], c[1]
		if a.Key() == b.Key() {
			t.Errorf("keys alias: %v vs %v -> %q", a, b, a.Key())
		}
		if a.EqualVals(b) {
			t.Errorf("EqualVals claims %v == %v", a, b)
		}
		// Hash equality is allowed to collide in principle, but these
		// specific non-equal keys must not (they are the collision-safety
		// cases the encoding is designed for).
		if h.Hash(a) == h.Hash(b) {
			t.Errorf("hashes alias: %v vs %v", a, b)
		}
	}
}

// Numerically equal INT and FLOAT values must share one key and one hash,
// so grouping follows SQL equality across types.
func TestKeyIntFloatCrossType(t *testing.T) {
	var h Hasher
	pairs := [][2]Value{
		{Int(0), Float(0)},
		{Int(1), Float(1)},
		{Int(-7), Float(-7)},
		{Int(1 << 40), Float(1 << 40)},
	}
	for _, p := range pairs {
		a, b := NewTuple(0, p[0]), NewTuple(0, p[1])
		if a.Key() != b.Key() {
			t.Errorf("keys differ: %v vs %v", p[0], p[1])
		}
		if h.Hash(a) != h.Hash(b) {
			t.Errorf("hashes differ: %v vs %v", p[0], p[1])
		}
		if !a.EqualVals(b) {
			t.Errorf("EqualVals(%v, %v) = false", p[0], p[1])
		}
	}
	// Non-equal numerics must not alias.
	if h.Hash(NewTuple(0, Int(1))) == h.Hash(NewTuple(0, Float(1.5))) {
		t.Error("1 and 1.5 hash alike")
	}
}

// Hash equality must follow key equality on mixed multi-column tuples,
// including NULLs, bools, and times, for full keys and key subsets.
func TestHashOnFollowsKeyOn(t *testing.T) {
	var h Hasher
	tuples := []Tuple{
		NewTuple(1, Str("L1"), Int(3), Float(20.5), Bool(true)),
		NewTuple(2, Str("L1"), Int(3), Float(20.5), Bool(true)), // same key, other TS
		NewTuple(3, Str("L1"), Float(3), Float(20.5), Bool(true)),
		NewTuple(4, Str("L2"), Int(3), Null, Bool(false)),
		NewTuple(5, Null, Null, Null, Null),
		NewTuple(6, TimeVal(99), Int(0), Str(""), Bool(false)),
	}
	idxSets := [][]int{nil, {0}, {1, 2}, {0, 3}, {}}
	for _, idx := range idxSets {
		for i := range tuples {
			for j := range tuples {
				ki, kj := tuples[i].KeyOn(idx), tuples[j].KeyOn(idx)
				hi, hj := h.HashOn(tuples[i], idx), h.HashOn(tuples[j], idx)
				if (ki == kj) != (hi == hj) {
					t.Errorf("idx %v: key eq %v but hash eq %v for %v vs %v",
						idx, ki == kj, hi == hj, tuples[i], tuples[j])
				}
			}
		}
	}
}

func TestEqualOn(t *testing.T) {
	a := NewTuple(0, Str("L1"), Int(2), Float(2))
	b := NewTuple(9, Int(2), Str("L1"))
	if !a.EqualOn([]int{0, 1}, b, []int{1, 0}) {
		t.Error("cross-position equality failed")
	}
	if !a.EqualOn([]int{1}, a, []int{2}) {
		t.Error("int/float coercion failed in EqualOn")
	}
	if a.EqualOn([]int{0}, b, []int{0}) {
		t.Error("unequal values compared equal")
	}
	// NULLs compare equal under key semantics.
	n1, n2 := NewTuple(0, Null), NewTuple(0, Null)
	if !n1.EqualOn([]int{0}, n2, []int{0}) {
		t.Error("NULL != NULL under key semantics")
	}
	if n1.EqualOn([]int{0}, a, []int{0}) {
		t.Error("NULL == non-NULL")
	}
	// Empty index sets are trivially equal (cross joins, global groups).
	if !a.EqualOn(nil, b, nil) {
		t.Error("empty key not equal")
	}
}

func TestHashSpecialFloats(t *testing.T) {
	var h Hasher
	// All NaNs share one canonical key ("NaN"), so they must share a hash.
	quiet := math.NaN()
	weird := math.Float64frombits(math.Float64bits(quiet) ^ 1)
	a, b := NewTuple(0, Float(quiet)), NewTuple(0, Float(weird))
	if a.Key() != b.Key() {
		t.Skip("platform NaN formatting differs")
	}
	if h.Hash(a) != h.Hash(b) {
		t.Error("NaN hashes differ")
	}
	if h.Hash(NewTuple(0, Float(math.Inf(1)))) == h.Hash(NewTuple(0, Float(math.Inf(-1)))) {
		t.Error("+Inf and -Inf hash alike")
	}
}

func TestCloneIntoAndConcatInto(t *testing.T) {
	a := NewTuple(5, Str("x"), Int(1))
	buf := make([]Value, 0, 8)
	cl := a.CloneInto(buf)
	if !cl.EqualVals(a) || cl.TS != a.TS {
		t.Fatalf("CloneInto mismatch: %v", cl)
	}
	if &cl.Vals[0] != &buf[:1][0] {
		t.Error("CloneInto did not reuse the buffer")
	}
	b := NewTuple(9, Float(2.5))
	cc := a.ConcatInto(buf, b)
	if len(cc.Vals) != 3 || cc.TS != 9 {
		t.Fatalf("ConcatInto mismatch: %v", cc)
	}
	if got := a.Concat(b); !got.EqualVals(cc) || got.TS != cc.TS || got.Op != cc.Op {
		t.Fatalf("Concat and ConcatInto disagree: %v vs %v", got, cc)
	}
}
