package data

import (
	"strings"
	"testing"
)

func seatSensors() *Schema {
	return NewSchema("ss",
		Col("room", TString),
		Col("desk", TInt),
		Col("status", TString),
	)
}

func TestSchemaColIndex(t *testing.T) {
	s := seatSensors()
	if i := s.MustColIndex("desk"); i != 1 {
		t.Fatalf("desk index = %d", i)
	}
	if i := s.MustColIndex("ss.room"); i != 0 {
		t.Fatalf("ss.room index = %d", i)
	}
	if _, err := s.ColIndex("nope"); err == nil {
		t.Fatal("expected error for missing column")
	}
	if _, err := s.ColIndex("other.room"); err == nil {
		t.Fatal("expected error for wrong qualifier")
	}
	// case-insensitive resolution
	if i := s.MustColIndex("SS.ROOM"); i != 0 {
		t.Fatalf("case-insensitive index = %d", i)
	}
}

func TestSchemaAmbiguity(t *testing.T) {
	j := seatSensors().Concat(NewSchema("sa", Col("room", TString), Col("status", TString)))
	if _, err := j.ColIndex("room"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
	if i := j.MustColIndex("sa.room"); i != 3 {
		t.Fatalf("sa.room = %d", i)
	}
	if i := j.MustColIndex("desk"); i != 1 {
		t.Fatalf("desk still unambiguous: %d", i)
	}
}

func TestSchemaRenameAndProject(t *testing.T) {
	s := seatSensors().Rename("x")
	if s.Cols[0].Rel != "x" || s.Name != "x" {
		t.Fatalf("rename: %v", s)
	}
	p := s.Project([]int{2, 0})
	if p.Arity() != 2 || p.Cols[0].Name != "status" || p.Cols[1].Name != "room" {
		t.Fatalf("project: %v", p)
	}
}

func TestSchemaEqualAndString(t *testing.T) {
	a, b := seatSensors(), seatSensors()
	if !a.Equal(b) {
		t.Fatal("identical schemas not Equal")
	}
	b.Cols[0].Type = TInt
	if a.Equal(b) {
		t.Fatal("different schemas Equal")
	}
	b2 := seatSensors()
	b2.IsStream = true
	if a.Equal(b2) {
		t.Fatal("stream flag ignored by Equal")
	}
	if !strings.Contains(b2.String(), "[stream]") {
		t.Fatalf("String misses stream flag: %s", b2)
	}
	if !strings.Contains(a.String(), "ss.room STRING") {
		t.Fatalf("String = %s", a)
	}
}

func TestSplitQualified(t *testing.T) {
	if r, n := SplitQualified("a.b"); r != "a" || n != "b" {
		t.Fatalf("got %q %q", r, n)
	}
	if r, n := SplitQualified("b"); r != "" || n != "b" {
		t.Fatalf("got %q %q", r, n)
	}
}

func TestTupleOps(t *testing.T) {
	a := NewTuple(5, Int(1), Str("x"))
	b := a.Clone()
	b.Vals[0] = Int(9)
	if a.Vals[0].AsInt() != 1 {
		t.Fatal("Clone shares storage")
	}
	c := a.Concat(NewTuple(9, Bool(true)))
	if len(c.Vals) != 3 || c.TS != 9 {
		t.Fatalf("Concat = %v", c)
	}
	n := a.Negate()
	if n.Op != Delete || a.Negate().Negate().Op != Insert {
		t.Fatal("Negate broken")
	}
	p := c.Project([]int{2, 0})
	if !p.Vals[0].AsBool() || p.Vals[1].AsInt() != 1 {
		t.Fatalf("Project = %v", p)
	}
	if p.String() == "" || n.String()[0] != '-' {
		t.Fatal("String rendering broken")
	}
}

func TestTupleDeltaPolarity(t *testing.T) {
	plus := NewTuple(0, Int(1))
	minus := plus.Negate()
	if plus.Concat(minus).Op != Delete {
		t.Fatal("(+)(-) should be -")
	}
	if minus.Concat(plus).Op != Delete {
		t.Fatal("(-)(+) should be -")
	}
	if plus.Concat(plus).Op != Insert {
		t.Fatal("(+)(+) should be +")
	}
	if minus.Concat(minus).Op != Insert {
		t.Fatal("(-)(-) should be +")
	}
}

func TestTupleKeyOn(t *testing.T) {
	a := NewTuple(0, Int(1), Str("x"), Float(2))
	b := NewTuple(99, Int(1), Str("y"), Float(2))
	if a.KeyOn([]int{0, 2}) != b.KeyOn([]int{0, 2}) {
		t.Fatal("KeyOn should ignore excluded columns and TS")
	}
	if a.Key() == b.Key() {
		t.Fatal("full keys should differ")
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation(seatSensors())
	r.MustInsert(Str("L101"), Int(1), Str("free"))
	r.MustInsert(Str("L101"), Int(2), Str("busy"))
	r.MustInsert(Str("L102"), Int(1), Str("free"))
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if err := r.Insert(NewTuple(0, Int(1))); err == nil {
		t.Fatal("arity violation accepted")
	}
	if err := r.Insert(NewTuple(0, Int(1), Int(2), Int(3))); err == nil {
		t.Fatal("type violation accepted")
	}
	count := 0
	r.Scan(func(tu Tuple) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("Scan early-exit failed, count = %d", count)
	}
	if n := r.Delete(NewTuple(0, Str("L101"), Int(2), Str("busy"))); n != 1 {
		t.Fatalf("Delete = %d", n)
	}
	if r.Len() != 2 {
		t.Fatalf("Len after delete = %d", r.Len())
	}
	rows := r.SortedRows()
	if len(rows) != 2 || rows[0].Vals[0].AsString() != "L101" {
		t.Fatalf("SortedRows = %v", rows)
	}
	r.Clear()
	if r.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestRelationScanIsolation(t *testing.T) {
	r := NewRelation(NewSchema("t", Col("x", TInt)))
	r.MustInsert(Int(7))
	r.Scan(func(tu Tuple) bool {
		tu.Vals[0] = Int(99) // mutating the copy must not affect the relation
		return true
	})
	if r.Rows()[0].Vals[0].AsInt() != 7 {
		t.Fatal("Scan leaked internal storage")
	}
}
