package machines

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func testFleet() *Fleet {
	f := NewFleet(DefaultConfig())
	f.MustAdd(Machine{Name: "ws1", Kind: Workstation, Room: "L101", Desk: 1,
		Software: []string{"Fedora Linux", "emacs", "gcc"}})
	f.MustAdd(Machine{Name: "ws2", Kind: Workstation, Room: "L101", Desk: 2,
		Software: []string{"Windows", "Word"}})
	f.MustAdd(Machine{Name: "srv1", Kind: Server, Room: "MR1", Desk: 1,
		Software: []string{"Debian", "apache"}})
	return f
}

func TestFleetBasics(t *testing.T) {
	f := testFleet()
	if err := f.Add(Machine{Name: "ws1"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	ms := f.Machines()
	if len(ms) != 3 || ms[0].Name != "srv1" {
		t.Fatalf("machines = %v", ms)
	}
	if _, ok := f.Get("nope"); ok {
		t.Fatal("phantom machine")
	}
	m, _ := f.Get("ws1")
	if !m.HasSoftware("fedora") || !m.HasSoftware("EMACS") || m.HasSoftware("word") {
		t.Fatal("software matching")
	}
}

func TestJobsAndUtilization(t *testing.T) {
	f := testFleet()
	id := f.StartJob("ws1", "marie", "simulation", 0.5, 256)
	if id < 0 {
		t.Fatal("job rejected")
	}
	id2 := f.StartJob("ws1", "zives", "editor", 0.7, 128)
	m, _ := f.Get("ws1")
	if m.CPU != 1 { // capped at 1.0
		t.Fatalf("cpu = %v", m.CPU)
	}
	if m.MemMB != 384 {
		t.Fatalf("mem = %v", m.MemMB)
	}
	users := m.Users()
	if len(users) != 2 || users[0] != "marie" {
		t.Fatalf("users = %v", users)
	}
	if !f.KillJob("ws1", id) {
		t.Fatal("kill failed")
	}
	m, _ = f.Get("ws1")
	if m.CPU != 0.7 || len(m.Jobs) != 1 || m.Jobs[0].ID != id2 {
		t.Fatalf("after kill: %+v", m)
	}
	if f.KillJob("ws1", 9999) || f.KillJob("nope", 1) {
		t.Fatal("phantom kill succeeded")
	}
	if f.Free("ws1") {
		t.Fatal("busy machine reported free")
	}
	if !f.Free("ws2") {
		t.Fatal("idle machine reported busy")
	}
	if f.Free("nope") {
		t.Fatal("phantom machine free")
	}
}

func TestPowerModel(t *testing.T) {
	f := testFleet()
	ws, _ := f.Get("ws1")
	idleW := ws.PowerW()
	if idleW != 60 {
		t.Fatalf("idle watts = %v", idleW)
	}
	f.StartJob("ws1", "u", "busy", 1.0, 100)
	ws, _ = f.Get("ws1")
	if ws.PowerW() != 180 {
		t.Fatalf("busy watts = %v", ws.PowerW())
	}
	srv, _ := f.Get("srv1")
	if srv.PowerW() != 120 {
		t.Fatalf("server idle watts = %v", srv.PowerW())
	}
	f.SetPower("ws1", false)
	ws, _ = f.Get("ws1")
	if ws.PowerW() != 2 || len(ws.Jobs) != 0 {
		t.Fatalf("off state = %+v", ws)
	}
	// jobs rejected while off
	if f.StartJob("ws1", "u", "x", 0.1, 10) != -1 {
		t.Fatal("job started on powered-off machine")
	}
	f.SetPower("ws1", true)
	if f.StartJob("ws1", "u", "x", 0.1, 10) < 0 {
		t.Fatal("job rejected after power-on")
	}
	f.SetPower("nope", false) // no-op
}

func TestStepEvolvesWorkload(t *testing.T) {
	f := testFleet()
	f.SetPower("ws2", false)
	sawJob := false
	for i := 0; i < 50; i++ {
		f.Step(0)
		for _, m := range f.Machines() {
			if m.Name == "ws2" && (len(m.Jobs) != 0 || m.CPU != 0) {
				t.Fatal("powered-off machine got work")
			}
			if m.Name == "ws1" && len(m.Jobs) > 0 {
				sawJob = true
				if m.CPU <= 0 || m.CPU > 1 {
					t.Fatalf("cpu out of range: %v", m.CPU)
				}
			}
			if m.Kind == Server && !m.Off && m.Requests == 0 {
				t.Fatal("server request rate never set")
			}
		}
	}
	if !sawJob {
		t.Fatal("no jobs ever arrived in 50 steps")
	}
}

func TestStepDeterministic(t *testing.T) {
	a, b := testFleet(), testFleet()
	for i := 0; i < 20; i++ {
		a.Step(0)
		b.Step(0)
	}
	am, bm := a.Machines(), b.Machines()
	for i := range am {
		if am[i].CPU != bm[i].CPU || len(am[i].Jobs) != len(bm[i].Jobs) {
			t.Fatalf("divergence on %s: %v vs %v", am[i].Name, am[i], bm[i])
		}
	}
}

func TestGetReturnsCopies(t *testing.T) {
	f := testFleet()
	f.StartJob("ws1", "u", "j", 0.1, 10)
	m, _ := f.Get("ws1")
	m.Jobs[0].User = "intruder"
	m2, _ := f.Get("ws1")
	if m2.Jobs[0].User != "u" {
		t.Fatal("Get leaked internal state")
	}
}

func TestPDUReadingsAndHTTP(t *testing.T) {
	f := testFleet()
	p := NewPDU("pdu1", f)
	if err := p.Plug(1, "ws1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Plug(2, "srv1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Plug(1, "ws2"); err == nil {
		t.Fatal("double plug accepted")
	}
	rs := p.Readings()
	if len(rs) != 2 || rs[0].Machine != "ws1" || rs[0].Watts != 60 {
		t.Fatalf("readings = %+v", rs)
	}

	srv, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/readings")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []OutletReading
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Machine != "srv1" || got[1].Watts != 120 {
		t.Fatalf("http readings = %+v", got)
	}

	page, err := http.Get(srv.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer page.Body.Close()
	buf := make([]byte, 4096)
	n, _ := page.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "PDU pdu1") {
		t.Fatalf("html page = %q", buf[:n])
	}

	notFound, err := http.Get(srv.URL() + "/bogus")
	if err != nil {
		t.Fatal(err)
	}
	notFound.Body.Close()
	if notFound.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", notFound.StatusCode)
	}
}

func TestKindString(t *testing.T) {
	if Workstation.String() != "workstation" || Server.String() != "server" {
		t.Fatal("kind names")
	}
}
