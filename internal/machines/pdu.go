package machines

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
)

// PDU is a power distribution unit: a strip of outlets, each feeding one
// machine, "with Web interfaces showing current power consumption" (§2).
// Serve exposes the real HTTP endpoint the wrapper scrapes every 10 s.
type PDU struct {
	Name string

	mu      sync.Mutex
	fleet   *Fleet
	outlets map[int]string // outlet number -> machine name
}

// NewPDU creates a PDU over the fleet.
func NewPDU(name string, fleet *Fleet) *PDU {
	return &PDU{Name: name, fleet: fleet, outlets: map[int]string{}}
}

// Plug connects a machine to an outlet.
func (p *PDU) Plug(outlet int, machine string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, used := p.outlets[outlet]; used {
		return fmt.Errorf("machines: outlet %d already feeds %s", outlet, cur)
	}
	p.outlets[outlet] = machine
	return nil
}

// OutletReading is one row of the PDU's web page.
type OutletReading struct {
	Outlet  int     `json:"outlet"`
	Machine string  `json:"machine"`
	Watts   float64 `json:"watts"`
}

// Readings returns the current outlet readings sorted by outlet.
func (p *PDU) Readings() []OutletReading {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]OutletReading, 0, len(p.outlets))
	for o, name := range p.outlets {
		r := OutletReading{Outlet: o, Machine: name}
		if m, ok := p.fleet.Get(name); ok {
			r.Watts = m.PowerW()
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Outlet < out[j].Outlet })
	return out
}

// ServeHTTP implements the PDU's web interface: GET /readings returns the
// outlet table as JSON; GET / returns a minimal HTML status page like real
// PDU firmware does.
func (p *PDU) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch req.URL.Path {
	case "/readings":
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(p.Readings()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "/":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><body><h1>PDU %s</h1><table>", p.Name)
		for _, r := range p.Readings() {
			fmt.Fprintf(w, "<tr><td>%d</td><td>%s</td><td>%.1f W</td></tr>",
				r.Outlet, r.Machine, r.Watts)
		}
		fmt.Fprint(w, "</table></body></html>")
	default:
		http.NotFound(w, req)
	}
}

// PDUServer runs a PDU web interface on a local TCP port.
type PDUServer struct {
	pdu *PDU
	l   net.Listener
	srv *http.Server
}

// Serve starts the PDU's web interface on addr ("127.0.0.1:0" for an
// ephemeral port).
func (p *PDU) Serve(addr string) (*PDUServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("machines: pdu listen: %w", err)
	}
	srv := &http.Server{Handler: p}
	go srv.Serve(l) //nolint:errcheck // shutdown error is expected at Close
	return &PDUServer{pdu: p, l: l, srv: srv}, nil
}

// URL returns the base URL of the interface.
func (s *PDUServer) URL() string { return "http://" + s.l.Addr().String() }

// Close shuts the interface down.
func (s *PDUServer) Close() error { return s.srv.Close() }
