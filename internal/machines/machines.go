// Package machines simulates the servers and workstations SmartCIS
// monitors (§2 "Machine-state monitoring" / "Workstation monitoring"): a
// fleet of machines with software inventories, synthetic job workloads
// driving CPU/memory, and power draw that follows utilization. Machines are
// plugged into PDUs (power distribution units) whose web interface is a
// real net/http server, so the wrapper layer exercises an honest
// out-of-process scrape path.
package machines

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"aspen/internal/vtime"
)

// Kind classifies machines.
type Kind uint8

// Machine kinds.
const (
	Workstation Kind = iota
	Server
)

// String names the kind.
func (k Kind) String() string {
	if k == Server {
		return "server"
	}
	return "workstation"
}

// Job is one running process on a machine.
type Job struct {
	ID       int
	User     string
	Name     string
	CPUShare float64 // fraction of one core
	MemMB    float64
}

// Machine is one simulated host.
type Machine struct {
	Name     string
	Kind     Kind
	Room     string
	Desk     int
	Software []string // installed packages, matched by LIKE queries

	// Dynamic state (guarded by the fleet lock).
	Jobs     []Job
	CPU      float64 // utilization 0..1
	MemMB    float64
	Requests float64 // web-server requests/second (servers only)
	Off      bool
}

// HasSoftware reports whether the machine's inventory contains the package
// (case-insensitive substring, mirroring the paper's LIKE matching).
func (m *Machine) HasSoftware(pkg string) bool {
	p := strings.ToLower(pkg)
	for _, s := range m.Software {
		if strings.Contains(strings.ToLower(s), p) {
			return true
		}
	}
	return false
}

// Users returns the distinct users with jobs on the machine, sorted.
func (m *Machine) Users() []string {
	set := map[string]bool{}
	for _, j := range m.Jobs {
		set[j.User] = true
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// PowerW returns the instantaneous power draw in watts: idle floor plus a
// utilization-proportional component (servers run hotter).
func (m *Machine) PowerW() float64 {
	if m.Off {
		return 2 // vampire draw
	}
	idle, span := 60.0, 120.0
	if m.Kind == Server {
		idle, span = 120.0, 230.0
	}
	return idle + span*m.CPU
}

// Config parameterizes the workload simulator.
type Config struct {
	Seed int64
	// JobArrivalProb is the per-step probability a new job starts on each
	// powered machine.
	JobArrivalProb float64
	// JobDepartProb is the per-step probability each running job exits.
	JobDepartProb float64
	// Users is the synthetic user population.
	Users []string
}

// DefaultConfig returns the standard workload mix.
func DefaultConfig() Config {
	return Config{
		Seed:           7,
		JobArrivalProb: 0.3,
		JobDepartProb:  0.15,
		Users:          []string{"mengmeng", "svilen", "zhuowei", "marie", "zives", "boonloo"},
	}
}

// Fleet is the set of simulated machines. All methods are safe for
// concurrent use.
type Fleet struct {
	mu       sync.Mutex
	cfg      Config
	rng      *rand.Rand
	machines map[string]*Machine
	nextJob  int
}

// NewFleet creates an empty fleet.
func NewFleet(cfg Config) *Fleet {
	if len(cfg.Users) == 0 {
		cfg.Users = DefaultConfig().Users
	}
	return &Fleet{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		machines: map[string]*Machine{},
	}
}

// Add registers a machine; names must be unique.
func (f *Fleet) Add(m Machine) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.machines[m.Name]; dup {
		return fmt.Errorf("machines: duplicate machine %q", m.Name)
	}
	cp := m
	f.machines[m.Name] = &cp
	return nil
}

// MustAdd registers a machine, panicking on error.
func (f *Fleet) MustAdd(m Machine) {
	if err := f.Add(m); err != nil {
		panic(err)
	}
}

// Get returns a copy of a machine's current state.
func (f *Fleet) Get(name string) (Machine, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.machines[name]
	if !ok {
		return Machine{}, false
	}
	return f.copyLocked(m), true
}

func (f *Fleet) copyLocked(m *Machine) Machine {
	cp := *m
	cp.Jobs = append([]Job(nil), m.Jobs...)
	cp.Software = append([]string(nil), m.Software...)
	return cp
}

// Machines returns copies of all machines sorted by name.
func (f *Fleet) Machines() []Machine {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Machine, 0, len(f.machines))
	for _, m := range f.machines {
		out = append(out, f.copyLocked(m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetPower powers a machine on or off; jobs are killed on power-off.
func (f *Fleet) SetPower(name string, on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m := f.machines[name]; m != nil {
		m.Off = !on
		if m.Off {
			m.Jobs, m.CPU, m.MemMB, m.Requests = nil, 0, 0, 0
		}
	}
}

// StartJob launches a job explicitly (SmartCIS scenarios script workloads
// this way). It returns the job ID, or -1 for unknown or powered-off hosts.
func (f *Fleet) StartJob(machine, user, name string, cpuShare, memMB float64) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.machines[machine]
	if m == nil || m.Off {
		return -1
	}
	f.nextJob++
	m.Jobs = append(m.Jobs, Job{ID: f.nextJob, User: user, Name: name,
		CPUShare: cpuShare, MemMB: memMB})
	f.recomputeLocked(m)
	return f.nextJob
}

// KillJob terminates a job by ID; reports whether it existed.
func (f *Fleet) KillJob(machine string, id int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.machines[machine]
	if m == nil {
		return false
	}
	for i, j := range m.Jobs {
		if j.ID == id {
			m.Jobs = append(m.Jobs[:i], m.Jobs[i+1:]...)
			f.recomputeLocked(m)
			return true
		}
	}
	return false
}

// Step advances the synthetic workload one tick: jobs arrive and depart
// randomly, and utilization follows.
func (f *Fleet) Step(vtime.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.machines))
	for n := range f.machines {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic RNG consumption order
	for _, n := range names {
		m := f.machines[n]
		if m.Off {
			continue
		}
		// departures
		kept := m.Jobs[:0]
		for _, j := range m.Jobs {
			if f.rng.Float64() >= f.cfg.JobDepartProb {
				kept = append(kept, j)
			}
		}
		m.Jobs = kept
		// arrivals
		if f.rng.Float64() < f.cfg.JobArrivalProb {
			f.nextJob++
			user := f.cfg.Users[f.rng.Intn(len(f.cfg.Users))]
			m.Jobs = append(m.Jobs, Job{
				ID: f.nextJob, User: user,
				Name:     fmt.Sprintf("job%d", f.nextJob),
				CPUShare: 0.05 + 0.4*f.rng.Float64(),
				MemMB:    64 + 448*f.rng.Float64(),
			})
		}
		if m.Kind == Server {
			m.Requests = 20 + 180*f.rng.Float64()
		}
		f.recomputeLocked(m)
	}
}

func (f *Fleet) recomputeLocked(m *Machine) {
	cpu, mem := 0.0, 0.0
	for _, j := range m.Jobs {
		cpu += j.CPUShare
		mem += j.MemMB
	}
	if cpu > 1 {
		cpu = 1
	}
	m.CPU, m.MemMB = cpu, mem
}

// Free reports whether a machine is idle enough to offer to a visitor:
// powered on with no interactive jobs.
func (f *Fleet) Free(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.machines[name]
	return m != nil && !m.Off && len(m.Jobs) == 0
}
