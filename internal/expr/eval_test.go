package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"aspen/internal/data"
)

func testSchema() *data.Schema {
	return data.NewSchema("m",
		data.Col("id", data.TInt),
		data.Col("temp", data.TFloat),
		data.Col("software", data.TString),
		data.Col("up", data.TBool),
	)
}

func row(id int64, temp float64, sw string, up bool) data.Tuple {
	return data.NewTuple(0, data.Int(id), data.Float(temp), data.Str(sw), data.Bool(up))
}

func evalOn(t *testing.T, e Expr, tu data.Tuple) data.Value {
	t.Helper()
	c, err := Bind(e, testSchema())
	if err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	return c.Eval(tu)
}

func TestArithmetic(t *testing.T) {
	tu := row(10, 2.5, "fedora", true)
	cases := []struct {
		e    Expr
		want data.Value
	}{
		{Bin{OpAdd, C("id"), L(5)}, data.Int(15)},
		{Bin{OpSub, C("id"), L(3)}, data.Int(7)},
		{Bin{OpMul, C("id"), C("temp")}, data.Float(25)},
		{Bin{OpDiv, C("id"), L(4)}, data.Float(2.5)},
		{Bin{OpMod, C("id"), L(3)}, data.Int(1)},
		{Bin{OpDiv, C("id"), L(0)}, data.Null},
		{Bin{OpMod, C("id"), L(0)}, data.Null},
		{Un{OpNeg, C("temp")}, data.Float(-2.5)},
		{Un{OpNeg, C("id")}, data.Int(-10)},
		{Bin{OpAdd, C("software"), L("-linux")}, data.Str("fedora-linux")},
	}
	for _, c := range cases {
		got := evalOn(t, c.e, tu)
		if got != c.want && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	tu := row(10, 2.5, "fedora", true)
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(C("id"), L(10)), true},
		{Bin{OpNe, C("id"), L(10)}, false},
		{Bin{OpLt, C("temp"), L(3.0)}, true},
		{Bin{OpLe, C("temp"), L(2.5)}, true},
		{Bin{OpGt, C("id"), L(9)}, true},
		{Bin{OpGe, C("id"), L(11)}, false},
		{Eq(C("id"), C("temp")), false},
		{Eq(C("software"), L("fedora")), true},
		{Bin{OpLike, C("software"), L("fed%")}, true},
		{Bin{OpLike, C("software"), L("%ora")}, true},
		{Bin{OpLike, C("software"), L("f_dora")}, true},
		{Bin{OpLike, C("software"), L("ubuntu%")}, false},
	}
	for _, c := range cases {
		got := evalOn(t, c.e, tu)
		if got.AsBool() != c.want {
			t.Errorf("%s = %v, want %t", c.e, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	s := data.NewSchema("t", data.Col("a", data.TBool), data.Col("b", data.TBool))
	tv := func(b *bool) data.Value {
		if b == nil {
			return data.Null
		}
		return data.Bool(*b)
	}
	T, F := true, false
	type tri = *bool
	null := tri(nil)
	andTable := []struct{ a, b, want tri }{
		{&T, &T, &T}, {&T, &F, &F}, {&F, &T, &F}, {&F, &F, &F},
		{&T, null, null}, {null, &T, null}, {&F, null, &F}, {null, &F, &F}, {null, null, null},
	}
	for _, c := range andTable {
		cmp := MustBind(Bin{OpAnd, C("a"), C("b")}, s)
		got := cmp.Eval(data.NewTuple(0, tv(c.a), tv(c.b)))
		if c.want == null {
			if !got.IsNull() {
				t.Errorf("AND(%v,%v) = %v, want NULL", tv(c.a), tv(c.b), got)
			}
		} else if got.IsNull() || got.AsBool() != *c.want {
			t.Errorf("AND(%v,%v) = %v, want %v", tv(c.a), tv(c.b), got, *c.want)
		}
	}
	orTable := []struct{ a, b, want tri }{
		{&T, &T, &T}, {&T, &F, &T}, {&F, &T, &T}, {&F, &F, &F},
		{&T, null, &T}, {null, &T, &T}, {&F, null, null}, {null, &F, null}, {null, null, null},
	}
	for _, c := range orTable {
		cmp := MustBind(Bin{OpOr, C("a"), C("b")}, s)
		got := cmp.Eval(data.NewTuple(0, tv(c.a), tv(c.b)))
		if c.want == null {
			if !got.IsNull() {
				t.Errorf("OR(%v,%v) = %v, want NULL", tv(c.a), tv(c.b), got)
			}
		} else if got.IsNull() || got.AsBool() != *c.want {
			t.Errorf("OR(%v,%v) = %v, want %v", tv(c.a), tv(c.b), got, *c.want)
		}
	}
	// NOT NULL is NULL
	if got := MustBind(Un{OpNot, C("a")}, s).Eval(data.NewTuple(0, data.Null, data.Null)); !got.IsNull() {
		t.Errorf("NOT NULL = %v", got)
	}
}

func TestIsNull(t *testing.T) {
	s := data.NewSchema("t", data.Col("a", data.TInt))
	if !MustBind(IsNull{X: C("a")}, s).EvalBool(data.NewTuple(0, data.Null)) {
		t.Error("NULL IS NULL should be true")
	}
	if MustBind(IsNull{X: C("a")}, s).EvalBool(data.NewTuple(0, data.Int(1))) {
		t.Error("1 IS NULL should be false")
	}
	if !MustBind(IsNull{X: C("a"), Neg: true}, s).EvalBool(data.NewTuple(0, data.Int(1))) {
		t.Error("1 IS NOT NULL should be true")
	}
}

func TestBindErrors(t *testing.T) {
	s := testSchema()
	bad := []Expr{
		C("nonexistent"),
		Bin{OpAdd, C("software"), L(1)},
		Bin{OpLike, C("id"), L("x")},
		Un{OpNeg, C("software")},
		Eq(C("software"), C("id")),
		Call{Name: "nosuchfn", Args: []Expr{L(1)}},
		Call{Name: "abs", Args: []Expr{L(1), L(2)}},
		Call{Name: "abs", Args: []Expr{C("software")}},
		Call{Name: "coalesce"},
	}
	for _, e := range bad {
		if _, err := Bind(e, s); err == nil {
			t.Errorf("Bind(%s) should fail", e)
		}
	}
}

func TestCalls(t *testing.T) {
	tu := row(-7, 2.25, "Fedora Linux", true)
	cases := []struct {
		e    Expr
		want data.Value
	}{
		{Call{Name: "abs", Args: []Expr{C("id")}}, data.Int(7)},
		{Call{Name: "abs", Args: []Expr{Un{OpNeg, C("temp")}}}, data.Float(2.25)},
		{Call{Name: "lower", Args: []Expr{C("software")}}, data.Str("fedora linux")},
		{Call{Name: "upper", Args: []Expr{C("software")}}, data.Str("FEDORA LINUX")},
		{Call{Name: "length", Args: []Expr{C("software")}}, data.Str("12")},
		{Call{Name: "sqrt", Args: []Expr{C("temp")}}, data.Float(1.5)},
		{Call{Name: "coalesce", Args: []Expr{L("x"), L("y")}}, data.Str("x")},
		{Call{Name: "dist", Args: []Expr{L(0.0), L(0.0), L(3.0), L(4.0)}}, data.Float(5)},
	}
	for _, c := range cases {
		got := evalOn(t, c.e, tu)
		if got.String() != c.want.String() {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"fedora", "fedora", true},
		{"fedora", "FEDORA", true}, // case-insensitive
		{"fedora", "fed%", true},
		{"fedora", "%ora", true},
		{"fedora", "%ed%", true},
		{"fedora", "%", true},
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
		{"a", "_", true},
		{"fedora", "f_dora", true},
		{"fedora", "f__ora", true},
		{"fedora", "f___ora", false},
		{"fedora", "fedora%", true},
		{"fedora", "%fedora", true},
		{"abc", "a%b%c", true},
		{"abc", "a%c%b", false},
		{"100%", `100\%`, true},
		{"100x", `100\%`, false},
		{"a_b", `a\_b`, true},
		{"axb", `a\_b`, false},
		{"word, fedora, emacs", "%fedora%", true},
		{"word, ubuntu, emacs", "%fedora%", false},
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q, %q) = %t, want %t", c.s, c.p, got, c.want)
		}
	}
}

// Property: Like(s, s) for plain strings without metacharacters.
func TestLikeReflexive(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, `%_\`) {
			return true
		}
		return Like(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any string matches a pattern made of its characters with %
// inserted at random positions.
func TestLikeWithInsertedWildcards(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	alpha := "abcdefgh"
	for n := 0; n < 500; n++ {
		sLen := r.Intn(12)
		var sb strings.Builder
		for i := 0; i < sLen; i++ {
			sb.WriteByte(alpha[r.Intn(len(alpha))])
		}
		s := sb.String()
		var pb strings.Builder
		for i := 0; i <= len(s); i++ {
			if r.Intn(3) == 0 {
				pb.WriteByte('%')
			}
			if i < len(s) {
				pb.WriteByte(s[i])
			}
		}
		if !Like(s, pb.String()) {
			t.Fatalf("Like(%q, %q) = false", s, pb.String())
		}
	}
}

func TestExprString(t *testing.T) {
	e := And(
		Eq(C("sa.room"), C("ss.room")),
		Bin{OpLike, C("p.needed"), L("it's")},
	)
	got := e.String()
	if !strings.Contains(got, "sa.room = ss.room") || !strings.Contains(got, "'it''s'") {
		t.Errorf("String = %q", got)
	}
	if (IsNull{X: C("a"), Neg: true}).String() != "(a IS NOT NULL)" {
		t.Error("IsNull string")
	}
	if (Call{Name: "abs", Args: []Expr{C("x")}}).String() != "ABS(x)" {
		t.Error("Call string")
	}
	if (Un{OpNeg, C("x")}).String() != "(-x)" {
		t.Error("Neg string")
	}
}

func TestLPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	L(struct{}{})
}
