package expr

import (
	"reflect"
	"testing"

	"aspen/internal/data"
)

func TestConjunctsAndConjoin(t *testing.T) {
	e := And(And(Eq(C("a"), L(1)), Eq(C("b"), L(2))), Eq(C("c"), L(3)))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	back := Conjoin(cs)
	if !Equal(back, e) {
		t.Fatalf("Conjoin(Conjuncts(e)) = %s, want %s", back, e)
	}
	if Conjuncts(nil) != nil {
		t.Fatal("Conjuncts(nil) should be nil")
	}
	if Conjoin(nil) != nil {
		t.Fatal("Conjoin(nil) should be nil")
	}
	if got := Conjoin([]Expr{nil, Eq(C("a"), L(1)), nil}); !Equal(got, Eq(C("a"), L(1))) {
		t.Fatalf("Conjoin with nils = %v", got)
	}
	// OR is not split
	or := Bin{OpOr, Eq(C("a"), L(1)), Eq(C("b"), L(2))}
	if len(Conjuncts(or)) != 1 {
		t.Fatal("OR must not be split")
	}
}

func TestColumnsAndRels(t *testing.T) {
	e := And(
		Eq(C("r.start"), C("p.room")),
		Bin{OpLike, C("p.needed"), C("m.software")},
	)
	cols := Columns(e)
	want := []string{"m.software", "p.needed", "p.room", "r.start"}
	if !reflect.DeepEqual(cols, want) {
		t.Fatalf("Columns = %v, want %v", cols, want)
	}
	rels := Rels(e)
	wantRels := []string{"m", "p", "r"}
	if !reflect.DeepEqual(rels, wantRels) {
		t.Fatalf("Rels = %v, want %v", rels, wantRels)
	}
	if len(Columns(Call{Name: "abs", Args: []Expr{Un{OpNeg, C("x.y")}}})) != 1 {
		t.Fatal("Columns through call/unary")
	}
	if len(Columns(IsNull{X: C("z.w")})) != 1 {
		t.Fatal("Columns through IsNull")
	}
}

func TestBoundBy(t *testing.T) {
	s := data.NewSchema("ss", data.Col("room", data.TString), data.Col("desk", data.TInt))
	if !BoundBy(Eq(C("ss.room"), L("L1")), s) {
		t.Fatal("should be bound")
	}
	if BoundBy(Eq(C("sa.room"), L("L1")), s) {
		t.Fatal("should not be bound")
	}
}

func TestEquiJoin(t *testing.T) {
	l := data.NewSchema("sa", data.Col("room", data.TString), data.Col("status", data.TString))
	r := data.NewSchema("ss", data.Col("room", data.TString), data.Col("desk", data.TInt))
	lref, rref, ok := EquiJoin(Eq(C("sa.room"), C("ss.room")), l, r)
	if !ok || lref != "sa.room" || rref != "ss.room" {
		t.Fatalf("EquiJoin = %q %q %t", lref, rref, ok)
	}
	// reversed orientation
	lref, rref, ok = EquiJoin(Eq(C("ss.room"), C("sa.room")), l, r)
	if !ok || lref != "sa.room" || rref != "ss.room" {
		t.Fatalf("reversed EquiJoin = %q %q %t", lref, rref, ok)
	}
	if _, _, ok := EquiJoin(Eq(C("sa.room"), L("L1")), l, r); ok {
		t.Fatal("literal comparison is not an equi-join")
	}
	if _, _, ok := EquiJoin(Bin{OpLt, C("sa.room"), C("ss.room")}, l, r); ok {
		t.Fatal("< is not an equi-join")
	}
	if _, _, ok := EquiJoin(Eq(C("sa.room"), C("sa.status")), l, r); ok {
		t.Fatal("same-side equality is not a join predicate")
	}
}

func TestRequalify(t *testing.T) {
	e := And(Eq(C("v.room"), C("ss.room")), Bin{OpGt, C("v.desk"), L(3)})
	got := Requalify(e, "v", "omi")
	wantCols := []string{"omi.desk", "omi.room", "ss.room"}
	if !reflect.DeepEqual(Columns(got), wantCols) {
		t.Fatalf("Requalify cols = %v, want %v", Columns(got), wantCols)
	}
	// does not touch other qualifiers
	if !Equal(Requalify(C("x.y"), "v", "omi"), C("x.y")) {
		t.Fatal("Requalify touched unrelated qualifier")
	}
}

func TestSubstitute(t *testing.T) {
	e := Eq(C("omi.room"), C("other.room"))
	got := Substitute(e, map[string]Expr{"omi.room": C("ss.room")})
	if !Equal(got, Eq(C("ss.room"), C("other.room"))) {
		t.Fatalf("Substitute = %s", got)
	}
	// substitution into nested structures
	nested := Call{Name: "abs", Args: []Expr{Un{OpNeg, C("a.x")}}}
	got2 := Substitute(nested, map[string]Expr{"a.x": L(5)})
	if got2.String() != "ABS((-5))" {
		t.Fatalf("nested Substitute = %s", got2)
	}
}

func TestSelectivity(t *testing.T) {
	if s := Selectivity(Eq(C("a"), L(1))); s != 0.1 {
		t.Fatalf("eq selectivity = %v", s)
	}
	and := Selectivity(And(Eq(C("a"), L(1)), Eq(C("b"), L(2))))
	if and >= 0.1 {
		t.Fatalf("AND should compound: %v", and)
	}
	or := Selectivity(Bin{OpOr, Eq(C("a"), L(1)), Eq(C("b"), L(2))})
	if or <= 0.1 || or > 0.2 {
		t.Fatalf("OR selectivity = %v", or)
	}
	not := Selectivity(Un{OpNot, Eq(C("a"), L(1))})
	if not != 0.9 {
		t.Fatalf("NOT selectivity = %v", not)
	}
	if Selectivity(C("a")) != 0.5 {
		t.Fatal("default selectivity")
	}
	lt := Selectivity(Bin{OpLt, C("a"), L(1)})
	if lt != 0.3 {
		t.Fatalf("range selectivity = %v", lt)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(nil, nil) {
		t.Fatal("nil == nil")
	}
	if Equal(nil, C("a")) || Equal(C("a"), nil) {
		t.Fatal("nil != expr")
	}
	if !Equal(Eq(C("a"), L(1)), Eq(C("a"), L(1))) {
		t.Fatal("identical exprs")
	}
	if Equal(Eq(C("a"), L(1)), Eq(C("a"), L(2))) {
		t.Fatal("different exprs")
	}
}
