// Package expr implements StreamSQL scalar expressions: the AST shared with
// the parser, a binder that resolves column references against a schema, and
// an evaluator with SQL three-valued NULL semantics.
//
// The paper's queries (Fig. 1) use `^` for conjunction and LIKE for
// capability matching ("p.needed like m.software"); both are supported.
package expr

import (
	"fmt"
	"strings"

	"aspen/internal/data"
)

// Expr is a scalar expression tree node.
type Expr interface {
	fmt.Stringer
	expr()
}

// Lit is a literal constant.
type Lit struct{ V data.Value }

// Col is a (possibly qualified) column reference such as "ss.room".
type Col struct{ Ref string }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpLike
)

var binNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpLike: "LIKE",
}

// String names the operator.
func (o BinOp) String() string { return binNames[o] }

// Comparison reports whether the operator yields a boolean comparison.
func (o BinOp) Comparison() bool { return o >= OpEq && o <= OpGe }

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	OpNeg UnOp = iota
	OpNot
)

// Un is a unary operation.
type Un struct {
	Op UnOp
	X  Expr
}

// IsNull tests X IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Neg bool
}

// Call is a builtin scalar function application.
type Call struct {
	Name string
	Args []Expr
}

func (Lit) expr()    {}
func (Col) expr()    {}
func (Bin) expr()    {}
func (Un) expr()     {}
func (IsNull) expr() {}
func (Call) expr()   {}

// String renders the literal in SQL syntax.
func (l Lit) String() string {
	if l.V.T == data.TString {
		return "'" + strings.ReplaceAll(l.V.S, "'", "''") + "'"
	}
	return l.V.String()
}

func (c Col) String() string { return c.Ref }

func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func (u Un) String() string {
	if u.Op == OpNot {
		return fmt.Sprintf("(NOT %s)", u.X)
	}
	return fmt.Sprintf("(-%s)", u.X)
}

func (n IsNull) String() string {
	if n.Neg {
		return fmt.Sprintf("(%s IS NOT NULL)", n.X)
	}
	return fmt.Sprintf("(%s IS NULL)", n.X)
}

func (c Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", strings.ToUpper(c.Name), strings.Join(args, ", "))
}

// Convenience constructors used heavily by tests and the planner.

// L builds a literal from a Go value.
func L(v any) Lit {
	switch x := v.(type) {
	case int:
		return Lit{data.Int(int64(x))}
	case int64:
		return Lit{data.Int(x)}
	case float64:
		return Lit{data.Float(x)}
	case string:
		return Lit{data.Str(x)}
	case bool:
		return Lit{data.Bool(x)}
	case data.Value:
		return Lit{x}
	}
	panic(fmt.Sprintf("expr.L: unsupported literal %T", v))
}

// C builds a column reference.
func C(ref string) Col { return Col{Ref: ref} }

// Eq builds l = r.
func Eq(l, r Expr) Bin { return Bin{Op: OpEq, L: l, R: r} }

// And conjoins two expressions.
func And(l, r Expr) Bin { return Bin{Op: OpAnd, L: l, R: r} }
