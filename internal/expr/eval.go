package expr

import (
	"fmt"
	"math"
	"strings"

	"aspen/internal/data"
)

// Compiled is an expression bound to a schema, ready to evaluate against
// tuples of that schema.
type Compiled struct {
	// Type is the inferred result type.
	Type data.Type
	eval func(vals []data.Value) data.Value
	src  Expr
}

// Eval evaluates the expression on a tuple.
func (c *Compiled) Eval(t data.Tuple) data.Value { return c.eval(t.Vals) }

// EvalVals evaluates on a raw value slice.
func (c *Compiled) EvalVals(vals []data.Value) data.Value { return c.eval(vals) }

// EvalBool evaluates as a predicate: NULL counts as false (SQL WHERE
// semantics).
func (c *Compiled) EvalBool(t data.Tuple) bool { return c.eval(t.Vals).AsBool() }

// String renders the source expression.
func (c *Compiled) String() string { return c.src.String() }

// Source returns the expression this evaluator was bound from, so callers
// that ship plans across processes (plan wire specs) can re-Bind it against
// the same schema on the other side.
func (c *Compiled) Source() Expr { return c.src }

// Bind resolves column references in e against schema and type-checks it,
// returning an evaluator.
func Bind(e Expr, schema *data.Schema) (*Compiled, error) {
	typ, eval, err := bind(e, schema)
	if err != nil {
		return nil, err
	}
	return &Compiled{Type: typ, eval: eval, src: e}, nil
}

// MustBind is Bind for statically known expressions; panics on error.
func MustBind(e Expr, schema *data.Schema) *Compiled {
	c, err := Bind(e, schema)
	if err != nil {
		panic(err)
	}
	return c
}

type evalFn func(vals []data.Value) data.Value

func bind(e Expr, s *data.Schema) (data.Type, evalFn, error) {
	switch x := e.(type) {
	case Lit:
		v := x.V
		return v.T, func([]data.Value) data.Value { return v }, nil

	case Col:
		idx, err := s.ColIndex(x.Ref)
		if err != nil {
			return data.TNull, nil, err
		}
		typ := s.Cols[idx].Type
		return typ, func(vals []data.Value) data.Value { return vals[idx] }, nil

	case Un:
		t, f, err := bind(x.X, s)
		if err != nil {
			return data.TNull, nil, err
		}
		switch x.Op {
		case OpNeg:
			if !t.Numeric() && t != data.TNull {
				return data.TNull, nil, fmt.Errorf("expr: cannot negate %s in %s", t, e)
			}
			return t, func(vals []data.Value) data.Value {
				v := f(vals)
				switch v.T {
				case data.TInt:
					return data.Int(-v.I)
				case data.TFloat:
					return data.Float(-v.F)
				}
				return data.Null
			}, nil
		case OpNot:
			return data.TBool, func(vals []data.Value) data.Value {
				v := f(vals)
				if v.IsNull() {
					return data.Null
				}
				return data.Bool(!v.AsBool())
			}, nil
		}
		return data.TNull, nil, fmt.Errorf("expr: unknown unary op %d", x.Op)

	case IsNull:
		_, f, err := bind(x.X, s)
		if err != nil {
			return data.TNull, nil, err
		}
		neg := x.Neg
		return data.TBool, func(vals []data.Value) data.Value {
			return data.Bool(f(vals).IsNull() != neg)
		}, nil

	case Bin:
		lt, lf, err := bind(x.L, s)
		if err != nil {
			return data.TNull, nil, err
		}
		rt, rf, err := bind(x.R, s)
		if err != nil {
			return data.TNull, nil, err
		}
		return bindBin(x.Op, lt, rt, lf, rf, e)

	case Call:
		return bindCall(x, s)
	}
	return data.TNull, nil, fmt.Errorf("expr: unknown node %T", e)
}

func bindBin(op BinOp, lt, rt data.Type, lf, rf evalFn, src Expr) (data.Type, evalFn, error) {
	anyNull := lt == data.TNull || rt == data.TNull
	switch {
	case op == OpAnd || op == OpOr:
		isAnd := op == OpAnd
		return data.TBool, func(vals []data.Value) data.Value {
			l, r := lf(vals), rf(vals)
			// Kleene three-valued logic.
			ln, rn := l.IsNull(), r.IsNull()
			lb, rb := l.AsBool(), r.AsBool()
			if isAnd {
				if (!ln && !lb) || (!rn && !rb) {
					return data.Bool(false)
				}
				if ln || rn {
					return data.Null
				}
				return data.Bool(true)
			}
			if (!ln && lb) || (!rn && rb) {
				return data.Bool(true)
			}
			if ln || rn {
				return data.Null
			}
			return data.Bool(false)
		}, nil

	case op == OpLike:
		if !anyNull && (lt != data.TString || rt != data.TString) {
			return data.TNull, nil, fmt.Errorf("expr: LIKE requires strings, got %s LIKE %s in %s", lt, rt, src)
		}
		return data.TBool, func(vals []data.Value) data.Value {
			l, r := lf(vals), rf(vals)
			if l.IsNull() || r.IsNull() {
				return data.Null
			}
			return data.Bool(Like(l.AsString(), r.AsString()))
		}, nil

	case op.Comparison():
		if !anyNull && !comparable(lt, rt) {
			return data.TNull, nil, fmt.Errorf("expr: cannot compare %s with %s in %s", lt, rt, src)
		}
		o := op
		return data.TBool, func(vals []data.Value) data.Value {
			l, r := lf(vals), rf(vals)
			c, ok := l.Compare(r)
			if !ok {
				return data.Null
			}
			switch o {
			case OpEq:
				return data.Bool(c == 0)
			case OpNe:
				return data.Bool(c != 0)
			case OpLt:
				return data.Bool(c < 0)
			case OpLe:
				return data.Bool(c <= 0)
			case OpGt:
				return data.Bool(c > 0)
			case OpGe:
				return data.Bool(c >= 0)
			}
			return data.Null
		}, nil

	default: // arithmetic
		if lt == data.TString && rt == data.TString && op == OpAdd {
			// string concatenation via +
			return data.TString, func(vals []data.Value) data.Value {
				l, r := lf(vals), rf(vals)
				if l.IsNull() || r.IsNull() {
					return data.Null
				}
				return data.Str(l.AsString() + r.AsString())
			}, nil
		}
		if !anyNull && (!numericOrNull(lt) || !numericOrNull(rt)) {
			return data.TNull, nil, fmt.Errorf("expr: arithmetic on %s and %s in %s", lt, rt, src)
		}
		resType := data.TInt
		if lt == data.TFloat || rt == data.TFloat || op == OpDiv {
			resType = data.TFloat
		}
		o := op
		return resType, func(vals []data.Value) data.Value {
			l, r := lf(vals), rf(vals)
			if l.IsNull() || r.IsNull() {
				return data.Null
			}
			if l.T == data.TInt && r.T == data.TInt && o != OpDiv {
				switch o {
				case OpAdd:
					return data.Int(l.I + r.I)
				case OpSub:
					return data.Int(l.I - r.I)
				case OpMul:
					return data.Int(l.I * r.I)
				case OpMod:
					if r.I == 0 {
						return data.Null
					}
					return data.Int(l.I % r.I)
				}
			}
			a, b := l.AsFloat(), r.AsFloat()
			switch o {
			case OpAdd:
				return data.Float(a + b)
			case OpSub:
				return data.Float(a - b)
			case OpMul:
				return data.Float(a * b)
			case OpDiv:
				if b == 0 {
					return data.Null
				}
				return data.Float(a / b)
			case OpMod:
				if b == 0 {
					return data.Null
				}
				return data.Float(math.Mod(a, b))
			}
			return data.Null
		}, nil
	}
}

func numericOrNull(t data.Type) bool { return t.Numeric() || t == data.TNull }

func comparable(a, b data.Type) bool {
	if a == data.TNull || b == data.TNull {
		return true
	}
	if a.Numeric() && b.Numeric() {
		return true
	}
	return a == b
}

func bindCall(c Call, s *data.Schema) (data.Type, evalFn, error) {
	name := strings.ToLower(c.Name)
	args := make([]evalFn, len(c.Args))
	types := make([]data.Type, len(c.Args))
	for i, a := range c.Args {
		t, f, err := bind(a, s)
		if err != nil {
			return data.TNull, nil, err
		}
		args[i], types[i] = f, t
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("expr: %s takes %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "abs":
		if err := arity(1); err != nil {
			return data.TNull, nil, err
		}
		t := types[0]
		if !numericOrNull(t) {
			return data.TNull, nil, fmt.Errorf("expr: abs of %s", t)
		}
		return t, func(vals []data.Value) data.Value {
			v := args[0](vals)
			switch v.T {
			case data.TInt:
				if v.I < 0 {
					return data.Int(-v.I)
				}
				return v
			case data.TFloat:
				return data.Float(math.Abs(v.F))
			}
			return data.Null
		}, nil
	case "lower", "upper":
		if err := arity(1); err != nil {
			return data.TNull, nil, err
		}
		up := name == "upper"
		return data.TString, func(vals []data.Value) data.Value {
			v := args[0](vals)
			if v.IsNull() {
				return data.Null
			}
			if up {
				return data.Str(strings.ToUpper(v.AsString()))
			}
			return data.Str(strings.ToLower(v.AsString()))
		}, nil
	case "length":
		if err := arity(1); err != nil {
			return data.TNull, nil, err
		}
		return data.TInt, func(vals []data.Value) data.Value {
			v := args[0](vals)
			if v.IsNull() {
				return data.Null
			}
			return data.Int(int64(len(v.AsString())))
		}, nil
	case "coalesce":
		if len(args) == 0 {
			return data.TNull, nil, fmt.Errorf("expr: coalesce needs arguments")
		}
		t := data.TNull
		for _, at := range types {
			if at != data.TNull {
				t = at
				break
			}
		}
		return t, func(vals []data.Value) data.Value {
			for _, f := range args {
				if v := f(vals); !v.IsNull() {
					return v
				}
			}
			return data.Null
		}, nil
	case "sqrt":
		if err := arity(1); err != nil {
			return data.TNull, nil, err
		}
		return data.TFloat, func(vals []data.Value) data.Value {
			v := args[0](vals)
			if v.IsNull() || v.AsFloat() < 0 {
				return data.Null
			}
			return data.Float(math.Sqrt(v.AsFloat()))
		}, nil
	case "dist":
		// dist(x1,y1,x2,y2): Euclidean distance; used for proximity joins
		// between device coordinates from the catalog.
		if err := arity(4); err != nil {
			return data.TNull, nil, err
		}
		return data.TFloat, func(vals []data.Value) data.Value {
			var f [4]float64
			for i := range args {
				v := args[i](vals)
				if v.IsNull() {
					return data.Null
				}
				f[i] = v.AsFloat()
			}
			dx, dy := f[0]-f[2], f[1]-f[3]
			return data.Float(math.Sqrt(dx*dx + dy*dy))
		}, nil
	}
	return data.TNull, nil, fmt.Errorf("expr: unknown function %q", c.Name)
}
