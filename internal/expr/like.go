package expr

// Like reports whether s matches the SQL LIKE pattern: '%' matches any
// run of characters (including empty), '_' matches exactly one character,
// and '\' escapes the next pattern character. Matching is case-insensitive,
// matching the paper's capability queries ("p.needed like m.software"),
// where software lists are entered by hand.
func Like(s, pattern string) bool {
	return likeMatch(foldASCII(s), foldASCII(pattern))
}

// likeMatch implements iterative wildcard matching with backtracking over
// the last '%' seen; O(len(s)*len(p)) worst case, linear in practice.
func likeMatch(s, p string) bool {
	var si, pi int
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && p[pi] == '%':
			star, ss = pi, si
			pi++
		case pi < len(p) && (p[pi] == '_' || patChar(p, pi) == s[si]):
			if p[pi] == '\\' {
				pi++
			}
			pi++
			si++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// patChar returns the literal character at pi, looking through an escape.
func patChar(p string, pi int) byte {
	if p[pi] == '\\' && pi+1 < len(p) {
		return p[pi+1]
	}
	return p[pi]
}

// foldASCII lowercases ASCII letters without allocating when already lower.
func foldASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			b := []byte(s)
			for j := i; j < len(b); j++ {
				if c := b[j]; 'A' <= c && c <= 'Z' {
					b[j] = c + 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}
