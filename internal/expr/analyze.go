package expr

import (
	"sort"
	"strings"

	"aspen/internal/data"
)

// Conjuncts flattens a predicate into its top-level AND-ed factors.
// A nil expression yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(Bin); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// Conjoin combines factors with AND; nil for an empty list.
func Conjoin(factors []Expr) Expr {
	var out Expr
	for _, f := range factors {
		if f == nil {
			continue
		}
		if out == nil {
			out = f
		} else {
			out = Bin{Op: OpAnd, L: out, R: f}
		}
	}
	return out
}

// Columns returns the sorted set of column references appearing in e.
func Columns(e Expr) []string {
	set := map[string]bool{}
	collectCols(e, set)
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func collectCols(e Expr, set map[string]bool) {
	switch x := e.(type) {
	case nil:
	case Lit:
	case Col:
		set[x.Ref] = true
	case Bin:
		collectCols(x.L, set)
		collectCols(x.R, set)
	case Un:
		collectCols(x.X, set)
	case IsNull:
		collectCols(x.X, set)
	case Call:
		for _, a := range x.Args {
			collectCols(a, set)
		}
	}
}

// Rels returns the sorted set of relation qualifiers referenced by e.
// Unqualified columns contribute the empty string.
func Rels(e Expr) []string {
	set := map[string]bool{}
	for _, c := range Columns(e) {
		rel, _ := data.SplitQualified(c)
		set[strings.ToLower(rel)] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// BoundBy reports whether every column in e resolves in schema.
func BoundBy(e Expr, s *data.Schema) bool {
	for _, c := range Columns(e) {
		if !s.HasCol(c) {
			return false
		}
	}
	return true
}

// EquiJoin inspects a conjunct and, when it is an equality between one
// column of left and one column of right, returns the two column refs
// (oriented left, right).
func EquiJoin(e Expr, left, right *data.Schema) (lref, rref string, ok bool) {
	b, isBin := e.(Bin)
	if !isBin || b.Op != OpEq {
		return "", "", false
	}
	lc, lok := b.L.(Col)
	rc, rok := b.R.(Col)
	if !lok || !rok {
		return "", "", false
	}
	switch {
	case left.HasCol(lc.Ref) && right.HasCol(rc.Ref):
		return lc.Ref, rc.Ref, true
	case left.HasCol(rc.Ref) && right.HasCol(lc.Ref):
		return rc.Ref, lc.Ref, true
	}
	return "", "", false
}

// Requalify rewrites every column reference "oldRel.col" to "newRel.col",
// and re-qualifies bare references belonging to cols. Used when inlining
// views under an alias.
func Requalify(e Expr, oldRel, newRel string) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case Lit:
		return x
	case Col:
		rel, name := data.SplitQualified(x.Ref)
		if strings.EqualFold(rel, oldRel) {
			return Col{Ref: newRel + "." + name}
		}
		return x
	case Bin:
		return Bin{Op: x.Op, L: Requalify(x.L, oldRel, newRel), R: Requalify(x.R, oldRel, newRel)}
	case Un:
		return Un{Op: x.Op, X: Requalify(x.X, oldRel, newRel)}
	case IsNull:
		return IsNull{X: Requalify(x.X, oldRel, newRel), Neg: x.Neg}
	case Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Requalify(a, oldRel, newRel)
		}
		return Call{Name: x.Name, Args: args}
	}
	return e
}

// Substitute replaces column references per the mapping (exact, qualified
// match) with replacement expressions. Used to inline view projections.
func Substitute(e Expr, mapping map[string]Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case Lit:
		return x
	case Col:
		if rep, ok := mapping[strings.ToLower(x.Ref)]; ok {
			return rep
		}
		return x
	case Bin:
		return Bin{Op: x.Op, L: Substitute(x.L, mapping), R: Substitute(x.R, mapping)}
	case Un:
		return Un{Op: x.Op, X: Substitute(x.X, mapping)}
	case IsNull:
		return IsNull{X: Substitute(x.X, mapping), Neg: x.Neg}
	case Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Substitute(a, mapping)
		}
		return Call{Name: x.Name, Args: args}
	}
	return e
}

// Equal reports structural equality of expression trees.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// Selectivity gives a crude textbook selectivity estimate for a conjunct,
// used by both per-engine optimizers when the catalog has no statistics.
func Selectivity(e Expr) float64 {
	switch x := e.(type) {
	case Bin:
		switch x.Op {
		case OpEq:
			return 0.1
		case OpNe:
			return 0.9
		case OpLt, OpLe, OpGt, OpGe:
			return 0.3
		case OpLike:
			return 0.25
		case OpAnd:
			return Selectivity(x.L) * Selectivity(x.R)
		case OpOr:
			l, r := Selectivity(x.L), Selectivity(x.R)
			return l + r - l*r
		}
	case Un:
		if x.Op == OpNot {
			return 1 - Selectivity(x.X)
		}
	case IsNull:
		return 0.05
	}
	return 0.5
}
