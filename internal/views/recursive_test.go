package views

import (
	"fmt"
	"math/rand"
	"testing"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/stream"
)

// tcSchemas builds the classic transitive-closure view:
//
//	paths(src, dst) = edges(src, dst) ∪ π_{p.src, e.dst}(paths p ⋈_{p.dst=e.src} edges e)
func tcSchemas() (view, edges *data.Schema) {
	view = data.NewSchema("p", data.Col("src", data.TString), data.Col("dst", data.TString))
	edges = data.NewSchema("e", data.Col("src", data.TString), data.Col("dst", data.TString))
	return view, edges
}

func newTC(t *testing.T, maxDepth int) (*View, *stream.Materialize) {
	t.Helper()
	vs, es := tcSchemas()
	mat := stream.NewMaterialize(vs)
	v, err := New(Config{
		Schema:     vs,
		EdgeSchema: es,
		ViewKey:    []string{"p.dst"},
		EdgeKey:    []string{"e.src"},
		Project: []stream.ProjectItem{
			{Expr: expr.C("p.src")},
			{Expr: expr.C("e.dst")},
		},
		MaxDepth: maxDepth,
	}, mat)
	if err != nil {
		t.Fatal(err)
	}
	return v, mat
}

func edgeT(src, dst string) data.Tuple {
	return data.NewTuple(0, data.Str(src), data.Str(dst))
}

// addEdge feeds an edge into both inputs, as the planner wires transitive
// closure: every edge is a base path and a recursive join input.
func addEdge(v *View, src, dst string) {
	v.BaseInput().Push(edgeT(src, dst))
	v.EdgeInput().Push(edgeT(src, dst))
}

func delEdge(v *View, src, dst string) {
	v.BaseInput().Push(edgeT(src, dst).Negate())
	v.EdgeInput().Push(edgeT(src, dst).Negate())
}

func pairs(v *View) map[string]bool {
	out := map[string]bool{}
	for _, t := range v.Snapshot() {
		out[t.Vals[0].AsString()+">"+t.Vals[1].AsString()] = true
	}
	return out
}

// reachBrute computes reachability pairs by Floyd-Warshall-ish closure.
func reachBrute(edges map[string]bool) map[string]bool {
	nodes := map[string]bool{}
	adj := map[string]map[string]bool{}
	for e := range edges {
		var a, b string
		fmt.Sscanf(e, "%s", new(string)) // placeholder to keep fmt import honest
		for i := 0; i < len(e); i++ {
			if e[i] == '>' {
				a, b = e[:i], e[i+1:]
			}
		}
		nodes[a], nodes[b] = true, true
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		adj[a][b] = true
	}
	out := map[string]bool{}
	for e := range edges {
		out[e] = true
	}
	changed := true
	for changed {
		changed = false
		for ab := range out {
			var a, b string
			for i := 0; i < len(ab); i++ {
				if ab[i] == '>' {
					a, b = ab[:i], ab[i+1:]
				}
			}
			for c := range adj[b] {
				key := a + ">" + c
				if !out[key] {
					out[key] = true
					changed = true
				}
			}
		}
	}
	_ = nodes
	return out
}

func TestTransitiveClosureInsert(t *testing.T) {
	v, mat := newTC(t, 0)
	addEdge(v, "a", "b")
	addEdge(v, "b", "c")
	addEdge(v, "c", "d")
	got := pairs(v)
	want := []string{"a>b", "b>c", "c>d", "a>c", "b>d", "a>d"}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v", got)
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("missing %s in %v", w, got)
		}
	}
	// materialized downstream agrees
	if mat.Len() != len(want) {
		t.Fatalf("mat = %d", mat.Len())
	}
}

func TestTransitiveClosureDeleteSimple(t *testing.T) {
	v, mat := newTC(t, 0)
	addEdge(v, "a", "b")
	addEdge(v, "b", "c")
	delEdge(v, "b", "c")
	got := pairs(v)
	if len(got) != 1 || !got["a>b"] {
		t.Fatalf("after delete = %v", got)
	}
	if mat.Len() != 1 {
		t.Fatalf("mat after delete = %d", mat.Len())
	}
}

func TestDeleteKeepsAlternatePath(t *testing.T) {
	v, _ := newTC(t, 0)
	addEdge(v, "a", "b")
	addEdge(v, "b", "d")
	addEdge(v, "a", "c")
	addEdge(v, "c", "d")
	delEdge(v, "b", "d") // a>d still reachable via c
	got := pairs(v)
	if !got["a>d"] {
		t.Fatalf("alternate path lost: %v", got)
	}
	if got["b>d"] {
		t.Fatalf("deleted edge lingers: %v", got)
	}
}

// The cyclic-support case where derivation counting is wrong: a→b→c→a.
// Deleting a→b must retract everything derived through it even though the
// cycle tuples mutually support each other.
func TestDeleteBreaksCyclicSupport(t *testing.T) {
	v, _ := newTC(t, 0)
	addEdge(v, "a", "b")
	addEdge(v, "b", "c")
	addEdge(v, "c", "a")
	before := pairs(v)
	if len(before) != 9 { // complete closure of a 3-cycle
		t.Fatalf("closure = %v", before)
	}
	delEdge(v, "a", "b")
	got := pairs(v)
	want := map[string]bool{"b>c": true, "c>a": true, "b>a": true}
	if len(got) != len(want) {
		t.Fatalf("after breaking cycle = %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing %s: %v", k, got)
		}
	}
}

func TestSelfLoopIsHarmless(t *testing.T) {
	v, _ := newTC(t, 0)
	addEdge(v, "a", "a")
	addEdge(v, "a", "b")
	got := pairs(v)
	if !got["a>a"] || !got["a>b"] || len(got) != 2 {
		t.Fatalf("self loop closure = %v", got)
	}
	delEdge(v, "a", "a")
	got = pairs(v)
	if got["a>a"] || !got["a>b"] {
		t.Fatalf("after self-loop delete = %v", got)
	}
}

func TestMaxDepthBoundsRecursion(t *testing.T) {
	v, _ := newTC(t, 2)
	addEdge(v, "a", "b")
	addEdge(v, "b", "c")
	addEdge(v, "c", "d")
	addEdge(v, "d", "e")
	got := pairs(v)
	// depth ≤ 2 recursive steps: paths of length ≤ 3 edges
	if !got["a>d"] {
		t.Fatalf("length-3 path missing: %v", got)
	}
	if got["a>e"] {
		t.Fatalf("length-4 path should be pruned at MaxDepth=2: %v", got)
	}
}

func TestExplainProvenance(t *testing.T) {
	v, _ := newTC(t, 0)
	addEdge(v, "a", "b")
	addEdge(v, "b", "c")
	base := v.Explain(edgeT("a", "b"))
	if len(base) != 1 || !base[0].Base {
		t.Fatalf("base provenance = %+v", base)
	}
	derived := v.Explain(edgeT("a", "c"))
	if len(derived) != 1 || derived[0].Base {
		t.Fatalf("derived provenance = %+v", derived)
	}
	if derived[0].ViewParent == "" || derived[0].EdgeParent == "" {
		t.Fatalf("parents missing: %+v", derived)
	}
	if v.Explain(edgeT("x", "y")) != nil {
		t.Fatal("phantom provenance")
	}
	// multiple derivations recorded
	addEdge(v, "a", "x")
	addEdge(v, "x", "c")
	multi := v.Explain(edgeT("a", "c"))
	if len(multi) != 2 {
		t.Fatalf("expected 2 derivations: %+v", multi)
	}
}

func TestDuplicateInsertIdempotent(t *testing.T) {
	v, mat := newTC(t, 0)
	addEdge(v, "a", "b")
	addEdge(v, "a", "b") // again
	if v.Len() != 1 {
		t.Fatalf("len = %d", v.Len())
	}
	// one delete removes one multiplicity; the fact survives
	delEdge(v, "a", "b")
	if v.Len() != 1 {
		t.Fatalf("multiplicity ignored: %v", v.Snapshot())
	}
	delEdge(v, "a", "b")
	if v.Len() != 0 || mat.Len() != 0 {
		t.Fatalf("fact lingers after final delete")
	}
	// deleting a missing edge/base is a no-op
	delEdge(v, "zz", "qq")
}

func TestResidualPredicate(t *testing.T) {
	vs, es := tcSchemas()
	mat := stream.NewMaterialize(vs)
	v, err := New(Config{
		Schema: vs, EdgeSchema: es,
		ViewKey: []string{"p.dst"}, EdgeKey: []string{"e.src"},
		Residual: expr.Bin{Op: expr.OpNe, L: expr.C("p.src"), R: expr.C("e.dst")},
		Project: []stream.ProjectItem{
			{Expr: expr.C("p.src")}, {Expr: expr.C("e.dst")},
		},
	}, mat)
	if err != nil {
		t.Fatal(err)
	}
	addEdge(v, "a", "b")
	addEdge(v, "b", "a") // residual forbids deriving a>a
	got := pairs(v)
	if got["a>a"] || got["b>b"] {
		t.Fatalf("residual violated: %v", got)
	}
}

func TestConfigErrors(t *testing.T) {
	vs, es := tcSchemas()
	sink := stream.NewCollector(vs)
	bad := []Config{
		{Schema: vs, EdgeSchema: es, ViewKey: []string{"p.dst"}, EdgeKey: nil,
			Project: []stream.ProjectItem{{Expr: expr.C("p.src")}, {Expr: expr.C("e.dst")}}},
		{Schema: vs, EdgeSchema: es, ViewKey: []string{"p.dst"}, EdgeKey: []string{"e.src"},
			Project: []stream.ProjectItem{{Expr: expr.C("p.src")}}},
		{Schema: vs, EdgeSchema: es, ViewKey: []string{"bogus"}, EdgeKey: []string{"e.src"},
			Project: []stream.ProjectItem{{Expr: expr.C("p.src")}, {Expr: expr.C("e.dst")}}},
		{Schema: vs, EdgeSchema: es, ViewKey: []string{"p.dst"}, EdgeKey: []string{"bogus"},
			Project: []stream.ProjectItem{{Expr: expr.C("p.src")}, {Expr: expr.C("e.dst")}}},
		{Schema: vs, EdgeSchema: es, ViewKey: []string{"p.dst"}, EdgeKey: []string{"e.src"},
			Project: []stream.ProjectItem{{Expr: expr.C("zz")}, {Expr: expr.C("e.dst")}}},
		{Schema: vs, EdgeSchema: es, ViewKey: []string{"p.dst"}, EdgeKey: []string{"e.src"},
			Residual: expr.C("zz"),
			Project:  []stream.ProjectItem{{Expr: expr.C("p.src")}, {Expr: expr.C("e.dst")}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, sink); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// Property test (E6 correctness): under random interleaved inserts and
// deletes, the incrementally maintained closure equals a from-scratch
// recomputation after every operation.
func TestIncrementalEqualsRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	nodes := []string{"a", "b", "c", "d", "e"}
	v, _ := newTC(t, 0)
	live := map[string]bool{}

	for step := 0; step < 400; step++ {
		a, b := nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]
		key := a + ">" + b
		if live[key] && r.Intn(2) == 0 {
			delEdge(v, a, b)
			delete(live, key)
		} else if !live[key] {
			addEdge(v, a, b)
			live[key] = true
		}
		got := pairs(v)
		want := reachBrute(live)
		if len(got) != len(want) {
			t.Fatalf("step %d: %d pairs, want %d\nedges=%v\ngot=%v\nwant=%v",
				step, len(got), len(want), live, got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("step %d: missing %s", step, k)
			}
		}
	}
	st := v.Stats()
	if st.DerivationsTried == 0 || st.TuplesTouched == 0 || st.Emitted == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

// Distance-annotated closure with bounded depth: the building-routing
// query shape (path cost accumulates through the recursion).
func TestDistanceClosure(t *testing.T) {
	view := data.NewSchema("p", data.Col("src", data.TString),
		data.Col("dst", data.TString), data.Col("dist", data.TFloat))
	es := data.NewSchema("e", data.Col("src", data.TString),
		data.Col("dst", data.TString), data.Col("dist", data.TFloat))
	mat := stream.NewMaterialize(view)
	v, err := New(Config{
		Schema: view, EdgeSchema: es,
		ViewKey: []string{"p.dst"}, EdgeKey: []string{"e.src"},
		Project: []stream.ProjectItem{
			{Expr: expr.C("p.src")},
			{Expr: expr.C("e.dst")},
			{Expr: expr.Bin{Op: expr.OpAdd, L: expr.C("p.dist"), R: expr.C("e.dist")}},
		},
		MaxDepth: 4,
	}, mat)
	if err != nil {
		t.Fatal(err)
	}
	add := func(a, b string, d float64) {
		t := data.NewTuple(0, data.Str(a), data.Str(b), data.Float(d))
		v.BaseInput().Push(t)
		v.EdgeInput().Push(t)
	}
	add("lobby", "hall1", 40)
	add("hall1", "lab101", 25)
	add("lobby", "hall2", 30)
	add("hall2", "lab101", 50)
	found := map[float64]bool{}
	for _, tu := range v.Snapshot() {
		if tu.Vals[0].AsString() == "lobby" && tu.Vals[1].AsString() == "lab101" {
			found[tu.Vals[2].AsFloat()] = true
		}
	}
	if !found[65] || !found[80] {
		t.Fatalf("distances = %v, want 65 and 80", found)
	}
}
