package views

import (
	"fmt"
	"testing"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/stream"
)

// tcView builds a transitive-closure view (the E6 shape) delivering deltas
// to a collector.
func tcView(t *testing.T) (*View, *stream.Collector) {
	t.Helper()
	vs := data.NewSchema("p", data.Col("src", data.TString), data.Col("dst", data.TString))
	es := data.NewSchema("e", data.Col("src", data.TString), data.Col("dst", data.TString))
	col := stream.NewCollector(vs)
	v, err := New(Config{
		Schema: vs, EdgeSchema: es,
		ViewKey: []string{"p.dst"}, EdgeKey: []string{"e.src"},
		Project: []stream.ProjectItem{{Expr: expr.C("p.src")}, {Expr: expr.C("e.dst")}},
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	return v, col
}

func pair(a, b string) data.Tuple {
	return data.NewTuple(0, data.Str(a), data.Str(b))
}

// Forcing every fact and edge into one hash bucket must not change the
// maintained closure: identity, join index, and provenance all run through
// collision verification.
func TestRecursiveViewUnderForcedCollisions(t *testing.T) {
	old := testHashMask
	testHashMask = 0
	t.Cleanup(func() { testHashMask = old })

	v, _ := tcView(t)
	// Chain a -> b -> c -> d as base facts + edges (the bench idiom).
	names := []string{"a", "b", "c", "d"}
	for i := 0; i+1 < len(names); i++ {
		tu := pair(names[i], names[i+1])
		v.BaseInput().Push(tu)
		v.EdgeInput().Push(tu)
	}
	// Closure of a 4-chain: (a,b),(a,c),(a,d),(b,c),(b,d),(c,d).
	if v.Len() != 6 {
		t.Fatalf("closure size = %d, want 6: %v", v.Len(), v.Snapshot())
	}
	if got := v.Explain(pair("a", "c")); len(got) == 0 {
		t.Fatal("no provenance for derived fact")
	}

	// Deleting the middle edge must retract exactly the paths through it.
	mid := pair("b", "c")
	v.BaseInput().Push(mid.Negate())
	v.EdgeInput().Push(mid.Negate())
	// Remaining: (a,b),(c,d).
	if v.Len() != 2 {
		t.Fatalf("after delete, closure = %d, want 2: %v", v.Len(), v.Snapshot())
	}
	snap := v.Snapshot()
	want := map[string]bool{"a|b": true, "c|d": true}
	for _, s := range snap {
		k := fmt.Sprintf("%s|%s", s.Vals[0].AsString(), s.Vals[1].AsString())
		if !want[k] {
			t.Fatalf("unexpected survivor %v", s)
		}
	}

	// Re-inserting restores the closure through resurrection paths.
	v.BaseInput().Push(mid)
	v.EdgeInput().Push(mid)
	if v.Len() != 6 {
		t.Fatalf("after re-insert, closure = %d, want 6", v.Len())
	}
}

// Repeated insert/delete of a base fact under a long-lived edge must not
// accumulate dead children in the surviving edge's provenance set.
func TestProvenanceBoundedUnderChurn(t *testing.T) {
	v, _ := tcView(t)
	v.EdgeInput().Push(pair("b", "c"))
	for i := 0; i < 100; i++ {
		v.BaseInput().Push(pair("a", "b"))
		v.BaseInput().Push(pair("a", "b").Negate())
	}
	if v.Len() != 0 {
		t.Fatalf("facts leaked: %d", v.Len())
	}
	e := v.findEdge(pair("b", "c"), v.hasher.Hash(pair("b", "c")))
	if e == nil {
		t.Fatal("edge vanished")
	}
	if n := len(e.children); n != 0 {
		t.Fatalf("edge retains %d dead children after churn", n)
	}
}

// Distinct tuples with a forced-equal hash must stay distinct facts.
func TestRecursiveViewCollisionIdentity(t *testing.T) {
	old := testHashMask
	testHashMask = 0
	t.Cleanup(func() { testHashMask = old })

	v, _ := tcView(t)
	v.BaseInput().Push(pair("x", "y"))
	v.BaseInput().Push(pair("x", "z"))
	v.BaseInput().Push(pair("x", "y")) // duplicate: multiplicity, not a new fact
	if v.Len() != 2 {
		t.Fatalf("facts = %d, want 2", v.Len())
	}
	v.BaseInput().Push(pair("x", "y").Negate())
	if v.Len() != 2 {
		t.Fatalf("multiplicity delete removed a fact: %d", v.Len())
	}
	v.BaseInput().Push(pair("x", "y").Negate())
	if v.Len() != 1 {
		t.Fatalf("facts after full delete = %d, want 1", v.Len())
	}
}
