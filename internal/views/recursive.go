// Package views implements maintenance of recursive stream views with
// provenance, the stream-engine capability the paper highlights for
// transitive-closure queries ("computation of neighborhoods and paths", §3;
// ref [11], Liu et al., ICDE'09).
//
// A View is a linear recursive query
//
//	V = lfp( Base ∪ π(V ⋈ Edge) )
//
// maintained incrementally under insertions and deletions on both inputs.
// Every derivation discovered is recorded as provenance: tuple t carries
// the set of (view-parent, edge-parent) pairs that produce it. Insertions
// run semi-naive evaluation. Deletions run provenance-guided DRed: the
// affected downward closure is found by walking provenance (no joins), and
// re-derivation consults the recorded alternative derivations rather than
// re-running the query — including correctly retracting cyclically
// self-supporting tuples, where simple derivation counting is wrong.
package views

import (
	"fmt"
	"sort"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// Config defines one linear recursive view.
type Config struct {
	// Schema is the view's (and the base input's) schema.
	Schema *data.Schema
	// EdgeSchema is the schema of the relation joined in the recursive rule.
	EdgeSchema *data.Schema
	// ViewKey and EdgeKey are the equi-join columns of the recursive rule
	// (V.ViewKey = E.EdgeKey), equal length.
	ViewKey, EdgeKey []string
	// Residual is an optional extra predicate over Concat(Schema, EdgeSchema).
	Residual expr.Expr
	// Project maps Concat(Schema, EdgeSchema) back to Schema (same arity).
	Project []stream.ProjectItem
	// MaxDepth bounds recursion depth (number of recursive steps from a
	// base fact); 0 means unbounded. Required when the projection
	// manufactures unboundedly many values on cyclic data (e.g. summed
	// distances or concatenated paths).
	MaxDepth int
}

// Derivation is one recorded way a view tuple was produced, exposed by
// Explain.
type Derivation struct {
	// Base marks a tuple inserted directly through the base input.
	Base bool
	// ViewParent and EdgeParent render the antecedent tuples.
	ViewParent, EdgeParent string
}

type deriv struct {
	vParent, eParent string
}

type fact struct {
	t        data.Tuple
	baseMult int
	derivs   map[deriv]struct{}
	depth    int
}

type edge struct {
	t    data.Tuple
	mult int
}

// View is a maintained recursive view.
type View struct {
	cfg      Config
	joined   *data.Schema
	vKeyIdx  []int
	eKeyIdx  []int
	residual *expr.Compiled
	project  []*expr.Compiled
	out      stream.Operator
	facts    map[string]*fact
	vIdx     map[string]map[string]struct{} // view join key -> fact keys
	edges    map[string]*edge
	eIdx     map[string]map[string]struct{} // edge join key -> edge keys
	childOfV map[string]map[string]struct{} // fact key -> child fact keys
	childOfE map[string]map[string]struct{} // edge key -> child fact keys
	stats    Stats
	baseIn   baseInput
	edgeIn   edgeInput
}

// Stats counts maintenance work, the E6 efficiency metric.
type Stats struct {
	// DerivationsTried counts rule firings attempted.
	DerivationsTried int64
	// TuplesTouched counts fact insert/delete/resurrect operations.
	TuplesTouched int64
	// Emitted counts deltas pushed downstream.
	Emitted int64
}

// New builds a view delivering its output deltas to out.
func New(cfg Config, out stream.Operator) (*View, error) {
	if len(cfg.ViewKey) != len(cfg.EdgeKey) {
		return nil, fmt.Errorf("views: join key arity mismatch")
	}
	if len(cfg.Project) != cfg.Schema.Arity() {
		return nil, fmt.Errorf("views: projection arity %d != view arity %d",
			len(cfg.Project), cfg.Schema.Arity())
	}
	v := &View{
		cfg:      cfg,
		joined:   cfg.Schema.Concat(cfg.EdgeSchema),
		out:      out,
		facts:    map[string]*fact{},
		vIdx:     map[string]map[string]struct{}{},
		edges:    map[string]*edge{},
		eIdx:     map[string]map[string]struct{}{},
		childOfV: map[string]map[string]struct{}{},
		childOfE: map[string]map[string]struct{}{},
	}
	for _, c := range cfg.ViewKey {
		i, err := cfg.Schema.ColIndex(c)
		if err != nil {
			return nil, err
		}
		v.vKeyIdx = append(v.vKeyIdx, i)
	}
	for _, c := range cfg.EdgeKey {
		i, err := cfg.EdgeSchema.ColIndex(c)
		if err != nil {
			return nil, err
		}
		v.eKeyIdx = append(v.eKeyIdx, i)
	}
	if cfg.Residual != nil {
		c, err := expr.Bind(cfg.Residual, v.joined)
		if err != nil {
			return nil, err
		}
		v.residual = c
	}
	for _, it := range cfg.Project {
		c, err := expr.Bind(it.Expr, v.joined)
		if err != nil {
			return nil, err
		}
		v.project = append(v.project, c)
	}
	v.baseIn = baseInput{v}
	v.edgeIn = edgeInput{v}
	return v, nil
}

// BaseInput accepts deltas of base facts (view schema).
func (v *View) BaseInput() stream.Operator { return &v.baseIn }

// EdgeInput accepts deltas of the joined relation (edge schema).
func (v *View) EdgeInput() stream.Operator { return &v.edgeIn }

// Schema returns the view schema.
func (v *View) Schema() *data.Schema { return v.cfg.Schema }

// Stats returns the maintenance work counters.
func (v *View) Stats() Stats { return v.stats }

// Len returns the current number of view tuples.
func (v *View) Len() int { return len(v.facts) }

// Snapshot returns the current view contents sorted by canonical key.
func (v *View) Snapshot() []data.Tuple {
	out := make([]data.Tuple, 0, len(v.facts))
	for _, f := range v.facts {
		out = append(out, f.t.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Explain returns the recorded derivations of a tuple currently in the
// view (nil when absent).
func (v *View) Explain(t data.Tuple) []Derivation {
	f, ok := v.facts[t.Key()]
	if !ok {
		return nil
	}
	var out []Derivation
	if f.baseMult > 0 {
		out = append(out, Derivation{Base: true})
	}
	for d := range f.derivs {
		vp, ep := "", ""
		if pf, ok := v.facts[d.vParent]; ok {
			vp = pf.t.String()
		}
		if pe, ok := v.edges[d.eParent]; ok {
			ep = pe.t.String()
		}
		out = append(out, Derivation{ViewParent: vp, EdgeParent: ep})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Base != out[j].Base {
			return out[i].Base
		}
		if out[i].ViewParent != out[j].ViewParent {
			return out[i].ViewParent < out[j].ViewParent
		}
		return out[i].EdgeParent < out[j].EdgeParent
	})
	return out
}

type baseInput struct{ v *View }

func (b *baseInput) Schema() *data.Schema { return b.v.cfg.Schema }
func (b *baseInput) Push(t data.Tuple) {
	if t.Op == data.Delete {
		b.v.deleteBase(t)
	} else {
		b.v.insertBase(t)
	}
}

type edgeInput struct{ v *View }

func (e *edgeInput) Schema() *data.Schema { return e.v.cfg.EdgeSchema }
func (e *edgeInput) Push(t data.Tuple) {
	if t.Op == data.Delete {
		e.v.deleteEdge(t)
	} else {
		e.v.insertEdge(t)
	}
}

// --- insertion ---------------------------------------------------------

func (v *View) insertBase(t data.Tuple) {
	key := t.Key()
	f := v.facts[key]
	fresh := f == nil
	if fresh {
		f = &fact{t: t.Clone(), derivs: map[deriv]struct{}{}, depth: 0}
		f.t.Op = data.Insert
		v.facts[key] = f
		v.addVIdx(key, f)
	}
	f.baseMult++
	v.stats.TuplesTouched++
	if fresh {
		v.emit(f.t, data.Insert, t.TS)
		v.expand([]string{key}, t.TS)
	} else if f.depth > 0 {
		// Base support shortens the depth to zero; re-expand under MaxDepth.
		f.depth = 0
		v.expand([]string{key}, t.TS)
	}
}

func (v *View) insertEdge(t data.Tuple) {
	key := t.Key()
	e := v.edges[key]
	if e == nil {
		e = &edge{t: t.Clone()}
		e.t.Op = data.Insert
		v.edges[key] = e
		jk := t.KeyOn(v.eKeyIdx)
		if v.eIdx[jk] == nil {
			v.eIdx[jk] = map[string]struct{}{}
		}
		v.eIdx[jk][key] = struct{}{}
	}
	e.mult++
	if e.mult > 1 {
		return
	}
	// Probe existing view facts joining with the new edge.
	jk := t.KeyOn(v.eKeyIdx)
	var work []string
	for fk := range v.vIdx[jk] {
		if nk, ok := v.deriveOne(fk, key, t.TS); ok {
			work = append(work, nk)
		}
	}
	v.expand(work, t.TS)
}

// expand runs semi-naive derivation from the given newly (re)inserted fact
// keys.
func (v *View) expand(work []string, ts vtime.Time) {
	for len(work) > 0 {
		fk := work[0]
		work = work[1:]
		f := v.facts[fk]
		if f == nil {
			continue
		}
		jk := f.t.KeyOn(v.vKeyIdx)
		for ek := range v.eIdx[jk] {
			if nk, ok := v.deriveOne(fk, ek, ts); ok {
				work = append(work, nk)
			}
		}
	}
}

// deriveOne fires the recursive rule for one (view fact, edge) pair.
// It returns the child key and whether the child is new or had its depth
// improved (requiring further expansion).
func (v *View) deriveOne(fk, ek string, ts vtime.Time) (string, bool) {
	f := v.facts[fk]
	e := v.edges[ek]
	if f == nil || e == nil {
		return "", false
	}
	if v.cfg.MaxDepth > 0 && f.depth+1 > v.cfg.MaxDepth {
		return "", false
	}
	v.stats.DerivationsTried++
	joined := f.t.Concat(e.t)
	joined.Op = data.Insert
	if v.residual != nil && !v.residual.EvalBool(joined) {
		return "", false
	}
	vals := make([]data.Value, len(v.project))
	for i, p := range v.project {
		vals[i] = p.Eval(joined)
	}
	child := data.Tuple{Vals: vals, TS: ts, Op: data.Insert}
	ck := child.Key()
	if ck == fk {
		return "", false // self-derivation carries no information
	}
	d := deriv{vParent: fk, eParent: ek}
	cf := v.facts[ck]
	if cf != nil {
		if _, dup := cf.derivs[d]; dup {
			return "", false
		}
		cf.derivs[d] = struct{}{}
		v.link(fk, ek, ck)
		if f.depth+1 < cf.depth {
			cf.depth = f.depth + 1
			return ck, true // depth improved: may enable deeper derivations
		}
		return "", false
	}
	cf = &fact{t: child.Clone(), derivs: map[deriv]struct{}{d: {}}, depth: f.depth + 1}
	v.facts[ck] = cf
	v.addVIdx(ck, cf)
	v.link(fk, ek, ck)
	v.stats.TuplesTouched++
	v.emit(cf.t, data.Insert, ts)
	return ck, true
}

func (v *View) addVIdx(key string, f *fact) {
	jk := f.t.KeyOn(v.vKeyIdx)
	if v.vIdx[jk] == nil {
		v.vIdx[jk] = map[string]struct{}{}
	}
	v.vIdx[jk][key] = struct{}{}
}

func (v *View) link(fk, ek, child string) {
	if v.childOfV[fk] == nil {
		v.childOfV[fk] = map[string]struct{}{}
	}
	v.childOfV[fk][child] = struct{}{}
	if v.childOfE[ek] == nil {
		v.childOfE[ek] = map[string]struct{}{}
	}
	v.childOfE[ek][child] = struct{}{}
}

// --- deletion (provenance-guided DRed) ---------------------------------

func (v *View) deleteBase(t data.Tuple) {
	key := t.Key()
	f := v.facts[key]
	if f == nil || f.baseMult == 0 {
		return
	}
	f.baseMult--
	v.stats.TuplesTouched++
	if f.baseMult > 0 {
		return
	}
	v.dred(map[string]struct{}{key: {}}, t.TS)
}

func (v *View) deleteEdge(t data.Tuple) {
	key := t.Key()
	e := v.edges[key]
	if e == nil {
		return
	}
	e.mult--
	if e.mult > 0 {
		return
	}
	// Remove the edge and every derivation that used it.
	jk := e.t.KeyOn(v.eKeyIdx)
	delete(v.eIdx[jk], key)
	if len(v.eIdx[jk]) == 0 {
		delete(v.eIdx, jk)
	}
	delete(v.edges, key)
	suspects := map[string]struct{}{}
	for ck := range v.childOfE[key] {
		if cf := v.facts[ck]; cf != nil {
			for d := range cf.derivs {
				if d.eParent == key {
					delete(cf.derivs, d)
				}
			}
			suspects[ck] = struct{}{}
		}
	}
	delete(v.childOfE, key)
	v.dred(suspects, t.TS)
}

// dred deletes the downward provenance closure of the seed facts, then
// resurrects every suspect that retains a valid derivation (or base
// support), emitting retractions only for tuples that are truly gone.
func (v *View) dred(seeds map[string]struct{}, ts vtime.Time) {
	// Phase 1: overestimate — everything reachable from the seeds through
	// provenance edges. Required for cyclic support: two tuples deriving
	// each other must both fall, even though their derivation sets are
	// non-empty.
	suspect := map[string]struct{}{}
	stack := make([]string, 0, len(seeds))
	for k := range seeds {
		if f := v.facts[k]; f != nil && f.baseMult == 0 {
			// Facts that still have base support stand on their own and do
			// not fall; their subtree is safe too.
			suspect[k] = struct{}{}
			stack = append(stack, k)
		}
	}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for ck := range v.childOfV[k] {
			if _, seen := suspect[ck]; seen {
				continue
			}
			if cf := v.facts[ck]; cf != nil && cf.baseMult == 0 {
				suspect[ck] = struct{}{}
				stack = append(stack, ck)
			}
		}
	}

	// Phase 2: resurrect suspects with a surviving derivation, in rounds,
	// since resurrecting one fact can re-validate derivations of another.
	alive := func(k string) bool {
		if _, isSuspect := suspect[k]; isSuspect {
			return false
		}
		_, ok := v.facts[k]
		return ok
	}
	changed := true
	for changed {
		changed = false
		for k := range suspect {
			f := v.facts[k]
			best := -1
			for d := range f.derivs {
				pf := v.facts[d.vParent]
				if pf == nil || !alive(d.vParent) {
					continue
				}
				if _, eAlive := v.edges[d.eParent]; !eAlive {
					continue
				}
				nd := pf.depth + 1
				if v.cfg.MaxDepth > 0 && nd > v.cfg.MaxDepth {
					continue
				}
				if best < 0 || nd < best {
					best = nd
				}
			}
			if best >= 0 {
				f.depth = best
				delete(suspect, k)
				v.stats.TuplesTouched++
				changed = true
			}
		}
	}

	// Phase 3: truly delete the rest.
	for k := range suspect {
		f := v.facts[k]
		jk := f.t.KeyOn(v.vKeyIdx)
		delete(v.vIdx[jk], k)
		if len(v.vIdx[jk]) == 0 {
			delete(v.vIdx, jk)
		}
		delete(v.facts, k)
		v.stats.TuplesTouched++
		v.emit(f.t, data.Delete, ts)
	}
	// Purge dangling provenance references to the deleted facts.
	for k := range suspect {
		for ck := range v.childOfV[k] {
			if cf := v.facts[ck]; cf != nil {
				for d := range cf.derivs {
					if d.vParent == k {
						delete(cf.derivs, d)
					}
				}
			}
		}
		delete(v.childOfV, k)
	}
}

func (v *View) emit(t data.Tuple, op data.Op, ts vtime.Time) {
	out := t.Clone()
	out.Op = op
	out.TS = ts
	v.stats.Emitted++
	v.out.Push(out)
}
