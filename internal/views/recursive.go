// Package views implements maintenance of recursive stream views with
// provenance, the stream-engine capability the paper highlights for
// transitive-closure queries ("computation of neighborhoods and paths", §3;
// ref [11], Liu et al., ICDE'09).
//
// A View is a linear recursive query
//
//	V = lfp( Base ∪ π(V ⋈ Edge) )
//
// maintained incrementally under insertions and deletions on both inputs.
// Every derivation discovered is recorded as provenance: tuple t carries
// the set of (view-parent, edge-parent) pairs that produce it. Insertions
// run semi-naive evaluation. Deletions run provenance-guided DRed: the
// affected downward closure is found by walking provenance (no joins), and
// re-derivation consults the recorded alternative derivations rather than
// re-running the query — including correctly retracting cyclically
// self-supporting tuples, where simple derivation counting is wrong.
//
// Facts and edges are identified by 64-bit hashes of their canonical key
// with collision buckets verified by EqualVals — no key strings are
// materialized — and the provenance graph links *fact / *edge pointers
// directly, so maintenance allocates only when a genuinely new tuple
// enters the view.
package views

import (
	"fmt"
	"sort"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// Config defines one linear recursive view.
type Config struct {
	// Schema is the view's (and the base input's) schema.
	Schema *data.Schema
	// EdgeSchema is the schema of the relation joined in the recursive rule.
	EdgeSchema *data.Schema
	// ViewKey and EdgeKey are the equi-join columns of the recursive rule
	// (V.ViewKey = E.EdgeKey), equal length.
	ViewKey, EdgeKey []string
	// Residual is an optional extra predicate over Concat(Schema, EdgeSchema).
	Residual expr.Expr
	// Project maps Concat(Schema, EdgeSchema) back to Schema (same arity).
	Project []stream.ProjectItem
	// MaxDepth bounds recursion depth (number of recursive steps from a
	// base fact); 0 means unbounded. Required when the projection
	// manufactures unboundedly many values on cyclic data (e.g. summed
	// distances or concatenated paths).
	MaxDepth int
}

// Derivation is one recorded way a view tuple was produced, exposed by
// Explain.
type Derivation struct {
	// Base marks a tuple inserted directly through the base input.
	Base bool
	// ViewParent and EdgeParent render the antecedent tuples.
	ViewParent, EdgeParent string
}

// deriv records one firing of the recursive rule by its antecedents.
type deriv struct {
	vParent *fact
	eParent *edge
}

type fact struct {
	t        data.Tuple
	hash     uint64 // full-key identity hash
	jkHash   uint64 // join-key hash over the view key columns
	baseMult int
	derivs   map[deriv]struct{}
	depth    int
	children map[*fact]struct{} // facts derived with this fact as view parent
	live     bool
}

type edge struct {
	t        data.Tuple
	hash     uint64 // full-key identity hash
	jkHash   uint64 // join-key hash over the edge key columns
	mult     int
	children map[*fact]struct{} // facts derived with this edge
	live     bool
}

// testHashMask narrows identity and join-key hashes; tests set it to 0 to
// force every tuple into one collision bucket.
var testHashMask = ^uint64(0)

// View is a maintained recursive view.
type View struct {
	cfg      Config
	joined   *data.Schema
	vKeyIdx  []int
	eKeyIdx  []int
	residual *expr.Compiled
	project  []*expr.Compiled
	out      stream.Operator
	facts    map[uint64][]*fact // identity hash -> facts (EqualVals-verified)
	vIdx     map[uint64][]*fact // view join-key hash -> facts
	edges    map[uint64][]*edge // identity hash -> edges
	eIdx     map[uint64][]*edge // edge join-key hash -> edges
	nFacts   int
	hasher   data.Hasher
	// scratch buffers for the rule firing hot path: the joined tuple and
	// the projected child are built here and cloned only when a new fact
	// is actually inserted.
	joinScratch []data.Value
	projScratch []data.Value
	stats       Stats
	baseIn      baseInput
	edgeIn      edgeInput
}

// Stats counts maintenance work, the E6 efficiency metric.
type Stats struct {
	// DerivationsTried counts rule firings attempted.
	DerivationsTried int64
	// TuplesTouched counts fact insert/delete/resurrect operations.
	TuplesTouched int64
	// Emitted counts deltas pushed downstream.
	Emitted int64
}

// New builds a view delivering its output deltas to out.
func New(cfg Config, out stream.Operator) (*View, error) {
	if len(cfg.ViewKey) != len(cfg.EdgeKey) {
		return nil, fmt.Errorf("views: join key arity mismatch")
	}
	if len(cfg.Project) != cfg.Schema.Arity() {
		return nil, fmt.Errorf("views: projection arity %d != view arity %d",
			len(cfg.Project), cfg.Schema.Arity())
	}
	v := &View{
		cfg:    cfg,
		joined: cfg.Schema.Concat(cfg.EdgeSchema),
		out:    out,
		facts:  map[uint64][]*fact{},
		vIdx:   map[uint64][]*fact{},
		edges:  map[uint64][]*edge{},
		eIdx:   map[uint64][]*edge{},
	}
	// Key index slices stay non-nil: HashOn(t, nil) means "all columns".
	v.vKeyIdx = make([]int, 0, len(cfg.ViewKey))
	v.eKeyIdx = make([]int, 0, len(cfg.EdgeKey))
	for _, c := range cfg.ViewKey {
		i, err := cfg.Schema.ColIndex(c)
		if err != nil {
			return nil, err
		}
		v.vKeyIdx = append(v.vKeyIdx, i)
	}
	for _, c := range cfg.EdgeKey {
		i, err := cfg.EdgeSchema.ColIndex(c)
		if err != nil {
			return nil, err
		}
		v.eKeyIdx = append(v.eKeyIdx, i)
	}
	if cfg.Residual != nil {
		c, err := expr.Bind(cfg.Residual, v.joined)
		if err != nil {
			return nil, err
		}
		v.residual = c
	}
	for _, it := range cfg.Project {
		c, err := expr.Bind(it.Expr, v.joined)
		if err != nil {
			return nil, err
		}
		v.project = append(v.project, c)
	}
	v.baseIn = baseInput{v}
	v.edgeIn = edgeInput{v}
	return v, nil
}

// BaseInput accepts deltas of base facts (view schema).
func (v *View) BaseInput() stream.Operator { return &v.baseIn }

// EdgeInput accepts deltas of the joined relation (edge schema).
func (v *View) EdgeInput() stream.Operator { return &v.edgeIn }

// Schema returns the view schema.
func (v *View) Schema() *data.Schema { return v.cfg.Schema }

// Stats returns the maintenance work counters.
func (v *View) Stats() Stats { return v.stats }

// Len returns the current number of view tuples.
func (v *View) Len() int { return v.nFacts }

// findFact resolves a tuple to its live fact, verifying hash-bucket
// candidates with EqualVals.
func (v *View) findFact(t data.Tuple, h uint64) *fact {
	for _, f := range v.facts[h] {
		if f.t.EqualVals(t) {
			return f
		}
	}
	return nil
}

// findEdge is findFact for edges.
func (v *View) findEdge(t data.Tuple, h uint64) *edge {
	for _, e := range v.edges[h] {
		if e.t.EqualVals(t) {
			return e
		}
	}
	return nil
}

// Snapshot returns the current view contents sorted by canonical key.
func (v *View) Snapshot() []data.Tuple {
	out := make([]data.Tuple, 0, v.nFacts)
	for _, bucket := range v.facts {
		for _, f := range bucket {
			out = append(out, f.t.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Explain returns the recorded derivations of a tuple currently in the
// view (nil when absent).
func (v *View) Explain(t data.Tuple) []Derivation {
	f := v.findFact(t, v.hasher.Hash(t)&testHashMask)
	if f == nil {
		return nil
	}
	var out []Derivation
	if f.baseMult > 0 {
		out = append(out, Derivation{Base: true})
	}
	for d := range f.derivs {
		vp, ep := "", ""
		if d.vParent != nil && d.vParent.live {
			vp = d.vParent.t.String()
		}
		if d.eParent != nil && d.eParent.live {
			ep = d.eParent.t.String()
		}
		out = append(out, Derivation{ViewParent: vp, EdgeParent: ep})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Base != out[j].Base {
			return out[i].Base
		}
		if out[i].ViewParent != out[j].ViewParent {
			return out[i].ViewParent < out[j].ViewParent
		}
		return out[i].EdgeParent < out[j].EdgeParent
	})
	return out
}

type baseInput struct{ v *View }

func (b *baseInput) Schema() *data.Schema { return b.v.cfg.Schema }
func (b *baseInput) Push(t data.Tuple) {
	if t.Op == data.Delete {
		b.v.deleteBase(t)
	} else {
		b.v.insertBase(t)
	}
}

// PushBatch implements stream.BatchOperator: maintenance is per-tuple (each
// insert/delete runs its own fixpoint), but accepting the batch natively
// keeps upstream batch edges (table loads, sharded exchanges) on one call.
func (b *baseInput) PushBatch(ts []data.Tuple) {
	for _, t := range ts {
		b.Push(t)
	}
}

type edgeInput struct{ v *View }

func (e *edgeInput) Schema() *data.Schema { return e.v.cfg.EdgeSchema }
func (e *edgeInput) Push(t data.Tuple) {
	if t.Op == data.Delete {
		e.v.deleteEdge(t)
	} else {
		e.v.insertEdge(t)
	}
}

// PushBatch implements stream.BatchOperator (see baseInput.PushBatch).
func (e *edgeInput) PushBatch(ts []data.Tuple) {
	for _, t := range ts {
		e.Push(t)
	}
}

// --- insertion ---------------------------------------------------------

func (v *View) insertBase(t data.Tuple) {
	h := v.hasher.Hash(t) & testHashMask
	f := v.findFact(t, h)
	fresh := f == nil
	if fresh {
		f = &fact{t: t.Clone(), hash: h, derivs: map[deriv]struct{}{}, live: true}
		f.t.Op = data.Insert
		f.jkHash = v.hasher.HashOn(f.t, v.vKeyIdx) & testHashMask
		v.facts[h] = append(v.facts[h], f)
		v.vIdx[f.jkHash] = append(v.vIdx[f.jkHash], f)
		v.nFacts++
	}
	f.baseMult++
	v.stats.TuplesTouched++
	if fresh {
		v.emit(f.t, data.Insert, t.TS)
		v.expand([]*fact{f}, t.TS)
	} else if f.depth > 0 {
		// Base support shortens the depth to zero; re-expand under MaxDepth.
		f.depth = 0
		v.expand([]*fact{f}, t.TS)
	}
}

func (v *View) insertEdge(t data.Tuple) {
	h := v.hasher.Hash(t) & testHashMask
	e := v.findEdge(t, h)
	if e == nil {
		e = &edge{t: t.Clone(), hash: h, live: true}
		e.t.Op = data.Insert
		e.jkHash = v.hasher.HashOn(e.t, v.eKeyIdx) & testHashMask
		v.edges[h] = append(v.edges[h], e)
		v.eIdx[e.jkHash] = append(v.eIdx[e.jkHash], e)
	}
	e.mult++
	if e.mult > 1 {
		return
	}
	// Probe existing view facts joining with the new edge.
	var work []*fact
	for _, f := range v.vIdx[e.jkHash] {
		if nf, ok := v.deriveOne(f, e, t.TS); ok {
			work = append(work, nf)
		}
	}
	v.expand(work, t.TS)
}

// expand runs semi-naive derivation from the given newly (re)inserted
// facts.
func (v *View) expand(work []*fact, ts vtime.Time) {
	for len(work) > 0 {
		f := work[0]
		work = work[1:]
		if !f.live {
			continue
		}
		for _, e := range v.eIdx[f.jkHash] {
			if nf, ok := v.deriveOne(f, e, ts); ok {
				work = append(work, nf)
			}
		}
	}
}

// deriveOne fires the recursive rule for one (view fact, edge) pair.
// It returns the child fact and whether the child is new or had its depth
// improved (requiring further expansion).
func (v *View) deriveOne(f *fact, e *edge, ts vtime.Time) (*fact, bool) {
	if f == nil || e == nil || !f.live || !e.live {
		return nil, false
	}
	if v.cfg.MaxDepth > 0 && f.depth+1 > v.cfg.MaxDepth {
		return nil, false
	}
	if !f.t.EqualOn(v.vKeyIdx, e.t, v.eKeyIdx) {
		return nil, false // join-key hash collision, not a real partner
	}
	v.stats.DerivationsTried++
	joined := f.t.ConcatInto(v.joinScratch, e.t)
	v.joinScratch = joined.Vals[:0]
	joined.Op = data.Insert
	if v.residual != nil && !v.residual.EvalBool(joined) {
		return nil, false
	}
	vals := v.projScratch[:0]
	if cap(vals) < len(v.project) {
		vals = make([]data.Value, 0, len(v.project))
	}
	for _, p := range v.project {
		vals = append(vals, p.Eval(joined))
	}
	v.projScratch = vals[:0]
	child := data.Tuple{Vals: vals, TS: ts, Op: data.Insert}
	ch := v.hasher.Hash(child) & testHashMask
	d := deriv{vParent: f, eParent: e}
	if cf := v.findFact(child, ch); cf != nil {
		if cf == f {
			return nil, false // self-derivation carries no information
		}
		if _, dup := cf.derivs[d]; dup {
			return nil, false
		}
		cf.derivs[d] = struct{}{}
		v.link(f, e, cf)
		if f.depth+1 < cf.depth {
			cf.depth = f.depth + 1
			return cf, true // depth improved: may enable deeper derivations
		}
		return nil, false
	}
	cf := &fact{
		t:      child.Clone(),
		hash:   ch,
		derivs: map[deriv]struct{}{d: {}},
		depth:  f.depth + 1,
		live:   true,
	}
	cf.jkHash = v.hasher.HashOn(cf.t, v.vKeyIdx) & testHashMask
	v.facts[ch] = append(v.facts[ch], cf)
	v.vIdx[cf.jkHash] = append(v.vIdx[cf.jkHash], cf)
	v.nFacts++
	v.link(f, e, cf)
	v.stats.TuplesTouched++
	v.emit(cf.t, data.Insert, ts)
	return cf, true
}

func (v *View) link(f *fact, e *edge, child *fact) {
	if f.children == nil {
		f.children = map[*fact]struct{}{}
	}
	f.children[child] = struct{}{}
	if e.children == nil {
		e.children = map[*fact]struct{}{}
	}
	e.children[child] = struct{}{}
}

// --- deletion (provenance-guided DRed) ---------------------------------

func (v *View) deleteBase(t data.Tuple) {
	f := v.findFact(t, v.hasher.Hash(t)&testHashMask)
	if f == nil || f.baseMult == 0 {
		return
	}
	f.baseMult--
	v.stats.TuplesTouched++
	if f.baseMult > 0 {
		return
	}
	v.dred(map[*fact]struct{}{f: {}}, t.TS)
}

func (v *View) deleteEdge(t data.Tuple) {
	h := v.hasher.Hash(t) & testHashMask
	e := v.findEdge(t, h)
	if e == nil {
		return
	}
	e.mult--
	if e.mult > 0 {
		return
	}
	// Remove the edge and every derivation that used it.
	removeFrom(v.eIdx, e.jkHash, e)
	removeFrom(v.edges, e.hash, e)
	e.live = false
	suspects := map[*fact]struct{}{}
	for cf := range e.children {
		if !cf.live {
			continue
		}
		for d := range cf.derivs {
			if d.eParent == e {
				delete(cf.derivs, d)
			}
		}
		suspects[cf] = struct{}{}
	}
	e.children = nil
	v.dred(suspects, t.TS)
}

// removeFrom deletes x from the bucket at h, zeroing the vacated tail slot
// so the backing array does not retain it, and dropping empty buckets.
func removeFrom[T comparable](m map[uint64][]T, h uint64, x T) {
	bucket := m[h]
	for i, cand := range bucket {
		if cand == x {
			copy(bucket[i:], bucket[i+1:])
			var zero T
			bucket[len(bucket)-1] = zero
			if len(bucket) == 1 {
				delete(m, h)
			} else {
				m[h] = bucket[:len(bucket)-1]
			}
			return
		}
	}
}

// dred deletes the downward provenance closure of the seed facts, then
// resurrects every suspect that retains a valid derivation (or base
// support), emitting retractions only for tuples that are truly gone.
func (v *View) dred(seeds map[*fact]struct{}, ts vtime.Time) {
	// Phase 1: overestimate — everything reachable from the seeds through
	// provenance edges. Required for cyclic support: two tuples deriving
	// each other must both fall, even though their derivation sets are
	// non-empty.
	suspect := map[*fact]struct{}{}
	stack := make([]*fact, 0, len(seeds))
	for f := range seeds {
		if f.live && f.baseMult == 0 {
			// Facts that still have base support stand on their own and do
			// not fall; their subtree is safe too.
			suspect[f] = struct{}{}
			stack = append(stack, f)
		}
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for cf := range f.children {
			if _, seen := suspect[cf]; seen {
				continue
			}
			if cf.live && cf.baseMult == 0 {
				suspect[cf] = struct{}{}
				stack = append(stack, cf)
			}
		}
	}

	// Phase 2: resurrect suspects with a surviving derivation, in rounds,
	// since resurrecting one fact can re-validate derivations of another.
	alive := func(f *fact) bool {
		if _, isSuspect := suspect[f]; isSuspect {
			return false
		}
		return f.live
	}
	changed := true
	for changed {
		changed = false
		for f := range suspect {
			best := -1
			for d := range f.derivs {
				if d.vParent == nil || !alive(d.vParent) {
					continue
				}
				if d.eParent == nil || !d.eParent.live {
					continue
				}
				nd := d.vParent.depth + 1
				if v.cfg.MaxDepth > 0 && nd > v.cfg.MaxDepth {
					continue
				}
				if best < 0 || nd < best {
					best = nd
				}
			}
			if best >= 0 {
				f.depth = best
				delete(suspect, f)
				v.stats.TuplesTouched++
				changed = true
			}
		}
	}

	// Phase 3: truly delete the rest.
	for f := range suspect {
		removeFrom(v.vIdx, f.jkHash, f)
		removeFrom(v.facts, f.hash, f)
		f.live = false
		v.nFacts--
		v.stats.TuplesTouched++
		v.emit(f.t, data.Delete, ts)
	}
	// Purge dangling provenance references to the deleted facts, and
	// unlink them from surviving parents so children sets stay bounded
	// under fact churn.
	for f := range suspect {
		for d := range f.derivs {
			if d.vParent != nil && d.vParent.live {
				delete(d.vParent.children, f)
			}
			if d.eParent != nil && d.eParent.live {
				delete(d.eParent.children, f)
			}
		}
		for cf := range f.children {
			if !cf.live {
				continue
			}
			for d := range cf.derivs {
				if d.vParent == f {
					delete(cf.derivs, d)
				}
			}
		}
		f.children = nil
	}
}

func (v *View) emit(t data.Tuple, op data.Op, ts vtime.Time) {
	out := t.Clone()
	out.Op = op
	out.TS = ts
	v.stats.Emitted++
	v.out.Push(out)
}
