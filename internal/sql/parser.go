package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
)

// Parse parses a single StreamSQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return st, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT statement, got %T", st)
	}
	return sel, nil
}

// MustParse parses a statically known statement, panicking on error.
func MustParse(src string) Statement {
	st, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return st
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// kw reports whether the next token is the given keyword, consuming it.
func (p *parser) kw(word string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == word {
		p.advance()
		return true
	}
	return false
}

// expectKw consumes the keyword or errors.
func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return p.errf("expected %s, got %q", word, p.peek().text)
	}
	return nil
}

// punct reports whether the next token is the punctuation, consuming it.
func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

// ident consumes an identifier (keywords are not identifiers).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.kw("CREATE"):
		return p.createView()
	case p.kw("WITH"):
		return p.withRecursive()
	default:
		return p.selectStmt()
	}
}

func (p *parser) createView() (Statement, error) {
	if err := p.expectKw("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	paren := p.punct("(")
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if paren {
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return &CreateView{Name: name, Query: sel}, nil
}

func (p *parser) withRecursive() (Statement, error) {
	if err := p.expectKw("RECURSIVE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.punct("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.punct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	base, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("UNION"); err != nil {
		return nil, err
	}
	all := p.kw("ALL")
	rec, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &WithRecursive{Name: name, Cols: cols, Base: base, Rec: rec, All: all, Body: body}, nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.kw("DISTINCT")
	if p.punct("*") {
		s.Star = true
	} else {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.kw("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.peek().kind == tokIdent {
				// bare alias
				item.Alias = p.advance().text
			}
			s.Items = append(s.Items, item)
			if !p.punct(",") {
				break
			}
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		f, err := p.fromItem()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, f)
		if !p.punct(",") {
			break
		}
	}
	if p.kw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.kw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.kw("HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.kw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Ref: c}
			if p.kw("DESC") {
				key.Desc = true
			} else {
				p.kw("ASC")
			}
			s.OrderBy = append(s.OrderBy, key)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.kw("LIMIT") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	if p.kw("SAMPLE") {
		if err := p.expectKw("PERIOD"); err != nil {
			return nil, err
		}
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		s.SamplePeriod = d
	} else if p.kw("EVERY") { // synonym
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		s.SamplePeriod = d
	}
	if p.kw("OUTPUT") {
		if err := p.expectKw("TO"); err != nil {
			return nil, err
		}
		disp, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.OutputTo = disp
	}
	return s, nil
}

func (p *parser) fromItem() (FromItem, error) {
	name, err := p.ident()
	if err != nil {
		return FromItem{}, err
	}
	f := FromItem{Name: name}
	if p.kw("AS") {
		a, err := p.ident()
		if err != nil {
			return FromItem{}, err
		}
		f.Alias = a
	} else if p.peek().kind == tokIdent {
		f.Alias = p.advance().text
	}
	if p.punct("[") {
		w := &WindowSpec{}
		switch {
		case p.kw("RANGE"):
			d, err := p.duration()
			if err != nil {
				return FromItem{}, err
			}
			w.Kind, w.Range = WindowRange, d
			if p.kw("SLIDE") {
				sd, err := p.duration()
				if err != nil {
					return FromItem{}, err
				}
				w.Slide = sd
			}
		case p.kw("ROWS"):
			n, err := p.intLit()
			if err != nil {
				return FromItem{}, err
			}
			w.Kind, w.Rows = WindowRows, n
		case p.kw("NOW"):
			w.Kind = WindowNow
		default:
			return FromItem{}, p.errf("expected RANGE, ROWS or NOW in window, got %q", p.peek().text)
		}
		if err := p.expectPunct("]"); err != nil {
			return FromItem{}, err
		}
		f.Window = w
	}
	return f, nil
}

// columnRef parses ident[.ident].
func (p *parser) columnRef() (string, error) {
	a, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.punct(".") {
		b, err := p.ident()
		if err != nil {
			return "", err
		}
		return a + "." + b, nil
	}
	return a, nil
}

func (p *parser) intLit() (int, error) {
	t := p.peek()
	if t.kind != tokNumber || strings.Contains(t.text, ".") {
		return 0, p.errf("expected integer, got %q", t.text)
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) duration() (time.Duration, error) {
	n, err := p.intLit()
	if err != nil {
		return 0, err
	}
	t := p.peek()
	if t.kind != tokKeyword {
		return 0, p.errf("expected time unit, got %q", t.text)
	}
	var unit time.Duration
	switch t.text {
	case "MILLISECONDS", "MILLISECOND":
		unit = time.Millisecond
	case "SECONDS", "SECOND":
		unit = time.Second
	case "MINUTES", "MINUTE":
		unit = time.Minute
	case "HOURS", "HOUR":
		unit = time.Hour
	default:
		return 0, p.errf("expected time unit, got %q", t.text)
	}
	p.advance()
	return time.Duration(n) * unit, nil
}

// --- expressions -------------------------------------------------------

// expr parses the full precedence ladder:
//
//	OR < AND / ^ < NOT < comparison, LIKE, IS NULL < + - < * / % < unary - < primary
func (p *parser) expr() (expr.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = expr.Bin{Op: expr.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (expr.Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") || p.punct("^") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = expr.Bin{Op: expr.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (expr.Expr, error) {
	if p.kw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return expr.Un{Op: expr.OpNot, X: x}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]expr.BinOp{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt,
	"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) cmpExpr() (expr.Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return expr.Bin{Op: op, L: l, R: r}, nil
		}
	}
	if p.kw("LIKE") {
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return expr.Bin{Op: expr.OpLike, L: l, R: r}, nil
	}
	if t.kind == tokKeyword && t.text == "NOT" &&
		p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "LIKE" {
		p.advance()
		p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return expr.Un{Op: expr.OpNot, X: expr.Bin{Op: expr.OpLike, L: l, R: r}}, nil
	}
	if p.kw("IS") {
		neg := p.kw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return expr.IsNull{X: l, Neg: neg}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (expr.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.punct("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Bin{Op: expr.OpAdd, L: l, R: r}
		case p.punct("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Bin{Op: expr.OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (expr.Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.punct("*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Bin{Op: expr.OpMul, L: l, R: r}
		case p.punct("/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Bin{Op: expr.OpDiv, L: l, R: r}
		case p.punct("%"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Bin{Op: expr.OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (expr.Expr, error) {
	if p.punct("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		// constant-fold negative literals for cleaner plans
		if lit, ok := x.(expr.Lit); ok && lit.V.T == data.TInt {
			return expr.Lit{V: data.Int(-lit.V.I)}, nil
		}
		if lit, ok := x.(expr.Lit); ok && lit.V.T == data.TFloat {
			return expr.Lit{V: data.Float(-lit.V.F)}, nil
		}
		return expr.Un{Op: expr.OpNeg, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return expr.Lit{V: data.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return expr.Lit{V: data.Int(n)}, nil

	case tokString:
		p.advance()
		return expr.Lit{V: data.Str(t.text)}, nil

	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return expr.Lit{V: data.Null}, nil
		case "TRUE":
			p.advance()
			return expr.Lit{V: data.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return expr.Lit{V: data.Bool(false)}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)

	case tokIdent:
		name := p.advance().text
		if p.punct("(") {
			// function call
			var args []expr.Expr
			if !p.punct(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.punct(",") {
						break
					}
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			// aggregates are recognized later by the planner; parse uniformly
			return expr.Call{Name: name, Args: args}, nil
		}
		if p.punct(".") {
			sub, err := p.ident()
			if err != nil {
				return nil, err
			}
			return expr.Col{Ref: name + "." + sub}, nil
		}
		return expr.Col{Ref: name}, nil

	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			// COUNT(*) reaches here via the Call argument path
			p.advance()
			return expr.Col{Ref: "*"}, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}
