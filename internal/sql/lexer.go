// Package sql implements the StreamSQL dialect of the ASPEN substrate:
// standard SQL SELECT blocks extended with stream windows, sensor sampling
// periods (SAMPLE PERIOD), display routing (OUTPUT TO), view definitions and
// recursive (transitive closure) queries. Following the paper's Figure 1,
// `^` is accepted as conjunction alongside AND.
package sql

import (
	"fmt"
	"strings"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , * . = <> < <= > >= + - / % ^ [ ]
	tokKeyword
)

type token struct {
	kind tokKind
	text string // keywords uppercased; idents as written
	pos  int    // byte offset for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "LIKE": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"CREATE": true, "VIEW": true, "WITH": true, "RECURSIVE": true,
	"UNION": true, "ALL": true, "RANGE": true, "SLIDE": true,
	"ROWS": true, "NOW": true, "SAMPLE": true, "PERIOD": true,
	"OUTPUT": true, "TO": true, "EVERY": true,
	"SECONDS": true, "SECOND": true, "MINUTES": true, "MINUTE": true,
	"MILLISECONDS": true, "MILLISECOND": true, "HOURS": true, "HOUR": true,
}

// lexer produces tokens from a StreamSQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front (queries are short).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil

	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil

	case c == '"':
		// double-quoted identifier
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokIdent, text: text, pos: start}, nil

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], pos: start}, nil

	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], pos: start}, nil

	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokPunct, text: "<>", pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected '!' at offset %d", start)

	case strings.IndexByte("(),*.=+-/%^[]", c) >= 0:
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	}
	return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }
