package sql

import (
	"strings"
	"testing"
	"time"

	"aspen/internal/expr"
)

// fig1Federated is the federated query from the paper's Figure 1, verbatim
// (with ^ conjunction).
const fig1Federated = `select p.id, ss.room, ss.desk, r.path
from Person p, Route r, AreaSensors sa, SeatSensors ss, Machines m
where r.start = p.room ^ r.end = sa.room ^ p.needed like m.software ^
sa.room = ss.room ^ m.desk = ss.desk ^ sa.status = 'open' ^
ss.status = 'free'
order by p.id`

// fig1Rewritten is the second Figure 1 query, over the OpenMachineInfo view.
const fig1Rewritten = `select p.id, O.room, O.desk, r.path
from Person p, Route r, OpenMachineInfo O, Machines m
where O.room = m.room ^ O.desk = m.desk ^ p.needed like m.software ^
r.start = p.room ^ r.end = O.room
order by p.id`

// fig1View is the CREATE VIEW from Figure 1.
const fig1View = `create view OpenMachineInfo as (
select ss.room, ss.desk from AreaSensors sa, SeatSensors ss
where sa.room = ss.room ^ sa.status = 'open' ^ ss.status = 'free'
)`

func TestParseFig1Federated(t *testing.T) {
	st, err := Parse(fig1Federated)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sel := st.(*SelectStmt)
	if len(sel.Items) != 4 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if len(sel.From) != 5 {
		t.Fatalf("from = %d", len(sel.From))
	}
	if sel.From[0].Name != "Person" || sel.From[0].Alias != "p" {
		t.Fatalf("from[0] = %+v", sel.From[0])
	}
	conj := expr.Conjuncts(sel.Where)
	if len(conj) != 7 {
		t.Fatalf("conjuncts = %d, want 7", len(conj))
	}
	if len(sel.OrderBy) != 1 || sel.OrderBy[0].Ref != "p.id" || sel.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
}

func TestParseFig1View(t *testing.T) {
	st, err := Parse(fig1View)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cv := st.(*CreateView)
	if cv.Name != "OpenMachineInfo" {
		t.Fatalf("name = %q", cv.Name)
	}
	if len(cv.Query.From) != 2 || len(expr.Conjuncts(cv.Query.Where)) != 3 {
		t.Fatalf("view query = %v", cv.Query)
	}
}

func TestParseFig1Rewritten(t *testing.T) {
	st, err := Parse(fig1Rewritten)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sel := st.(*SelectStmt)
	if len(sel.From) != 4 {
		t.Fatalf("from = %d", len(sel.From))
	}
	found := false
	for _, f := range sel.From {
		if f.Name == "OpenMachineInfo" && f.Alias == "O" {
			found = true
		}
	}
	if !found {
		t.Fatal("OpenMachineInfo O not in FROM")
	}
}

func TestParseWindows(t *testing.T) {
	sel, err := ParseSelect(`SELECT * FROM Temps t [RANGE 30 SECONDS SLIDE 10 SECONDS], Light l [ROWS 100], Conf c [NOW], Machines m`)
	if err != nil {
		t.Fatal(err)
	}
	w := sel.From[0].Window
	if w == nil || w.Kind != WindowRange || w.Range != 30*time.Second || w.Slide != 10*time.Second {
		t.Fatalf("range window = %+v", w)
	}
	w = sel.From[1].Window
	if w == nil || w.Kind != WindowRows || w.Rows != 100 {
		t.Fatalf("rows window = %+v", w)
	}
	if sel.From[2].Window == nil || sel.From[2].Window.Kind != WindowNow {
		t.Fatalf("now window = %+v", sel.From[2].Window)
	}
	if sel.From[3].Window != nil {
		t.Fatalf("table should have no window")
	}
}

func TestParseDeviceExtensions(t *testing.T) {
	sel, err := ParseSelect(`SELECT mote, temp FROM Temperature SAMPLE PERIOD 10 SECONDS OUTPUT TO lobbyDisplay`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.SamplePeriod != 10*time.Second {
		t.Fatalf("sample period = %v", sel.SamplePeriod)
	}
	if sel.OutputTo != "lobbyDisplay" {
		t.Fatalf("output to = %q", sel.OutputTo)
	}
	// EVERY is a synonym
	sel2, err := ParseSelect(`SELECT mote FROM Temperature EVERY 500 MILLISECONDS`)
	if err != nil {
		t.Fatal(err)
	}
	if sel2.SamplePeriod != 500*time.Millisecond {
		t.Fatalf("EVERY = %v", sel2.SamplePeriod)
	}
}

func TestParseRecursive(t *testing.T) {
	src := `WITH RECURSIVE paths(src, dst, dist) AS (
		SELECT r.src, r.dst, r.dist FROM RoutingPoints r
		UNION ALL
		SELECT p.src, r.dst, p.dist + r.dist FROM paths p, RoutingPoints r WHERE p.dst = r.src
	) SELECT src, dst, dist FROM paths WHERE dst = 'L101' ORDER BY dist LIMIT 1`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	wr := st.(*WithRecursive)
	if wr.Name != "paths" || !wr.All {
		t.Fatalf("recursive = %+v", wr)
	}
	if len(wr.Cols) != 3 || wr.Cols[2] != "dist" {
		t.Fatalf("cols = %v", wr.Cols)
	}
	if wr.Body.Limit != 1 || len(wr.Body.OrderBy) != 1 {
		t.Fatalf("body = %v", wr.Body)
	}
}

func TestParseAggregates(t *testing.T) {
	sel, err := ParseSelect(`SELECT room, avg(temp) AS avgtemp, count(*) FROM Temps [RANGE 1 MINUTES] GROUP BY room HAVING avg(temp) > 30.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0] != "room" {
		t.Fatalf("group by = %v", sel.GroupBy)
	}
	call, ok := sel.Items[1].Expr.(expr.Call)
	if !ok || !strings.EqualFold(call.Name, "avg") || sel.Items[1].Alias != "avgtemp" {
		t.Fatalf("item[1] = %+v", sel.Items[1])
	}
	star, ok := sel.Items[2].Expr.(expr.Call)
	if !ok || len(star.Args) != 1 {
		t.Fatalf("count(*) = %+v", sel.Items[2])
	}
	if sel.Having == nil {
		t.Fatal("missing HAVING")
	}
}

func TestParseDistinctLimitDesc(t *testing.T) {
	sel, err := ParseSelect(`SELECT DISTINCT room FROM Temps ORDER BY room DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Distinct || sel.Limit != 5 || !sel.OrderBy[0].Desc {
		t.Fatalf("%+v", sel)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel, err := ParseSelect(`SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	b := sel.Where.(expr.Bin)
	if b.Op != expr.OpOr {
		t.Fatalf("top op = %v, want OR (AND binds tighter)", b.Op)
	}
	sel2, _ := ParseSelect(`SELECT * FROM t WHERE a + 2 * 3 = 7`)
	eq := sel2.Where.(expr.Bin)
	add := eq.L.(expr.Bin)
	if add.Op != expr.OpAdd {
		t.Fatalf("want a + (2*3): %v", sel2.Where)
	}
	if mul := add.R.(expr.Bin); mul.Op != expr.OpMul {
		t.Fatalf("want 2*3 nested: %v", add.R)
	}
	// NOT binds tighter than AND
	sel3, _ := ParseSelect(`SELECT * FROM t WHERE NOT a = 1 AND b = 2`)
	if sel3.Where.(expr.Bin).Op != expr.OpAnd {
		t.Fatalf("NOT precedence: %v", sel3.Where)
	}
}

func TestParseLiteralsAndOperators(t *testing.T) {
	sel, err := ParseSelect(`SELECT * FROM t WHERE a = -5 AND b = 2.5 AND c = 'it''s' AND d = TRUE AND e IS NOT NULL AND f <> 3 AND g != 4 AND h NOT LIKE 'x%'`)
	if err != nil {
		t.Fatal(err)
	}
	conj := expr.Conjuncts(sel.Where)
	if len(conj) != 8 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	lit := conj[0].(expr.Bin).R.(expr.Lit)
	if lit.V.AsInt() != -5 {
		t.Fatalf("negative literal folded to %v", lit.V)
	}
	if s := conj[2].(expr.Bin).R.(expr.Lit).V.AsString(); s != "it's" {
		t.Fatalf("escaped string = %q", s)
	}
}

func TestParseComments(t *testing.T) {
	sel, err := ParseSelect("SELECT * -- trailing comment\nFROM t -- another\nWHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Where == nil {
		t.Fatal("comment swallowed WHERE")
	}
}

func TestParseQuotedIdent(t *testing.T) {
	sel, err := ParseSelect(`SELECT "room number" FROM "Seat Sensors"`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.From[0].Name != "Seat Sensors" {
		t.Fatalf("quoted from = %q", sel.From[0].Name)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t [RANGE]",
		"SELECT * FROM t [BOGUS 5]",
		"SELECT * FROM t [ROWS 5",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t SAMPLE 5 SECONDS",
		"SELECT a FROM t OUTPUT display",
		"CREATE VIEW v",
		"CREATE TABLE t AS SELECT 1 FROM x",
		"WITH RECURSIVE p AS (SELECT a FROM t) SELECT * FROM p",
		"SELECT * FROM t WHERE 'unterminated",
		"SELECT * FROM t trailing garbage (",
		"SELECT * FROM t WHERE a = 5 SECONDS",
		"SELECT * FROM t WHERE a ! b",
		"SELECT * FROM t WHERE (a = 1",
		`SELECT * FROM "unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSelectRejectsView(t *testing.T) {
	if _, err := ParseSelect(fig1View); err == nil {
		t.Fatal("ParseSelect should reject CREATE VIEW")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not sql")
}

// Round-trip: parse → String → parse yields an identical String.
func TestRoundTrip(t *testing.T) {
	queries := []string{
		fig1Federated,
		fig1Rewritten,
		fig1View,
		`SELECT * FROM Temps t [RANGE 30 SECONDS SLIDE 10 SECONDS] WHERE t.v > 3 LIMIT 10`,
		`SELECT DISTINCT a, b AS bee FROM t [ROWS 50] ORDER BY a DESC, b`,
		`SELECT room, avg(temp) AS a FROM Temps [RANGE 2 MINUTES] GROUP BY room HAVING avg(temp) > 30`,
		`SELECT mote FROM Temperature [NOW] SAMPLE PERIOD 10 SECONDS OUTPUT TO hall`,
		`WITH RECURSIVE paths(src, dst) AS (SELECT r.src, r.dst FROM edges r UNION ALL SELECT p.src, r.dst FROM paths p, edges r WHERE p.dst = r.src) SELECT src FROM paths`,
		`SELECT a FROM t WHERE a + 2 * 3 = 7 AND NOT b LIKE 'x%' OR c IS NOT NULL`,
		`SELECT coalesce(a, b), abs(-c) FROM t WHERE dist(x1, y1, x2, y2) < 5.5`,
	}
	for _, q := range queries {
		st1, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		printed := st1.String()
		st2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\n(original: %q)", printed, err, q)
		}
		if st2.String() != printed {
			t.Fatalf("not a fixpoint:\n1st: %s\n2nd: %s", printed, st2.String())
		}
	}
}
