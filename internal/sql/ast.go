package sql

import (
	"fmt"
	"strings"
	"time"

	"aspen/internal/expr"
)

// Statement is any parsed StreamSQL statement.
type Statement interface {
	fmt.Stringer
	stmt()
}

// WindowKind classifies stream windows.
type WindowKind uint8

// Window kinds.
const (
	WindowNone  WindowKind = iota // stored relation, no window
	WindowRange                   // time-based sliding window
	WindowRows                    // row-count window
	WindowNow                     // instantaneous window
)

// WindowSpec is the bracketed window clause of a stream in FROM.
type WindowSpec struct {
	Kind  WindowKind
	Range time.Duration // WindowRange
	Slide time.Duration // WindowRange; 0 means per-tuple slide
	Rows  int           // WindowRows
}

// String renders the window clause.
func (w *WindowSpec) String() string {
	switch w.Kind {
	case WindowRange:
		if w.Slide > 0 {
			return fmt.Sprintf("[RANGE %s SLIDE %s]", durSQL(w.Range), durSQL(w.Slide))
		}
		return fmt.Sprintf("[RANGE %s]", durSQL(w.Range))
	case WindowRows:
		return fmt.Sprintf("[ROWS %d]", w.Rows)
	case WindowNow:
		return "[NOW]"
	}
	return ""
}

// FromItem is one relation/stream/view reference in FROM.
type FromItem struct {
	Name   string
	Alias  string // defaults to Name
	Window *WindowSpec
}

// Binding returns the name the item is referenced by in the query.
func (f FromItem) Binding() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Name
}

func (f FromItem) String() string {
	var b strings.Builder
	b.WriteString(f.Name)
	if f.Alias != "" && !strings.EqualFold(f.Alias, f.Name) {
		b.WriteString(" ")
		b.WriteString(f.Alias)
	}
	if f.Window != nil && f.Window.Kind != WindowNone {
		b.WriteString(" ")
		b.WriteString(f.Window.String())
	}
	return b.String()
}

// SelectItem is one projection in the SELECT list.
type SelectItem struct {
	Expr  expr.Expr
	Alias string
}

func (s SelectItem) String() string {
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", exprSQL(s.Expr), s.Alias)
	}
	return exprSQL(s.Expr)
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Ref  string
	Desc bool
}

func (o OrderKey) String() string {
	if o.Desc {
		return o.Ref + " DESC"
	}
	return o.Ref
}

// SelectStmt is a SELECT block with ASPEN's stream extensions.
type SelectStmt struct {
	Distinct     bool
	Star         bool
	Items        []SelectItem
	From         []FromItem
	Where        expr.Expr
	GroupBy      []string
	Having       expr.Expr
	OrderBy      []OrderKey
	Limit        int           // -1 when absent
	SamplePeriod time.Duration // device extension; 0 when absent
	OutputTo     string        // display routing extension; "" when absent
}

func (*SelectStmt) stmt() {}

// String unparses the statement to valid StreamSQL (parse(String()) is
// a fixpoint, verified by property test).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	}
	b.WriteString(" FROM ")
	for i, f := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(exprSQL(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(s.GroupBy, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(exprSQL(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.SamplePeriod > 0 {
		fmt.Fprintf(&b, " SAMPLE PERIOD %s", durSQL(s.SamplePeriod))
	}
	if s.OutputTo != "" {
		fmt.Fprintf(&b, " OUTPUT TO %s", s.OutputTo)
	}
	return b.String()
}

// CreateView names a query for reuse; Fig. 1's OpenMachineInfo.
type CreateView struct {
	Name  string
	Query *SelectStmt
}

func (*CreateView) stmt() {}

func (c *CreateView) String() string {
	return fmt.Sprintf("CREATE VIEW %s AS (%s)", c.Name, c.Query)
}

// WithRecursive is the transitive-closure extension: a recursive view
// defined by a base case UNION [ALL] a recursive case, then a body query
// over it. Used for building path routing (§3).
type WithRecursive struct {
	Name string
	Cols []string
	Base *SelectStmt
	Rec  *SelectStmt
	All  bool
	Body *SelectStmt
}

func (*WithRecursive) stmt() {}

func (w *WithRecursive) String() string {
	union := "UNION"
	if w.All {
		union = "UNION ALL"
	}
	cols := ""
	if len(w.Cols) > 0 {
		cols = "(" + strings.Join(w.Cols, ", ") + ")"
	}
	return fmt.Sprintf("WITH RECURSIVE %s%s AS (%s %s %s) %s",
		w.Name, cols, w.Base, union, w.Rec, w.Body)
}

// durSQL renders a duration in StreamSQL unit syntax.
func durSQL(d time.Duration) string {
	switch {
	case d%time.Hour == 0 && d >= time.Hour:
		return fmt.Sprintf("%d HOURS", d/time.Hour)
	case d%time.Minute == 0 && d >= time.Minute:
		return fmt.Sprintf("%d MINUTES", d/time.Minute)
	case d%time.Second == 0 && d >= time.Second:
		return fmt.Sprintf("%d SECONDS", d/time.Second)
	default:
		return fmt.Sprintf("%d MILLISECONDS", d/time.Millisecond)
	}
}

// exprSQL renders an expression tree in parseable StreamSQL.
func exprSQL(e expr.Expr) string {
	if e == nil {
		return ""
	}
	return e.String()
}
