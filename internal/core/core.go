package core
