package core

import (
	"fmt"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/plan"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// newParallelRuntime assembles an all-stream runtime with the given plan
// parallelism (and optional shard-worker topology) and one registered
// reading stream.
func newParallelRuntime(t *testing.T, par int, nodes ...string) (*Runtime, *vtime.Scheduler) {
	t.Helper()
	sched := vtime.NewScheduler()
	rt := New(Config{Scheduler: sched, Parallelism: par, Nodes: nodes})
	t.Cleanup(rt.Close)
	schema := data.NewSchema("Readings",
		data.Col("room", data.TString), data.Col("value", data.TFloat))
	schema.IsStream = true
	if _, err := rt.RegisterStream("Readings", schema, 50); err != nil {
		t.Fatal(err)
	}
	return rt, sched
}

// TestRuntimeParallelismShardsDeployedPlans runs the same windowed
// aggregation serially and with Config.Parallelism, drives identical
// batches through both engines (including tick-driven expiry), and
// compares results.
func TestRuntimeParallelismShardsDeployedPlans(t *testing.T) {
	const src = `SELECT r.room, count(*) AS n FROM Readings r [RANGE 5 SECONDS]
		GROUP BY r.room ORDER BY r.room`
	feed := func(rt *Runtime, sched *vtime.Scheduler) {
		in, ok := rt.Stream.Input("Readings")
		if !ok {
			t.Fatal("Readings input missing")
		}
		for i := 0; i < 40; i++ {
			batch := make([]data.Tuple, 0, 8)
			for k := 0; k < 8; k++ {
				batch = append(batch, data.NewTuple(sched.Now(),
					data.Str(fmt.Sprintf("L%d", (i+k)%6)), data.Float(float64(i+k))))
			}
			in.PushBatch(batch)
			sched.RunFor(300 * time.Millisecond) // ticks expire the window mid-run
		}
	}

	srt, ssched := newParallelRuntime(t, 0)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	feed(srt, ssched)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}

	prt, psched := newParallelRuntime(t, 4)
	pq, err := prt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Deployment.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", pq.Deployment.Shards)
	}
	feed(prt, psched)
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded rows %v, want %v", got, want)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("row %d: sharded %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRuntimeParallelismGlobalAggregateTwoPhase deploys a building-wide
// rollup — a global aggregate with no GROUP BY, the query PR 2 had to run
// serially — through Config.Parallelism and checks it shards two-phase
// with results identical to serial.
func TestRuntimeParallelismGlobalAggregateTwoPhase(t *testing.T) {
	const src = `SELECT count(*) AS n, avg(r.value) AS v FROM Readings r [RANGE 5 SECONDS]`
	feed := func(rt *Runtime, sched *vtime.Scheduler) {
		in, ok := rt.Stream.Input("Readings")
		if !ok {
			t.Fatal("Readings input missing")
		}
		for i := 0; i < 40; i++ {
			batch := make([]data.Tuple, 0, 8)
			for k := 0; k < 8; k++ {
				batch = append(batch, data.NewTuple(sched.Now(),
					data.Str(fmt.Sprintf("L%d", (i+k)%6)), data.Float(float64((i*k)%11))))
			}
			in.PushBatch(batch)
			sched.RunFor(300 * time.Millisecond)
		}
	}

	srt, ssched := newParallelRuntime(t, 0)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	feed(srt, ssched)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 {
		t.Fatalf("serial global aggregate rows = %v", want)
	}

	prt, psched := newParallelRuntime(t, 4)
	pq, err := prt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Deployment.Shards != 4 || !pq.Deployment.TwoPhase {
		t.Fatalf("Shards=%d TwoPhase=%v, want a 4-way two-phase deployment",
			pq.Deployment.Shards, pq.Deployment.TwoPhase)
	}
	feed(prt, psched)
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pq.Stop()
	if len(got) != 1 || !got[0].EqualVals(want[0]) {
		t.Fatalf("sharded global aggregate %v, want %v", got, want)
	}
}

// TestRuntimeParallelismMultiNode deploys the same windowed grouped
// aggregation with its shard replicas spread over two loopback shard
// workers (Config.Nodes) — the paper's replicas-on-different-PCs
// deployment — and checks the distributed result against serial.
func TestRuntimeParallelismMultiNode(t *testing.T) {
	const src = `SELECT r.room, count(*) AS n, avg(r.value) AS v
		FROM Readings r [RANGE 5 SECONDS] GROUP BY r.room ORDER BY r.room`
	feed := func(rt *Runtime, sched *vtime.Scheduler) {
		in, ok := rt.Stream.Input("Readings")
		if !ok {
			t.Fatal("Readings input missing")
		}
		for i := 0; i < 40; i++ {
			batch := make([]data.Tuple, 0, 8)
			for k := 0; k < 8; k++ {
				batch = append(batch, data.NewTuple(sched.Now(),
					data.Str(fmt.Sprintf("L%d", (i+k)%6)), data.Float(float64((i*k)%13))))
			}
			in.PushBatch(batch)
			sched.RunFor(300 * time.Millisecond)
		}
	}

	srt, ssched := newParallelRuntime(t, 0)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	feed(srt, ssched)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}

	var nodes []string
	for i := 0; i < 2; i++ {
		w, err := plan.NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		nodes = append(nodes, w.Addr())
	}
	prt, psched := newParallelRuntime(t, 4, nodes...)
	pq, err := prt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Deployment.Shards != 4 || len(pq.Deployment.Nodes) != 2 {
		t.Fatalf("Shards=%d Nodes=%v, want a 4-way deployment over 2 workers",
			pq.Deployment.Shards, pq.Deployment.Nodes)
	}
	feed(prt, psched)
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pq.Stop() // closes the worker connections with the shard set
	if len(got) != len(want) {
		t.Fatalf("distributed rows %v, want %v", got, want)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("row %d: distributed %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRuntimeFailoverSurvivesWorkerLoss runs the multi-node deployment
// with Config.Failover and kills one of the two workers mid-feed: the
// dead worker's shards must redeploy from their checkpoints onto the
// survivor and the final result must still match serial execution.
func TestRuntimeFailoverSurvivesWorkerLoss(t *testing.T) {
	const src = `SELECT r.room, count(*) AS n, avg(r.value) AS v
		FROM Readings r [RANGE 5 SECONDS] GROUP BY r.room ORDER BY r.room`
	feed := func(rt *Runtime, sched *vtime.Scheduler, mid func()) {
		in, ok := rt.Stream.Input("Readings")
		if !ok {
			t.Fatal("Readings input missing")
		}
		for i := 0; i < 40; i++ {
			if i == 23 && mid != nil {
				mid()
			}
			batch := make([]data.Tuple, 0, 8)
			for k := 0; k < 8; k++ {
				batch = append(batch, data.NewTuple(sched.Now(),
					data.Str(fmt.Sprintf("L%d", (i+k)%6)), data.Float(float64((i*k)%13))))
			}
			in.PushBatch(batch)
			sched.RunFor(300 * time.Millisecond)
		}
	}

	srt, ssched := newParallelRuntime(t, 0)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	feed(srt, ssched, nil)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}

	var workers []*stream.ShardWorker
	var nodes []string
	for i := 0; i < 2; i++ {
		w, err := plan.NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers = append(workers, w)
		nodes = append(nodes, w.Addr())
	}
	sched := vtime.NewScheduler()
	rt := New(Config{Scheduler: sched, Parallelism: 4, Nodes: nodes,
		Failover: true, CheckpointEvery: 2})
	t.Cleanup(rt.Close)
	schema := data.NewSchema("Readings",
		data.Col("room", data.TString), data.Col("value", data.TFloat))
	schema.IsStream = true
	if _, err := rt.RegisterStream("Readings", schema, 50); err != nil {
		t.Fatal(err)
	}
	pq, err := rt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Deployment.Shards != 4 || !pq.Deployment.Failover {
		t.Fatalf("Shards=%d Failover=%v, want a 4-way failover-armed deployment",
			pq.Deployment.Shards, pq.Deployment.Failover)
	}
	feed(rt, sched, func() { workers[1].Close() })
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pq.Stop()
	if len(got) != len(want) {
		t.Fatalf("post-failover rows %v, want %v", got, want)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("row %d: post-failover %v, want %v", i, got[i], want[i])
		}
	}
}
