// Package core is the ASPEN substrate runtime — the paper's primary
// contribution assembled: it owns the catalog, the federated optimizer, a
// stream engine, an optional sensor engine, and the simulation clock, and
// it drives a query through the full Figure 1 lifecycle:
//
//	StreamSQL → parser → federated optimizer → {sensor engine, stream engine}
//
// Pushed fragments run on the sensor engine in epochs and feed derived
// stream-engine inputs; database tables load into each deployment's join
// state; recursive (WITH RECURSIVE) queries are maintained incrementally by
// internal/views; results materialize for displays.
package core

import (
	"fmt"
	"time"

	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/federation"
	"aspen/internal/plan"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// Config assembles a runtime.
type Config struct {
	// Scheduler drives all periodic work (virtual time in simulations).
	Scheduler *vtime.Scheduler
	// NodeName names the stream engine node (default "pc1").
	NodeName string
	// SensorEngine is optional; without it every query runs all-stream.
	SensorEngine *sensor.Engine
	// SensorKinds maps catalog source names to mote sensors.
	SensorKinds map[string]sensornet.SensorKind
	// TickPeriod drives window expiry during stream silence (default 1s).
	TickPeriod time.Duration
	// RecursionDepth bounds WITH RECURSIVE evaluation (default 12).
	RecursionDepth int
	// Parallelism requests hash-partitioned parallel execution of deployed
	// stream plans across this many pipeline replicas (default 1 =
	// serial). Plans the shard analysis cannot partition run serial.
	Parallelism int
	// Nodes lists shard-worker addresses (cmd/shardworker) to distribute
	// the replicas over: shard j deploys to Nodes[j%len(Nodes)], with ""
	// keeping that replica in-process. Empty runs everything in-process.
	// All deployments to one worker multiplex over a single pooled TCP
	// connection (one per distinct address), each as its own wire stream.
	Nodes []string
	// Failover converts worker loss from fail-stop into checkpointed
	// redeploy: remote replicas checkpoint their operator state to the
	// coordinator, and a dead or stalled worker's shards redeploy —
	// checkpoint plus replayed input — onto a surviving worker or
	// in-process, keeping query results exact across the loss. Only
	// meaningful with Nodes.
	Failover bool
	// CheckpointEvery is the failover checkpoint cadence in clock ticks
	// (default 8).
	CheckpointEvery int
	// FailoverStallTimeout bounds every shard-worker ack wait (flush and
	// deploy barriers, in-flight credits); a worker silent past it is a
	// detected failure. 0 keeps the stream-layer default (30s).
	FailoverStallTimeout time.Duration
	// SharedPrefixes enables multi-query plan sharing: serial SELECT
	// deployments whose plans start with the same scan+window+selection
	// prefix (canonicalized positionally, so aliases don't matter) run one
	// physical operator chain, fanning out only where the plans diverge.
	// Per-tuple cost becomes sublinear in the number of standing queries
	// over one source; the last Stop of the last query sharing a prefix
	// tears its chain down. A query attaching to an already-populated
	// shared window warm-starts from the window's current contents. Only
	// serial deployments share (Parallelism < 2 or unpartitionable plans).
	SharedPrefixes bool
	// SnapshotPath makes the coordinator durable: deployed SELECT queries
	// are tracked by a plan.Coordinator that SaveSnapshot persists to this
	// file (atomic, checksummed, fsynced through the rename) and
	// RestoreSnapshot rehydrates after a coordinator restart — standing
	// queries recompile onto their snapshotted shard placement and resume
	// from the last committed checkpoint, shared-prefix window state and
	// sensor fragment deployments included (fragments whose workers are
	// gone fall back to central runners rather than being dropped). Empty
	// keeps the coordinator in-memory only.
	SnapshotPath string
}

// Runtime is one assembled ASPEN instance.
type Runtime struct {
	Cat    *catalog.Catalog
	Sched  *vtime.Scheduler
	Stream *stream.Engine

	fed         *federation.Federator
	sensors     *sensor.Engine
	hosts       *plan.SensorHosts
	recursion   int
	parallelism int
	nodes       []string
	failover    bool
	ckEvery     int
	stall       time.Duration
	tick        time.Duration
	share       *plan.Sharing
	tickCancel  func()

	// coord tracks SELECT deployments for durable snapshots (SnapshotPath);
	// qn numbers them q1, q2, … in deploy order.
	coord *plan.Coordinator
	qn    int
}

// New builds a runtime.
func New(cfg Config) *Runtime {
	if cfg.Scheduler == nil {
		cfg.Scheduler = vtime.NewScheduler()
	}
	if cfg.NodeName == "" {
		cfg.NodeName = "pc1"
	}
	if cfg.TickPeriod <= 0 {
		cfg.TickPeriod = time.Second
	}
	if cfg.RecursionDepth <= 0 {
		cfg.RecursionDepth = 12
	}
	rt := &Runtime{
		Cat:         catalog.New(),
		Sched:       cfg.Scheduler,
		Stream:      stream.NewEngine(cfg.NodeName, cfg.Scheduler),
		sensors:     cfg.SensorEngine,
		recursion:   cfg.RecursionDepth,
		parallelism: cfg.Parallelism,
		nodes:       cfg.Nodes,
		failover:    cfg.Failover,
		ckEvery:     cfg.CheckpointEvery,
		stall:       cfg.FailoverStallTimeout,
		tick:        cfg.TickPeriod,
	}
	if cfg.SharedPrefixes {
		rt.share = plan.NewSharing(rt.Stream)
	}
	if cfg.SnapshotPath != "" {
		rt.coord = plan.NewCoordinator(rt.Stream, cfg.SnapshotPath)
		if rt.share != nil {
			rt.coord.EnableSharing(rt.share)
		}
	}
	rt.fed = &federation.Federator{Cat: rt.Cat}
	if cfg.SensorEngine != nil {
		kinds := map[string]sensornet.SensorKind{}
		rt.hosts = plan.NewSensorHosts()
		for k, v := range cfg.SensorKinds {
			kinds[lower(k)] = v
			rt.hosts.Add(k, cfg.SensorEngine)
		}
		rt.fed.Sensors = &federation.Binding{Kinds: kinds, Engine: cfg.SensorEngine}
	}
	if rt.coord != nil {
		// The coordinator needs the process's sensor hosts, tick cadence,
		// and clock to rehydrate fragment-carrying deployments.
		rt.coord.SetRuntime(rt.hosts, cfg.TickPeriod, rt.Sched.Now)
	}
	rt.tickCancel = rt.Sched.Every(cfg.TickPeriod, func() {
		rt.Stream.Advance(rt.Sched.Now())
	})
	return rt
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// Close stops the runtime's background tick.
func (rt *Runtime) Close() {
	if rt.tickCancel != nil {
		rt.tickCancel()
		rt.tickCancel = nil
	}
}

// Federator exposes the federated optimizer (for plan inspection tools).
func (rt *Runtime) Federator() *federation.Federator { return rt.fed }

// SensorEngine returns the bound sensor engine, if any.
func (rt *Runtime) SensorEngine() *sensor.Engine { return rt.sensors }

// Query is a running continuous query.
type Query struct {
	SQL string
	// Deployment carries the materialized result; nil for CREATE VIEW.
	Deployment *plan.Deployment
	// Partition records the federated optimizer's decision, when one was
	// made.
	Partition *federation.Result

	rt      *Runtime
	name    string // coordinator-tracked name ("" without SnapshotPath)
	runners []interface{ Stop() }
}

// Name reports the query's coordinator-tracked name ("" when the runtime
// has no durable coordinator).
func (q *Query) Name() string { return q.name }

// Snapshot returns the current result under the query's ORDER BY/LIMIT.
func (q *Query) Snapshot() ([]data.Tuple, error) {
	if q.Deployment == nil {
		return nil, fmt.Errorf("core: statement %q has no result", q.SQL)
	}
	return q.Deployment.Snapshot()
}

// Stop cancels the query's periodic sensor work and quiesces its
// deployment: shard workers (if any) stop, every engine-input
// subscription and clock-tick registration the deployment made is
// detached, and any shared prefix chains this was the last query on are
// torn down. The materialized result keeps its last state but no longer
// updates, and later input into the query's sources no longer reaches
// its operators — other queries on the same inputs are unaffected.
func (q *Query) Stop() {
	for _, r := range q.runners {
		r.Stop()
	}
	q.runners = nil
	if q.name != "" && q.rt.coord != nil {
		// Drop closes the deployment and stops snapshotting it.
		_ = q.rt.coord.Drop(q.name)
		q.name = ""
		return
	}
	if q.Deployment != nil {
		q.Deployment.Close()
	}
}

// Rescale moves this query's sharded deployment onto a new worker
// topology (see plan.Deployment.Rescale): live re-sharding when workers
// join or leave, and heal-back after a failover once the worker rejoins.
func (q *Query) Rescale(nodes []string) error {
	if q.Deployment == nil {
		return fmt.Errorf("core: statement %q has no deployment to rescale", q.SQL)
	}
	if q.name != "" && q.rt.coord != nil {
		return q.rt.coord.Rescale(q.name, nodes)
	}
	return q.Deployment.Rescale(nodes)
}

// Run parses and deploys one StreamSQL statement.
func (rt *Runtime) Run(sqlText string) (*Query, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.CreateView:
		if err := rt.Cat.AddView(s); err != nil {
			return nil, err
		}
		return &Query{SQL: sqlText, rt: rt}, nil
	case *sql.SelectStmt:
		return rt.deploySelect(sqlText, s)
	case *sql.WithRecursive:
		return rt.deployRecursive(sqlText, s)
	}
	return nil, fmt.Errorf("core: unsupported statement %T", stmt)
}

// MustRun deploys a statically known statement, panicking on error.
func (rt *Runtime) MustRun(sqlText string) *Query {
	q, err := rt.Run(sqlText)
	if err != nil {
		panic(err)
	}
	return q
}

func (rt *Runtime) deploySelect(sqlText string, stmt *sql.SelectStmt) (*Query, error) {
	res, err := rt.fed.Optimize(stmt)
	if err != nil {
		return nil, err
	}
	specs := fragSpecs(res.Chosen.Fragments)
	opts := plan.CompileOptions{Parallelism: rt.parallelism, Nodes: rt.nodes,
		Failover: rt.failover, CheckpointEvery: rt.ckEvery, StallTimeout: rt.stall,
		Sharing: rt.share, SensorHosts: rt.hosts, TickPeriod: rt.tick,
		Now: rt.Sched.Now(), Fragments: specs}
	var dep *plan.Deployment
	var name string
	if rt.coord != nil {
		rt.qn++
		name = fmt.Sprintf("q%d", rt.qn)
		dep, err = rt.coord.Deploy(name, res.Chosen.StreamPlan, opts)
	} else {
		dep, err = plan.CompileStreamOpts(res.Chosen.StreamPlan, rt.Stream, opts)
	}
	if err != nil {
		return nil, err
	}
	q := &Query{SQL: sqlText, Deployment: dep, Partition: res, rt: rt, name: name}
	// A failure past this point must tear the deployment back down — Stop
	// cancels the runners started so far and closes any shard workers, so
	// a failed deploy leaks neither goroutines nor tick work.
	fail := func(err error) (*Query, error) {
		q.Stop()
		return nil, err
	}

	// Start sensor fragments feeding their inputs, one batch per epoch: the
	// engine dispatches (and a sharded plan exchanges) each epoch's
	// deliveries in a single PushBatch instead of tuple-at-a-time. Fragments
	// the compile pushed into the shard replicas (dep.RemoteFragments) run
	// partitioned at the shard homes instead — no central runner, and no
	// exchange hop for their epochs.
	if err := rt.startFragmentRunners(q, dep, specs); err != nil {
		return fail(err)
	}
	rt.loadTables(dep)
	return q, nil
}

// startFragmentRunners starts a central epoch runner for every fragment
// not deployed inside the shard replicas, feeding the fragment's derived
// input one batch per epoch. Runners append to q.runners (Stop cancels
// them). Both fresh deploys and snapshot restores funnel through here.
func (rt *Runtime) startFragmentRunners(q *Query, dep *plan.Deployment, frags []plan.SensorFragment) error {
	if len(frags) > 0 && rt.sensors == nil {
		return fmt.Errorf("core: query %q carries sensor fragments but no sensor engine is configured", q.SQL)
	}
	remote := map[string]bool{}
	for _, name := range dep.RemoteFragments {
		remote[name] = true
	}
	for i := range frags {
		f := &frags[i]
		if remote[f.Name] {
			continue
		}
		var schema *data.Schema
		switch {
		case f.Select != nil:
			schema = f.Select.Schema()
		case f.Join != nil:
			schema = f.Join.Schema()
		case f.Agg != nil:
			schema = f.Agg.Schema()
		default:
			return fmt.Errorf("core: fragment %s has no query", f.Name)
		}
		in, ok := rt.Stream.Input(f.Name)
		if !ok {
			// A ship-all fragment whose raw source the plan did not end up
			// scanning (e.g. projected away); register so data still flows.
			var err error
			in, err = rt.Stream.Register(f.Name, schema)
			if err != nil {
				return err
			}
		}
		sink := func(ts []data.Tuple) { in.PushBatch(ts) }
		switch {
		case f.Select != nil:
			q.runners = append(q.runners, rt.sensors.StartSelectBatch(f.Select, rt.Sched, sink))
		case f.Join != nil:
			st, err := rt.sensors.PlanJoin(f.Join)
			if err != nil {
				return err
			}
			q.runners = append(q.runners, rt.sensors.StartJoinBatch(st, rt.Sched, sink))
		case f.Agg != nil:
			q.runners = append(q.runners, rt.sensors.StartAggregateBatch(f.Agg, rt.Sched, sink))
		}
	}
	return nil
}

// fragSpecs lowers the optimizer's fragment decisions to the compile-level
// descriptors locality placement and shard-hosted deployment work from.
func fragSpecs(frags []*federation.Fragment) []plan.SensorFragment {
	specs := make([]plan.SensorFragment, 0, len(frags))
	for _, f := range frags {
		specs = append(specs, plan.SensorFragment{
			Name: f.DerivedName, Sources: f.Sources,
			Select: f.Select, Join: f.Join, Agg: f.Agg,
		})
	}
	return specs
}

// loadTables pushes each scanned table's current rows into the
// deployment's table heads, one batch per table.
func (rt *Runtime) loadTables(dep *plan.Deployment) {
	now := rt.Sched.Now()
	for _, th := range dep.TableHeads {
		src, ok := rt.Cat.Source(th.Input)
		if !ok || src.Table == nil {
			continue
		}
		var rows []data.Tuple
		src.Table.Scan(func(t data.Tuple) bool {
			t.TS = now
			t.Op = data.Insert
			rows = append(rows, t)
			return true
		})
		th.Load(rows)
	}
}

// Coordinator exposes the durable coordinator (nil without SnapshotPath).
func (rt *Runtime) Coordinator() *plan.Coordinator { return rt.coord }

// Sharing exposes the multi-query sharing registry (nil without
// Config.SharedPrefixes) — tests and ops inspect live chain counts.
func (rt *Runtime) Sharing() *plan.Sharing { return rt.share }

// SaveSnapshot checkpoints every coordinator-tracked query at a quiescent
// barrier and atomically replaces the snapshot file (Config.SnapshotPath).
// Shared-prefix window state and sensor fragment deployments are captured
// too; the returned slice names any query the snapshot could not record
// (empty = complete snapshot) — surface it, never ignore it.
func (rt *Runtime) SaveSnapshot() ([]string, error) {
	if rt.coord == nil {
		return nil, fmt.Errorf("core: no SnapshotPath configured")
	}
	return rt.coord.Save()
}

// RestoreSnapshot rehydrates the standing queries recorded in the
// snapshot file onto this runtime: each recompiles with its shards pinned
// to the snapshotted placement and every operator — shared chain windows
// and fragment runners included — restored from the last committed
// checkpoint. Table loads are NOT replayed — the restored join and window
// state already contains them; sources push new input as usual. Sensor
// fragments resume where they ran: shard-hosted ones redeploy with their
// checkpointed epoch anchors (falling back in-process, then to central
// runners, when their snapshotted workers are gone), central ones restart
// their epoch runners here. Returns the restored queries in name order
// plus the names the snapshot recorded as skipped at Save time (those
// queries must be re-run); a validation or compile failure restores
// nothing and reports why.
func (rt *Runtime) RestoreSnapshot() ([]*Query, []string, error) {
	if rt.coord == nil {
		return nil, nil, fmt.Errorf("core: no SnapshotPath configured")
	}
	skipped, err := rt.coord.Restore()
	if err != nil {
		return nil, nil, err
	}
	var qs []*Query
	fail := func(err error) ([]*Query, []string, error) {
		for _, q := range qs {
			q.Stop()
		}
		return nil, nil, err
	}
	for _, name := range rt.coord.Names() {
		dep, _ := rt.coord.Deployment(name)
		sqlText := name
		if b, ok := rt.coord.Built(name); ok {
			sqlText = b.String()
		}
		q := &Query{SQL: sqlText, Deployment: dep, rt: rt, name: name}
		if err := rt.startFragmentRunners(q, dep, rt.coord.Fragments(name)); err != nil {
			q.Stop()
			return fail(fmt.Errorf("core: restore %s: %w", name, err))
		}
		qs = append(qs, q)
		// Keep q1, q2, … unique across the restart.
		var n int
		if _, err := fmt.Sscanf(name, "q%d", &n); err == nil && n > rt.qn {
			rt.qn = n
		}
	}
	return qs, skipped, nil
}

// Rescale retargets the runtime's worker topology: future deployments
// place shards over nodes, and every coordinator-tracked sharded query
// live-migrates onto it (workers that joined take shards, leaving workers
// hand theirs back, failover-stranded shards heal back out). Queries
// deployed without the coordinator rescale individually via Query.Rescale.
func (rt *Runtime) Rescale(nodes []string) error {
	rt.nodes = nodes
	if rt.coord == nil {
		return nil
	}
	for _, name := range rt.coord.Names() {
		dep, ok := rt.coord.Deployment(name)
		if !ok || dep.Shards < 2 {
			continue
		}
		if err := rt.coord.Rescale(name, nodes); err != nil {
			return fmt.Errorf("core: rescale %s: %w", name, err)
		}
	}
	return nil
}

// RegisterTable adds a stored relation to the catalog and the engine.
func (rt *Runtime) RegisterTable(name string, rel *data.Relation) error {
	if err := rt.Cat.AddSource(&catalog.Source{
		Name: name, Kind: catalog.KindTable, Schema: rel.Schema(), Table: rel,
	}); err != nil {
		return err
	}
	_, err := rt.Stream.Register(name, rel.Schema())
	return err
}

// RegisterStream adds a PC-side stream source, returning its engine input.
func (rt *Runtime) RegisterStream(name string, schema *data.Schema, rate float64) (*stream.Input, error) {
	kind := catalog.KindStream
	if err := rt.Cat.AddSource(&catalog.Source{
		Name: name, Kind: kind, Schema: schema, Rate: rate,
	}); err != nil {
		return nil, err
	}
	return rt.Stream.Register(name, schema)
}

// RegisterSensorStream adds a raw sensor source produced by motes carrying
// the given sensor. Queries over it become candidates for in-network
// execution.
func (rt *Runtime) RegisterSensorStream(name string, kind sensornet.SensorKind, rate float64) error {
	if rt.fed.Sensors == nil {
		return fmt.Errorf("core: no sensor engine configured")
	}
	schema := sensor.ReadingSchema(name)
	if err := rt.Cat.AddSource(&catalog.Source{
		Name: name, Kind: catalog.KindSensorStream, Schema: schema, Rate: rate,
	}); err != nil {
		return err
	}
	rt.fed.Sensors.Kinds[lower(name)] = kind
	rt.hosts.Add(name, rt.sensors)
	if _, err := rt.Stream.Register(name, schema); err != nil {
		return err
	}
	return nil
}
