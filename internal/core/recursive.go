package core

import (
	"fmt"
	"strings"

	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/plan"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/views"
)

// deployRecursive lowers WITH RECURSIVE onto internal/views: the base
// select seeds the view, the recursive select defines the rule (a linear
// join between the view and one edge source), and the body runs as a normal
// continuous query over the maintained view.
func (rt *Runtime) deployRecursive(sqlText string, wr *sql.WithRecursive) (*Query, error) {
	// --- base case: single-source select-project ------------------------
	if len(wr.Base.From) != 1 {
		return nil, fmt.Errorf("core: recursive base must scan one source")
	}
	baseFrom := wr.Base.From[0]
	baseSrc, ok := rt.Cat.Source(baseFrom.Name)
	if !ok {
		return nil, fmt.Errorf("core: unknown source %q in recursive base", baseFrom.Name)
	}
	baseSchema := baseSrc.Schema.Rename(baseFrom.Binding())
	if wr.Base.Star || len(wr.Base.Items) == 0 {
		return nil, fmt.Errorf("core: recursive base needs explicit projection")
	}

	// View schema: named by the statement's column list (or item aliases),
	// typed by the base projection.
	viewSchema := &data.Schema{Name: wr.Name, IsStream: true}
	for i, item := range wr.Base.Items {
		c, err := expr.Bind(item.Expr, baseSchema)
		if err != nil {
			return nil, fmt.Errorf("core: recursive base item %d: %w", i, err)
		}
		name := item.Alias
		if i < len(wr.Cols) {
			name = wr.Cols[i]
		}
		if name == "" {
			if col, isCol := item.Expr.(expr.Col); isCol {
				_, name = data.SplitQualified(col.Ref)
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		viewSchema.Cols = append(viewSchema.Cols, data.Column{Rel: wr.Name, Name: name, Type: c.Type})
	}

	// --- recursive rule: view ⋈ edge ------------------------------------
	if len(wr.Rec.From) != 2 {
		return nil, fmt.Errorf("core: recursive rule must join the view with one source")
	}
	var viewBinding string
	var edgeFrom sql.FromItem
	found := false
	for _, f := range wr.Rec.From {
		if strings.EqualFold(f.Name, wr.Name) {
			viewBinding = f.Binding()
			found = true
		} else {
			edgeFrom = f
		}
	}
	if !found {
		return nil, fmt.Errorf("core: recursive rule does not reference %s", wr.Name)
	}
	edgeSrc, ok := rt.Cat.Source(edgeFrom.Name)
	if !ok {
		return nil, fmt.Errorf("core: unknown source %q in recursive rule", edgeFrom.Name)
	}
	edgeSchema := edgeSrc.Schema.Rename(edgeFrom.Binding())

	// Requalify view references from the rule's binding to the view name.
	requal := func(e expr.Expr) expr.Expr { return expr.Requalify(e, viewBinding, wr.Name) }

	// Split the rule's WHERE into equi-join keys, edge-local predicates,
	// and residuals.
	var viewKey, edgeKey []string
	var edgeLocal, residual []expr.Expr
	joined := viewSchema.Concat(edgeSchema)
	for _, c := range expr.Conjuncts(wr.Rec.Where) {
		q := requal(c)
		if l, r, ok := expr.EquiJoin(q, viewSchema, edgeSchema); ok {
			viewKey = append(viewKey, l)
			edgeKey = append(edgeKey, r)
			continue
		}
		if expr.BoundBy(q, edgeSchema) {
			edgeLocal = append(edgeLocal, q)
			continue
		}
		if !expr.BoundBy(q, joined) {
			return nil, fmt.Errorf("core: recursive predicate %s references unknown columns", c)
		}
		residual = append(residual, q)
	}
	if len(viewKey) == 0 {
		return nil, fmt.Errorf("core: recursive rule needs an equi-join between %s and %s",
			wr.Name, edgeFrom.Binding())
	}
	if len(wr.Rec.Items) != viewSchema.Arity() {
		return nil, fmt.Errorf("core: recursive projection arity %d != view arity %d",
			len(wr.Rec.Items), viewSchema.Arity())
	}
	project := make([]stream.ProjectItem, len(wr.Rec.Items))
	for i, item := range wr.Rec.Items {
		project[i] = stream.ProjectItem{Expr: requal(item.Expr), Alias: item.Alias}
	}

	// --- body over the maintained view ----------------------------------
	shadow := catalog.New()
	shadow.SetStats(rt.Cat.Stats())
	for _, s := range rt.Cat.Sources() {
		cp := *s
		if err := shadow.AddSource(&cp); err != nil {
			return nil, err
		}
	}
	if err := shadow.AddSource(&catalog.Source{
		Name: wr.Name, Kind: catalog.KindStream, Schema: viewSchema,
		Rate: baseSrc.Cardinality() * 4,
	}); err != nil {
		return nil, err
	}
	built, err := plan.Build(wr.Body, shadow)
	if err != nil {
		return nil, err
	}
	dep, err := plan.CompileStream(built, rt.Stream)
	if err != nil {
		return nil, err
	}
	viewIn, ok := rt.Stream.Input(wr.Name)
	if !ok {
		if viewIn, err = rt.Stream.Register(wr.Name, viewSchema); err != nil {
			return nil, err
		}
	}

	v, err := views.New(views.Config{
		Schema:     viewSchema,
		EdgeSchema: edgeSchema,
		ViewKey:    viewKey,
		EdgeKey:    edgeKey,
		Residual:   expr.Conjoin(residual),
		Project:    project,
		MaxDepth:   rt.recursion,
	}, stream.NewBatchCallback(viewSchema, func(ts []data.Tuple) { viewIn.PushBatch(ts) }))
	if err != nil {
		return nil, err
	}

	// Wire the base pipeline: source → [filter] → project → BaseInput.
	baseHead, err := pipelineInto(v.BaseInput(), baseSchema, wr.Base.Where, wr.Base.Items)
	if err != nil {
		return nil, err
	}
	// Wire the edge pipeline: source → [edge-local filter] → EdgeInput.
	var edgeHead stream.Operator = v.EdgeInput()
	if len(edgeLocal) > 0 {
		pred, err := expr.Bind(expr.Conjoin(edgeLocal), edgeSchema)
		if err != nil {
			return nil, err
		}
		edgeHead = stream.NewFilter(edgeHead, pred)
	}

	// Subscribe both pipelines to the edge source's input and feed current
	// table rows (if stored).
	srcIn, ok := rt.Stream.Input(baseFrom.Name)
	if !ok {
		if srcIn, err = rt.Stream.Register(baseFrom.Name, baseSrc.Schema); err != nil {
			return nil, err
		}
	}
	srcIn.Subscribe(baseHead)
	if !strings.EqualFold(edgeFrom.Name, baseFrom.Name) {
		edgeIn, ok := rt.Stream.Input(edgeFrom.Name)
		if !ok {
			if edgeIn, err = rt.Stream.Register(edgeFrom.Name, edgeSrc.Schema); err != nil {
				return nil, err
			}
		}
		edgeIn.Subscribe(edgeHead)
		if edgeSrc.Table != nil {
			rt.loadRelation(edgeSrc.Table, edgeHead)
		}
	} else {
		srcIn.Subscribe(edgeHead)
	}
	if baseSrc.Table != nil {
		rt.loadRelation(baseSrc.Table, baseHead)
		if strings.EqualFold(edgeFrom.Name, baseFrom.Name) {
			rt.loadRelation(baseSrc.Table, edgeHead)
		}
	}
	rt.loadTables(dep)

	return &Query{SQL: sqlText, Deployment: dep, rt: rt}, nil
}

// pipelineInto builds source → [filter] → project → sink and returns the
// head operator.
func pipelineInto(sink stream.Operator, in *data.Schema, where expr.Expr, items []sql.SelectItem) (stream.Operator, error) {
	proj := make([]stream.ProjectItem, len(items))
	for i, it := range items {
		proj[i] = stream.ProjectItem{Expr: it.Expr, Alias: it.Alias}
	}
	p, err := stream.NewProject(sink, in, proj)
	if err != nil {
		return nil, err
	}
	var head stream.Operator = p
	if where != nil {
		pred, err := expr.Bind(where, in)
		if err != nil {
			return nil, err
		}
		head = stream.NewFilter(head, pred)
	}
	return head, nil
}

func (rt *Runtime) loadRelation(rel *data.Relation, head stream.Operator) {
	now := rt.Sched.Now()
	var rows []data.Tuple
	rel.Scan(func(t data.Tuple) bool {
		t.TS = now
		t.Op = data.Insert
		rows = append(rows, t)
		return true
	})
	stream.PushBatch(head, rows)
}
