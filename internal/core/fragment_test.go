package core

import (
	"fmt"
	"testing"
	"time"

	"aspen/internal/plan"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// fieldEnv is a pure function of (node, sensor, instant): every engine
// built over the same grid sees identical readings, so the coordinator's
// central engine and the shard workers' engines stay bit-equal — the
// property the serial-vs-remote differentials rely on.
func fieldEnv(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
	switch kind {
	case sensornet.SensorTemperature:
		return 20 + float64(n.ID) + float64(int64(now)/int64(vtime.Second)%7), true
	case sensornet.SensorLight:
		if n.ID%5 == 4 { // every fifth desk is occupied (dark chair sensor)
			return 3, true
		}
		return 70, true
	}
	return 0, false
}

// newFieldEngine builds one deterministic 4x4 desk-grid sensor engine;
// every call returns an identically-behaving engine.
func newFieldEngine() *sensor.Engine {
	nw := sensornet.Grid(sensornet.DefaultConfig(), 4, 4, 100, 4,
		sensornet.SensorTemperature, sensornet.SensorLight)
	return sensor.NewEngine(nw, sensor.EnvFunc(fieldEnv))
}

// newFragmentRuntime assembles a sensor-backed runtime with the given
// parallelism and (annotated) worker topology.
func newFragmentRuntime(t *testing.T, par int, failover bool, nodes ...string) (*Runtime, *vtime.Scheduler) {
	t.Helper()
	sched := vtime.NewScheduler()
	rt := New(Config{
		Scheduler:    sched,
		SensorEngine: newFieldEngine(),
		Parallelism:  par,
		Nodes:        nodes,
		Failover:     failover,
		CheckpointEvery: func() int {
			if failover {
				return 2
			}
			return 0
		}(),
	})
	t.Cleanup(rt.Close)
	if err := rt.RegisterSensorStream("Temperature", sensornet.SensorTemperature, 16); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterSensorStream("Light", sensornet.SensorLight, 16); err != nil {
		t.Fatal(err)
	}
	return rt, sched
}

// newSensorWorkers starts n loopback shard workers, each hosting its own
// deterministic copy of the sensor field under the given source names, and
// returns their affinity-annotated node entries.
func newSensorWorkers(t *testing.T, n int, sources ...string) ([]*stream.ShardWorker, []string) {
	t.Helper()
	var workers []*stream.ShardWorker
	var nodes []string
	for i := 0; i < n; i++ {
		hosts := plan.NewSensorHosts()
		eng := newFieldEngine()
		affinity := ""
		for _, src := range sources {
			hosts.Add(src, eng)
			if affinity != "" {
				affinity += ","
			}
			affinity += src
		}
		w, err := plan.NewSensorWorker("127.0.0.1:0", hosts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers = append(workers, w)
		nodes = append(nodes, w.Addr()+"="+affinity)
	}
	return workers, nodes
}

// runFragmentDifferential deploys src serially and over two sensor-hosting
// loopback workers, runs both for the same virtual time, and requires the
// distributed deployment to (a) have pushed at least one sensor fragment
// into the shard replicas and (b) produce the serial result exactly.
func runFragmentDifferential(t *testing.T, src string, sources ...string) {
	t.Helper()
	srt, ssched := newFragmentRuntime(t, 0, false)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	ssched.RunUntil(8 * vtime.Second)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}

	_, nodes := newSensorWorkers(t, 2, sources...)
	prt, psched := newFragmentRuntime(t, 4, false, nodes...)
	pq, err := prt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Deployment.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", pq.Deployment.Shards)
	}
	if len(pq.Deployment.RemoteFragments) == 0 {
		t.Fatalf("no sensor fragments were pushed into the shard replicas (fragments: %v)",
			pq.Partition.Chosen.Desc)
	}
	psched.RunUntil(8 * vtime.Second)
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pq.Stop()
	if len(got) != len(want) {
		t.Fatalf("distributed rows %v, want %v", got, want)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("row %d: distributed %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRemoteSensorFragmentSelectMatchesSerial pushes an in-network select
// fragment into shard replicas hosted by two loopback sensor workers and
// checks the grouped windowed rollup over it against serial execution.
func TestRemoteSensorFragmentSelectMatchesSerial(t *testing.T) {
	runFragmentDifferential(t,
		`SELECT l.room, count(*) AS n FROM Light l [RANGE 4 SECONDS]
		 WHERE l.value < 10 GROUP BY l.room ORDER BY l.room`,
		"light")
}

// TestRemoteSensorFragmentAggregateMatchesSerial does the same for a
// per-room aggregate over temperature readings.
func TestRemoteSensorFragmentAggregateMatchesSerial(t *testing.T) {
	runFragmentDifferential(t,
		`SELECT r.room, count(*) AS n, avg(r.value) AS v
		 FROM Temperature r [RANGE 4 SECONDS] GROUP BY r.room ORDER BY r.room`,
		"temperature")
}

// TestRemoteSensorFragmentJoinMatchesSerial does the same for the SmartCIS
// occupancy join (temperature ⋈ light at the occupied desks).
func TestRemoteSensorFragmentJoinMatchesSerial(t *testing.T) {
	runFragmentDifferential(t,
		`SELECT t.room, count(*) AS n, avg(t.value) AS v
		 FROM Temperature t, Light l [RANGE 4 SECONDS]
		 WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10
		 GROUP BY t.room ORDER BY t.room`,
		"temperature", "light")
}

// TestRemoteSensorFragmentSurvivesWorkerKill runs the select differential
// with failover armed and kills one of the two sensor workers mid-run: the
// dead worker's shards — fragment runners included — must redeploy from
// their checkpoints, regenerate the missed epochs, and still match serial.
func TestRemoteSensorFragmentSurvivesWorkerKill(t *testing.T) {
	const src = `SELECT l.room, count(*) AS n FROM Light l [RANGE 4 SECONDS]
		 WHERE l.value < 10 GROUP BY l.room ORDER BY l.room`

	srt, ssched := newFragmentRuntime(t, 0, false)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	ssched.RunUntil(9 * vtime.Second)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}

	workers, nodes := newSensorWorkers(t, 2, "light")
	prt, psched := newFragmentRuntime(t, 4, true, nodes...)
	pq, err := prt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pq.Deployment.RemoteFragments) == 0 {
		t.Fatal("no sensor fragments were pushed into the shard replicas")
	}
	if !pq.Deployment.Failover {
		t.Fatal("deployment is not failover-armed")
	}
	psched.RunUntil(4 * vtime.Second)
	workers[1].Close()
	psched.RunUntil(9 * vtime.Second)
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pq.Stop()
	if len(got) != len(want) {
		t.Fatalf("post-kill rows %v, want %v", got, want)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("row %d: post-kill %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRemoteSensorFragmentRescaleKeepsLocality rescales a fragment-carrying
// deployment onto a third sensor worker joining the pool and checks results
// keep matching serial afterwards — and that shards never land on a worker
// without the source.
func TestRemoteSensorFragmentRescaleKeepsLocality(t *testing.T) {
	const src = `SELECT l.room, count(*) AS n FROM Light l [RANGE 4 SECONDS]
		 WHERE l.value < 10 GROUP BY l.room ORDER BY l.room`

	srt, ssched := newFragmentRuntime(t, 0, false)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	ssched.RunUntil(9 * vtime.Second)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	_, nodes := newSensorWorkers(t, 2, "light")
	prt, psched := newFragmentRuntime(t, 4, false, nodes...)
	pq, err := prt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pq.Deployment.RemoteFragments) == 0 {
		t.Fatal("no sensor fragments were pushed into the shard replicas")
	}
	psched.RunUntil(4 * vtime.Second)

	_, more := newSensorWorkers(t, 1, "light")
	grown := append(append([]string{}, nodes...), more...)
	if err := pq.Rescale(grown); err != nil {
		t.Fatal(err)
	}
	addrs, affinity := plan.ParseNodes(grown)
	hosted := map[string]bool{}
	for _, a := range addrs {
		for _, s := range affinity[a] {
			if s == "light" {
				hosted[a] = true
			}
		}
	}
	for j, a := range pq.Deployment.Placement() {
		if a != "" && !hosted[a] {
			t.Fatalf("shard %d rescaled onto %s, which does not host light", j, a)
		}
	}
	psched.RunUntil(9 * vtime.Second)
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pq.Stop()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-rescale rows %v, want %v", got, want)
	}
}

// TestFragmentIneligibleTickMisalignment keeps a fragment central when its
// epoch period does not divide into tick instants: the deployment must
// still run (central runner, exchange feed) and match serial.
func TestFragmentIneligibleTickMisalignment(t *testing.T) {
	// 1s epochs over a 3s tick: epochs fall between tick barriers, so the
	// compile must keep the fragment on the coordinator.
	sched := vtime.NewScheduler()
	rt := New(Config{
		Scheduler:    sched,
		SensorEngine: newFieldEngine(),
		Parallelism:  2,
		TickPeriod:   3 * time.Second,
	})
	t.Cleanup(rt.Close)
	if err := rt.RegisterSensorStream("Light", sensornet.SensorLight, 16); err != nil {
		t.Fatal(err)
	}
	_, nodes := newSensorWorkers(t, 2, "light")
	rt.nodes = nodes

	q, err := rt.Run(`SELECT l.room, count(*) AS n FROM Light l [RANGE 6 SECONDS]
		 WHERE l.value < 10 GROUP BY l.room ORDER BY l.room`)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	if len(q.Deployment.RemoteFragments) != 0 {
		t.Fatalf("misaligned fragment was pushed remote: %v", q.Deployment.RemoteFragments)
	}
	sched.RunUntil(5 * vtime.Second)
	rows, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("central fallback produced no rows")
	}
}
