package core

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/plan"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// fieldEnv is a pure function of (node, sensor, instant): every engine
// built over the same grid sees identical readings, so the coordinator's
// central engine and the shard workers' engines stay bit-equal — the
// property the serial-vs-remote differentials rely on.
func fieldEnv(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
	switch kind {
	case sensornet.SensorTemperature:
		return 20 + float64(n.ID) + float64(int64(now)/int64(vtime.Second)%7), true
	case sensornet.SensorLight:
		if n.ID%5 == 4 { // every fifth desk is occupied (dark chair sensor)
			return 3, true
		}
		return 70, true
	}
	return 0, false
}

// newFieldEngine builds one deterministic 4x4 desk-grid sensor engine;
// every call returns an identically-behaving engine.
func newFieldEngine() *sensor.Engine {
	nw := sensornet.Grid(sensornet.DefaultConfig(), 4, 4, 100, 4,
		sensornet.SensorTemperature, sensornet.SensorLight)
	return sensor.NewEngine(nw, sensor.EnvFunc(fieldEnv))
}

// newFragmentRuntime assembles a sensor-backed runtime with the given
// parallelism and (annotated) worker topology.
func newFragmentRuntime(t *testing.T, par int, failover bool, nodes ...string) (*Runtime, *vtime.Scheduler) {
	t.Helper()
	return newFragmentRuntimeCfg(t, Config{
		Parallelism: par,
		Nodes:       nodes,
		Failover:    failover,
		CheckpointEvery: func() int {
			if failover {
				return 2
			}
			return 0
		}(),
	})
}

// newFragmentRuntimeCfg is newFragmentRuntime with the full Config surface
// (snapshot path, tick period); Scheduler and SensorEngine are filled in.
func newFragmentRuntimeCfg(t *testing.T, cfg Config) (*Runtime, *vtime.Scheduler) {
	t.Helper()
	sched := vtime.NewScheduler()
	cfg.Scheduler = sched
	cfg.SensorEngine = newFieldEngine()
	rt := New(cfg)
	t.Cleanup(rt.Close)
	if err := rt.RegisterSensorStream("Temperature", sensornet.SensorTemperature, 16); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterSensorStream("Light", sensornet.SensorLight, 16); err != nil {
		t.Fatal(err)
	}
	return rt, sched
}

// newSensorWorkers starts n loopback shard workers, each hosting its own
// deterministic copy of the sensor field under the given source names, and
// returns their affinity-annotated node entries.
func newSensorWorkers(t *testing.T, n int, sources ...string) ([]*stream.ShardWorker, []string) {
	t.Helper()
	var workers []*stream.ShardWorker
	var nodes []string
	for i := 0; i < n; i++ {
		hosts := plan.NewSensorHosts()
		eng := newFieldEngine()
		affinity := ""
		for _, src := range sources {
			hosts.Add(src, eng)
			if affinity != "" {
				affinity += ","
			}
			affinity += src
		}
		w, err := plan.NewSensorWorker("127.0.0.1:0", hosts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers = append(workers, w)
		nodes = append(nodes, w.Addr()+"="+affinity)
	}
	return workers, nodes
}

// runFragmentDifferential deploys src serially and over two sensor-hosting
// loopback workers, runs both for the same virtual time, and requires the
// distributed deployment to (a) have pushed at least one sensor fragment
// into the shard replicas and (b) produce the serial result exactly.
func runFragmentDifferential(t *testing.T, src string, sources ...string) {
	t.Helper()
	srt, ssched := newFragmentRuntime(t, 0, false)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	ssched.RunUntil(8 * vtime.Second)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}

	_, nodes := newSensorWorkers(t, 2, sources...)
	prt, psched := newFragmentRuntime(t, 4, false, nodes...)
	pq, err := prt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Deployment.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", pq.Deployment.Shards)
	}
	if len(pq.Deployment.RemoteFragments) == 0 {
		t.Fatalf("no sensor fragments were pushed into the shard replicas (fragments: %v)",
			pq.Partition.Chosen.Desc)
	}
	psched.RunUntil(8 * vtime.Second)
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pq.Stop()
	if len(got) != len(want) {
		t.Fatalf("distributed rows %v, want %v", got, want)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("row %d: distributed %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRemoteSensorFragmentSelectMatchesSerial pushes an in-network select
// fragment into shard replicas hosted by two loopback sensor workers and
// checks the grouped windowed rollup over it against serial execution.
func TestRemoteSensorFragmentSelectMatchesSerial(t *testing.T) {
	runFragmentDifferential(t,
		`SELECT l.room, count(*) AS n FROM Light l [RANGE 4 SECONDS]
		 WHERE l.value < 10 GROUP BY l.room ORDER BY l.room`,
		"light")
}

// TestRemoteSensorFragmentAggregateMatchesSerial does the same for a
// per-room aggregate over temperature readings.
func TestRemoteSensorFragmentAggregateMatchesSerial(t *testing.T) {
	runFragmentDifferential(t,
		`SELECT r.room, count(*) AS n, avg(r.value) AS v
		 FROM Temperature r [RANGE 4 SECONDS] GROUP BY r.room ORDER BY r.room`,
		"temperature")
}

// TestRemoteSensorFragmentJoinMatchesSerial does the same for the SmartCIS
// occupancy join (temperature ⋈ light at the occupied desks).
func TestRemoteSensorFragmentJoinMatchesSerial(t *testing.T) {
	runFragmentDifferential(t,
		`SELECT t.room, count(*) AS n, avg(t.value) AS v
		 FROM Temperature t, Light l [RANGE 4 SECONDS]
		 WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10
		 GROUP BY t.room ORDER BY t.room`,
		"temperature", "light")
}

// TestRemoteSensorFragmentSurvivesWorkerKill runs the select differential
// with failover armed and kills one of the two sensor workers mid-run: the
// dead worker's shards — fragment runners included — must redeploy from
// their checkpoints, regenerate the missed epochs, and still match serial.
func TestRemoteSensorFragmentSurvivesWorkerKill(t *testing.T) {
	const src = `SELECT l.room, count(*) AS n FROM Light l [RANGE 4 SECONDS]
		 WHERE l.value < 10 GROUP BY l.room ORDER BY l.room`

	srt, ssched := newFragmentRuntime(t, 0, false)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	ssched.RunUntil(9 * vtime.Second)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}

	workers, nodes := newSensorWorkers(t, 2, "light")
	prt, psched := newFragmentRuntime(t, 4, true, nodes...)
	pq, err := prt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pq.Deployment.RemoteFragments) == 0 {
		t.Fatal("no sensor fragments were pushed into the shard replicas")
	}
	if !pq.Deployment.Failover {
		t.Fatal("deployment is not failover-armed")
	}
	psched.RunUntil(4 * vtime.Second)
	workers[1].Close()
	psched.RunUntil(9 * vtime.Second)
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pq.Stop()
	if len(got) != len(want) {
		t.Fatalf("post-kill rows %v, want %v", got, want)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("row %d: post-kill %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRemoteSensorFragmentRescaleKeepsLocality rescales a fragment-carrying
// deployment onto a third sensor worker joining the pool and checks results
// keep matching serial afterwards — and that shards never land on a worker
// without the source.
func TestRemoteSensorFragmentRescaleKeepsLocality(t *testing.T) {
	const src = `SELECT l.room, count(*) AS n FROM Light l [RANGE 4 SECONDS]
		 WHERE l.value < 10 GROUP BY l.room ORDER BY l.room`

	srt, ssched := newFragmentRuntime(t, 0, false)
	sq, err := srt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	ssched.RunUntil(9 * vtime.Second)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	_, nodes := newSensorWorkers(t, 2, "light")
	prt, psched := newFragmentRuntime(t, 4, false, nodes...)
	pq, err := prt.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pq.Deployment.RemoteFragments) == 0 {
		t.Fatal("no sensor fragments were pushed into the shard replicas")
	}
	psched.RunUntil(4 * vtime.Second)

	_, more := newSensorWorkers(t, 1, "light")
	grown := append(append([]string{}, nodes...), more...)
	if err := pq.Rescale(grown); err != nil {
		t.Fatal(err)
	}
	addrs, affinity, err := plan.ParseNodes(grown)
	if err != nil {
		t.Fatal(err)
	}
	hosted := map[string]bool{}
	for _, a := range addrs {
		for _, s := range affinity[a] {
			if s == "light" {
				hosted[a] = true
			}
		}
	}
	for j, a := range pq.Deployment.Placement() {
		if a != "" && !hosted[a] {
			t.Fatalf("shard %d rescaled onto %s, which does not host light", j, a)
		}
	}
	psched.RunUntil(9 * vtime.Second)
	got, err := pq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pq.Stop()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-rescale rows %v, want %v", got, want)
	}
}

// newSensorWorkersAt restarts sensor workers bound to explicit addresses —
// the "same machines came back" half of a coordinator-restart scenario.
func newSensorWorkersAt(t *testing.T, addrs []string, sources ...string) []*stream.ShardWorker {
	t.Helper()
	var workers []*stream.ShardWorker
	for _, addr := range addrs {
		hosts := plan.NewSensorHosts()
		eng := newFieldEngine()
		for _, src := range sources {
			hosts.Add(src, eng)
		}
		w, err := plan.NewSensorWorker(addr, hosts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers = append(workers, w)
	}
	return workers
}

const fragRestartSrc = `SELECT l.room, count(*) AS n FROM Light l [RANGE 4 SECONDS]
	 WHERE l.value < 10 GROUP BY l.room ORDER BY l.room`

// fragRestartReference runs fragRestartSrc serially and uninterrupted to
// the final instant; every restart differential must land exactly here.
func fragRestartReference(t *testing.T) []data.Tuple {
	t.Helper()
	srt, ssched := newFragmentRuntime(t, 0, false)
	sq, err := srt.Run(fragRestartSrc)
	if err != nil {
		t.Fatal(err)
	}
	ssched.RunUntil(8 * vtime.Second)
	want, err := sq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}
	return want
}

// fragRestartSnapshot runs fragRestartSrc sharded over two sensor workers,
// saves a coordinator snapshot at the 4s mark, and simulates the crash:
// coordinator, deployments, and workers all die. It returns the worker
// node entries the snapshot recorded.
func fragRestartSnapshot(t *testing.T, path string) []string {
	t.Helper()
	workers, nodes := newSensorWorkers(t, 2, "light")
	rt, sched := newFragmentRuntimeCfg(t, Config{
		Parallelism: 4, Nodes: nodes,
		Failover: true, CheckpointEvery: 2,
		SnapshotPath: path,
	})
	q, err := rt.Run(fragRestartSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Deployment.RemoteFragments) == 0 {
		t.Fatal("no sensor fragments were pushed into the shard replicas")
	}
	sched.RunUntil(4 * vtime.Second)
	skipped, err := rt.SaveSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("snapshot skipped %v; a fragment deployment must be captured", skipped)
	}
	// The restart: nothing of the first process survives but the file.
	rt.Coordinator().Close()
	rt.Close()
	for _, w := range workers {
		w.Close()
	}
	return nodes
}

func requireFragRows(t *testing.T, ctx string, got, want []data.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s rows %v, want %v", ctx, got, want)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("%s row %d: %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// TestFragmentSnapshotRestartSameWorkers is the fragment restart
// differential, tier 1: the coordinator restarts, the sensor workers come
// back at their snapshotted addresses, and the restored deployment —
// remote fragments redeployed with their checkpointed epoch anchors —
// finishes the run exactly where an uninterrupted one would.
func TestFragmentSnapshotRestartSameWorkers(t *testing.T) {
	want := fragRestartReference(t)
	path := filepath.Join(t.TempDir(), "coord.snap")
	nodes := fragRestartSnapshot(t, path)

	addrs, _, err := plan.ParseNodes(nodes)
	if err != nil {
		t.Fatal(err)
	}
	newSensorWorkersAt(t, addrs, "light")
	rt, sched := newFragmentRuntimeCfg(t, Config{
		Parallelism: 4, Nodes: nodes,
		Failover: true, CheckpointEvery: 2,
		SnapshotPath: path,
	})
	qs, skipped, err := rt.RestoreSnapshot()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("restore surfaced skips %v, want none", skipped)
	}
	if len(qs) != 1 {
		t.Fatalf("restored %d queries, want 1", len(qs))
	}
	q := qs[0]
	if len(q.Deployment.RemoteFragments) == 0 {
		t.Fatal("restored deployment lost its remote fragments")
	}
	onWorker := false
	for _, loc := range q.Deployment.Placement() {
		onWorker = onWorker || loc != ""
	}
	if !onWorker {
		t.Fatalf("no shard returned to a worker (placement %v)", q.Deployment.Placement())
	}
	sched.RunUntil(8 * vtime.Second)
	got, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireFragRows(t, "restart-same-workers", got, want)
}

// TestFragmentSnapshotRestartWorkersGone, tier 2: the snapshotted workers
// never come back, so the restored deployment degrades to all-in-process
// shards — with the fragments still pinned and resumed from their exact
// checkpointed state against the sources this process hosts.
func TestFragmentSnapshotRestartWorkersGone(t *testing.T) {
	want := fragRestartReference(t)
	path := filepath.Join(t.TempDir(), "coord.snap")
	fragRestartSnapshot(t, path)

	rt, sched := newFragmentRuntimeCfg(t, Config{
		Parallelism: 4, SnapshotPath: path,
	})
	qs, skipped, err := rt.RestoreSnapshot()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("restore surfaced skips %v, want none", skipped)
	}
	if len(qs) != 1 {
		t.Fatalf("restored %d queries, want 1", len(qs))
	}
	q := qs[0]
	for j, loc := range q.Deployment.Placement() {
		if loc != "" {
			t.Fatalf("shard %d restored onto dead worker %q", j, loc)
		}
	}
	if len(q.Deployment.RemoteFragments) == 0 {
		t.Fatal("in-process degrade dropped the pinned fragments")
	}
	sched.RunUntil(8 * vtime.Second)
	got, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireFragRows(t, "restart-workers-gone", got, want)
}

// TestFragmentSnapshotRestartCentralFallback, tier 3: the workers are gone
// AND the restarted process hosts no sensor sources for pinned in-process
// fragments, so the fragments fall back to central epoch runners — the
// deployment survives (stream state exact, fragment runners re-anchored at
// the restore instant) instead of being silently dropped.
func TestFragmentSnapshotRestartCentralFallback(t *testing.T) {
	want := fragRestartReference(t)
	path := filepath.Join(t.TempDir(), "coord.snap")
	fragRestartSnapshot(t, path)

	// No RegisterSensorStream: the runtime has a sensor engine (central
	// runners work) but hosts no sources (pinned in-process fragments
	// cannot build), forcing the last fallback tier.
	sched := vtime.NewScheduler()
	rt := New(Config{
		Scheduler:    sched,
		SensorEngine: newFieldEngine(),
		Parallelism:  4,
		SnapshotPath: path,
	})
	t.Cleanup(rt.Close)
	// Central runners anchor at Now+period, so tick to the snapshot
	// instant first: the restarted runners resume at exactly the epoch the
	// checkpointed ones would have fired next.
	sched.RunUntil(4 * vtime.Second)
	qs, skipped, err := rt.RestoreSnapshot()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("restore surfaced skips %v, want none", skipped)
	}
	if len(qs) != 1 {
		t.Fatalf("restored %d queries, want 1", len(qs))
	}
	q := qs[0]
	if len(q.Deployment.RemoteFragments) != 0 {
		t.Fatalf("central fallback left fragments pinned: %v", q.Deployment.RemoteFragments)
	}
	for j, loc := range q.Deployment.Placement() {
		if loc != "" {
			t.Fatalf("shard %d restored onto dead worker %q", j, loc)
		}
	}
	sched.RunUntil(8 * vtime.Second)
	got, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireFragRows(t, "restart-central-fallback", got, want)
}

// TestFragmentIneligibleTickMisalignment keeps a fragment central when its
// epoch period does not divide into tick instants: the deployment must
// still run (central runner, exchange feed) and match serial.
func TestFragmentIneligibleTickMisalignment(t *testing.T) {
	// 1s epochs over a 3s tick: epochs fall between tick barriers, so the
	// compile must keep the fragment on the coordinator.
	sched := vtime.NewScheduler()
	rt := New(Config{
		Scheduler:    sched,
		SensorEngine: newFieldEngine(),
		Parallelism:  2,
		TickPeriod:   3 * time.Second,
	})
	t.Cleanup(rt.Close)
	if err := rt.RegisterSensorStream("Light", sensornet.SensorLight, 16); err != nil {
		t.Fatal(err)
	}
	_, nodes := newSensorWorkers(t, 2, "light")
	rt.nodes = nodes

	q, err := rt.Run(`SELECT l.room, count(*) AS n FROM Light l [RANGE 6 SECONDS]
		 WHERE l.value < 10 GROUP BY l.room ORDER BY l.room`)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	if len(q.Deployment.RemoteFragments) != 0 {
		t.Fatalf("misaligned fragment was pushed remote: %v", q.Deployment.RemoteFragments)
	}
	sched.RunUntil(5 * vtime.Second)
	rows, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("central fallback produced no rows")
	}
}
