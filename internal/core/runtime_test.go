package core

import (
	"strings"
	"testing"

	"aspen/internal/data"
	"aspen/internal/federation"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

// newTestRuntime assembles a runtime over a 3x3 desk grid where desk mote 4
// is occupied (dark chair light).
func newTestRuntime(t *testing.T) (*Runtime, *vtime.Scheduler) {
	t.Helper()
	nw := sensornet.Grid(sensornet.DefaultConfig(), 3, 3, 100, 3,
		sensornet.SensorTemperature, sensornet.SensorLight)
	env := sensor.EnvFunc(func(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
		switch kind {
		case sensornet.SensorTemperature:
			return 20 + float64(n.ID), true
		case sensornet.SensorLight:
			if n.ID == 4 {
				return 3, true
			}
			return 70, true
		}
		return 0, false
	})
	sched := vtime.NewScheduler()
	rt := New(Config{
		Scheduler:    sched,
		SensorEngine: sensor.NewEngine(nw, env),
	})
	t.Cleanup(rt.Close)
	if err := rt.RegisterSensorStream("Temperature", sensornet.SensorTemperature, 9); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterSensorStream("Light", sensornet.SensorLight, 9); err != nil {
		t.Fatal(err)
	}
	return rt, sched
}

func TestRunFederatedOccupancyQuery(t *testing.T) {
	rt, sched := newTestRuntime(t)
	q, err := rt.Run(`SELECT t.room, t.desk, t.value FROM Temperature t, Light l
		WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Partition == nil || q.Partition.Chosen == nil {
		t.Fatal("no partition recorded")
	}
	if q.Partition.Chosen.Fragments[0].Kind != federation.FragJoin {
		t.Fatalf("chosen = %s", q.Partition.Chosen.Desc)
	}
	sched.RunUntil(3 * vtime.Second) // a few sensor epochs
	rows, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no results after epochs")
	}
	for _, r := range rows {
		if r.Vals[2].AsFloat() != 24 { // mote 4's temperature
			t.Fatalf("row = %v", r)
		}
	}
	q.Stop()
	before := len(rows)
	sched.RunUntil(10 * vtime.Second)
	rows, _ = q.Snapshot()
	if len(rows) != before {
		t.Fatal("results changed after Stop")
	}
}

func TestRunCreateViewThenQuery(t *testing.T) {
	rt, sched := newTestRuntime(t)
	if _, err := rt.Run(`CREATE VIEW Occupied AS (
		SELECT t.room, t.desk, t.value FROM Temperature t, Light l
		WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10)`); err != nil {
		t.Fatal(err)
	}
	q, err := rt.Run(`SELECT o.room, o.value FROM Occupied o`)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(2 * vtime.Second)
	rows, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("view query returned nothing")
	}
	if rows[0].Vals[1].AsFloat() != 24 {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestRunWithTables(t *testing.T) {
	rt, sched := newTestRuntime(t)
	mach := data.NewSchema("Machines",
		data.Col("name", data.TString), data.Col("room", data.TString), data.Col("desk", data.TInt))
	rel := data.NewRelation(mach)
	rel.MustInsert(data.Str("ws-a"), data.Str("L2"), data.Int(2)) // desk of mote 4
	rel.MustInsert(data.Str("ws-b"), data.Str("L1"), data.Int(1))
	if err := rt.RegisterTable("Machines", rel); err != nil {
		t.Fatal(err)
	}
	q, err := rt.Run(`SELECT m.name, t.value FROM Temperature t, Light l, Machines m
		WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10
		AND m.room = t.room AND m.desk = t.desk`)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(2 * vtime.Second)
	rows, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no joined rows")
	}
	if rows[0].Vals[0].AsString() != "ws-a" {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestRunRecursiveRouting(t *testing.T) {
	rt, _ := newTestRuntime(t)
	edges := data.NewSchema("RoutingPoints",
		data.Col("src", data.TString), data.Col("dst", data.TString), data.Col("dist", data.TFloat))
	rel := data.NewRelation(edges)
	add := func(a, b string, d float64) {
		rel.MustInsert(data.Str(a), data.Str(b), data.Float(d))
	}
	add("lobby", "hall1", 40)
	add("hall1", "hall2", 35)
	add("hall2", "L102", 20)
	add("hall1", "L101", 25)
	if err := rt.RegisterTable("RoutingPoints", rel); err != nil {
		t.Fatal(err)
	}

	q, err := rt.Run(`WITH RECURSIVE paths(src, dst, dist) AS (
		SELECT r.src, r.dst, r.dist FROM RoutingPoints r
		UNION ALL
		SELECT p.src, r.dst, p.dist + r.dist FROM paths p, RoutingPoints r WHERE p.dst = r.src
	) SELECT src, dst, dist FROM paths WHERE src = 'lobby' ORDER BY dist`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// lobby reaches hall1(40), L101(65), hall2(75), L102(95)
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Vals[1].AsString() != "hall1" || rows[0].Vals[2].AsFloat() != 40 {
		t.Fatalf("first = %v", rows[0])
	}
	if rows[3].Vals[1].AsString() != "L102" || rows[3].Vals[2].AsFloat() != 95 {
		t.Fatalf("last = %v", rows[3])
	}

	// Incremental maintenance: a corridor closes, routes through it vanish.
	in, _ := rt.Stream.Input("RoutingPoints")
	in.Push(data.NewTuple(vtime.Second, data.Str("hall1"), data.Str("hall2"), data.Float(35)).Negate())
	rows, _ = q.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("after edge delete: %v", rows)
	}
	for _, r := range rows {
		if r.Vals[1].AsString() == "L102" {
			t.Fatalf("stale route to L102: %v", rows)
		}
	}
}

func TestRunRecursiveErrors(t *testing.T) {
	rt, _ := newTestRuntime(t)
	edges := data.NewSchema("E", data.Col("src", data.TString), data.Col("dst", data.TString))
	if err := rt.RegisterTable("E", data.NewRelation(edges)); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		// base over two sources
		`WITH RECURSIVE p(a,b) AS (SELECT e.src, e.dst FROM E e, E f UNION ALL
			SELECT p.a, e.dst FROM p, E e WHERE p.b = e.src) SELECT a FROM p`,
		// rule missing the view
		`WITH RECURSIVE p(a,b) AS (SELECT e.src, e.dst FROM E e UNION ALL
			SELECT e.src, f.dst FROM E e, E f WHERE e.dst = f.src) SELECT a FROM p`,
		// no equi-join in the rule
		`WITH RECURSIVE p(a,b) AS (SELECT e.src, e.dst FROM E e UNION ALL
			SELECT p.a, e.dst FROM p, E e WHERE p.b <> e.src) SELECT a FROM p`,
		// arity mismatch in the rule projection
		`WITH RECURSIVE p(a,b) AS (SELECT e.src, e.dst FROM E e UNION ALL
			SELECT p.a FROM p, E e WHERE p.b = e.src) SELECT a FROM p`,
		// unknown base source
		`WITH RECURSIVE p(a,b) AS (SELECT z.src, z.dst FROM ZZZ z UNION ALL
			SELECT p.a, e.dst FROM p, E e WHERE p.b = e.src) SELECT a FROM p`,
		// star base
		`WITH RECURSIVE p(a,b) AS (SELECT * FROM E e UNION ALL
			SELECT p.a, e.dst FROM p, E e WHERE p.b = e.src) SELECT a FROM p`,
	}
	for _, src := range bad {
		if _, err := rt.Run(src); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}

func TestRunParseAndPlanErrors(t *testing.T) {
	rt, _ := newTestRuntime(t)
	if _, err := rt.Run(`SELEC nonsense`); err == nil {
		t.Fatal("parse error accepted")
	}
	if _, err := rt.Run(`SELECT x.a FROM NoSuch x`); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := rt.Run(`CREATE VIEW V AS (SELECT t.room FROM Temperature t)`); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(`CREATE VIEW V AS (SELECT t.room FROM Temperature t)`); err == nil {
		t.Fatal("duplicate view accepted")
	}
	// CREATE VIEW has no snapshot
	q := rt.MustRun(`CREATE VIEW W AS (SELECT t.room FROM Temperature t)`)
	if _, err := q.Snapshot(); err == nil {
		t.Fatal("view snapshot should error")
	}
}

func TestMustRunPanics(t *testing.T) {
	rt, _ := newTestRuntime(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.MustRun("garbage")
}

func TestRegisterErrors(t *testing.T) {
	rt, _ := newTestRuntime(t)
	if err := rt.RegisterSensorStream("Temperature", sensornet.SensorTemperature, 1); err == nil {
		t.Fatal("duplicate sensor stream accepted")
	}
	s := data.NewSchema("S", data.Col("a", data.TInt))
	if _, err := rt.RegisterStream("Temperature", s, 1); err == nil {
		t.Fatal("name clash accepted")
	}
	noSensors := New(Config{})
	defer noSensors.Close()
	if err := noSensors.RegisterSensorStream("X", sensornet.SensorLight, 1); err == nil {
		t.Fatal("sensor stream without engine accepted")
	}
}

func TestWindowedQueryExpiresViaTicker(t *testing.T) {
	rt, sched := newTestRuntime(t)
	in, err := rt.RegisterStream("Pulse", pulseSchema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	q := rt.MustRun(`SELECT p.v FROM Pulse p [RANGE 5 SECONDS]`)
	in.Push(data.NewTuple(sched.Now().Add(1e9), data.Int(1)))
	sched.RunUntil(2 * vtime.Second)
	if rows, _ := q.Snapshot(); len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// after the window passes, the runtime's tick must expire the tuple
	sched.RunUntil(20 * vtime.Second)
	if rows, _ := q.Snapshot(); len(rows) != 0 {
		t.Fatalf("window did not expire: %v", rows)
	}
}

func pulseSchema() *data.Schema {
	s := data.NewSchema("Pulse", data.Col("v", data.TInt))
	s.IsStream = true
	return s
}

func TestQueryOutputToDisplay(t *testing.T) {
	rt, sched := newTestRuntime(t)
	rt.MustRun(`SELECT t.room, t.value FROM Temperature t WHERE t.value > 26 OUTPUT TO lobbyboard`)
	sched.RunUntil(2 * vtime.Second)
	disp := rt.Stream.MustDisplay("lobbyboard", nil)
	if disp.Len() == 0 {
		t.Fatal("display never updated")
	}
	if !contains(rt.Stream.Displays(), "lobbyboard") {
		t.Fatal("display not listed")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, want) {
			return true
		}
	}
	return false
}

// TestSharedPrefixesRuntime wires Config.SharedPrefixes end to end: two
// SELECTs over the same windowed source run one physical chain (one input
// subscriber, one tracked window), see identical filtered data, and
// Query.Stop detaches everything — the last stop tears the chain down.
func TestSharedPrefixesRuntime(t *testing.T) {
	sched := vtime.NewScheduler()
	rt := New(Config{Scheduler: sched, SharedPrefixes: true})
	defer rt.Close()
	in, err := rt.RegisterStream("Pulse", pulseSchema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	q1 := rt.MustRun(`SELECT p.v FROM Pulse p [RANGE 5 SECONDS] WHERE p.v >= 1`)
	q2 := rt.MustRun(`SELECT x.v FROM Pulse x [RANGE 5 SECONDS] WHERE x.v >= 1`)
	if got := in.Subscribers(); got != 1 {
		t.Fatalf("subscribers = %d, want 1 shared chain for both queries", got)
	}
	if got := rt.Sharing().Chains(); got == 0 {
		t.Fatal("no shared chains despite SharedPrefixes")
	}
	in.Push(data.NewTuple(sched.Now().Add(1e9), data.Int(0)))
	in.Push(data.NewTuple(sched.Now().Add(1e9), data.Int(2)))
	r1, _ := q1.Snapshot()
	r2, _ := q2.Snapshot()
	if len(r1) != 1 || len(r2) != 1 {
		t.Fatalf("rows = %v / %v, want 1 filtered row each", r1, r2)
	}
	q1.Stop()
	in.Push(data.NewTuple(sched.Now().Add(2e9), data.Int(3)))
	if r2, _ = q2.Snapshot(); len(r2) != 2 {
		t.Fatalf("survivor rows = %v, want 2", r2)
	}
	if r1, _ = q1.Snapshot(); len(r1) != 1 {
		t.Fatalf("stopped query updated after Stop: %v", r1)
	}
	q2.Stop()
	if got := rt.Sharing().Chains(); got != 0 {
		t.Fatalf("chains = %d after last stop, want 0", got)
	}
	if got := in.Subscribers(); got != 0 {
		t.Fatalf("subscribers = %d after last stop, want 0", got)
	}
}

// TestQueryChurnRuntime loops deploy/stop at the runtime layer (the path
// the paper's ad-hoc visitor queries exercise): registries must return to
// baseline every iteration, with sharing on and off.
func TestQueryChurnRuntime(t *testing.T) {
	for _, shared := range []bool{false, true} {
		sched := vtime.NewScheduler()
		rt := New(Config{Scheduler: sched, SharedPrefixes: shared})
		in, err := rt.RegisterStream("Pulse", pulseSchema(), 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			qa := rt.MustRun(`SELECT p.v FROM Pulse p [RANGE 2 SECONDS]`)
			qb := rt.MustRun(`SELECT p.v FROM Pulse p [RANGE 2 SECONDS] WHERE p.v >= 1`)
			in.Push(data.NewTuple(sched.Now().Add(1e9), data.Int(int64(i))))
			qa.Stop()
			qa.Stop() // idempotent
			qb.Stop()
			if n := in.Subscribers(); n != 0 {
				t.Fatalf("shared=%v iter %d: %d subscribers after Stop", shared, i, n)
			}
			if n := rt.Stream.Advancers(); n != 0 {
				t.Fatalf("shared=%v iter %d: %d advancers after Stop", shared, i, n)
			}
			if shared {
				if n := rt.Sharing().Chains(); n != 0 {
					t.Fatalf("shared=%v iter %d: %d chains after Stop", shared, i, n)
				}
			}
		}
		rt.Close()
	}
}
