package sensornet

import "testing"

func beaconTestNet() (*Network, *BeaconField) {
	nw := New(DefaultConfig())
	// Three RFID readers along a hallway, one desk mote without RFID.
	nw.MustAddNode(Node{ID: 0, X: 0, Y: 0, Sensors: []SensorKind{SensorRFID}})
	nw.MustAddNode(Node{ID: 1, X: 100, Y: 0, Sensors: []SensorKind{SensorRFID}})
	nw.MustAddNode(Node{ID: 2, X: 200, Y: 0, Sensors: []SensorKind{SensorRFID}})
	nw.MustAddNode(Node{ID: 3, X: 100, Y: 50, Sensors: []SensorKind{SensorLight}})
	_ = nw.SetBase(0)
	nw.BuildTree()
	return nw, NewBeaconField(nw, 60)
}

func TestBeaconHearAndLocate(t *testing.T) {
	_, bf := beaconTestNet()
	bf.Place(Beacon{ID: 7, Owner: "visitor", X: 90, Y: 0})

	// Only reader 1 is within 60 units.
	if dets := bf.Hear(0); len(dets) != 0 {
		t.Fatalf("reader 0 hears %v", dets)
	}
	dets := bf.Hear(1)
	if len(dets) != 1 || dets[0].BeaconID != 7 || dets[0].Owner != "visitor" {
		t.Fatalf("reader 1 hears %v", dets)
	}
	// Non-RFID mote hears nothing even in range.
	if dets := bf.Hear(3); dets != nil {
		t.Fatalf("light mote hears %v", dets)
	}

	loc := bf.Locate()
	if det, ok := loc[7]; !ok || det.NodeID != 1 {
		t.Fatalf("Locate = %+v", loc)
	}
}

func TestBeaconMovement(t *testing.T) {
	_, bf := beaconTestNet()
	bf.Place(Beacon{ID: 7, Owner: "visitor", X: 10, Y: 0})
	if det := bf.Locate()[7]; det.NodeID != 0 {
		t.Fatalf("start position reader = %d", det.NodeID)
	}
	bf.Move(7, 195, 0)
	if det := bf.Locate()[7]; det.NodeID != 2 {
		t.Fatalf("after move reader = %d", det.NodeID)
	}
	// moving a missing beacon is a no-op
	bf.Move(99, 0, 0)
	bf.Remove(7)
	if len(bf.Locate()) != 0 {
		t.Fatal("removed beacon still located")
	}
	if len(bf.Beacons()) != 0 {
		t.Fatal("Beacons after remove")
	}
}

func TestBeaconStrongestReaderWins(t *testing.T) {
	_, bf := beaconTestNet()
	// Equidistant between readers 0 and 1: tie broken by lower node ID.
	bf.Place(Beacon{ID: 7, X: 50, Y: 0})
	if det := bf.Locate()[7]; det.NodeID != 0 {
		t.Fatalf("tie-break reader = %d, want 0", det.NodeID)
	}
	// Slightly closer to reader 1 flips the estimate.
	bf.Move(7, 51, 0)
	if det := bf.Locate()[7]; det.NodeID != 1 {
		t.Fatalf("closest reader = %d, want 1", det.NodeID)
	}
}

func TestBeaconMultipleSorted(t *testing.T) {
	_, bf := beaconTestNet()
	bf.Place(Beacon{ID: 2, X: 100, Y: 10})
	bf.Place(Beacon{ID: 1, X: 100, Y: 30})
	dets := bf.Hear(1)
	if len(dets) != 2 {
		t.Fatalf("hear = %v", dets)
	}
	if dets[0].BeaconID != 2 {
		t.Fatalf("closest beacon should sort first: %v", dets)
	}
	bs := bf.Beacons()
	if len(bs) != 2 || bs[0].ID != 1 || bs[1].ID != 2 {
		t.Fatalf("Beacons = %v", bs)
	}
}

func TestBeaconDeadReader(t *testing.T) {
	nw, bf := beaconTestNet()
	bf.Place(Beacon{ID: 7, X: 10, Y: 0})
	nw.Kill(0)
	loc := bf.Locate()
	if _, ok := loc[7]; ok {
		t.Fatalf("dead reader still detects: %+v", loc)
	}
	if dets := bf.Hear(0); dets != nil {
		t.Fatal("dead reader hears")
	}
}

func TestNearestReader(t *testing.T) {
	nw, bf := beaconTestNet()
	if id := bf.NearestReader(180, 5); id != 2 {
		t.Fatalf("nearest = %d", id)
	}
	nw.Kill(2)
	if id := bf.NearestReader(180, 5); id != 1 {
		t.Fatalf("nearest after kill = %d", id)
	}
	empty := NewBeaconField(New(DefaultConfig()), 0)
	if empty.NearestReader(0, 0) != -1 {
		t.Fatal("empty field nearest should be -1")
	}
}

func TestBeaconDefaultRange(t *testing.T) {
	nw := New(DefaultConfig())
	bf := NewBeaconField(nw, 0)
	if bf.BeaconRange != DefaultConfig().RadioRange/2 {
		t.Fatalf("default beacon range = %v", bf.BeaconRange)
	}
}
