package sensornet

import (
	"testing"
)

func lineNet(t *testing.T, n int) *Network {
	t.Helper()
	nw := Line(DefaultConfig(), n, 100, SensorTemperature)
	return nw
}

func TestTreeConstruction(t *testing.T) {
	nw := lineNet(t, 5)
	for i := 0; i < 5; i++ {
		n, ok := nw.Node(i)
		if !ok {
			t.Fatalf("node %d missing", i)
		}
		if n.Hops != i {
			t.Fatalf("node %d hops = %d, want %d", i, n.Hops, i)
		}
		wantParent := i - 1
		if n.Parent != wantParent {
			t.Fatalf("node %d parent = %d, want %d", i, n.Parent, wantParent)
		}
	}
	if nw.Diameter() != 4 {
		t.Fatalf("diameter = %d, want 4", nw.Diameter())
	}
}

func TestGridTopology(t *testing.T) {
	nw := Grid(DefaultConfig(), 3, 4, 100, 4, SensorLight, SensorTemperature)
	if len(nw.Nodes()) != 12 {
		t.Fatalf("nodes = %d", len(nw.Nodes()))
	}
	n, _ := nw.Node(5)
	if n.Room != "L2" || n.Desk != 2 {
		t.Fatalf("node 5 room/desk = %s/%d", n.Room, n.Desk)
	}
	if !n.HasSensor(SensorLight) || !n.HasSensor(SensorTemperature) || n.HasSensor(SensorRFID) {
		t.Fatal("sensors wrong")
	}
	// corner-to-corner hop distance on a 3x4 grid with orthogonal links
	if d := nw.HopDist(0, 11); d != 5 {
		t.Fatalf("hop dist corner-corner = %d, want 5", d)
	}
}

func TestDuplicateAndMissingNodes(t *testing.T) {
	nw := New(DefaultConfig())
	nw.MustAddNode(Node{ID: 1})
	if err := nw.AddNode(Node{ID: 1}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := nw.SetBase(99); err == nil {
		t.Fatal("missing base accepted")
	}
	if _, ok := nw.Node(99); ok {
		t.Fatal("phantom node")
	}
	if nw.Base() != -1 {
		t.Fatal("base should be unset")
	}
}

func TestPathAndHopDist(t *testing.T) {
	nw := lineNet(t, 6)
	p := nw.Path(1, 4)
	want := []int{1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if d := nw.HopDist(0, 5); d != 5 {
		t.Fatalf("hop dist = %d", d)
	}
	if d := nw.HopDist(3, 3); d != 0 {
		t.Fatalf("self dist = %d", d)
	}
	if nw.Path(0, 99) != nil {
		t.Fatal("path to missing node")
	}
}

func TestSendCountsAndEnergy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TxCost, cfg.RxCost = 1, 0.5
	nw := Line(cfg, 4, 100, SensorTemperature)
	if !nw.Send(3, 0, 1) {
		t.Fatal("send failed")
	}
	m := nw.Metrics()
	if m.Sent != 3 || m.Received != 3 || m.Dropped != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	// node 3,2,1 each tx once (1 mJ); node 2,1 rx once (0.5); base rx free.
	n3, _ := nw.Node(3)
	if n3.Battery != cfg.InitialBattery-1 {
		t.Fatalf("n3 battery = %v", n3.Battery)
	}
	n2, _ := nw.Node(2)
	if n2.Battery != cfg.InitialBattery-1.5 {
		t.Fatalf("n2 battery = %v", n2.Battery)
	}
	n0, _ := nw.Node(0)
	if n0.Battery != cfg.InitialBattery {
		t.Fatalf("base battery = %v (must be mains powered)", n0.Battery)
	}
	if m.EnergyMJ != 3*1+2*0.5 {
		t.Fatalf("energy = %v", m.EnergyMJ)
	}
}

func TestSendMultiFrame(t *testing.T) {
	nw := lineNet(t, 3)
	nw.Send(2, 0, 3)
	if m := nw.Metrics(); m.Sent != 6 {
		t.Fatalf("sent = %d, want 6 (3 frames × 2 hops)", m.Sent)
	}
	nw.ResetMetrics()
	nw.Send(1, 0, 0) // zero frames clamps to 1
	if m := nw.Metrics(); m.Sent != 1 {
		t.Fatalf("sent = %d", m.Sent)
	}
}

func TestLossyLinks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.5
	cfg.Seed = 42
	nw := Line(cfg, 2, 50, SensorTemperature)
	delivered, droppedSeen := 0, false
	for i := 0; i < 200; i++ {
		if nw.Send(1, 0, 1) {
			delivered++
		} else {
			droppedSeen = true
		}
	}
	if !droppedSeen {
		t.Fatal("no drops at 50% loss")
	}
	if delivered < 50 || delivered > 150 {
		t.Fatalf("delivered = %d of 200 at 50%% loss", delivered)
	}
	m := nw.Metrics()
	if m.Dropped == 0 || m.Dropped+m.Received != m.Sent {
		t.Fatalf("loss accounting: %+v", m)
	}
}

func TestBatteryDeathRebuildsTree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialBattery = 0.1
	cfg.TxCost = 1
	// Triangle-ish line where node 1 relays for node 2.
	nw := Line(cfg, 3, 100, SensorTemperature)
	nw.Send(2, 0, 1) // drains node 2 and node 1 below zero
	n2, _ := nw.Node(2)
	if !n2.Dead {
		t.Fatal("node 2 should be dead after tx")
	}
	if nw.Metrics().DeadNodes == 0 {
		t.Fatal("dead nodes not counted")
	}
	// After death the tree is rebuilt; dead nodes are unreachable.
	if nw.Send(2, 0, 1) {
		t.Fatal("dead node can still send")
	}
}

func TestKillReviveAndReroute(t *testing.T) {
	// 2x3 grid: killing a middle node must reroute, not disconnect.
	nw := Grid(DefaultConfig(), 2, 3, 100, 3, SensorTemperature)
	before := nw.HopDist(0, 5)
	if before != 3 {
		t.Fatalf("before = %d", before)
	}
	nw.Kill(4)
	after := nw.HopDist(0, 5)
	if after != 3 { // alternate path 0-1-2-5
		t.Fatalf("after kill = %d, want 3 via top row", after)
	}
	nw.Kill(2)
	if nw.HopDist(0, 5) != -1 && nw.HopDist(0, 5) < 3 {
		t.Fatalf("unexpected shortcut after double kill")
	}
	nw.Revive(4)
	if nw.HopDist(0, 5) != 3 {
		t.Fatalf("after revive = %d", nw.HopDist(0, 5))
	}
	n4, _ := nw.Node(4)
	if n4.Battery != DefaultConfig().InitialBattery {
		t.Fatal("revive did not recharge")
	}
	// idempotent revive of a live node
	nw.Revive(4)
	if nw.Metrics().DeadNodes != 1 {
		t.Fatalf("dead count = %d, want 1 (node 2)", nw.Metrics().DeadNodes)
	}
}

func TestSendToParent(t *testing.T) {
	nw := lineNet(t, 3)
	parent, ok := nw.SendToParent(2, 1)
	if !ok || parent != 1 {
		t.Fatalf("SendToParent = %d %t", parent, ok)
	}
	if _, ok := nw.SendToParent(0, 1); ok {
		t.Fatal("base has no parent")
	}
	if _, ok := nw.SendToParent(99, 1); ok {
		t.Fatal("missing node has no parent")
	}
}

func TestMinBattery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TxCost = 1
	nw := Line(cfg, 3, 100, SensorTemperature)
	nw.Send(2, 0, 1)
	min := nw.MinBattery()
	want := cfg.InitialBattery - 1 - cfg.RxCost // node 1: one tx + one rx
	if min != want {
		t.Fatalf("min battery = %v, want %v", min, want)
	}
	empty := New(DefaultConfig())
	if empty.MinBattery() != 0 {
		t.Fatal("empty network min battery should be 0")
	}
}

func TestNeighbors(t *testing.T) {
	nw := lineNet(t, 4)
	nbs := nw.Neighbors(1)
	if len(nbs) != 2 || nbs[0] != 0 || nbs[1] != 2 {
		t.Fatalf("neighbors(1) = %v", nbs)
	}
	nw.Kill(0)
	nbs = nw.Neighbors(1)
	if len(nbs) != 1 || nbs[0] != 2 {
		t.Fatalf("neighbors after kill = %v", nbs)
	}
}

func TestSensorKindString(t *testing.T) {
	if SensorLight.String() != "light" || SensorTemperature.String() != "temperature" || SensorRFID.String() != "rfid" {
		t.Fatal("kind names")
	}
	if SensorKind(9).String() == "" {
		t.Fatal("unknown kind should format")
	}
}
