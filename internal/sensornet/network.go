// Package sensornet simulates the mote deployment that SmartCIS instruments
// the Moore building with: IRIS/iMote2-class devices with light and
// temperature sensors on desks and RFID-listening motes in hallways.
//
// The simulator models what the paper's sensor-engine claims depend on —
// topology, hop-by-hop message forwarding, per-message transmit/receive
// energy, lossy links, and a base-station collection tree — while staying
// deterministic (seeded RNG, virtual time) so experiments are reproducible.
package sensornet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// SensorKind enumerates the physical sensors a mote may carry.
type SensorKind uint8

// Sensor kinds deployed in SmartCIS (§2).
const (
	SensorLight SensorKind = iota
	SensorTemperature
	SensorRFID // listens for active RFID beacon transmissions
)

// String names the sensor kind.
func (k SensorKind) String() string {
	switch k {
	case SensorLight:
		return "light"
	case SensorTemperature:
		return "temperature"
	case SensorRFID:
		return "rfid"
	}
	return fmt.Sprintf("sensor(%d)", uint8(k))
}

// Config holds the radio and energy model parameters.
type Config struct {
	// Seed makes message loss reproducible.
	Seed int64
	// RadioRange is the maximum link distance in building-model units
	// (feet); the paper places hallway motes "every 100 feet".
	RadioRange float64
	// LossRate is the per-hop probability a message is dropped.
	LossRate float64
	// TxCost and RxCost are millijoules charged per message hop.
	TxCost, RxCost float64
	// InitialBattery is each mote's starting energy in millijoules.
	InitialBattery float64
}

// DefaultConfig returns the parameters used by the SmartCIS deployment.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		RadioRange:     110,
		LossRate:       0.0,
		TxCost:         0.06, // ~two AA motes sending 36-byte frames
		RxCost:         0.03,
		InitialBattery: 20_000,
	}
}

// Node is one mote.
type Node struct {
	ID      int
	X, Y    float64
	Room    string
	Desk    int // 0 if not desk-mounted
	Sensors []SensorKind

	Battery float64
	Dead    bool

	// Collection tree state (set by BuildTree).
	Parent int // -1 for the base station or unreachable nodes
	Hops   int // tree depth; 0 at the base, -1 if unreachable
}

// HasSensor reports whether the node carries the given sensor.
func (n *Node) HasSensor(k SensorKind) bool {
	for _, s := range n.Sensors {
		if s == k {
			return true
		}
	}
	return false
}

// Metrics is a snapshot of network-wide accounting.
type Metrics struct {
	Sent      int64 // message transmissions (per hop)
	Received  int64
	Dropped   int64 // lost to the radio
	EnergyMJ  float64
	DeadNodes int
}

// Network is the simulated sensor field. All methods are safe for
// concurrent use.
type Network struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	nodes map[int]*Node
	base  int
	// adjacency derived from positions & radio range
	adj map[int][]int
	// metrics
	m Metrics
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Network {
	if cfg.RadioRange <= 0 {
		cfg.RadioRange = DefaultConfig().RadioRange
	}
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: map[int]*Node{},
		base:  -1,
		adj:   map[int][]int{},
	}
}

// Config returns the network configuration.
func (nw *Network) Config() Config { return nw.cfg }

// AddNode places a mote. IDs must be unique.
func (nw *Network) AddNode(n Node) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, dup := nw.nodes[n.ID]; dup {
		return fmt.Errorf("sensornet: duplicate node id %d", n.ID)
	}
	n.Battery = nw.cfg.InitialBattery
	n.Parent, n.Hops = -1, -1
	node := n
	nw.nodes[n.ID] = &node
	nw.linkLocked(n.ID)
	return nil
}

// MustAddNode adds a node, panicking on error; for deployment builders.
func (nw *Network) MustAddNode(n Node) {
	if err := nw.AddNode(n); err != nil {
		panic(err)
	}
}

// linkLocked recomputes adjacency for a newly added node.
func (nw *Network) linkLocked(id int) {
	a := nw.nodes[id]
	for oid, o := range nw.nodes {
		if oid == id {
			continue
		}
		if dist(a.X, a.Y, o.X, o.Y) <= nw.cfg.RadioRange {
			nw.adj[id] = append(nw.adj[id], oid)
			nw.adj[oid] = append(nw.adj[oid], id)
		}
	}
	sort.Ints(nw.adj[id])
}

// SetBase designates the base station (gateway to the stream engine).
func (nw *Network) SetBase(id int) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, ok := nw.nodes[id]; !ok {
		return fmt.Errorf("sensornet: no node %d for base", id)
	}
	nw.base = id
	return nil
}

// Base returns the base station ID (-1 if unset).
func (nw *Network) Base() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.base
}

// Node returns a copy of the node's current state.
func (nw *Network) Node(id int) (Node, bool) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	n, ok := nw.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Nodes returns copies of all nodes sorted by ID.
func (nw *Network) Nodes() []Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make([]Node, 0, len(nw.nodes))
	for _, n := range nw.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Neighbors returns the IDs of alive nodes in radio range of id.
func (nw *Network) Neighbors(id int) []int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var out []int
	for _, o := range nw.adj[id] {
		if n := nw.nodes[o]; n != nil && !n.Dead {
			out = append(out, o)
		}
	}
	return out
}

// BuildTree (re)computes the collection tree: a BFS spanning tree rooted at
// the base over alive nodes. Unreachable nodes get Hops == -1.
func (nw *Network) BuildTree() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.buildTreeLocked()
}

func (nw *Network) buildTreeLocked() {
	for _, n := range nw.nodes {
		n.Parent, n.Hops = -1, -1
	}
	if nw.base < 0 {
		return
	}
	root := nw.nodes[nw.base]
	if root == nil || root.Dead {
		return
	}
	root.Hops = 0
	queue := []int{nw.base}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range nw.adj[cur] {
			n := nw.nodes[nb]
			if n.Dead || n.Hops >= 0 {
				continue
			}
			n.Parent = cur
			n.Hops = nw.nodes[cur].Hops + 1
			queue = append(queue, nb)
		}
	}
}

// Diameter returns the maximum tree depth among reachable nodes; the catalog
// feeds this to the federated optimizer.
func (nw *Network) Diameter() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	max := 0
	for _, n := range nw.nodes {
		if n.Hops > max {
			max = n.Hops
		}
	}
	return max
}

// HopDist returns the length of the shortest radio path between two alive
// nodes, or -1 if disconnected. Used by the in-network join placement
// optimizer.
func (nw *Network) HopDist(a, b int) int {
	path := nw.Path(a, b)
	if path == nil {
		return -1
	}
	return len(path) - 1
}

// Path returns the node sequence of a shortest radio path from a to b
// (inclusive), or nil if disconnected or either endpoint is dead.
func (nw *Network) Path(a, b int) []int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	na, nb := nw.nodes[a], nw.nodes[b]
	if na == nil || nb == nil || na.Dead || nb.Dead {
		return nil
	}
	if a == b {
		return []int{a}
	}
	prev := map[int]int{a: a}
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nbr := range nw.adj[cur] {
			n := nw.nodes[nbr]
			if n.Dead {
				continue
			}
			if _, seen := prev[nbr]; seen {
				continue
			}
			prev[nbr] = cur
			if nbr == b {
				return reconstruct(prev, a, b)
			}
			queue = append(queue, nbr)
		}
	}
	return nil
}

func reconstruct(prev map[int]int, a, b int) []int {
	var rev []int
	for cur := b; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Send transmits a message from a to b along a shortest radio path,
// charging energy and counting one transmission per hop. It reports whether
// the message arrived (false on loss, disconnection or death). Size is in
// abstract message units; a unit is one radio frame.
func (nw *Network) Send(a, b int, frames int) bool {
	if frames <= 0 {
		frames = 1
	}
	path := nw.Path(a, b)
	if path == nil {
		return false
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for i := 0; i+1 < len(path); i++ {
		if !nw.hopLocked(path[i], path[i+1], frames) {
			return false
		}
	}
	return true
}

// SendToParent transmits one tree hop upward, the TAG aggregation primitive.
// Returns the parent ID and delivery status; parent == -1 at the base.
func (nw *Network) SendToParent(id int, frames int) (parent int, ok bool) {
	if frames <= 0 {
		frames = 1
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	n := nw.nodes[id]
	if n == nil || n.Dead || n.Parent < 0 {
		return -1, false
	}
	p := nw.nodes[n.Parent]
	if p == nil || p.Dead {
		return -1, false
	}
	return n.Parent, nw.hopLocked(id, n.Parent, frames)
}

// hopLocked performs one radio hop: charge tx on sender, roll loss, charge
// rx on receiver.
func (nw *Network) hopLocked(from, to int, frames int) bool {
	f, t := nw.nodes[from], nw.nodes[to]
	if f == nil || t == nil || f.Dead || t.Dead {
		return false
	}
	for i := 0; i < frames; i++ {
		nw.m.Sent++
		nw.chargeLocked(f, nw.cfg.TxCost)
		if nw.cfg.LossRate > 0 && nw.rng.Float64() < nw.cfg.LossRate {
			nw.m.Dropped++
			return false
		}
		nw.chargeLocked(t, nw.cfg.RxCost)
		nw.m.Received++
	}
	return true
}

func (nw *Network) chargeLocked(n *Node, mj float64) {
	if n.ID == nw.base {
		return // base stations are mains-powered
	}
	n.Battery -= mj
	nw.m.EnergyMJ += mj
	if n.Battery <= 0 && !n.Dead {
		n.Dead = true
		nw.m.DeadNodes++
		nw.buildTreeLocked()
	}
}

// Kill marks a node dead (failure injection) and rebuilds the tree.
func (nw *Network) Kill(id int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if n := nw.nodes[id]; n != nil && !n.Dead {
		n.Dead = true
		nw.m.DeadNodes++
		nw.buildTreeLocked()
	}
}

// Revive restores a dead node with a fresh battery and rebuilds the tree.
func (nw *Network) Revive(id int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if n := nw.nodes[id]; n != nil && n.Dead {
		n.Dead = false
		n.Battery = nw.cfg.InitialBattery
		nw.m.DeadNodes--
		nw.buildTreeLocked()
	}
}

// Metrics returns a snapshot of the accounting counters.
func (nw *Network) Metrics() Metrics {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.m
}

// ResetMetrics zeroes the counters (battery state is preserved).
func (nw *Network) ResetMetrics() {
	nw.mu.Lock()
	nw.m = Metrics{DeadNodes: nw.m.DeadNodes}
	nw.mu.Unlock()
}

// MinBattery returns the lowest battery among alive non-base motes; the
// network "lifetime" metric of experiment E3.
func (nw *Network) MinBattery() float64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	min := math.Inf(1)
	for _, n := range nw.nodes {
		if n.Dead || n.ID == nw.base {
			continue
		}
		if n.Battery < min {
			min = n.Battery
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

func dist(x1, y1, x2, y2 float64) float64 {
	dx, dy := x1-x2, y1-y2
	return math.Sqrt(dx*dx + dy*dy)
}
