package sensornet

import "fmt"

// The topology builders below construct the synthetic deployments used by
// the experiment harness: a hallway line (like the paper's "every 100 feet"
// corridor placement) and a lab grid of desk motes.

// Line builds a hallway of n motes spaced apart along the x axis, base
// station at node 0, with the given sensors on every mote. The collection
// tree is built before returning.
func Line(cfg Config, n int, spacing float64, sensors ...SensorKind) *Network {
	nw := New(cfg)
	for i := 0; i < n; i++ {
		nw.MustAddNode(Node{
			ID: i, X: float64(i) * spacing, Y: 0,
			Room:    fmt.Sprintf("H%d", i/4+1),
			Sensors: sensors,
		})
	}
	if err := nw.SetBase(0); err != nil {
		panic(err)
	}
	nw.BuildTree()
	return nw
}

// Grid builds a rows×cols lab grid of desk motes spaced apart, base station
// at the (0,0) corner. Each mote is assigned a room of `perRoom` desks in
// row-major order and a desk number within the room. Every mote carries the
// given sensors. The collection tree is built before returning.
func Grid(cfg Config, rows, cols int, spacing float64, perRoom int, sensors ...SensorKind) *Network {
	if perRoom <= 0 {
		perRoom = cols
	}
	nw := New(cfg)
	id := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			nw.MustAddNode(Node{
				ID: id, X: float64(c) * spacing, Y: float64(r) * spacing,
				Room:    fmt.Sprintf("L%d", id/perRoom+1),
				Desk:    id%perRoom + 1,
				Sensors: sensors,
			})
			id++
		}
	}
	if err := nw.SetBase(0); err != nil {
		panic(err)
	}
	nw.BuildTree()
	return nw
}
