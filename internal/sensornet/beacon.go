package sensornet

import (
	"math"
	"sort"
	"sync"
)

// Beacon is an active RFID device carried by a building occupant. Hallway
// motes with SensorRFID hear its periodic low-power transmission when in
// range; the strongest reader wins, which is how SmartCIS localizes
// visitors (§2 "Detection of occupants").
type Beacon struct {
	ID    int
	Owner string // person carrying the badge
	X, Y  float64
}

// BeaconField tracks the moving beacons over a network.
type BeaconField struct {
	mu      sync.Mutex
	net     *Network
	beacons map[int]*Beacon
	// BeaconRange is the low-power transmit radius, deliberately shorter
	// than the inter-mote radio range.
	BeaconRange float64
}

// NewBeaconField creates a beacon field over the network.
func NewBeaconField(net *Network, beaconRange float64) *BeaconField {
	if beaconRange <= 0 {
		beaconRange = net.Config().RadioRange / 2
	}
	return &BeaconField{net: net, beacons: map[int]*Beacon{}, BeaconRange: beaconRange}
}

// Place adds or moves a beacon.
func (bf *BeaconField) Place(b Beacon) {
	bf.mu.Lock()
	cp := b
	bf.beacons[b.ID] = &cp
	bf.mu.Unlock()
}

// Move repositions an existing beacon; unknown IDs are ignored.
func (bf *BeaconField) Move(id int, x, y float64) {
	bf.mu.Lock()
	if b := bf.beacons[id]; b != nil {
		b.X, b.Y = x, y
	}
	bf.mu.Unlock()
}

// Remove deletes a beacon (occupant left the building).
func (bf *BeaconField) Remove(id int) {
	bf.mu.Lock()
	delete(bf.beacons, id)
	bf.mu.Unlock()
}

// Beacons returns a snapshot of all beacons sorted by ID.
func (bf *BeaconField) Beacons() []Beacon {
	bf.mu.Lock()
	defer bf.mu.Unlock()
	out := make([]Beacon, 0, len(bf.beacons))
	for _, b := range bf.beacons {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Detection is one beacon sighting by a reader mote.
type Detection struct {
	BeaconID int
	Owner    string
	NodeID   int
	RSSI     float64 // 1/(1+d); larger is closer
}

// Hear returns the beacons audible at the given RFID mote this instant,
// strongest first.
func (bf *BeaconField) Hear(nodeID int) []Detection {
	n, ok := bf.net.Node(nodeID)
	if !ok || n.Dead || !n.HasSensor(SensorRFID) {
		return nil
	}
	bf.mu.Lock()
	defer bf.mu.Unlock()
	var out []Detection
	for _, b := range bf.beacons {
		d := dist(n.X, n.Y, b.X, b.Y)
		if d <= bf.BeaconRange {
			out = append(out, Detection{
				BeaconID: b.ID, Owner: b.Owner, NodeID: nodeID,
				RSSI: 1 / (1 + d),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RSSI != out[j].RSSI {
			return out[i].RSSI > out[j].RSSI
		}
		return out[i].BeaconID < out[j].BeaconID
	})
	return out
}

// Locate returns, for each beacon, the reader that hears it loudest; the
// building-side position estimate. Beacons out of range of every reader are
// absent from the result.
func (bf *BeaconField) Locate() map[int]Detection {
	best := map[int]Detection{}
	for _, n := range bf.net.Nodes() {
		if n.Dead || !n.HasSensor(SensorRFID) {
			continue
		}
		for _, det := range bf.Hear(n.ID) {
			cur, ok := best[det.BeaconID]
			if !ok || det.RSSI > cur.RSSI ||
				(det.RSSI == cur.RSSI && det.NodeID < cur.NodeID) {
				best[det.BeaconID] = det
			}
		}
	}
	return best
}

// NearestReader returns the RFID mote closest to (x, y) regardless of
// range; handy for tests and GUI hit-testing. Returns -1 when no readers.
func (bf *BeaconField) NearestReader(x, y float64) int {
	bestID, bestD := -1, math.Inf(1)
	for _, n := range bf.net.Nodes() {
		if n.Dead || !n.HasSensor(SensorRFID) {
			continue
		}
		if d := dist(n.X, n.Y, x, y); d < bestD {
			bestID, bestD = n.ID, d
		}
	}
	return bestID
}
