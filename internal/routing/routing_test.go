package routing

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddBoth("lobby", "h1", 40))
	must(g.AddBoth("h1", "lab101", 25))
	must(g.AddBoth("lobby", "h2", 30))
	must(g.AddBoth("h2", "lab101", 50))
	must(g.AddBoth("h1", "h2", 10))
	return g
}

func TestShortestPath(t *testing.T) {
	g := buildDiamond(t)
	r, ok := g.Shortest("lobby", "lab101")
	if !ok {
		t.Fatal("unreachable")
	}
	if r.Dist != 65 {
		t.Fatalf("dist = %v, want 65", r.Dist)
	}
	want := []string{"lobby", "h1", "lab101"}
	if len(r.Points) != 3 {
		t.Fatalf("points = %v", r.Points)
	}
	for i := range want {
		if r.Points[i] != want[i] {
			t.Fatalf("path = %v, want %v", r.Points, want)
		}
	}
	if !strings.Contains(r.String(), "lobby -> h1 -> lab101") {
		t.Fatalf("String = %q", r.String())
	}
}

func TestShortestSelfAndUnreachable(t *testing.T) {
	g := buildDiamond(t)
	r, ok := g.Shortest("lobby", "lobby")
	if !ok || r.Dist != 0 || len(r.Points) != 1 {
		t.Fatalf("self route = %v %t", r, ok)
	}
	if _, ok := g.Shortest("lobby", "nowhere"); ok {
		t.Fatal("phantom destination reachable")
	}
	if _, ok := g.Shortest("nowhere", "lobby"); ok {
		t.Fatal("phantom source reachable")
	}
	if (Route{}).String() != "(unreachable)" {
		t.Fatal("empty route rendering")
	}
}

func TestEdgeRemovalReroutes(t *testing.T) {
	g := buildDiamond(t)
	v0 := g.Version()
	g.RemoveBoth("h1", "lab101")
	if g.Version() == v0 {
		t.Fatal("version not bumped")
	}
	r, ok := g.Shortest("lobby", "lab101")
	if !ok || r.Dist != 80 {
		t.Fatalf("reroute = %v %t, want dist 80 via h2", r, ok)
	}
	// removing an unknown edge is a no-op and does not bump the version
	v1 := g.Version()
	g.RemoveEdge("x", "y")
	if g.Version() != v1 {
		t.Fatal("no-op removal bumped version")
	}
}

func TestNegativeWeightRejected(t *testing.T) {
	g := NewGraph()
	if err := g.AddEdge("a", "b", -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := g.AddBoth("a", "b", -1); err == nil {
		t.Fatal("negative weight accepted via AddBoth")
	}
}

func TestNearest(t *testing.T) {
	g := buildDiamond(t)
	dest, r, ok := g.Nearest("lobby", []string{"lab101", "h2"})
	if !ok || dest != "h2" || r.Dist != 30 {
		t.Fatalf("nearest = %s %v %t", dest, r, ok)
	}
	if _, _, ok := g.Nearest("lobby", []string{"mars"}); ok {
		t.Fatal("unreachable candidate chosen")
	}
	if _, _, ok := g.Nearest("lobby", nil); ok {
		t.Fatal("empty candidate set chosen")
	}
}

func TestNodesAndEdges(t *testing.T) {
	g := buildDiamond(t)
	ns := g.Nodes()
	if len(ns) != 4 || ns[0] != "h1" {
		t.Fatalf("nodes = %v", ns)
	}
	if g.Edges() != 10 {
		t.Fatalf("edges = %d", g.Edges())
	}
}

func TestDistances(t *testing.T) {
	g := buildDiamond(t)
	d := g.Distances("lobby")
	if d["lab101"] != 65 || d["h2"] != 30 || d["lobby"] != 0 {
		t.Fatalf("distances = %v", d)
	}
}

func TestDirectedEdgesAreOneWay(t *testing.T) {
	g := NewGraph()
	if err := g.AddEdge("a", "b", 5); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Shortest("a", "b"); !ok {
		t.Fatal("forward direction broken")
	}
	if _, ok := g.Shortest("b", "a"); ok {
		t.Fatal("reverse direction should be unreachable")
	}
}

// Property: Dijkstra agrees with Floyd-Warshall on random graphs.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		g := NewGraph()
		n := 8 + r.Intn(6)
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%d", i)
		}
		edges := n * 2
		for i := 0; i < edges; i++ {
			a, b := nodes[r.Intn(n)], nodes[r.Intn(n)]
			if a == b {
				continue
			}
			if err := g.AddEdge(a, b, float64(1+r.Intn(20))); err != nil {
				t.Fatal(err)
			}
		}
		fw := g.FloydWarshall()
		for _, src := range nodes {
			if _, known := fw[src]; !known {
				continue
			}
			dij := g.Distances(src)
			for _, dst := range nodes {
				fwD, fwOK := fw[src][dst]
				dijD, dijOK := dij[dst]
				if fwOK != dijOK {
					t.Fatalf("trial %d: reachability disagrees for %s->%s (fw=%t dij=%t)",
						trial, src, dst, fwOK, dijOK)
				}
				if fwOK && math.Abs(fwD-dijD) > 1e-9 {
					t.Fatalf("trial %d: %s->%s fw=%v dij=%v", trial, src, dst, fwD, dijD)
				}
			}
		}
	}
}

// Property: path distances are consistent — the reported distance equals
// the sum of edge weights along the reported path.
func TestRouteDistanceConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	g := NewGraph()
	var names []string
	for i := 0; i < 15; i++ {
		names = append(names, fmt.Sprintf("p%d", i))
	}
	for i := 0; i < 40; i++ {
		a, b := names[r.Intn(15)], names[r.Intn(15)]
		if a != b {
			_ = g.AddBoth(a, b, float64(1+r.Intn(9)))
		}
	}
	g.mu.RLock()
	adj := g.adj
	g.mu.RUnlock()
	for _, src := range names {
		for _, dst := range names {
			route, ok := g.Shortest(src, dst)
			if !ok {
				continue
			}
			sum := 0.0
			for i := 0; i+1 < len(route.Points); i++ {
				w, ok := adj[route.Points[i]][route.Points[i+1]]
				if !ok {
					t.Fatalf("path uses nonexistent edge %s->%s", route.Points[i], route.Points[i+1])
				}
				sum += w
			}
			if math.Abs(sum-route.Dist) > 1e-9 {
				t.Fatalf("%s->%s: path sums to %v, reported %v", src, dst, sum, route.Dist)
			}
		}
	}
}
