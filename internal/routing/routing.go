// Package routing computes suggested routes through the building: shortest
// paths over the "routing points" table (§2: "a table of 'routing points'
// describing possible path segments and distances in the building in order
// to suggest routes to resources").
//
// The stream engine's recursive views (internal/views) answer the same
// queries declaratively; this package is the imperative substrate the
// SmartCIS control logic uses for real-time guidance, plus the reference
// implementation the property tests compare against.
package routing

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Graph is a directed weighted graph over string-named routing points.
// All methods are safe for concurrent use.
type Graph struct {
	mu  sync.RWMutex
	adj map[string]map[string]float64
	rev uint64 // bumped on mutation; lets cached routes invalidate
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: map[string]map[string]float64{}}
}

// AddEdge inserts (or updates) a directed edge. Negative weights are
// rejected.
func (g *Graph) AddEdge(from, to string, w float64) error {
	if w < 0 {
		return fmt.Errorf("routing: negative edge weight %v", w)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.adj[from] == nil {
		g.adj[from] = map[string]float64{}
	}
	if _, ok := g.adj[to]; !ok {
		g.adj[to] = map[string]float64{}
	}
	g.adj[from][to] = w
	g.rev++
	return nil
}

// AddBoth inserts the edge in both directions (hallways are two-way).
func (g *Graph) AddBoth(a, b string, w float64) error {
	if err := g.AddEdge(a, b, w); err != nil {
		return err
	}
	return g.AddEdge(b, a, w)
}

// RemoveEdge deletes a directed edge; unknown edges are ignored.
func (g *Graph) RemoveEdge(from, to string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m := g.adj[from]; m != nil {
		if _, ok := m[to]; ok {
			delete(m, to)
			g.rev++
		}
	}
}

// RemoveBoth deletes the edge in both directions.
func (g *Graph) RemoveBoth(a, b string) {
	g.RemoveEdge(a, b)
	g.RemoveEdge(b, a)
}

// Nodes returns all known routing points, sorted.
func (g *Graph) Nodes() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.adj))
	for n := range g.adj {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns the edge count.
func (g *Graph) Edges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, m := range g.adj {
		n += len(m)
	}
	return n
}

// Version increments on every mutation.
func (g *Graph) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.rev
}

// Route is a computed path.
type Route struct {
	Points []string
	Dist   float64
}

// String renders "a -> b -> c (dist)".
func (r Route) String() string {
	if len(r.Points) == 0 {
		return "(unreachable)"
	}
	s := ""
	for i, p := range r.Points {
		if i > 0 {
			s += " -> "
		}
		s += p
	}
	return fmt.Sprintf("%s (%.0f)", s, r.Dist)
}

// pqItem is a priority queue entry for Dijkstra.
type pqItem struct {
	node string
	dist float64
	idx  int
}

type pq []*pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i]; p[i].idx, p[j].idx = i, j }
func (p *pq) Push(x any)        { it := x.(*pqItem); it.idx = len(*p); *p = append(*p, it) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// Shortest returns the minimum-distance route from src to dst, or ok=false
// when unreachable.
func (g *Graph) Shortest(src, dst string) (Route, bool) {
	dists, prev := g.dijkstra(src, dst)
	d, ok := dists[dst]
	if !ok {
		return Route{}, false
	}
	var points []string
	for cur := dst; ; cur = prev[cur] {
		points = append(points, cur)
		if cur == src {
			break
		}
	}
	for i, j := 0, len(points)-1; i < j; i, j = i+1, j-1 {
		points[i], points[j] = points[j], points[i]
	}
	return Route{Points: points, Dist: d}, true
}

// Distances returns shortest distances from src to every reachable node.
func (g *Graph) Distances(src string) map[string]float64 {
	dists, _ := g.dijkstra(src, "")
	return dists
}

// dijkstra runs from src; when target is non-empty it stops early on
// settling the target.
func (g *Graph) dijkstra(src, target string) (map[string]float64, map[string]string) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	dists := map[string]float64{}
	prev := map[string]string{}
	if _, ok := g.adj[src]; !ok {
		return dists, prev
	}
	settled := map[string]bool{}
	q := &pq{}
	heap.Push(q, &pqItem{node: src, dist: 0})
	dists[src] = 0
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		if settled[it.node] {
			continue
		}
		settled[it.node] = true
		if target != "" && it.node == target {
			return dists, prev
		}
		for nb, w := range g.adj[it.node] {
			nd := it.dist + w
			if cur, ok := dists[nb]; !ok || nd < cur {
				dists[nb] = nd
				prev[nb] = it.node
				heap.Push(q, &pqItem{node: nb, dist: nd})
			}
		}
	}
	return dists, prev
}

// Nearest returns the reachable destination among candidates with the
// smallest distance from src, with its route; ok=false when none reachable.
func (g *Graph) Nearest(src string, candidates []string) (string, Route, bool) {
	dists, prev := g.dijkstra(src, "")
	best, bestD := "", math.Inf(1)
	for _, c := range candidates {
		if d, ok := dists[c]; ok && d < bestD {
			best, bestD = c, d
		}
	}
	if best == "" {
		return "", Route{}, false
	}
	var points []string
	for cur := best; ; cur = prev[cur] {
		points = append(points, cur)
		if cur == src {
			break
		}
	}
	for i, j := 0, len(points)-1; i < j; i, j = i+1, j-1 {
		points[i], points[j] = points[j], points[i]
	}
	return best, Route{Points: points, Dist: bestD}, true
}

// FloydWarshall computes all-pairs shortest distances; the reference
// implementation used by property tests (O(n³), small graphs only).
func (g *Graph) FloydWarshall() map[string]map[string]float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	nodes := make([]string, 0, len(g.adj))
	for n := range g.adj {
		nodes = append(nodes, n)
	}
	d := map[string]map[string]float64{}
	for _, a := range nodes {
		d[a] = map[string]float64{a: 0}
		for b, w := range g.adj[a] {
			if cur, ok := d[a][b]; !ok || w < cur {
				d[a][b] = w
			}
		}
	}
	for _, k := range nodes {
		for _, i := range nodes {
			dik, ok := d[i][k]
			if !ok {
				continue
			}
			for _, j := range nodes {
				if dkj, ok := d[k][j]; ok {
					if cur, exists := d[i][j]; !exists || dik+dkj < cur {
						d[i][j] = dik + dkj
					}
				}
			}
		}
	}
	return d
}
