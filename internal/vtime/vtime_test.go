package vtime

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*Second, func() { got = append(got, 3) })
	s.At(10*Second, func() { got = append(got, 1) })
	s.At(20*Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Second {
		t.Fatalf("Now = %v, want 30s", s.Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 5 {
			s.After(time.Second, rec)
		}
	}
	s.After(time.Second, rec)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 5*Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.At(Second, func() { ran++ })
	s.At(3*Second, func() { ran++ })
	s.RunUntil(2 * Second)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Now() != 2*Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if ran != 2 || s.Now() != 3*Second {
		t.Fatalf("after Run: ran=%d now=%v", ran, s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	ran := false
	tm := s.At(Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEvery(t *testing.T) {
	s := NewScheduler()
	n := 0
	stop := s.Every(10*time.Second, func() {
		n++
		if n == 3 {
			// stop from inside the callback
		}
	})
	s.RunUntil(35 * Second)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	stop()
	s.RunUntil(100 * Second)
	if n != 3 {
		t.Fatalf("ticks after stop = %d, want 3", n)
	}
}

func TestEveryPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScheduler().Every(0, func() {})
}

func TestSchedulingInPastRunsNow(t *testing.T) {
	s := NewScheduler()
	s.At(10*Second, func() {
		s.At(Second, func() {}) // in the past: clamped to now
	})
	s.Run()
	if s.Now() != 10*Second {
		t.Fatalf("Now = %v, want 10s", s.Now())
	}
}

func TestWallClockMonotone(t *testing.T) {
	w := NewWallClock()
	a := w.Now()
	b := w.Now()
	if b < a {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(0).Add(1500 * time.Millisecond)
	if tt != 1500*Millisecond {
		t.Fatalf("Add = %v", tt)
	}
	if tt.Sub(Second) != 500*time.Millisecond {
		t.Fatalf("Sub = %v", tt.Sub(Second))
	}
	if !Time(1).After(Time(0)) || !Time(0).Before(Time(1)) {
		t.Fatal("Before/After broken")
	}
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
}
