// Package vtime provides the time substrate shared by every ASPEN component.
//
// All engines, wrappers and simulators take a Clock rather than calling
// time.Now directly. In production the Clock is the wall clock; in tests,
// benchmarks and the building simulation it is a deterministic discrete-event
// Scheduler, so a "ten second" PDU polling loop runs in microseconds and every
// run is reproducible.
package vtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Time is an instant on the simulation timeline, in nanoseconds since the
// simulation epoch. It deliberately mirrors time.Time's resolution so wall
// clock adapters are lossless.
type Time int64

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = Time(time.Nanosecond)
	Microsecond = Time(time.Microsecond)
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
	Minute      = Time(time.Minute)
	Hour        = Time(time.Hour)
)

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating point number of seconds since the
// epoch; convenient for reporting.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the instant as a duration offset from the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// A Clock tells the current time. Implementations must be safe for concurrent
// use.
type Clock interface {
	Now() Time
}

// WallClock is a Clock backed by the operating system clock.
type WallClock struct{ epoch time.Time }

// NewWallClock returns a wall clock whose epoch is the moment of the call.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now implements Clock.
func (w *WallClock) Now() Time { return Time(time.Since(w.epoch)) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq int64 // tiebreak so same-instant events run FIFO
	fn  func()
	idx int
	off bool // cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct {
	s *Scheduler
	e *event
}

// Stop cancels the timer if it has not yet fired. It reports whether the
// event was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil {
		return false
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.e.off {
		return false
	}
	t.e.off = true
	return true
}

// Scheduler is a deterministic discrete-event simulator implementing Clock.
// Events scheduled for the same instant fire in scheduling order. The zero
// value is not usable; call NewScheduler.
type Scheduler struct {
	mu   sync.Mutex
	now  Time
	seq  int64
	heap eventHeap
}

// NewScheduler returns a scheduler positioned at the epoch.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now implements Clock.
func (s *Scheduler) Now() Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// At schedules fn to run at instant t. Scheduling in the past (or present)
// runs at the current instant on the next step. Returns a cancellable Timer.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		t = s.now
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, e)
	return &Timer{s: s, e: e}
}

// After schedules fn to run d from the current instant.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	at := s.now.Add(d)
	s.mu.Unlock()
	return s.At(at, fn)
}

// Every schedules fn to run periodically with the given period, starting one
// period from now. The returned stop function cancels the series.
func (s *Scheduler) Every(period time.Duration, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("vtime: non-positive period %v", period))
	}
	var mu sync.Mutex
	stopped := false
	var tick func()
	tick = func() {
		mu.Lock()
		if stopped {
			mu.Unlock()
			return
		}
		mu.Unlock()
		fn()
		mu.Lock()
		if !stopped {
			s.After(period, tick)
		}
		mu.Unlock()
	}
	s.After(period, tick)
	return func() {
		mu.Lock()
		stopped = true
		mu.Unlock()
	}
}

// Step runs the single earliest pending event, advancing the clock to its
// instant. It reports whether an event ran.
func (s *Scheduler) Step() bool {
	for {
		s.mu.Lock()
		if len(s.heap) == 0 {
			s.mu.Unlock()
			return false
		}
		e := heap.Pop(&s.heap).(*event)
		if e.off {
			s.mu.Unlock()
			continue
		}
		s.now = e.at
		s.mu.Unlock()
		e.fn()
		return true
	}
}

// Run executes events until none remain. Events may schedule further events;
// Run returns only when the queue is drained.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with instants <= deadline, then advances the clock
// to the deadline. Pending later events remain queued.
func (s *Scheduler) RunUntil(deadline Time) {
	for {
		s.mu.Lock()
		if len(s.heap) == 0 {
			break
		}
		next := s.heap[0]
		if next.off {
			heap.Pop(&s.heap)
			s.mu.Unlock()
			continue
		}
		if next.at > deadline {
			break
		}
		heap.Pop(&s.heap)
		s.now = next.at
		s.mu.Unlock()
		next.fn()
	}
	// mu is held here from the break paths.
	if s.now < deadline {
		s.now = deadline
	}
	s.mu.Unlock()
}

// RunFor executes events within the next d of simulated time.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.Now().Add(d)) }

// Pending returns the number of queued (uncancelled) events.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.heap {
		if !e.off {
			n++
		}
	}
	return n
}
