package wrappers

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/machines"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

func pduFixture(t *testing.T) (*machines.Fleet, *machines.PDU, *machines.PDUServer) {
	t.Helper()
	f := machines.NewFleet(machines.DefaultConfig())
	f.MustAdd(machines.Machine{Name: "ws1", Room: "L101", Desk: 1})
	f.MustAdd(machines.Machine{Name: "ws2", Room: "L101", Desk: 2})
	p := machines.NewPDU("pdu1", f)
	if err := p.Plug(1, "ws1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Plug(2, "ws2"); err != nil {
		t.Fatal(err)
	}
	srv, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return f, p, srv
}

func TestPDUWrapperPollOnce(t *testing.T) {
	_, _, srv := pduFixture(t)
	e := stream.NewEngine("n", vtime.NewScheduler())
	in := e.MustRegister("Power", PowerSchema("Power"))
	col := stream.NewCollector(PowerSchema("Power"))
	in.Subscribe(col)

	w := NewPDUWrapper("pdu1", srv.URL(), in)
	if err := w.PollOnce(5 * vtime.Second); err != nil {
		t.Fatal(err)
	}
	got := col.Snapshot()
	if len(got) != 2 {
		t.Fatalf("tuples = %v", got)
	}
	if got[0].Vals[0].AsString() != "pdu1" || got[0].Vals[2].AsString() != "ws1" {
		t.Fatalf("tuple = %v", got[0])
	}
	if got[0].Vals[3].AsFloat() != 60 { // idle workstation
		t.Fatalf("watts = %v", got[0].Vals[3])
	}
	if got[0].TS != 5*vtime.Second {
		t.Fatalf("ts = %v", got[0].TS)
	}
	if w.Polls != 1 || w.Errors != 0 {
		t.Fatalf("counters = %d/%d", w.Polls, w.Errors)
	}
}

func TestPDUWrapperTracksLoad(t *testing.T) {
	f, _, srv := pduFixture(t)
	e := stream.NewEngine("n", vtime.NewScheduler())
	in := e.MustRegister("Power", PowerSchema("Power"))
	col := stream.NewCollector(PowerSchema("Power"))
	in.Subscribe(col)
	w := NewPDUWrapper("pdu1", srv.URL(), in)

	f.StartJob("ws1", "u", "burn", 1.0, 100)
	if err := w.PollOnce(0); err != nil {
		t.Fatal(err)
	}
	if got := col.Snapshot(); got[0].Vals[3].AsFloat() != 180 {
		t.Fatalf("loaded watts = %v", got[0].Vals[3])
	}
}

func TestWebWrapperPeriodicOnScheduler(t *testing.T) {
	_, _, srv := pduFixture(t)
	sched := vtime.NewScheduler()
	e := stream.NewEngine("n", sched)
	in := e.MustRegister("Power", PowerSchema("Power"))
	col := stream.NewCollector(PowerSchema("Power"))
	in.Subscribe(col)

	w := NewPDUWrapper("pdu1", srv.URL(), in)
	r := w.Start(sched)
	sched.RunUntil(35 * vtime.Second) // 10s period → polls at 10, 20, 30
	if w.Polls != 3 {
		t.Fatalf("polls = %d", w.Polls)
	}
	if col.Len() != 6 {
		t.Fatalf("tuples = %d", col.Len())
	}
	r.Stop()
	sched.RunUntil(100 * vtime.Second)
	if w.Polls != 3 {
		t.Fatalf("polls after stop = %d", w.Polls)
	}
}

func TestWebWrapperErrorPaths(t *testing.T) {
	e := stream.NewEngine("n", vtime.NewScheduler())
	in := e.MustRegister("s", PowerSchema("s"))

	// unreachable host
	w := &WebWrapper{URL: "http://127.0.0.1:1/readings", Input: in,
		Decode: func([]byte, vtime.Time) ([]data.Tuple, error) { return nil, nil }}
	if err := w.PollOnce(0); err == nil {
		t.Fatal("unreachable fetch succeeded")
	}
	// HTTP error status
	bad := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	w2 := &WebWrapper{URL: bad.URL, Input: in,
		Decode: func([]byte, vtime.Time) ([]data.Tuple, error) { return nil, nil }}
	if err := w2.PollOnce(0); err == nil {
		t.Fatal("500 accepted")
	}
	// decode failure
	garbage := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(rw, "not json")
	}))
	defer garbage.Close()
	w3 := NewPDUWrapper("p", garbage.URL[:len(garbage.URL)]+"", in)
	w3.URL = garbage.URL // hit the garbage endpoint directly
	if err := w3.PollOnce(0); err == nil {
		t.Fatal("garbage decoded")
	}
	if w.Errors+w2.Errors+w3.Errors != 3 {
		t.Fatalf("error counters = %d %d %d", w.Errors, w2.Errors, w3.Errors)
	}
}

func TestMachineWrapper(t *testing.T) {
	f := machines.NewFleet(machines.DefaultConfig())
	f.MustAdd(machines.Machine{Name: "ws1", Kind: machines.Workstation, Room: "L101", Desk: 1})
	f.MustAdd(machines.Machine{Name: "srv1", Kind: machines.Server, Room: "MR1", Desk: 1})
	f.SetPower("srv1", false)
	f.StartJob("ws1", "marie", "job", 0.25, 128)

	e := stream.NewEngine("n", vtime.NewScheduler())
	in := e.MustRegister("MachineState", MachineStateSchema("MachineState"))
	col := stream.NewCollector(MachineStateSchema("MachineState"))
	in.Subscribe(col)

	w := &MachineWrapper{Fleet: f, Input: in}
	n := w.SampleOnce(vtime.Second)
	if n != 1 { // srv1 is off
		t.Fatalf("sampled = %d", n)
	}
	got := col.Snapshot()[0]
	if got.Vals[0].AsString() != "ws1" || got.Vals[4].AsFloat() != 0.25 ||
		got.Vals[6].AsInt() != 1 || got.Vals[7].AsInt() != 1 {
		t.Fatalf("reading = %v", got)
	}
	if got.Vals[3].AsString() != "workstation" {
		t.Fatalf("kind = %v", got.Vals[3])
	}
}

func TestMachineWrapperSchedulingAndWorkloadStep(t *testing.T) {
	f := machines.NewFleet(machines.DefaultConfig())
	f.MustAdd(machines.Machine{Name: "ws1", Room: "L101", Desk: 1})
	sched := vtime.NewScheduler()
	e := stream.NewEngine("n", sched)
	in := e.MustRegister("ms", MachineStateSchema("ms"))
	col := stream.NewCollector(MachineStateSchema("ms"))
	in.Subscribe(col)

	w := &MachineWrapper{Fleet: f, Input: in, Period: 2 * time.Second, StepWorkload: true}
	r := w.Start(sched)
	defer r.Stop()
	sched.RunUntil(11 * vtime.Second) // samples at 2,4,6,8,10
	if col.Len() != 5 {
		t.Fatalf("samples = %d", col.Len())
	}
	// workload stepping should eventually change CPU from zero
	changed := false
	for _, tu := range col.Snapshot() {
		if tu.Vals[4].AsFloat() > 0 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("workload never stepped")
	}
}

func TestLoadTable(t *testing.T) {
	schema := data.NewSchema("Machines",
		data.Col("name", data.TString), data.Col("room", data.TString))
	rel := data.NewRelation(schema)
	rel.MustInsert(data.Str("ws1"), data.Str("L101"))
	rel.MustInsert(data.Str("ws2"), data.Str("L102"))

	e := stream.NewEngine("n", vtime.NewScheduler())
	in := e.MustRegister("Machines", schema)
	col := stream.NewCollector(schema)
	in.Subscribe(col)

	n := LoadTable(rel, in, 7*vtime.Second)
	if n != 2 || col.Len() != 2 {
		t.Fatalf("loaded = %d, collected = %d", n, col.Len())
	}
	for _, tu := range col.Snapshot() {
		if tu.TS != 7*vtime.Second || tu.Op != data.Insert {
			t.Fatalf("tuple = %v", tu)
		}
	}
}
