// Package wrappers implements the bottom tier of Figure 1: "Wrappers:
// Machine state & data streams and tables". Wrappers bridge non-ASPEN data
// producers into stream-engine inputs:
//
//   - Web sources scraped over real HTTP on a polling period (the paper's
//     PDUs export power readings through a web interface polled every 10 s),
//   - machine soft sensors sampled from the fleet simulator,
//   - database tables loaded into the engine as static relations.
package wrappers

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"aspen/internal/data"
	"aspen/internal/machines"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// Runner is a handle to a started wrapper.
type Runner interface{ Stop() }

type runner struct{ stop func() }

func (r *runner) Stop() { r.stop() }

// Decoder converts one fetched payload into tuples at the given timestamp.
type Decoder func(body []byte, now vtime.Time) ([]data.Tuple, error)

// WebWrapper polls an HTTP endpoint and pushes the decoded tuples into a
// stream input. Fetch failures are counted and skipped (web sources are
// unreliable; the paper's architecture expects that).
type WebWrapper struct {
	URL    string
	Input  *stream.Input
	Decode Decoder
	// Period defaults to 10 seconds, the paper's PDU polling rate.
	Period time.Duration
	// Client defaults to http.DefaultClient.
	Client *http.Client

	// Errors counts failed polls.
	Errors int
	// Polls counts attempts.
	Polls int
}

// PollOnce fetches and pushes a single round; exposed for tests and for
// simulation drivers that want deterministic polling.
func (w *WebWrapper) PollOnce(now vtime.Time) error {
	w.Polls++
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(w.URL)
	if err != nil {
		w.Errors++
		return fmt.Errorf("wrappers: fetch %s: %w", w.URL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.Errors++
		return fmt.Errorf("wrappers: fetch %s: status %s", w.URL, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		w.Errors++
		return fmt.Errorf("wrappers: read %s: %w", w.URL, err)
	}
	tuples, err := w.Decode(body, now)
	if err != nil {
		w.Errors++
		return fmt.Errorf("wrappers: decode %s: %w", w.URL, err)
	}
	// One poll = one batch: downstream sharded plans exchange the whole
	// round in a single columnar frame instead of tuple-at-a-time.
	w.Input.PushBatch(tuples)
	return nil
}

// Start schedules periodic polling on the scheduler.
func (w *WebWrapper) Start(sched *vtime.Scheduler) Runner {
	period := w.Period
	if period <= 0 {
		period = 10 * time.Second
	}
	stop := sched.Every(period, func() {
		_ = w.PollOnce(sched.Now()) // errors are counted; polling continues
	})
	return &runner{stop: stop}
}

// PowerSchema is the PDU power stream: every 10 s, one reading per outlet.
func PowerSchema(rel string) *data.Schema {
	s := data.NewSchema(rel,
		data.Col("pdu", data.TString),
		data.Col("outlet", data.TInt),
		data.Col("machine", data.TString),
		data.Col("watts", data.TFloat),
	)
	s.IsStream = true
	return s
}

// NewPDUWrapper builds a WebWrapper for a PDU's JSON readings endpoint
// ("a 'wrapper' periodically (every 10s) extracts this value and sends it
// along a data stream", §2).
func NewPDUWrapper(pduName, baseURL string, input *stream.Input) *WebWrapper {
	return &WebWrapper{
		URL:    baseURL + "/readings",
		Input:  input,
		Period: 10 * time.Second,
		Decode: func(body []byte, now vtime.Time) ([]data.Tuple, error) {
			var rs []machines.OutletReading
			if err := json.Unmarshal(body, &rs); err != nil {
				return nil, err
			}
			out := make([]data.Tuple, 0, len(rs))
			for _, r := range rs {
				out = append(out, data.NewTuple(now,
					data.Str(pduName),
					data.Int(int64(r.Outlet)),
					data.Str(r.Machine),
					data.Float(r.Watts),
				))
			}
			return out, nil
		},
	}
}

// MachineStateSchema is the soft-sensor stream: "jobs executing, users
// logged in, CPU utilization, memory, number of requests being handled in a
// Web server application" (§2).
func MachineStateSchema(rel string) *data.Schema {
	s := data.NewSchema(rel,
		data.Col("machine", data.TString),
		data.Col("room", data.TString),
		data.Col("desk", data.TInt),
		data.Col("kind", data.TString),
		data.Col("cpu", data.TFloat),
		data.Col("mem", data.TFloat),
		data.Col("jobs", data.TInt),
		data.Col("users", data.TInt),
		data.Col("requests", data.TFloat),
	)
	s.IsStream = true
	return s
}

// MachineWrapper samples the fleet's soft sensors into a stream.
type MachineWrapper struct {
	Fleet *machines.Fleet
	Input *stream.Input
	// Period defaults to 1 second.
	Period time.Duration
	// StepWorkload also advances the synthetic workload each sample.
	StepWorkload bool
}

// SampleOnce pushes one reading per powered-on machine.
func (w *MachineWrapper) SampleOnce(now vtime.Time) int {
	if w.StepWorkload {
		w.Fleet.Step(now)
	}
	batch := make([]data.Tuple, 0, len(w.Fleet.Machines()))
	for _, m := range w.Fleet.Machines() {
		if m.Off {
			continue
		}
		batch = append(batch, data.NewTuple(now,
			data.Str(m.Name),
			data.Str(m.Room),
			data.Int(int64(m.Desk)),
			data.Str(m.Kind.String()),
			data.Float(m.CPU),
			data.Float(m.MemMB),
			data.Int(int64(len(m.Jobs))),
			data.Int(int64(len(m.Users()))),
			data.Float(m.Requests),
		))
	}
	// One scrape round = one batch into the engine.
	w.Input.PushBatch(batch)
	return len(batch)
}

// Start schedules periodic sampling.
func (w *MachineWrapper) Start(sched *vtime.Scheduler) Runner {
	period := w.Period
	if period <= 0 {
		period = time.Second
	}
	stop := sched.Every(period, func() { w.SampleOnce(sched.Now()) })
	return &runner{stop: stop}
}

// LoadTable pushes every row of a stored relation into a stream input as
// insertions at the given timestamp; how database tables enter a continuous
// query's join state. Returns the number of rows loaded.
func LoadTable(rel *data.Relation, input *stream.Input, now vtime.Time) int {
	var rows []data.Tuple
	rel.Scan(func(t data.Tuple) bool {
		t.TS = now
		t.Op = data.Insert
		rows = append(rows, t)
		return true
	})
	input.PushBatch(rows)
	return len(rows)
}
