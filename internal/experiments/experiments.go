// Package experiments implements the E1–E12 evaluation suite defined in
// DESIGN.md. The SmartCIS paper is a demonstration with no quantitative
// tables, so each experiment quantifies one of its performance claims with
// a baseline; EXPERIMENTS.md records expected-vs-measured shapes. Both
// bench_test.go and cmd/benchharness call into this package.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aspen/internal/building"
	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/federation"
	"aspen/internal/plan"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/smartcis"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/views"
	"aspen/internal/vtime"
)

// Table is one experiment's result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return s
	}
	out := fmt.Sprintf("== %s: %s ==\n", t.ID, t.Title)
	out += line(t.Header) + "\n"
	for _, r := range t.Rows {
		out += line(r) + "\n"
	}
	if t.Notes != "" {
		out += "note: " + t.Notes + "\n"
	}
	return out
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }

// deskEnv builds the standard occupancy environment: occupied desks read
// dark seat light; temperature is 20+id.
func deskEnv(dark map[int]bool) sensor.Env {
	return sensor.EnvFunc(func(n sensornet.Node, kind sensornet.SensorKind, _ vtime.Time) (float64, bool) {
		switch kind {
		case sensornet.SensorTemperature:
			return 20 + float64(n.ID%17), true
		case sensornet.SensorLight:
			if dark[n.ID] {
				return 4, true
			}
			return 70, true
		}
		return 0, false
	})
}

func occupancyState(e *sensor.Engine, placement sensor.Placement) *sensor.JoinState {
	q := &sensor.JoinQuery{
		Left:      sensor.JoinSide{Rel: "t", Sensor: sensornet.SensorTemperature},
		Right:     sensor.JoinSide{Rel: "l", Sensor: sensornet.SensorLight},
		PairBy:    sensor.PairSameDesk,
		Placement: placement,
	}
	q.Right.Pred = expr.MustBind(
		expr.Bin{Op: expr.OpLt, L: expr.C("value"), R: expr.L(10.0)},
		sensor.ReadingSchema("l"))
	st, err := e.PlanJoin(q)
	if err != nil {
		panic(err)
	}
	return st
}

// E1 reproduces Figure 1: the federated optimizer partitions the
// free-machine query, pushing the sensor view in-network.
func E1FederatedPartitioning() Table {
	app, err := smartcis.New(smartcis.Options{
		Building:       building.GenConfig{Labs: 4, DesksPerLab: 6, HallSpacing: 100, Offices: 2},
		SkipPDUServers: true,
	})
	if err != nil {
		panic(err)
	}
	defer app.Close()

	stmt, err := sql.ParseSelect(fmt.Sprintf(`SELECT t.room, t.desk, m.name
		FROM Temperature t [RANGE 2 SECONDS], Light l, Machines m
		WHERE t.room = l.room AND t.desk = l.desk AND l.value < %v
		AND m.room = t.room AND m.desk = t.desk`, smartcis.OccupiedLightThreshold))
	if err != nil {
		panic(err)
	}
	res, err := app.RT.Federator().Optimize(stmt)
	if err != nil {
		panic(err)
	}
	t := Table{
		ID:     "E1",
		Title:  "Fig.1 reproduction — federated partitioning of the free-machine query",
		Header: []string{"partition", "msgs/s", "stream work/s", "unified cost", "chosen"},
	}
	for _, a := range res.Alternatives {
		chosen := ""
		if a == res.Chosen {
			chosen = "<=="
		}
		t.Rows = append(t.Rows, []string{a.Desc, f1(a.MsgsPerSec), f1(a.StreamWork), f3(a.Unified), chosen})
	}
	t.Notes = fmt.Sprintf("%d partitions rejected by capability checks; sensor view pushed in-network as in Fig. 1", len(res.Rejected))
	return t
}

// E2 compares in-network join placement against ship-everything-to-base as
// occupancy and network size vary (§3's workstation-monitoring claim).
func E2InNetworkJoin() Table {
	t := Table{
		ID:     "E2",
		Title:  "in-network join vs ship-to-base (radio msgs per epoch, converged)",
		Header: []string{"motes", "occupancy", "at-base", "optimized", "saving"},
	}
	for _, side := range []int{5, 8, 12} {
		for _, occ := range []float64{0.05, 0.25, 0.60} {
			nodes := side * side
			dark := map[int]bool{}
			for i := 0; i < int(occ*float64(nodes)); i++ {
				dark[(i*7)%nodes] = true
			}
			run := func(p sensor.Placement) float64 {
				nw := sensornet.Grid(sensornet.DefaultConfig(), side, side, 100, side,
					sensornet.SensorTemperature, sensornet.SensorLight)
				e := sensor.NewEngine(nw, deskEnv(dark))
				st := occupancyState(e, p)
				for ep := 0; ep < 25; ep++ { // converge the estimates
					e.RunJoinEpoch(st, vtime.Time(ep), func(data.Tuple) {})
				}
				nw.ResetMetrics()
				for ep := 0; ep < 10; ep++ {
					e.RunJoinEpoch(st, vtime.Time(100+ep), func(data.Tuple) {})
				}
				return float64(nw.Metrics().Sent) / 10
			}
			base := run(sensor.PlaceAtBase)
			opt := run(sensor.PlaceOptimized)
			saving := "-"
			if opt > 0 {
				saving = fmt.Sprintf("%.1fx", base/opt)
			}
			t.Rows = append(t.Rows, []string{d(int64(nodes)), fmt.Sprintf("%.0f%%", occ*100),
				f1(base), f1(opt), saving})
		}
	}
	t.Notes = "savings shrink as occupancy rises: more joins must ship results anyway"
	return t
}

// E3 ablates the per-pair placement decision against fixed placements,
// including the battery-lifetime effect.
func E3JoinPlacement() Table {
	t := Table{
		ID:     "E3",
		Title:  "per-sensor join placement vs fixed (8x8 grid, 10% occupancy, 200 epochs)",
		Header: []string{"policy", "msgs/epoch", "min battery mJ", "results"},
	}
	for _, pol := range []sensor.Placement{
		sensor.PlaceOptimized, sensor.PlaceAtLeft, sensor.PlaceAtRight, sensor.PlaceAtBase,
	} {
		dark := map[int]bool{3: true, 17: true, 33: true, 49: true, 60: true, 12: true}
		nw := sensornet.Grid(sensornet.DefaultConfig(), 8, 8, 100, 8,
			sensornet.SensorTemperature, sensornet.SensorLight)
		e := sensor.NewEngine(nw, deskEnv(dark))
		st := occupancyState(e, pol)
		results := 0
		for ep := 0; ep < 200; ep++ {
			results += e.RunJoinEpoch(st, vtime.Time(ep), func(data.Tuple) {})
		}
		m := nw.Metrics()
		t.Rows = append(t.Rows, []string{pol.String(),
			f1(float64(m.Sent) / 200), f1(nw.MinBattery()), d(int64(results))})
	}
	t.Notes = "identical result counts; the optimizer matches the best fixed policy per pair and preserves battery"
	return t
}

// E4 compares TAG in-network aggregation with centralized collection.
func E4InNetworkAgg() Table {
	t := Table{
		ID:     "E4",
		Title:  "in-network aggregation (TAG) vs centralized collection (avg temperature)",
		Header: []string{"motes", "diameter", "TAG msgs/epoch", "central msgs/epoch", "saving"},
	}
	for _, side := range []int{4, 6, 8, 10, 14} {
		run := func(mode sensor.AggMode) float64 {
			nw := sensornet.Grid(sensornet.DefaultConfig(), side, side, 100, side,
				sensornet.SensorTemperature)
			e := sensor.NewEngine(nw, deskEnv(nil))
			q := &sensor.AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
				Func: sensor.AggAvg, Mode: mode}
			for ep := 0; ep < 5; ep++ {
				e.RunAggregateEpoch(q, vtime.Time(ep), func(data.Tuple) {})
			}
			return float64(nw.Metrics().Sent) / 5
		}
		tag := run(sensor.AggInNetwork)
		central := run(sensor.AggCentralized)
		nw := sensornet.Grid(sensornet.DefaultConfig(), side, side, 100, side, sensornet.SensorTemperature)
		t.Rows = append(t.Rows, []string{d(int64(side * side)), d(int64(nw.Diameter())),
			f1(tag), f1(central), fmt.Sprintf("%.1fx", central/tag)})
	}
	t.Notes = "TAG sends one merged PSR per mote per epoch; centralized pays full tree depth per reading"
	return t
}

// E5 measures real-time route maintenance: latency of a guidance
// recomputation as the routing graph grows.
func E5RouteLatency() Table {
	t := Table{
		ID:     "E5",
		Title:  "real-time route computation latency vs building size",
		Header: []string{"routing points", "edges", "route query", "reroute after closure"},
	}
	for _, labs := range []int{4, 16, 48, 96} {
		b := building.Generate(building.GenConfig{Labs: labs, DesksPerLab: 4,
			HallSpacing: 100, Offices: labs / 2})
		g := b.Graph()
		target := fmt.Sprintf("L%d", 100+labs)
		start := time.Now()
		const reps = 200
		for i := 0; i < reps; i++ {
			if _, ok := g.Shortest("lobby", target); !ok {
				panic("unreachable")
			}
		}
		per := time.Since(start) / reps

		// close a corridor mid-way and re-route
		g.RemoveBoth("hall1", "hall2")
		start = time.Now()
		for i := 0; i < reps; i++ {
			g.Shortest("lobby", target)
		}
		rer := time.Since(start) / reps
		g.AddBoth("hall1", "hall2", 100)
		t.Rows = append(t.Rows, []string{d(int64(len(b.Points()))), d(int64(g.Edges())),
			per.String(), rer.String()})
	}
	t.Notes = "well under a sensing epoch even at 100+ rooms: guidance is real-time (§3)"
	return t
}

// E6 compares incremental recursive-view maintenance with provenance
// against full recomputation under edge churn.
func E6IncrementalView() Table {
	t := Table{
		ID:     "E6",
		Title:  "incremental recursive view maintenance vs full recomputation (transitive closure)",
		Header: []string{"nodes", "churn ops", "incremental", "recompute", "speedup", "derivations"},
	}
	for _, n := range []int{10, 20, 40} {
		edges := chainWithShortcuts(n)
		mk := func() *views.View {
			vs := data.NewSchema("p", data.Col("src", data.TString), data.Col("dst", data.TString))
			es := data.NewSchema("e", data.Col("src", data.TString), data.Col("dst", data.TString))
			v, err := views.New(views.Config{
				Schema: vs, EdgeSchema: es,
				ViewKey: []string{"p.dst"}, EdgeKey: []string{"e.src"},
				Project: []stream.ProjectItem{{Expr: expr.C("p.src")}, {Expr: expr.C("e.dst")}},
			}, stream.NewCallback(vs, func(data.Tuple) {}))
			if err != nil {
				panic(err)
			}
			return v
		}
		feed := func(v *views.View, e [2]string, del bool) {
			t := data.NewTuple(0, data.Str(e[0]), data.Str(e[1]))
			if del {
				t = t.Negate()
			}
			v.BaseInput().Push(t)
			v.EdgeInput().Push(t)
		}
		// incremental: build once, churn one edge repeatedly
		v := mk()
		for _, e := range edges {
			feed(v, e, false)
		}
		churn := edges[n-2] // a leaf-side corridor: few routes cross it
		const ops = 40
		start := time.Now()
		for i := 0; i < ops; i++ {
			feed(v, churn, true)
			feed(v, churn, false)
		}
		inc := time.Since(start) / (2 * ops)
		derivs := v.Stats().DerivationsTried

		// recompute: rebuild the whole view per change
		start = time.Now()
		const recomputes = 6
		for i := 0; i < recomputes; i++ {
			v2 := mk()
			for _, e := range edges {
				feed(v2, e, false)
			}
		}
		rec := time.Since(start) / recomputes
		t.Rows = append(t.Rows, []string{d(int64(n)), d(2 * ops), inc.String(), rec.String(),
			fmt.Sprintf("%.0fx", float64(rec)/float64(inc)), d(derivs)})
	}
	t.Notes = "provenance-guided DRed touches only the affected closure; recompute re-derives everything"
	return t
}

func chainWithShortcuts(n int) [][2]string {
	var out [][2]string
	name := func(i int) string { return fmt.Sprintf("n%d", i) }
	for i := 0; i+1 < n; i++ {
		out = append(out, [2]string{name(i), name(i + 1)})
	}
	for i := 0; i+5 < n; i += 5 {
		out = append(out, [2]string{name(i), name(i + 5)})
	}
	return out
}

// E7 measures stream-engine throughput for the windowed join + aggregation
// pipeline as window sizes vary.
func E7StreamThroughput() Table {
	t := Table{
		ID:     "E7",
		Title:  "stream engine throughput: window → hash join → aggregate",
		Header: []string{"window", "tuples pushed", "wall time", "tuples/sec"},
	}
	for _, win := range []time.Duration{time.Second, 10 * time.Second, 60 * time.Second} {
		const n = 30000
		elapsed, _ := runJoinPipeline(win, n)
		t.Rows = append(t.Rows, []string{win.String(), d(n),
			elapsed.Truncate(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds())})
	}
	// Shard sweep (PR 2): the same 10s-window pipeline behind the
	// partition-parallel exchange, P pipeline replicas keyed on k.
	for _, p := range []int{1, 2, 4, 8} {
		const n = 30000
		elapsed := runShardedJoinPipeline(10*time.Second, n, p)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("10s/P=%d", p), d(n),
			elapsed.Truncate(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds())})
	}
	// Global-aggregate sweep (PR 3): the same pipeline ending in a global
	// AVG (no GROUP BY) — two-phase partial aggregation per shard, one
	// serial FinalMerge.
	for _, p := range []int{1, 2, 4, 8} {
		const n = 30000
		elapsed := runGlobalAggPipeline(10*time.Second, n, p)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("10s/glob/P=%d", p), d(n),
			elapsed.Truncate(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds())})
	}
	// Multi-node sweep (PR 4): the same compiled plan at P=4 with its
	// replicas round-robined over W loopback shard workers (W=0 keeps all
	// replicas in-process) — the columnar-wire/TCP exchange overhead
	// (PR 6; gob before that) of the paper's replicas-on-different-PCs
	// deployment.
	for _, w := range []int{0, 1, 2} {
		const n = 30000
		elapsed := runRemoteJoinPipeline(10*time.Second, n, 4, w)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("10s/P=4/W=%d", w), d(n),
			elapsed.Truncate(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds())})
	}
	// Failover sweep (PR 5): the same deployments with checkpointed
	// worker failover armed — replay logging on every remote exchange hop
	// plus periodic checkpoint barriers. W=0 has no remote replica, so
	// the row measures that an armed-but-inert deployment costs nothing.
	for _, w := range []int{0, 1} {
		const n = 30000
		elapsed := runRemoteFailoverPipeline(10*time.Second, n, 4, w, true)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("10s/P=4/W=%d/fo", w), d(n),
			elapsed.Truncate(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds())})
	}
	t.Notes = "larger windows hold more join state, so each arrival probes and expires more; " +
		"P rows shard the pipeline across worker replicas (speedup needs multiple cores); " +
		"glob rows run the global-aggregate two-phase (partial/final-merge) path; " +
		"W rows deploy the P=4 replicas over W loopback shard workers (gob/TCP exchange overhead); " +
		"fo rows arm checkpointed worker failover (replay log + checkpoint barriers)"
	return t
}

// ShardedE7 is the standard two-stream join+agg pipeline (E7) built
// behind the partition-parallel exchange: P replicas of
// window→join→aggregate keyed on k, merged into one materialized result.
// Exported so the repo benchmarks drive the exact harness pipeline.
type ShardedE7 struct {
	Left, Right *stream.Sharder
	Set         *stream.ShardSet
	Mat         *stream.Materialize
}

// NewShardedE7 builds and starts the pipeline; callers Close the Set.
func NewShardedE7(win time.Duration, p int) *ShardedE7 {
	return newShardedE7(win, p, false)
}

// NewShardedE7Global is NewShardedE7 with the grouped AVG replaced by a
// global AVG (no GROUP BY): each replica runs a stream.PartialAggregate
// and one serial stream.FinalMerge behind the Merge funnel combines the
// shards' partial states — the two-phase path global aggregates shard
// through.
func NewShardedE7Global(win time.Duration, p int) *ShardedE7 {
	return newShardedE7(win, p, true)
}

func newShardedE7(win time.Duration, p int, global bool) *ShardedE7 {
	left := data.NewSchema("a", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	left.IsStream = true
	right := data.NewSchema("b", data.Col("k", data.TInt), data.Col("w", data.TFloat))
	right.IsStream = true
	joined := left.Concat(right)
	specs := []stream.AggSpec{{Kind: stream.AggAvg, Arg: expr.C("v"), Alias: "m"}}
	groupBy := []string{"a.k"}
	if global {
		groupBy = nil
	}
	outSchema, err := stream.AggOutSchema(joined, groupBy, specs)
	if err != nil {
		panic(err)
	}
	mat := stream.NewMaterialize(outSchema)
	var sink stream.Operator = mat
	if global {
		fm, err := stream.NewFinalMerge(mat, joined, groupBy, specs, nil)
		if err != nil {
			panic(err)
		}
		sink = fm
	}
	merge := stream.NewMerge(sink)
	set := stream.NewShardSet(p)
	lheads := make([]stream.Operator, p)
	rheads := make([]stream.Operator, p)
	for s := 0; s < p; s++ {
		var agg stream.Operator
		if global {
			pa, err := stream.NewPartialAggregate(merge, joined, groupBy, specs)
			if err != nil {
				panic(err)
			}
			agg = pa
		} else {
			a, err := stream.NewAggregate(merge, joined, groupBy, specs, nil)
			if err != nil {
				panic(err)
			}
			agg = a
		}
		j, err := stream.NewJoin(agg, left, right, []string{"a.k"}, []string{"b.k"}, nil)
		if err != nil {
			panic(err)
		}
		wl := stream.NewTimeWindow(j.Left(), win, 0)
		wr := stream.NewTimeWindow(j.Right(), win, 0)
		set.Track(s, wl)
		set.Track(s, wr)
		lheads[s], rheads[s] = wl, wr
	}
	lsh, err := stream.NewSharder(set, lheads, []int{0})
	if err != nil {
		panic(err)
	}
	rsh, err := stream.NewSharder(set, rheads, []int{0})
	if err != nil {
		panic(err)
	}
	set.Start()
	return &ShardedE7{Left: lsh, Right: rsh, Set: set, Mat: mat}
}

// FeedEpoch pushes one 64-tuple epoch (split between the two inputs) with
// keys i..i+63 mod 64 and timestamps advancing 50ms per tuple from ts,
// returning the advanced clock. One fresh backing array per epoch:
// windows retain pushed tuples, so the source must not reuse Vals.
func (e *ShardedE7) FeedEpoch(i int, ts vtime.Time) vtime.Time {
	return feedE7Epoch(e.Left, e.Right, i, ts)
}

// feedE7Epoch generates the shared E7 epoch — 64 tuples with keys in
// [0, 64) split alternately across the two inputs at a 50ms stride — so
// every E7 variant (serial, sharded, remote) measures the identical
// workload.
func feedE7Epoch(left, right interface{ PushBatch([]data.Tuple) }, i int, ts vtime.Time) vtime.Time {
	const epoch = 64
	var lb, rb [epoch / 2]data.Tuple
	ln, rn := 0, 0
	vals := make([]data.Value, 2*epoch)
	for k := 0; k < epoch; k++ {
		ts += vtime.Time(50 * time.Millisecond)
		v := vals[2*k : 2*k+2 : 2*k+2]
		v[0] = data.Int(int64((i + k) % 64))
		v[1] = data.Float(float64(i + k))
		t := data.Tuple{Vals: v, TS: ts}
		if k%2 == 0 {
			lb[ln] = t
			ln++
		} else {
			rb[rn] = t
			rn++
		}
	}
	left.PushBatch(lb[:ln])
	right.PushBatch(rb[:rn])
	return ts
}

// runShardedJoinPipeline drives n tuples through a ShardedE7 and times it.
func runShardedJoinPipeline(win time.Duration, n, p int) time.Duration {
	e := NewShardedE7(win, p)
	defer e.Set.Close()
	start := time.Now()
	ts := vtime.Time(0)
	for i := 0; i < n; i += 64 {
		ts = e.FeedEpoch(i, ts)
	}
	e.Set.Flush()
	return time.Since(start)
}

// runGlobalAggPipeline is runShardedJoinPipeline over the two-phase
// global-aggregate variant.
func runGlobalAggPipeline(win time.Duration, n, p int) time.Duration {
	e := NewShardedE7Global(win, p)
	defer e.Set.Close()
	start := time.Now()
	ts := vtime.Time(0)
	for i := 0; i < n; i += 64 {
		ts = e.FeedEpoch(i, ts)
	}
	e.Set.Flush()
	return time.Since(start)
}

// RemoteE7 is the standard E7 join+agg pipeline compiled as a plan whose
// shard replicas deploy over loopback shard workers (plan.NewWorker /
// cmd/shardworker): the workload of the multi-node shard sweep, measuring
// what routing the exchange over the wire costs against in-process shards.
type RemoteE7 struct {
	Eng  *stream.Engine
	Dep  *plan.Deployment
	L, R *stream.Input

	workers []*stream.ShardWorker
}

// NewRemoteE7 compiles the pipeline at parallelism p over the given number
// of loopback workers (0 = every replica in-process), with shards
// round-robined across them.
func NewRemoteE7(win time.Duration, p, workers int) (*RemoteE7, error) {
	return NewRemoteE7Failover(win, p, workers, false)
}

// NewRemoteE7Failover is NewRemoteE7 with checkpointed worker failover
// optionally armed — the configuration PR 5's checkpoint-overhead
// measurements compare against the failover-off baseline.
func NewRemoteE7Failover(win time.Duration, p, workers int, failover bool) (*RemoteE7, error) {
	left := data.NewSchema("A", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	left.IsStream = true
	right := data.NewSchema("B", data.Col("k", data.TInt), data.Col("w", data.TFloat))
	right.IsStream = true
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: win}
	join := plan.NewJoin(
		plan.NewScan("A", "a", left, w, 100, false),
		plan.NewScan("B", "b", right, w, 100, false),
		[]string{"a.k"}, []string{"b.k"}, nil)
	agg, err := plan.NewAggregate(join, []string{"a.k"},
		[]stream.AggSpec{{Kind: stream.AggAvg, Arg: expr.C("v"), Alias: "m"}}, nil)
	if err != nil {
		return nil, err
	}

	e := &RemoteE7{Eng: stream.NewEngine("e7coord", vtime.NewScheduler())}
	var nodes []string
	for i := 0; i < workers; i++ {
		wk, err := plan.NewWorker("127.0.0.1:0")
		if err != nil {
			e.Close()
			return nil, err
		}
		e.workers = append(e.workers, wk)
		nodes = append(nodes, wk.Addr())
	}
	dep, err := plan.CompileStreamOpts(&plan.Built{Root: agg, Limit: -1}, e.Eng,
		plan.CompileOptions{Parallelism: p, Nodes: nodes, Failover: failover})
	if err != nil {
		e.Close()
		return nil, err
	}
	e.Dep = dep
	la, lok := e.Eng.Input("A")
	rb, rok := e.Eng.Input("B")
	if !lok || !rok {
		e.Close()
		return nil, fmt.Errorf("experiments: remote E7 scan inputs not registered (A=%v, B=%v)", lok, rok)
	}
	e.L, e.R = la, rb
	return e, nil
}

// FeedEpoch pushes one shared E7 epoch into the engine inputs.
func (e *RemoteE7) FeedEpoch(i int, ts vtime.Time) vtime.Time {
	return feedE7Epoch(e.L, e.R, i, ts)
}

// Close tears down the deployment and its workers.
func (e *RemoteE7) Close() {
	if e.Dep != nil {
		e.Dep.Close()
	}
	for _, w := range e.workers {
		w.Close()
	}
}

// runRemoteJoinPipeline drives n tuples through a RemoteE7 and times it.
func runRemoteJoinPipeline(win time.Duration, n, p, workers int) time.Duration {
	return runRemoteFailoverPipeline(win, n, p, workers, false)
}

// runRemoteFailoverPipeline is runRemoteJoinPipeline with failover
// optionally armed (checkpoint cadence + replay logging overhead).
func runRemoteFailoverPipeline(win time.Duration, n, p, workers int, failover bool) time.Duration {
	e, err := NewRemoteE7Failover(win, p, workers, failover)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	start := time.Now()
	ts := vtime.Time(0)
	for i := 0; i < n; i += 64 {
		ts = e.FeedEpoch(i, ts)
	}
	e.Dep.Flush()
	return time.Since(start)
}

// runJoinPipeline drives the standard two-stream join+agg pipeline.
func runJoinPipeline(win time.Duration, n int) (time.Duration, int) {
	left := data.NewSchema("a", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	left.IsStream = true
	right := data.NewSchema("b", data.Col("k", data.TInt), data.Col("w", data.TFloat))
	right.IsStream = true
	joined := left.Concat(right)
	outSchema, err := stream.AggOutSchema(joined, []string{"a.k"},
		[]stream.AggSpec{{Kind: stream.AggAvg, Arg: expr.C("v"), Alias: "m"}})
	if err != nil {
		panic(err)
	}
	mat := stream.NewMaterialize(outSchema)
	agg, err := stream.NewAggregate(mat, joined, []string{"a.k"},
		[]stream.AggSpec{{Kind: stream.AggAvg, Arg: expr.C("v"), Alias: "m"}}, nil)
	if err != nil {
		panic(err)
	}
	j, err := stream.NewJoin(agg, left, right, []string{"a.k"}, []string{"b.k"}, nil)
	if err != nil {
		panic(err)
	}
	wl := stream.NewTimeWindow(j.Left(), win, 0)
	wr := stream.NewTimeWindow(j.Right(), win, 0)

	start := time.Now()
	ts := vtime.Time(0)
	for i := 0; i < n; i++ {
		ts += vtime.Time(50 * time.Millisecond)
		k := data.Int(int64(i % 64))
		if i%2 == 0 {
			wl.Push(data.Tuple{Vals: []data.Value{k, data.Float(float64(i))}, TS: ts})
		} else {
			wr.Push(data.Tuple{Vals: []data.Value{k, data.Float(float64(i))}, TS: ts})
		}
	}
	return time.Since(start), mat.Len()
}

// E8 shows cost-model unification: as the catalog's radio statistics
// change, the federated optimizer's choice flips between partitions.
func E8CostUnification() Table {
	t := Table{
		ID:     "E8",
		Title:  "unified cost model: chosen partition as radio cost varies",
		Header: []string{"radio ms/msg", "msg energy mJ", "chosen partition", "unified cost", "all-stream cost", "advantage"},
	}
	for _, radio := range []struct {
		lat    time.Duration
		energy float64
	}{
		{0, 0},                       // free radio: nothing worth pushing
		{5 * time.Millisecond, 0.01}, // cheap radio
		{20 * time.Millisecond, 0.05},
		{200 * time.Millisecond, 0.5}, // congested, battery-poor network
	} {
		nw := sensornet.Grid(sensornet.DefaultConfig(), 6, 6, 100, 6,
			sensornet.SensorTemperature, sensornet.SensorLight)
		eng := sensor.NewEngine(nw, deskEnv(map[int]bool{7: true}))
		cat := catalog.New()
		st := cat.Stats()
		st.RadioMsgLatency = radio.lat
		st.RadioMsgEnergy = radio.energy
		st.NetworkDiameter = nw.Diameter()
		cat.SetStats(st)
		for _, name := range []string{"Temperature", "Light"} {
			cat.MustAddSource(&catalog.Source{Name: name, Kind: catalog.KindSensorStream,
				Schema: sensor.ReadingSchema(name), Rate: 36})
		}
		fed := &federation.Federator{Cat: cat, Sensors: &federation.Binding{
			Kinds: map[string]sensornet.SensorKind{
				"temperature": sensornet.SensorTemperature,
				"light":       sensornet.SensorLight,
			},
			Engine: eng,
		}}
		stmt, err := sql.ParseSelect(`SELECT t.room, t.value FROM Temperature t, Light l
			WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10`)
		if err != nil {
			panic(err)
		}
		res, err := fed.Optimize(stmt)
		if err != nil {
			panic(err)
		}
		allStream := 0.0
		for _, a := range res.Alternatives {
			if len(a.Fragments) > 0 && a.Fragments[0].Kind == FragShipAllKind(a) {
				allStream = a.Unified
			}
		}
		adv := "-"
		if res.Chosen.Unified > 0 {
			adv = fmt.Sprintf("%.1fx", allStream/res.Chosen.Unified)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", float64(radio.lat)/1e6),
			fmt.Sprintf("%.2f", radio.energy),
			res.Chosen.Desc, f3(res.Chosen.Unified), f3(allStream), adv})
	}
	t.Notes = "the in-network join reduces both radio and stream work, so it wins at every price; the unified conversion sets the size of its advantage, growing with radio cost"
	return t
}

// E9 runs the full §4 demo scenario in virtual time and measures
// end-to-end behaviour.
func E9EndToEnd() Table {
	app, err := smartcis.New(smartcis.Options{
		Building:       building.GenConfig{Labs: 4, DesksPerLab: 6, HallSpacing: 100, Offices: 2},
		Seed:           1,
		SkipPDUServers: true,
	})
	if err != nil {
		panic(err)
	}
	defer app.Close()
	occ, err := app.OccupancyQuery()
	if err != nil {
		panic(err)
	}
	app.Sched.RunFor(2 * time.Second)

	// Detection latency: seat someone, count epochs until the query sees it.
	app.SetDeskOccupied("L103", 4, true)
	epochs := 0
	for ; epochs < 10; epochs++ {
		app.Sched.RunFor(time.Second)
		rows, _ := occ.Snapshot()
		found := false
		for _, r := range rows {
			if r.Vals[0].AsString() == "L103" && r.Vals[1].AsInt() == 4 {
				found = true
			}
		}
		if found {
			break
		}
	}

	// Guidance correctness.
	app.VisitorArrives("vis")
	_ = app.MoveVisitorTo("vis", "hall2")
	g, err := app.Guide("vis", "fedora linux")
	if err != nil {
		panic(err)
	}
	m := app.Net.Metrics()
	t := Table{
		ID:     "E9",
		Title:  "end-to-end demo scenario (Fig. 2)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"occupancy detection latency", fmt.Sprintf("%d epoch(s)", epochs+1)},
			{"visitor located at", "hall2"},
			{"guided to", fmt.Sprintf("%s (%s desk %d)", g.Machine.Name, g.Machine.Room, g.Machine.Desk)},
			{"route", g.Route.String()},
			{"radio messages total", d(m.Sent)},
			{"radio energy (mJ)", f1(m.EnergyMJ)},
			{"dead motes", d(int64(m.DeadNodes))},
		},
	}
	t.Notes = "state changes surface within one sensing epoch; guidance runs on the live routing graph"
	return t
}

// E10 measures alarm detection latency and cross-machine aggregation.
func E10Alarms() Table {
	app, err := smartcis.New(smartcis.Options{
		Building:       building.GenConfig{Labs: 3, DesksPerLab: 4, HallSpacing: 100},
		Seed:           3,
		SkipPDUServers: true,
	})
	if err != nil {
		panic(err)
	}
	defer app.Close()
	alarms, err := app.AlarmQuery(45)
	if err != nil {
		panic(err)
	}
	users, err := app.ResourcesByUser()
	if err != nil {
		panic(err)
	}
	app.Fleet.StartJob("ws-L101-1", "marie", "sim", 0.5, 256)
	app.Fleet.StartJob("ws-L102-1", "marie", "sim2", 0.25, 128)
	app.Fleet.StartJob("ws-L103-1", "zives", "build", 0.75, 512)
	app.Sched.RunFor(2 * time.Second)

	app.SetRoomTemp("L102", 55)
	lat := 0
	for ; lat < 10; lat++ {
		app.Sched.RunFor(time.Second)
		if rows, _ := alarms.Snapshot(); len(rows) > 0 {
			break
		}
	}
	// cross-machine aggregation correctness
	sampleAndRun(app)
	urows, _ := users.Snapshot()
	marie := 0.0
	for _, r := range urows {
		if r.Vals[0].AsString() == "marie" {
			marie = r.Vals[1].AsFloat()
		}
	}
	t := Table{
		ID:     "E10",
		Title:  "alarms and cross-machine resource accounting",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"alarm detection latency", fmt.Sprintf("%d epoch(s)", lat+1)},
			{"alarm display rows", d(int64(app.RT.Stream.MustDisplay("alarms", nil).Len()))},
			{"marie's CPU across machines", fmt.Sprintf("%.2f cores (expected 0.75)", marie)},
		},
	}
	t.Notes = "per-user totals combine job streams from every machine (§2)"
	return t
}

// FragShipAllKind reports the kind marking an alternative as all-stream
// (every fragment is raw acquisition).
func FragShipAllKind(a *federation.Alternative) federation.FragmentKind {
	for _, fr := range a.Fragments {
		if fr.Kind != federation.FragShipAll {
			return fr.Kind // not all-stream; return non-matching kind
		}
	}
	return federation.FragShipAll
}

// QueryDensity is the E11 / BenchmarkQueryDensity pipeline: Q standing
// queries — selective windowed filters over one source, each under its own
// alias with a predicate drawn from a 4-cut pool so plans overlap heavily —
// deployed privately or through one Sharing registry.
type QueryDensity struct {
	Eng  *stream.Engine
	In   *stream.Input
	deps []*plan.Deployment
}

// NewQueryDensity builds and deploys the pipeline; callers Close it.
func NewQueryDensity(q int, shared bool) *QueryDensity {
	eng := stream.NewEngine("qd", vtime.NewScheduler())
	opts := plan.CompileOptions{}
	if shared {
		opts.Sharing = plan.NewSharing(eng)
	}
	schema := data.NewSchema("S", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	schema.IsStream = true
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 10 * time.Second}
	cuts := []int{8, 4, 16, 2}
	deps := make([]*plan.Deployment, q)
	for i := range deps {
		alias := fmt.Sprintf("t%d", i)
		scan := plan.NewScan("S", alias, schema, w, 10, false)
		pred := expr.Bin{Op: expr.OpLt, L: expr.C(alias + ".k"), R: expr.L(cuts[i%len(cuts)])}
		dep, err := plan.CompileStreamOpts(
			&plan.Built{Root: &plan.Select{In: scan, Pred: pred}, Limit: -1}, eng, opts)
		if err != nil {
			panic(err)
		}
		deps[i] = dep
	}
	in, _ := eng.Input("S")
	return &QueryDensity{Eng: eng, In: in, deps: deps}
}

// Feed pushes the i-th tuple (key i%64) at ts+50ms and returns the new ts.
func (qd *QueryDensity) Feed(i int, ts vtime.Time) vtime.Time {
	ts += vtime.Time(50 * time.Millisecond)
	qd.In.Push(data.Tuple{Vals: []data.Value{data.Int(int64(i % 64)), data.Float(float64(i))}, TS: ts})
	return ts
}

// Close stops every deployment, detaching all heads, advancers, and shared
// chains from the engine.
func (qd *QueryDensity) Close() {
	for _, dep := range qd.deps {
		dep.Close()
	}
}

// runQueryDensity pushes n tuples through a fresh q-query pipeline and
// reports the elapsed wall time.
func runQueryDensity(q, n int, shared bool) time.Duration {
	qd := NewQueryDensity(q, shared)
	defer qd.Close()
	start := time.Now()
	ts := vtime.Time(0)
	for i := 0; i < n; i++ {
		ts = qd.Feed(i, ts)
	}
	return time.Since(start)
}

// E11 quantifies multi-query sharing (PR 8): the paper's workload is many
// standing queries asking overlapping questions over the same building
// feeds, so the per-tuple cost of Q private pipelines is linear in Q. The
// shared-prefix compile folds all Q scan+window+selection prefixes into
// one physical chain (one window, four predicate layers), fanning out only
// at the divergence points — per-query cost then falls with Q.
func E11QueryDensity() Table {
	t := Table{
		ID:     "E11",
		Title:  "query density: Q standing queries over one source, private vs shared prefixes",
		Header: []string{"Q", "mode", "tuples pushed", "wall time", "ns/tuple/query", "speedup"},
	}
	const n = 20000
	for _, q := range []int{1, 16, 256} {
		priv := runQueryDensity(q, n, false)
		shar := runQueryDensity(q, n, true)
		perQ := func(el time.Duration) string {
			return fmt.Sprintf("%.0f", float64(el.Nanoseconds())/float64(n)/float64(q))
		}
		t.Rows = append(t.Rows,
			[]string{d(int64(q)), "private", d(n), priv.Truncate(time.Microsecond).String(),
				perQ(priv), "1.00x"},
			[]string{d(int64(q)), "shared", d(n), shar.Truncate(time.Microsecond).String(),
				perQ(shar), fmt.Sprintf("%.2fx", float64(priv.Nanoseconds())/float64(shar.Nanoseconds()))})
	}
	t.Notes = "each query is a selective windowed filter (k < c, c cycling over 4 cuts) under its own alias; " +
		"shared mode folds all Q prefixes into one base window + 4 predicate layers, so per-query cost " +
		"falls with Q while private per-tuple cost grows linearly in Q"
	return t
}

// E12SnapshotDurability quantifies the PR-10 durable-coordinator cost:
// snapshot file size and Save/Restore wall latency as the number of
// standing shared-prefix queries grows. Capture is off the hot path —
// Save walks the deployments and checkpoints each shared base window
// once per chain — so these numbers bound restart recovery time, not
// per-tuple cost (the E7/E11 sweeps pin that at 0 allocs/op).
func E12SnapshotDurability() Table {
	t := Table{
		ID:     "E12",
		Title:  "coordinator snapshot durability: file size and save/restore latency vs query count",
		Header: []string{"Q", "tuples in window", "chains", "snapshot bytes", "save", "restore"},
	}
	dir, err := os.MkdirTemp("", "aspen-snap")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	const n = 4096
	schema := data.NewSchema("S", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	schema.IsStream = true
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 10 * time.Second}
	cuts := []int{8, 4, 16, 2}
	for _, q := range []int{1, 16, 64} {
		path := filepath.Join(dir, fmt.Sprintf("coord-%d.snap", q))
		eng := stream.NewEngine(fmt.Sprintf("snap-%d", q), vtime.NewScheduler())
		coord := plan.NewCoordinator(eng, path)
		coord.EnableSharing(plan.NewSharing(eng))
		for i := 0; i < q; i++ {
			alias := fmt.Sprintf("t%d", i)
			scan := plan.NewScan("S", alias, schema, w, 10, false)
			pred := expr.Bin{Op: expr.OpLt, L: expr.C(alias + ".k"), R: expr.L(cuts[i%len(cuts)])}
			if _, err := coord.Deploy(fmt.Sprintf("q%d", i),
				&plan.Built{Root: &plan.Select{In: scan, Pred: pred}, Limit: -1},
				plan.CompileOptions{}); err != nil {
				panic(err)
			}
		}
		in, _ := eng.Input("S")
		ts := vtime.Time(0)
		for i := 0; i < n; i++ {
			ts += vtime.Time(50 * time.Millisecond)
			in.Push(data.Tuple{Vals: []data.Value{data.Int(int64(i % 64)), data.Float(float64(i))}, TS: ts})
		}
		start := time.Now()
		if _, err := coord.Save(); err != nil {
			panic(err)
		}
		save := time.Since(start)
		coord.Close()
		fi, err := os.Stat(path)
		if err != nil {
			panic(err)
		}

		engB := stream.NewEngine(fmt.Sprintf("snap-%d-b", q), vtime.NewScheduler())
		coordB := plan.NewCoordinator(engB, path)
		shareB := plan.NewSharing(engB)
		coordB.EnableSharing(shareB)
		start = time.Now()
		if _, err := coordB.Restore(); err != nil {
			panic(err)
		}
		restore := time.Since(start)
		chains, _ := shareB.Stats()
		coordB.Close()

		t.Rows = append(t.Rows, []string{d(int64(q)), d(n), d(int64(chains)),
			d(fi.Size()), save.Truncate(time.Microsecond).String(),
			restore.Truncate(time.Microsecond).String()})
	}
	t.Notes = "queries share one base window over a 4-cut predicate pool, so chains and snapshot " +
		"size grow with the distinct prefixes (not with Q) while the restored coordinator " +
		"warm-starts every query from the captured window state"
	return t
}

// sampleAndRun pushes one job sample round through the app.
func sampleAndRun(app *smartcis.App) {
	app.Sched.RunFor(100 * time.Millisecond)
	app.SampleJobsNow()
}

// All runs every experiment in order.
func All() []Table {
	return []Table{
		E1FederatedPartitioning(),
		E2InNetworkJoin(),
		E2RemoteFragment(),
		E3JoinPlacement(),
		E4InNetworkAgg(),
		E5RouteLatency(),
		E6IncrementalView(),
		E7StreamThroughput(),
		E8CostUnification(),
		E9EndToEnd(),
		E10Alarms(),
		E11QueryDensity(),
		E12SnapshotDurability(),
	}
}

var _ = plan.PerTupleCost // keep the cost-model package linked for docs
