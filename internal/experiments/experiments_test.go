package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// These tests pin the *shape* of every experiment result — the reproduction
// targets recorded in EXPERIMENTS.md — so a regression in any engine that
// would flip a paper claim fails CI, not just the benchmark report.

func cell(t *testing.T, tab Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d): %+v", tab.ID, row, col, tab.Rows)
	}
	return tab.Rows[row][col]
}

func num(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tab, row, col), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tab.ID, row, col, cell(t, tab, row, col))
	}
	return v
}

func TestE1ChoosesInNetworkJoin(t *testing.T) {
	tab := E1FederatedPartitioning()
	if len(tab.Rows) < 3 {
		t.Fatalf("expected several partitions: %+v", tab.Rows)
	}
	// alternatives are sorted by unified cost; the winner is first and must
	// be the pushed join
	if !strings.Contains(cell(t, tab, 0, 0), "in-network-join") {
		t.Fatalf("winner = %q", cell(t, tab, 0, 0))
	}
	if cell(t, tab, 0, 4) != "<==" {
		t.Fatalf("winner not marked: %+v", tab.Rows[0])
	}
	// the all-stream baseline must be strictly worse
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], "all-stream") {
			winner := num(t, tab, 0, 3)
			all, _ := strconv.ParseFloat(r[3], 64)
			if all <= winner {
				t.Fatalf("all-stream (%v) should cost more than the join (%v)", all, winner)
			}
		}
	}
}

func TestE2InNetworkAlwaysWinsAndScalesWithOccupancy(t *testing.T) {
	tab := E2InNetworkJoin()
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		base, opt := num(t, tab, i, 2), num(t, tab, i, 3)
		if opt > base {
			t.Fatalf("row %d: optimized (%v) worse than at-base (%v)", i, opt, base)
		}
	}
	// within each grid size, the absolute saving shrinks as occupancy grows
	for g := 0; g < 3; g++ {
		low := num(t, tab, g*3, 3) / num(t, tab, g*3, 2)
		high := num(t, tab, g*3+2, 3) / num(t, tab, g*3+2, 2)
		if low >= high {
			t.Fatalf("grid %d: relative cost should rise with occupancy (%v vs %v)", g, low, high)
		}
	}
}

func TestE3OptimizedMatchesBestFixedPolicy(t *testing.T) {
	tab := E3JoinPlacement()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %+v", tab.Rows)
	}
	results := map[string]float64{}
	msgs := map[string]float64{}
	for i, r := range tab.Rows {
		msgs[r[0]] = num(t, tab, i, 1)
		results[r[0]] = num(t, tab, i, 3)
	}
	// identical result counts across policies (correctness)
	for pol, n := range results {
		if n != results["optimized"] {
			t.Fatalf("%s produced %v results, optimized %v", pol, n, results["optimized"])
		}
	}
	bestFixed := msgs["at-left"]
	for _, pol := range []string{"at-right", "at-base"} {
		if msgs[pol] < bestFixed {
			bestFixed = msgs[pol]
		}
	}
	if msgs["optimized"] > bestFixed*1.05 {
		t.Fatalf("optimized (%v msgs) worse than best fixed (%v)", msgs["optimized"], bestFixed)
	}
}

func TestE4SavingGrowsWithDiameter(t *testing.T) {
	tab := E4InNetworkAgg()
	prev := 0.0
	for i := range tab.Rows {
		tag, central := num(t, tab, i, 2), num(t, tab, i, 3)
		if tag >= central {
			t.Fatalf("row %d: TAG (%v) >= centralized (%v)", i, tag, central)
		}
		saving := central / tag
		if saving < prev {
			t.Fatalf("saving should grow with network size: %v after %v", saving, prev)
		}
		prev = saving
	}
}

func TestE5RouteLatencyUnderEpoch(t *testing.T) {
	tab := E5RouteLatency()
	for i, r := range tab.Rows {
		// parse the duration strings; anything at millisecond scale or
		// below is far under a 1 s sensing epoch
		if strings.Contains(r[2], "s") && !strings.Contains(r[2], "µs") &&
			!strings.Contains(r[2], "ms") && !strings.Contains(r[2], "ns") {
			t.Fatalf("row %d: route query %q too slow", i, r[2])
		}
	}
}

func TestE6IncrementalBeatsRecompute(t *testing.T) {
	tab := E6IncrementalView()
	for i := range tab.Rows {
		speedup := num(t, tab, i, 4)
		if speedup < 2 {
			t.Fatalf("row %d: incremental speedup only %vx", i, speedup)
		}
	}
	// the gap must widen with graph size
	if num(t, tab, 0, 4) > num(t, tab, len(tab.Rows)-1, 4) {
		t.Fatalf("speedup should grow with size: %+v", tab.Rows)
	}
}

func TestE7ThroughputReasonable(t *testing.T) {
	tab := E7StreamThroughput()
	for i := range tab.Rows {
		// Multi-node rows (W=1+) pay gob+loopback-TCP per exchange hop,
		// which race instrumentation slows by another order of magnitude —
		// their floor only guards against a wedged pipeline.
		floor := 50_000.0
		if strings.Contains(tab.Rows[i][0], "/W=") {
			floor = 5_000
		}
		if tps := num(t, tab, i, 3); tps < floor {
			t.Fatalf("row %d (%s): throughput %v tuples/sec is implausibly low",
				i, tab.Rows[i][0], tps)
		}
	}
}

func TestE8UnifiedCostScalesWithRadioPrice(t *testing.T) {
	tab := E8CostUnification()
	prevChosen, prevAll := -1.0, -1.0
	for i := range tab.Rows {
		chosen, all := num(t, tab, i, 3), num(t, tab, i, 4)
		if chosen > all {
			t.Fatalf("row %d: chosen (%v) worse than all-stream (%v)", i, chosen, all)
		}
		if chosen < prevChosen || all < prevAll {
			t.Fatalf("unified costs must rise with radio price: %+v", tab.Rows)
		}
		prevChosen, prevAll = chosen, all
	}
}

func TestE9EndToEndScenario(t *testing.T) {
	tab := E9EndToEnd()
	get := func(metric string) string {
		for _, r := range tab.Rows {
			if r[0] == metric {
				return r[1]
			}
		}
		t.Fatalf("metric %q missing: %+v", metric, tab.Rows)
		return ""
	}
	if !strings.HasPrefix(get("occupancy detection latency"), "1 ") {
		t.Fatalf("detection latency = %q", get("occupancy detection latency"))
	}
	if get("visitor located at") != "hall2" {
		t.Fatalf("located at %q", get("visitor located at"))
	}
	if !strings.Contains(get("route"), "hall2") {
		t.Fatalf("route = %q", get("route"))
	}
	if get("dead motes") != "0" {
		t.Fatalf("dead motes = %q", get("dead motes"))
	}
}

func TestE10AlarmsAndAccounting(t *testing.T) {
	tab := E10Alarms()
	for _, r := range tab.Rows {
		switch r[0] {
		case "alarm detection latency":
			if !strings.HasPrefix(r[1], "1 ") && !strings.HasPrefix(r[1], "2 ") {
				t.Fatalf("alarm latency = %q", r[1])
			}
		case "marie's CPU across machines":
			if !strings.HasPrefix(r[1], "0.75") {
				t.Fatalf("cross-machine accounting = %q", r[1])
			}
		}
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{ID: "X", Title: "demo", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: "n"}
	out := tab.Format()
	for _, want := range []string{"== X: demo ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format = %q", out)
		}
	}
}
