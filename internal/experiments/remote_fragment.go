package experiments

import (
	"fmt"
	"time"

	"aspen/internal/data"
	"aspen/internal/plan"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// e2rEnv is the pure reading function shared by every engine copy in the
// E2-remote comparison: coordinator and workers sample identical values,
// so both deployment modes compute the same result.
func e2rEnv(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
	return float64(n.ID%5) + float64(int64(now)/int64(vtime.Second)%3), true
}

// e2rHosts builds one side×side light-grid host registry; each "machine"
// in the comparison builds its own identical copy.
func e2rHosts(side int) *plan.SensorHosts {
	nw := sensornet.Grid(sensornet.DefaultConfig(), side, side, 100, side, sensornet.SensorLight)
	h := plan.NewSensorHosts()
	h.Add("light", sensor.NewEngine(nw, sensor.EnvFunc(e2rEnv)))
	return h
}

// e2rPlan is the E2-remote workload: a windowed per-room count over the
// reading stream a light-select fragment produces.
func e2rPlan() (*plan.Built, error) {
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 4 * time.Second}
	scan := plan.NewScan("LightFeed", "lf", sensor.ReadingSchema("LightFeed"), w, 100, false)
	agg, err := plan.NewAggregate(scan, []string{"lf.room"},
		[]stream.AggSpec{{Kind: stream.AggCount, Alias: "n"}}, nil)
	if err != nil {
		return nil, err
	}
	return &plan.Built{Root: agg, Limit: -1}, nil
}

// runE2Remote drives epochs tick instants through the LightFeed plan at
// parallelism p over nWorkers loopback shard workers, in one of two modes:
// fragment=false keeps the epoch runner central and ships every raw
// reading through the Sharder over the wire; fragment=true pushes the
// sampling fragment into the shard replicas, so only merged result rows
// cross back. Returns the wall time and the raw tuples that crossed the
// wire coordinator→worker.
func runE2Remote(side, epochs, p, nWorkers int, fragment bool) (time.Duration, int, error) {
	frag := plan.SensorFragment{Name: "LightFeed", Sources: []string{"light"},
		Select: &sensor.SelectQuery{Rel: "l", Sensor: sensornet.SensorLight, Period: time.Second}}

	var nodes []string
	var workers []*stream.ShardWorker
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i := 0; i < nWorkers; i++ {
		var wk *stream.ShardWorker
		var err error
		if fragment {
			wk, err = plan.NewSensorWorker("127.0.0.1:0", e2rHosts(side))
		} else {
			wk, err = plan.NewWorker("127.0.0.1:0")
		}
		if err != nil {
			return 0, 0, err
		}
		workers = append(workers, wk)
		addr := wk.Addr()
		if fragment {
			addr += "=light"
		}
		nodes = append(nodes, addr)
	}

	b, err := e2rPlan()
	if err != nil {
		return 0, 0, err
	}
	eng := stream.NewEngine("e2r", vtime.NewScheduler())
	hosts := e2rHosts(side)
	dep, err := plan.CompileStreamOpts(b, eng, plan.CompileOptions{
		Parallelism: p, Nodes: nodes,
		Fragments: []plan.SensorFragment{frag}, SensorHosts: hosts,
		TickPeriod: time.Second,
	})
	if err != nil {
		return 0, 0, err
	}
	defer dep.Close()
	if fragment != (len(dep.RemoteFragments) == 1) {
		return 0, 0, fmt.Errorf("experiments: fragment mode %v but RemoteFragments = %v",
			fragment, dep.RemoteFragments)
	}

	se, _ := hosts.Engine("light")
	in, ok := eng.Input("LightFeed")
	if !ok {
		return 0, 0, fmt.Errorf("experiments: LightFeed input not registered")
	}
	shipped := 0
	start := time.Now()
	for ep := 1; ep <= epochs; ep++ {
		now := vtime.Time(ep) * vtime.Time(vtime.Second)
		eng.Advance(now)
		if !fragment {
			var batch []data.Tuple
			se.RunSelectEpoch(frag.Select, now, func(tu data.Tuple) { batch = append(batch, tu) })
			in.PushBatch(batch)
			shipped += len(batch)
		}
	}
	dep.Flush()
	return time.Since(start), shipped, nil
}

// E2RemoteFragment measures what hosting a sensor fragment inside the
// remote shard replicas saves over the PR-8 shape — a central epoch
// runner shipping every raw reading through the Sharder to the workers.
// Same engines, same plan, same results; only the sampling location (and
// therefore the coordinator→worker traffic) differs.
func E2RemoteFragment() Table {
	t := Table{
		ID:     "E2R",
		Title:  "sensor fragment at worker vs raw readings over the wire (P=2, 2 workers, 200 epochs)",
		Header: []string{"grid", "raw-over-wire", "fragment-at-worker", "speedup", "raw tuples shipped"},
	}
	const epochs, p, nWorkers = 200, 2, 2
	for _, side := range []int{8, 12} {
		raw, shipped, err := runE2Remote(side, epochs, p, nWorkers, false)
		if err != nil {
			panic(err)
		}
		local, _, err := runE2Remote(side, epochs, p, nWorkers, true)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", side, side),
			raw.Truncate(time.Microsecond).String(),
			local.Truncate(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(raw)/float64(local)), d(int64(shipped)),
		})
	}
	t.Notes = "the win is the eliminated coordinator→worker column: on loopback the wire is nearly free, so wall time only reaches parity; every shipped tuple saved is real bandwidth on a real link"
	return t
}
