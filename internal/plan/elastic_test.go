package plan

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"aspen/internal/data"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// Elastic membership + durable coordinator tests: live re-sharding when
// workers join and leave, heal-back after failover, coordinator snapshot/
// restore, and the combined join/leave/kill/restart chaos differential.

var fuzzElastic = flag.Int("fuzzshard.elastic", 6,
	"random plans per elastic differential run: workers join and leave via live rescales at random epochs "+
		"(and in the restart mode the coordinator itself restarts from its snapshot mid-run); "+
		"results must stay multiset-equal to serial (0 disables)")

// pushEvents replays evs[lo:hi] into eng without snapshotting.
func pushEvents(eng *stream.Engine, evs []fuzzEvent, lo, hi int) {
	for _, ev := range evs[lo:hi] {
		if ev.tick != 0 {
			eng.Advance(ev.tick)
			continue
		}
		if in, ok := eng.Input(ev.input); ok {
			in.Push(ev.t.Clone())
		}
	}
}

// snapshotSorted flushes and returns the deployment's rows sorted.
func snapshotSorted(t *testing.T, dep *Deployment) []data.Tuple {
	t.Helper()
	rows, err := dep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	stream.SortTuples(rows)
	return rows
}

func requireEqualRows(t *testing.T, ctx string, got, want []data.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d\ngot:  %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if !got[i].EqualVals(want[i]) {
			t.Fatalf("%s: row %d = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// TestRescaleLiveDeployment: a deployment compiled all-in-process (no
// worker topology at all) rescales onto a worker that joins mid-run, then
// heals back home after the worker leaves — with pushes before, between,
// and after the moves — and stays multiset-identical to serial.
func TestRescaleLiveDeployment(t *testing.T) {
	sources := fuzzSources()
	rng := rand.New(rand.NewSource(*fuzzSeed))
	b := fuzzBuiltPlan(t)
	evs := genWorkload(rng, sources, 300)

	seng := stream.NewEngine("rescale-serial", vtime.NewScheduler())
	sdep, err := CompileStream(b, seng)
	if err != nil {
		t.Fatal(err)
	}
	pushEvents(seng, evs, 0, len(evs))
	want := snapshotSorted(t, sdep)

	eng := stream.NewEngine("rescale-elastic", vtime.NewScheduler())
	dep, err := CompileStreamOpts(b, eng, CompileOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.Shards != 2 {
		t.Fatalf("plan did not shard (shards=%d)", dep.Shards)
	}
	for _, loc := range dep.Placement() {
		if loc != "" {
			t.Fatalf("expected all-in-process placement, got %v", dep.Placement())
		}
	}

	third := len(evs) / 3
	pushEvents(eng, evs, 0, third)

	// A worker joins: push every shard out to it.
	addrs := startWorkers(t, 1)
	if err := dep.Rescale(addrs); err != nil {
		t.Fatalf("rescale out: %v", err)
	}
	for j, loc := range dep.Placement() {
		if loc != addrs[0] {
			t.Fatalf("shard %d still at %q after rescale to %s", j, loc, addrs[0])
		}
	}
	pushEvents(eng, evs, third, 2*third)

	// The worker leaves: heal every shard back home.
	if err := dep.Rescale(nil); err != nil {
		t.Fatalf("rescale home: %v", err)
	}
	for j, loc := range dep.Placement() {
		if loc != "" {
			t.Fatalf("shard %d still at %q after rescale home", j, loc)
		}
	}
	if n := stream.WorkerConnCount(); n != 0 {
		t.Fatalf("%d worker connections still pooled after every shard left", n)
	}
	pushEvents(eng, evs, 2*third, len(evs))

	requireEqualRows(t, "rescale out+home", snapshotSorted(t, dep), want)
}

// TestRescaleHealBackAfterFailover: a worker dies mid-run and failover
// strands its shards on the survivor; a replacement worker joins and
// Rescale heals the deployment back onto two workers. Results stay
// multiset-identical to serial across the kill and the heal.
func TestRescaleHealBackAfterFailover(t *testing.T) {
	sources := fuzzSources()
	rng := rand.New(rand.NewSource(*fuzzSeed))
	b := fuzzBuiltPlan(t)
	evs := genWorkload(rng, sources, 300)

	seng := stream.NewEngine("heal-serial", vtime.NewScheduler())
	sdep, err := CompileStream(b, seng)
	if err != nil {
		t.Fatal(err)
	}
	pushEvents(seng, evs, 0, len(evs))
	want := snapshotSorted(t, sdep)

	cl := startKillableWorkers(t, 2)
	var failovers int
	eng := stream.NewEngine("heal-elastic", vtime.NewScheduler())
	dep, err := CompileStreamOpts(b, eng, CompileOptions{
		Parallelism: 2, Nodes: cl.addrs, Failover: true, CheckpointEvery: 2,
		OnFailover: func(ev stream.FailoverEvent) {
			if ev.Err != nil {
				t.Errorf("failover abandoned shards %v: %v", ev.Shards, ev.Err)
			}
			failovers++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.Shards != 2 {
		t.Fatalf("plan did not shard (shards=%d)", dep.Shards)
	}

	third := len(evs) / 3
	pushEvents(eng, evs, 0, third)
	cl.kill(0)
	pushEvents(eng, evs, third, 2*third)
	dep.Flush()
	if failovers == 0 {
		t.Fatal("killed worker 0 but no failover ran")
	}
	for j, loc := range dep.Placement() {
		if loc == cl.addrs[0] {
			t.Fatalf("shard %d still placed on the dead worker %s", j, loc)
		}
	}

	// A replacement joins; heal back to a two-worker topology.
	repl := startWorkers(t, 1)
	target := []string{cl.addrs[1], repl[0]}
	if err := dep.Rescale(target); err != nil {
		t.Fatalf("heal-back rescale: %v", err)
	}
	onRepl := false
	for j, loc := range dep.Placement() {
		if loc != target[j%2] {
			t.Fatalf("shard %d at %q after heal-back, want %q", j, loc, target[j%2])
		}
		onRepl = onRepl || loc == repl[0]
	}
	if !onRepl {
		t.Fatal("no shard healed onto the replacement worker")
	}
	pushEvents(eng, evs, 2*third, len(evs))

	requireEqualRows(t, "kill+heal-back", snapshotSorted(t, dep), want)
}

// TestCoordinatorSnapshotRestore: standing queries — one serial, one
// sharded over a worker+local mix — survive a coordinator restart: Save at
// mid-run, tear the coordinator down, Restore into a fresh engine, replay
// the rest, and both results stay multiset-identical to serial.
func TestCoordinatorSnapshotRestore(t *testing.T) {
	sources := fuzzSources()
	rng := rand.New(rand.NewSource(*fuzzSeed))
	b := fuzzBuiltPlan(t)
	evs := genWorkload(rng, sources, 300)

	seng := stream.NewEngine("snap-serial", vtime.NewScheduler())
	sdep, err := CompileStream(b, seng)
	if err != nil {
		t.Fatal(err)
	}
	pushEvents(seng, evs, 0, len(evs))
	want := snapshotSorted(t, sdep)

	addrs := startWorkers(t, 1)
	path := filepath.Join(t.TempDir(), "coord.snap")

	engA := stream.NewEngine("snap-a", vtime.NewScheduler())
	coordA := NewCoordinator(engA, path)
	if _, err := coordA.Deploy("serial", b, CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := coordA.Deploy("sharded", b, CompileOptions{
		Parallelism: 2, Nodes: []string{"", addrs[0]}, Failover: true, CheckpointEvery: 2,
	}); err != nil {
		t.Fatal(err)
	}
	half := len(evs) / 2
	pushEvents(engA, evs, 0, half)
	if _, err := coordA.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	coordA.Close() // the restart: old deployments die with the old process

	engB := stream.NewEngine("snap-b", vtime.NewScheduler())
	coordB := NewCoordinator(engB, path)
	if _, err := coordB.Restore(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	names := coordB.Names()
	if len(names) != 2 || names[0] != "serial" || names[1] != "sharded" {
		t.Fatalf("restored deployments %v, want [serial sharded]", names)
	}
	defer coordB.Close()
	pushEvents(engB, evs, half, len(evs))

	for _, name := range names {
		dep, ok := coordB.Deployment(name)
		if !ok {
			t.Fatalf("restored deployment %q missing", name)
		}
		requireEqualRows(t, "restored "+name, snapshotSorted(t, dep), want)
	}
	// The sharded deployment must have come back on its snapshotted
	// placement, not a fresh round-robin.
	dep, _ := coordB.Deployment("sharded")
	if got := dep.Placement(); got[0] != "" || got[1] != addrs[0] {
		t.Fatalf("restored placement %v, want [ %s]", got, addrs[0])
	}
}

// TestCoordinatorLifecycle: the bookkeeping surface around the snapshot
// machinery — name uniqueness, lookup, drop, and the errors for unknown
// deployments.
func TestCoordinatorLifecycle(t *testing.T) {
	b := fuzzBuiltPlan(t)
	eng := stream.NewEngine("lifecycle", vtime.NewScheduler())
	coord := NewCoordinator(eng, filepath.Join(t.TempDir(), "coord.snap"))
	defer coord.Close()

	if _, err := coord.Deploy("a", b, CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Deploy("b", b, CompileOptions{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Deploy("a", b, CompileOptions{}); err == nil {
		t.Fatal("duplicate deployment name must be rejected")
	}
	if got := coord.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names() = %v, want [a b]", got)
	}
	if got, ok := coord.Built("a"); !ok || got != b {
		t.Fatalf("Built(a) = %v, %v", got, ok)
	}
	if _, ok := coord.Built("nope"); ok {
		t.Fatal("Built of an unknown deployment must report absence")
	}
	if _, ok := coord.Deployment("nope"); ok {
		t.Fatal("Deployment of an unknown name must report absence")
	}
	if err := coord.Rescale("nope", nil); err == nil {
		t.Fatal("Rescale of an unknown deployment must error")
	}
	if err := coord.Rescale("a", []string{"x"}); err == nil {
		t.Fatal("Rescale of a serial deployment must error")
	}
	if err := coord.Drop("a"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if err := coord.Drop("a"); err == nil {
		t.Fatal("double drop must error")
	}
	if got := coord.Names(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Names() after drop = %v, want [b]", got)
	}
}

// TestSnapshotLoadFaults: a truncated, corrupted, garbage, or
// stale-version snapshot file is a clean Restore error that leaves the
// coordinator empty but alive — never a panic, never a partial
// rehydration.
func TestSnapshotLoadFaults(t *testing.T) {
	b := fuzzBuiltPlan(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "coord.snap")

	// Build one valid snapshot image to mutate.
	engA := stream.NewEngine("faults-a", vtime.NewScheduler())
	coordA := NewCoordinator(engA, path)
	if _, err := coordA.Deploy("q", b, CompileOptions{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := coordA.Save(); err != nil {
		t.Fatal(err)
	}
	coordA.Close()
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xFF
	badMagic := append([]byte(nil), valid...)
	copy(badMagic, "NOTASNAP")
	staleVer := append([]byte(nil), valid...)
	staleVer[8] = 99
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-header", valid[:10]},
		{"truncated-body", valid[:len(valid)-7]},
		{"garbage", []byte("complete nonsense, not a snapshot at all")},
		{"bad-magic", badMagic},
		{"stale-version", staleVer},
		{"corrupted-body", corrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name+".snap")
			if err := os.WriteFile(p, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			eng := stream.NewEngine("faults-"+tc.name, vtime.NewScheduler())
			coord := NewCoordinator(eng, p)
			if _, err := coord.Restore(); err == nil {
				t.Fatal("Restore of a damaged snapshot must fail")
			}
			if n := coord.Names(); len(n) != 0 {
				t.Fatalf("damaged snapshot partially rehydrated: %v", n)
			}
			// Empty but alive: the coordinator still deploys and saves.
			if _, err := coord.Deploy("fresh", b, CompileOptions{}); err != nil {
				t.Fatalf("coordinator unusable after failed restore: %v", err)
			}
			if _, err := coord.Save(); err != nil {
				t.Fatalf("save after failed restore: %v", err)
			}
			coord.Close()
		})
	}

	// A missing file is a fresh start, not an error.
	eng := stream.NewEngine("faults-missing", vtime.NewScheduler())
	coord := NewCoordinator(eng, filepath.Join(dir, "does-not-exist.snap"))
	if _, err := coord.Restore(); err != nil {
		t.Fatalf("missing snapshot must be a fresh start: %v", err)
	}
	// Restore onto a non-empty coordinator is refused.
	if _, err := coord.Deploy("q", b, CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.Restore(); err == nil {
		t.Fatal("Restore over live deployments must fail")
	}
}

// randTopo draws a random placement for a rescale: nil (everything
// in-process) or 1–3 slots over the alive workers, possibly mixing ""
// (in-process) entries. Workers are sampled without replacement —
// ParseNodes rejects duplicate addresses as a config error.
func randTopo(rng *rand.Rand, alive []string) []string {
	if len(alive) == 0 || rng.Intn(4) == 0 {
		return nil
	}
	perm := rng.Perm(len(alive))
	n := 1 + rng.Intn(3)
	topo := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 || len(perm) == 0 {
			topo = append(topo, "") // "" keeps that slot in-process
			continue
		}
		topo = append(topo, alive[perm[0]])
		perm = perm[1:]
	}
	return topo
}

// runElasticDifferential is the elastic chaos differential: each random
// plan runs serially for the reference, then sharded through a
// plan.Coordinator with failover armed while workers join and leave via
// live rescales at random epochs, one worker is killed outright, and — in
// restart mode — the coordinator itself is torn down at a random epoch and
// rehydrated from its durable snapshot into a fresh engine. The final
// materialized output must stay multiset-equal to the serial run.
func runElasticDifferential(t *testing.T, seed int64, nPlans int, restart bool) {
	sources := fuzzSources()
	sharded, rescales, failovers, restarts := 0, 0, 0, 0
	for pi := 0; pi < nPlans; pi++ {
		rng := rand.New(rand.NewSource(seed + int64(pi)))
		g := &fuzzGen{rng: rng, sources: sources}
		root := g.genPlan()
		b := &Built{Root: root, Limit: -1}
		evs := genWorkload(rng, sources, 300)

		seng := stream.NewEngine(fmt.Sprintf("el%d-serial", pi), vtime.NewScheduler())
		sdep, err := CompileStream(b, seng)
		if err != nil {
			t.Fatalf("seed %d plan %d: serial compile: %v", seed, pi, err)
		}
		pushEvents(seng, evs, 0, len(evs))
		want := snapshotSorted(t, sdep)

		for _, p := range []int{2, 4} {
			cl := startKillableWorkers(t, 3)
			alive := append([]string(nil), cl.addrs...)
			path := filepath.Join(t.TempDir(), "coord.snap")
			eng := stream.NewEngine(fmt.Sprintf("el%d-p%d", pi, p), vtime.NewScheduler())
			coord := NewCoordinator(eng, path)
			coord.EnableSharing(NewSharing(eng))
			dep, err := coord.Deploy("q", b, CompileOptions{
				Parallelism: p, Nodes: alive[:2], Failover: true,
				CheckpointEvery: 1 + rng.Intn(3),
				OnFailover: func(ev stream.FailoverEvent) {
					if ev.Err != nil {
						t.Errorf("seed %d plan %d P=%d: failover abandoned shards %v: %v",
							seed, pi, p, ev.Shards, ev.Err)
					}
					failovers++
				},
			})
			if err != nil {
				t.Fatalf("seed %d plan %d: elastic compile P=%d: %v\nplan: %s", seed, pi, p, err, root)
			}
			if dep.Shards != p {
				coord.Close()
				continue // serial fallback: nothing elastic to exercise
			}
			sharded++
			// Two serial deployments of the same plan ride along: with
			// sharing enabled they run one prefix chain whenever the plan
			// has a shareable prefix, so the restart also proves shared
			// window state survives the snapshot (warm rebuild, no cold
			// re-attach).
			for _, sname := range []string{"s1", "s2"} {
				if _, err := coord.Deploy(sname, b, CompileOptions{}); err != nil {
					t.Fatalf("seed %d plan %d P=%d: serial ride-along %s: %v", seed, pi, p, sname, err)
				}
			}

			// Random schedule: a handful of rescales, one kill, and (in
			// restart mode) one coordinator restart, at distinct epochs.
			schedule := map[int]string{}
			for i := 0; i < 2+rng.Intn(2); i++ {
				schedule[rng.Intn(len(evs))] = "rescale"
			}
			schedule[rng.Intn(len(evs))] = "kill"
			if restart {
				schedule[rng.Intn(len(evs))] = "restart"
			}
			victim := rng.Intn(len(cl.addrs))

			for i, ev := range evs {
				switch schedule[i] {
				case "rescale":
					if err := coord.Rescale("q", randTopo(rng, alive)); err != nil {
						t.Fatalf("seed %d plan %d P=%d: rescale at event %d: %v", seed, pi, p, i, err)
					}
					rescales++
				case "kill":
					if len(alive) == len(cl.addrs) { // not killed yet
						cl.kill(victim)
						alive = append(alive[:victim], alive[victim+1:]...)
					}
				case "restart":
					if _, err := coord.Save(); err != nil {
						t.Fatalf("seed %d plan %d P=%d: save at event %d: %v", seed, pi, p, i, err)
					}
					coord.Close() // the old coordinator process dies
					eng = stream.NewEngine(fmt.Sprintf("el%d-p%d-r", pi, p), vtime.NewScheduler())
					coord = NewCoordinator(eng, path)
					coord.EnableSharing(NewSharing(eng))
					if skipped, err := coord.Restore(); err != nil {
						t.Fatalf("seed %d plan %d P=%d: restore at event %d: %v", seed, pi, p, i, err)
					} else if len(skipped) != 0 {
						t.Fatalf("seed %d plan %d P=%d: restore reported skipped deployments %v", seed, pi, p, skipped)
					}
					var ok bool
					if dep, ok = coord.Deployment("q"); !ok {
						t.Fatalf("seed %d plan %d P=%d: deployment lost across restart", seed, pi, p)
					}
					restarts++
				}
				if ev.tick != 0 {
					eng.Advance(ev.tick)
					continue
				}
				if in, ok := eng.Input(ev.input); ok {
					in.Push(ev.t.Clone())
				}
			}
			got := snapshotSorted(t, dep)
			for _, sname := range []string{"s1", "s2"} {
				sd, ok := coord.Deployment(sname)
				if !ok {
					t.Fatalf("seed %d plan %d P=%d: serial ride-along %s lost", seed, pi, p, sname)
				}
				requireEqualRows(t,
					fmt.Sprintf("seed %d plan %d P=%d shared %s (restart=%v)\nplan: %s", seed, pi, p, sname, restart, root),
					snapshotSorted(t, sd), want)
			}
			coord.Close()
			requireEqualRows(t,
				fmt.Sprintf("seed %d plan %d P=%d (restart=%v)\nplan: %s", seed, pi, p, restart, root),
				got, want)
		}
	}
	t.Logf("seed %d: %d plans, %d sharded elastic runs, %d rescales, %d failovers, %d restarts",
		seed, nPlans, sharded, rescales, failovers, restarts)
	if sharded == 0 {
		t.Fatal("no generated plan sharded; the elastic mode ran vacuously")
	}
	if rescales == 0 {
		t.Fatal("no rescale executed; the elastic mode ran vacuously")
	}
	if restart && restarts == 0 {
		t.Fatal("no coordinator restart executed; the restart mode ran vacuously")
	}
}

// TestShardDifferentialElastic: workers join and leave via live rescales
// (plus one kill) at random epochs; results stay multiset-equal to serial.
func TestShardDifferentialElastic(t *testing.T) {
	if *fuzzElastic <= 0 {
		t.Skip("elastic mode disabled (-fuzzshard.elastic=0)")
	}
	runElasticDifferential(t, *fuzzSeed+10000, *fuzzElastic, false)
}

// TestShardDifferentialJoinLeaveRestart is the full survivability
// differential: workers join, leave, and get killed mid-run AND the
// coordinator restarts from its durable snapshot at a random epoch — the
// combined proof that elastic membership and coordinator rehydration
// compose without losing or duplicating a single tuple.
func TestShardDifferentialJoinLeaveRestart(t *testing.T) {
	if *fuzzElastic <= 0 {
		t.Skip("elastic mode disabled (-fuzzshard.elastic=0)")
	}
	runElasticDifferential(t, *fuzzSeed+11000, *fuzzElastic, true)
}

// TestShardDifferentialJoinLeaveRestartForcedCollisions reruns the
// join/leave/restart differential with every operator hash forced into a
// single collision bucket, so snapshot restore rebuilds collision chains
// in every rehydrated operator.
func TestShardDifferentialJoinLeaveRestartForcedCollisions(t *testing.T) {
	if *fuzzElastic <= 0 {
		t.Skip("elastic mode disabled (-fuzzshard.elastic=0)")
	}
	old := stream.SetTestHashMask(0)
	t.Cleanup(func() { stream.SetTestHashMask(old) })
	n := *fuzzElastic / 2
	if n < 3 {
		n = 3
	}
	runElasticDifferential(t, *fuzzSeed+12000, n, true)
}
