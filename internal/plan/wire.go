package plan

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
)

// This file is the plan layer's side of multi-node shard execution: a
// replica's logical subplan travels to a stream.ShardWorker as a gob-encoded
// wire spec, and DeployReplica rebuilds and compiles it there. The worker
// process never sees SQL or the catalog — just the already-analyzed subtree
// the coordinator's shard analysis proved partitionable, plus the optional
// PartialAggregate cap of a two-phase plan. Specs are the cold path and
// the one place gob remains on the wire (inside deploy frame bodies);
// the per-batch hot path uses the columnar codec in stream/wire.go.

func init() {
	// expr.Expr values ride inside wire nodes (predicates, projections,
	// aggregate arguments); gob needs the concrete types registered.
	gob.Register(expr.Lit{})
	gob.Register(expr.Col{})
	gob.Register(expr.Bin{})
	gob.Register(expr.Un{})
	gob.Register(expr.IsNull{})
	gob.Register(expr.Call{})
}

// wireKind discriminates wire plan nodes.
type wireKind uint8

const (
	wireScan wireKind = iota
	wireSelect
	wireProject
	wireJoin
	wireAggregate
	wireDistinct
)

// wireNode mirrors one logical plan node in a gob-friendly shape. Children
// hold the inputs (one for unary nodes, [L, R] for joins).
type wireNode struct {
	Kind     wireKind
	Children []wireNode

	// wireScan
	Input   string
	Alias   string
	Window  *sql.WindowSpec
	Rate    float64
	IsTable bool
	Schema  *data.Schema

	// wireSelect (Pred), wireJoin (Residual), wireAggregate (Having)
	Pred expr.Expr

	// wireProject
	Items []stream.ProjectItem

	// wireJoin
	LKey, RKey []string

	// wireAggregate
	GroupBy []string
	Specs   []stream.AggSpec
}

// wirePartial is the two-phase cap: the replica runs a PartialAggregate
// with these parameters on top of the subtree, shipping partial rows to the
// coordinator's FinalMerge.
type wirePartial struct {
	GroupBy []string
	Specs   []stream.AggSpec
}

// wireReplica is one deployable replica spec. Fragments, when present,
// are the sensor epoch fragments each shard hosts next to its replica
// (see fragment.go) — the deploying worker must carry their sources in
// its SensorHosts registry.
type wireReplica struct {
	Root      wireNode
	Partial   *wirePartial
	Fragments []wireFragment
}

// encodeNode lowers a plan subtree to its wire mirror.
func encodeNode(n Node) (wireNode, error) {
	switch x := n.(type) {
	case *Scan:
		return wireNode{
			Kind: wireScan, Input: x.Input, Alias: x.Alias, Window: x.Window,
			Rate: x.Rate, IsTable: x.IsTable, Schema: x.schema,
		}, nil
	case *Select:
		in, err := encodeNode(x.In)
		if err != nil {
			return wireNode{}, err
		}
		return wireNode{Kind: wireSelect, Children: []wireNode{in}, Pred: x.Pred}, nil
	case *Project:
		in, err := encodeNode(x.In)
		if err != nil {
			return wireNode{}, err
		}
		return wireNode{Kind: wireProject, Children: []wireNode{in}, Items: x.Items}, nil
	case *Join:
		l, err := encodeNode(x.L)
		if err != nil {
			return wireNode{}, err
		}
		r, err := encodeNode(x.R)
		if err != nil {
			return wireNode{}, err
		}
		return wireNode{Kind: wireJoin, Children: []wireNode{l, r},
			LKey: x.LKey, RKey: x.RKey, Pred: x.Residual}, nil
	case *Aggregate:
		in, err := encodeNode(x.In)
		if err != nil {
			return wireNode{}, err
		}
		return wireNode{Kind: wireAggregate, Children: []wireNode{in},
			GroupBy: x.GroupBy, Specs: x.Specs, Pred: x.Having}, nil
	case *Distinct:
		in, err := encodeNode(x.In)
		if err != nil {
			return wireNode{}, err
		}
		return wireNode{Kind: wireDistinct, Children: []wireNode{in}}, nil
	}
	return wireNode{}, fmt.Errorf("plan: cannot ship %T to a shard worker", n)
}

// decodeNode rebuilds the plan subtree from its wire mirror. Derived
// schemas recompute from the children, so a worker running a different
// build would fail loudly rather than mis-shape tuples.
func decodeNode(w wireNode) (Node, error) {
	child := func(i int) (Node, error) {
		if i >= len(w.Children) {
			return nil, fmt.Errorf("plan: wire node missing child %d", i)
		}
		return decodeNode(w.Children[i])
	}
	switch w.Kind {
	case wireScan:
		if w.Schema == nil {
			return nil, fmt.Errorf("plan: wire scan %s has no schema", w.Input)
		}
		return &Scan{Input: w.Input, Alias: w.Alias, Window: w.Window,
			Rate: w.Rate, IsTable: w.IsTable, schema: w.Schema}, nil
	case wireSelect:
		in, err := child(0)
		if err != nil {
			return nil, err
		}
		return &Select{In: in, Pred: w.Pred}, nil
	case wireProject:
		in, err := child(0)
		if err != nil {
			return nil, err
		}
		return NewProject(in, w.Items)
	case wireJoin:
		l, err := child(0)
		if err != nil {
			return nil, err
		}
		r, err := child(1)
		if err != nil {
			return nil, err
		}
		return NewJoin(l, r, w.LKey, w.RKey, w.Pred), nil
	case wireAggregate:
		in, err := child(0)
		if err != nil {
			return nil, err
		}
		return NewAggregate(in, w.GroupBy, w.Specs, w.Pred)
	case wireDistinct:
		in, err := child(0)
		if err != nil {
			return nil, err
		}
		return &Distinct{In: in}, nil
	}
	return nil, fmt.Errorf("plan: unknown wire node kind %d", w.Kind)
}

// encodeReplica serializes the replica subtree (with its optional two-phase
// cap and shard-hosted sensor fragments) for shipment to a shard worker.
func encodeReplica(root Node, split *Aggregate, frags []wireFragment) ([]byte, error) {
	w, err := encodeNode(root)
	if err != nil {
		return nil, err
	}
	rep := wireReplica{Root: w, Fragments: frags}
	if split != nil {
		rep.Partial = &wirePartial{GroupBy: split.GroupBy, Specs: split.Specs}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rep); err != nil {
		return nil, fmt.Errorf("plan: encode replica spec: %w", err)
	}
	return buf.Bytes(), nil
}

// scanName is the wire name of the i-th scan (plan walk order); the
// coordinator's RemoteHeads and the worker's registered heads agree on it
// because both sides walk the identical decoded tree.
func scanName(i int) string { return fmt.Sprintf("s%d", i) }

// resultSink ships replica output back to the coordinator. Tuples are
// gob-copied during send, so nothing is retained.
type resultSink struct {
	schema *data.Schema
	send   stream.ResultSender
}

func (r *resultSink) Schema() *data.Schema { return r.schema }

func (r *resultSink) Push(t data.Tuple) {
	batch := [1]data.Tuple{t}
	_ = r.send(batch[:])
}

func (r *resultSink) PushBatch(ts []data.Tuple) { _ = r.send(ts) }

// DeployReplica is the stream.DeployFunc of a shard worker: it decodes a
// wire replica spec, compiles the subtree's operators (capped by a
// PartialAggregate for two-phase plans) with results shipping back through
// send, instantiates any shard-hosted sensor fragments against the
// receiver's SensorHosts registry, optionally restores a failover
// checkpoint into them, and returns the scan heads, replica advancers
// (windows first, then fragment runners), and stateful operators for the
// worker's frame loop to feed, tick, and checkpoint.
//
// The checkpointer order is deterministic — the two-phase cap first, then
// the stateful operators in compile (depth-first) order over the decoded
// tree, then the fragment runners in wire order — so a checkpoint taken
// from one deployment of the spec restores into any other, in any process.
//
// The receiver may be nil: an empty registry, rejecting any spec that
// carries sensor fragments (fragment-free specs deploy as before).
func (h *SensorHosts) DeployReplica(spec []byte, shard int, state []byte, send stream.ResultSender) (map[string]stream.Operator, []stream.Advancer, []stream.Checkpointer, error) {
	var rep wireReplica
	if err := gob.NewDecoder(bytes.NewReader(spec)).Decode(&rep); err != nil {
		return nil, nil, nil, fmt.Errorf("plan: decode replica spec: %w", err)
	}
	root, err := decodeNode(rep.Root)
	if err != nil {
		return nil, nil, nil, err
	}
	sinkSchema := root.Schema()
	if rep.Partial != nil {
		// Two-phase: the replica ships partial-state rows, not plan rows.
		sinkSchema, err = stream.AggPartialSchema(root.Schema(), rep.Partial.GroupBy, rep.Partial.Specs)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	var cks []stream.Checkpointer
	var out stream.Operator = &resultSink{schema: sinkSchema, send: send}
	if rep.Partial != nil {
		pa, err := stream.NewPartialAggregate(out, root.Schema(), rep.Partial.GroupBy, rep.Partial.Specs)
		if err != nil {
			return nil, nil, nil, err
		}
		out = pa
		cks = append(cks, pa)
	}
	idx := map[*Scan]int{}
	for i, sc := range Scans(root) {
		idx[sc] = i
	}
	heads := map[string]stream.Operator{}
	var advs []stream.Advancer
	c := &compiler{
		track: func(a stream.Advancer) { advs = append(advs, a) },
		scanHead: func(x *Scan, head stream.Operator) error {
			heads[scanName(idx[x])] = head
			return nil
		},
		ck: func(k stream.Checkpointer) { cks = append(cks, k) },
	}
	if err := c.compile(root, out); err != nil {
		return nil, nil, nil, err
	}
	runners, err := h.buildFragRunners(rep.Fragments, shard, heads)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, r := range runners {
		advs = append(advs, r)
		cks = append(cks, r)
	}
	if err := stream.RestoreCheckpoint(cks, state); err != nil {
		return nil, nil, nil, err
	}
	return heads, advs, cks, nil
}

// DeployReplica is the fragment-free stream.DeployFunc (an empty host
// registry); kept as the package-level entry point for callers that never
// host sensor fragments.
func DeployReplica(spec []byte, shard int, state []byte, send stream.ResultSender) (map[string]stream.Operator, []stream.Advancer, []stream.Checkpointer, error) {
	return (*SensorHosts)(nil).DeployReplica(spec, shard, state, send)
}

// NewWorker starts a shard worker hosting remote plan replicas on addr —
// the process-level entry point cmd/shardworker and the multi-node tests
// build on. Workers built this way host no sensor sources; see
// NewSensorWorker.
func NewWorker(addr string) (*stream.ShardWorker, error) {
	return NewSensorWorker(addr, nil)
}

// NewSensorWorker starts a shard worker that additionally hosts the sensor
// sources registered in hosts: deploy specs carrying sensor fragments over
// those sources run their partitioned epochs inside this worker, feeding
// the co-resident shard replicas directly (the paper's in-network
// execution, at the worker holding the motes).
func NewSensorWorker(addr string, hosts *SensorHosts) (*stream.ShardWorker, error) {
	return stream.NewShardWorker(addr, hosts.DeployReplica)
}
