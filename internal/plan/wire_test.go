package plan

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// wireTestPlan builds one plan using every shippable node kind: windowed
// scans, select, project (computed column), equi-join with residual,
// grouped aggregate with HAVING, distinct.
func wireTestPlan(t *testing.T) Node {
	t.Helper()
	s1 := data.NewSchema("S1", data.Col("a", data.TInt), data.Col("b", data.TInt))
	s1.IsStream = true
	s2 := data.NewSchema("S2", data.Col("x", data.TInt), data.Col("y", data.TInt))
	s2.IsStream = true
	l := NewScan("S1", "t1", s1, &sql.WindowSpec{Kind: sql.WindowRange, Range: 5 * time.Second}, 10, false)
	r := NewScan("S2", "t2", s2, nil, 10, false)
	var fl Node = &Select{In: l, Pred: expr.Bin{Op: expr.OpGe, L: expr.C("t1.a"), R: expr.L(0)}}
	j := NewJoin(fl, r, []string{"t1.a"}, []string{"t2.x"},
		expr.Bin{Op: expr.OpNe, L: expr.C("t1.b"), R: expr.L(99)})
	p, err := NewProject(j, []stream.ProjectItem{
		{Expr: expr.C("t1.a")},
		{Expr: expr.Bin{Op: expr.OpAdd, L: expr.C("t1.b"), R: expr.L(1)}, Alias: "b1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregate(p, []string{"t1.a"},
		[]stream.AggSpec{{Kind: stream.AggCount, Alias: "n"},
			{Kind: stream.AggSum, Arg: expr.C("b1"), Alias: "s"}},
		expr.Bin{Op: expr.OpGe, L: expr.C("n"), R: expr.L(1)})
	if err != nil {
		t.Fatal(err)
	}
	return &Distinct{In: agg}
}

// TestWireReplicaRoundtrip ships the all-kinds plan through the wire spec
// and drives the rebuilt replica: the decoded pipeline must produce the
// same rows as a locally compiled one.
func TestWireReplicaRoundtrip(t *testing.T) {
	root := wireTestPlan(t)
	spec, err := encodeReplica(root, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var results []data.Tuple
	heads, advs, _, err := DeployReplica(spec, 0, nil, func(ts []data.Tuple) error {
		for _, tu := range ts {
			results = append(results, tu.Clone())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) != 2 {
		t.Fatalf("heads = %d, want one per scan", len(heads))
	}
	if len(advs) != 1 {
		t.Fatalf("advs = %d, want the one windowed scan", len(advs))
	}

	// Local reference pipeline over the same tree.
	col := stream.NewCollector(root.Schema())
	var refHeads []stream.Operator
	c := &compiler{
		track: func(stream.Advancer) {},
		scanHead: func(x *Scan, head stream.Operator) error {
			refHeads = append(refHeads, head)
			return nil
		},
	}
	if err := c.compile(root, col); err != nil {
		t.Fatal(err)
	}

	mk := func(vals ...int64) data.Tuple {
		vs := make([]data.Value, len(vals))
		for i, v := range vals {
			vs[i] = data.Int(v)
		}
		return data.Tuple{Vals: vs, TS: vtime.Time(time.Second)}
	}
	for i := int64(0); i < 6; i++ {
		heads["s0"].Push(mk(i%3, i).Clone())
		refHeads[0].Push(mk(i%3, i).Clone())
		heads["s1"].Push(mk(i%3, i*10).Clone())
		refHeads[1].Push(mk(i%3, i*10).Clone())
	}
	want := col.Snapshot()
	stream.SortTuples(want)
	stream.SortTuples(results)
	if len(results) != len(want) || len(want) == 0 {
		t.Fatalf("replica emitted %d rows, reference %d", len(results), len(want))
	}
	for i := range want {
		if !results[i].EqualVals(want[i]) {
			t.Fatalf("row %d: replica %v, reference %v", i, results[i], want[i])
		}
	}
}

// TestWireReplicaTwoPhase: a spec with a partial cap builds the
// PartialAggregate stage (partial-schema rows come back).
func TestWireReplicaTwoPhase(t *testing.T) {
	s1 := data.NewSchema("S1", data.Col("a", data.TInt), data.Col("b", data.TInt))
	s1.IsStream = true
	scan := NewScan("S1", "t1", s1, nil, 10, false)
	specs := []stream.AggSpec{{Kind: stream.AggSum, Arg: expr.C("t1.b"), Alias: "s"}}
	agg, err := NewAggregate(scan, nil, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := encodeReplica(scan, agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []data.Tuple
	heads, _, _, err := DeployReplica(spec, 0, nil, func(ts []data.Tuple) error {
		for _, tu := range ts {
			got = append(got, tu.Clone())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	heads["s0"].Push(data.NewTuple(1, data.Int(1), data.Int(7)))
	partial, err := stream.AggPartialSchema(scan.Schema(), nil, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got[len(got)-1].Vals) != partial.Arity() {
		t.Fatalf("partial rows %v, want arity %d", got, partial.Arity())
	}
}

// fakeNode exercises the encode fail-closed path.
type fakeNode struct{ Distinct }

func TestWireEncodeUnknownNode(t *testing.T) {
	s1 := data.NewSchema("S1", data.Col("a", data.TInt))
	inner := NewScan("S1", "t", s1, nil, 1, false)
	if _, err := encodeReplica(&fakeNode{Distinct{In: inner}}, nil, nil); err == nil {
		t.Fatal("unknown node kind must fail to encode")
	}
	if _, err := encodeReplica(&Select{In: &fakeNode{Distinct{In: inner}}}, nil, nil); err == nil {
		t.Fatal("unknown child must fail to encode")
	}
}

func TestWireDecodeMalformed(t *testing.T) {
	cases := map[string]wireNode{
		"unknown kind":   {Kind: wireKind(99)},
		"scan no schema": {Kind: wireScan, Input: "S1"},
		"missing child":  {Kind: wireSelect},
		"join one child": {Kind: wireJoin, Children: []wireNode{{Kind: wireScan}}},
	}
	for name, w := range cases {
		if _, err := decodeNode(w); err == nil {
			t.Fatalf("%s: decode must fail", name)
		}
	}
}
