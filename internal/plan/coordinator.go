package plan

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"time"

	"aspen/internal/stream"
)

// Coordinator makes the coordinator process itself survivable. It tracks
// every named deployment on one engine and persists the lot — logical
// plans, compile options, the live shard placement, and a consistent
// checkpoint of every operator's state — to a single snapshot file. A
// restarted coordinator rehydrates its standing queries from that file and
// resumes from the last committed checkpoint, closing the survivability
// gap PR 5 left: workers could die and recover, but the coordinator was a
// single point of total loss.
//
// # Snapshot format
//
// One file, written atomically (temp file + rename on the same
// directory):
//
//	offset  size  field
//	0       8     magic "ASPENSNP"
//	8       4     format version (little-endian u32, currently 1)
//	12      4     CRC-32 (IEEE) of the body
//	16      —     body: gob-encoded snapFile
//
// The body holds one record per deployment: the wire-encoded plan tree
// (the same wireNode mirror shard workers deploy from), the presentation
// spec (ORDER BY / LIMIT / display), the compile options, the per-shard
// placement and operator states, and the coordinator-side state (serial
// pipeline or two-phase spine plus the materialized result). Load
// verifies magic, version, and checksum before decoding, so a truncated,
// corrupted, or stale-format file is a clean error — never a panic or a
// silently partial rehydration.
type Coordinator struct {
	eng   *stream.Engine
	path  string
	share *Sharing

	mu   sync.Mutex
	deps map[string]*coordEntry
}

type coordEntry struct {
	dep   *Deployment
	built *Built
	opts  CompileOptions
}

const (
	snapMagic   = "ASPENSNP"
	snapVersion = 1
)

// snapFile is the gob body of a coordinator snapshot.
type snapFile struct {
	Deployments []snapDeployment
}

// snapDeployment is one standing query's durable record.
type snapDeployment struct {
	Name string

	// Logical plan and presentation (Built).
	Root         wireNode
	OrderBy      []stream.OrderSpec
	Limit        int
	Display      string
	SamplePeriod time.Duration

	// Compile options the deployment ran with.
	Parallelism     int
	Nodes           []string
	Failover        bool
	CheckpointEvery int
	StallTimeout    time.Duration

	// Live topology and state at the snapshot's consistency point.
	Placement []string
	Shards    map[int][]byte
	Coord     []byte
}

// NewCoordinator tracks deployments on eng and snapshots them to path.
func NewCoordinator(eng *stream.Engine, path string) *Coordinator {
	return &Coordinator{eng: eng, path: path, deps: map[string]*coordEntry{}}
}

// EnableSharing makes every compile this coordinator performs — Deploy
// and snapshot Restore alike — share plan prefixes through s (see
// Sharing). Set it before the first Deploy and keep it for the
// coordinator's lifetime: a snapshot Saved with sharing enabled must
// Restore with it enabled (and vice versa), so the coordinator-side
// checkpoint sequence both compiles produce lines up. Shared chain
// window state is not yet in snapshots — a restored query's shared
// window starts empty and refills from live input (see ROADMAP).
func (c *Coordinator) EnableSharing(s *Sharing) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.share = s
}

// Deploy compiles b under name and tracks it for snapshots. Names must be
// unique among live deployments.
func (c *Coordinator) Deploy(name string, b *Built, opts CompileOptions) (*Deployment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.deps[name]; ok {
		return nil, fmt.Errorf("plan: deployment %q already exists", name)
	}
	if opts.Sharing == nil {
		opts.Sharing = c.share
	}
	dep, err := CompileStreamOpts(b, c.eng, opts)
	if err != nil {
		return nil, err
	}
	c.deps[name] = &coordEntry{dep: dep, built: b, opts: opts}
	return dep, nil
}

// Deployment returns a tracked deployment by name.
func (c *Coordinator) Deployment(name string) (*Deployment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.deps[name]
	if !ok {
		return nil, false
	}
	return e.dep, true
}

// Built returns the logical plan a tracked deployment compiled from.
func (c *Coordinator) Built(name string) (*Built, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.deps[name]
	if !ok {
		return nil, false
	}
	return e.built, true
}

// Names lists tracked deployments, sorted.
func (c *Coordinator) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.deps))
	for n := range c.deps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Drop closes and forgets a tracked deployment.
func (c *Coordinator) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.deps[name]
	if !ok {
		return fmt.Errorf("plan: no deployment %q", name)
	}
	e.dep.Close()
	delete(c.deps, name)
	return nil
}

// Rescale moves one tracked deployment onto a new worker topology (see
// Deployment.Rescale) and records the topology for future snapshots.
func (c *Coordinator) Rescale(name string, nodes []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.deps[name]
	if !ok {
		return fmt.Errorf("plan: no deployment %q", name)
	}
	if err := e.dep.Rescale(nodes); err != nil {
		return err
	}
	e.opts.Nodes = nodes
	return nil
}

// Close tears down every tracked deployment (the snapshot file stays).
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.deps {
		e.dep.Close()
	}
	c.deps = map[string]*coordEntry{}
}

// Save checkpoints every tracked deployment at a quiescent barrier and
// atomically replaces the snapshot file. The snapshot is the last
// committed state a restarted coordinator resumes from; input pushed
// after a Save and before a crash is lost to the restarted coordinator
// (sources replay from their own cursors, as in the paper's model).
func (c *Coordinator) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var f snapFile
	names := make([]string, 0, len(c.deps))
	for n := range c.deps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		e := c.deps[name]
		if len(e.dep.RemoteFragments) > 0 {
			// Shard-hosted sensor fragments don't survive a coordinator
			// restart (the documented contract for sensor work): their live
			// engines and host registries aren't part of the durable state,
			// so persisting the stream side alone would rehydrate a replica
			// missing its fragment runners. Skip; re-run these queries.
			continue
		}
		root, err := encodeNode(e.built.Root)
		if err != nil {
			return fmt.Errorf("plan: snapshot %q: %w", name, err)
		}
		e.dep.Flush()
		shards, coord, err := e.dep.captureStates()
		if err != nil {
			return fmt.Errorf("plan: snapshot %q: %w", name, err)
		}
		f.Deployments = append(f.Deployments, snapDeployment{
			Name:            name,
			Root:            root,
			OrderBy:         e.built.OrderBy,
			Limit:           e.built.Limit,
			Display:         e.built.Display,
			SamplePeriod:    e.built.SamplePeriod,
			Parallelism:     e.opts.Parallelism,
			Nodes:           e.opts.Nodes,
			Failover:        e.opts.Failover,
			CheckpointEvery: e.opts.CheckpointEvery,
			StallTimeout:    e.opts.StallTimeout,
			Placement:       e.dep.Placement(),
			Shards:          shards,
			Coord:           coord,
		})
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&f); err != nil {
		return fmt.Errorf("plan: snapshot encode: %w", err)
	}
	buf := make([]byte, 0, 16+body.Len())
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body.Bytes()))
	buf = append(buf, body.Bytes()...)
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("plan: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("plan: snapshot commit: %w", err)
	}
	return nil
}

// Restore rehydrates the coordinator from its snapshot file: every
// recorded deployment recompiles against the engine with its shards
// pinned to the snapshotted placement and every operator restored from
// the snapshotted state. A missing file is a fresh start (no error). Any
// validation or compile failure leaves the coordinator empty but alive —
// partially restored deployments are torn down, never half-served.
//
// Restore does not replay table loads or input pushed after the snapshot;
// callers re-attach sources, which resume from their own cursors.
func (c *Coordinator) Restore() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.deps) != 0 {
		return fmt.Errorf("plan: Restore on a coordinator with %d live deployments", len(c.deps))
	}
	raw, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("plan: snapshot read: %w", err)
	}
	f, err := decodeSnapshot(raw)
	if err != nil {
		return err
	}
	restored := map[string]*coordEntry{}
	fail := func(err error) error {
		for _, e := range restored {
			e.dep.Close()
		}
		return err
	}
	for _, sd := range f.Deployments {
		root, err := decodeNode(sd.Root)
		if err != nil {
			return fail(fmt.Errorf("plan: snapshot %q: %w", sd.Name, err))
		}
		b := &Built{Root: root, OrderBy: sd.OrderBy, Limit: sd.Limit,
			Display: sd.Display, SamplePeriod: sd.SamplePeriod}
		opts := CompileOptions{
			Parallelism:     sd.Parallelism,
			Nodes:           sd.Nodes,
			Failover:        sd.Failover,
			CheckpointEvery: sd.CheckpointEvery,
			StallTimeout:    sd.StallTimeout,
			Sharing:         c.share,
			restoreShards:   sd.Shards,
			restoreCoord:    sd.Coord,
			restoreLoc:      sd.Placement,
		}
		dep, err := CompileStreamOpts(b, c.eng, opts)
		if err != nil {
			return fail(fmt.Errorf("plan: rehydrate %q: %w", sd.Name, err))
		}
		opts.restoreShards, opts.restoreCoord, opts.restoreLoc = nil, nil, nil
		restored[sd.Name] = &coordEntry{dep: dep, built: b, opts: opts}
	}
	c.deps = restored
	return nil
}

// decodeSnapshot validates a snapshot file image and decodes its body.
func decodeSnapshot(raw []byte) (*snapFile, error) {
	if len(raw) < 16 {
		return nil, fmt.Errorf("plan: snapshot truncated: %d bytes, need at least 16", len(raw))
	}
	if string(raw[:8]) != snapMagic {
		return nil, fmt.Errorf("plan: snapshot has bad magic %q", raw[:8])
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != snapVersion {
		return nil, fmt.Errorf("plan: snapshot format version %d, this build reads %d", v, snapVersion)
	}
	body := raw[16:]
	if sum := crc32.ChecksumIEEE(body); sum != binary.LittleEndian.Uint32(raw[12:16]) {
		return nil, fmt.Errorf("plan: snapshot checksum mismatch (truncated or corrupted body)")
	}
	var f snapFile
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("plan: snapshot decode: %w", err)
	}
	return &f, nil
}
