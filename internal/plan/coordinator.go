package plan

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// Coordinator makes the coordinator process itself survivable. It tracks
// every named deployment on one engine and persists the lot — logical
// plans, compile options, the live shard placement, and a consistent
// checkpoint of every operator's state — to a single snapshot file. A
// restarted coordinator rehydrates its standing queries from that file and
// resumes from the last committed checkpoint, closing the survivability
// gap PR 5 left: workers could die and recover, but the coordinator was a
// single point of total loss.
//
// # Snapshot format
//
// One file, written atomically (temp file + rename on the same
// directory, both fsynced, and the directory synced across the rename):
//
//	offset  size  field
//	0       8     magic "ASPENSNP"
//	8       4     format version (little-endian u32, currently 2)
//	12      4     CRC-32 (IEEE) of the body
//	16      —     body: gob-encoded snapFile
//
// The body holds one record per deployment: the wire-encoded plan tree
// (the same wireNode mirror shard workers deploy from), the presentation
// spec (ORDER BY / LIMIT / display), the compile options, the per-shard
// placement and operator states, the coordinator-side state (serial
// pipeline or two-phase spine plus the materialized result), and — new
// in version 2 — the deployment's sensor fragment specs with the names
// of those deployed remotely, plus one window state per shared prefix
// chain and the names of any deployments the Save had to skip. Version 1
// snapshots still load (their new fields decode zero: no fragments, no
// chain state, no skips — exactly what a v1 Save could record). Load
// verifies magic, version, and checksum before decoding, so a truncated,
// corrupted, or stale-format file is a clean error — never a panic or a
// silently partial rehydration.
type Coordinator struct {
	eng   *stream.Engine
	path  string
	share *Sharing

	// hosts/tick/now describe the runtime a Restore compiles into (see
	// SetRuntime): the sensor engines this process hosts, the engine tick
	// cadence, and the scheduler clock — what fragment-carrying
	// deployments need to recompile.
	hosts *SensorHosts
	tick  time.Duration
	now   func() vtime.Time

	mu   sync.Mutex
	deps map[string]*coordEntry
}

type coordEntry struct {
	dep   *Deployment
	built *Built
	opts  CompileOptions
}

const (
	snapMagic = "ASPENSNP"
	// snapVersion is the format this build writes; snapVersionMin..snapVersion
	// all load (older bodies decode with the newer fields zero).
	snapVersion    = 2
	snapVersionMin = 1
)

// snapFile is the gob body of a coordinator snapshot.
type snapFile struct {
	Deployments []snapDeployment
	// Chains maps each shared prefix chain's canonical key to its base
	// window's encoded state, captured once per chain however many
	// deployments attach to it (v2).
	Chains map[string][]byte
	// Skipped names deployments this snapshot could not capture (v2);
	// Save and Restore both surface the list so a skip is never silent.
	Skipped []string
}

// snapDeployment is one standing query's durable record.
type snapDeployment struct {
	Name string

	// Logical plan and presentation (Built).
	Root         wireNode
	OrderBy      []stream.OrderSpec
	Limit        int
	Display      string
	SamplePeriod time.Duration

	// Compile options the deployment ran with.
	Parallelism     int
	Nodes           []string
	Failover        bool
	CheckpointEvery int
	StallTimeout    time.Duration

	// Live topology and state at the snapshot's consistency point.
	Placement []string
	Shards    map[int][]byte
	Coord     []byte

	// Sensor fragments feeding the plan's derived inputs (v2): the full
	// specs, and the names of those that deployed inside shard replicas
	// at snapshot time — the shard states above carry one runner state
	// per RemoteFrags entry, so a rehydrating compile must re-deploy
	// exactly those fragments in this order.
	Fragments   []snapFragment
	RemoteFrags []string
}

// NewCoordinator tracks deployments on eng and snapshots them to path.
func NewCoordinator(eng *stream.Engine, path string) *Coordinator {
	return &Coordinator{eng: eng, path: path, deps: map[string]*coordEntry{}}
}

// EnableSharing makes every compile this coordinator performs — Deploy
// and snapshot Restore alike — share plan prefixes through s (see
// Sharing). Set it before the first Deploy and keep it for the
// coordinator's lifetime: a snapshot Saved with sharing enabled must
// Restore with it enabled (and vice versa), so the coordinator-side
// checkpoint sequence both compiles produce lines up. Save captures each
// shared chain's window state once per chain, and Restore rebuilds the
// chains warm before re-attaching queries — a restored query sees
// exactly the window (and the later expiry deletions) an uninterrupted
// run would have.
func (c *Coordinator) EnableSharing(s *Sharing) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.share = s
}

// SetRuntime describes the process a Restore compiles into: the sensor
// engines it hosts, the stream engine's tick cadence, and the scheduler
// clock. Fragment-carrying deployments need all three to recompile
// (core.Config wires it automatically); a coordinator without it can
// still restore pure stream deployments.
func (c *Coordinator) SetRuntime(hosts *SensorHosts, tick time.Duration, now func() vtime.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hosts, c.tick, c.now = hosts, tick, now
}

// Fragments returns the sensor fragment specs a tracked deployment was
// compiled with (after a Restore: the rehydrated specs). The caller runs
// central epoch runners for every fragment not named in the deployment's
// RemoteFragments.
func (c *Coordinator) Fragments(name string) []SensorFragment {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.deps[name]
	if !ok {
		return nil
	}
	return e.opts.Fragments
}

// Deploy compiles b under name and tracks it for snapshots. Names must be
// unique among live deployments.
func (c *Coordinator) Deploy(name string, b *Built, opts CompileOptions) (*Deployment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.deps[name]; ok {
		return nil, fmt.Errorf("plan: deployment %q already exists", name)
	}
	if opts.Sharing == nil {
		opts.Sharing = c.share
	}
	dep, err := CompileStreamOpts(b, c.eng, opts)
	if err != nil {
		return nil, err
	}
	c.deps[name] = &coordEntry{dep: dep, built: b, opts: opts}
	return dep, nil
}

// Deployment returns a tracked deployment by name.
func (c *Coordinator) Deployment(name string) (*Deployment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.deps[name]
	if !ok {
		return nil, false
	}
	return e.dep, true
}

// Built returns the logical plan a tracked deployment compiled from.
func (c *Coordinator) Built(name string) (*Built, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.deps[name]
	if !ok {
		return nil, false
	}
	return e.built, true
}

// Names lists tracked deployments, sorted.
func (c *Coordinator) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.deps))
	for n := range c.deps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Drop closes and forgets a tracked deployment.
func (c *Coordinator) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.deps[name]
	if !ok {
		return fmt.Errorf("plan: no deployment %q", name)
	}
	e.dep.Close()
	delete(c.deps, name)
	return nil
}

// Rescale moves one tracked deployment onto a new worker topology (see
// Deployment.Rescale) and records the topology for future snapshots.
func (c *Coordinator) Rescale(name string, nodes []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.deps[name]
	if !ok {
		return fmt.Errorf("plan: no deployment %q", name)
	}
	if err := e.dep.Rescale(nodes); err != nil {
		return err
	}
	e.opts.Nodes = nodes
	return nil
}

// Close tears down every tracked deployment (the snapshot file stays).
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.deps {
		e.dep.Close()
	}
	c.deps = map[string]*coordEntry{}
}

// Save checkpoints every tracked deployment at a quiescent barrier and
// atomically replaces the snapshot file. The snapshot is the last
// committed state a restarted coordinator resumes from; input pushed
// after a Save and before a crash is lost to the restarted coordinator
// (sources replay from their own cursors, as in the paper's model).
//
// Fragment-carrying deployments are captured in full — the fragment
// specs, which fragments ran remotely, and the runner states inside the
// shard checkpoints — and shared prefix chains contribute their window
// state once per chain. The returned slice names any deployment the
// snapshot could NOT capture (today: one compiled against a foreign
// Sharing registry this coordinator cannot rebuild); the names are also
// recorded in the snapshot so Restore surfaces the same list. An empty
// slice means the snapshot is complete.
func (c *Coordinator) Save() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var f snapFile
	names := make([]string, 0, len(c.deps))
	for n := range c.deps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		e := c.deps[name]
		if e.opts.Sharing != nil && e.opts.Sharing != c.share {
			// Compiled against a Sharing registry that is not the
			// coordinator's own: Restore compiles with c.share, so the
			// chain attachments (and the checkpoint sequence they shape)
			// could not be rebuilt. Record the skip — never drop silently.
			f.Skipped = append(f.Skipped, name)
			continue
		}
		root, err := encodeNode(e.built.Root)
		if err != nil {
			return nil, fmt.Errorf("plan: snapshot %q: %w", name, err)
		}
		var frags []snapFragment
		for i := range e.opts.Fragments {
			sf, err := encodeSnapFragment(&e.opts.Fragments[i])
			if err != nil {
				return nil, fmt.Errorf("plan: snapshot %q: %w", name, err)
			}
			frags = append(frags, sf)
		}
		e.dep.Flush()
		shards, coord, err := e.dep.captureStates()
		if err != nil {
			return nil, fmt.Errorf("plan: snapshot %q: %w", name, err)
		}
		f.Deployments = append(f.Deployments, snapDeployment{
			Name:            name,
			Root:            root,
			OrderBy:         e.built.OrderBy,
			Limit:           e.built.Limit,
			Display:         e.built.Display,
			SamplePeriod:    e.built.SamplePeriod,
			Parallelism:     e.opts.Parallelism,
			Nodes:           e.opts.Nodes,
			Failover:        e.opts.Failover,
			CheckpointEvery: e.opts.CheckpointEvery,
			StallTimeout:    e.opts.StallTimeout,
			Placement:       e.dep.Placement(),
			Shards:          shards,
			Coord:           coord,
			Fragments:       frags,
			RemoteFrags:     e.dep.RemoteFragments,
		})
	}
	if c.share != nil {
		chains, err := c.share.CaptureChains()
		if err != nil {
			return nil, err
		}
		f.Chains = chains
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&f); err != nil {
		return nil, fmt.Errorf("plan: snapshot encode: %w", err)
	}
	buf := make([]byte, 0, 16+body.Len())
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body.Bytes()))
	buf = append(buf, body.Bytes()...)
	tmp := c.path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return nil, fmt.Errorf("plan: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("plan: snapshot commit: %w", err)
	}
	if err := syncDir(filepath.Dir(c.path)); err != nil {
		return nil, fmt.Errorf("plan: snapshot commit: %w", err)
	}
	return f.Skipped, nil
}

// writeFileSync writes data to path and fsyncs it before close, so the
// bytes are durable before the commit rename makes them reachable.
func writeFileSync(path string, data []byte) error {
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fh.Write(data); err != nil {
		fh.Close()
		os.Remove(path)
		return err
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		os.Remove(path)
		return err
	}
	if err := fh.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable: the
// rename itself lives in the directory, so without this a crash right
// after Save could surface as a missing (or stale) snapshot file.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	fh, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer fh.Close()
	return fh.Sync()
}

// Restore rehydrates the coordinator from its snapshot file: every
// recorded deployment recompiles against the engine with its shards
// pinned to the snapshotted placement and every operator — shared chain
// windows and fragment runners included — restored from the snapshotted
// state. A missing file is a fresh start (no error). Any validation or
// compile failure leaves the coordinator empty but alive — partially
// restored deployments are torn down, never half-served.
//
// A fragment-carrying deployment whose snapshotted workers are absent at
// restore time degrades instead of failing: first all shards pull
// in-process with the fragments still pinned (exact state, needs this
// process to host the sources — see SetRuntime), and as the last resort
// the fragments fall back to central runners (the caller restarts them
// from Fragments; the stream state still restores exactly). The returned
// slice surfaces the names Save recorded as skipped — queries the
// snapshot never captured, to be re-deployed by the operator.
//
// Restore does not replay table loads or input pushed after the snapshot;
// callers re-attach sources, which resume from their own cursors.
func (c *Coordinator) Restore() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.deps) != 0 {
		return nil, fmt.Errorf("plan: Restore on a coordinator with %d live deployments", len(c.deps))
	}
	raw, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("plan: snapshot read: %w", err)
	}
	f, err := decodeSnapshot(raw)
	if err != nil {
		return nil, err
	}
	if len(f.Chains) > 0 && c.share == nil {
		return nil, fmt.Errorf("plan: snapshot carries %d shared-chain states but sharing is not enabled (EnableSharing before Restore)", len(f.Chains))
	}
	if c.share != nil {
		c.share.primeRestore(f.Chains)
		defer c.share.finishRestore()
	}
	restored := map[string]*coordEntry{}
	fail := func(err error) ([]string, error) {
		for _, e := range restored {
			e.dep.Close()
		}
		return nil, err
	}
	for _, sd := range f.Deployments {
		root, err := decodeNode(sd.Root)
		if err != nil {
			return fail(fmt.Errorf("plan: snapshot %q: %w", sd.Name, err))
		}
		b := &Built{Root: root, OrderBy: sd.OrderBy, Limit: sd.Limit,
			Display: sd.Display, SamplePeriod: sd.SamplePeriod}
		var frags []SensorFragment
		for _, sf := range sd.Fragments {
			fr, err := decodeSnapFragment(sf)
			if err != nil {
				return fail(fmt.Errorf("plan: snapshot %q: %w", sd.Name, err))
			}
			frags = append(frags, fr)
		}
		opts := CompileOptions{
			Parallelism:        sd.Parallelism,
			Nodes:              sd.Nodes,
			Failover:           sd.Failover,
			CheckpointEvery:    sd.CheckpointEvery,
			StallTimeout:       sd.StallTimeout,
			Sharing:            c.share,
			Fragments:          frags,
			SensorHosts:        c.hosts,
			TickPeriod:         c.tick,
			restoreShards:      sd.Shards,
			restoreCoord:       sd.Coord,
			restoreLoc:         sd.Placement,
			restoreForceFrags:  true,
			restoreRemoteFrags: sd.RemoteFrags,
		}
		if c.now != nil {
			opts.Now = c.now()
		}
		dep, err := c.rehydrate(b, opts, &sd)
		if err != nil {
			return fail(fmt.Errorf("plan: rehydrate %q: %w", sd.Name, err))
		}
		opts.restoreShards, opts.restoreCoord, opts.restoreLoc = nil, nil, nil
		opts.restoreForceFrags, opts.restoreRemoteFrags = false, nil
		restored[sd.Name] = &coordEntry{dep: dep, built: b, opts: opts}
	}
	c.deps = restored
	return f.Skipped, nil
}

// rehydrate compiles one snapshotted deployment, degrading through the
// documented fallbacks when the saved shape cannot come back: (1) as
// saved; (2) every shard in-process, fragments still pinned remote-style
// with exact runner state (workers gone, sources hosted here); (3) every
// shard in-process with the fragment runner states trimmed off the shard
// checkpoints — the fragments return to central runners rather than the
// deployment being lost. The first error is the one reported when every
// tier fails.
func (c *Coordinator) rehydrate(b *Built, opts CompileOptions, sd *snapDeployment) (*Deployment, error) {
	dep, err0 := CompileStreamOpts(b, c.eng, opts)
	if err0 == nil {
		return dep, nil
	}
	anyRemote := false
	for _, h := range sd.Placement {
		anyRemote = anyRemote || h != ""
	}
	if anyRemote {
		home := opts
		home.restoreLoc = make([]string, sd.Parallelism)
		if dep, err := CompileStreamOpts(b, c.eng, home); err == nil {
			return dep, nil
		}
	}
	if len(sd.RemoteFrags) > 0 {
		central := opts
		central.restoreLoc = make([]string, sd.Parallelism)
		central.restoreRemoteFrags = nil
		central.restoreShards = make(map[int][]byte, len(sd.Shards))
		for j, st := range sd.Shards {
			trimmed, err := stream.TrimOpaqueTail(st, len(sd.RemoteFrags))
			if err != nil {
				return nil, err0
			}
			central.restoreShards[j] = trimmed
		}
		if dep, err := CompileStreamOpts(b, c.eng, central); err == nil {
			return dep, nil
		}
	}
	return nil, err0
}

// decodeSnapshot validates a snapshot file image and decodes its body.
func decodeSnapshot(raw []byte) (*snapFile, error) {
	if len(raw) < 16 {
		return nil, fmt.Errorf("plan: snapshot truncated: %d bytes, need at least 16", len(raw))
	}
	if string(raw[:8]) != snapMagic {
		return nil, fmt.Errorf("plan: snapshot has bad magic %q", raw[:8])
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v < snapVersionMin || v > snapVersion {
		return nil, fmt.Errorf("plan: snapshot format version %d, this build reads %d..%d", v, snapVersionMin, snapVersion)
	}
	body := raw[16:]
	if sum := crc32.ChecksumIEEE(body); sum != binary.LittleEndian.Uint32(raw[12:16]) {
		return nil, fmt.Errorf("plan: snapshot checksum mismatch (truncated or corrupted body)")
	}
	var f snapFile
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("plan: snapshot decode: %w", err)
	}
	return &f, nil
}
