//go:build race

package plan

// raceEnabled mirrors the race detector into the worker binaries the
// distributed process test builds, so both sides of the wire run checked.
const raceEnabled = true
