package plan

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

func newFragTestHosts() *SensorHosts {
	nw := sensornet.Grid(sensornet.DefaultConfig(), 3, 3, 100, 3,
		sensornet.SensorTemperature, sensornet.SensorLight)
	env := sensor.EnvFunc(func(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
		return float64(n.ID) + float64(uint8(kind)), true
	})
	eng := sensor.NewEngine(nw, env)
	h := NewSensorHosts()
	h.Add("light", eng)
	h.Add("temperature", eng)
	return h
}

type collectOp struct {
	schema *data.Schema
	got    []data.Tuple
}

func (c *collectOp) Schema() *data.Schema { return c.schema }
func (c *collectOp) Push(t data.Tuple)    { c.got = append(c.got, t.Clone()) }

// TestFragmentCheckpointRoundTrip advances a select fragment runner, moves
// its checkpoint into a fresh runner, and checks the restored runner
// resumes at the anchor — regenerating exactly the not-yet-checkpointed
// epochs and none of the checkpointed ones.
func TestFragmentCheckpointRoundTrip(t *testing.T) {
	h := newFragTestHosts()
	f := &SensorFragment{Name: "d", Sources: []string{"light"},
		Select: &sensor.SelectQuery{Rel: "l", Sensor: sensornet.SensorLight, Period: time.Second}}
	w, err := encodeFragment(f, "s0", []int{1}, 2, vtime.Time(1*vtime.Second))
	if err != nil {
		t.Fatal(err)
	}

	sink := &collectOp{schema: sensor.ReadingSchema("l")}
	r1, err := h.buildFragRunners([]wireFragment{w}, 0, map[string]stream.Operator{"s0": sink})
	if err != nil {
		t.Fatal(err)
	}
	r1[0].Advance(vtime.Time(3 * vtime.Second)) // epochs at 1s, 2s, 3s
	ck := r1[0].CheckpointState()
	upto := len(sink.got)
	if upto == 0 {
		t.Fatal("runner delivered nothing")
	}

	sink2 := &collectOp{schema: sensor.ReadingSchema("l")}
	r2, err := h.buildFragRunners([]wireFragment{w}, 0, map[string]stream.Operator{"s0": sink2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2[0].RestoreState(ck); err != nil {
		t.Fatal(err)
	}
	r2[0].Advance(vtime.Time(5 * vtime.Second)) // must regenerate 4s and 5s only
	for _, got := range sink2.got {
		if got.TS <= vtime.Time(3*vtime.Second) {
			t.Fatalf("restored runner regenerated checkpointed epoch %v", got.TS)
		}
	}
	r1[0].Advance(vtime.Time(5 * vtime.Second))
	cont := sink.got[upto:]
	if len(cont) != len(sink2.got) {
		t.Fatalf("restored runner delivered %d tuples, continuous run %d", len(sink2.got), len(cont))
	}
	for i := range cont {
		if !cont[i].EqualVals(sink2.got[i]) || cont[i].TS != sink2.got[i].TS {
			t.Fatalf("tuple %d: restored %v, continuous %v", i, sink2.got[i], cont[i])
		}
	}
}

// TestFragmentPartitionsUnionToWhole runs every shard's partition of one
// fragment over the same instant and checks the union is exactly the
// central epoch — no tuple lost, none duplicated.
func TestFragmentPartitionsUnionToWhole(t *testing.T) {
	h := newFragTestHosts()
	f := &SensorFragment{Name: "d", Sources: []string{"light"},
		Select: &sensor.SelectQuery{Rel: "l", Sensor: sensornet.SensorLight, Period: time.Second}}
	const p = 3
	w, err := encodeFragment(f, "s0", []int{0}, p, vtime.Time(1*vtime.Second))
	if err != nil {
		t.Fatal(err)
	}

	var union []data.Tuple
	for shard := 0; shard < p; shard++ {
		sink := &collectOp{schema: sensor.ReadingSchema("l")}
		rs, err := h.buildFragRunners([]wireFragment{w}, shard, map[string]stream.Operator{"s0": sink})
		if err != nil {
			t.Fatal(err)
		}
		rs[0].Advance(vtime.Time(1 * vtime.Second))
		union = append(union, sink.got...)
	}

	eng, _ := h.Engine("light")
	var central []data.Tuple
	eng.RunSelectEpoch(&sensor.SelectQuery{Rel: "l", Sensor: sensornet.SensorLight},
		vtime.Time(1*vtime.Second), func(t data.Tuple) { central = append(central, t.Clone()) })
	if len(union) != len(central) {
		t.Fatalf("partition union has %d tuples, central %d", len(union), len(central))
	}
	seen := map[int64]int{}
	for _, t := range union {
		seen[t.Vals[0].AsInt()]++
	}
	for _, c := range central {
		if seen[c.Vals[0].AsInt()] != 1 {
			t.Fatalf("mote %d appears %d times across partitions", c.Vals[0].AsInt(), seen[c.Vals[0].AsInt()])
		}
	}
}

// TestFragmentKeyEligibility covers the node-determined key rules per
// fragment kind.
func TestFragmentKeyEligibility(t *testing.T) {
	sel := &SensorFragment{Select: &sensor.SelectQuery{Rel: "l"}}
	selScan := NewScan("d", "d", sensor.ReadingSchema("d"), nil, 1, false)
	if _, ok := fragmentKeyIdx(sel, selScan, []expr.Expr{expr.Col{Ref: "room"}}); !ok {
		t.Fatal("select fragment keyed on room must be eligible")
	}
	if _, ok := fragmentKeyIdx(sel, selScan, []expr.Expr{expr.Col{Ref: "value"}}); ok {
		t.Fatal("value is reading-dependent; must not be a sampling partition key")
	}
	if _, ok := fragmentKeyIdx(sel, selScan, nil); ok {
		t.Fatal("nil keys hash every column (value included); must be ineligible")
	}
	if _, ok := fragmentKeyIdx(sel, selScan, []expr.Expr{
		expr.Bin{Op: expr.OpAdd, L: expr.Col{Ref: "desk"}, R: expr.Lit{V: data.Int(1)}}}); ok {
		t.Fatal("expression keys must be ineligible")
	}

	agg := &SensorFragment{Agg: &sensor.AggregateQuery{Rel: "l", GroupByRoom: true}}
	aggScan := NewScan("d", "d", agg.Agg.Schema(), nil, 1, false)
	if _, ok := fragmentKeyIdx(agg, aggScan, []expr.Expr{expr.Col{Ref: "room"}}); !ok {
		t.Fatal("grouped aggregate keyed on room must be eligible")
	}
	if _, ok := fragmentKeyIdx(agg, aggScan, []expr.Expr{expr.Col{Ref: "value"}}); ok {
		t.Fatal("aggregate value column must be ineligible")
	}
	global := &SensorFragment{Agg: &sensor.AggregateQuery{Rel: "l"}}
	globalScan := NewScan("d", "d", global.Agg.Schema(), nil, 1, false)
	if _, ok := fragmentKeyIdx(global, globalScan, []expr.Expr{expr.Col{Ref: "value"}}); ok {
		t.Fatal("global aggregate has no node-determined columns")
	}
}

func TestAlignedWithTicks(t *testing.T) {
	sec := time.Second
	cases := []struct {
		period, tick time.Duration
		now          vtime.Time
		want         bool
	}{
		{sec, sec, 0, true},
		{2 * sec, sec, 0, true},
		{sec, 2 * sec, 0, false},                               // epochs between ticks
		{700 * time.Millisecond, sec, 0, false},                // never on a tick
		{sec, sec, vtime.Time(500 * vtime.Millisecond), false}, // deploy off-tick
		{sec, sec, vtime.Time(3 * vtime.Second), true},
		{0, sec, 0, false},
		{sec, 0, 0, false},
	}
	for _, c := range cases {
		if got := alignedWithTicks(c.period, c.tick, c.now); got != c.want {
			t.Fatalf("alignedWithTicks(%v, %v, %v) = %v, want %v", c.period, c.tick, c.now, got, c.want)
		}
	}
}
