package plan

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// Snapshot v2 tests: shared-chain window capture across a coordinator
// restart, the surfaced skip list, node-list validation, and the fsync'd
// atomic-commit crash points.

// TestParseNodesErrors pins the node-list validation: an affinity with no
// worker address and a duplicated address are config errors, surfaced at
// parse time and propagated by every compile and rescale path.
func TestParseNodesErrors(t *testing.T) {
	if _, _, err := ParseNodes([]string{"=sensors"}); err == nil {
		t.Fatal("affinity without a worker address must be rejected")
	}
	if _, _, err := ParseNodes([]string{"w1:9", "w1:9"}); err == nil {
		t.Fatal("duplicate worker address must be rejected")
	}
	// Multiple in-process slots are fine; affinity still parses.
	addrs, affinity, err := ParseNodes([]string{"", "w1:9=Temperature", ""})
	if err != nil {
		t.Fatalf("valid node list rejected: %v", err)
	}
	if len(addrs) != 3 || addrs[1] != "w1:9" {
		t.Fatalf("addrs = %v", addrs)
	}
	if len(affinity["w1:9"]) != 1 {
		t.Fatalf("affinity = %v, want Temperature bound to w1:9", affinity)
	}

	// Compile validates the list up front on every path, sharded or not.
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 2 * time.Second}
	eng := stream.NewEngine("nodes-err", vtime.NewScheduler())
	for _, bad := range [][]string{{"=sensors", ""}, {"w1:9", "w1:9"}} {
		if _, err := CompileStreamOpts(sharePlan("t1", w, nil), eng,
			CompileOptions{Parallelism: 2, Nodes: bad}); err == nil {
			t.Fatalf("compile accepted malformed node list %v", bad)
		}
	}

	// A live Rescale rejects the same malformed lists without moving shards.
	b := fuzzBuiltPlan(t)
	dep, err := CompileStreamOpts(b, eng, CompileOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	for _, bad := range [][]string{{"=sensors"}, {"w1:9", "w1:9"}} {
		if err := dep.Rescale(bad); err == nil {
			t.Fatalf("Rescale accepted malformed node list %v", bad)
		}
	}
	for j, loc := range dep.Placement() {
		if loc != "" {
			t.Fatalf("failed Rescale moved shard %d to %q", j, loc)
		}
	}
}

// TestSnapshotSaveCrashPoints drives Save into both halves of the atomic
// commit — the temp-file write and the rename — and requires the last
// committed snapshot to stay intact and restorable through either failure.
func TestSnapshotSaveCrashPoints(t *testing.T) {
	b := fuzzBuiltPlan(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "coord.snap")

	eng := stream.NewEngine("crash-a", vtime.NewScheduler())
	coord := NewCoordinator(eng, path)
	if _, err := coord.Deploy("q", b, CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Save(); err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Crash point 1: the temp-file write fails (the tmp path is occupied
	// by a directory). The committed snapshot must be byte-identical after.
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Save(); err == nil {
		t.Fatal("Save with an unwritable temp path must fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, committed) {
		t.Fatal("failed Save mutated the committed snapshot")
	}
	if err := os.Remove(path + ".tmp"); err != nil {
		t.Fatal(err)
	}

	// Crash point 2: the rename fails (the snapshot path is a non-empty
	// directory). The temp file must not be left behind.
	blocked := filepath.Join(dir, "blocked.snap")
	if err := os.MkdirAll(filepath.Join(blocked, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	eng2 := stream.NewEngine("crash-b", vtime.NewScheduler())
	coord2 := NewCoordinator(eng2, blocked)
	if _, err := coord2.Deploy("q", b, CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if _, err := coord2.Save(); err == nil {
		t.Fatal("Save with an un-renameable snapshot path must fail")
	}
	if _, err := os.Stat(blocked + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("failed commit left the temp file behind (stat err %v)", err)
	}

	// The coordinator stays usable: with the obstruction gone, Save commits
	// and a fresh coordinator restores the deployment.
	if _, err := coord.Save(); err != nil {
		t.Fatalf("Save after a cleared obstruction: %v", err)
	}
	coord.Close()
	engB := stream.NewEngine("crash-c", vtime.NewScheduler())
	coordB := NewCoordinator(engB, path)
	defer coordB.Close()
	if _, err := coordB.Restore(); err != nil {
		t.Fatalf("restore of the recommitted snapshot: %v", err)
	}
	if n := coordB.Names(); len(n) != 1 || n[0] != "q" {
		t.Fatalf("restored %v, want [q]", n)
	}
}

// TestSnapshotSkipListSurfaced: a deployment the snapshot cannot capture —
// compiled against a Sharing registry that is not the coordinator's own —
// is named by Save, recorded in the file, and named again by Restore.
// Nothing is ever dropped silently.
func TestSnapshotSkipListSurfaced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.snap")
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 5 * time.Second}
	ge1 := func(sc *Scan) []expr.Expr {
		return []expr.Expr{expr.Bin{Op: expr.OpGe, L: expr.C(sc.Alias + ".a"), R: expr.L(1)}}
	}

	engA := stream.NewEngine("skip-a", vtime.NewScheduler())
	coordA := NewCoordinator(engA, path)
	coordA.EnableSharing(NewSharing(engA))
	if _, err := coordA.Deploy("good", sharePlan("t1", w, ge1), CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	// A foreign registry: the coordinator cannot rebuild its chain
	// attachments on restore, so this deployment is skippable — loudly.
	foreign := NewSharing(engA)
	if _, err := coordA.Deploy("alien", sharePlan("t2", w, ge1), CompileOptions{Sharing: foreign}); err != nil {
		t.Fatal(err)
	}
	skipped, err := coordA.Save()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "alien" {
		t.Fatalf("Save skipped %v, want [alien]", skipped)
	}
	coordA.Close()

	engB := stream.NewEngine("skip-b", vtime.NewScheduler())
	coordB := NewCoordinator(engB, path)
	coordB.EnableSharing(NewSharing(engB))
	defer coordB.Close()
	skipped, err = coordB.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "alien" {
		t.Fatalf("Restore surfaced skips %v, want [alien]", skipped)
	}
	if n := coordB.Names(); len(n) != 1 || n[0] != "good" {
		t.Fatalf("restored %v, want [good]", n)
	}
}

// TestSnapshotChainsRequireSharing: a snapshot carrying shared-chain
// window state refuses to Restore into a coordinator without sharing
// enabled — the restored queries would otherwise attach cold and drift
// from an uninterrupted run.
func TestSnapshotChainsRequireSharing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.snap")
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 5 * time.Second}

	engA := stream.NewEngine("req-a", vtime.NewScheduler())
	coordA := NewCoordinator(engA, path)
	coordA.EnableSharing(NewSharing(engA))
	if _, err := coordA.Deploy("q", sharePlan("t1", w, nil), CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := coordA.Save(); err != nil {
		t.Fatal(err)
	}
	coordA.Close()

	engB := stream.NewEngine("req-b", vtime.NewScheduler())
	coordB := NewCoordinator(engB, path)
	if _, err := coordB.Restore(); err == nil {
		t.Fatal("Restore of shared-chain state without EnableSharing must fail")
	}
	if n := coordB.Names(); len(n) != 0 {
		t.Fatalf("failed restore left deployments behind: %v", n)
	}
	// With sharing enabled the same coordinator restores cleanly.
	coordB.EnableSharing(NewSharing(engB))
	defer coordB.Close()
	if _, err := coordB.Restore(); err != nil {
		t.Fatalf("restore with sharing enabled: %v", err)
	}
	if n := coordB.Names(); len(n) != 1 || n[0] != "q" {
		t.Fatalf("restored %v, want [q]", n)
	}
}

// TestSharedChainRestartDifferential is the sharing restart differential:
// four overlapping queries (two on one predicate layer, one divergent
// layer, one bare base) run through a sharing coordinator, Save at
// mid-stream, the coordinator restarts, and the restored queries — chains
// rebuilt warm from the snapshotted window state — must stay
// multiset-equal to an uninterrupted serial run, including the expiry
// deletions of rows that entered the shared window before the restart.
func TestSharedChainRestartDifferential(t *testing.T) {
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 5 * time.Second}
	ge := func(v int) func(*Scan) []expr.Expr {
		return func(sc *Scan) []expr.Expr {
			return []expr.Expr{expr.Bin{Op: expr.OpGe, L: expr.C(sc.Alias + ".a"), R: expr.L(v)}}
		}
	}
	builts := []*Built{
		sharePlan("t1", w, ge(1)),
		sharePlan("t2", w, ge(1)), // same layer as t1
		sharePlan("t3", w, ge(3)), // divergent layer, shared base
		sharePlan("t4", w, nil),   // bare base chain
	}
	type ev struct {
		sec, a int64
	}
	firstHalf := []ev{{1, 0}, {2, 2}, {3, 7}, {4, 1}}
	secondHalf := []ev{{5, 4}, {6, 9}}
	push := func(eng *stream.Engine, evs []ev) {
		in, _ := eng.Input("S1")
		for _, e := range evs {
			in.Push(data.Tuple{Vals: []data.Value{data.Int(e.a), data.Int(0), data.Str("s")},
				TS: vtime.Time(e.sec) * vtime.Time(time.Second)})
		}
	}

	// Reference: private compiles on one engine, no interruption. The final
	// Advance expires every pre-restart row (ts 1..4 < cutoff 5s), so the
	// differential checks the restored shared window's deletions too.
	reng := stream.NewEngine("restart-ref", vtime.NewScheduler())
	want := make([][]data.Tuple, len(builts))
	for i, b := range builts {
		dep, err := CompileStreamOpts(b, reng, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer dep.Close()
		push(reng, firstHalf)
		push(reng, secondHalf)
		reng.Advance(10 * vtime.Second)
		want[i] = snapshotSorted(t, dep)
	}
	if len(want[3]) != 1 {
		t.Fatalf("reference q4 kept %d rows, want just the post-cutoff one", len(want[3]))
	}

	// Interrupted run: deploy through a sharing coordinator, Save mid-way.
	path := filepath.Join(t.TempDir(), "coord.snap")
	engA := stream.NewEngine("restart-a", vtime.NewScheduler())
	shareA := NewSharing(engA)
	coordA := NewCoordinator(engA, path)
	coordA.EnableSharing(shareA)
	names := []string{"q1", "q2", "q3", "q4"}
	for i, b := range builts {
		if _, err := coordA.Deploy(names[i], b, CompileOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if chains, attached := shareA.Stats(); chains != 3 || attached != 4 {
		t.Fatalf("chains=%d attached=%d, want 3 chains (base + 2 layers) and 4 attachments", chains, attached)
	}
	push(engA, firstHalf)
	skipped, err := coordA.Save()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("Save skipped %v on a fully capturable coordinator", skipped)
	}
	coordA.Close() // the restart: deployments and chains die with the process

	// Restart: fresh engine, fresh Sharing, warm Restore.
	engB := stream.NewEngine("restart-b", vtime.NewScheduler())
	shareB := NewSharing(engB)
	coordB := NewCoordinator(engB, path)
	coordB.EnableSharing(shareB)
	defer coordB.Close()
	skipped, err = coordB.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("Restore surfaced skips %v, want none", skipped)
	}
	if chains, attached := shareB.Stats(); chains != 3 || attached != 4 {
		t.Fatalf("restored chains=%d attached=%d, want 3/4", chains, attached)
	}
	// The restored chains really share: one physical subscriber feeds all
	// four queries, so the differential is not vacuously private.
	if in, _ := engB.Input("S1"); in.Subscribers() != 1 {
		t.Fatalf("restored engine has %d input subscribers, want 1 shared chain", in.Subscribers())
	}

	push(engB, secondHalf)
	engB.Advance(10 * vtime.Second)
	for i, name := range names {
		dep, ok := coordB.Deployment(name)
		if !ok {
			t.Fatalf("restored deployment %q missing", name)
		}
		requireEqualRows(t, "restored "+name, snapshotSorted(t, dep), want[i])
	}
}

// TestSnapFragmentRoundTrip covers the snapshot mirror of every fragment
// kind — select, join, aggregate — and the decode refusals (unknown kind,
// unbindable predicates) that keep a damaged snapshot a clean error.
func TestSnapFragmentRoundTrip(t *testing.T) {
	sel := lightFeedFragment(t)
	join := SensorFragment{Name: "j", Sources: []string{"temperature", "light"},
		Join: &sensor.JoinQuery{
			Left:   sensor.JoinSide{Rel: "t", Sensor: sensornet.SensorTemperature},
			Right:  sensor.JoinSide{Rel: "l", Sensor: sensornet.SensorLight},
			PairBy: sensor.PairSameDesk, Period: 2 * time.Second,
		}}
	agg := SensorFragment{Name: "a", Sources: []string{"temperature"},
		Agg: &sensor.AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
			Func: sensor.AggCount, GroupByRoom: true, Period: 3 * time.Second}}
	for _, f := range []SensorFragment{sel, join, agg} {
		s, err := encodeSnapFragment(&f)
		if err != nil {
			t.Fatalf("encode %s: %v", f.Name, err)
		}
		got, err := decodeSnapFragment(s)
		if err != nil {
			t.Fatalf("decode %s: %v", f.Name, err)
		}
		if got.Name != f.Name || len(got.Sources) != len(f.Sources) {
			t.Fatalf("round trip of %s lost identity: %+v", f.Name, got)
		}
		switch {
		case f.Select != nil:
			if got.Select == nil || got.Select.Rel != f.Select.Rel || got.Select.Period != f.Select.Period {
				t.Fatalf("select round trip: %+v", got.Select)
			}
		case f.Join != nil:
			if got.Join == nil || got.Join.PairBy != f.Join.PairBy || got.Join.Period != f.Join.Period ||
				got.Join.Left.Rel != "t" || got.Join.Right.Rel != "l" {
				t.Fatalf("join round trip: %+v", got.Join)
			}
		case f.Agg != nil:
			if got.Agg == nil || got.Agg.Func != f.Agg.Func || !got.Agg.GroupByRoom {
				t.Fatalf("agg round trip: %+v", got.Agg)
			}
		}
	}

	if _, err := encodeSnapFragment(&SensorFragment{Name: "empty"}); err == nil {
		t.Fatal("a fragment with no query must not encode")
	}
	bad := expr.Col{Ref: "nosuch"}
	refusals := []snapFragment{
		{Kind: fragKind(9), Name: "k"},
		{Kind: fragSelect, Rel: "l", Pred: bad},
		{Kind: fragAggregate, Rel: "t", Pred: bad},
		{Kind: fragJoin, Rel: "t", RRel: "l", Pred: bad},
		{Kind: fragJoin, Rel: "t", RRel: "l", RPred: bad},
		{Kind: fragJoin, Rel: "t", RRel: "l", On: bad},
	}
	for _, s := range refusals {
		if _, err := decodeSnapFragment(s); err == nil {
			t.Fatalf("decode accepted damaged fragment %+v", s)
		}
	}
}

// TestCoordinatorFragmentSnapshotRestore is the plan-level fragment restart
// differential, walking all three rehydration tiers against one snapshot:
// workers alive (exact redeploy), workers gone (in-process shards, pinned
// fragments on the coordinator's own hosts), and hosts gone too (central
// fallback with the runner states trimmed off the shard checkpoints).
func TestCoordinatorFragmentSnapshotRestore(t *testing.T) {
	const upto = vtime.Time(8 * vtime.Second)
	frag := lightFeedFragment(t)

	// Serial, uninterrupted reference.
	sEng := stream.NewEngine("fragsnap-serial", vtime.NewScheduler())
	serial, err := CompileStreamOpts(mustBuild(t, lightFeedQuery, fragFeedCatalog()), sEng, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	runCentralEpochs(t, sEng, newFragCompileHosts(), frag.Select, upto)
	want := snapshotSorted(t, serial)
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}

	// Deploy over two sensor workers, save at the 4s mark, coordinator dies.
	path := filepath.Join(t.TempDir(), "coord.snap")
	workers := make([]*stream.ShardWorker, 2)
	nodes := make([]string, 2)
	for i := range workers {
		w, err := NewSensorWorker("127.0.0.1:0", newFragCompileHosts())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers[i] = w
		nodes[i] = w.Addr() + "=light"
	}
	engA := stream.NewEngine("fragsnap-a", vtime.NewScheduler())
	coordA := NewCoordinator(engA, path)
	depA, err := coordA.Deploy("q", mustBuild(t, lightFeedQuery, fragFeedCatalog()), CompileOptions{
		Parallelism: 4, Nodes: nodes,
		Fragments: []SensorFragment{frag}, SensorHosts: newFragCompileHosts(),
		TickPeriod: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(depA.RemoteFragments) != 1 {
		t.Fatalf("RemoteFragments = %v, want [LightFeed]", depA.RemoteFragments)
	}
	for now := vtime.Time(vtime.Second); now <= 4*vtime.Second; now += vtime.Time(vtime.Second) {
		engA.Advance(now)
	}
	skipped, err := coordA.Save()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("Save skipped %v", skipped)
	}
	coordA.Close()

	// The coordinator's runtime at restore time: sources hosted locally,
	// 1s ticks, clock standing at the snapshot instant.
	now4 := func() vtime.Time { return vtime.Time(4 * vtime.Second) }
	finish := func(t *testing.T, eng *stream.Engine, coord *Coordinator, wantRemote int) {
		t.Helper()
		skipped, err := coord.Restore()
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		if len(skipped) != 0 {
			t.Fatalf("Restore surfaced skips %v", skipped)
		}
		dep, ok := coord.Deployment("q")
		if !ok {
			t.Fatal("restored deployment missing")
		}
		if len(dep.RemoteFragments) != wantRemote {
			t.Fatalf("RemoteFragments = %v, want %d entries", dep.RemoteFragments, wantRemote)
		}
		if got := coord.Fragments("q"); len(got) != 1 || got[0].Select == nil {
			t.Fatalf("Fragments(q) = %+v, want the rehydrated select spec", got)
		}
		if wantRemote == 0 {
			// Central fallback: the caller replays the epochs the trimmed
			// runners would have generated, against the restored spec.
			in, ok := eng.Input("LightFeed")
			if !ok {
				t.Fatal("restored deployment did not register LightFeed")
			}
			se, _ := newFragCompileHosts().Engine("light")
			q := coord.Fragments("q")[0].Select
			for now := vtime.Time(5 * vtime.Second); now <= upto; now += vtime.Time(vtime.Second) {
				eng.Advance(now)
				var batch []data.Tuple
				se.RunSelectEpoch(q, now, func(tu data.Tuple) { batch = append(batch, tu) })
				in.PushBatch(batch)
			}
		} else {
			for now := vtime.Time(5 * vtime.Second); now <= upto; now += vtime.Time(vtime.Second) {
				eng.Advance(now)
			}
		}
		requireEqualRows(t, "restored fragment deployment", snapshotSorted(t, dep), want)
		coord.Close()
	}

	// Tier 1: the workers are still there — exact redeploy, checkpointed
	// epoch anchors included.
	engB := stream.NewEngine("fragsnap-b", vtime.NewScheduler())
	coordB := NewCoordinator(engB, path)
	coordB.SetRuntime(newFragCompileHosts(), time.Second, now4)
	finish(t, engB, coordB, 1)

	// Tier 2: workers gone; shards heal in-process with the fragments still
	// pinned to their exact runner state on the coordinator's own hosts.
	for _, w := range workers {
		w.Close()
	}
	engC := stream.NewEngine("fragsnap-c", vtime.NewScheduler())
	coordC := NewCoordinator(engC, path)
	coordC.SetRuntime(newFragCompileHosts(), time.Second, now4)
	skippedC, err := coordC.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(skippedC) != 0 {
		t.Fatalf("Restore surfaced skips %v", skippedC)
	}
	depC, _ := coordC.Deployment("q")
	for j, loc := range depC.Placement() {
		if loc != "" {
			t.Fatalf("shard %d restored onto dead worker %q", j, loc)
		}
	}
	if len(depC.RemoteFragments) != 1 {
		t.Fatalf("in-process degrade dropped pinned fragments: %v", depC.RemoteFragments)
	}
	for now := vtime.Time(5 * vtime.Second); now <= upto; now += vtime.Time(vtime.Second) {
		engC.Advance(now)
	}
	requireEqualRows(t, "workers-gone restore", snapshotSorted(t, depC), want)
	coordC.Close()

	// Tier 3: no workers AND no local sensor hosts — the fragments fall
	// back to central runners (states trimmed), the deployment survives.
	engD := stream.NewEngine("fragsnap-d", vtime.NewScheduler())
	coordD := NewCoordinator(engD, path)
	coordD.SetRuntime(NewSensorHosts(), time.Second, now4)
	finish(t, engD, coordD, 0)
}
