package plan

import (
	"reflect"
	"testing"
)

func TestParseNodes(t *testing.T) {
	addrs, aff, err := ParseNodes([]string{
		"127.0.0.1:7001=Light, Temperature",
		"127.0.0.1:7002",
		"127.0.0.1:7003=light",
		"",
	})
	if err != nil {
		t.Fatal(err)
	}
	wantAddrs := []string{"127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003", ""}
	if !reflect.DeepEqual(addrs, wantAddrs) {
		t.Fatalf("addrs = %v, want %v", addrs, wantAddrs)
	}
	if got := aff["127.0.0.1:7001"]; !reflect.DeepEqual(got, []string{"light", "temperature"}) {
		t.Fatalf("affinity[7001] = %v (sources must lowercase and trim)", got)
	}
	if got := aff["127.0.0.1:7003"]; !reflect.DeepEqual(got, []string{"light"}) {
		t.Fatalf("affinity[7003] = %v", got)
	}
	if _, ok := aff["127.0.0.1:7002"]; ok {
		t.Fatal("bare address must carry no affinity")
	}
}

func TestPlaceShardsHonorsAffinity(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1"}
	aff := map[string][]string{"b:1": {"light"}, "c:1": {"light", "temperature"}}
	// Only b and c host light: all four shards round-robin over them.
	loc := placeShards(4, addrs, aff, []string{"light"})
	want := []string{"b:1", "c:1", "b:1", "c:1"}
	if !reflect.DeepEqual(loc, want) {
		t.Fatalf("loc = %v, want %v", loc, want)
	}
}

func TestPlaceShardsFallsBackWithoutAffineWorkers(t *testing.T) {
	addrs := []string{"a:1", "b:1"}
	aff := map[string][]string{"a:1": {"temperature"}}
	// No worker hosts the scanned source: load-balance over everyone.
	loc := placeShards(4, addrs, aff, []string{"light"})
	want := []string{"a:1", "b:1", "a:1", "b:1"}
	if !reflect.DeepEqual(loc, want) {
		t.Fatalf("loc = %v, want %v", loc, want)
	}
}

func TestPlaceShardsMultiSourceUnion(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1"}
	aff := map[string][]string{"a:1": {"light"}, "c:1": {"pdu"}}
	// A plan scanning light and pdu prefers the union of their hosts.
	loc := placeShards(3, addrs, aff, []string{"light", "pdu"})
	want := []string{"a:1", "c:1", "a:1"}
	if !reflect.DeepEqual(loc, want) {
		t.Fatalf("loc = %v, want %v", loc, want)
	}
}

func TestPlaceShardsEmptyNodesStayLocal(t *testing.T) {
	loc := placeShards(3, nil, nil, []string{"light"})
	if !reflect.DeepEqual(loc, []string{"", "", ""}) {
		t.Fatalf("loc = %v, want all in-process", loc)
	}
}
