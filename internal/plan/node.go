// Package plan turns parsed StreamSQL into logical plans and compiles them
// onto the stream engine. It also carries the stream engine's latency-based
// cost model; the sensor engine's message-based model lives with that
// engine, and internal/federation converts between the two (§3).
package plan

import (
	"fmt"
	"strings"
	"time"

	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
)

// Node is a logical plan operator.
type Node interface {
	Schema() *data.Schema
	Children() []Node
	String() string
}

// Scan reads a named engine input (a catalog source or a derived stream
// fed by the sensor engine), through an optional window.
type Scan struct {
	// Input is the engine input name to subscribe to.
	Input string
	// Alias qualifies the columns.
	Alias string
	// Window applies to stream sources.
	Window *sql.WindowSpec
	// Rate estimates tuples/second (streams) or resident rows (tables).
	Rate float64
	// IsTable marks stored relations (no window, loaded once).
	IsTable bool

	schema *data.Schema
}

// NewScan builds a scan over a source schema, renamed to the alias.
func NewScan(input, alias string, schema *data.Schema, w *sql.WindowSpec, rate float64, isTable bool) *Scan {
	return &Scan{
		Input: input, Alias: alias, Window: w, Rate: rate, IsTable: isTable,
		schema: schema.Rename(alias),
	}
}

// NewDerivedScan builds a scan that preserves the schema's existing column
// qualifiers; used for derived streams produced by pushed sensor fragments,
// whose columns are already qualified by the original query bindings.
func NewDerivedScan(input string, schema *data.Schema, w *sql.WindowSpec, rate float64) *Scan {
	return &Scan{Input: input, Alias: schema.Name, Window: w, Rate: rate, schema: schema}
}

// Schema implements Node.
func (s *Scan) Schema() *data.Schema { return s.schema }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

func (s *Scan) String() string {
	w := ""
	if s.Window != nil && s.Window.Kind != sql.WindowNone {
		w = " " + s.Window.String()
	}
	return fmt.Sprintf("scan(%s as %s%s)", s.Input, s.Alias, w)
}

// Select filters by a predicate.
type Select struct {
	In   Node
	Pred expr.Expr
}

// Schema implements Node.
func (s *Select) Schema() *data.Schema { return s.In.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.In} }

func (s *Select) String() string { return fmt.Sprintf("select[%s](%s)", s.Pred, s.In) }

// Join is an equi-join with optional residual predicate.
type Join struct {
	L, R       Node
	LKey, RKey []string
	Residual   expr.Expr

	schema *data.Schema
}

// NewJoin builds a join node.
func NewJoin(l, r Node, lKey, rKey []string, residual expr.Expr) *Join {
	return &Join{L: l, R: r, LKey: lKey, RKey: rKey, Residual: residual,
		schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Node.
func (j *Join) Schema() *data.Schema { return j.schema }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

func (j *Join) String() string {
	keys := make([]string, len(j.LKey))
	for i := range j.LKey {
		keys[i] = j.LKey[i] + "=" + j.RKey[i]
	}
	res := ""
	if j.Residual != nil {
		res = " & " + j.Residual.String()
	}
	return fmt.Sprintf("join[%s%s](%s, %s)", strings.Join(keys, ","), res, j.L, j.R)
}

// Project maps through scalar expressions.
type Project struct {
	In    Node
	Items []stream.ProjectItem

	schema *data.Schema
}

// NewProject builds a projection node.
func NewProject(in Node, items []stream.ProjectItem) (*Project, error) {
	out, err := stream.OutSchema(in.Schema(), items)
	if err != nil {
		return nil, err
	}
	return &Project{In: in, Items: items, schema: out}, nil
}

// Schema implements Node.
func (p *Project) Schema() *data.Schema { return p.schema }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.In} }

func (p *Project) String() string {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = it.Expr.String()
	}
	return fmt.Sprintf("project[%s](%s)", strings.Join(parts, ", "), p.In)
}

// Aggregate groups and aggregates.
type Aggregate struct {
	In      Node
	GroupBy []string
	Specs   []stream.AggSpec
	Having  expr.Expr

	schema *data.Schema
}

// NewAggregate builds an aggregation node.
func NewAggregate(in Node, groupBy []string, specs []stream.AggSpec, having expr.Expr) (*Aggregate, error) {
	out, err := stream.AggOutSchema(in.Schema(), groupBy, specs)
	if err != nil {
		return nil, err
	}
	return &Aggregate{In: in, GroupBy: groupBy, Specs: specs, Having: having, schema: out}, nil
}

// Schema implements Node.
func (a *Aggregate) Schema() *data.Schema { return a.schema }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.In} }

func (a *Aggregate) String() string {
	aggs := make([]string, len(a.Specs))
	for i, s := range a.Specs {
		arg := "*"
		if s.Arg != nil {
			arg = s.Arg.String()
		}
		aggs[i] = fmt.Sprintf("%s(%s)", s.Kind, arg)
	}
	return fmt.Sprintf("agg[%s; %s](%s)", strings.Join(a.GroupBy, ","), strings.Join(aggs, ","), a.In)
}

// Distinct enforces set semantics.
type Distinct struct{ In Node }

// Schema implements Node.
func (d *Distinct) Schema() *data.Schema { return d.In.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.In} }

func (d *Distinct) String() string { return fmt.Sprintf("distinct(%s)", d.In) }

// Built is a fully constructed logical plan with its presentation clauses.
type Built struct {
	Root         Node
	OrderBy      []stream.OrderSpec
	Limit        int
	Display      string
	SamplePeriod time.Duration
}

// String renders the plan.
func (b *Built) String() string {
	s := b.Root.String()
	if len(b.OrderBy) > 0 {
		keys := make([]string, len(b.OrderBy))
		for i, o := range b.OrderBy {
			keys[i] = o.Col
			if o.Desc {
				keys[i] += " desc"
			}
		}
		s = fmt.Sprintf("sort[%s](%s)", strings.Join(keys, ","), s)
	}
	if b.Limit >= 0 {
		s = fmt.Sprintf("limit[%d](%s)", b.Limit, s)
	}
	if b.Display != "" {
		s = fmt.Sprintf("output[%s](%s)", b.Display, s)
	}
	return s
}

// Scans returns every scan in the plan, left to right.
func Scans(n Node) []*Scan {
	var out []*Scan
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			out = append(out, s)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// sourceSchema fetches the schema a catalog source exposes.
func sourceSchema(src *catalog.Source) *data.Schema { return src.Schema }
