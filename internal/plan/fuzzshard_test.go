package plan

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// Randomized serial-vs-sharded differential harness: generate random
// logical plans (select / project / join / aggregate / distinct over
// random key sets), drive them with identical insert+delete workloads at
// P=1 and P∈{2,4}, and require multiset-equal materialized results. Every
// run is reproducible from the seed:
//
//	go test ./internal/plan -run ShardDifferential -fuzzshard.seed=42 -fuzzshard.n=100
//
// Numeric columns stay small integers (and projections stay in integer
// arithmetic) so SUM/AVG accumulate exactly in float64 — two-phase
// aggregation reassociates additions, which must not introduce rounding
// differences the comparison would flag.
var (
	fuzzSeed  = flag.Int64("fuzzshard.seed", 1, "base PRNG seed for the shard differential harness")
	fuzzN     = flag.Int("fuzzshard.n", 40, "random plans per shard differential run")
	fuzzNodes = flag.Int("fuzzshard.nodes", 2, "loopback shard workers for the multi-node differential mode (0 disables)")
	fuzzKill  = flag.Int("fuzzshard.kill", 8, "random plans per chaos differential run: a worker is killed at a random epoch mid-run and failover must keep the result multiset-equal to serial (0 disables)")
)

// fuzzSource is one generated stream source.
type fuzzSource struct {
	name   string
	schema *data.Schema
}

func fuzzSources() []fuzzSource {
	s1 := data.NewSchema("S1",
		data.Col("a", data.TInt), data.Col("b", data.TInt), data.Col("s", data.TString))
	s1.IsStream = true
	s2 := data.NewSchema("S2",
		data.Col("x", data.TInt), data.Col("y", data.TInt))
	s2.IsStream = true
	return []fuzzSource{{"S1", s1}, {"S2", s2}}
}

// fuzzGen builds random plans bottom-up, tracking which scans it created.
type fuzzGen struct {
	rng     *rand.Rand
	sources []fuzzSource
	nscans  int
	nals    int // computed-column alias counter (aliases must stay unique plan-wide)
}

// genScan emits a scan over a random source with a random window.
func (g *fuzzGen) genScan() Node {
	src := g.sources[g.rng.Intn(len(g.sources))]
	g.nscans++
	alias := fmt.Sprintf("t%d", g.nscans)
	var w *sql.WindowSpec
	switch g.rng.Intn(3) {
	case 0: // unwindowed: tuples accumulate
	case 1:
		w = &sql.WindowSpec{Kind: sql.WindowRange, Range: 2 * time.Second}
	case 2:
		w = &sql.WindowSpec{Kind: sql.WindowRange, Range: 5 * time.Second, Slide: time.Second}
	}
	return NewScan(src.name, alias, src.schema, w, 10, false)
}

// intCols lists the integer columns of a node's schema.
func intCols(n Node) []string {
	var out []string
	for _, c := range n.Schema().Cols {
		if c.Type == data.TInt {
			out = append(out, c.QName())
		}
	}
	return out
}

// genScalar returns a random deterministic integer expression over col.
func (g *fuzzGen) genScalar(col string) expr.Expr {
	c := expr.C(col)
	switch g.rng.Intn(4) {
	case 0:
		return expr.Bin{Op: expr.OpAdd, L: c, R: expr.L(g.rng.Intn(3) + 1)}
	case 1:
		return expr.Bin{Op: expr.OpMul, L: c, R: expr.L(2)}
	case 2:
		return expr.Bin{Op: expr.OpMod, L: c, R: expr.L(g.rng.Intn(3) + 2)}
	default:
		return expr.Call{Name: "abs", Args: []expr.Expr{c}}
	}
}

// genUnary maybe wraps n in selects / projects.
func (g *fuzzGen) genUnary(n Node) Node {
	if ints := intCols(n); len(ints) > 0 && g.rng.Intn(3) == 0 {
		pred := expr.Bin{Op: expr.OpGe, L: expr.C(ints[g.rng.Intn(len(ints))]),
			R: expr.L(g.rng.Intn(3) - 1)}
		n = &Select{In: n, Pred: pred}
	}
	if g.rng.Intn(3) == 0 {
		var items []stream.ProjectItem
		for _, c := range n.Schema().Cols {
			ref := c.QName()
			if c.Type == data.TInt && g.rng.Intn(3) == 0 {
				g.nals++
				items = append(items, stream.ProjectItem{
					Expr: g.genScalar(ref), Alias: fmt.Sprintf("e%d", g.nals)})
			} else {
				items = append(items, stream.ProjectItem{Expr: expr.C(ref)})
			}
		}
		p, err := NewProject(n, items)
		if err == nil {
			n = p
		}
	}
	return n
}

// genTree builds the select/project/join layer.
func (g *fuzzGen) genTree(depth int) Node {
	if depth <= 0 || g.rng.Intn(3) > 0 {
		return g.genUnary(g.genScan())
	}
	l := g.genTree(depth - 1)
	r := g.genTree(depth - 1)
	li, ri := intCols(l), intCols(r)
	if len(li) == 0 || len(ri) == 0 {
		return g.genUnary(l)
	}
	j := NewJoin(l, r, []string{li[g.rng.Intn(len(li))]}, []string{ri[g.rng.Intn(len(ri))]}, nil)
	return g.genUnary(j)
}

// genPlan builds a full random plan: tree, then optionally an aggregate
// (random key set, possibly empty = global; random spec mix), then
// optionally DISTINCT over a projection.
func (g *fuzzGen) genPlan() Node {
	n := g.genTree(2)
	if g.rng.Intn(2) == 0 {
		cols := n.Schema().Cols
		var groupBy []string
		for _, c := range cols {
			if len(groupBy) < 2 && g.rng.Intn(3) == 0 {
				groupBy = append(groupBy, c.QName())
			}
		}
		var specs []stream.AggSpec
		specs = append(specs, stream.AggSpec{Kind: stream.AggCount, Alias: "cnt"})
		if ints := intCols(n); len(ints) > 0 {
			kinds := []stream.AggKind{stream.AggSum, stream.AggAvg, stream.AggMin, stream.AggMax}
			for i := 0; i < 1+g.rng.Intn(2); i++ {
				specs = append(specs, stream.AggSpec{
					Kind:  kinds[g.rng.Intn(len(kinds))],
					Arg:   expr.C(ints[g.rng.Intn(len(ints))]),
					Alias: fmt.Sprintf("agg%d", i),
				})
			}
		}
		agg, err := NewAggregate(n, groupBy, specs, nil)
		if err == nil {
			n = agg
		}
	}
	if g.rng.Intn(3) == 0 {
		n = g.genUnary(n)
		n = &Distinct{In: n}
	}
	return n
}

// fuzzWorkload generates one deterministic insert+delete tuple sequence
// per source; every engine replays the same sequence.
type fuzzEvent struct {
	input string
	t     data.Tuple
	tick  vtime.Time // when non-zero, advance the engine clock instead
}

func genWorkload(rng *rand.Rand, sources []fuzzSource, n int) []fuzzEvent {
	var evs []fuzzEvent
	live := map[string][]data.Tuple{}
	val := func() data.Value {
		if rng.Intn(10) == 0 {
			return data.Null
		}
		return data.Int(int64(rng.Intn(5)))
	}
	ts := vtime.Time(0)
	for i := 0; i < n; i++ {
		ts += vtime.Time(50 * time.Millisecond)
		if rng.Intn(40) == 0 {
			// occasional idle gap: tick-driven window expiry
			ts += vtime.Time(3 * time.Second)
			evs = append(evs, fuzzEvent{tick: ts})
			continue
		}
		src := sources[rng.Intn(len(sources))]
		if lv := live[src.name]; len(lv) > 0 && rng.Intn(4) == 0 {
			k := rng.Intn(len(lv))
			del := lv[k].Negate()
			del.TS = ts
			lv[k] = lv[len(lv)-1]
			live[src.name] = lv[:len(lv)-1]
			evs = append(evs, fuzzEvent{input: src.name, t: del})
			continue
		}
		vals := make([]data.Value, src.schema.Arity())
		for j, c := range src.schema.Cols {
			if c.Type == data.TString {
				vals[j] = data.Str(fmt.Sprintf("s%d", rng.Intn(3)))
			} else {
				vals[j] = val()
			}
		}
		tu := data.Tuple{Vals: vals, TS: ts}
		live[src.name] = append(live[src.name], tu)
		evs = append(evs, fuzzEvent{input: src.name, t: tu})
	}
	// final drain tick so every window empties identically
	evs = append(evs, fuzzEvent{tick: ts + vtime.Time(10*time.Second)})
	return evs
}

// replay drives the workload into one engine (cloning tuples: operators
// retain pushed Vals) and snapshots the deployment.
func replay(t *testing.T, dep *Deployment, eng *stream.Engine, evs []fuzzEvent) []data.Tuple {
	t.Helper()
	for _, ev := range evs {
		if ev.tick != 0 {
			eng.Advance(ev.tick)
			continue
		}
		in, ok := eng.Input(ev.input)
		if !ok {
			continue // plan does not scan this source
		}
		in.Push(ev.t.Clone())
	}
	rows, err := dep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	stream.SortTuples(rows)
	return rows
}

// runShardDifferential generates nPlans random plans from seed and checks
// sharded P∈{2,4} against serial on each. With a node list, the sharded
// deployments distribute their replicas over those shard workers — the
// multi-node differential mode. It reports how many plans actually
// sharded / two-phased so a regression to pervasive serial fallback fails
// loudly rather than passing vacuously.
func runShardDifferential(t *testing.T, seed int64, nPlans int, nodes []string) {
	sources := fuzzSources()
	sharded, twoPhase := 0, 0
	for pi := 0; pi < nPlans; pi++ {
		rng := rand.New(rand.NewSource(seed + int64(pi)))
		g := &fuzzGen{rng: rng, sources: sources}
		root := g.genPlan()
		b := &Built{Root: root, Limit: -1}
		evs := genWorkload(rng, sources, 300)

		deploy := func(par int) (*Deployment, *stream.Engine) {
			eng := stream.NewEngine(fmt.Sprintf("fz%d-p%d", pi, par), vtime.NewScheduler())
			opts := CompileOptions{Parallelism: par}
			if par > 0 {
				opts.Nodes = nodes
			}
			dep, err := CompileStreamOpts(b, eng, opts)
			if err != nil {
				t.Fatalf("seed %d plan %d: compile P=%d: %v\nplan: %s", seed, pi, par, err, root)
			}
			return dep, eng
		}

		sdep, seng := deploy(0)
		want := replay(t, sdep, seng, evs)
		for _, p := range []int{2, 4} {
			dep, eng := deploy(p)
			got := replay(t, dep, eng, evs)
			if dep.Shards == p {
				sharded++
				if dep.TwoPhase {
					twoPhase++
				}
			}
			dep.Close()
			if len(got) != len(want) {
				t.Fatalf("seed %d plan %d P=%d (shards=%d twophase=%v): %d rows, want %d\nplan: %s\ngot:  %v\nwant: %v",
					seed, pi, p, dep.Shards, dep.TwoPhase, len(got), len(want), root, got, want)
			}
			for i := range want {
				if !got[i].EqualVals(want[i]) {
					t.Fatalf("seed %d plan %d P=%d (shards=%d twophase=%v): row %d = %v, want %v\nplan: %s",
						seed, pi, p, dep.Shards, dep.TwoPhase, i, got[i], want[i], root)
				}
			}
		}
	}
	t.Logf("seed %d: %d plans, %d/%d sharded deployments (%d two-phase)",
		seed, nPlans, sharded, 2*nPlans, twoPhase)
	if sharded < nPlans/2 {
		t.Fatalf("only %d of %d deployments sharded; the generator or analysis regressed", sharded, 2*nPlans)
	}
	if twoPhase == 0 {
		t.Fatal("no generated plan exercised the two-phase path")
	}
}

// TestShardDifferentialRandomPlans is the main randomized differential
// run; tune with -fuzzshard.seed / -fuzzshard.n.
func TestShardDifferentialRandomPlans(t *testing.T) {
	runShardDifferential(t, *fuzzSeed, *fuzzN, nil)
}

// TestShardDifferentialForcedCollisions reruns a slice of the differential
// harness with every operator hash forced into one collision bucket
// (testHashMask = 0), covering bucket-verification paths in the sharded
// and two-phase operators.
func TestShardDifferentialForcedCollisions(t *testing.T) {
	old := stream.SetTestHashMask(0)
	t.Cleanup(func() { stream.SetTestHashMask(old) })
	n := *fuzzN / 4
	if n < 5 {
		n = 5
	}
	runShardDifferential(t, *fuzzSeed+1000, n, nil)
}

// startWorkers launches n in-process shard workers on loopback TCP and
// returns their addresses. In-process workers keep the whole protocol —
// coordinator and replicas — under one race detector and one test hash
// mask; TestDistributedWorkerProcesses covers real worker processes.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w, err := NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

// TestShardDifferentialMultiNode is the multi-node differential mode:
// random plans deploy their shard replicas across -fuzzshard.nodes
// loopback workers and must stay multiset-identical to serial execution.
func TestShardDifferentialMultiNode(t *testing.T) {
	if *fuzzNodes <= 0 {
		t.Skip("multi-node mode disabled (-fuzzshard.nodes=0)")
	}
	n := *fuzzN / 2
	if n < 10 {
		n = 10
	}
	runShardDifferential(t, *fuzzSeed+2000, n, startWorkers(t, *fuzzNodes))
}

// TestShardDifferentialMultiNodeForcedCollisions is the multi-node mode
// under the forced collision mask; in-process workers share the mask, so
// the remote replicas' bucket-verification paths are exercised too.
func TestShardDifferentialMultiNodeForcedCollisions(t *testing.T) {
	if *fuzzNodes <= 0 {
		t.Skip("multi-node mode disabled (-fuzzshard.nodes=0)")
	}
	old := stream.SetTestHashMask(0)
	t.Cleanup(func() { stream.SetTestHashMask(old) })
	n := *fuzzN / 4
	if n < 10 {
		n = 10 // enough plans that the two-phase guard cannot trip vacuously
	}
	runShardDifferential(t, *fuzzSeed+3000, n, startWorkers(t, *fuzzNodes))
}

// TestShardDifferentialMixedLocalRemote pins one replica in-process and
// the rest on a worker ("" entries in the topology mix local and remote
// shards in one deployment).
func TestShardDifferentialMixedLocalRemote(t *testing.T) {
	if *fuzzNodes <= 0 {
		t.Skip("multi-node mode disabled (-fuzzshard.nodes=0)")
	}
	addrs := startWorkers(t, 1)
	runShardDifferential(t, *fuzzSeed+4000, 10, []string{"", addrs[0]})
}

// ---- chaos mode: kill a worker mid-run, failover must keep exactness ----

// chaosCluster is one disposable set of shard workers the chaos harness
// can kill mid-run: in-process loopback workers (Close severs every
// replica, the in-process equivalent of SIGKILL) or real shardworker
// processes killed with the actual signal.
type chaosCluster struct {
	addrs []string
	kill  func(i int)
}

func startKillableWorkers(t *testing.T, n int) chaosCluster {
	t.Helper()
	ws := make([]*stream.ShardWorker, n)
	addrs := make([]string, n)
	for i := range ws {
		w, err := NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
		addrs[i] = w.Addr()
		t.Cleanup(func() { w.Close() })
	}
	return chaosCluster{addrs: addrs, kill: func(i int) { ws[i].Close() }}
}

// runChaosDifferential is the chaos differential: each random plan runs
// serially for the reference result, then sharded at P∈{2,4} with every
// replica on a cluster worker and failover armed; at a random event index
// mid-replay one random worker is killed. The final materialized output
// must stay multiset-equal to the serial run and Deployment.Flush (inside
// Snapshot) must still be an exact barrier. The run fails if no deployment
// actually failed over (the chaos would be vacuous) or if any failover
// abandoned its shards.
func runChaosDifferential(t *testing.T, seed int64, nPlans int, cluster func(t *testing.T) chaosCluster) {
	sources := fuzzSources()
	sharded, failovers := 0, 0
	for pi := 0; pi < nPlans; pi++ {
		rng := rand.New(rand.NewSource(seed + int64(pi)))
		g := &fuzzGen{rng: rng, sources: sources}
		root := g.genPlan()
		b := &Built{Root: root, Limit: -1}
		evs := genWorkload(rng, sources, 300)

		seng := stream.NewEngine(fmt.Sprintf("chaos%d-serial", pi), vtime.NewScheduler())
		sdep, err := CompileStream(b, seng)
		if err != nil {
			t.Fatalf("seed %d plan %d: serial compile: %v", seed, pi, err)
		}
		want := replay(t, sdep, seng, evs)

		for _, p := range []int{2, 4} {
			// A fresh cluster per run: previous runs killed their workers.
			cl := cluster(t)
			var events []stream.FailoverEvent
			var emu sync.Mutex
			eng := stream.NewEngine(fmt.Sprintf("chaos%d-p%d", pi, p), vtime.NewScheduler())
			dep, err := CompileStreamOpts(b, eng, CompileOptions{
				Parallelism: p, Nodes: cl.addrs,
				Failover:        true,
				CheckpointEvery: 1 + rng.Intn(3),
				OnFailover: func(ev stream.FailoverEvent) {
					emu.Lock()
					events = append(events, ev)
					emu.Unlock()
				},
			})
			if err != nil {
				t.Fatalf("seed %d plan %d: chaos compile P=%d: %v\nplan: %s", seed, pi, p, err, root)
			}
			if dep.Shards != p {
				dep.Close() // serial fallback: nothing to kill
				continue
			}
			sharded++
			killAt := rng.Intn(len(evs))
			victim := rng.Intn(len(cl.addrs))
			for i, ev := range evs {
				if i == killAt {
					cl.kill(victim)
				}
				if ev.tick != 0 {
					eng.Advance(ev.tick)
					continue
				}
				if in, ok := eng.Input(ev.input); ok {
					in.Push(ev.t.Clone())
				}
			}
			got, err := dep.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			stream.SortTuples(got)
			emu.Lock()
			evCopy := append([]stream.FailoverEvent(nil), events...)
			emu.Unlock()
			for _, ev := range evCopy {
				failovers++
				if ev.Err != nil {
					t.Fatalf("seed %d plan %d P=%d: failover abandoned shards %v: %v",
						seed, pi, p, ev.Shards, ev.Err)
				}
			}
			if len(evCopy) == 0 {
				t.Fatalf("seed %d plan %d P=%d: worker killed at event %d but no failover ran",
					seed, pi, p, killAt)
			}
			dep.Close()
			if len(got) != len(want) {
				t.Fatalf("seed %d plan %d P=%d (kill@%d, %d failovers): %d rows, want %d\nplan: %s\ngot:  %v\nwant: %v",
					seed, pi, p, killAt, len(evCopy), len(got), len(want), root, got, want)
			}
			for i := range want {
				if !got[i].EqualVals(want[i]) {
					t.Fatalf("seed %d plan %d P=%d (kill@%d): row %d = %v, want %v\nplan: %s",
						seed, pi, p, killAt, i, got[i], want[i], root)
				}
			}
		}
	}
	t.Logf("seed %d: %d plans, %d sharded chaos runs, %d failovers", seed, nPlans, sharded, failovers)
	if sharded == 0 {
		t.Fatal("no generated plan sharded; the chaos mode ran vacuously")
	}
}

// TestShardDifferentialChaosKill is the chaos differential over two
// workers: the surviving worker (or the coordinator process) must absorb
// the killed worker's shards from their last checkpoint.
func TestShardDifferentialChaosKill(t *testing.T) {
	if *fuzzKill <= 0 {
		t.Skip("chaos mode disabled (-fuzzshard.kill=0)")
	}
	runChaosDifferential(t, *fuzzSeed+6000, *fuzzKill,
		func(t *testing.T) chaosCluster { return startKillableWorkers(t, 2) })
}

// TestShardDifferentialChaosKillLastWorker runs the chaos differential
// with a single worker: killing it leaves no remote candidate, so every
// shard must fail over in-process (the last-resort path).
func TestShardDifferentialChaosKillLastWorker(t *testing.T) {
	if *fuzzKill <= 0 {
		t.Skip("chaos mode disabled (-fuzzshard.kill=0)")
	}
	n := *fuzzKill / 2
	if n < 4 {
		n = 4
	}
	runChaosDifferential(t, *fuzzSeed+7000, n,
		func(t *testing.T) chaosCluster { return startKillableWorkers(t, 1) })
}

// TestShardDifferentialChaosKillForcedCollisions reruns the chaos
// differential with every operator hash forced into one collision bucket,
// so checkpoint restore rebuilds collision buckets too.
func TestShardDifferentialChaosKillForcedCollisions(t *testing.T) {
	if *fuzzKill <= 0 {
		t.Skip("chaos mode disabled (-fuzzshard.kill=0)")
	}
	old := stream.SetTestHashMask(0)
	t.Cleanup(func() { stream.SetTestHashMask(old) })
	n := *fuzzKill / 2
	if n < 4 {
		n = 4
	}
	runChaosDifferential(t, *fuzzSeed+8000, n,
		func(t *testing.T) chaosCluster { return startKillableWorkers(t, 2) })
}
