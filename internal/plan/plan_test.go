package plan

import (
	"strings"
	"testing"

	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// testCatalog registers the paper's sources: AreaSensors and SeatSensors
// (sensor streams), Machines and Person and Route (tables).
func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	area := data.NewSchema("AreaSensors",
		data.Col("room", data.TString), data.Col("status", data.TString))
	area.IsStream = true
	cat.MustAddSource(&catalog.Source{Name: "AreaSensors", Kind: catalog.KindSensorStream,
		Schema: area, Rate: 5})
	seat := data.NewSchema("SeatSensors",
		data.Col("room", data.TString), data.Col("desk", data.TInt), data.Col("status", data.TString))
	seat.IsStream = true
	cat.MustAddSource(&catalog.Source{Name: "SeatSensors", Kind: catalog.KindSensorStream,
		Schema: seat, Rate: 20})

	mach := data.NewSchema("Machines",
		data.Col("room", data.TString), data.Col("desk", data.TInt), data.Col("software", data.TString))
	// software holds the capability pattern matched against p.needed, per
	// the paper's "p.needed like m.software" predicate.
	machRel := data.NewRelation(mach)
	machRel.MustInsert(data.Str("L101"), data.Int(1), data.Str("%fedora%"))
	machRel.MustInsert(data.Str("L101"), data.Int(2), data.Str("%windows%"))
	machRel.MustInsert(data.Str("L102"), data.Int(1), data.Str("%fedora%"))
	cat.MustAddSource(&catalog.Source{Name: "Machines", Kind: catalog.KindTable,
		Schema: mach, Table: machRel})

	person := data.NewSchema("Person",
		data.Col("id", data.TString), data.Col("room", data.TString), data.Col("needed", data.TString))
	personRel := data.NewRelation(person)
	personRel.MustInsert(data.Str("visitor1"), data.Str("lobby"), data.Str("fedora"))
	cat.MustAddSource(&catalog.Source{Name: "Person", Kind: catalog.KindTable,
		Schema: person, Table: personRel})

	route := data.NewSchema("Route",
		data.Col("start", data.TString), data.Col("end", data.TString), data.Col("path", data.TString))
	routeRel := data.NewRelation(route)
	routeRel.MustInsert(data.Str("lobby"), data.Str("L101"), data.Str("lobby->hall1->L101"))
	routeRel.MustInsert(data.Str("lobby"), data.Str("L102"), data.Str("lobby->hall1->hall2->L102"))
	cat.MustAddSource(&catalog.Source{Name: "Route", Kind: catalog.KindTable,
		Schema: route, Table: routeRel})
	return cat
}

func mustBuild(t *testing.T, src string, cat *catalog.Catalog) *Built {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(stmt, cat)
	if err != nil {
		t.Fatalf("Build(%s): %v", src, err)
	}
	return b
}

func TestBuildSimpleSelect(t *testing.T) {
	b := mustBuild(t, `SELECT ss.room, ss.desk FROM SeatSensors ss WHERE ss.status = 'free'`, testCatalog())
	s := b.Root.String()
	if !strings.Contains(s, "select[") || !strings.Contains(s, "scan(SeatSensors as ss") {
		t.Fatalf("plan = %s", s)
	}
	// predicate pushed below projection
	if strings.Index(s, "project") > strings.Index(s, "select[") {
		t.Fatalf("projection should be outermost: %s", s)
	}
	if b.Root.Schema().Arity() != 2 {
		t.Fatalf("schema = %s", b.Root.Schema())
	}
}

func TestBuildPushdownAndJoinOrder(t *testing.T) {
	b := mustBuild(t, `SELECT ss.room, ss.desk FROM AreaSensors sa, SeatSensors ss
		WHERE sa.room = ss.room AND sa.status = 'open' AND ss.status = 'free'`, testCatalog())
	js := b.Root.String()
	if !strings.Contains(js, "join[") {
		t.Fatalf("no join: %s", js)
	}
	// local predicates must appear below the join (pushdown)
	joinIdx := strings.Index(js, "join[")
	openIdx := strings.Index(js, "'open'")
	if openIdx < joinIdx {
		t.Fatalf("local predicate above join: %s", js)
	}
}

func TestBuildFig1ViewInlining(t *testing.T) {
	cat := testCatalog()
	view := sql.MustParse(`create view OpenMachineInfo as (
		select ss.room, ss.desk from AreaSensors sa, SeatSensors ss
		where sa.room = ss.room ^ sa.status = 'open' ^ ss.status = 'free')`).(*sql.CreateView)
	if err := cat.AddView(view); err != nil {
		t.Fatal(err)
	}
	b := mustBuild(t, `select p.id, O.room, O.desk, r.path
		from Person p, Route r, OpenMachineInfo O, Machines m
		where O.room = m.room ^ O.desk = m.desk ^ p.needed like m.software ^
		r.start = p.room ^ r.end = O.room
		order by p.id`, cat)
	scans := Scans(b.Root)
	if len(scans) != 5 {
		t.Fatalf("scans = %d, want 5 (view inlined into two)", len(scans))
	}
	names := map[string]bool{}
	for _, s := range scans {
		names[s.Input] = true
	}
	for _, want := range []string{"Person", "Route", "Machines", "AreaSensors", "SeatSensors"} {
		if !names[want] {
			t.Fatalf("missing scan of %s: %v", want, names)
		}
	}
	if len(b.OrderBy) != 1 || b.OrderBy[0].Col != "p.id" {
		t.Fatalf("order by = %v", b.OrderBy)
	}
}

func TestBuildViewInliningNested(t *testing.T) {
	cat := testCatalog()
	v1 := sql.MustParse(`create view FreeSeats as (
		select ss.room, ss.desk from SeatSensors ss where ss.status = 'free')`).(*sql.CreateView)
	v2 := sql.MustParse(`create view OpenFree as (
		select fs.room AS room from FreeSeats fs, AreaSensors sa
		where sa.room = fs.room ^ sa.status = 'open')`).(*sql.CreateView)
	if err := cat.AddView(v1); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(v2); err != nil {
		t.Fatal(err)
	}
	b := mustBuild(t, `select x.room from OpenFree x`, cat)
	if len(Scans(b.Root)) != 2 {
		t.Fatalf("nested inline scans = %d", len(Scans(b.Root)))
	}
}

func TestBuildAggregates(t *testing.T) {
	cat := testCatalog()
	b := mustBuild(t, `SELECT ss.room, count(*) AS n FROM SeatSensors ss
		WHERE ss.status = 'free' GROUP BY ss.room HAVING count(*) > 1`, cat)
	if !strings.Contains(b.Root.String(), "agg[") {
		t.Fatalf("plan = %s", b.Root)
	}
	cols := b.Root.Schema()
	if cols.Cols[0].Name != "room" || cols.Cols[1].Name != "n" {
		t.Fatalf("schema = %s", cols)
	}
	// aggregate first in select list
	b2 := mustBuild(t, `SELECT count(*) AS n, ss.room FROM SeatSensors ss GROUP BY ss.room`, cat)
	if b2.Root.Schema().Cols[0].Name != "n" {
		t.Fatalf("reprojection order: %s", b2.Root.Schema())
	}
}

func TestBuildErrors(t *testing.T) {
	cat := testCatalog()
	bad := []string{
		`SELECT x.a FROM NoSuch x`,
		`SELECT a.room FROM SeatSensors a, SeatSensors a`,
		`SELECT m.room FROM Machines m [ROWS 5]`,
		`SELECT ss.room FROM SeatSensors ss GROUP BY ss.room`,
		`SELECT ss.desk FROM SeatSensors ss, AreaSensors sa GROUP BY ss.room`,
		`SELECT zz.q FROM SeatSensors ss`,
		`SELECT ss.room FROM SeatSensors ss ORDER BY zz.q`,
		`SELECT min(*) FROM SeatSensors ss`,
		`SELECT avg(ss.desk, ss.desk) FROM SeatSensors ss`,
	}
	for _, src := range bad {
		stmt, err := sql.ParseSelect(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Build(stmt, cat); err == nil {
			t.Errorf("Build(%q) should fail", src)
		}
	}
}

func TestBuildStar(t *testing.T) {
	b := mustBuild(t, `SELECT * FROM SeatSensors ss`, testCatalog())
	if b.Root.Schema().Arity() != 3 {
		t.Fatalf("star schema = %s", b.Root.Schema())
	}
}

func TestBuildCrossJoinFallback(t *testing.T) {
	b := mustBuild(t, `SELECT p.id, m.room FROM Person p, Machines m`, testCatalog())
	if !strings.Contains(b.Root.String(), "join[]") {
		t.Fatalf("cross join plan = %s", b.Root)
	}
}

func TestCostModel(t *testing.T) {
	cat := testCatalog()
	small := mustBuild(t, `SELECT ss.room FROM SeatSensors ss WHERE ss.status = 'free'`, cat)
	big := mustBuild(t, `SELECT ss.room FROM SeatSensors ss, AreaSensors sa WHERE ss.room = sa.room`, cat)
	if Work(small.Root) >= Work(big.Root) {
		t.Fatalf("join should cost more: %v vs %v", Work(small.Root), Work(big.Root))
	}
	if Latency(big.Root) <= 0 {
		t.Fatal("latency must be positive")
	}
	if Card(small.Root) >= 20 {
		t.Fatalf("selection should reduce card: %v", Card(small.Root))
	}
	// aggregates collapse cardinality
	agg := mustBuild(t, `SELECT count(*) FROM SeatSensors ss`, cat)
	if Card(agg.Root) != 1 {
		t.Fatalf("global agg card = %v", Card(agg.Root))
	}
}

// Full pipeline: build the Fig. 1 query, compile onto a stream engine,
// load tables, push sensor tuples, and check the visitor gets routed to
// the free fedora machine.
func TestCompileFig1EndToEnd(t *testing.T) {
	cat := testCatalog()
	view := sql.MustParse(`create view OpenMachineInfo as (
		select ss.room, ss.desk from AreaSensors sa, SeatSensors ss
		where sa.room = ss.room ^ sa.status = 'open' ^ ss.status = 'free')`).(*sql.CreateView)
	if err := cat.AddView(view); err != nil {
		t.Fatal(err)
	}
	b := mustBuild(t, `select p.id, O.room, O.desk, r.path
		from Person p, Route r, OpenMachineInfo O, Machines m
		where O.room = m.room ^ O.desk = m.desk ^ p.needed like m.software ^
		r.start = p.room ^ r.end = O.room
		order by p.id`, cat)

	sched := vtime.NewScheduler()
	eng := stream.NewEngine("pc1", sched)
	dep, err := CompileStream(b, eng)
	if err != nil {
		t.Fatal(err)
	}

	// load tables into their inputs
	for _, name := range []string{"Person", "Route", "Machines"} {
		src, _ := cat.Source(name)
		in, ok := eng.Input(name)
		if !ok {
			t.Fatalf("input %s not registered", name)
		}
		src.Table.Scan(func(tu data.Tuple) bool {
			in.Push(tu)
			return true
		})
	}
	// sensor readings arrive: L101 open, desk 1 free (fedora machine)
	areaIn, _ := eng.Input("AreaSensors")
	seatIn, _ := eng.Input("SeatSensors")
	areaIn.Push(data.NewTuple(1, data.Str("L101"), data.Str("open")))
	seatIn.Push(data.NewTuple(2, data.Str("L101"), data.Int(1), data.Str("free")))
	seatIn.Push(data.NewTuple(2, data.Str("L101"), data.Int(2), data.Str("free"))) // windows machine: LIKE fails

	rows, err := dep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("results = %v", rows)
	}
	got := rows[0]
	if got.Vals[0].AsString() != "visitor1" || got.Vals[1].AsString() != "L101" ||
		got.Vals[2].AsInt() != 1 || !strings.Contains(got.Vals[3].AsString(), "hall1") {
		t.Fatalf("row = %v", got)
	}

	// the lab closes: the result must retract
	areaIn.Push(data.NewTuple(3, data.Str("L101"), data.Str("open")).Negate())
	rows, _ = dep.Snapshot()
	if len(rows) != 0 {
		t.Fatalf("stale results after close: %v", rows)
	}
}

func TestCompileWindowedAggregate(t *testing.T) {
	cat := testCatalog()
	b := mustBuild(t, `SELECT ss.room, count(*) AS n FROM SeatSensors ss [ROWS 2] GROUP BY ss.room`, cat)
	eng := stream.NewEngine("pc1", vtime.NewScheduler())
	dep, err := CompileStream(b, eng)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := eng.Input("SeatSensors")
	for i := 0; i < 5; i++ {
		in.Push(data.NewTuple(vtime.Time(i+1), data.Str("L101"), data.Int(int64(i)), data.Str("free")))
	}
	rows, err := dep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Vals[1].AsInt() != 2 {
		t.Fatalf("windowed count = %v", rows)
	}
}

func TestCompileOutputToDisplay(t *testing.T) {
	cat := testCatalog()
	b := mustBuild(t, `SELECT ss.room FROM SeatSensors ss OUTPUT TO lobbyScreen`, cat)
	eng := stream.NewEngine("pc1", vtime.NewScheduler())
	if _, err := CompileStream(b, eng); err != nil {
		t.Fatal(err)
	}
	in, _ := eng.Input("SeatSensors")
	in.Push(data.NewTuple(1, data.Str("L101"), data.Int(1), data.Str("free")))
	disp := eng.MustDisplay("lobbyScreen", b.Root.Schema())
	if disp.Len() != 1 {
		t.Fatalf("display rows = %d", disp.Len())
	}
}

func TestBuiltString(t *testing.T) {
	cat := testCatalog()
	b := mustBuild(t, `SELECT ss.room AS r FROM SeatSensors ss ORDER BY r DESC LIMIT 3 OUTPUT TO d`, cat)
	s := b.String()
	for _, want := range []string{"output[d]", "limit[3]", "sort[r desc]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Built.String = %s (missing %s)", s, want)
		}
	}
}
