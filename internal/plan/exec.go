package plan

import (
	"fmt"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
)

// TableHead is the pipeline entry point of one table scan; the deployer
// pushes the table's current rows into it directly, so that a freshly
// deployed query sees rows loaded before it subscribed (pushed inputs have
// no replay).
type TableHead struct {
	Input string
	Head  stream.Operator
}

// Load pushes rows into the table-scan head as one batch, amortizing
// downstream dispatch (lock acquisitions, transport frames) over the whole
// initial table load.
func (th TableHead) Load(rows []data.Tuple) {
	stream.PushBatch(th.Head, rows)
}

// Deployment is a compiled continuous query running on a stream engine.
type Deployment struct {
	// Result is the materialized continuous result; displays snapshot it
	// with the plan's ORDER BY / LIMIT.
	Result  *stream.Materialize
	OrderBy []stream.OrderSpec
	Limit   int
	// Inputs lists the engine inputs the plan subscribed to.
	Inputs []string
	// TableHeads lists table-scan entry points awaiting initial loads.
	TableHeads []TableHead
}

// Snapshot returns the current result rows under the query's ORDER BY and
// LIMIT.
func (d *Deployment) Snapshot() ([]data.Tuple, error) {
	return d.Result.Snapshot(d.OrderBy, d.Limit)
}

// CompileStream lowers a logical plan onto a stream engine: it builds the
// operator pipeline bottom-up, registers/validates the engine inputs the
// scans need, and subscribes the pipeline to them. When the plan names a
// display (OUTPUT TO), the result also feeds the engine's display.
func CompileStream(b *Built, eng *stream.Engine) (*Deployment, error) {
	mat := stream.NewMaterialize(b.Root.Schema())
	dep := &Deployment{Result: mat, OrderBy: b.OrderBy, Limit: b.Limit}

	var sink stream.Operator = mat
	if b.Display != "" {
		disp := eng.Display(b.Display, b.Root.Schema())
		sink = stream.NewTee(mat, disp)
	}
	if err := compileNode(b.Root, sink, eng, dep); err != nil {
		return nil, err
	}
	return dep, nil
}

func compileNode(n Node, out stream.Operator, eng *stream.Engine, dep *Deployment) error {
	switch x := n.(type) {
	case *Scan:
		in, ok := eng.Input(x.Input)
		if !ok {
			var err error
			in, err = eng.Register(x.Input, x.Schema())
			if err != nil {
				return err
			}
		}
		if in.Schema().Arity() != x.Schema().Arity() {
			return fmt.Errorf("plan: input %s arity %d does not match scan %s",
				x.Input, in.Schema().Arity(), x.Schema())
		}
		head := out
		if !x.IsTable {
			w := windowFor(x.Window)
			switch {
			case w == nil:
				// unwindowed stream: tuples accumulate (append-only source)
			default:
				win := buildWindow(w, out)
				eng.TrackWindow(win)
				head = win
			}
		}
		in.Subscribe(head)
		dep.Inputs = append(dep.Inputs, x.Input)
		if x.IsTable {
			dep.TableHeads = append(dep.TableHeads, TableHead{Input: x.Input, Head: head})
		}
		return nil

	case *Select:
		pred, err := expr.Bind(x.Pred, x.In.Schema())
		if err != nil {
			return err
		}
		return compileNode(x.In, stream.NewFilter(out, pred), eng, dep)

	case *Project:
		p, err := stream.NewProject(out, x.In.Schema(), x.Items)
		if err != nil {
			return err
		}
		return compileNode(x.In, p, eng, dep)

	case *Join:
		j, err := stream.NewJoin(out, x.L.Schema(), x.R.Schema(), x.LKey, x.RKey, x.Residual)
		if err != nil {
			return err
		}
		if err := compileNode(x.L, j.Left(), eng, dep); err != nil {
			return err
		}
		return compileNode(x.R, j.Right(), eng, dep)

	case *Aggregate:
		a, err := stream.NewAggregate(out, x.In.Schema(), x.GroupBy, x.Specs, x.Having)
		if err != nil {
			return err
		}
		return compileNode(x.In, a, eng, dep)

	case *Distinct:
		return compileNode(x.In, stream.NewDistinct(out), eng, dep)
	}
	return fmt.Errorf("plan: cannot compile %T", n)
}

type windowSpec struct {
	kind  sql.WindowKind
	rng   time.Duration
	slide time.Duration
	rows  int
}

func windowFor(w *sql.WindowSpec) *windowSpec {
	if w == nil || w.Kind == sql.WindowNone {
		return nil
	}
	return &windowSpec{kind: w.Kind, rng: w.Range, slide: w.Slide, rows: w.Rows}
}

func buildWindow(w *windowSpec, out stream.Operator) *stream.Window {
	switch w.kind {
	case sql.WindowRows:
		return stream.NewRowsWindow(out, w.rows)
	case sql.WindowNow:
		return stream.NewNowWindow(out)
	default:
		return stream.NewTimeWindow(out, w.rng, w.slide)
	}
}
