package plan

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// TableHead is the pipeline entry point of one table scan; the deployer
// pushes the table's current rows into it directly, so that a freshly
// deployed query sees rows loaded before it subscribed (pushed inputs have
// no replay).
type TableHead struct {
	Input string
	Head  stream.Operator
}

// Load pushes rows into the table-scan head as one batch, amortizing
// downstream dispatch (lock acquisitions, transport frames) over the whole
// initial table load.
func (th TableHead) Load(rows []data.Tuple) {
	stream.PushBatch(th.Head, rows)
}

// Deployment is a compiled continuous query running on a stream engine.
type Deployment struct {
	// Result is the materialized continuous result; displays snapshot it
	// with the plan's ORDER BY / LIMIT.
	Result  *stream.Materialize
	OrderBy []stream.OrderSpec
	Limit   int
	// Inputs lists the engine inputs the plan subscribed to.
	Inputs []string
	// TableHeads lists table-scan entry points awaiting initial loads.
	TableHeads []TableHead
	// Shards is the partition-parallel width the plan deployed with
	// (1 = serial execution).
	Shards int
	// TwoPhase reports that the plan's aggregate deployed as per-shard
	// PartialAggregate stages merged by one serial FinalMerge (the path
	// that shards global aggregates and non-partitionable grouping keys).
	TwoPhase bool
	// Nodes records the worker topology the shards deployed over, as
	// given in CompileOptions — affinity annotations included (empty =
	// every replica in-process).
	Nodes []string
	// Failover reports that lost workers redeploy from checkpoints (see
	// CompileOptions.Failover); it is false when no replica left the
	// process.
	Failover bool
	// RemoteFragments names the sensor-derived inputs whose fragments
	// deployed inside the shard replicas (see CompileOptions.Fragments):
	// the runtime must not start central epoch runners for them — each
	// shard samples its partition where it runs.
	RemoteFragments []string

	set *stream.ShardSet
	// scanSources lists the sources this plan's shards want to sit near —
	// scanned inputs, with fragment-fed scans resolved to their raw sensor
	// sources — so Rescale re-applies the same locality policy the compile
	// used.
	scanSources []string
	// coordCks lists the coordinator-side stateful operators — serial
	// pipeline (or two-phase spine) operators in compile order, then the
	// materialized result — the deterministic sequence durable snapshots
	// encode and a rehydrated deployment restores. Operators living in
	// shared prefix chains are excluded: the chain, not any one
	// deployment, owns them (their state is not yet snapshotted — see
	// ROADMAP, multi-query sharing).
	coordCks []stream.Checkpointer

	// eng is the engine the deployment attached to; Close detaches the
	// records below from it.
	eng *stream.Engine
	// heads records every engine-input subscription the compile made —
	// serial pipeline heads, sharded exchange Sharders — so Close can
	// unsubscribe them.
	heads []headSub
	// advs records the engine-tracked advancers (serial windows; the
	// shard set itself) for UntrackWindow at Close.
	advs []stream.Advancer
	// shared records refcounted attachments to shared prefix chains.
	shared []sharedAttach

	closeOnce sync.Once
}

// headSub is one recorded engine-input subscription.
type headSub struct {
	in *stream.Input
	op stream.Operator
}

// Flush blocks until every tuple pushed so far has been fully processed.
// Serial deployments process synchronously, so it only acts on sharded
// ones, where it barriers the shard workers.
func (d *Deployment) Flush() {
	if d.set != nil {
		d.set.Flush()
	}
}

// Snapshot returns the current result rows under the query's ORDER BY and
// LIMIT, after flushing any in-flight sharded work.
func (d *Deployment) Snapshot() ([]data.Tuple, error) {
	d.Flush()
	return d.Result.Snapshot(d.OrderBy, d.Limit)
}

// Close stops the deployment and detaches it from the engine: shard
// workers (if any) stop first, then every engine-input subscription the
// compile made is unsubscribed, every tracked advancer untracked, and
// every shared-prefix attachment released — tearing down any chain whose
// last query this was. Safe on a live engine: an in-flight push or tick
// keeps the subscriber list it loaded, so at most one final delivery
// lands; later pushes into the deployment's inputs and later clock ticks
// no longer reach it. Close is idempotent and concurrent-safe with
// Snapshot — the set pointer stays in place, and Flush on a closed set
// is a no-op.
func (d *Deployment) Close() {
	d.closeOnce.Do(func() {
		if d.set != nil {
			d.set.Close()
		}
		for _, h := range d.heads {
			h.in.Unsubscribe(h.op)
		}
		if d.eng != nil {
			for _, a := range d.advs {
				d.eng.UntrackWindow(a)
			}
		}
		for _, sa := range d.shared {
			sa.release()
		}
	})
}

// Rescale moves a live sharded deployment onto a new worker topology,
// re-applying the locality placement policy the compile used: shards
// round-robin over the workers whose affinity annotations cover a scanned
// source, falling back to all workers (the CompileOptions.Nodes placement
// rule), with "" keeping a shard in-process and an empty list pulling
// every shard home. Moved shards carry their checkpointed operator state,
// so results stay multiset-identical to serial across the move; untouched
// shards never stop serving. This is both elastic scale-out/in (workers
// joining or leaving) and heal-back (re-homing shards a past failover
// stranded in-process or piled onto a survivor). Serial deployments have
// no shards to move and report an error.
func (d *Deployment) Rescale(nodes []string) error {
	if d.set == nil {
		return fmt.Errorf("plan: Rescale on a serial deployment (no shards to move)")
	}
	addrs, affinity, err := ParseNodes(nodes)
	if err != nil {
		return err
	}
	loc := placeShards(d.Shards, addrs, affinity, d.scanSources)
	if err := d.set.Rescale(loc); err != nil {
		return err
	}
	d.Nodes = nodes
	return nil
}

// Placement reports where each shard currently runs ("" = in-process) —
// the live topology after failovers and rescales, as opposed to the
// compile-time Nodes request.
func (d *Deployment) Placement() []string {
	if d.set == nil {
		return nil
	}
	return d.set.Placement()
}

// ParseNodes splits a CompileOptions.Nodes list into plain worker
// addresses and source affinities. Each entry is either a bare address
// ("127.0.0.1:7001") or an annotated one ("127.0.0.1:7001=temperature,light")
// declaring which raw sources that worker physically hosts. The returned
// addrs keep the entry order (they are what gets dialed); affinity maps
// each annotated address to its lowercased source list.
//
// Malformed lists are configuration errors, not silent degradations: an
// affinity annotation without an address ("=sensors") would otherwise map
// to the in-process worker with its affinity dropped, and a duplicate
// address would double-weight one worker in placeShards.
func ParseNodes(nodes []string) (addrs []string, affinity map[string][]string, err error) {
	affinity = map[string][]string{}
	addrs = make([]string, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for i, n := range nodes {
		addr, srcs, ok := strings.Cut(n, "=")
		addrs[i] = addr
		if ok && addr == "" {
			return nil, nil, fmt.Errorf("plan: node entry %q declares a source affinity but no worker address", n)
		}
		if addr != "" {
			if seen[addr] {
				return nil, nil, fmt.Errorf("plan: duplicate worker address %q in node list", addr)
			}
			seen[addr] = true
		}
		if !ok || addr == "" {
			continue
		}
		for _, s := range strings.Split(srcs, ",") {
			if s = strings.TrimSpace(s); s != "" {
				affinity[addr] = append(affinity[addr], strings.ToLower(s))
			}
		}
	}
	return addrs, affinity, nil
}

// placeShards applies the locality policy: shards round-robin over the
// workers whose affinity covers at least one of the plan's scanned sources
// (in Nodes order), so a scan's partitions land where its data originates;
// when no worker declares a matching affinity the placement degrades to
// the load-balanced round-robin over every worker. An empty address list
// keeps all shards in-process.
func placeShards(p int, addrs []string, affinity map[string][]string, scanSources []string) []string {
	loc := make([]string, p)
	if len(addrs) == 0 {
		return loc
	}
	pool := addrs
	if affine := affineAddrs(addrs, affinity, scanSources); len(affine) > 0 {
		pool = affine
	}
	for j := range loc {
		loc[j] = pool[j%len(pool)]
	}
	return loc
}

// affineAddrs filters addrs to those whose affinity covers a scanned
// source, preserving order.
func affineAddrs(addrs []string, affinity map[string][]string, scanSources []string) []string {
	want := make(map[string]bool, len(scanSources))
	for _, s := range scanSources {
		want[strings.ToLower(s)] = true
	}
	var out []string
	for _, a := range addrs {
		for _, s := range affinity[a] {
			if want[s] {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// captureStates snapshots the deployment at one consistency point: the
// per-shard encoded operator states (nil for a serial deployment) and the
// coordinator-side state, taken under the shard set's quiescent barrier so
// both halves agree. Serial deployments process synchronously, so their
// capture is consistent as long as the caller is not pushing concurrently
// — the same contract Snapshot has.
func (d *Deployment) captureStates() (map[int][]byte, []byte, error) {
	if d.set == nil {
		coord, err := stream.EncodeCheckpoint(d.coordCks)
		if err != nil {
			return nil, nil, err
		}
		return nil, coord, nil
	}
	var coord []byte
	shards, err := d.set.CheckpointAll(func() error {
		var serr error
		coord, serr = stream.EncodeCheckpoint(d.coordCks)
		return serr
	})
	if err != nil {
		return nil, nil, err
	}
	return shards, coord, nil
}

// CompileOptions tunes CompileStreamOpts.
type CompileOptions struct {
	// Parallelism requests hash-partitioned parallel execution across this
	// many pipeline replicas. Values < 2 compile serial; plans the shard
	// analysis cannot prove partitionable (see shard.go) fall back to
	// serial compilation silently — check Deployment.Shards.
	Parallelism int
	// Nodes distributes the replicas over shard workers (see
	// plan.NewWorker / cmd/shardworker). Entries are worker addresses,
	// optionally annotated with the raw sources the worker physically
	// hosts ("addr=temperature,light" — see ParseNodes). Placement is
	// locality-aware: shards round-robin over the workers whose affinity
	// covers a scanned source, falling back to round-robin over all
	// workers ("" keeps a replica in-process; empty list means all
	// in-process). Exchange routing, clock ticks, and Flush/Snapshot
	// barriers span the worker connections, so results stay
	// multiset-identical to serial execution wherever the replicas live.
	//
	// Naming workers without Parallelism >= 2 is a configuration error
	// (the explicit machine list would be silently ignored). Plans the
	// shard analysis cannot partition still fall back to serial without
	// their workers, mirroring the documented Parallelism semantics —
	// check Deployment.Shards/Nodes when distribution matters.
	Nodes []string
	// Failover converts worker loss from fail-stop into checkpointed
	// redeploy: remote replicas periodically checkpoint their operator
	// state to the coordinator at tick barriers, and when a worker dies or
	// stalls its shards redeploy — checkpoint plus replayed epochs — onto a
	// surviving worker, or in-process as the last resort, keeping
	// Deployment.Flush/Snapshot exact across the loss. Only meaningful
	// with a Nodes topology.
	Failover bool
	// CheckpointEvery is the checkpoint cadence in clock ticks (default 8);
	// smaller values shrink replay logs, larger ones shrink checkpoint
	// traffic.
	CheckpointEvery int
	// StallTimeout bounds every ack wait on a shard worker (flush/deploy
	// barriers, in-flight credits, socket writes); a worker silent past it
	// is a detected failure. 0 keeps the package default (30s).
	StallTimeout time.Duration
	// OnFailover, when set, observes completed failovers (tests, ops).
	OnFailover func(stream.FailoverEvent)
	// Fragments lists the sensor fragments feeding this plan's derived
	// inputs. The compile hosts each fragment inside the shard replicas —
	// partitioned sampling next to the data — when the shard key is
	// node-determined, epochs align with engine ticks, and every remote
	// shard home declares affinity for the fragment's sources; fragments
	// failing any condition stay central (the caller starts their epoch
	// runners as before — check Deployment.RemoteFragments).
	Fragments []SensorFragment
	// SensorHosts registers the sensor engines this process hosts, so
	// in-process shards (and failover's in-process last resort) can run
	// fragment partitions locally. Required for fragments to leave the
	// coordinator.
	SensorHosts *SensorHosts
	// TickPeriod is the engine's clock tick cadence; shard-hosted
	// fragments must fire on tick instants (period a positive multiple,
	// anchor aligned), so the compile needs it to decide eligibility.
	TickPeriod time.Duration
	// Now is the scheduler instant of this compile; fragment epochs anchor
	// at Now+period, matching a central runner started now.
	Now vtime.Time
	// Sharing, when set, lets this compile share canonicalized plan
	// prefixes — the scan, its window, and any stack of selections over
	// one non-table source — with every other deployment compiled against
	// the same registry: N queries run one physical prefix chain, fanning
	// out only where their plans diverge, and the last Close tears the
	// chain down. Serial compiles only; sharded plans ignore it. See
	// Sharing for semantics (warm-start attach, positional canon keys).
	Sharing *Sharing

	// restoreShards and restoreCoord rehydrate a deployment from a durable
	// coordinator snapshot (see Coordinator): per-shard operator states
	// keyed by shard index, and the coordinator-side state. Unexported —
	// only Coordinator.Restore compiles with them, and it derives both
	// from a snapshot the same compile produced.
	restoreShards map[int][]byte
	restoreCoord  []byte
	// restoreLoc pins the exact per-shard placement captured at snapshot
	// time (after any failovers/rescales), overriding the Nodes round-robin
	// rule, so a rehydrated deployment lands its shards where their state
	// last lived.
	restoreLoc []string
	// restoreForceFrags pins the fragment placement decision instead of
	// re-deriving it: exactly the fragments named in restoreRemoteFrags
	// deploy inside the shard replicas, in that order. Eligibility is
	// time-dependent (epoch/tick alignment anchors at Now), so a restore
	// must replay the snapshot's decision — the shard checkpoints carry one
	// opaque runner state per remote fragment, and the checkpointer lists
	// must match position for position.
	restoreForceFrags  bool
	restoreRemoteFrags []string
}

// CompileStream lowers a logical plan onto a stream engine serially; see
// CompileStreamOpts.
func CompileStream(b *Built, eng *stream.Engine) (*Deployment, error) {
	return CompileStreamOpts(b, eng, CompileOptions{})
}

// CompileStreamOpts lowers a logical plan onto a stream engine: it builds
// the operator pipeline bottom-up, registers/validates the engine inputs
// the scans need, and subscribes the pipeline to them. When the plan names
// a display (OUTPUT TO), the result also feeds the engine's display. With
// Parallelism > 1 and a partitionable plan, the pipeline is replicated per
// shard behind Sharder exchanges and folded back through a Merge.
func CompileStreamOpts(b *Built, eng *stream.Engine, opts CompileOptions) (*Deployment, error) {
	if len(opts.Nodes) > 0 && opts.Parallelism < 2 {
		return nil, fmt.Errorf("plan: a Nodes topology (%d workers) requires Parallelism >= 2, got %d",
			len(opts.Nodes), opts.Parallelism)
	}
	// Validate the node list up front, on every path: serial fallbacks
	// would otherwise carry a malformed list into a later Rescale.
	if _, _, err := ParseNodes(opts.Nodes); err != nil {
		return nil, err
	}
	if opts.Parallelism > 1 {
		if strat, ok := analyzeShard(b.Root); ok {
			return compileSharded(b, eng, opts, strat)
		}
	}
	dep := &Deployment{OrderBy: b.OrderBy, Limit: b.Limit, Shards: 1, eng: eng}
	sink, err := newDeploymentSink(b, eng, dep)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		track: func(a stream.Advancer) {
			eng.TrackWindow(a)
			dep.advs = append(dep.advs, a)
		},
		ck: func(k stream.Checkpointer) { dep.coordCks = append(dep.coordCks, k) },
		scanHead: func(x *Scan, head stream.Operator) error {
			return attachScan(x, head, eng, dep)
		},
		share:     opts.Sharing,
		dep:       dep,
		restoring: opts.restoreCoord != nil,
	}
	if err := c.compile(b.Root, sink); err != nil {
		dep.Close() // detach whatever the partial compile already wired
		return nil, err
	}
	dep.coordCks = append(dep.coordCks, dep.Result)
	if opts.restoreCoord != nil {
		if err := stream.RestoreCheckpoint(dep.coordCks, opts.restoreCoord); err != nil {
			dep.Close()
			return nil, err
		}
	}
	return dep, nil
}

// newDeploymentSink builds the shared result sink: the materialized result,
// teed into the engine display when the plan names one.
func newDeploymentSink(b *Built, eng *stream.Engine, dep *Deployment) (stream.Operator, error) {
	mat := stream.NewMaterialize(b.Root.Schema())
	dep.Result = mat
	var sink stream.Operator = mat
	if b.Display != "" {
		disp, err := eng.Display(b.Display, b.Root.Schema())
		if err != nil {
			return nil, err
		}
		sink = stream.NewTee(mat, disp)
	}
	return sink, nil
}

// resolveScanInput registers (or validates) the engine input behind a
// scan without subscribing anything.
func resolveScanInput(x *Scan, eng *stream.Engine) (*stream.Input, error) {
	in, ok := eng.Input(x.Input)
	if !ok {
		var err error
		in, err = eng.Register(x.Input, x.Schema())
		if err != nil {
			return nil, err
		}
	}
	if in.Schema().Arity() != x.Schema().Arity() {
		return nil, fmt.Errorf("plan: input %s arity %d does not match scan %s",
			x.Input, in.Schema().Arity(), x.Schema())
	}
	return in, nil
}

// attachScan wires a finished pipeline head to its scan's engine input and
// records it on the deployment.
func attachScan(x *Scan, head stream.Operator, eng *stream.Engine, dep *Deployment) error {
	in, err := resolveScanInput(x, eng)
	if err != nil {
		return err
	}
	in.Subscribe(head)
	dep.heads = append(dep.heads, headSub{in: in, op: head})
	dep.Inputs = append(dep.Inputs, x.Input)
	if x.IsTable {
		dep.TableHeads = append(dep.TableHeads, TableHead{Input: x.Input, Head: head})
	}
	return nil
}

// compileSharded deploys P pipeline replicas: each scan feeds a Sharder
// that hash-partitions its input on the analysis-chosen key, every
// replica's windows are clock-ticked by the shard set in-order with that
// shard's data, and all replicas emit into one Merge-guarded sink.
//
// With a two-phase strategy the replicas cover only the subtree below the
// split aggregate, each capped by a PartialAggregate; the operators above
// the split — the serial spine — compile once behind the Merge funnel,
// fed by the FinalMerge that combines the shards' partial states.
//
// With a node topology, replicas round-robin over the listed shard
// workers: a remote replica compiles inside its worker process from the
// shipped wire spec, the Sharder routes its partitions over the worker
// connection, and the worker funnels results (or partial rows) back
// through the same connection into the Merge sink. Worker connections
// are logical streams: every deployment to the same address shares one
// pooled TCP connection (stream.WorkerConnCount counts the sockets),
// with FIFO ordering per stream preserved for barriers and failover.
func compileSharded(b *Built, eng *stream.Engine, opts CompileOptions, strat *shardStrategy) (*Deployment, error) {
	p, nodes := opts.Parallelism, opts.Nodes
	dep := &Deployment{OrderBy: b.OrderBy, Limit: b.Limit, Shards: p,
		TwoPhase: strat.Split != nil, Nodes: nodes, eng: eng}
	sink, err := newDeploymentSink(b, eng, dep)
	if err != nil {
		return nil, err
	}
	set := stream.NewShardSet(p)

	parRoot := b.Root
	var merge *stream.Merge
	var replicaSink func() (stream.Operator, error)
	if strat.Split == nil {
		merge = stream.NewMerge(sink)
		replicaSink = func() (stream.Operator, error) { return merge, nil }
	} else {
		sc := &compiler{
			splitAgg: strat.Split,
			track:    func(stream.Advancer) {}, // the spine is unary and windowless
			ck:       func(k stream.Checkpointer) { dep.coordCks = append(dep.coordCks, k) },
			scanHead: func(x *Scan, _ stream.Operator) error {
				return fmt.Errorf("plan: scan %s on the serial spine of a two-phase plan", x.Input)
			},
		}
		if err := sc.compile(b.Root, sink); err != nil {
			return nil, err
		}
		merge = stream.NewMerge(sc.finalMerge)
		split := strat.Split
		parRoot = split.In
		replicaSink = func() (stream.Operator, error) {
			return stream.NewPartialAggregate(merge, split.In.Schema(), split.GroupBy, split.Specs)
		}
	}

	scans := Scans(parRoot)
	// Resolve what each scan reads: its input, or — for fragment-fed
	// derived inputs — the raw sensor sources behind the fragment. This
	// drives locality placement now and again at Rescale.
	fragFor := map[*Scan]*SensorFragment{}
	for i := range opts.Fragments {
		f := &opts.Fragments[i]
		for _, sc := range scans {
			if strings.EqualFold(sc.Input, f.Name) {
				fragFor[sc] = f
			}
		}
	}
	var scanSrcs []string
	for _, sc := range scans {
		if f := fragFor[sc]; f != nil {
			scanSrcs = append(scanSrcs, f.Sources...)
		} else if !sc.IsTable {
			scanSrcs = append(scanSrcs, strings.ToLower(sc.Input))
		}
	}
	dep.scanSources = scanSrcs

	// Locality-aware placement: shards land on the workers hosting the
	// plan's sources, load-balanced over all workers otherwise ("" keeps a
	// shard in-process). A rehydrating compile instead pins the placement
	// the snapshot captured.
	addrs, affinity, err := ParseNodes(nodes)
	if err != nil {
		return nil, err
	}
	loc := placeShards(p, addrs, affinity, scanSrcs)
	if len(opts.restoreLoc) == p {
		copy(loc, opts.restoreLoc)
	}
	anyRemote := false
	for j := range loc {
		anyRemote = anyRemote || loc[j] != ""
	}

	// Decide, per fragment, whether it deploys inside the shard replicas:
	// the shard key must be node-determined (sampling partitions by it),
	// epochs must land on tick instants, the coordinator must host the
	// sources (in-process shards, failover's local last resort), and every
	// remote shard home must declare affinity for them. Anything else
	// stays a central runner.
	var wireFrags []wireFragment
	if opts.restoreForceFrags {
		// A rehydrating compile replays the snapshot's fragment placement
		// verbatim: eligibility is a function of the compile instant (epoch
		// anchors, tick alignment) and of worker affinity, both of which may
		// legitimately differ now — but the shard checkpoints were encoded
		// against exactly the snapshot's runner list, so the same fragments
		// must go remote in the same wire order.
		for _, name := range opts.restoreRemoteFrags {
			var f *SensorFragment
			var sc *Scan
			for cand, frag := range fragFor {
				if strings.EqualFold(frag.Name, name) {
					f, sc = frag, cand
				}
			}
			if f == nil {
				return nil, fmt.Errorf("plan: snapshot pins fragment %s remote, but the plan no longer carries it", name)
			}
			keyIdx, ok := fragmentKeyIdx(f, sc, strat.Keys[sc])
			if !ok {
				return nil, fmt.Errorf("plan: snapshot pins fragment %s remote, but its shard key is no longer node-determined", name)
			}
			i := scanIndex(scans, sc)
			wf, err := encodeFragment(f, scanName(i), keyIdx, p, opts.Now.Add(f.period()))
			if err != nil {
				return nil, err
			}
			wireFrags = append(wireFrags, wf)
			dep.RemoteFragments = append(dep.RemoteFragments, f.Name)
		}
	} else if anyRemote {
		for _, sc := range scans {
			f := fragFor[sc]
			if f == nil {
				continue
			}
			keyIdx, ok := fragmentKeyIdx(f, sc, strat.Keys[sc])
			if !ok || !alignedWithTicks(f.period(), opts.TickPeriod, opts.Now) {
				continue
			}
			hosted := opts.SensorHosts != nil
			for _, src := range f.Sources {
				if _, ok := opts.SensorHosts.Engine(src); !ok {
					hosted = false
				}
			}
			for j := range loc {
				if loc[j] == "" {
					continue
				}
				have := make(map[string]bool, len(affinity[loc[j]]))
				for _, s := range affinity[loc[j]] {
					have[s] = true
				}
				for _, src := range f.Sources {
					if !have[strings.ToLower(src)] {
						hosted = false
					}
				}
			}
			if !hosted {
				continue
			}
			i := scanIndex(scans, sc)
			wf, err := encodeFragment(f, scanName(i), keyIdx, p, opts.Now.Add(f.period()))
			if err != nil {
				return nil, err
			}
			wireFrags = append(wireFrags, wf)
			dep.RemoteFragments = append(dep.RemoteFragments, f.Name)
		}
	}

	heads := make(map[*Scan][]stream.Operator, len(scans))
	for _, sc := range scans {
		heads[sc] = make([]stream.Operator, p)
	}
	// Until set.Start, the connections are ours to tear down on failure
	// (the unstarted set never owns them).
	conns := map[string]*stream.ShardConn{}
	fail := func(err error) (*Deployment, error) {
		for _, c := range conns {
			_ = c.Close()
		}
		return nil, err
	}
	// Every sharded deployment encodes its replica spec and arms the shard
	// set's redeploy machinery, even all-in-process ones: Rescale needs the
	// spec and wiring to move shards onto workers that join later. With
	// Failover the arming also carries replay logs and failure notification
	// (checkpointed redeploy on worker loss); without it the elastic arming
	// is planned-moves-only — worker loss stays fail-stop and the hot path
	// pays nothing.
	spec, err := encodeReplica(parRoot, strat.Split, wireFrags)
	if err != nil {
		return nil, err
	}
	fcfg := stream.FailoverConfig{
		Spec:            spec,
		Nodes:           addrs,
		Sink:            merge,
		LocalDeploy:     opts.SensorHosts.DeployReplica,
		CheckpointEvery: opts.CheckpointEvery,
		StallTimeout:    opts.StallTimeout,
		OnFailover:      opts.OnFailover,
	}
	if opts.Failover {
		// Arm before the connections register: SetRemote wires each one for
		// replay logging and failure notification as it joins the set.
		dep.Failover = anyRemote
		set.EnableFailover(fcfg)
	} else {
		set.EnableElastic(fcfg)
	}
	dep.coordCks = append(dep.coordCks, dep.Result)
	if opts.restoreCoord != nil {
		if err := stream.RestoreCheckpoint(dep.coordCks, opts.restoreCoord); err != nil {
			return nil, err
		}
	}

	for j := 0; j < p; j++ {
		if loc[j] == "" {
			out, err := replicaSink()
			if err != nil {
				return fail(err)
			}
			// Track the replica's stateful operators in the same order
			// DeployReplica uses on a worker — partial-aggregate cap first,
			// then compile order — so a shard's checkpoint restores
			// identically wherever it lands.
			var cks []stream.Checkpointer
			if pa, ok := out.(*stream.PartialAggregate); ok {
				cks = append(cks, pa)
			}
			shard := j
			c := &compiler{
				track: func(a stream.Advancer) { set.Track(shard, a) },
				ck:    func(k stream.Checkpointer) { cks = append(cks, k) },
				scanHead: func(x *Scan, head stream.Operator) error {
					heads[x][shard] = head
					return nil
				},
			}
			if err := c.compile(parRoot, out); err != nil {
				return fail(err)
			}
			// In-process shards host their slice of the sensor fragments
			// too, mirroring a worker's DeployReplica: runners ride the
			// shard's advancer queue and extend the checkpointer list in
			// spec order, keeping checkpoints portable across placements.
			localHeads := map[string]stream.Operator{}
			for i, sc := range scans {
				localHeads[scanName(i)] = heads[sc][shard]
			}
			runners, err := opts.SensorHosts.buildFragRunners(wireFrags, shard, localHeads)
			if err != nil {
				return fail(err)
			}
			for _, r := range runners {
				set.Track(shard, r)
				cks = append(cks, r)
			}
			if st := opts.restoreShards[j]; st != nil {
				if err := stream.RestoreCheckpoint(cks, st); err != nil {
					return fail(err)
				}
			}
			set.SetLocalCks(j, cks)
			continue
		}
		conn := conns[loc[j]]
		if conn == nil {
			var err error
			if conn, err = stream.DialShard(loc[j], merge); err != nil {
				return fail(err)
			}
			conn.SetStallTimeout(opts.StallTimeout)
			conns[loc[j]] = conn
		}
		// Register before the deploy barrier so a failover-armed link logs
		// from its first frame; failure notification only arms at Start, so
		// a worker lost during compile still just fails the compile.
		set.SetRemote(j, conn)
		// The worker compiles the replica from the spec; its scan heads
		// answer to the walk-order names both sides derive from the tree.
		// A rehydrating compile ships the shard's snapshotted state along.
		if err := conn.Deploy(spec, j, opts.restoreShards[j]); err != nil {
			return fail(err)
		}
		for i, sc := range scans {
			heads[sc][j] = conn.Head(sc.Schema(), j, scanName(i))
		}
	}
	// Resolve every input and build every exchange before wiring anything
	// into the live engine: a failure on the second scan must not leave
	// the first scan's Sharder subscribed and feeding a dead set.
	type wiring struct {
		scan *Scan
		in   *stream.Input
		sh   *stream.Sharder
	}
	var ws []wiring
	for i, scan := range scans {
		sh, err := newScanSharder(set, heads[scan], scan, strat.Keys[scan])
		if err != nil {
			return fail(err)
		}
		sh.SetName(scanName(i))
		in, err := resolveScanInput(scan, eng)
		if err != nil {
			return fail(err)
		}
		ws = append(ws, wiring{scan: scan, in: in, sh: sh})
	}
	// Nothing can fail past here: start the workers, then open the taps.
	// From Start on, the set owns the worker connections (Close barriers
	// and closes them).
	set.Start()
	eng.TrackWindow(set)
	dep.advs = append(dep.advs, set)
	dep.set = set
	for _, w := range ws {
		w.in.Subscribe(w.sh)
		dep.heads = append(dep.heads, headSub{in: w.in, op: w.sh})
		dep.Inputs = append(dep.Inputs, w.scan.Input)
		if w.scan.IsTable {
			dep.TableHeads = append(dep.TableHeads, TableHead{Input: w.scan.Input, Head: w.sh})
		}
	}
	return dep, nil
}

// newScanSharder builds the exchange in front of one scan's replica heads.
// When every key is a bare column the exchange routes on stored values
// (the allocation-free fast path); computed keys route on evaluated
// expression values. nil keys partition on all columns.
func newScanSharder(set *stream.ShardSet, heads []stream.Operator, scan *Scan, keys []expr.Expr) (*stream.Sharder, error) {
	if keys == nil {
		return stream.NewSharder(set, heads, nil)
	}
	keyIdx := make([]int, 0, len(keys))
	allCols := true
	for _, k := range keys {
		col, ok := k.(expr.Col)
		if !ok {
			allCols = false
			break
		}
		i, err := scan.Schema().ColIndex(col.Ref)
		if err != nil {
			return nil, fmt.Errorf("plan: shard key %s: %w", col.Ref, err)
		}
		keyIdx = append(keyIdx, i)
	}
	if allCols {
		return stream.NewSharder(set, heads, keyIdx)
	}
	compiled := make([]*expr.Compiled, len(keys))
	for i, k := range keys {
		c, err := expr.Bind(k, scan.Schema())
		if err != nil {
			return nil, fmt.Errorf("plan: shard key %s: %w", k, err)
		}
		compiled[i] = c
	}
	return stream.NewExprSharder(set, heads, compiled)
}

// compiler carries the deployment context of one pipeline replica: who
// receives clock ticks, what to do with a finished scan head (subscribe it
// directly, or hand it to a Sharder), and — for failover-capable replicas —
// who collects the stateful operators for checkpointing.
//
// splitAgg, when set, marks the aggregate a two-phase plan splits at: the
// compiler lowers it to a FinalMerge (recorded in finalMerge) and stops
// descending — the subtree below belongs to the replicas.
type compiler struct {
	track    func(stream.Advancer)
	scanHead func(*Scan, stream.Operator) error
	// ck observes every stateful operator in compile order; DeployReplica
	// sets it so checkpoints snapshot and restore in one deterministic
	// sequence on every host of the same spec.
	ck func(stream.Checkpointer)

	// share and dep, when set (serial compiles with
	// CompileOptions.Sharing), divert shareable prefixes onto the shared
	// chain registry instead of compiling them privately. restoring marks
	// a snapshot rehydration: shared attaches skip the warm-start replay
	// because the restored suffix state already reflects the window.
	share     *Sharing
	dep       *Deployment
	restoring bool

	splitAgg   *Aggregate
	finalMerge *stream.FinalMerge
}

// ckAdd reports a stateful operator to the checkpoint collector, if any.
func (c *compiler) ckAdd(k stream.Checkpointer) {
	if c.ck != nil {
		c.ck(k)
	}
}

func (c *compiler) compile(n Node, out stream.Operator) error {
	// The walk is top-down, so the first shareable subtree seen is the
	// maximal shareable prefix: attach out to its shared chain and stop
	// descending — the chain (not this deployment) owns those operators.
	if c.share != nil {
		if handled, err := c.share.tryAttach(n, out, c.dep, c.restoring); handled {
			return err
		}
	}
	switch x := n.(type) {
	case *Scan:
		head := out
		if !x.IsTable {
			w := windowFor(x.Window)
			switch {
			case w == nil:
				// unwindowed stream: tuples accumulate (append-only source)
			default:
				win := buildWindow(w, out)
				c.track(win)
				c.ckAdd(win)
				head = win
			}
		}
		return c.scanHead(x, head)

	case *Select:
		pred, err := expr.Bind(x.Pred, x.In.Schema())
		if err != nil {
			return err
		}
		return c.compile(x.In, stream.NewFilter(out, pred))

	case *Project:
		p, err := stream.NewProject(out, x.In.Schema(), x.Items)
		if err != nil {
			return err
		}
		return c.compile(x.In, p)

	case *Join:
		j, err := stream.NewJoin(out, x.L.Schema(), x.R.Schema(), x.LKey, x.RKey, x.Residual)
		if err != nil {
			return err
		}
		c.ckAdd(j)
		if err := c.compile(x.L, j.Left()); err != nil {
			return err
		}
		return c.compile(x.R, j.Right())

	case *Aggregate:
		if c.splitAgg == x {
			fm, err := stream.NewFinalMerge(out, x.In.Schema(), x.GroupBy, x.Specs, x.Having)
			if err != nil {
				return err
			}
			c.finalMerge = fm
			c.ckAdd(fm)
			return nil
		}
		a, err := stream.NewAggregate(out, x.In.Schema(), x.GroupBy, x.Specs, x.Having)
		if err != nil {
			return err
		}
		c.ckAdd(a)
		return c.compile(x.In, a)

	case *Distinct:
		d := stream.NewDistinct(out)
		c.ckAdd(d)
		return c.compile(x.In, d)
	}
	return fmt.Errorf("plan: cannot compile %T", n)
}

type windowSpec struct {
	kind  sql.WindowKind
	rng   time.Duration
	slide time.Duration
	rows  int
}

func windowFor(w *sql.WindowSpec) *windowSpec {
	if w == nil || w.Kind == sql.WindowNone {
		return nil
	}
	return &windowSpec{kind: w.Kind, rng: w.Range, slide: w.Slide, rows: w.Rows}
}

func buildWindow(w *windowSpec, out stream.Operator) *stream.Window {
	switch w.kind {
	case sql.WindowRows:
		return stream.NewRowsWindow(out, w.rows)
	case sql.WindowNow:
		return stream.NewNowWindow(out)
	default:
		return stream.NewTimeWindow(out, w.rng, w.slide)
	}
}
