package plan

import (
	"time"

	"aspen/internal/expr"
)

// The stream engine's optimizer minimizes latency (§3: "the stream
// optimizer attempts to minimize latency to answers"). Cost is modelled as
// work per unit time: every tuple flowing through an operator costs one
// unit, joins cost proportionally to probe rates times opposite state size,
// and latency is work × a per-unit constant.

// PerTupleCost is the modelled processing latency of one unit of operator
// work.
const PerTupleCost = 10 * time.Microsecond

// Card estimates a node's output rate (tuples/second for streams; resident
// rows for tables).
func Card(n Node) float64 {
	switch x := n.(type) {
	case *Scan:
		if x.Rate > 0 {
			return x.Rate
		}
		return 1
	case *Select:
		return Card(x.In) * expr.Selectivity(x.Pred)
	case *Join:
		sel := 0.1
		if len(x.LKey) == 0 {
			sel = 1 // cross join
		}
		if x.Residual != nil {
			sel *= expr.Selectivity(x.Residual)
		}
		return Card(x.L) * Card(x.R) * sel
	case *Project:
		return Card(x.In)
	case *Aggregate:
		c := Card(x.In) * 0.2
		if len(x.GroupBy) == 0 {
			c = 1
		}
		if x.Having != nil {
			c *= expr.Selectivity(x.Having)
		}
		if c < 1 {
			c = 1
		}
		return c
	case *Distinct:
		return Card(x.In) * 0.8
	}
	return 1
}

// Work estimates total operator work per second for the plan.
func Work(n Node) float64 {
	switch x := n.(type) {
	case *Scan:
		return Card(x)
	case *Select:
		return Work(x.In) + Card(x.In)
	case *Join:
		// symmetric hash join: each side probes the other's state
		return Work(x.L) + Work(x.R) + Card(x.L) + Card(x.R) + Card(x)
	case *Project:
		return Work(x.In) + Card(x.In)
	case *Aggregate:
		return Work(x.In) + Card(x.In)
	case *Distinct:
		return Work(x.In) + Card(x.In)
	}
	return 0
}

// Latency converts plan work into the modelled per-result latency.
func Latency(n Node) time.Duration {
	return time.Duration(Work(n) * float64(PerTupleCost))
}
