package plan

import (
	"bufio"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// TestDistributedWorkerProcesses is the full multi-PC deployment: two real
// shardworker processes on loopback TCP host the replicas of sharded
// deployments, and the differential harness holds their results
// multiset-identical to serial execution. The workers are built from
// cmd/shardworker (with -race when this test runs under the detector), so
// the wire protocol crosses genuine process and codec boundaries.
func TestDistributedWorkerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches worker processes")
	}
	bin := buildWorker(t)
	addrs := []string{startWorkerProcess(t, bin), startWorkerProcess(t, bin)}
	runShardDifferential(t, *fuzzSeed+5000, 10, addrs)
}

// buildWorker compiles cmd/shardworker into a scratch dir.
func buildWorker(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "shardworker")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "aspen/cmd/shardworker")
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build shardworker: %v\n%s", err, out)
	}
	return bin
}

// startWorkerProcess launches one worker on an ephemeral port and parses
// the advertised address off its stdout.
func startWorkerProcess(t *testing.T, bin string) string {
	addr, _ := startWorkerProcessCmd(t, bin)
	return addr
}

// startWorkerProcessCmd is startWorkerProcess exposing the process handle,
// so chaos tests can SIGKILL it mid-run.
func startWorkerProcessCmd(t *testing.T, bin string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("worker banner: %v", err)
	}
	const banner = "shardworker listening "
	if !strings.HasPrefix(line, banner) {
		t.Fatalf("unexpected worker banner %q", line)
	}
	return strings.TrimSpace(strings.TrimPrefix(line, banner)), cmd
}

// TestChaosWorkerProcessKill is the full-fidelity chaos run: two real
// shardworker processes host the replicas and one of them is SIGKILLed at
// a random epoch mid-run. Checkpointed failover onto the surviving process
// (state restored across a genuine process and codec boundary) must keep
// every result multiset-identical to serial execution.
func TestChaosWorkerProcessKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches worker processes")
	}
	if *fuzzKill <= 0 {
		t.Skip("chaos mode disabled (-fuzzshard.kill=0)")
	}
	bin := buildWorker(t)
	n := *fuzzKill / 2
	if n < 3 {
		n = 3
	}
	runChaosDifferential(t, *fuzzSeed+9000, n, func(t *testing.T) chaosCluster {
		procs := make([]*exec.Cmd, 2)
		addrs := make([]string, 2)
		for i := range procs {
			addrs[i], procs[i] = startWorkerProcessCmd(t, bin)
		}
		return chaosCluster{addrs: addrs, kill: func(i int) {
			procs[i].Process.Kill() // SIGKILL: no teardown, no goodbyes
			procs[i].Wait()
		}}
	})
}

// TestCompileShardedDialRefused: an unreachable worker fails the compile
// cleanly — error out, nothing subscribed, no goroutines left behind.
func TestCompileShardedDialRefused(t *testing.T) {
	b := fuzzBuiltPlan(t)
	eng := stream.NewEngine("refused", vtime.NewScheduler())
	_, err := CompileStreamOpts(b, eng, CompileOptions{
		Parallelism: 2, Nodes: []string{"127.0.0.1:1"},
	})
	if err == nil {
		t.Fatal("compile against a refused worker address must fail")
	}
	if len(eng.Inputs()) != 0 {
		t.Fatalf("failed compile left inputs registered: %v", eng.Inputs())
	}
}

// TestCompileShardedDeadWorker: a worker that stops between dial and
// deploy fails the deploy barrier rather than hanging.
func TestCompileShardedDeadWorker(t *testing.T) {
	w, err := NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := w.Addr()
	w.Close()

	b := fuzzBuiltPlan(t)
	eng := stream.NewEngine("dead", vtime.NewScheduler())
	done := make(chan error, 1)
	go func() {
		_, err := CompileStreamOpts(b, eng, CompileOptions{Parallelism: 2, Nodes: []string{addr}})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("compile against a dead worker must fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("compile against a dead worker hung")
	}
}

// TestCompileNodesWithoutParallelism: naming workers while compiling
// serial is a configuration error, not a silently ignored topology.
func TestCompileNodesWithoutParallelism(t *testing.T) {
	b := fuzzBuiltPlan(t)
	eng := stream.NewEngine("misconfig", vtime.NewScheduler())
	if _, err := CompileStreamOpts(b, eng, CompileOptions{
		Nodes: []string{"127.0.0.1:7070"},
	}); err == nil {
		t.Fatal("Nodes without Parallelism must fail the compile")
	}
}

// TestDeployReplicaGarbageSpec: a corrupt wire spec is a deploy error, not
// a worker panic.
func TestDeployReplicaGarbageSpec(t *testing.T) {
	if _, _, _, err := DeployReplica([]byte{0x01, 0x02, 0x03}, 0, nil,
		func([]data.Tuple) error { return nil }); err == nil {
		t.Fatal("garbage spec must fail to deploy")
	}
}

// fuzzBuiltPlan generates one deterministic partitionable plan.
func fuzzBuiltPlan(t *testing.T) *Built {
	t.Helper()
	sources := fuzzSources()
	for seed := int64(1); seed < 20; seed++ {
		g := &fuzzGen{rng: rand.New(rand.NewSource(seed)), sources: sources}
		root := g.genPlan()
		if _, ok := analyzeShard(root); ok {
			return &Built{Root: root, Limit: -1}
		}
	}
	t.Fatal("no partitionable plan found")
	return nil
}

// TestMultiplexedConnAccounting: every deployment between this
// coordinator and a worker shares one pooled physical connection, so N
// deployments over W workers hold O(W) sockets — not O(N×W) — and the
// last teardown releases them.
func TestMultiplexedConnAccounting(t *testing.T) {
	before := stream.WorkerConnCount()
	nodes := make([]string, 2)
	for i := range nodes {
		w, err := NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		nodes[i] = w.Addr()
	}

	const n = 8
	deps := make([]*Deployment, 0, n)
	for i := 0; i < n; i++ {
		eng := stream.NewEngine("mux", vtime.NewScheduler())
		dep, err := CompileStreamOpts(fuzzBuiltPlan(t), eng, CompileOptions{
			Parallelism: 2, Nodes: nodes,
		})
		if err != nil {
			t.Fatal(err)
		}
		deps = append(deps, dep)
	}
	if got := stream.WorkerConnCount() - before; got != len(nodes) {
		t.Fatalf("%d deployments over %d workers hold %d connections, want %d",
			n, len(nodes), got, len(nodes))
	}
	for _, dep := range deps {
		dep.Close()
	}
	if got := stream.WorkerConnCount() - before; got != 0 {
		t.Fatalf("%d connections still pooled after every deployment closed", got)
	}
}
