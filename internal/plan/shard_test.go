package plan

import (
	"fmt"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// deployStream compiles src onto a fresh engine with the given
// parallelism and returns the deployment plus the engine.
func deployStream(t *testing.T, src string, par int) (*Deployment, *stream.Engine) {
	t.Helper()
	b := mustBuild(t, src, testCatalog())
	eng := stream.NewEngine(fmt.Sprintf("pc-par%d", par), vtime.NewScheduler())
	dep, err := CompileStreamOpts(b, eng, CompileOptions{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return dep, eng
}

// feedOccupancy pushes a deterministic seat/area workload, including
// retractions and a window-expiry tick, into the engine.
func feedOccupancy(t *testing.T, eng *stream.Engine) {
	t.Helper()
	seat, ok := eng.Input("SeatSensors")
	if !ok {
		t.Fatal("SeatSensors input missing")
	}
	area, ok := eng.Input("AreaSensors")
	if !ok {
		t.Fatal("AreaSensors input missing")
	}
	ts := vtime.Time(0)
	for i := 0; i < 200; i++ {
		ts += vtime.Time(100 * time.Millisecond)
		room := fmt.Sprintf("L%d", 101+i%5)
		area.Push(data.NewTuple(ts, data.Str(room), data.Str("open")))
		seat.Push(data.NewTuple(ts, data.Str(room), data.Int(int64(i%3)), data.Str("free")))
		if i%7 == 0 {
			seat.Push(data.NewTuple(ts, data.Str(room), data.Int(int64(i%3)), data.Str("free")).Negate())
		}
	}
	eng.Advance(ts + vtime.Time(3*time.Second))
}

// TestCompileStreamParallelEquivalence deploys the same windowed
// join+aggregate query serially and sharded, drives both with an
// identical workload, and requires identical results.
func TestCompileStreamParallelEquivalence(t *testing.T) {
	const src = `SELECT ss.room, count(*) AS n
		FROM SeatSensors ss [RANGE 5 SECONDS], AreaSensors sa [RANGE 5 SECONDS]
		WHERE sa.room = ss.room ^ sa.status = 'open'
		GROUP BY ss.room ORDER BY ss.room`

	serial, sEng := deployStream(t, src, 0)
	if serial.Shards != 1 {
		t.Fatalf("serial deployment reports %d shards", serial.Shards)
	}
	feedOccupancy(t, sEng)
	want, err := serial.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty; workload is vacuous")
	}

	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			dep, eng := deployStream(t, src, p)
			if dep.Shards != p {
				t.Fatalf("deployment did not shard: Shards = %d, want %d", dep.Shards, p)
			}
			feedOccupancy(t, eng)
			got, err := dep.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			dep.Close()
			if len(got) != len(want) {
				t.Fatalf("sharded rows %v, want %v", got, want)
			}
			for i := range want {
				if !want[i].EqualVals(got[i]) {
					t.Fatalf("row %d: sharded %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCompileStreamParallelTableLoad shards a stream⋈table join and loads
// the table through the deployment's TableHeads (now Sharder-fronted), as
// core's deployer does.
func TestCompileStreamParallelTableLoad(t *testing.T) {
	const src = `SELECT m.room, m.desk FROM Machines m, SeatSensors ss [RANGE 10 SECONDS]
		WHERE m.room = ss.room ^ m.desk = ss.desk`
	dep, eng := deployStream(t, src, 4)
	if dep.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", dep.Shards)
	}
	if len(dep.TableHeads) != 1 || dep.TableHeads[0].Input != "Machines" {
		t.Fatalf("TableHeads = %+v", dep.TableHeads)
	}
	cat := testCatalog()
	src2, _ := cat.Source("Machines")
	var rows []data.Tuple
	src2.Table.Scan(func(tu data.Tuple) bool {
		tu.TS = 1
		rows = append(rows, tu)
		return true
	})
	dep.TableHeads[0].Load(rows)

	seat, _ := eng.Input("SeatSensors")
	seat.Push(data.NewTuple(2, data.Str("L101"), data.Int(1), data.Str("free")))
	seat.Push(data.NewTuple(2, data.Str("L102"), data.Int(1), data.Str("free")))
	seat.Push(data.NewTuple(2, data.Str("L999"), data.Int(9), data.Str("free"))) // no machine

	got, err := dep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dep.Close()
	if len(got) != 2 {
		t.Fatalf("joined rows = %v", got)
	}
}

// TestCompileStreamParallelFallback lists plans the shard analysis must
// refuse — global aggregates, ROWS windows, cross joins, keys hidden
// behind computed projections — and checks they deploy serially (and
// still run) even when parallelism was requested.
func TestCompileStreamParallelFallback(t *testing.T) {
	cases := map[string]string{
		"global-aggregate": `SELECT count(*) AS n FROM SeatSensors ss [RANGE 2 SECONDS]`,
		"rows-window":      `SELECT ss.room, count(*) AS n FROM SeatSensors ss [ROWS 2] GROUP BY ss.room`,
		"cross-join":       `SELECT ss.room FROM SeatSensors ss [NOW], AreaSensors sa [NOW]`,
		"computed-distinct": `SELECT DISTINCT ss.desk + 1 AS d
			FROM SeatSensors ss [RANGE 2 SECONDS]`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			dep, eng := deployStream(t, src, 4)
			if dep.Shards != 1 {
				t.Fatalf("%s sharded (%d) but must fall back serial", name, dep.Shards)
			}
			seat, _ := eng.Input("SeatSensors")
			seat.Push(data.NewTuple(1, data.Str("L101"), data.Int(1), data.Str("free")))
			if _, err := dep.Snapshot(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardableKeysSelection verifies the analysis picks the join/group
// columns for each scan on a plain equi-join plan.
func TestShardableKeysSelection(t *testing.T) {
	b := mustBuild(t, `SELECT ss.room, count(*) AS n
		FROM SeatSensors ss [RANGE 5 SECONDS], AreaSensors sa [RANGE 5 SECONDS]
		WHERE sa.room = ss.room GROUP BY ss.room`, testCatalog())
	keys, ok := shardableKeys(b.Root)
	if !ok {
		t.Fatal("plan must be shardable")
	}
	scans := Scans(b.Root)
	if len(scans) != 2 {
		t.Fatalf("scans = %v", scans)
	}
	for _, s := range scans {
		ks := keys[s]
		if len(ks) != 1 {
			t.Fatalf("scan %s keys = %v, want exactly the join/group column", s, ks)
		}
		if i, err := s.Schema().ColIndex(ks[0]); err != nil || s.Schema().Cols[i].Name != "room" {
			t.Fatalf("scan %s partitions on %v, want its room column", s, ks)
		}
	}
}
