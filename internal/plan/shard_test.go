package plan

import (
	"fmt"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// deployStream compiles src onto a fresh engine with the given
// parallelism and returns the deployment plus the engine.
func deployStream(t *testing.T, src string, par int) (*Deployment, *stream.Engine) {
	t.Helper()
	b := mustBuild(t, src, testCatalog())
	eng := stream.NewEngine(fmt.Sprintf("pc-par%d", par), vtime.NewScheduler())
	dep, err := CompileStreamOpts(b, eng, CompileOptions{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return dep, eng
}

// feedOccupancy pushes a deterministic seat/area workload, including
// retractions and a window-expiry tick, into the engine.
func feedOccupancy(t *testing.T, eng *stream.Engine) {
	t.Helper()
	seat, ok := eng.Input("SeatSensors")
	if !ok {
		t.Fatal("SeatSensors input missing")
	}
	// Absent for single-stream plans.
	area, haveArea := eng.Input("AreaSensors")
	ts := vtime.Time(0)
	for i := 0; i < 200; i++ {
		ts += vtime.Time(100 * time.Millisecond)
		room := fmt.Sprintf("L%d", 101+i%5)
		if haveArea {
			area.Push(data.NewTuple(ts, data.Str(room), data.Str("open")))
		}
		seat.Push(data.NewTuple(ts, data.Str(room), data.Int(int64(i%3)), data.Str("free")))
		if i%7 == 0 {
			seat.Push(data.NewTuple(ts, data.Str(room), data.Int(int64(i%3)), data.Str("free")).Negate())
		}
	}
	eng.Advance(ts + vtime.Time(3*time.Second))
}

// TestCompileStreamParallelEquivalence deploys the same windowed
// join+aggregate query serially and sharded, drives both with an
// identical workload, and requires identical results.
func TestCompileStreamParallelEquivalence(t *testing.T) {
	const src = `SELECT ss.room, count(*) AS n
		FROM SeatSensors ss [RANGE 5 SECONDS], AreaSensors sa [RANGE 5 SECONDS]
		WHERE sa.room = ss.room ^ sa.status = 'open'
		GROUP BY ss.room ORDER BY ss.room`

	serial, sEng := deployStream(t, src, 0)
	if serial.Shards != 1 {
		t.Fatalf("serial deployment reports %d shards", serial.Shards)
	}
	feedOccupancy(t, sEng)
	want, err := serial.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty; workload is vacuous")
	}

	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			dep, eng := deployStream(t, src, p)
			if dep.Shards != p {
				t.Fatalf("deployment did not shard: Shards = %d, want %d", dep.Shards, p)
			}
			feedOccupancy(t, eng)
			got, err := dep.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			dep.Close()
			if len(got) != len(want) {
				t.Fatalf("sharded rows %v, want %v", got, want)
			}
			for i := range want {
				if !want[i].EqualVals(got[i]) {
					t.Fatalf("row %d: sharded %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCompileStreamParallelTableLoad shards a stream⋈table join and loads
// the table through the deployment's TableHeads (now Sharder-fronted), as
// core's deployer does.
func TestCompileStreamParallelTableLoad(t *testing.T) {
	const src = `SELECT m.room, m.desk FROM Machines m, SeatSensors ss [RANGE 10 SECONDS]
		WHERE m.room = ss.room ^ m.desk = ss.desk`
	dep, eng := deployStream(t, src, 4)
	if dep.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", dep.Shards)
	}
	if len(dep.TableHeads) != 1 || dep.TableHeads[0].Input != "Machines" {
		t.Fatalf("TableHeads = %+v", dep.TableHeads)
	}
	cat := testCatalog()
	src2, _ := cat.Source("Machines")
	var rows []data.Tuple
	src2.Table.Scan(func(tu data.Tuple) bool {
		tu.TS = 1
		rows = append(rows, tu)
		return true
	})
	dep.TableHeads[0].Load(rows)

	seat, _ := eng.Input("SeatSensors")
	seat.Push(data.NewTuple(2, data.Str("L101"), data.Int(1), data.Str("free")))
	seat.Push(data.NewTuple(2, data.Str("L102"), data.Int(1), data.Str("free")))
	seat.Push(data.NewTuple(2, data.Str("L999"), data.Int(9), data.Str("free"))) // no machine

	got, err := dep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dep.Close()
	if len(got) != 2 {
		t.Fatalf("joined rows = %v", got)
	}
}

// TestCompileStreamParallelFallback lists plans the shard analysis must
// still refuse — ROWS windows, cross joins — and checks they deploy
// serially (and still run) even when parallelism was requested. Global
// aggregates and computed-projection keys, serial before the two-phase
// split existed, now shard (see the tests below).
func TestCompileStreamParallelFallback(t *testing.T) {
	cases := map[string]string{
		"rows-window": `SELECT ss.room, count(*) AS n FROM SeatSensors ss [ROWS 2] GROUP BY ss.room`,
		"rows-window-global-agg": `SELECT count(*) AS n
			FROM SeatSensors ss [ROWS 2]`,
		"cross-join": `SELECT ss.room FROM SeatSensors ss [NOW], AreaSensors sa [NOW]`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			dep, eng := deployStream(t, src, 4)
			if dep.Shards != 1 {
				t.Fatalf("%s sharded (%d) but must fall back serial", name, dep.Shards)
			}
			seat, _ := eng.Input("SeatSensors")
			seat.Push(data.NewTuple(1, data.Str("L101"), data.Int(1), data.Str("free")))
			if _, err := dep.Snapshot(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// diffSerial deploys src serially and at P∈{2,4}, drives all deployments
// with the same workload, and requires identical snapshots. wantTwoPhase
// asserts which execution shape the sharded deployments must take.
func diffSerial(t *testing.T, src string, wantTwoPhase bool) {
	t.Helper()
	serial, sEng := deployStream(t, src, 0)
	if serial.Shards != 1 {
		t.Fatalf("serial deployment reports %d shards", serial.Shards)
	}
	feedOccupancy(t, sEng)
	want, err := serial.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty; workload is vacuous")
	}
	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			dep, eng := deployStream(t, src, p)
			if dep.Shards != p {
				t.Fatalf("deployment did not shard: Shards = %d, want %d", dep.Shards, p)
			}
			if dep.TwoPhase != wantTwoPhase {
				t.Fatalf("TwoPhase = %v, want %v", dep.TwoPhase, wantTwoPhase)
			}
			feedOccupancy(t, eng)
			got, err := dep.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			dep.Close()
			if len(got) != len(want) {
				t.Fatalf("sharded rows %v, want %v", got, want)
			}
			for i := range want {
				if !want[i].EqualVals(got[i]) {
					t.Fatalf("row %d: sharded %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCompileStreamGlobalAggregateTwoPhase shards the queries PR 2 had to
// run serially: global aggregates (with and without a join below) split
// into per-shard partial states merged by one FinalMerge.
func TestCompileStreamGlobalAggregateTwoPhase(t *testing.T) {
	t.Run("scan", func(t *testing.T) {
		diffSerial(t, `SELECT count(*) AS n, avg(ss.desk) AS d
			FROM SeatSensors ss [RANGE 5 SECONDS]`, true)
	})
	t.Run("join-below", func(t *testing.T) {
		diffSerial(t, `SELECT count(*) AS n
			FROM SeatSensors ss [RANGE 5 SECONDS], AreaSensors sa [RANGE 5 SECONDS]
			WHERE sa.room = ss.room ^ sa.status = 'open'`, true)
	})
	t.Run("having", func(t *testing.T) {
		diffSerial(t, `SELECT count(*) AS n FROM SeatSensors ss [RANGE 5 SECONDS]
			GROUP BY ss.status HAVING n > 3`, false)
	})
}

// TestCompileStreamGroupKeyOffJoinKeyTwoPhase shards a grouped aggregate
// whose grouping column is not the join key: the join still partitions on
// room, and the aggregate splits two-phase because desk-groups span
// room-shards.
func TestCompileStreamGroupKeyOffJoinKeyTwoPhase(t *testing.T) {
	diffSerial(t, `SELECT ss.desk, count(*) AS n
		FROM SeatSensors ss [RANGE 5 SECONDS], AreaSensors sa [RANGE 5 SECONDS]
		WHERE sa.room = ss.room ^ sa.status = 'open'
		GROUP BY ss.desk ORDER BY ss.desk`, true)
}

// TestCompileStreamComputedKeyShards covers the relaxed computed-projection
// rule: a DISTINCT over computed columns now partitions on the projection
// expressions themselves (an expression-keyed exchange, still one-phase).
func TestCompileStreamComputedKeyShards(t *testing.T) {
	diffSerial(t, `SELECT DISTINCT ss.desk + 1 AS d, ss.room AS r
		FROM SeatSensors ss [RANGE 5 SECONDS]`, false)
}

// TestCompileStreamComputedGroupKeyShards hand-builds the plan SQL can't
// express — a grouped aggregate whose key is a computed projection column —
// and checks the relaxed analysis imposes the projection expression on the
// source (one-phase, expression-keyed exchange) with results equal to
// serial.
func TestCompileStreamComputedGroupKeyShards(t *testing.T) {
	build := func() *Built {
		cat := testCatalog()
		src, _ := cat.Source("SeatSensors")
		scan := NewScan("SeatSensors", "ss", src.Schema,
			&sql.WindowSpec{Kind: sql.WindowRange, Range: 5 * time.Second}, src.Rate, false)
		proj, err := NewProject(scan, []stream.ProjectItem{
			{Expr: expr.Bin{Op: expr.OpMod, L: expr.C("ss.desk"), R: expr.L(2)}, Alias: "par"},
			{Expr: expr.C("ss.room"), Alias: "room"},
		})
		if err != nil {
			t.Fatal(err)
		}
		agg, err := NewAggregate(proj, []string{"par"},
			[]stream.AggSpec{{Kind: stream.AggCount, Alias: "n"}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return &Built{Root: agg, Limit: -1}
	}

	run := func(par int) ([]data.Tuple, *Deployment) {
		eng := stream.NewEngine(fmt.Sprintf("pc-cg%d", par), vtime.NewScheduler())
		dep, err := CompileStreamOpts(build(), eng, CompileOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		feedOccupancy(t, eng)
		rows, err := dep.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		stream.SortTuples(rows)
		return rows, dep
	}

	want, serial := run(0)
	if serial.Shards != 1 {
		t.Fatalf("serial Shards = %d", serial.Shards)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty")
	}
	for _, p := range []int{2, 4} {
		got, dep := run(p)
		if dep.Shards != p || dep.TwoPhase {
			t.Fatalf("P=%d: Shards=%d TwoPhase=%v, want one-phase expression-keyed sharding",
				p, dep.Shards, dep.TwoPhase)
		}
		dep.Close()
		if len(got) != len(want) {
			t.Fatalf("P=%d rows %v, want %v", p, got, want)
		}
		for i := range want {
			if !got[i].EqualVals(want[i]) {
				t.Fatalf("P=%d row %d: %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}

// TestShardableKeysSelection verifies the analysis picks the join/group
// columns for each scan on a plain equi-join plan (one-phase, no split).
func TestShardableKeysSelection(t *testing.T) {
	b := mustBuild(t, `SELECT ss.room, count(*) AS n
		FROM SeatSensors ss [RANGE 5 SECONDS], AreaSensors sa [RANGE 5 SECONDS]
		WHERE sa.room = ss.room GROUP BY ss.room`, testCatalog())
	strat, ok := analyzeShard(b.Root)
	if !ok {
		t.Fatal("plan must be shardable")
	}
	if strat.Split != nil {
		t.Fatalf("plain group-on-join-key plan must shard one-phase, split at %v", strat.Split)
	}
	scans := Scans(b.Root)
	if len(scans) != 2 {
		t.Fatalf("scans = %v", scans)
	}
	for _, s := range scans {
		ks := strat.Keys[s]
		if len(ks) != 1 {
			t.Fatalf("scan %s keys = %v, want exactly the join/group column", s, ks)
		}
		col, isCol := ks[0].(expr.Col)
		if !isCol {
			t.Fatalf("scan %s key %v is not a bare column", s, ks[0])
		}
		if i, err := s.Schema().ColIndex(col.Ref); err != nil || s.Schema().Cols[i].Name != "room" {
			t.Fatalf("scan %s partitions on %v, want its room column", s, ks)
		}
	}
}

// TestSubstituteColsExprKinds drives the key-substitution rewriter through
// every expression node kind: a DISTINCT over a projection whose computed
// columns use unary, IS NULL, call, and literal-bearing binary shapes must
// still shard one-phase (the key imposes through the substitution), while
// a nondeterministic call must fail closed to a two-phase or serial plan.
func TestSubstituteColsExprKinds(t *testing.T) {
	s1 := data.NewSchema("S1", data.Col("a", data.TInt), data.Col("b", data.TInt))
	s1.IsStream = true
	scan := func() *Scan { return NewScan("S1", "t1", s1, nil, 10, false) }
	mk := func(items ...stream.ProjectItem) Node {
		p, err := NewProject(scan(), items)
		if err != nil {
			t.Fatal(err)
		}
		return &Distinct{In: p}
	}
	ok := mk(
		stream.ProjectItem{Expr: expr.Un{Op: expr.OpNeg, X: expr.C("t1.a")}, Alias: "na"},
		stream.ProjectItem{Expr: expr.IsNull{X: expr.C("t1.b")}, Alias: "nb"},
		stream.ProjectItem{Expr: expr.Call{Name: "abs", Args: []expr.Expr{
			expr.Bin{Op: expr.OpSub, L: expr.C("t1.a"), R: expr.L(3)}}}, Alias: "ca"},
		stream.ProjectItem{Expr: expr.Bin{Op: expr.OpAdd, L: expr.L(1), R: expr.C("t1.b")}, Alias: "lb"},
	)
	strat, shardable := analyzeShard(ok)
	if !shardable || strat.Split != nil {
		t.Fatalf("deterministic computed keys must shard one-phase (ok=%v split=%v)",
			shardable, strat != nil && strat.Split != nil)
	}
	// Every bindable builtin is deterministic today, so the fail-closed
	// branch is only reachable directly: an unknown function must never be
	// treated as a routable key expression.
	if deterministicExpr(expr.Call{Name: "random"}) {
		t.Fatal("unknown functions must fail the determinism check closed")
	}
	if !deterministicExpr(expr.Call{Name: "coalesce", Args: []expr.Expr{expr.C("t1.a"), expr.L(0)}}) {
		t.Fatal("coalesce over columns is deterministic")
	}
	if deterministicExpr(expr.Call{Name: "abs", Args: []expr.Expr{expr.Call{Name: "now"}}}) {
		t.Fatal("determinism must recurse into call arguments")
	}
}

// TestMapThroughAggregateComputedKey: a computed key over an aggregate's
// output maps below only when it references group columns; aggregate
// value columns fail the substitution.
func TestMapThroughAggregateComputedKey(t *testing.T) {
	s1 := data.NewSchema("S1", data.Col("a", data.TInt), data.Col("b", data.TInt))
	s1.IsStream = true
	agg, err := NewAggregate(NewScan("S1", "t1", s1, nil, 10, false),
		[]string{"t1.a"}, []stream.AggSpec{{Kind: stream.AggSum, Arg: expr.C("t1.b"), Alias: "s"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mapThroughAggregate(expr.Bin{Op: expr.OpMul, L: expr.C("t1.a"), R: expr.L(2)}, agg); !ok {
		t.Fatal("group-column key must map through the aggregate")
	}
	if _, ok := mapThroughAggregate(expr.C("s"), agg); ok {
		t.Fatal("aggregate value column must not map through")
	}
}
