package plan

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// replayEvents drives a workload into one engine without snapshotting —
// the multi-deployment variant of replay.
func replayEvents(eng *stream.Engine, evs []fuzzEvent) {
	for _, ev := range evs {
		if ev.tick != 0 {
			eng.Advance(ev.tick)
			continue
		}
		if in, ok := eng.Input(ev.input); ok {
			in.Push(ev.t.Clone())
		}
	}
}

// snapshotSorted and requireEqualRows live in elastic_test.go.

// TestShareCanonicalization pins the canonical-key rules: aliases don't
// matter (keys are positional), tables and non-prefix shapes don't share.
func TestShareCanonicalization(t *testing.T) {
	src := fuzzSources()[0]
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 2 * time.Second}
	s1 := NewScan(src.name, "t1", src.schema, w, 10, false)
	s2 := NewScan(src.name, "t2", src.schema, w, 10, false)
	if canonScanKey(s1) != canonScanKey(s2) {
		t.Fatalf("alias changed the scan key: %q vs %q", canonScanKey(s1), canonScanKey(s2))
	}
	p1 := expr.Bin{Op: expr.OpGe, L: expr.C("t1.a"), R: expr.L(1)}
	p2 := expr.Bin{Op: expr.OpGe, L: expr.C("t2.a"), R: expr.L(1)}
	c1, ok1 := canonExpr(p1, s1.Schema())
	c2, ok2 := canonExpr(p2, s2.Schema())
	if !ok1 || !ok2 || c1 != c2 {
		t.Fatalf("aliased predicates canonicalize differently: %q vs %q", c1, c2)
	}
	// Different constants must not collide.
	p3 := expr.Bin{Op: expr.OpGe, L: expr.C("t1.a"), R: expr.L(2)}
	if c3, _ := canonExpr(p3, s1.Schema()); c3 == c1 {
		t.Fatalf("distinct predicates canonicalize identically: %q", c3)
	}
	// Different windows must not collide.
	s3 := NewScan(src.name, "t1", src.schema, nil, 10, false)
	if canonScanKey(s3) == canonScanKey(s1) {
		t.Fatal("windowed and unwindowed scans share a key")
	}

	if _, _, ok := shareablePrefix(&Select{In: s1, Pred: p1}); !ok {
		t.Fatal("select-over-scan not recognized as shareable")
	}
	tbl := NewScan("T", "t", src.schema, nil, 10, true)
	if _, _, ok := shareablePrefix(tbl); ok {
		t.Fatal("table scan must not share")
	}
	if _, _, ok := shareablePrefix(NewJoin(s1, s2, []string{"t1.a"}, []string{"t2.a"}, nil)); ok {
		t.Fatal("join must not be a shareable prefix")
	}
}

// sharePlan builds SELECT <alias>.* FROM S1 <alias> [window] WHERE stack
// of preds — the canonical shareable shape.
func sharePlan(alias string, w *sql.WindowSpec, preds func(scan *Scan) []expr.Expr) *Built {
	src := fuzzSources()[0]
	var n Node = NewScan(src.name, alias, src.schema, w, 10, false)
	if preds != nil {
		for _, p := range preds(n.(*Scan)) {
			n = &Select{In: n, Pred: p}
		}
	}
	return &Built{Root: n, Limit: -1}
}

// TestSharedPrefixLifecycle proves the refcounted chain lifecycle: two
// queries with the same prefix run one physical chain (one input
// subscriber, one tracked window), a divergent predicate stacks a derived
// layer on the same base, and the last Close detaches everything.
func TestSharedPrefixLifecycle(t *testing.T) {
	eng := stream.NewEngine("share", vtime.NewScheduler())
	s := NewSharing(eng)
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 5 * time.Second}
	opts := CompileOptions{Sharing: s}

	ge := func(col string, v int) func(*Scan) []expr.Expr {
		return func(sc *Scan) []expr.Expr {
			return []expr.Expr{expr.Bin{Op: expr.OpGe, L: expr.C(sc.Alias + "." + col), R: expr.L(v)}}
		}
	}
	d1, err := CompileStreamOpts(sharePlan("t1", w, ge("a", 1)), eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := CompileStreamOpts(sharePlan("t2", w, ge("a", 1)), eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := eng.Input("S1")
	// One base chain + one predicate layer, both queries on the layer: the
	// engine sees ONE subscriber and ONE tracked window regardless of Q.
	if got := in.Subscribers(); got != 1 {
		t.Fatalf("input subscribers = %d, want 1 shared chain", got)
	}
	if got := eng.Advancers(); got != 1 {
		t.Fatalf("advancers = %d, want 1 shared window", got)
	}
	if chains, attached := s.Stats(); chains != 2 || attached != 2 {
		t.Fatalf("chains=%d attached=%d, want 2 chains (base+layer) and 2 attachments", chains, attached)
	}

	// A divergent predicate adds one derived layer, still one base window.
	d3, err := CompileStreamOpts(sharePlan("t3", w, ge("a", 3)), eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Advancers(); got != 1 {
		t.Fatalf("advancers = %d after divergent query, want 1", got)
	}
	if chains, _ := s.Stats(); chains != 3 {
		t.Fatalf("chains = %d, want base + two predicate layers", chains)
	}

	// All three see data filtered by their own predicate stack.
	push := func(ts int64, a int64) {
		in.Push(data.Tuple{Vals: []data.Value{data.Int(a), data.Int(0), data.Str("s")},
			TS: vtime.Time(ts) * vtime.Time(time.Millisecond)})
	}
	push(100, 0)
	push(200, 2)
	push(300, 4)
	if r1 := snapshotSorted(t, d1); len(r1) != 2 {
		t.Fatalf("q1 rows = %v, want a in {2,4}", r1)
	}
	if r3 := snapshotSorted(t, d3); len(r3) != 1 {
		t.Fatalf("q3 rows = %v, want a in {4}", r3)
	}

	// Close peels layers off as refcounts drain; last Close detaches all.
	d3.Close()
	if chains, _ := s.Stats(); chains != 2 {
		t.Fatalf("chains = %d after divergent close, want 2", chains)
	}
	d1.Close()
	d1.Close() // idempotent
	if chains, attached := s.Stats(); chains != 2 || attached != 1 {
		t.Fatalf("chains=%d attached=%d after first close, want 2/1", chains, attached)
	}
	// The survivor keeps receiving.
	push(400, 5)
	if r2 := snapshotSorted(t, d2); len(r2) != 3 {
		t.Fatalf("survivor rows = %v, want 3", r2)
	}
	d2.Close()
	if chains, attached := s.Stats(); chains != 0 || attached != 0 {
		t.Fatalf("chains=%d attached=%d after last close, want 0/0", chains, attached)
	}
	if in.Subscribers() != 0 || eng.Advancers() != 0 {
		t.Fatalf("engine not clean: %d subscribers, %d advancers",
			in.Subscribers(), eng.Advancers())
	}
}

// TestSharedWarmStartAttach pins the attach semantics: a query joining an
// already-populated shared window immediately sees the window's current
// contents (so the shared window's future expiry deletions match), and
// after those rows expire it is indistinguishable from a private query.
func TestSharedWarmStartAttach(t *testing.T) {
	eng := stream.NewEngine("warm", vtime.NewScheduler())
	s := NewSharing(eng)
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 5 * time.Second}
	opts := CompileOptions{Sharing: s}
	ge1 := func(sc *Scan) []expr.Expr {
		return []expr.Expr{expr.Bin{Op: expr.OpGe, L: expr.C(sc.Alias + ".a"), R: expr.L(1)}}
	}

	d1, err := CompileStreamOpts(sharePlan("t1", w, ge1), eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := eng.Input("S1")
	push := func(sec int64, a int64) {
		in.Push(data.Tuple{Vals: []data.Value{data.Int(a), data.Int(0), data.Str("s")},
			TS: vtime.Time(sec) * vtime.Time(time.Second)})
	}
	push(1, 0) // filtered by the predicate
	push(2, 7)
	push(3, 8)

	// Late attach: warm-starts from the live window, filtered.
	d2, err := CompileStreamOpts(sharePlan("t2", w, ge1), eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualRows(t, "warm-started query vs original", snapshotSorted(t, d2), snapshotSorted(t, d1))
	if len(snapshotSorted(t, d2)) != 2 {
		t.Fatalf("warm start delivered %v, want the 2 live passing rows", snapshotSorted(t, d2))
	}

	// Expiry deletions retract exactly what the late query saw: both drain
	// to the post-expiry rows, never negative or stuck.
	push(4, 9)
	eng.Advance(8 * vtime.Second) // expires ts 1..3, keeps ts 4
	r1, r2 := snapshotSorted(t, d1), snapshotSorted(t, d2)
	requireEqualRows(t, "post-expiry convergence", r2, r1)
	if len(r2) != 1 || r2[0].Vals[0].AsInt() != 9 {
		t.Fatalf("post-expiry rows = %v, want just a=9", r2)
	}
	d1.Close()
	d2.Close()
	if chains, _ := s.Stats(); chains != 0 {
		t.Fatalf("chains = %d after close, want 0", chains)
	}
}

// genSharePlan builds one random query whose prefix is forced to overlap
// with its siblings: the window comes from a small shared pool and the
// predicate stack from a shared predicate pool, while the divergent
// suffix (projections, aggregates) is fully random. alias varies per
// query so the differential also exercises alias-independent keys.
func genSharePlan(g *fuzzGen, rng *rand.Rand, alias string, w *sql.WindowSpec) Node {
	src := g.sources[0]
	var n Node = NewScan(src.name, alias, src.schema, w, 10, false)
	// 0–2 predicates from a 3-entry pool: collisions across queries are
	// frequent, so base chains, shared layers, and divergent layers all
	// occur.
	pool := []expr.Expr{
		expr.Bin{Op: expr.OpGe, L: expr.C(alias + ".a"), R: expr.L(0)},
		expr.Bin{Op: expr.OpGe, L: expr.C(alias + ".b"), R: expr.L(1)},
		expr.Bin{Op: expr.OpLt, L: expr.C(alias + ".a"), R: expr.L(4)},
	}
	for _, p := range pool {
		if rng.Intn(3) == 0 {
			n = &Select{In: n, Pred: p}
		}
	}
	// Random divergent suffix: maybe projection, maybe aggregate.
	n = g.genUnary(n)
	if rng.Intn(2) == 0 {
		var groupBy []string
		for _, c := range n.Schema().Cols {
			if len(groupBy) < 1 && rng.Intn(3) == 0 {
				groupBy = append(groupBy, c.QName())
			}
		}
		specs := []stream.AggSpec{{Kind: stream.AggCount, Alias: "cnt"}}
		if ints := intCols(n); len(ints) > 0 {
			specs = append(specs, stream.AggSpec{Kind: stream.AggSum,
				Arg: expr.C(ints[rng.Intn(len(ints))]), Alias: "s"})
		}
		if agg, err := NewAggregate(n, groupBy, specs, nil); err == nil {
			n = agg
		}
	}
	return n
}

// TestSharedPrefixDifferential is the serial-vs-shared differential: Q
// queries with overlapping prefixes deploy twice — privately on one
// engine, through one Sharing registry on another — replay an identical
// workload, and every query's materialized result must be multiset-equal.
// The run fails if no chain ever shared (vacuous) and requires full
// engine-registry teardown after the shared deployments close.
func TestSharedPrefixDifferential(t *testing.T) {
	sources := fuzzSources()
	nPlans := *fuzzN / 2
	if nPlans < 10 {
		nPlans = 10
	}
	const Q = 4
	sharedAny := false
	windows := []*sql.WindowSpec{
		nil,
		{Kind: sql.WindowRange, Range: 2 * time.Second},
		{Kind: sql.WindowRange, Range: 5 * time.Second, Slide: time.Second},
	}
	for pi := 0; pi < nPlans; pi++ {
		rng := rand.New(rand.NewSource(*fuzzSeed + 5000 + int64(pi)))
		g := &fuzzGen{rng: rng, sources: sources}
		w := windows[rng.Intn(len(windows))]
		builts := make([]*Built, Q)
		for qi := range builts {
			builts[qi] = &Built{Root: genSharePlan(g, rng, fmt.Sprintf("t%d", qi+1), w), Limit: -1}
		}
		evs := genWorkload(rng, sources, 300)

		peng := stream.NewEngine(fmt.Sprintf("priv%d", pi), vtime.NewScheduler())
		seng := stream.NewEngine(fmt.Sprintf("shared%d", pi), vtime.NewScheduler())
		sharing := NewSharing(seng)
		pdeps := make([]*Deployment, Q)
		sdeps := make([]*Deployment, Q)
		for qi, b := range builts {
			var err error
			if pdeps[qi], err = CompileStreamOpts(b, peng, CompileOptions{}); err != nil {
				t.Fatalf("plan %d q%d private compile: %v\nplan: %s", pi, qi, err, b.Root)
			}
			if sdeps[qi], err = CompileStreamOpts(b, seng, CompileOptions{Sharing: sharing}); err != nil {
				t.Fatalf("plan %d q%d shared compile: %v\nplan: %s", pi, qi, err, b.Root)
			}
		}
		pin, _ := peng.Input("S1")
		sin, _ := seng.Input("S1")
		if sin.Subscribers() < pin.Subscribers() {
			sharedAny = true
		}
		replayEvents(peng, evs)
		replayEvents(seng, evs)
		for qi := range builts {
			requireEqualRows(t, fmt.Sprintf("plan %d q%d (plan: %s)", pi, qi, builts[qi].Root),
				snapshotSorted(t, sdeps[qi]), snapshotSorted(t, pdeps[qi]))
		}
		for _, d := range sdeps {
			d.Close()
		}
		if chains, attached := sharing.Stats(); chains != 0 || attached != 0 {
			t.Fatalf("plan %d: chains=%d attached=%d after closing all queries", pi, chains, attached)
		}
		if sin.Subscribers() != 0 || seng.Advancers() != 0 {
			t.Fatalf("plan %d: engine not clean after close: %d subscribers, %d advancers",
				pi, sin.Subscribers(), seng.Advancers())
		}
	}
	if !sharedAny {
		t.Fatal("no run ever shared a chain; the differential ran vacuously")
	}
}

// TestStopMidStreamSurvivors is the fuzzshard stop-mid-stream mode: three
// random queries run on one engine, one is stopped at a random event
// mid-replay, and the survivors' final results must be identical to a run
// where the victim never existed — with sharing off and on (where the
// victim may share chains with the survivors, and its Stop must release
// references without tearing live chains down).
func TestStopMidStreamSurvivors(t *testing.T) {
	sources := fuzzSources()
	nPlans := *fuzzN / 2
	if nPlans < 10 {
		nPlans = 10
	}
	for _, mode := range []struct {
		name   string
		shared bool
	}{{"private", false}, {"shared", true}} {
		t.Run(mode.name, func(t *testing.T) {
			for pi := 0; pi < nPlans; pi++ {
				rng := rand.New(rand.NewSource(*fuzzSeed + 9000 + int64(pi)))
				g := &fuzzGen{rng: rng, sources: sources}
				var builts []*Built
				for qi := 0; qi < 3; qi++ {
					builts = append(builts, &Built{Root: g.genPlan(), Limit: -1})
				}
				evs := genWorkload(rng, sources, 300)
				victim := rng.Intn(len(builts))
				stopAt := rng.Intn(len(evs))

				newOpts := func(eng *stream.Engine) CompileOptions {
					if mode.shared {
						return CompileOptions{Sharing: NewSharing(eng)}
					}
					return CompileOptions{}
				}
				// Reference: survivors only, full replay.
				reng := stream.NewEngine(fmt.Sprintf("ref%d", pi), vtime.NewScheduler())
				ropts := newOpts(reng)
				want := map[int][]data.Tuple{}
				rdeps := map[int]*Deployment{}
				for qi, b := range builts {
					if qi == victim {
						continue
					}
					dep, err := CompileStreamOpts(b, reng, ropts)
					if err != nil {
						t.Fatalf("plan %d q%d compile: %v\nplan: %s", pi, qi, err, b.Root)
					}
					rdeps[qi] = dep
				}
				replayEvents(reng, evs)
				for qi, dep := range rdeps {
					want[qi] = snapshotSorted(t, dep)
				}

				// Test run: all three, victim stopped mid-stream.
				teng := stream.NewEngine(fmt.Sprintf("stop%d", pi), vtime.NewScheduler())
				topts := newOpts(teng)
				tdeps := make([]*Deployment, len(builts))
				for qi, b := range builts {
					dep, err := CompileStreamOpts(b, teng, topts)
					if err != nil {
						t.Fatalf("plan %d q%d compile: %v\nplan: %s", pi, qi, err, b.Root)
					}
					tdeps[qi] = dep
				}
				for i, ev := range evs {
					if i == stopAt {
						tdeps[victim].Close()
					}
					if ev.tick != 0 {
						teng.Advance(ev.tick)
						continue
					}
					if in, ok := teng.Input(ev.input); ok {
						in.Push(ev.t.Clone())
					}
				}
				for qi := range builts {
					if qi == victim {
						continue
					}
					requireEqualRows(t,
						fmt.Sprintf("%s plan %d survivor q%d (victim %d stopped at %d)",
							mode.name, pi, qi, victim, stopAt),
						snapshotSorted(t, tdeps[qi]), want[qi])
				}
				// The stopped victim's result froze: later events never reached it.
				if topts.Sharing != nil {
					for _, d := range tdeps {
						d.Close()
					}
					if chains, attached := topts.Sharing.Stats(); chains != 0 || attached != 0 {
						t.Fatalf("plan %d: chains=%d attached=%d after closing all", pi, chains, attached)
					}
				}
			}
		})
	}
}

// TestQueryChurnRegistriesReturnToBaseline is the churn test: deploy and
// stop random queries — serial private, shared, and sharded — in a loop
// on one live engine, pushing data between, and require every registry
// (input subscribers, engine advancers, sharing chains) back at baseline
// after each stop. Run under -race via `make race`.
func TestQueryChurnRegistriesReturnToBaseline(t *testing.T) {
	sources := fuzzSources()
	eng := stream.NewEngine("churn", vtime.NewScheduler())
	sharing := NewSharing(eng)
	for _, src := range sources {
		if _, err := eng.Register(src.name, src.schema); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(*fuzzSeed + 12000))
	g := &fuzzGen{rng: rng, sources: sources}
	for i := 0; i < 30; i++ {
		var opts CompileOptions
		switch i % 3 {
		case 1:
			opts.Sharing = sharing
		case 2:
			opts.Parallelism = 2
		}
		b := &Built{Root: g.genPlan(), Limit: -1}
		dep, err := CompileStreamOpts(b, eng, opts)
		if err != nil {
			t.Fatalf("churn %d: %v\nplan: %s", i, err, b.Root)
		}
		replayEvents(eng, genWorkload(rng, sources, 40))
		dep.Close()
		dep.Close() // idempotent
		for _, src := range sources {
			in, _ := eng.Input(src.name)
			if n := in.Subscribers(); n != 0 {
				t.Fatalf("churn %d: input %s has %d subscribers after Close", i, src.name, n)
			}
		}
		if n := eng.Advancers(); n != 0 {
			t.Fatalf("churn %d: %d advancers after Close", i, n)
		}
		if chains, attached := sharing.Stats(); chains != 0 || attached != 0 {
			t.Fatalf("churn %d: chains=%d attached=%d after Close", i, chains, attached)
		}
	}
}

// TestQueryChurnConcurrentPush churns deployments while another goroutine
// pushes into the same input continuously: the copy-on-write seam that
// Subscribe/Unsubscribe and Push share is exactly what -race must vet.
// (Shared chains are excluded — warm-start attach requires a quiet
// producer, the documented contract.)
func TestQueryChurnConcurrentPush(t *testing.T) {
	eng := stream.NewEngine("churn-push", vtime.NewScheduler())
	src := fuzzSources()[0]
	in, err := eng.Register(src.name, src.schema)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts := vtime.Time(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ts += vtime.Time(time.Millisecond)
			in.Push(data.Tuple{TS: ts,
				Vals: []data.Value{data.Int(int64(i % 5)), data.Int(1), data.Str("s")}})
		}
	}()
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: time.Second}
	for i := 0; i < 100; i++ {
		dep, err := CompileStreamOpts(sharePlan(fmt.Sprintf("t%d", i), w, nil), eng, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		dep.Close()
	}
	close(stop)
	wg.Wait()
	if n := in.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers after churn", n)
	}
	if n := eng.Advancers(); n != 0 {
		t.Fatalf("%d advancers after churn", n)
	}
}

// TestCanonExprForms pins the canonical rendering of every expression kind
// and the refusal paths (unresolvable references) that force a private
// compile instead of a bogus shared key.
func TestCanonExprForms(t *testing.T) {
	src := fuzzSources()[0]
	sc := NewScan(src.name, "t", src.schema, nil, 10, false)
	s := sc.Schema()
	forms := []expr.Expr{
		expr.IsNull{X: expr.C("t.a")},
		expr.IsNull{X: expr.C("t.a"), Neg: true},
		expr.Un{Op: expr.OpNot, X: expr.C("t.a")},
		expr.Un{Op: expr.OpNeg, X: expr.C("t.a")},
		expr.Call{Name: "abs", Args: []expr.Expr{expr.C("t.a")}},
		expr.L("x'y"),
		expr.L(1),
		expr.Bin{Op: expr.OpGe, L: expr.C("t.a"), R: expr.L(1)},
	}
	seen := map[string]bool{}
	for _, e := range forms {
		c, ok := canonExpr(e, s)
		if !ok {
			t.Fatalf("canonExpr(%v) refused", e)
		}
		if seen[c] {
			t.Fatalf("distinct forms canonicalize identically: %q (%v)", c, e)
		}
		seen[c] = true
	}
	bad := expr.C("t.nosuch")
	refusals := []expr.Expr{
		bad,
		expr.Bin{Op: expr.OpGe, L: bad, R: expr.L(1)},
		expr.Bin{Op: expr.OpGe, L: expr.L(1), R: bad},
		expr.Un{Op: expr.OpNot, X: bad},
		expr.IsNull{X: bad},
		expr.Call{Name: "abs", Args: []expr.Expr{bad}},
	}
	for _, e := range refusals {
		if c, ok := canonExpr(e, s); ok {
			t.Fatalf("canonExpr(%v) accepted an unresolvable reference: %q", e, c)
		}
	}
	// Window shapes are part of the scan key: ROWS, NOW, RANGE, and
	// unwindowed must all be distinct.
	shapes := []*sql.WindowSpec{
		nil,
		{Kind: sql.WindowRows, Rows: 5},
		{Kind: sql.WindowNow},
		{Kind: sql.WindowRange, Range: 2 * time.Second},
	}
	keys := map[string]bool{}
	for _, w := range shapes {
		k := canonScanKey(NewScan(src.name, "t", src.schema, w, 10, false))
		if keys[k] {
			t.Fatalf("window shapes collide on key %q", k)
		}
		keys[k] = true
	}
}

// TestSharedAttachFailureCleanup proves a tryAttach that fails mid-way
// leaves no orphan chains subscribed to the engine: ensureBase failure
// (input arity conflict) fails before any chain exists, and an ensureLayer
// failure (predicate that canonicalizes but does not bind) must sweep the
// layers it already built back out of the engine.
func TestSharedAttachFailureCleanup(t *testing.T) {
	eng := stream.NewEngine("share", vtime.NewScheduler())
	s := NewSharing(eng)
	opts := CompileOptions{Sharing: s}
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 2 * time.Second}
	src := fuzzSources()[0]

	// Pre-register S1 with a conflicting arity: ensureBase fails.
	narrow := data.NewSchema("S1", data.Col("a", data.TInt))
	narrow.IsStream = true
	eng.MustRegister(src.name, narrow)
	good := expr.Bin{Op: expr.OpGe, L: expr.C("t.a"), R: expr.L(0)}
	mismatched := &Built{Root: &Select{
		In:   NewScan(src.name, "t", src.schema, w, 10, false),
		Pred: good,
	}, Limit: -1}
	if _, err := CompileStreamOpts(mismatched, eng, opts); err == nil {
		t.Fatal("arity-conflicting shared compile succeeded")
	}
	if chains, attached := s.Stats(); chains != 0 || attached != 0 {
		t.Fatalf("chains leaked past ensureBase failure: %d/%d", chains, attached)
	}

	// Fresh engine: a good predicate layer under a bad one. The base chain
	// and the good layer are built before the bad layer's bind fails; the
	// gc sweep must cascade both back out (layer first, then the base it
	// holds a ref on).
	eng = stream.NewEngine("share2", vtime.NewScheduler())
	s = NewSharing(eng)
	opts = CompileOptions{Sharing: s}
	badcall := expr.Call{Name: "nosuchfn", Args: []expr.Expr{expr.C("t.a")}}
	layered := &Built{Root: &Select{
		In: &Select{
			In:   NewScan(src.name, "t", src.schema, w, 10, false),
			Pred: good,
		},
		Pred: badcall,
	}, Limit: -1}
	if _, err := CompileStreamOpts(layered, eng, opts); err == nil {
		t.Fatal("unknown function bound through the shared path")
	}
	if chains, attached := s.Stats(); chains != 0 || attached != 0 {
		t.Fatalf("chains leaked past ensureLayer failure: %d/%d", chains, attached)
	}
	if s.Chains() != 0 {
		t.Fatalf("Chains() = %d after failed attach", s.Chains())
	}
	if in, ok := eng.Input(src.name); ok && in.Subscribers() != 0 {
		t.Fatalf("orphan chain still subscribed: %d heads", in.Subscribers())
	}
	if eng.Advancers() != 0 {
		t.Fatalf("orphan window still ticked: %d advancers", eng.Advancers())
	}

	// The registry stays usable after failed attaches.
	ok1, err := CompileStreamOpts(&Built{Root: &Select{
		In:   NewScan(src.name, "t", src.schema, w, 10, false),
		Pred: good,
	}, Limit: -1}, eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ok1.Close()
	if chains, attached := s.Stats(); chains != 2 || attached != 1 {
		t.Fatalf("post-failure attach: chains=%d attached=%d", chains, attached)
	}
}

// TestCoordinatorSharing proves EnableSharing threads the registry through
// coordinator deploys: two tracked queries with one prefix share a chain,
// and dropping both tears it down.
func TestCoordinatorSharing(t *testing.T) {
	eng := stream.NewEngine("coord", vtime.NewScheduler())
	s := NewSharing(eng)
	c := NewCoordinator(eng, "")
	c.EnableSharing(s)
	w := &sql.WindowSpec{Kind: sql.WindowRange, Range: 5 * time.Second}
	ge := func(sc *Scan) []expr.Expr {
		return []expr.Expr{expr.Bin{Op: expr.OpGe, L: expr.C(sc.Alias + ".a"), R: expr.L(1)}}
	}
	if _, err := c.Deploy("q1", sharePlan("t1", w, ge), CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("q2", sharePlan("t2", w, ge), CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	if chains, attached := s.Stats(); chains != 2 || attached != 2 {
		t.Fatalf("coordinator deploys did not share: chains=%d attached=%d", chains, attached)
	}
	if err := c.Drop("q1"); err != nil {
		t.Fatal(err)
	}
	if chains, attached := s.Stats(); chains != 2 || attached != 1 {
		t.Fatalf("drop released too much: chains=%d attached=%d", chains, attached)
	}
	if err := c.Drop("q2"); err != nil {
		t.Fatal(err)
	}
	if chains, attached := s.Stats(); chains != 0 || attached != 0 {
		t.Fatalf("last drop left chains: chains=%d attached=%d", chains, attached)
	}
}
