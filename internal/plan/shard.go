package plan

import (
	"strings"

	"aspen/internal/expr"
	"aspen/internal/sql"
)

// This file decides whether a logical plan can execute partition-parallel
// (stream.Sharder / stream.ShardSet) and, if so, which key each scan must
// hash-partition its input on so that every stateful operator's state
// partitions cleanly: all tuples of one group, one join key, or one
// distinct value land in the same pipeline replica.
//
// Partition keys are scalar expressions over the scan schema, not just
// columns: a key column that passes through a deterministic computed
// projection still imposes a key on the source — the projection expression
// itself, evaluated by the exchange (stream.NewExprSharder). Equal key
// values downstream come from equal expression values at the scan, so the
// shard stays a function of the key.
//
// The analysis runs top-down. impose(n, keys, exact) establishes the
// invariant that subtree n's output tuples route to shard
// hash(partition key) % P where the partition key is:
//
//   - exact:  precisely the values of keys, in order — required below a
//     join, whose two sides must agree bit-for-bit on the shard of
//     matching tuples (data.Hasher's canonical encoding makes equal
//     values hash equal across schemas);
//   - !exact: any non-empty, order-preserved subsequence of keys — enough
//     for single-input state (groups, distinct), which only needs the
//     shard to be a function of the key.
//
// Aggregates the invariant cannot reach — global aggregates, and grouped
// aggregates whose key does not survive to the scans — still shard via
// two-phase (partial/final-merge) execution when they sit on the plan's
// serial spine: analyzeShard splits the aggregate into per-replica
// stream.PartialAggregate stages and one serial stream.FinalMerge, and the
// subtree below partitions on whatever key its own operators need (partial
// states merge correctly under any deterministic partitioning). Plans
// neither analysis covers — ROWS windows (a global last-n), cross joins —
// fall back to serial execution.

// shardStrategy describes how a plan executes partition-parallel.
type shardStrategy struct {
	// Keys gives each scan's partition key expressions over the scan
	// schema; nil means "all columns".
	Keys map[*Scan][]expr.Expr
	// Split, when non-nil, is the aggregate that executes two-phase: each
	// replica runs a PartialAggregate over Split.In, and the operators
	// above Split run serially behind the Merge funnel, fed by a
	// FinalMerge.
	Split *Aggregate
}

// analyzeShard decides whether (and how) the plan can execute
// partition-parallel.
func analyzeShard(root Node) (*shardStrategy, bool) {
	keys := map[*Scan][]expr.Expr{}
	if impose(root, nil, false, keys) {
		return &shardStrategy{Keys: keys}, true
	}
	// One-phase sharding failed. Walk the serial spine — unary operators
	// that can run once behind the merge funnel — to the topmost
	// aggregate and split it two-phase: the replicas impose no key of
	// their own (partial states merge under any partitioning), so the
	// subtree below partitions on whatever its joins and windows need.
	n := root
	for {
		switch x := n.(type) {
		case *Select:
			n = x.In
		case *Project:
			n = x.In
		case *Distinct:
			n = x.In
		case *Aggregate:
			keys = map[*Scan][]expr.Expr{}
			if !impose(x.In, nil, false, keys) {
				return nil, false
			}
			return &shardStrategy{Keys: keys, Split: x}, true
		default:
			return nil, false
		}
	}
}

// impose establishes the partition invariant for subtree n; keys == nil
// means no requirement has been set yet (the first stateful operator
// below picks its own). It records each scan's partition key in out.
func impose(n Node, keys []expr.Expr, exact bool, out map[*Scan][]expr.Expr) bool {
	switch x := n.(type) {
	case *Scan:
		// A ROWS window is a global last-n: its contents depend on total
		// arrival order, which no partitioning preserves.
		if x.Window != nil && x.Window.Kind == sql.WindowRows {
			return false
		}
		for _, k := range keys {
			if _, err := expr.Bind(k, x.Schema()); err != nil {
				return false
			}
		}
		out[x] = keys
		return true

	case *Select:
		return impose(x.In, keys, exact, out)

	case *Project:
		if keys == nil {
			return impose(x.In, nil, exact, out)
		}
		// Map each key through the projection by substituting column
		// references with their defining items; deterministic computed
		// items preserve the key's value (and therefore its hash) across
		// the operator.
		mapped := make([]expr.Expr, 0, len(keys))
		for _, k := range keys {
			m, ok := mapThroughProject(k, x)
			if !ok {
				if exact {
					return false
				}
				continue // unresolvable key part: drop from the loose key
			}
			mapped = append(mapped, m)
		}
		if len(mapped) == 0 {
			return false
		}
		return impose(x.In, mapped, exact, out)

	case *Distinct:
		if keys == nil {
			// Set semantics only need equal tuples co-located: partition on
			// (any subsequence of) the full row.
			keys = make([]expr.Expr, x.Schema().Arity())
			for i, c := range x.Schema().Cols {
				keys[i] = expr.Col{Ref: c.QName()}
			}
			exact = false
		}
		return impose(x.In, keys, exact, out)

	case *Aggregate:
		if keys == nil {
			if len(x.GroupBy) == 0 {
				// A global aggregate needs the two-phase split; analyzeShard
				// applies it when this aggregate sits on the serial spine.
				return false
			}
			gk := make([]expr.Expr, len(x.GroupBy))
			for i, g := range x.GroupBy {
				gk[i] = expr.Col{Ref: g}
			}
			return impose(x.In, gk, false, out)
		}
		// Keys map through the group columns: AggOutSchema lays out group
		// columns first, in GroupBy order; aggregate-value columns do not
		// survive downward.
		sub := make([]expr.Expr, 0, len(keys))
		for _, k := range keys {
			m, ok := mapThroughAggregate(k, x)
			if !ok {
				if exact {
					return false // key depends on an aggregate value
				}
				continue
			}
			sub = append(sub, m)
		}
		if len(sub) == 0 {
			return false
		}
		// sub references only group columns, keeping every group in one
		// shard; under an exact requirement nothing was dropped, so values
		// match keys in order.
		return impose(x.In, sub, exact, out)

	case *Join:
		if len(x.LKey) == 0 {
			return false // cross / residual-only join has no partition key
		}
		larity := x.L.Schema().Arity()
		pairOf := func(ref string) int {
			j, err := x.Schema().ColIndex(ref)
			if err != nil {
				return -1
			}
			for i := range x.LKey {
				if li, err := x.L.Schema().ColIndex(x.LKey[i]); err == nil && li == j {
					return i
				}
				if ri, err := x.R.Schema().ColIndex(x.RKey[i]); err == nil && larity+ri == j {
					return i
				}
			}
			return -1
		}
		var pairs []int
		if keys == nil {
			pairs = make([]int, len(x.LKey))
			for i := range pairs {
				pairs[i] = i
			}
		} else {
			for _, k := range keys {
				// Only a bare join-key column aligns the two sides; a
				// computed key cannot be imposed on both inputs at once.
				col, isCol := k.(expr.Col)
				i := -1
				if isCol {
					i = pairOf(col.Ref)
				}
				if i < 0 {
					if exact {
						return false
					}
					continue
				}
				pairs = append(pairs, i)
			}
			if len(pairs) == 0 {
				return false
			}
		}
		lsub := make([]expr.Expr, len(pairs))
		rsub := make([]expr.Expr, len(pairs))
		for i, p := range pairs {
			lsub[i] = expr.Col{Ref: x.LKey[p]}
			rsub[i] = expr.Col{Ref: x.RKey[p]}
		}
		// Both sides must shard on exactly the aligned key columns so that
		// join partners (equal key values) meet in one replica.
		return impose(x.L, lsub, true, out) && impose(x.R, rsub, true, out)
	}
	return false
}

// mapThroughProject rewrites a key expression over the projection's output
// schema into an equivalent expression over its input schema, substituting
// every column reference with its defining item. Fails on unresolvable
// references and on items that are not deterministic scalars.
func mapThroughProject(e expr.Expr, x *Project) (expr.Expr, bool) {
	return substituteCols(e, func(ref string) (expr.Expr, bool) {
		j, err := x.Schema().ColIndex(ref)
		if err != nil {
			return nil, false
		}
		item := x.Items[j].Expr
		if !deterministicExpr(item) {
			return nil, false
		}
		return item, true
	})
}

// mapThroughAggregate rewrites a key expression over the aggregate's
// output schema into one over its input, allowed only when every column
// reference is a group column (position < len(GroupBy) in the output
// layout). Aggregate values are computed, not carried, so they cannot
// impose anything below.
func mapThroughAggregate(e expr.Expr, x *Aggregate) (expr.Expr, bool) {
	return substituteCols(e, func(ref string) (expr.Expr, bool) {
		j, err := x.Schema().ColIndex(ref)
		if err != nil || j >= len(x.GroupBy) {
			return nil, false
		}
		return expr.Col{Ref: x.GroupBy[j]}, true
	})
}

// substituteCols rewrites every column reference in e through sub,
// preserving the rest of the tree.
func substituteCols(e expr.Expr, sub func(ref string) (expr.Expr, bool)) (expr.Expr, bool) {
	switch t := e.(type) {
	case expr.Lit:
		return t, true
	case expr.Col:
		return sub(t.Ref)
	case expr.Bin:
		l, ok := substituteCols(t.L, sub)
		if !ok {
			return nil, false
		}
		r, ok := substituteCols(t.R, sub)
		if !ok {
			return nil, false
		}
		return expr.Bin{Op: t.Op, L: l, R: r}, true
	case expr.Un:
		in, ok := substituteCols(t.X, sub)
		if !ok {
			return nil, false
		}
		return expr.Un{Op: t.Op, X: in}, true
	case expr.IsNull:
		in, ok := substituteCols(t.X, sub)
		if !ok {
			return nil, false
		}
		return expr.IsNull{X: in, Neg: t.Neg}, true
	case expr.Call:
		args := make([]expr.Expr, len(t.Args))
		for i, a := range t.Args {
			m, ok := substituteCols(a, sub)
			if !ok {
				return nil, false
			}
			args[i] = m
		}
		return expr.Call{Name: t.Name, Args: args}, true
	}
	return nil, false
}

// deterministicExpr reports whether e is a pure function of its input
// tuple — the property that lets an exchange evaluate it for routing (an
// insert and its delete must hash identically). Every current builtin is
// deterministic; the explicit allowlist fails closed if one ever is not.
func deterministicExpr(e expr.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case expr.Lit, expr.Col:
		return true
	case expr.Bin:
		return deterministicExpr(x.L) && deterministicExpr(x.R)
	case expr.Un:
		return deterministicExpr(x.X)
	case expr.IsNull:
		return deterministicExpr(x.X)
	case expr.Call:
		switch strings.ToLower(x.Name) {
		case "abs", "lower", "upper", "length", "coalesce", "sqrt", "dist":
		default:
			return false
		}
		for _, a := range x.Args {
			if !deterministicExpr(a) {
				return false
			}
		}
		return true
	}
	return false
}
