package plan

import (
	"aspen/internal/expr"
	"aspen/internal/sql"
)

// This file decides whether a logical plan can execute partition-parallel
// (stream.Sharder / stream.ShardSet) and, if so, which columns each scan
// must hash-partition its input on so that every stateful operator's state
// partitions cleanly: all tuples of one group, one join key, or one
// distinct value land in the same pipeline replica.
//
// The analysis runs top-down. impose(n, keys, exact) establishes the
// invariant that subtree n's output tuples route to shard
// hash(partition key) % P where the partition key is:
//
//   - exact:  precisely the values of keys, in order — required below a
//     join, whose two sides must agree bit-for-bit on the shard of
//     matching tuples (data.Hasher's canonical encoding makes equal
//     values hash equal across schemas);
//   - !exact: any non-empty, order-preserved subsequence of keys — enough
//     for single-input state (groups, distinct), which only needs the
//     shard to be a function of the key.
//
// Plans the analysis cannot prove partitionable — global aggregates, ROWS
// windows (a global last-n), cross joins, keys hidden behind computed
// projections — fall back to serial execution.

// shardableKeys returns, for each scan, the partition key columns (nil =
// all columns) when the plan can execute partition-parallel.
func shardableKeys(root Node) (map[*Scan][]string, bool) {
	out := map[*Scan][]string{}
	if !impose(root, nil, false, out) {
		return nil, false
	}
	return out, true
}

// impose establishes the partition invariant for subtree n; keys == nil
// means no requirement has been set yet (the first stateful operator
// below picks its own). It records each scan's partition columns in out.
func impose(n Node, keys []string, exact bool, out map[*Scan][]string) bool {
	switch x := n.(type) {
	case *Scan:
		// A ROWS window is a global last-n: its contents depend on total
		// arrival order, which no partitioning preserves.
		if x.Window != nil && x.Window.Kind == sql.WindowRows {
			return false
		}
		for _, k := range keys {
			if !x.Schema().HasCol(k) {
				return false
			}
		}
		out[x] = keys
		return true

	case *Select:
		return impose(x.In, keys, exact, out)

	case *Project:
		if keys == nil {
			return impose(x.In, nil, exact, out)
		}
		// Map each key through the projection; only bare column references
		// preserve the value (and therefore the hash) across the operator.
		mapped := make([]string, 0, len(keys))
		for _, k := range keys {
			j, err := x.Schema().ColIndex(k)
			if err != nil {
				return false
			}
			col, ok := x.Items[j].Expr.(expr.Col)
			if !ok {
				if exact {
					return false
				}
				continue // computed column: drop from the loose key
			}
			mapped = append(mapped, col.Ref)
		}
		if len(mapped) == 0 {
			return false
		}
		return impose(x.In, mapped, exact, out)

	case *Distinct:
		if keys == nil {
			// Set semantics only need equal tuples co-located: partition on
			// (any subsequence of) the full row.
			keys = make([]string, x.Schema().Arity())
			for i, c := range x.Schema().Cols {
				keys[i] = c.QName()
			}
			exact = false
		}
		return impose(x.In, keys, exact, out)

	case *Aggregate:
		if len(x.GroupBy) == 0 {
			// A global aggregate would need a partial-merge stage; not yet.
			return false
		}
		if keys == nil {
			return impose(x.In, x.GroupBy, false, out)
		}
		// Keys map positionally: AggOutSchema lays out group columns first,
		// in GroupBy order, then aggregate columns.
		sub := make([]string, 0, len(keys))
		for _, k := range keys {
			j, err := x.Schema().ColIndex(k)
			if err != nil || j >= len(x.GroupBy) {
				if exact {
					return false // key is an aggregate value, not a group column
				}
				continue
			}
			sub = append(sub, x.GroupBy[j])
		}
		if len(sub) == 0 {
			return false
		}
		// sub ⊆ GroupBy keeps every group in one shard; under an exact
		// requirement nothing was dropped, so values match keys in order.
		return impose(x.In, sub, exact, out)

	case *Join:
		if len(x.LKey) == 0 {
			return false // cross / residual-only join has no partition key
		}
		larity := x.L.Schema().Arity()
		pairOf := func(ref string) int {
			j, err := x.Schema().ColIndex(ref)
			if err != nil {
				return -1
			}
			for i := range x.LKey {
				if li, err := x.L.Schema().ColIndex(x.LKey[i]); err == nil && li == j {
					return i
				}
				if ri, err := x.R.Schema().ColIndex(x.RKey[i]); err == nil && larity+ri == j {
					return i
				}
			}
			return -1
		}
		var pairs []int
		if keys == nil {
			pairs = make([]int, len(x.LKey))
			for i := range pairs {
				pairs[i] = i
			}
		} else {
			for _, k := range keys {
				i := pairOf(k)
				if i < 0 {
					if exact {
						return false
					}
					continue
				}
				pairs = append(pairs, i)
			}
			if len(pairs) == 0 {
				return false
			}
		}
		lsub := make([]string, len(pairs))
		rsub := make([]string, len(pairs))
		for i, p := range pairs {
			lsub[i] = x.LKey[p]
			rsub[i] = x.RKey[p]
		}
		// Both sides must shard on exactly the aligned key columns so that
		// join partners (equal key values) meet in one replica.
		return impose(x.L, lsub, true, out) && impose(x.R, rsub, true, out)
	}
	return false
}
