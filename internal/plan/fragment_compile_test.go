package plan

import (
	"fmt"
	"testing"
	"time"

	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// fragFeedCatalog registers LightFeed: a derived stream whose rows come
// from a sensor fragment, shaped like a reading (mote, room, desk, value).
func fragFeedCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.MustAddSource(&catalog.Source{Name: "LightFeed", Kind: catalog.KindSensorStream,
		Schema: sensor.ReadingSchema("LightFeed"), Rate: 10})
	return cat
}

// fragCompileEnv is a pure reading function: identical engines on the
// coordinator and every worker process sample identical values, so
// fragment-at-worker runs compare bit-exactly against central runs.
func fragCompileEnv(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
	return float64(n.ID%5) + float64(int64(now)/int64(vtime.Second)%3), true
}

// newFragCompileHosts builds one 4x4 light grid host registry; callers on
// different "machines" build their own identical copy.
func newFragCompileHosts() *SensorHosts {
	nw := sensornet.Grid(sensornet.DefaultConfig(), 4, 4, 100, 4, sensornet.SensorLight)
	h := NewSensorHosts()
	h.Add("light", sensor.NewEngine(nw, sensor.EnvFunc(fragCompileEnv)))
	return h
}

// lightFeedFragment is the fragment producing LightFeed: a filtered light
// select whose epochs land every second.
func lightFeedFragment(t *testing.T) SensorFragment {
	t.Helper()
	pred, err := expr.Bind(
		expr.Bin{Op: expr.OpLt, L: expr.Col{Ref: "value"}, R: expr.Lit{V: data.Float(4)}},
		sensor.ReadingSchema("l"))
	if err != nil {
		t.Fatal(err)
	}
	return SensorFragment{Name: "LightFeed", Sources: []string{"light"},
		Select: &sensor.SelectQuery{Rel: "l", Sensor: sensornet.SensorLight,
			Pred: pred, Period: time.Second}}
}

const lightFeedQuery = `SELECT lf.room, count(*) AS n
	FROM LightFeed lf [RANGE 4 SECONDS] GROUP BY lf.room ORDER BY lf.room`

// runCentralEpochs drives the serial reference: at each tick the windows
// advance first, then the central epoch runner's batch lands — the same
// frame order a shard replica uses.
func runCentralEpochs(t *testing.T, eng *stream.Engine, h *SensorHosts, q *sensor.SelectQuery, upto vtime.Time) {
	t.Helper()
	in, ok := eng.Input("LightFeed")
	if !ok {
		t.Fatal("serial deployment did not register LightFeed")
	}
	se, ok := h.Engine("light")
	if !ok {
		t.Fatal("host registry lost the light engine")
	}
	for now := vtime.Time(vtime.Second); now <= upto; now += vtime.Time(vtime.Second) {
		eng.Advance(now)
		var batch []data.Tuple
		se.RunSelectEpoch(q, now, func(tu data.Tuple) { batch = append(batch, tu) })
		in.PushBatch(batch)
	}
}

// newFragSensorWorkers starts n loopback shard workers, each hosting its
// own identical light engine, and returns their affinity-annotated node
// entries.
func newFragSensorWorkers(t *testing.T, n int) []string {
	t.Helper()
	nodes := make([]string, n)
	for i := range nodes {
		w, err := NewSensorWorker("127.0.0.1:0", newFragCompileHosts())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		nodes[i] = w.Addr() + "=light"
	}
	return nodes
}

// TestCompileShardedRemoteFragmentDifferential compiles the LightFeed plan
// twice — serial with a central epoch runner, and sharded over two sensor
// workers with the fragment pushed into the replicas — and requires
// identical results. Exercises the whole in-package path: eligibility,
// wire encoding, worker-side runner builds, locality placement.
func TestCompileShardedRemoteFragmentDifferential(t *testing.T) {
	const upto = vtime.Time(8 * vtime.Second)
	frag := lightFeedFragment(t)

	sEng := stream.NewEngine("frag-serial", vtime.NewScheduler())
	serial, err := CompileStreamOpts(mustBuild(t, lightFeedQuery, fragFeedCatalog()), sEng, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	runCentralEpochs(t, sEng, newFragCompileHosts(), frag.Select, upto)
	want, err := serial.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference is empty; the fragment workload is vacuous")
	}

	nodes := newFragSensorWorkers(t, 2)
	rEng := stream.NewEngine("frag-remote", vtime.NewScheduler())
	dep, err := CompileStreamOpts(mustBuild(t, lightFeedQuery, fragFeedCatalog()), rEng, CompileOptions{
		Parallelism: 4, Nodes: nodes,
		Fragments: []SensorFragment{frag}, SensorHosts: newFragCompileHosts(),
		TickPeriod: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if len(dep.RemoteFragments) != 1 || dep.RemoteFragments[0] != "LightFeed" {
		t.Fatalf("RemoteFragments = %v, want [LightFeed]", dep.RemoteFragments)
	}
	addrs, affinity, err := ParseNodes(nodes)
	if err != nil {
		t.Fatal(err)
	}
	affine := map[string]bool{}
	for _, a := range addrs {
		for _, src := range affinity[a] {
			if src == "light" {
				affine[a] = true
			}
		}
	}
	for shard, addr := range dep.Placement() {
		if !affine[addr] {
			t.Fatalf("shard %d placed on %q, which does not host light", shard, addr)
		}
	}

	for now := vtime.Time(vtime.Second); now <= upto; now += vtime.Time(vtime.Second) {
		rEng.Advance(now)
	}
	got, err := dep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("remote fragment rows %v, want %v", got, want)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("row %d: remote %v, want %v", i, got[i], want[i])
		}
	}
}

// TestCompileShardedFragmentStaysCentral covers the ways a fragment keeps
// its central runner: workers without source affinity, and a coordinator
// that hosts no sensor engines.
func TestCompileShardedFragmentStaysCentral(t *testing.T) {
	frag := lightFeedFragment(t)
	cases := []struct {
		name     string
		annotate bool
		hosts    *SensorHosts
	}{
		{"no-worker-affinity", false, newFragCompileHosts()},
		{"no-coordinator-hosts", true, nil},
		{"coordinator-missing-source", true, NewSensorHosts()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, err := NewSensorWorker("127.0.0.1:0", newFragCompileHosts())
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			node := w.Addr()
			if c.annotate {
				node += "=light"
			}
			eng := stream.NewEngine("frag-central-"+c.name, vtime.NewScheduler())
			dep, err := CompileStreamOpts(mustBuild(t, lightFeedQuery, fragFeedCatalog()), eng, CompileOptions{
				Parallelism: 2, Nodes: []string{node},
				Fragments: []SensorFragment{frag}, SensorHosts: c.hosts,
				TickPeriod: time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer dep.Close()
			if len(dep.RemoteFragments) != 0 {
				t.Fatalf("fragment must stay central, got RemoteFragments = %v", dep.RemoteFragments)
			}
		})
	}
}

// TestFragmentJoinRunnerPartitionsUnion partitions a same-desk
// temperature⋈light join fragment across shards and checks the union is
// exactly the central epoch; then round-trips the join runner's
// checkpoint, which carries adaptive placement stats.
func TestFragmentJoinRunnerPartitionsUnion(t *testing.T) {
	h := newFragTestHosts()
	f := &SensorFragment{Name: "d", Sources: []string{"temperature", "light"},
		Join: &sensor.JoinQuery{
			Left:   sensor.JoinSide{Rel: "t", Sensor: sensornet.SensorTemperature},
			Right:  sensor.JoinSide{Rel: "l", Sensor: sensornet.SensorLight},
			PairBy: sensor.PairSameDesk, Period: time.Second,
		}}
	const p = 3
	w, err := encodeFragment(f, "s0", []int{1}, p, vtime.Time(vtime.Second))
	if err != nil {
		t.Fatal(err)
	}

	var union []data.Tuple
	var last *fragRunner
	for shard := 0; shard < p; shard++ {
		sink := &collectOp{schema: f.Join.Schema()}
		rs, err := h.buildFragRunners([]wireFragment{w}, shard, map[string]stream.Operator{"s0": sink})
		if err != nil {
			t.Fatal(err)
		}
		rs[0].Advance(vtime.Time(vtime.Second))
		union = append(union, sink.got...)
		last = rs[0]
	}

	eng, _ := h.Engine("light")
	st, err := eng.PlanJoin(f.Join)
	if err != nil {
		t.Fatal(err)
	}
	var central []data.Tuple
	eng.RunJoinEpoch(st, vtime.Time(vtime.Second), func(tu data.Tuple) { central = append(central, tu.Clone()) })
	if len(central) == 0 {
		t.Fatal("central join epoch is empty; the probe is vacuous")
	}
	if len(union) != len(central) {
		t.Fatalf("partition union has %d pairs, central %d", len(union), len(central))
	}
	seen := map[string]int{}
	for _, tu := range union {
		seen[fmt.Sprint(tu.Vals[0].AsInt(), "/", tu.Vals[4].AsInt())]++
	}
	for _, tu := range central {
		k := fmt.Sprint(tu.Vals[0].AsInt(), "/", tu.Vals[4].AsInt())
		if seen[k] != 1 {
			t.Fatalf("pair %s appears %d times across partitions", k, seen[k])
		}
	}

	// The join runner's checkpoint rides placement stats; a fresh runner
	// must accept it and resume at the anchor.
	ck := last.CheckpointState()
	sink := &collectOp{schema: f.Join.Schema()}
	rs, err := h.buildFragRunners([]wireFragment{w}, p-1, map[string]stream.Operator{"s0": sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs[0].RestoreState(ck); err != nil {
		t.Fatal(err)
	}
	if rs[0].next != vtime.Time(2*vtime.Second) {
		t.Fatalf("restored anchor = %v, want 2s", rs[0].next)
	}
	if err := rs[0].RestoreState(stream.OpState{}); err == nil {
		t.Fatal("restoring a non-opaque state must fail")
	}
	if err := rs[0].RestoreState(stream.NewOpaqueState(nil)); err != nil {
		t.Fatalf("an empty opaque payload is a fresh runner, not an error: %v", err)
	}
}

// TestFragmentAggRunnerPartitionsUnion partitions a grouped count fragment
// by room and checks every room's PSR lands on exactly one shard, with the
// union matching the central TAG epoch.
func TestFragmentAggRunnerPartitionsUnion(t *testing.T) {
	h := newFragTestHosts()
	f := &SensorFragment{Name: "d", Sources: []string{"temperature"},
		Agg: &sensor.AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
			Func: sensor.AggCount, GroupByRoom: true, Period: time.Second}}
	const p = 3
	w, err := encodeFragment(f, "s0", []int{0}, p, vtime.Time(vtime.Second))
	if err != nil {
		t.Fatal(err)
	}

	var union []data.Tuple
	for shard := 0; shard < p; shard++ {
		sink := &collectOp{schema: f.Agg.Schema()}
		rs, err := h.buildFragRunners([]wireFragment{w}, shard, map[string]stream.Operator{"s0": sink})
		if err != nil {
			t.Fatal(err)
		}
		rs[0].Advance(vtime.Time(vtime.Second))
		union = append(union, sink.got...)
	}

	eng, _ := h.Engine("temperature")
	var central []data.Tuple
	eng.RunAggregateEpoch(f.Agg, vtime.Time(vtime.Second), func(tu data.Tuple) { central = append(central, tu.Clone()) })
	if len(central) == 0 {
		t.Fatal("central aggregate epoch is empty")
	}
	if len(union) != len(central) {
		t.Fatalf("partition union has %d groups, central %d", len(union), len(central))
	}
	want := map[string]int64{}
	for _, tu := range central {
		want[tu.Vals[0].AsString()] = tu.Vals[1].AsInt()
	}
	for _, tu := range union {
		room := tu.Vals[0].AsString()
		if got, ok := want[room]; !ok || got != tu.Vals[1].AsInt() {
			t.Fatalf("room %s: partition count %d, central %d", room, tu.Vals[1].AsInt(), got)
		}
		delete(want, room)
	}
}

// TestFragmentPeriodDefaults covers the effective-period rule per kind.
func TestFragmentPeriodDefaults(t *testing.T) {
	if got := (&SensorFragment{Select: &sensor.SelectQuery{}}).period(); got != time.Second {
		t.Fatalf("zero select period = %v, want the 1s default", got)
	}
	if got := (&SensorFragment{Join: &sensor.JoinQuery{Period: 2 * time.Second}}).period(); got != 2*time.Second {
		t.Fatalf("join period = %v", got)
	}
	if got := (&SensorFragment{Agg: &sensor.AggregateQuery{Period: 3 * time.Second}}).period(); got != 3*time.Second {
		t.Fatalf("agg period = %v", got)
	}
}

// TestSensorHostsResolutionErrors covers the registry's failure surface:
// missing sources, fragments spanning engines, bad wire predicates,
// unknown scans and kinds.
func TestSensorHostsResolutionErrors(t *testing.T) {
	if (*SensorHosts)(nil).Sources() != nil {
		t.Fatal("nil registry must list no sources")
	}
	if _, ok := (*SensorHosts)(nil).Engine("light"); ok {
		t.Fatal("nil registry must host nothing")
	}

	if _, err := encodeFragment(&SensorFragment{Name: "empty"}, "s0", nil, 1, 0); err == nil {
		t.Fatal("a fragment with no query must not encode")
	}

	mkEngine := func() *sensor.Engine {
		nw := sensornet.Line(sensornet.DefaultConfig(), 4, 50,
			sensornet.SensorTemperature, sensornet.SensorLight)
		return sensor.NewEngine(nw, sensor.EnvFunc(fragCompileEnv))
	}
	split := NewSensorHosts()
	split.Add("temperature", mkEngine())
	split.Add("light", mkEngine())
	if got := len(split.Sources()); got != 2 {
		t.Fatalf("Sources lists %d entries, want 2", got)
	}
	sink := &collectOp{schema: sensor.ReadingSchema("l")}
	heads := map[string]stream.Operator{"s0": sink}

	selWire := func(mut func(*wireFragment)) wireFragment {
		w := wireFragment{Kind: fragSelect, Scan: "s0", Sources: []string{"light"},
			Rel: "l", Sensor: sensornet.SensorLight, Period: time.Second, P: 1}
		mut(&w)
		return w
	}
	cases := []struct {
		name string
		w    wireFragment
	}{
		{"missing-source", selWire(func(w *wireFragment) { w.Sources = []string{"pdu"} })},
		{"no-sources", selWire(func(w *wireFragment) { w.Sources = nil })},
		{"spanning-engines", wireFragment{Kind: fragJoin, Scan: "s0",
			Sources: []string{"temperature", "light"}, Rel: "t", RRel: "l",
			Sensor: sensornet.SensorTemperature, RSensor: sensornet.SensorLight,
			PairBy: sensor.PairSameDesk, Period: time.Second, P: 1}},
		{"unknown-kind", selWire(func(w *wireFragment) { w.Kind = fragKind(9) })},
		{"bad-select-pred", selWire(func(w *wireFragment) { w.Pred = expr.Col{Ref: "nosuch"} })},
		{"unknown-scan", selWire(func(w *wireFragment) { w.Scan = "s9" })},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := split.buildFragRunners([]wireFragment{c.w}, 0, heads); err == nil {
				t.Fatal("build must fail")
			}
		})
	}

	one := NewSensorHosts()
	one.Add("temperature", mkEngine())
	one.Add("light", one.m["temperature"])
	aggBad := wireFragment{Kind: fragAggregate, Scan: "s0", Sources: []string{"temperature"},
		Rel: "t", Sensor: sensornet.SensorTemperature, Pred: expr.Col{Ref: "nosuch"},
		AggFunc: sensor.AggCount, GroupByRoom: true, Period: time.Second, P: 1}
	if _, err := one.buildFragRunners([]wireFragment{aggBad}, 0, heads); err == nil {
		t.Fatal("aggregate with an unbindable predicate must fail")
	}
	joinBadRight := wireFragment{Kind: fragJoin, Scan: "s0",
		Sources: []string{"temperature", "light"}, Rel: "t", RRel: "l",
		Sensor: sensornet.SensorTemperature, RSensor: sensornet.SensorLight,
		RPred: expr.Col{Ref: "nosuch"}, PairBy: sensor.PairSameDesk, Period: time.Second, P: 1}
	if _, err := one.buildFragRunners([]wireFragment{joinBadRight}, 0, heads); err == nil {
		t.Fatal("join with an unbindable right predicate must fail")
	}
}
