package plan

import (
	"fmt"
	"strings"
	"sync"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
)

// This file is the multi-query sharing layer: many standing queries over
// the same building ask overlapping questions (the paper's workload —
// "where is a free lab PC", per-floor rollups), and compiling each one a
// private scan+window+select pipeline makes the engine's per-tuple cost
// linear in the number of queries. Sharing canonicalizes the compiled
// prefix of every serial plan — the scan, its window, and any stack of
// selections directly above it — and lets N deployments subscribe to one
// physical operator chain, fanning out (stream.Fanout) only where the
// plans diverge. Chains are refcounted: the last Deployment.Close of the
// last query on a chain detaches it from the engine (Input.Unsubscribe,
// Engine.UntrackWindow) and frees its window state.
//
// Chains layer: the base chain is scan+window, and each distinct
// selection predicate stacks a derived chain (one Filter feeding its own
// Fanout) on the parent's fan-out point, so queries that share the scan
// and window but diverge at the predicate still share the window — the
// dominant state and maintenance cost.
//
// Canonical keys are positional: predicates are rendered with column
// references rewritten to column indexes of the scan schema, so two
// queries aliasing the same source differently (`temps AS t1` vs `AS
// t2`) still share. Tuples are positional (data.Tuple.Vals), which is
// what makes one physical chain's output valid input for every
// subscriber regardless of its alias bindings.
//
// Semantics: a query attaching to a chain whose window is already
// populated warm-starts — the window's current contents replay into the
// query's divergent suffix as insertions (filtered through the chain's
// predicates), so the later expiry deletions the shared window emits
// always retract tuples the suffix has seen. A freshly attached query
// therefore sees the current window contents where a private pipeline
// would have started empty; once those rows expire the two are
// indistinguishable. Attach and release follow the engine's deploy-time
// contract: callers must not be pushing the affected input concurrently.
type Sharing struct {
	eng *stream.Engine

	mu     sync.Mutex
	chains map[string]*sharedChain
	// pending holds per-chain window states decoded from a coordinator
	// snapshot, keyed by canonical chain key. ensureBase consumes an entry
	// when it builds a fresh base chain during restore, so the rebuilt
	// window resumes exactly where the saved one stopped. Entries never
	// touch chains that already exist live.
	pending map[string][]byte
}

// NewSharing creates an empty sharing registry over one engine. Pass it
// via CompileOptions.Sharing (core.Config.SharedPrefixes wires it for a
// whole runtime); all compiles sharing prefixes must use one registry.
func NewSharing(eng *stream.Engine) *Sharing {
	return &Sharing{eng: eng, chains: map[string]*sharedChain{}}
}

// sharedChain is one physical prefix layer: the base scan+window, or one
// selection stacked on a parent chain. refs counts direct query
// attachments plus child chains; at zero the chain detaches.
type sharedChain struct {
	key    string
	parent *sharedChain
	fan    *stream.Fanout
	// head feeds this layer: the window (or the fan itself, unwindowed)
	// subscribed to the engine input for a base chain; the filter
	// subscribed to parent.fan for a derived chain.
	head stream.Operator
	win  *stream.Window // base chain's window; nil when unwindowed
	in   *stream.Input  // base chain's engine input
	pred *expr.Compiled // derived chain's predicate (catch-up filtering)
	refs int
}

// Stats reports the live chain count and the total number of query-side
// attachments (fan-out subscriptions that are not child chains).
func (s *Sharing) Stats() (chains, attached int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	children := 0
	for _, ch := range s.chains {
		if ch.parent != nil {
			children++
		}
	}
	total := 0
	for _, ch := range s.chains {
		total += ch.fan.Subscribers()
	}
	return len(s.chains), total - children
}

// Chains reports the number of live shared chains.
func (s *Sharing) Chains() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chains)
}

// CaptureChains snapshots the window state of every base chain, keyed by
// the chain's canonical key. Derived layers (filter stacks) are stateless
// and unwindowed base chains carry nothing replayable, so one entry per
// windowed base chain captures all shared state — once per chain, however
// many deployments share it. Callers must hold the engine quiescent (the
// same contract as Coordinator.Save's checkpoint barrier).
func (s *Sharing) CaptureChains() (map[string][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.chains))
	for key, ch := range s.chains {
		if ch.parent != nil || ch.win == nil {
			continue
		}
		st, err := stream.EncodeCheckpoint([]stream.Checkpointer{ch.win})
		if err != nil {
			return nil, fmt.Errorf("plan: capture shared chain %q: %w", key, err)
		}
		out[key] = st
	}
	return out, nil
}

// primeRestore stages snapshotted chain states for consumption by
// ensureBase during a coordinator Restore. Pair with finishRestore.
func (s *Sharing) primeRestore(states map[string][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = states
}

// finishRestore drops any staged chain states the restore did not consume
// (chains whose deployments failed to rehydrate, or that were already
// live).
func (s *Sharing) finishRestore() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = nil
}

// shareablePrefix decomposes a subtree of the form Select*(Scan) over a
// non-table source into its scan and predicate stack (innermost — applied
// first — leading). Any other shape is not a shareable prefix.
func shareablePrefix(n Node) (*Scan, []expr.Expr, bool) {
	var preds []expr.Expr
	for {
		switch x := n.(type) {
		case *Select:
			preds = append(preds, x.Pred)
			n = x.In
		case *Scan:
			if x.IsTable {
				return nil, nil, false
			}
			// reverse: preds were collected outermost-first
			for i, j := 0, len(preds)-1; i < j; i, j = i+1, j-1 {
				preds[i], preds[j] = preds[j], preds[i]
			}
			return x, preds, true
		default:
			return nil, nil, false
		}
	}
}

// canonScanKey renders the canonical identity of a scan+window prefix:
// the engine input (case-insensitive) and the window shape. Aliases and
// rate estimates are presentation, not physical identity.
func canonScanKey(x *Scan) string {
	w := windowFor(x.Window)
	wk := "none"
	if w != nil {
		switch w.kind {
		case sql.WindowRows:
			wk = fmt.Sprintf("rows:%d", w.rows)
		case sql.WindowNow:
			wk = "now"
		default:
			wk = fmt.Sprintf("range:%d:%d", w.rng, w.slide)
		}
	}
	return fmt.Sprintf("in:%s|arity:%d|w:%s", strings.ToLower(x.Input), x.Schema().Arity(), wk)
}

// canonExpr renders an expression with column references rewritten to
// positional indexes of the scan schema, so predicates over differently
// aliased scans of one source canonicalize identically. Reports false
// for references the schema cannot resolve unambiguously (no sharing,
// the private compile path will surface any real error).
func canonExpr(e expr.Expr, s *data.Schema) (string, bool) {
	switch x := e.(type) {
	case expr.Col:
		i, err := s.ColIndex(x.Ref)
		if err != nil {
			return "", false
		}
		return fmt.Sprintf("#%d", i), true
	case expr.Lit:
		return fmt.Sprintf("%d:%s", x.V.T, x.String()), true
	case expr.Bin:
		l, ok := canonExpr(x.L, s)
		if !ok {
			return "", false
		}
		r, ok := canonExpr(x.R, s)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("(%s %s %s)", l, x.Op, r), true
	case expr.Un:
		in, ok := canonExpr(x.X, s)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("(u%d %s)", x.Op, in), true
	case expr.IsNull:
		in, ok := canonExpr(x.X, s)
		if !ok {
			return "", false
		}
		if x.Neg {
			return fmt.Sprintf("(%s NOTNULL)", in), true
		}
		return fmt.Sprintf("(%s ISNULL)", in), true
	case expr.Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			c, ok := canonExpr(a, s)
			if !ok {
				return "", false
			}
			args[i] = c
		}
		return fmt.Sprintf("%s(%s)", strings.ToUpper(x.Name), strings.Join(args, ",")), true
	}
	return "", false
}

// tryAttach attaches out (the query's compiled divergent suffix) to the
// shared chain for n's prefix, creating chain layers as needed. It
// reports handled=false when n is not a shareable prefix — the caller
// compiles privately. On handled=true the subtree is fully wired (or err
// is the compile error) and the attachment is recorded on dep for
// release at Close. restoring skips the warm-start catch-up: a suffix
// whose state a coordinator snapshot is about to restore has already
// seen the window's contents, so replaying them would double-count.
func (s *Sharing) tryAttach(n Node, out stream.Operator, dep *Deployment, restoring bool) (handled bool, err error) {
	scan, preds, ok := shareablePrefix(n)
	if !ok {
		return false, nil
	}
	keys := make([]string, 0, len(preds)+1)
	key := canonScanKey(scan)
	keys = append(keys, key)
	for _, p := range preds {
		c, ok := canonExpr(p, scan.Schema())
		if !ok {
			return false, nil
		}
		key += "|p:" + c
		keys = append(keys, key)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	ch, err := s.ensureBase(keys[0], scan)
	if err != nil {
		s.gcLocked()
		return true, err
	}
	for i, p := range preds {
		ch, err = s.ensureLayer(ch, keys[i+1], p, scan.Schema())
		if err != nil {
			s.gcLocked()
			return true, err
		}
	}

	// Warm start: replay the window's current contents (filtered through
	// the chain's predicates) into the suffix before subscribing it, so
	// the shared window's future expiry deletions always match insertions
	// the suffix has seen.
	if !restoring {
		if rows := s.catchUp(ch); len(rows) > 0 {
			stream.PushBatch(out, rows)
		}
	}
	ch.fan.Subscribe(out)
	ch.refs++
	dep.Inputs = append(dep.Inputs, scan.Input)
	dep.shared = append(dep.shared, sharedAttach{s: s, ch: ch, out: out})
	return true, nil
}

// ensureBase finds or builds the scan+window base chain. Caller holds
// s.mu.
func (s *Sharing) ensureBase(key string, scan *Scan) (*sharedChain, error) {
	if ch, ok := s.chains[key]; ok {
		return ch, nil
	}
	in, err := resolveScanInput(scan, s.eng)
	if err != nil {
		return nil, err
	}
	ch := &sharedChain{key: key, fan: stream.NewFanout(scan.Schema()), in: in}
	ch.head = ch.fan
	if w := windowFor(scan.Window); w != nil {
		ch.win = buildWindow(w, ch.fan)
		ch.head = ch.win
		s.eng.TrackWindow(ch.win)
	}
	in.Subscribe(ch.head)
	s.chains[key] = ch
	if st, ok := s.pending[key]; ok {
		delete(s.pending, key)
		if ch.win != nil {
			if err := stream.RestoreCheckpoint([]stream.Checkpointer{ch.win}, st); err != nil {
				// Chain stays registered with refs == 0; the caller's
				// gcLocked on the error path detaches it.
				return nil, fmt.Errorf("plan: restore shared chain %q: %w", key, err)
			}
		}
	}
	return ch, nil
}

// ensureLayer finds or builds the derived chain stacking pred on parent.
// Caller holds s.mu.
func (s *Sharing) ensureLayer(parent *sharedChain, key string, pred expr.Expr, schema *data.Schema) (*sharedChain, error) {
	if ch, ok := s.chains[key]; ok {
		return ch, nil
	}
	compiled, err := expr.Bind(pred, schema)
	if err != nil {
		return nil, err
	}
	ch := &sharedChain{key: key, parent: parent, fan: stream.NewFanout(schema), pred: compiled}
	ch.head = stream.NewFilter(ch.fan, compiled)
	parent.fan.Subscribe(ch.head)
	parent.refs++
	s.chains[key] = ch
	return ch, nil
}

// catchUp snapshots the rows a fresh subscriber of ch must see: the base
// window's live contents filtered down the chain's predicate stack.
// Caller holds s.mu and must not be pushing concurrently.
func (s *Sharing) catchUp(ch *sharedChain) []data.Tuple {
	var layers []*sharedChain
	base := ch
	for base.parent != nil {
		layers = append(layers, base)
		base = base.parent
	}
	if base.win == nil {
		return nil // unwindowed: no replayable state, same as a private chain
	}
	rows := base.win.Contents()
	// layers run outermost-first here; predicate order cannot change the
	// surviving subset (filters commute), only the work order.
	for _, l := range layers {
		keep := rows[:0]
		for _, t := range rows {
			if l.pred.EvalBool(t) {
				keep = append(keep, t)
			}
		}
		rows = keep
	}
	return rows
}

// release undoes one attachment: the suffix unsubscribes from its chain,
// and every chain whose refcount reaches zero detaches from its parent
// (ultimately from the engine input and tick list) and is forgotten —
// the last Stop of the last query sharing a prefix tears the physical
// chain down.
func (s *Sharing) release(ch *sharedChain, out stream.Operator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch.fan.Unsubscribe(out)
	for ch != nil {
		ch.refs--
		if ch.refs > 0 {
			return
		}
		delete(s.chains, ch.key)
		if ch.parent != nil {
			ch.parent.fan.Unsubscribe(ch.head)
		} else {
			ch.in.Unsubscribe(ch.head)
			if ch.win != nil {
				s.eng.UntrackWindow(ch.win)
			}
		}
		ch = ch.parent
	}
}

// gcLocked detaches and forgets chains nothing references — the cleanup
// for a tryAttach that failed after creating chain layers (every chain
// that survives a successful attach holds at least one reference).
// Caller holds s.mu.
func (s *Sharing) gcLocked() {
	for {
		removed := false
		for _, ch := range s.chains {
			if ch.refs != 0 {
				continue
			}
			delete(s.chains, ch.key)
			if ch.parent != nil {
				ch.parent.fan.Unsubscribe(ch.head)
				ch.parent.refs--
			} else {
				ch.in.Unsubscribe(ch.head)
				if ch.win != nil {
					s.eng.UntrackWindow(ch.win)
				}
			}
			removed = true
		}
		if !removed {
			return
		}
	}
}

// sharedAttach records one query-side attachment for release at
// Deployment.Close.
type sharedAttach struct {
	s   *Sharing
	ch  *sharedChain
	out stream.Operator
}

func (a sharedAttach) release() { a.s.release(a.ch, a.out) }
