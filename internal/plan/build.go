package plan

import (
	"fmt"
	"strings"

	"aspen/internal/catalog"
	"aspen/internal/expr"
	"aspen/internal/sql"
	"aspen/internal/stream"
)

// Build turns a SELECT into a logical plan: views are inlined (the Fig. 1
// rewrite of OpenMachineInfo), predicates are pushed to their scans, joins
// are ordered greedily by estimated cardinality, and aggregation /
// projection / presentation clauses are layered on top.
func Build(stmt *sql.SelectStmt, cat *catalog.Catalog) (*Built, error) {
	flat, err := inlineViews(stmt, cat, 0)
	if err != nil {
		return nil, err
	}
	return buildFlat(flat, cat)
}

// Inline rewrites view references in the statement into their definitions;
// exported for the federated optimizer, which analyzes the flattened FROM.
func Inline(stmt *sql.SelectStmt, cat *catalog.Catalog) (*sql.SelectStmt, error) {
	return inlineViews(stmt, cat, 0)
}

const maxViewDepth = 8

// inlineViews rewrites FROM items naming views into their definitions,
// recursively, requalifying the view's internal aliases and substituting
// its projection into the outer expressions.
func inlineViews(stmt *sql.SelectStmt, cat *catalog.Catalog, depth int) (*sql.SelectStmt, error) {
	if depth > maxViewDepth {
		return nil, fmt.Errorf("plan: view nesting deeper than %d (cycle?)", maxViewDepth)
	}
	out := *stmt
	out.From = nil
	out.Where = stmt.Where
	changed := false
	for _, f := range stmt.From {
		view, isView := cat.View(f.Name)
		if !isView {
			out.From = append(out.From, f)
			continue
		}
		changed = true
		inner := view.Query
		if inner.Star || len(inner.GroupBy) > 0 || inner.Distinct || len(inner.OrderBy) > 0 || inner.Limit >= 0 {
			return nil, fmt.Errorf("plan: view %s is too complex to inline (needs plain select-project-join)", view.Name)
		}
		outerAlias := f.Binding()
		// Re-alias the view's FROM items uniquely.
		rename := map[string]string{} // inner binding (lower) -> new alias
		for _, inf := range inner.From {
			na := outerAlias + "_" + inf.Binding()
			rename[strings.ToLower(inf.Binding())] = na
			nf := inf
			nf.Alias = na
			out.From = append(out.From, nf)
		}
		requal := func(e expr.Expr) expr.Expr {
			for old, nw := range rename {
				e = expr.Requalify(e, old, nw)
			}
			return e
		}
		// The view's WHERE joins the outer WHERE.
		if inner.Where != nil {
			w := requal(inner.Where)
			out.Where = expr.Conjoin([]expr.Expr{out.Where, w})
		}
		// Build the substitution outerAlias.col -> inner expression.
		sub := map[string]expr.Expr{}
		for i, item := range inner.Items {
			name := item.Alias
			if name == "" {
				col, ok := item.Expr.(expr.Col)
				if !ok {
					return nil, fmt.Errorf("plan: view %s item %d needs an alias", view.Name, i)
				}
				_, name = splitRef(col.Ref)
			}
			sub[strings.ToLower(outerAlias+"."+name)] = requal(item.Expr)
		}
		out.Where = expr.Substitute(out.Where, sub)
		out.Having = expr.Substitute(out.Having, sub)
		for i := range out.Items {
			if i < len(stmt.Items) {
				out.Items[i].Expr = expr.Substitute(stmt.Items[i].Expr, sub)
			}
		}
		// ORDER BY and GROUP BY references to the view's columns.
		for i, g := range out.GroupBy {
			if rep, ok := sub[strings.ToLower(g)]; ok {
				if col, isCol := rep.(expr.Col); isCol {
					out.GroupBy[i] = col.Ref
				}
			}
		}
		for i, o := range out.OrderBy {
			if rep, ok := sub[strings.ToLower(o.Ref)]; ok {
				if col, isCol := rep.(expr.Col); isCol {
					out.OrderBy[i].Ref = col.Ref
				}
			}
		}
	}
	if !changed {
		return stmt, nil
	}
	return inlineViews(&out, cat, depth+1)
}

func splitRef(ref string) (rel, name string) {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return "", ref
}

// buildFlat plans a view-free statement.
func buildFlat(stmt *sql.SelectStmt, cat *catalog.Catalog) (*Built, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("plan: empty FROM")
	}
	// Base scans.
	var nodes []Node
	seen := map[string]bool{}
	for _, f := range stmt.From {
		src, ok := cat.Source(f.Name)
		if !ok {
			return nil, fmt.Errorf("plan: unknown source %q", f.Name)
		}
		binding := strings.ToLower(f.Binding())
		if seen[binding] {
			return nil, fmt.Errorf("plan: duplicate binding %q in FROM", f.Binding())
		}
		seen[binding] = true
		w := f.Window
		isTable := src.Kind == catalog.KindTable
		if isTable && w != nil {
			return nil, fmt.Errorf("plan: window on stored table %s", f.Name)
		}
		if src.Derived {
			// Derived fragments keep their embedded column qualifiers
			// (e.g. sa.room, ss.desk inside a pushed join's output).
			nodes = append(nodes, NewDerivedScan(src.Name, sourceSchema(src), w, src.Cardinality()))
		} else {
			nodes = append(nodes, NewScan(src.Name, f.Binding(), sourceSchema(src), w, src.Cardinality(), isTable))
		}
	}

	// Distribute conjuncts: local predicates below, join predicates kept.
	conjuncts := expr.Conjuncts(stmt.Where)
	var joinPreds []expr.Expr
	for _, c := range conjuncts {
		placed := false
		for i, n := range nodes {
			if expr.BoundBy(c, n.Schema()) {
				nodes[i] = &Select{In: n, Pred: mergePred(nodes[i], c)}
				placed = true
				break
			}
		}
		if !placed {
			joinPreds = append(joinPreds, c)
		}
	}
	// collapse stacked selects created by mergePred
	for i, n := range nodes {
		nodes[i] = collapseSelect(n)
	}

	// Greedy join ordering.
	root, err := orderJoins(nodes, joinPreds)
	if err != nil {
		return nil, err
	}

	// Aggregation or plain projection.
	items := stmt.Items
	if stmt.Star {
		items = starItems(root)
	}
	var top Node = root
	aggSpecs, aggItems, isAgg, err := splitAggregates(items)
	if err != nil {
		return nil, err
	}
	if isAgg || len(stmt.GroupBy) > 0 || stmt.Having != nil {
		if !isAgg {
			return nil, fmt.Errorf("plan: GROUP BY/HAVING without aggregates")
		}
		agg, err := NewAggregate(top, stmt.GroupBy, aggSpecs, stmt.Having)
		if err != nil {
			return nil, err
		}
		// Non-aggregate items must be grouping columns.
		for _, it := range aggItems {
			if it.agg < 0 {
				col, ok := it.item.Expr.(expr.Col)
				if !ok || !inGroupBy(col.Ref, stmt.GroupBy) {
					return nil, fmt.Errorf("plan: %s is neither aggregated nor grouped", it.item.Expr)
				}
			}
		}
		top = agg
		// Reproject to the SELECT order over the aggregate's output.
		proj := make([]stream.ProjectItem, len(aggItems))
		for i, it := range aggItems {
			if it.agg >= 0 {
				name := aggSpecs[it.agg].Alias
				proj[i] = stream.ProjectItem{Expr: expr.C(name), Alias: name}
			} else {
				proj[i] = stream.ProjectItem{Expr: it.item.Expr, Alias: it.item.Alias}
			}
		}
		p, err := NewProject(top, proj)
		if err != nil {
			return nil, err
		}
		top = p
	} else {
		p, err := NewProject(top, toProjectItems(items))
		if err != nil {
			return nil, err
		}
		top = p
	}
	if stmt.Distinct {
		top = &Distinct{In: top}
	}

	b := &Built{Root: top, Limit: stmt.Limit, Display: stmt.OutputTo, SamplePeriod: stmt.SamplePeriod}
	for _, o := range stmt.OrderBy {
		ref := o.Ref
		if !top.Schema().HasCol(ref) {
			return nil, fmt.Errorf("plan: ORDER BY %s not in result %s", ref, top.Schema())
		}
		b.OrderBy = append(b.OrderBy, stream.OrderSpec{Col: ref, Desc: o.Desc})
	}
	if stmt.Limit >= 0 {
		b.Limit = stmt.Limit
	} else {
		b.Limit = -1
	}
	return b, nil
}

func mergePred(n Node, c expr.Expr) expr.Expr {
	if s, ok := n.(*Select); ok {
		return expr.Conjoin([]expr.Expr{s.Pred, c})
	}
	return c
}

func collapseSelect(n Node) Node {
	s, ok := n.(*Select)
	if !ok {
		return n
	}
	for {
		inner, ok := s.In.(*Select)
		if !ok {
			return s
		}
		s = &Select{In: inner.In, Pred: expr.Conjoin([]expr.Expr{inner.Pred, s.Pred})}
	}
}

// orderJoins greedily combines nodes, preferring equi-joins with the
// smallest estimated output, falling back to cross joins.
func orderJoins(nodes []Node, preds []expr.Expr) (Node, error) {
	remaining := append([]expr.Expr(nil), preds...)
	for len(nodes) > 1 {
		type cand struct {
			i, j   int
			lk, rk []string
			used   []int
			card   float64
		}
		var best *cand
		for i := 0; i < len(nodes); i++ {
			for j := 0; j < len(nodes); j++ {
				if i == j {
					continue
				}
				var lk, rk []string
				var used []int
				for pi, p := range remaining {
					if l, r, ok := expr.EquiJoin(p, nodes[i].Schema(), nodes[j].Schema()); ok {
						lk = append(lk, l)
						rk = append(rk, r)
						used = append(used, pi)
					}
				}
				if len(lk) == 0 {
					continue
				}
				card := Card(nodes[i]) * Card(nodes[j]) * 0.1
				if best == nil || card < best.card {
					best = &cand{i: i, j: j, lk: lk, rk: rk, used: used, card: card}
				}
			}
		}
		var joined Node
		var i, j int
		if best != nil {
			i, j = best.i, best.j
			joined = NewJoin(nodes[i], nodes[j], best.lk, best.rk, nil)
			// remove used predicates
			keep := remaining[:0]
			usedSet := map[int]bool{}
			for _, u := range best.used {
				usedSet[u] = true
			}
			for pi, p := range remaining {
				if !usedSet[pi] {
					keep = append(keep, p)
				}
			}
			remaining = keep
		} else {
			// no equi-join available: cross join the two smallest
			i, j = smallestPair(nodes)
			joined = NewJoin(nodes[i], nodes[j], nil, nil, nil)
		}
		// attach any residual predicates now bound
		var residuals []expr.Expr
		keep := remaining[:0]
		for _, p := range remaining {
			if expr.BoundBy(p, joined.Schema()) {
				residuals = append(residuals, p)
			} else {
				keep = append(keep, p)
			}
		}
		remaining = keep
		if len(residuals) > 0 {
			joined = &Select{In: joined, Pred: expr.Conjoin(residuals)}
		}
		// replace i and j with the joined node
		var next []Node
		for k, n := range nodes {
			if k != i && k != j {
				next = append(next, n)
			}
		}
		nodes = append(next, joined)
	}
	if len(remaining) > 0 {
		return nil, fmt.Errorf("plan: unplaceable predicate %s", remaining[0])
	}
	return nodes[0], nil
}

func smallestPair(nodes []Node) (int, int) {
	bi, bj := 0, 1
	bc := Card(nodes[0]) * Card(nodes[1])
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if c := Card(nodes[i]) * Card(nodes[j]); c < bc {
				bi, bj, bc = i, j, c
			}
		}
	}
	return bi, bj
}

func starItems(n Node) []sql.SelectItem {
	var items []sql.SelectItem
	for _, c := range n.Schema().Cols {
		items = append(items, sql.SelectItem{Expr: expr.C(c.QName())})
	}
	return items
}

func toProjectItems(items []sql.SelectItem) []stream.ProjectItem {
	out := make([]stream.ProjectItem, len(items))
	for i, it := range items {
		out[i] = stream.ProjectItem{Expr: it.Expr, Alias: it.Alias}
	}
	return out
}

type aggItem struct {
	item sql.SelectItem
	agg  int // index into specs, or -1 for plain items
}

// splitAggregates detects aggregate calls in the select list. Aggregates
// may only appear at the top level of an item.
func splitAggregates(items []sql.SelectItem) ([]stream.AggSpec, []aggItem, bool, error) {
	var specs []stream.AggSpec
	out := make([]aggItem, len(items))
	found := false
	for i, it := range items {
		call, ok := it.Expr.(expr.Call)
		if !ok {
			out[i] = aggItem{item: it, agg: -1}
			continue
		}
		kind, isAgg := stream.ParseAggKind(call.Name)
		if !isAgg {
			out[i] = aggItem{item: it, agg: -1}
			continue
		}
		found = true
		var arg expr.Expr
		if len(call.Args) == 1 {
			if col, isCol := call.Args[0].(expr.Col); isCol && col.Ref == "*" {
				if kind != stream.AggCount {
					return nil, nil, false, fmt.Errorf("plan: %s(*) is not valid", kind)
				}
			} else {
				arg = call.Args[0]
			}
		} else if len(call.Args) > 1 {
			return nil, nil, false, fmt.Errorf("plan: %s takes one argument", kind)
		}
		alias := it.Alias
		if alias == "" {
			alias = fmt.Sprintf("%s_%d", kind, i+1)
		}
		specs = append(specs, stream.AggSpec{Kind: kind, Arg: arg, Alias: alias})
		out[i] = aggItem{item: it, agg: len(specs) - 1}
	}
	return specs, out, found, nil
}

func inGroupBy(ref string, groupBy []string) bool {
	for _, g := range groupBy {
		if strings.EqualFold(g, ref) {
			return true
		}
		// allow unqualified match
		_, gn := splitRef(g)
		_, rn := splitRef(ref)
		if strings.EqualFold(gn, rn) {
			return true
		}
	}
	return false
}
