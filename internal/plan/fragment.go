package plan

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// This file makes sensor fragments first-class distributed subplans: the
// federated optimizer's in-network select/join/aggregate fragments, which
// until now always ran on the coordinator's sensor engine, can ship inside
// a replica's wire spec and execute on the shard worker that physically
// hosts the sensor source. Each shard's replica runs a *partitioned* epoch
// fragment — it samples only the motes (or mote pairs) whose partition-key
// hash routes to that shard, exactly mirroring the coordinator Sharder's
// hash (data.Hasher.HashOn % P) — so the shards' delivered multisets union
// to the central run's and no exchange hop is needed: epoch batches feed
// the co-resident replica heads directly.
//
// Fragment runners implement stream.Advancer (epochs catch up at tick
// barriers, after windows advance — the same advance-then-epoch order the
// serial scheduler's FIFO produces at shared instants) and
// stream.Checkpointer (the next-epoch anchor plus adaptive join placement
// stats ride shard checkpoints), so failover, rescale, and coordinator
// snapshots of the *stream* state stay exact: a re-deployed replica
// regenerates exactly the epochs after its restored anchor, which the
// failover undo already retracted downstream.

// SensorFragment describes one sensor fragment feeding a plan's derived
// input, for CompileOptions.Fragments: the compile decides per fragment
// whether it can deploy inside the shard replicas (partition-aligned keys,
// epoch/tick alignment, every shard home hosting the sources) or must stay
// a central runner on the coordinator.
type SensorFragment struct {
	// Name is the derived stream-engine input the fragment feeds (the
	// scan.Input of the plan scan it covers).
	Name string
	// Sources lists the raw catalog sensor sources the fragment reads
	// (lowercased); locality placement routes shards to workers hosting
	// them, and a worker can only host the fragment if its SensorHosts
	// registry carries every one.
	Sources []string

	// Exactly one of the queries is set, mirroring federation.Fragment.
	Select *sensor.SelectQuery
	Join   *sensor.JoinQuery
	Agg    *sensor.AggregateQuery
}

// period returns the fragment's effective epoch period (the sensor
// engine's 1s default applies).
func (f *SensorFragment) period() time.Duration {
	var p time.Duration
	switch {
	case f.Select != nil:
		p = f.Select.Period
	case f.Join != nil:
		p = f.Join.Period
	case f.Agg != nil:
		p = f.Agg.Period
	}
	if p <= 0 {
		p = time.Second
	}
	return p
}

// fragKind discriminates wire fragments.
type fragKind uint8

const (
	fragSelect fragKind = iota
	fragJoin
	fragAggregate
)

// wireFragment is the gob mirror of one shard-hosted sensor fragment.
// Predicates travel as raw expressions (expr.Compiled closures cannot
// cross processes) and re-Bind against the reading schemas worker-side.
type wireFragment struct {
	Kind    fragKind
	Scan    string   // wire name of the scan head the epochs feed
	Sources []string // SensorHosts registry keys the host must carry
	Period  time.Duration
	StartAt vtime.Time // first epoch instant (anchor; checkpoints override)
	KeyIdx  []int      // partition key columns of the fragment output schema
	P       int        // shard count the key hashes over

	// fragSelect and the left side of fragJoin.
	Rel    string
	Sensor sensornet.SensorKind
	Pred   expr.Expr

	// fragJoin.
	RRel      string
	RSensor   sensornet.SensorKind
	RPred     expr.Expr
	On        expr.Expr
	PairBy    sensor.PairBy
	Radius    float64
	Placement sensor.Placement

	// fragAggregate.
	AggFunc     sensor.AggFunc
	GroupByRoom bool
	Mode        sensor.AggMode
}

// exprSource unwraps a compiled predicate to its raw expression (nil-safe).
func exprSource(c *expr.Compiled) expr.Expr {
	if c == nil {
		return nil
	}
	return c.Source()
}

// encodeFragment lowers one eligible fragment to its wire mirror.
func encodeFragment(f *SensorFragment, scan string, keyIdx []int, p int, startAt vtime.Time) (wireFragment, error) {
	w := wireFragment{
		Scan: scan, Sources: f.Sources, Period: f.period(),
		StartAt: startAt, KeyIdx: keyIdx, P: p,
	}
	switch {
	case f.Select != nil:
		q := f.Select
		w.Kind, w.Rel, w.Sensor, w.Pred = fragSelect, q.Rel, q.Sensor, exprSource(q.Pred)
	case f.Join != nil:
		q := f.Join
		w.Kind, w.PairBy, w.Radius, w.Placement = fragJoin, q.PairBy, q.Radius, q.Placement
		w.Rel, w.Sensor, w.Pred = q.Left.Rel, q.Left.Sensor, exprSource(q.Left.Pred)
		w.RRel, w.RSensor, w.RPred = q.Right.Rel, q.Right.Sensor, exprSource(q.Right.Pred)
		w.On = exprSource(q.On)
	case f.Agg != nil:
		q := f.Agg
		w.Kind, w.Rel, w.Sensor, w.Pred = fragAggregate, q.Rel, q.Sensor, exprSource(q.Pred)
		w.AggFunc, w.GroupByRoom, w.Mode = q.Func, q.GroupByRoom, q.Mode
	default:
		return wireFragment{}, fmt.Errorf("plan: fragment %s has no query", f.Name)
	}
	return w, nil
}

// bindPred re-binds a raw wire predicate against a schema ("" = none).
func bindPred(e expr.Expr, schema *data.Schema) (*expr.Compiled, error) {
	if e == nil {
		return nil, nil
	}
	return expr.Bind(e, schema)
}

// SensorHosts registers the sensor engines a process hosts, keyed by
// lowercased raw source name. A shard worker built with NewSensorWorker
// consults it when a deploy spec carries sensor fragments; the coordinator
// passes its own registry through CompileOptions.SensorHosts so in-process
// shards (and failover's local last resort) host fragments the same way.
// A nil *SensorHosts is a valid empty registry.
type SensorHosts struct {
	m map[string]*sensor.Engine
}

// NewSensorHosts creates an empty registry.
func NewSensorHosts() *SensorHosts { return &SensorHosts{m: map[string]*sensor.Engine{}} }

// Add registers an engine as the host of source (case-insensitive).
func (h *SensorHosts) Add(source string, e *sensor.Engine) {
	h.m[strings.ToLower(source)] = e
}

// Engine returns the engine hosting source, if any. Nil-receiver-safe.
func (h *SensorHosts) Engine(source string) (*sensor.Engine, bool) {
	if h == nil {
		return nil, false
	}
	e, ok := h.m[strings.ToLower(source)]
	return e, ok
}

// Sources lists the registered source names (unordered).
func (h *SensorHosts) Sources() []string {
	if h == nil {
		return nil
	}
	out := make([]string, 0, len(h.m))
	for k := range h.m {
		out = append(out, k)
	}
	return out
}

// engineFor resolves the single engine hosting every source of a wire
// fragment.
func (h *SensorHosts) engineFor(w *wireFragment) (*sensor.Engine, error) {
	var eng *sensor.Engine
	for _, src := range w.Sources {
		e, ok := h.Engine(src)
		if !ok {
			return nil, fmt.Errorf("plan: this host has no sensor source %q", src)
		}
		if eng != nil && e != eng {
			return nil, fmt.Errorf("plan: fragment sources %v span different sensor engines", w.Sources)
		}
		eng = e
	}
	if eng == nil {
		return nil, fmt.Errorf("plan: fragment %s names no sources", w.Scan)
	}
	return eng, nil
}

// fragRunner executes one shard's partition of a sensor fragment. It is
// driven by the replica's tick path (worker frame loop or local shard
// goroutine) after the windows advance, so epoch batches enter the heads
// under the same single-writer discipline as exchanged data.
type fragRunner struct {
	head   stream.Operator
	period time.Duration
	next   vtime.Time
	run    func(now vtime.Time, deliver sensor.Sink)
	// joinState is set for join fragments: its adaptive placement stats
	// ride this runner's checkpoints.
	joinState *sensor.JoinState
	buf       []data.Tuple
}

// Advance implements stream.Advancer: catch epochs up to now. Epoch
// instants coincide with tick instants (compile-side eligibility), so the
// runner fires at most once per tick in steady state; after a failover
// restore it regenerates every epoch since the checkpoint anchor — exactly
// the deliveries the coordinator's undo log retracted.
func (r *fragRunner) Advance(now vtime.Time) {
	for r.next <= now {
		at := r.next
		r.run(at, func(t data.Tuple) { r.buf = append(r.buf, t) })
		r.next = r.next.Add(r.period)
		if len(r.buf) > 0 {
			stream.PushBatch(r.head, r.buf)
			clear(r.buf)
			r.buf = r.buf[:0]
		}
	}
}

// fragCkState is the gob body of a fragment runner checkpoint.
type fragCkState struct {
	Next  vtime.Time
	Stats []sensor.PairStatsSnapshot
}

// CheckpointState implements stream.Checkpointer.
func (r *fragRunner) CheckpointState() stream.OpState {
	st := fragCkState{Next: r.next}
	if r.joinState != nil {
		st.Stats = r.joinState.SnapshotStats()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		// gob of plain values cannot fail; keep the Checkpointer contract
		// total anyway.
		return stream.NewOpaqueState(nil)
	}
	return stream.NewOpaqueState(buf.Bytes())
}

// RestoreState implements stream.Checkpointer.
func (r *fragRunner) RestoreState(s stream.OpState) error {
	b, err := s.OpaqueData()
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return nil
	}
	var st fragCkState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return fmt.Errorf("plan: decode fragment checkpoint: %w", err)
	}
	r.next = st.Next
	if r.joinState != nil {
		r.joinState.RestoreStats(st.Stats)
	}
	return nil
}

// shardKeep builds the node filter of one shard's partition: hash the
// node-determined key columns of the fragment's output schema exactly as
// the coordinator's Sharder hashes delivered tuples. Unused value slots
// stay zero — HashOn folds only the KeyIdx positions.
func shardKeep(w *wireFragment, shard int) sensor.NodeFilter {
	var h data.Hasher
	p := uint64(w.P)
	if w.Kind == fragAggregate {
		// Output schema (room, value): the only node-determined key is room.
		vals := make([]data.Value, 2)
		return func(n sensornet.Node) bool {
			vals[0] = data.Str(n.Room)
			return int(h.HashOn(data.Tuple{Vals: vals}, w.KeyIdx)%p) == shard
		}
	}
	// Output schema (mote, room, desk, value).
	vals := make([]data.Value, 4)
	return func(n sensornet.Node) bool {
		vals[0] = data.Int(int64(n.ID))
		vals[1] = data.Str(n.Room)
		vals[2] = data.Int(int64(n.Desk))
		return int(h.HashOn(data.Tuple{Vals: vals}, w.KeyIdx)%p) == shard
	}
}

// shardKeepPair is shardKeep over the concatenated join schema
// (mote,room,desk,value) × 2.
func shardKeepPair(w *wireFragment, shard int) sensor.PairFilter {
	var h data.Hasher
	p := uint64(w.P)
	vals := make([]data.Value, 8)
	return func(l, r sensornet.Node) bool {
		vals[0] = data.Int(int64(l.ID))
		vals[1] = data.Str(l.Room)
		vals[2] = data.Int(int64(l.Desk))
		vals[4] = data.Int(int64(r.ID))
		vals[5] = data.Str(r.Room)
		vals[6] = data.Int(int64(r.Desk))
		return int(h.HashOn(data.Tuple{Vals: vals}, w.KeyIdx)%p) == shard
	}
}

// newFragRunner rebuilds one wire fragment's query on this host's engine
// and binds its shard partition to the given replica head.
func (h *SensorHosts) newFragRunner(w *wireFragment, shard int, head stream.Operator) (*fragRunner, error) {
	eng, err := h.engineFor(w)
	if err != nil {
		return nil, err
	}
	r := &fragRunner{head: head, period: w.Period, next: w.StartAt}
	switch w.Kind {
	case fragSelect:
		pred, err := bindPred(w.Pred, sensor.ReadingSchema(w.Rel))
		if err != nil {
			return nil, err
		}
		q := &sensor.SelectQuery{Rel: w.Rel, Sensor: w.Sensor, Pred: pred, Period: w.Period}
		keep := shardKeep(w, shard)
		r.run = func(now vtime.Time, deliver sensor.Sink) {
			eng.RunSelectEpochPart(q, now, keep, deliver)
		}
	case fragAggregate:
		pred, err := bindPred(w.Pred, sensor.ReadingSchema(w.Rel))
		if err != nil {
			return nil, err
		}
		q := &sensor.AggregateQuery{Rel: w.Rel, Sensor: w.Sensor, Pred: pred,
			Func: w.AggFunc, GroupByRoom: w.GroupByRoom, Mode: w.Mode, Period: w.Period}
		keep := shardKeep(w, shard)
		r.run = func(now vtime.Time, deliver sensor.Sink) {
			eng.RunAggregateEpochPart(q, now, keep, deliver)
		}
	case fragJoin:
		lPred, err := bindPred(w.Pred, sensor.ReadingSchema(w.Rel))
		if err != nil {
			return nil, err
		}
		rPred, err := bindPred(w.RPred, sensor.ReadingSchema(w.RRel))
		if err != nil {
			return nil, err
		}
		q := &sensor.JoinQuery{
			Left:   sensor.JoinSide{Rel: w.Rel, Sensor: w.Sensor, Pred: lPred},
			Right:  sensor.JoinSide{Rel: w.RRel, Sensor: w.RSensor, Pred: rPred},
			PairBy: w.PairBy, Radius: w.Radius, Placement: w.Placement, Period: w.Period,
		}
		if q.On, err = bindPred(w.On, q.Schema()); err != nil {
			return nil, err
		}
		st, err := eng.PlanJoinPart(q, shardKeepPair(w, shard))
		if err != nil {
			return nil, err
		}
		r.joinState = st
		r.run = func(now vtime.Time, deliver sensor.Sink) {
			eng.RunJoinEpoch(st, now, deliver)
		}
	default:
		return nil, fmt.Errorf("plan: unknown fragment kind %d", w.Kind)
	}
	return r, nil
}

// buildFragRunners instantiates every wire fragment of a replica for one
// shard, resolving each fragment's scan head by wire name. The returned
// runners append to the replica's advancers (after the windows — epochs
// run after the windows advance, matching the serial scheduler's FIFO
// order at shared instants) and to its checkpointers (after the compile
// order, identically on every host of the same spec).
func (h *SensorHosts) buildFragRunners(frags []wireFragment, shard int, heads map[string]stream.Operator) ([]*fragRunner, error) {
	var runners []*fragRunner
	for i := range frags {
		w := &frags[i]
		head, ok := heads[w.Scan]
		if !ok {
			return nil, fmt.Errorf("plan: fragment names unknown scan %s", w.Scan)
		}
		r, err := h.newFragRunner(w, shard, head)
		if err != nil {
			return nil, err
		}
		runners = append(runners, r)
	}
	return runners, nil
}

// snapFragment is the gob mirror of one SensorFragment inside a durable
// coordinator snapshot. Like wireFragment, predicates travel as raw
// expressions and re-bind at decode; unlike wireFragment it captures the
// full CompileOptions.Fragments entry (not one shard's partition), so a
// restored coordinator can both recompile the deployment and restart
// central runners for fragments that cannot go remote anymore.
type snapFragment struct {
	Kind    fragKind
	Name    string
	Sources []string
	Period  time.Duration

	// fragSelect and the left side of fragJoin.
	Rel    string
	Sensor sensornet.SensorKind
	Pred   expr.Expr

	// fragJoin.
	RRel      string
	RSensor   sensornet.SensorKind
	RPred     expr.Expr
	On        expr.Expr
	PairBy    sensor.PairBy
	Radius    float64
	Placement sensor.Placement

	// fragAggregate.
	AggFunc     sensor.AggFunc
	GroupByRoom bool
	Mode        sensor.AggMode
}

// encodeSnapFragment lowers one fragment spec to its snapshot mirror.
func encodeSnapFragment(f *SensorFragment) (snapFragment, error) {
	s := snapFragment{Name: f.Name, Sources: f.Sources}
	switch {
	case f.Select != nil:
		q := f.Select
		s.Kind, s.Rel, s.Sensor, s.Pred, s.Period = fragSelect, q.Rel, q.Sensor, exprSource(q.Pred), q.Period
	case f.Join != nil:
		q := f.Join
		s.Kind, s.PairBy, s.Radius, s.Placement, s.Period = fragJoin, q.PairBy, q.Radius, q.Placement, q.Period
		s.Rel, s.Sensor, s.Pred = q.Left.Rel, q.Left.Sensor, exprSource(q.Left.Pred)
		s.RRel, s.RSensor, s.RPred = q.Right.Rel, q.Right.Sensor, exprSource(q.Right.Pred)
		s.On = exprSource(q.On)
	case f.Agg != nil:
		q := f.Agg
		s.Kind, s.Rel, s.Sensor, s.Pred, s.Period = fragAggregate, q.Rel, q.Sensor, exprSource(q.Pred), q.Period
		s.AggFunc, s.GroupByRoom, s.Mode = q.Func, q.GroupByRoom, q.Mode
	default:
		return snapFragment{}, fmt.Errorf("plan: fragment %s has no query", f.Name)
	}
	return s, nil
}

// decodeSnapFragment rebuilds a fragment spec from its snapshot mirror,
// re-binding predicates exactly as newFragRunner does worker-side.
func decodeSnapFragment(s snapFragment) (SensorFragment, error) {
	f := SensorFragment{Name: s.Name, Sources: s.Sources}
	switch s.Kind {
	case fragSelect:
		pred, err := bindPred(s.Pred, sensor.ReadingSchema(s.Rel))
		if err != nil {
			return SensorFragment{}, err
		}
		f.Select = &sensor.SelectQuery{Rel: s.Rel, Sensor: s.Sensor, Pred: pred, Period: s.Period}
	case fragAggregate:
		pred, err := bindPred(s.Pred, sensor.ReadingSchema(s.Rel))
		if err != nil {
			return SensorFragment{}, err
		}
		f.Agg = &sensor.AggregateQuery{Rel: s.Rel, Sensor: s.Sensor, Pred: pred,
			Func: s.AggFunc, GroupByRoom: s.GroupByRoom, Mode: s.Mode, Period: s.Period}
	case fragJoin:
		lPred, err := bindPred(s.Pred, sensor.ReadingSchema(s.Rel))
		if err != nil {
			return SensorFragment{}, err
		}
		rPred, err := bindPred(s.RPred, sensor.ReadingSchema(s.RRel))
		if err != nil {
			return SensorFragment{}, err
		}
		q := &sensor.JoinQuery{
			Left:   sensor.JoinSide{Rel: s.Rel, Sensor: s.Sensor, Pred: lPred},
			Right:  sensor.JoinSide{Rel: s.RRel, Sensor: s.RSensor, Pred: rPred},
			PairBy: s.PairBy, Radius: s.Radius, Placement: s.Placement, Period: s.Period,
		}
		if q.On, err = bindPred(s.On, q.Schema()); err != nil {
			return SensorFragment{}, err
		}
		f.Join = q
	default:
		return SensorFragment{}, fmt.Errorf("plan: unknown snapshot fragment kind %d", s.Kind)
	}
	return f, nil
}

// scanIndex is the plan-walk position of sc — the i of its scanName(i).
func scanIndex(scans []*Scan, sc *Scan) int {
	for i, s := range scans {
		if s == sc {
			return i
		}
	}
	return -1
}

// fragKeyEligible reports, per fragment kind, whether an output-schema
// column is node-determined — known at sampling time from the mote alone,
// before any reading — and therefore usable as a sampling partition key.
func fragKeyEligible(f *SensorFragment, idx int) bool {
	switch {
	case f.Select != nil:
		return idx <= 2 // (mote, room, desk) of (mote, room, desk, value)
	case f.Join != nil:
		return idx != 3 && idx != 7 // both sides' (mote, room, desk)
	case f.Agg != nil:
		return f.Agg.GroupByRoom && idx == 0 // (room) of (room, value)
	}
	return false
}

// fragmentKeyIdx resolves the shard-key columns of the scan a fragment
// feeds to output-schema indexes, reporting whether the fragment's
// sampling can be partitioned on them: every key must be a bare column the
// mote determines before sampling. Value-dependent or expression keys keep
// the fragment central.
func fragmentKeyIdx(f *SensorFragment, sc *Scan, keys []expr.Expr) ([]int, bool) {
	if len(keys) == 0 {
		return nil, false // nil = all columns (value included): not node-determined
	}
	idxs := make([]int, 0, len(keys))
	for _, k := range keys {
		col, ok := k.(expr.Col)
		if !ok {
			return nil, false
		}
		i, err := sc.Schema().ColIndex(col.Ref)
		if err != nil || !fragKeyEligible(f, i) {
			return nil, false
		}
		idxs = append(idxs, i)
	}
	return idxs, true
}

// alignedWithTicks reports whether epochs anchored at now+period land
// exactly on engine tick instants — the condition under which the worker's
// advance-then-epoch order at tick barriers reproduces the serial
// scheduler's FIFO order, keeping the distributed run multiset-identical.
func alignedWithTicks(period, tick time.Duration, now vtime.Time) bool {
	if tick <= 0 || period <= 0 {
		return false
	}
	return period%tick == 0 && int64(now)%int64(tick) == 0
}
