// Package smartcis is the showcase application of §2 and §4: it instruments
// the synthetic Moore building with desk and hallway motes, soft sensors on
// machines, PDUs with scraped web interfaces, active RFID badges for
// visitors, and the building databases — all integrated through the ASPEN
// runtime so that room monitoring, machine-state monitoring, workstation
// monitoring, occupant detection and visitor guidance run as StreamSQL
// queries.
package smartcis

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"aspen/internal/building"
	"aspen/internal/core"
	"aspen/internal/data"
	"aspen/internal/machines"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/stream"
	"aspen/internal/vtime"
	"aspen/internal/wrappers"
)

// Light levels produced by the physical model, in abstract lux.
const (
	LuxDark     = 2.0  // lights off
	LuxOccupied = 4.0  // a person in the chair shades the seat sensor
	LuxSeatOpen = 60.0 // lit room, empty chair
	LuxRoomOpen = 80.0 // area sensor in a lit room
)

// OccupiedLightThreshold discriminates a seated person at a seat sensor.
const OccupiedLightThreshold = 10.0

// OpenRoomLightThreshold discriminates a lit (open) room at an area sensor.
const OpenRoomLightThreshold = 50.0

// Options configures the deployment.
type Options struct {
	Building building.GenConfig
	Seed     int64
	// RadioLossRate injects lossy links.
	RadioLossRate float64
	// SampleEvery is the sensor epoch (default 1s).
	SampleEvery time.Duration
	// MachinesPerLab places this many workstations per lab (default: one
	// per desk).
	MachinesPerLab int
	// SkipPDUServers disables the real HTTP PDU endpoints (benchmarks).
	SkipPDUServers bool
	// Parallelism shards deployed stream plans across this many pipeline
	// replicas (default 1 = serial).
	Parallelism int
	// Nodes lists shard-worker addresses (cmd/shardworker) to spread the
	// replicas over — the paper's multi-PC deployment; "" entries keep a
	// replica in-process. Empty runs everything in one process.
	Nodes []string
	// Failover redeploys the shards of a dead or stalled worker from
	// their last checkpoint onto a surviving worker (or in-process),
	// keeping query results exact across the loss.
	Failover bool
	// SnapshotPath makes the coordinator durable: deployed queries are
	// checkpointed to this file by SaveSnapshot and rehydrated by
	// RestoreSnapshot after a coordinator restart. Empty keeps the
	// coordinator in-memory only.
	SnapshotPath string
}

// App is the running SmartCIS deployment.
type App struct {
	Building *building.Building
	Net      *sensornet.Network
	Beacons  *sensornet.BeaconField
	Fleet    *machines.Fleet
	RT       *core.Runtime
	Sched    *vtime.Scheduler

	pduServers []*machines.PDUServer
	pdus       []*machines.PDU

	mu        sync.Mutex
	roomLight map[string]bool         // lights on?
	occupied  map[string]map[int]bool // room -> desk -> seated
	roomTemp  map[string]float64
	visitors  map[string]*Visitor
	deskMote  map[string][2]int // room/desk key -> [tempMote, lightMote]

	sightIn  *stream.Input
	machIn   *stream.Input
	jobsIn   *stream.Input
	stoppers []interface{ Stop() }
}

// Visitor is an occupant carrying an active RFID badge.
type Visitor struct {
	Name     string
	BeaconID int
	X, Y     float64
}

// New builds the full deployment: building, mote field, machine fleet,
// PDUs, runtime, catalog sources, tables, and standard views.
func New(opts Options) (*App, error) {
	if opts.Building.Labs == 0 {
		opts.Building = building.DefaultConfig()
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = time.Second
	}
	b := building.Generate(opts.Building)

	netCfg := sensornet.DefaultConfig()
	netCfg.Seed = opts.Seed + 1
	netCfg.LossRate = opts.RadioLossRate
	nw := sensornet.New(netCfg)

	app := &App{
		Building:  b,
		Net:       nw,
		Fleet:     machines.NewFleet(machines.Config{Seed: opts.Seed + 2, JobArrivalProb: 0.25, JobDepartProb: 0.15}),
		Sched:     vtime.NewScheduler(),
		roomLight: map[string]bool{},
		occupied:  map[string]map[int]bool{},
		roomTemp:  map[string]float64{},
		visitors:  map[string]*Visitor{},
		deskMote:  map[string][2]int{},
	}

	if err := app.deployMotes(); err != nil {
		return nil, err
	}
	app.deployMachines(opts.MachinesPerLab)
	if !opts.SkipPDUServers {
		if err := app.deployPDUs(); err != nil {
			return nil, err
		}
	}

	app.RT = core.New(core.Config{
		Scheduler:    app.Sched,
		SensorEngine: sensor.NewEngine(nw, app),
		TickPeriod:   opts.SampleEvery,
		// Bound recursive route enumeration by the hallway depth; deeper
		// paths only revisit corridors.
		RecursionDepth: len(b.Points()) / 2,
		Parallelism:    opts.Parallelism,
		Nodes:          opts.Nodes,
		Failover:       opts.Failover,
		SnapshotPath:   opts.SnapshotPath,
	})
	if err := app.registerSources(opts); err != nil {
		return nil, err
	}
	return app, nil
}

// deployMotes places the sensor field: base station at the lobby door,
// RFID readers at every hallway point, an area mote per room, and a
// temperature + light mote pair per desk.
func (a *App) deployMotes() error {
	id := 0
	next := func() int { id++; return id - 1 }

	lobby, _ := a.Building.Point("lobby")
	base := next()
	// The base station doubles as the lobby's RFID reader, so arriving
	// visitors are detected immediately.
	a.Net.MustAddNode(sensornet.Node{ID: base, X: lobby.X, Y: lobby.Y, Room: "lobby",
		Sensors: []sensornet.SensorKind{sensornet.SensorRFID}})
	if err := a.Net.SetBase(base); err != nil {
		return err
	}

	for _, p := range a.Building.Points() {
		if !strings.HasPrefix(p.Name, "hall") {
			continue
		}
		a.Net.MustAddNode(sensornet.Node{
			ID: next(), X: p.X, Y: p.Y, Room: p.Name,
			Sensors: []sensornet.SensorKind{sensornet.SensorRFID},
		})
	}
	for _, r := range a.Building.Rooms {
		if r.Kind == building.Lobby {
			continue
		}
		cx, cy := r.Center()
		a.Net.MustAddNode(sensornet.Node{
			ID: next(), X: cx, Y: cy, Room: r.Name,
			Sensors: []sensornet.SensorKind{sensornet.SensorLight, sensornet.SensorTemperature},
		})
		for _, d := range r.Desks {
			tm := next()
			a.Net.MustAddNode(sensornet.Node{
				ID: tm, X: d.X, Y: d.Y, Room: r.Name, Desk: d.Num,
				Sensors: []sensornet.SensorKind{sensornet.SensorTemperature},
			})
			lm := next()
			a.Net.MustAddNode(sensornet.Node{
				ID: lm, X: d.X + 2, Y: d.Y + 2, Room: r.Name, Desk: d.Num,
				Sensors: []sensornet.SensorKind{sensornet.SensorLight},
			})
			a.deskMote[deskKey(r.Name, d.Num)] = [2]int{tm, lm}
		}
		a.roomLight[r.Name] = true // building opens with every room lit
		a.roomTemp[r.Name] = 21
		a.occupied[r.Name] = map[int]bool{}
	}
	a.Net.BuildTree()
	a.Beacons = sensornet.NewBeaconField(a.Net, 60)

	// Device catalog: positions of every mote (motes have no built-in
	// positioning; the database supplies coordinates, §2).
	return nil
}

func deskKey(room string, desk int) string { return fmt.Sprintf("%s#%d", room, desk) }

// deployMachines fills labs with workstations and the machine room with
// servers.
func (a *App) deployMachines(perLab int) {
	softwareSets := [][]string{
		{"%fedora%", "fedora linux, gcc, emacs"},
		{"%windows%word%", "windows, word, excel"},
		{"%fedora%matlab%", "fedora linux, matlab"},
		{"%ubuntu%", "ubuntu linux, python"},
	}
	i := 0
	for _, lab := range a.Building.Labs() {
		n := perLab
		if n <= 0 || n > len(lab.Desks) {
			n = len(lab.Desks)
		}
		for d := 0; d < n; d++ {
			sw := softwareSets[i%len(softwareSets)]
			a.Fleet.MustAdd(machines.Machine{
				Name: fmt.Sprintf("ws-%s-%d", lab.Name, d+1),
				Kind: machines.Workstation,
				Room: lab.Name, Desk: d + 1,
				Software: []string{sw[0]},
			})
			i++
		}
	}
	for s := 1; s <= 4; s++ {
		a.Fleet.MustAdd(machines.Machine{
			Name: fmt.Sprintf("srv-%d", s),
			Kind: machines.Server,
			Room: "MR1", Desk: s,
			Software: []string{"%debian%apache%"},
		})
	}
}

// deployPDUs plugs every machine into per-room PDUs with live HTTP
// interfaces.
func (a *App) deployPDUs() error {
	byRoom := map[string][]machines.Machine{}
	for _, m := range a.Fleet.Machines() {
		byRoom[m.Room] = append(byRoom[m.Room], m)
	}
	rooms := make([]string, 0, len(byRoom))
	for r := range byRoom {
		rooms = append(rooms, r)
	}
	sort.Strings(rooms)
	for _, room := range rooms {
		pdu := machines.NewPDU("pdu-"+room, a.Fleet)
		for i, m := range byRoom[room] {
			if err := pdu.Plug(i+1, m.Name); err != nil {
				return err
			}
		}
		srv, err := pdu.Serve("127.0.0.1:0")
		if err != nil {
			return err
		}
		a.pdus = append(a.pdus, pdu)
		a.pduServers = append(a.pduServers, srv)
	}
	return nil
}

// registerSources declares every source in the catalog and the engine and
// creates the standard views.
func (a *App) registerSources(opts Options) error {
	rate := 1.0 / opts.SampleEvery.Seconds()
	nodes := float64(len(a.Net.Nodes()))
	if err := a.RT.RegisterSensorStream("Temperature", sensornet.SensorTemperature, nodes*rate/2); err != nil {
		return err
	}
	if err := a.RT.RegisterSensorStream("Light", sensornet.SensorLight, nodes*rate/2); err != nil {
		return err
	}

	sight := data.NewSchema("Sightings",
		data.Col("person", data.TString), data.Col("point", data.TString),
		data.Col("x", data.TFloat), data.Col("y", data.TFloat))
	sight.IsStream = true
	sin, err := a.RT.RegisterStream("Sightings", sight, 2)
	if err != nil {
		return err
	}
	a.sightIn = sin

	min, err := a.RT.RegisterStream("MachineState", wrappers.MachineStateSchema("MachineState"),
		float64(len(a.Fleet.Machines()))*rate)
	if err != nil {
		return err
	}
	a.machIn = min

	jobs := data.NewSchema("Jobs",
		data.Col("machine", data.TString), data.Col("room", data.TString),
		data.Col("usr", data.TString), data.Col("job", data.TString),
		data.Col("cpu", data.TFloat), data.Col("mem", data.TFloat))
	jobs.IsStream = true
	jin, err := a.RT.RegisterStream("Jobs", jobs, 20)
	if err != nil {
		return err
	}
	a.jobsIn = jin

	if _, err := a.RT.RegisterStream("Power", wrappers.PowerSchema("Power"),
		float64(len(a.Fleet.Machines()))/10); err != nil {
		return err
	}

	// Tables: machine placement/software and the routing points.
	machT := data.NewSchema("Machines",
		data.Col("name", data.TString), data.Col("room", data.TString),
		data.Col("desk", data.TInt), data.Col("software", data.TString))
	machRel := data.NewRelation(machT)
	for _, m := range a.Fleet.Machines() {
		machRel.MustInsert(data.Str(m.Name), data.Str(m.Room),
			data.Int(int64(m.Desk)), data.Str(m.Software[0]))
	}
	if err := a.RT.RegisterTable("Machines", machRel); err != nil {
		return err
	}

	routeT := data.NewSchema("RoutingPoints",
		data.Col("src", data.TString), data.Col("dst", data.TString), data.Col("dist", data.TFloat))
	routeRel := data.NewRelation(routeT)
	for _, e := range a.Building.RoutingEdges() {
		routeRel.MustInsert(data.Str(e.From), data.Str(e.To), data.Float(e.Dist))
	}
	if err := a.RT.RegisterTable("RoutingPoints", routeRel); err != nil {
		return err
	}

	// Standard views: the paper's AreaSensors / SeatSensors over the raw
	// streams ('open' and 'free' become light-level thresholds).
	// The 2-second windows keep the views live: a reading that is not
	// refreshed on the next sensing epoch expires, so closing a lab or
	// sitting down retracts matching rows.
	if _, err := a.RT.Run(fmt.Sprintf(`CREATE VIEW AreaSensors AS (
		SELECT l.room AS room, l.value AS light FROM Light l [RANGE 2 SECONDS]
		WHERE l.desk = 0 AND l.value > %v)`,
		OpenRoomLightThreshold)); err != nil {
		return err
	}
	if _, err := a.RT.Run(fmt.Sprintf(`CREATE VIEW SeatSensors AS (
		SELECT s.room AS room, s.desk AS desk, s.value AS light FROM Light s [RANGE 2 SECONDS]
		WHERE s.desk > 0 AND s.value > %v)`, OccupiedLightThreshold)); err != nil {
		return err
	}
	return nil
}

// Reading implements sensor.Env: the physical model.
func (a *App) Reading(n sensornet.Node, kind sensornet.SensorKind, _ vtime.Time) (float64, bool) {
	if !n.HasSensor(kind) {
		return 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch kind {
	case sensornet.SensorLight:
		lit := a.roomLight[n.Room]
		if n.Desk == 0 {
			if lit {
				return LuxRoomOpen, true
			}
			return LuxDark, true
		}
		if a.occupied[n.Room][n.Desk] {
			return LuxOccupied, true
		}
		if lit {
			return LuxSeatOpen, true
		}
		return LuxDark, true

	case sensornet.SensorTemperature:
		base := a.roomTemp[n.Room]
		if n.Desk == 0 {
			return base, true
		}
		// machine heat follows CPU load at that desk
		if m, ok := a.machineAtLocked(n.Room, n.Desk); ok {
			return base + 1 + 30*m.CPU, true
		}
		return base, true
	}
	return 0, false
}

func (a *App) machineAtLocked(room string, desk int) (machines.Machine, bool) {
	for _, m := range a.Fleet.Machines() {
		if m.Room == room && m.Desk == desk {
			return m, true
		}
	}
	return machines.Machine{}, false
}

// Rescale live-migrates every deployed sharded query onto a new worker
// topology: workers that joined take shards, leaving workers hand theirs
// back, and failover-stranded shards heal back out. Future deployments
// use the new topology too.
func (a *App) Rescale(nodes []string) error { return a.RT.Rescale(nodes) }

// SaveSnapshot checkpoints every standing query to Options.SnapshotPath
// at one consistency point (see core.Runtime.SaveSnapshot). The returned
// names are queries the snapshot could not capture — warn the operator.
func (a *App) SaveSnapshot() ([]string, error) { return a.RT.SaveSnapshot() }

// RestoreSnapshot rehydrates the standing queries recorded in
// Options.SnapshotPath onto this (fresh) deployment's runtime, shared
// window state and sensor fragment deployments included. The returned
// names are queries the snapshot recorded as skipped at save time; they
// must be re-run.
func (a *App) RestoreSnapshot() ([]*core.Query, []string, error) { return a.RT.RestoreSnapshot() }

// Close shuts down PDU servers and periodic work.
func (a *App) Close() {
	for _, s := range a.stoppers {
		s.Stop()
	}
	a.stoppers = nil
	for _, s := range a.pduServers {
		s.Close()
	}
	a.pduServers = nil
	a.RT.Close()
}
