package smartcis

import (
	"strings"
	"testing"

	"aspen/internal/building"
	"aspen/internal/federation"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

// smallApp builds a compact deployment for fast tests.
func smallApp(t *testing.T) *App {
	t.Helper()
	app, err := New(Options{
		Building:       building.GenConfig{Labs: 2, DesksPerLab: 3, HallSpacing: 100, Offices: 1},
		Seed:           42,
		SkipPDUServers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	return app
}

func TestDeploymentShape(t *testing.T) {
	app := smallApp(t)
	nodes := app.Net.Nodes()
	// base + 3 hall RFID (hall1..hall3) + area motes (2 labs + 1 office +
	// 1 machine room) + 2 motes per desk (2*3 lab desks + 1 office desk +
	// 4 machine-room desks)
	wantDesks := 2*3 + 1 + 4
	want := 1 + 3 + 4 + 2*wantDesks
	if len(nodes) != want {
		t.Fatalf("nodes = %d, want %d", len(nodes), want)
	}
	for _, n := range nodes {
		if n.Hops < 0 {
			t.Fatalf("mote %d unreachable from base", n.ID)
		}
	}
	if len(app.Fleet.Machines()) != 2*3+4 {
		t.Fatalf("machines = %d", len(app.Fleet.Machines()))
	}
	// catalog sources registered
	for _, s := range []string{"Temperature", "Light", "Sightings", "MachineState", "Jobs", "Power", "Machines", "RoutingPoints"} {
		if _, ok := app.RT.Cat.Source(s); !ok {
			t.Fatalf("source %s missing", s)
		}
	}
	for _, v := range []string{"AreaSensors", "SeatSensors"} {
		if _, ok := app.RT.Cat.View(v); !ok {
			t.Fatalf("view %s missing", v)
		}
	}
}

func TestPhysicalModelLightSemantics(t *testing.T) {
	app := smallApp(t)
	key := app.deskMote[deskKey("L101", 1)]
	lightMote, _ := app.Net.Node(key[1])

	// lit room, empty chair
	v, ok := app.Reading(lightMote, sensornet.SensorLight, 0)
	if !ok || v != LuxSeatOpen {
		t.Fatalf("empty seat lux = %v", v)
	}
	// someone sits down: light drops below the occupancy threshold
	app.SetDeskOccupied("L101", 1, true)
	v, _ = app.Reading(lightMote, sensornet.SensorLight, 0)
	if v >= OccupiedLightThreshold {
		t.Fatalf("occupied seat lux = %v", v)
	}
	if !app.DeskOccupied("L101", 1) {
		t.Fatal("occupancy state lost")
	}
	// lights off
	app.SetDeskOccupied("L101", 1, false)
	app.SetRoomLights("L101", false)
	v, _ = app.Reading(lightMote, sensornet.SensorLight, 0)
	if v != LuxDark {
		t.Fatalf("dark room lux = %v", v)
	}
	if app.RoomLit("L101") {
		t.Fatal("room light state lost")
	}
}

func TestPhysicalModelTemperature(t *testing.T) {
	app := smallApp(t)
	key := app.deskMote[deskKey("L101", 1)]
	tempMote, _ := app.Net.Node(key[0])
	v, ok := app.Reading(tempMote, sensornet.SensorTemperature, 0)
	if !ok || v < 21 || v > 23 {
		t.Fatalf("idle machine temp = %v", v)
	}
	// load the machine at that desk: temperature rises
	app.Fleet.StartJob("ws-L101-1", "u", "burn", 1.0, 100)
	v2, _ := app.Reading(tempMote, sensornet.SensorTemperature, 0)
	if v2 <= v {
		t.Fatalf("loaded temp %v should exceed idle %v", v2, v)
	}
	// room temperature override
	app.SetRoomTemp("L101", 40)
	v3, _ := app.Reading(tempMote, sensornet.SensorTemperature, 0)
	if v3 < 40 {
		t.Fatalf("room temp override = %v", v3)
	}
	// RFID motes have no temperature
	if _, ok := app.Reading(mustNode(t, app, 1), sensornet.SensorTemperature, 0); ok {
		t.Fatal("rfid mote produced temperature")
	}
}

func mustNode(t *testing.T, app *App, id int) sensornet.Node {
	t.Helper()
	n, ok := app.Net.Node(id)
	if !ok {
		t.Fatalf("node %d missing", id)
	}
	return n
}

func TestOccupancyQueryEndToEnd(t *testing.T) {
	app := smallApp(t)
	q, err := app.OccupancyQuery()
	if err != nil {
		t.Fatal(err)
	}
	// the federated optimizer should have chosen the in-network join
	if q.Partition.Chosen.Fragments[0].Kind != federation.FragJoin {
		t.Fatalf("partition = %s", q.Partition.Chosen.Desc)
	}
	app.SetDeskOccupied("L101", 2, true)
	app.Sched.RunUntil(3 * vtime.Second)
	rows, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("occupied desk not detected")
	}
	for _, r := range rows {
		if r.Vals[0].AsString() != "L101" || r.Vals[1].AsInt() != 2 {
			t.Fatalf("row = %v", r)
		}
	}
}

func TestAlarmQuery(t *testing.T) {
	app := smallApp(t)
	q, err := app.AlarmQuery(35)
	if err != nil {
		t.Fatal(err)
	}
	app.Sched.RunUntil(2 * vtime.Second)
	if rows, _ := q.Snapshot(); len(rows) != 0 {
		t.Fatalf("false alarms: %v", rows)
	}
	app.SetRoomTemp("L102", 50) // overheating lab
	app.Sched.RunUntil(4 * vtime.Second)
	rows, _ := q.Snapshot()
	if len(rows) == 0 {
		t.Fatal("alarm never fired")
	}
	for _, r := range rows {
		if r.Vals[0].AsString() != "L102" {
			t.Fatalf("alarm row = %v", r)
		}
	}
	// alarms routed to the display too
	if app.RT.Stream.MustDisplay("alarms", nil).Len() == 0 {
		t.Fatal("alarms display empty")
	}
}

func TestVisitorDetectionAndGuidance(t *testing.T) {
	app := smallApp(t)
	app.VisitorArrives("alice")
	at, ok := app.LocateVisitor("alice")
	if !ok {
		t.Fatal("alice not located at arrival")
	}
	if at != "lobby" && !strings.HasPrefix(at, "hall") {
		t.Fatalf("located at %q", at)
	}
	if err := app.MoveVisitorTo("alice", "hall2"); err != nil {
		t.Fatal(err)
	}
	at, ok = app.LocateVisitor("alice")
	if !ok || at != "hall2" {
		t.Fatalf("after move located at %q (%t)", at, ok)
	}

	g, err := app.Guide("alice", "fedora linux")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.Machine.Name, "ws-") {
		t.Fatalf("machine = %+v", g.Machine)
	}
	if g.Route.Points[0] != "hall2" {
		t.Fatalf("route should start at the visitor: %v", g.Route)
	}
	if g.Route.Points[len(g.Route.Points)-1] != g.Machine.Room {
		t.Fatalf("route should end at the machine's room: %v", g.Route)
	}

	// errors
	if _, err := app.Guide("nobody", "fedora"); err == nil {
		t.Fatal("guided a ghost")
	}
	if _, err := app.Guide("alice", "vax/vms"); err == nil {
		t.Fatal("guided to nonexistent capability")
	}
	if err := app.MoveVisitorTo("alice", "nowhere"); err == nil {
		t.Fatal("moved to nonexistent point")
	}
	if err := app.MoveVisitor("nobody", 0, 0); err == nil {
		t.Fatal("moved a ghost")
	}
}

func TestFreeMachinesRespectsState(t *testing.T) {
	app := smallApp(t)
	base := len(app.FreeMachines("fedora linux"))
	if base == 0 {
		t.Fatal("no fedora machines free initially")
	}
	// occupy one seat
	f := app.FreeMachines("fedora linux")[0]
	app.SetDeskOccupied(f.Room, f.Desk, true)
	if len(app.FreeMachines("fedora linux")) != base-1 {
		t.Fatal("occupied seat still offered")
	}
	// close the room: all its machines drop out
	app.SetRoomLights(f.Room, false)
	for _, m := range app.FreeMachines("fedora linux") {
		if m.Room == f.Room {
			t.Fatal("closed room still offered")
		}
	}
	// power a machine off
	app.SetRoomLights(f.Room, true)
	app.SetDeskOccupied(f.Room, f.Desk, false)
	app.Fleet.SetPower(f.Name, false)
	for _, m := range app.FreeMachines("fedora linux") {
		if m.Name == f.Name {
			t.Fatal("powered-off machine offered")
		}
	}
}

func TestResourcesByUserAndJobs(t *testing.T) {
	app := smallApp(t)
	app.Fleet.StartJob("ws-L101-1", "marie", "sim", 0.4, 256)
	app.Fleet.StartJob("ws-L102-1", "marie", "sim2", 0.3, 128)
	q, err := app.ResourcesByUser()
	if err != nil {
		t.Fatal(err)
	}
	app.sampleJobs() // one deterministic sample round
	rows, _ := q.Snapshot()
	found := false
	for _, r := range rows {
		if r.Vals[0].AsString() == "marie" {
			found = true
			if r.Vals[1].AsFloat() < 0.69 { // 0.4 + 0.3 across machines
				t.Fatalf("marie cpu = %v", r.Vals[1])
			}
		}
	}
	if !found {
		t.Fatalf("marie missing: %v", rows)
	}
}

func TestRouteViewAgreesWithDijkstra(t *testing.T) {
	app := smallApp(t)
	q, err := app.RouteView()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("route view empty")
	}
	// min dist per (src=lobby, dst) must match Dijkstra
	best := map[string]float64{}
	for _, r := range rows {
		if r.Vals[0].AsString() != "lobby" {
			continue
		}
		dst := r.Vals[1].AsString()
		d := r.Vals[2].AsFloat()
		if cur, ok := best[dst]; !ok || d < cur {
			best[dst] = d
		}
	}
	dij := app.Building.Graph().Distances("lobby")
	for dst, d := range best {
		if want, ok := dij[dst]; ok && want != d {
			t.Fatalf("lobby->%s: view %v, dijkstra %v", dst, d, want)
		}
	}
	if _, ok := best["L101"]; !ok {
		t.Fatal("no route to L101 in view")
	}
}
