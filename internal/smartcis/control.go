package smartcis

import (
	"fmt"
	"sort"
	"time"

	"aspen/internal/core"
	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/routing"
	"aspen/internal/sensornet"
	"aspen/internal/wrappers"
)

// This file is SmartCIS's control logic tier (§2): the state transitions
// (lights, seats, visitor badges), the periodic samplers that feed the
// wrapper streams, and the high-level operations the GUI invokes.

// Start begins periodic work: machine soft sensors, per-job sampling, PDU
// scraping, RFID localization, and the synthetic machine workload.
func (a *App) Start() {
	mw := &wrappers.MachineWrapper{
		Fleet: a.Fleet, Input: a.machIn, Period: time.Second, StepWorkload: true,
	}
	a.stoppers = append(a.stoppers, mw.Start(a.Sched))

	stopJobs := a.Sched.Every(time.Second, func() { a.sampleJobs() })
	a.stoppers = append(a.stoppers, stopFunc(stopJobs))

	stopSight := a.Sched.Every(time.Second, func() { a.sampleSightings() })
	a.stoppers = append(a.stoppers, stopFunc(stopSight))

	for i, srv := range a.pduServers {
		in, ok := a.RT.Stream.Input("Power")
		if !ok {
			continue
		}
		w := wrappers.NewPDUWrapper(a.pdus[i].Name, srv.URL(), in)
		a.stoppers = append(a.stoppers, w.Start(a.Sched))
	}
}

type stopFunc func()

func (f stopFunc) Stop() { f() }

// SampleJobsNow emits one job-sample round immediately; experiment
// drivers use it for deterministic sampling outside the periodic wrapper.
func (a *App) SampleJobsNow() { a.sampleJobs() }

// sampleJobs emits one tuple per running job.
func (a *App) sampleJobs() {
	now := a.Sched.Now()
	for _, m := range a.Fleet.Machines() {
		for _, j := range m.Jobs {
			a.jobsIn.Push(data.NewTuple(now,
				data.Str(m.Name), data.Str(m.Room), data.Str(j.User),
				data.Str(j.Name), data.Float(j.CPUShare), data.Float(j.MemMB)))
		}
	}
}

// sampleSightings localizes every badge and emits sighting tuples.
func (a *App) sampleSightings() {
	now := a.Sched.Now()
	located := a.Beacons.Locate()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, v := range a.visitors {
		det, ok := located[v.BeaconID]
		if !ok {
			continue
		}
		node, _ := a.Net.Node(det.NodeID)
		pt := a.Building.NearestPoint(node.X, node.Y)
		a.sightIn.Push(data.NewTuple(now,
			data.Str(v.Name), data.Str(pt.Name), data.Float(node.X), data.Float(node.Y)))
	}
}

// SetRoomLights switches a room's lights (area sensors see it next epoch).
func (a *App) SetRoomLights(room string, on bool) {
	a.mu.Lock()
	a.roomLight[room] = on
	a.mu.Unlock()
}

// RoomLit reports a room's light state.
func (a *App) RoomLit(room string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.roomLight[room]
}

// SetDeskOccupied seats (or unseats) a person at a desk.
func (a *App) SetDeskOccupied(room string, desk int, occ bool) {
	a.mu.Lock()
	if a.occupied[room] == nil {
		a.occupied[room] = map[int]bool{}
	}
	a.occupied[room][desk] = occ
	a.mu.Unlock()
}

// DeskOccupied reports whether a desk is occupied.
func (a *App) DeskOccupied(room string, desk int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.occupied[room][desk]
}

// SetRoomTemp adjusts a room's ambient temperature (failure scenarios).
func (a *App) SetRoomTemp(room string, deg float64) {
	a.mu.Lock()
	a.roomTemp[room] = deg
	a.mu.Unlock()
}

// VisitorArrives registers a badge-carrying visitor at the lobby.
func (a *App) VisitorArrives(name string) *Visitor {
	a.mu.Lock()
	defer a.mu.Unlock()
	lobby, _ := a.Building.Point("lobby")
	v := &Visitor{Name: name, BeaconID: 1000 + len(a.visitors), X: lobby.X, Y: lobby.Y}
	a.visitors[name] = v
	a.Beacons.Place(sensornet.Beacon{ID: v.BeaconID, Owner: v.Name, X: v.X, Y: v.Y})
	return v
}

// MoveVisitor repositions a visitor's badge.
func (a *App) MoveVisitor(name string, x, y float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.visitors[name]
	if !ok {
		return fmt.Errorf("smartcis: unknown visitor %q", name)
	}
	v.X, v.Y = x, y
	a.Beacons.Move(v.BeaconID, x, y)
	return nil
}

// MoveVisitorTo walks the visitor to a named routing point.
func (a *App) MoveVisitorTo(name, point string) error {
	p, ok := a.Building.Point(point)
	if !ok {
		return fmt.Errorf("smartcis: unknown point %q", point)
	}
	return a.MoveVisitor(name, p.X, p.Y)
}

// LocateVisitor returns the building's position estimate (strongest RFID
// reader snapped to the nearest routing point).
func (a *App) LocateVisitor(name string) (string, bool) {
	a.mu.Lock()
	v, ok := a.visitors[name]
	a.mu.Unlock()
	if !ok {
		return "", false
	}
	det, ok := a.Beacons.Locate()[v.BeaconID]
	if !ok {
		return "", false
	}
	node, _ := a.Net.Node(det.NodeID)
	return a.Building.NearestPoint(node.X, node.Y).Name, true
}

// FreeMachine describes an available machine offered to a visitor.
type FreeMachine struct {
	Name string
	Room string
	Desk int
}

// FreeMachines lists machines matching the capability pattern whose room is
// lit and whose seat is unoccupied — the ground truth the continuous
// queries should agree with.
func (a *App) FreeMachines(need string) []FreeMachine {
	var out []FreeMachine
	for _, m := range a.Fleet.Machines() {
		if m.Off || !matches(need, m.Software[0]) {
			continue
		}
		if !a.RoomLit(m.Room) || a.DeskOccupied(m.Room, m.Desk) {
			continue
		}
		out = append(out, FreeMachine{Name: m.Name, Room: m.Room, Desk: m.Desk})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Guidance is a route to a recommended machine.
type Guidance struct {
	Machine FreeMachine
	Route   routing.Route
}

// Guide locates the visitor and routes them to the nearest free machine
// with the needed capability (§4's demo flow).
func (a *App) Guide(visitor, need string) (*Guidance, error) {
	at, ok := a.LocateVisitor(visitor)
	if !ok {
		return nil, fmt.Errorf("smartcis: cannot locate %q (no reader hears the badge)", visitor)
	}
	frees := a.FreeMachines(need)
	if len(frees) == 0 {
		return nil, fmt.Errorf("smartcis: no free machine matches %q", need)
	}
	rooms := make([]string, len(frees))
	byRoom := map[string]FreeMachine{}
	for i, f := range frees {
		rooms[i] = f.Room
		if _, dup := byRoom[f.Room]; !dup {
			byRoom[f.Room] = f
		}
	}
	dest, route, ok := a.Building.Graph().Nearest(at, rooms)
	if !ok {
		return nil, fmt.Errorf("smartcis: no route from %s to any of %v", at, rooms)
	}
	return &Guidance{Machine: byRoom[dest], Route: route}, nil
}

func matches(need, pattern string) bool {
	// need is matched against the machine's capability pattern, the
	// paper's "p.needed like m.software".
	return expr.Like(need, pattern)
}

// --- standard continuous queries ----------------------------------------

// OccupancyQuery deploys the paper's workstation-monitoring query: machine
// temperatures for desks whose chair light is dark, joined in-network.
func (a *App) OccupancyQuery() (*core.Query, error) {
	return a.RT.Run(fmt.Sprintf(`SELECT t.room, t.desk, t.value
		FROM Temperature t [RANGE 2 SECONDS], Light l
		WHERE t.room = l.room AND t.desk = l.desk AND t.desk > 0 AND l.value < %v`,
		OccupiedLightThreshold))
}

// AlarmQuery deploys temperature alarms: any machine mote above the
// threshold, routed to the alarms display.
func (a *App) AlarmQuery(threshold float64) (*core.Query, error) {
	return a.RT.Run(fmt.Sprintf(`SELECT t.room, t.desk, t.value FROM Temperature t [RANGE 2 SECONDS]
		WHERE t.value > %v OUTPUT TO alarms`, threshold))
}

// EnergyByRoom aggregates PDU power per room: each scraped power reading
// (10 s period) joins the machine's latest soft-sensor sample (1 s period)
// to learn its room.
func (a *App) EnergyByRoom() (*core.Query, error) {
	return a.RT.Run(`SELECT ms.room, sum(p.watts) AS watts
		FROM Power p [RANGE 10 SECONDS], MachineState ms [RANGE 1 SECONDS]
		WHERE p.machine = ms.machine GROUP BY ms.room`)
}

// ResourcesByUser totals CPU share per user across all machines (§2: "total
// resources used ... by any user or application, even across machines").
func (a *App) ResourcesByUser() (*core.Query, error) {
	return a.RT.Run(`SELECT j.usr, sum(j.cpu) AS cpu, sum(j.mem) AS mem
		FROM Jobs j [RANGE 1 SECONDS] GROUP BY j.usr`)
}

// RouteView maintains all-pairs bounded routes declaratively through the
// recursive view machinery, the stream-engine path of §3.
func (a *App) RouteView() (*core.Query, error) {
	return a.RT.Run(`WITH RECURSIVE paths(src, dst, dist) AS (
		SELECT r.src, r.dst, r.dist FROM RoutingPoints r
		UNION ALL
		SELECT p.src, r.dst, p.dist + r.dist FROM paths p, RoutingPoints r
		WHERE p.dst = r.src AND p.src <> r.dst
	) SELECT src, dst, dist FROM paths`)
}
