package federation

import (
	"strings"
	"testing"

	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/plan"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/vtime"
)

// fixture builds a desk grid (temp+light on every desk), a catalog with
// the raw sensor sources and a Machines table, and a federator.
func fixture(t *testing.T, rows, cols int) (*Federator, *sensor.Engine, *sensornet.Network) {
	t.Helper()
	nw := sensornet.Grid(sensornet.DefaultConfig(), rows, cols, 100, cols,
		sensornet.SensorTemperature, sensornet.SensorLight)
	env := sensor.EnvFunc(func(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
		switch kind {
		case sensornet.SensorTemperature:
			return 20 + float64(n.ID), true
		case sensornet.SensorLight:
			if n.ID == 3 {
				return 5, true // one occupied desk
			}
			return 80, true
		}
		return 0, false
	})
	eng := sensor.NewEngine(nw, env)

	cat := catalog.New()
	stats := cat.Stats()
	stats.NetworkDiameter = nw.Diameter()
	cat.SetStats(stats)
	for _, name := range []string{"Temperature", "Light"} {
		s := sensor.ReadingSchema(name)
		cat.MustAddSource(&catalog.Source{Name: name, Kind: catalog.KindSensorStream,
			Schema: s, Rate: float64(rows * cols)})
	}
	mach := data.NewSchema("Machines",
		data.Col("room", data.TString), data.Col("desk", data.TInt), data.Col("software", data.TString))
	machRel := data.NewRelation(mach)
	machRel.MustInsert(data.Str("L1"), data.Int(1), data.Str("%fedora%"))
	cat.MustAddSource(&catalog.Source{Name: "Machines", Kind: catalog.KindTable,
		Schema: mach, Table: machRel})

	fed := &Federator{
		Cat: cat,
		Sensors: &Binding{
			Kinds: map[string]sensornet.SensorKind{
				"temperature": sensornet.SensorTemperature,
				"light":       sensornet.SensorLight,
			},
			Engine: eng,
		},
	}
	return fed, eng, nw
}

const occupancyQuery = `SELECT t.room, t.desk, t.value FROM Temperature t, Light l
WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10`

func TestOptimizeEnumeratesPartitions(t *testing.T) {
	fed, _, _ := fixture(t, 4, 4)
	stmt, err := sql.ParseSelect(occupancyQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// subsets: {}, {t}, {l}, {t,l} — all feasible here
	if len(res.Alternatives) != 4 {
		t.Fatalf("alternatives = %d: %v", len(res.Alternatives), res.Rejected)
	}
	if res.Chosen == nil {
		t.Fatal("no chosen plan")
	}
	// alternatives sorted by unified cost
	for i := 1; i < len(res.Alternatives); i++ {
		if res.Alternatives[i-1].Unified > res.Alternatives[i].Unified {
			t.Fatal("alternatives not sorted")
		}
	}
	// the winner should be the in-network join: the light predicate is
	// pushed next to the chair, so almost nothing crosses the radio
	var joinAlt, allStream *Alternative
	for _, a := range res.Alternatives {
		if len(a.Fragments) == 1 && a.Fragments[0].Kind == FragJoin {
			joinAlt = a
		}
		if strings.HasPrefix(a.Desc, "all-stream") {
			allStream = a
		}
	}
	if joinAlt == nil || allStream == nil {
		t.Fatalf("missing expected alternatives: %+v", res.Alternatives)
	}
	if joinAlt.Unified >= allStream.Unified {
		t.Fatalf("in-network join (%.4f) should beat all-stream (%.4f)",
			joinAlt.Unified, allStream.Unified)
	}
	if res.Chosen != joinAlt {
		t.Fatalf("chosen = %s, want in-network join", res.Chosen.Desc)
	}
	if joinAlt.Fragments[0].Join.PairBy != sensor.PairSameDesk {
		t.Fatalf("pairing = %v", joinAlt.Fragments[0].Join.PairBy)
	}
}

func TestOptimizeAllStreamIncludesAcquisitionCost(t *testing.T) {
	fed, _, _ := fixture(t, 4, 4)
	stmt, _ := sql.ParseSelect(occupancyQuery)
	res, err := fed.Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Alternatives {
		if strings.HasPrefix(a.Desc, "all-stream") {
			if a.MsgsPerSec <= 0 {
				t.Fatal("all-stream alternative must still pay radio acquisition")
			}
			if len(a.Fragments) != 2 {
				t.Fatalf("all-stream fragments = %d", len(a.Fragments))
			}
			for _, fr := range a.Fragments {
				if fr.Kind != FragShipAll {
					t.Fatalf("fragment kind = %v", fr.Kind)
				}
			}
		}
	}
}

func TestOptimizeJoinWithTableStaysOnStreamEngine(t *testing.T) {
	fed, _, _ := fixture(t, 3, 3)
	stmt, err := sql.ParseSelect(`SELECT t.room, m.software FROM Temperature t, Machines m
		WHERE t.room = m.room AND t.value > 30`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Machines is a table: subsets are {} and {t} only.
	if len(res.Alternatives) != 2 {
		t.Fatalf("alternatives = %d", len(res.Alternatives))
	}
	// pushing the selective temperature filter should win
	ch := res.Chosen
	if len(ch.Fragments) != 1 || ch.Fragments[0].Kind != FragSelect {
		t.Fatalf("chosen = %s", ch.Desc)
	}
	if ch.Fragments[0].Select.Pred == nil {
		t.Fatal("local predicate not pushed into fragment")
	}
	// the rewritten stream statement must not re-filter t.value
	if strings.Contains(ch.StreamStmt.String(), "t.value") {
		t.Fatalf("pushed predicate left in stream plan: %s", ch.StreamStmt)
	}
	// the table join survives on the stream side
	if !strings.Contains(ch.StreamPlan.Root.String(), "Machines") {
		t.Fatalf("stream plan = %s", ch.StreamPlan.Root)
	}
}

func TestOptimizeRejectsNonLocalJoin(t *testing.T) {
	fed, _, _ := fixture(t, 3, 3)
	// join on value (not a locality key): the pushed-join partition must be
	// rejected, but select pushdowns still work
	stmt, err := sql.ParseSelect(`SELECT t.room FROM Temperature t, Light l WHERE t.value = l.value`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Alternatives {
		for _, fr := range a.Fragments {
			if fr.Kind == FragJoin {
				t.Fatalf("non-local join was pushed: %s", a.Desc)
			}
		}
	}
	if len(res.Rejected) == 0 {
		t.Fatal("expected a rejected partition")
	}
}

func TestOptimizeWithoutSensorEngine(t *testing.T) {
	fed, _, _ := fixture(t, 2, 2)
	fed.Sensors = nil
	stmt, _ := sql.ParseSelect(occupancyQuery)
	res, err := fed.Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alternatives) != 1 || res.Chosen.MsgsPerSec != 0 {
		t.Fatalf("no-sensor federation = %+v", res.Chosen)
	}
}

func TestOptimizeUnknownSource(t *testing.T) {
	fed, _, _ := fixture(t, 2, 2)
	stmt, _ := sql.ParseSelect(`SELECT x.a FROM NoSuch x`)
	if _, err := fed.Optimize(stmt); err == nil {
		t.Fatal("unknown source accepted")
	}
}

// The chosen partition must execute end to end: run the sensor fragment on
// the sensor engine, feed its output into the stream engine, and check the
// combined result matches the semantics of the original query.
func TestFederatedExecutionEndToEnd(t *testing.T) {
	fed, sEng, _ := fixture(t, 3, 3)
	stmt, _ := sql.ParseSelect(occupancyQuery)
	res, err := fed.Optimize(stmt)
	if err != nil {
		t.Fatal(err)
	}
	ch := res.Chosen
	if ch.Fragments[0].Kind != FragJoin {
		t.Fatalf("expected join push, got %s", ch.Desc)
	}

	eng := stream.NewEngine("pc1", vtime.NewScheduler())
	dep, err := plan.CompileStream(ch.StreamPlan, eng)
	if err != nil {
		t.Fatal(err)
	}
	// Wire the fragment: sensor join results flow into the derived input.
	frag := ch.Fragments[0]
	in, ok := eng.Input(frag.DerivedName)
	if !ok {
		t.Fatalf("derived input %s not registered by plan", frag.DerivedName)
	}
	st, err := sEng.PlanJoin(frag.Join)
	if err != nil {
		t.Fatal(err)
	}
	sEng.RunJoinEpoch(st, vtime.Second, func(tu data.Tuple) { in.Push(tu) })

	rows, err := dep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// desk mote 3 is the occupied one; its temperature is 23
	if rows[0].Vals[2].AsFloat() != 23 {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestPushedAggregate(t *testing.T) {
	fed, sEng, nw := fixture(t, 3, 3)
	stmt, err := sql.ParseSelect(`SELECT t.room, avg(t.value) FROM Temperature t GROUP BY t.room`)
	if err != nil {
		t.Fatal(err)
	}
	frag, built, err := fed.PushedAggregate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if frag.Kind != FragAggregate || !frag.Agg.GroupByRoom || frag.Agg.Func != sensor.AggAvg {
		t.Fatalf("fragment = %+v", frag)
	}
	if frag.Est.MsgsPerEpoch != float64(len(nw.Nodes())-1) {
		t.Fatalf("estimate = %v", frag.Est.MsgsPerEpoch)
	}

	eng := stream.NewEngine("pc1", vtime.NewScheduler())
	dep, err := plan.CompileStream(built, eng)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := eng.Input(frag.DerivedName)
	sEng.RunAggregateEpoch(frag.Agg, vtime.Second, func(tu data.Tuple) { in.Push(tu) })
	rows, err := dep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 3 rooms in a 3x3/3-per-room grid
		t.Fatalf("rows = %v", rows)
	}
}

func TestPushedAggregateRejections(t *testing.T) {
	fed, _, _ := fixture(t, 2, 2)
	bad := []string{
		`SELECT t.room, avg(t.value) FROM Temperature t GROUP BY t.room HAVING avg(t.value) > 5`,
		`SELECT m.room, count(*) FROM Machines m GROUP BY m.room`,
		`SELECT t.desk, avg(t.value) FROM Temperature t GROUP BY t.desk`,
		`SELECT t.room, avg(t.value), max(t.value) FROM Temperature t GROUP BY t.room`,
		`SELECT t.room FROM Temperature t`,
		`SELECT t.room, l.room, count(*) FROM Temperature t, Light l GROUP BY t.room`,
	}
	for _, src := range bad {
		stmt, err := sql.ParseSelect(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, _, err := fed.PushedAggregate(stmt); err == nil {
			t.Errorf("PushedAggregate(%q) should fail", src)
		}
	}
}

func TestFragmentKindString(t *testing.T) {
	for k, want := range map[FragmentKind]string{
		FragShipAll: "ship-all", FragSelect: "in-network-select",
		FragJoin: "in-network-join", FragAggregate: "in-network-aggregate",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if FragmentKind(9).String() != "frag?" {
		t.Error("unknown kind")
	}
}
