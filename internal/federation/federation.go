// Package federation implements ASPEN's federated query optimizer (Fig. 1):
// it partitions a StreamSQL query between the sensor engine (on devices)
// and the stream engine (on PCs), "somewhat along the lines of the model
// established in the Garlic system" (§3).
//
// The federated optimizer enumerates candidate partitions, asks each
// engine's optimizer whether it can execute its part and what it costs —
// the sensor optimizer answers in radio messages per epoch, the stream
// optimizer in latency — and converts both into one unified model using
// catalog statistics (network diameter, sampling rates, radio timings)
// before choosing the cheapest feasible plan.
package federation

import (
	"fmt"
	"sort"
	"strings"

	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/plan"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/sql"
)

// EnergySecondsPerMJ converts radio transmit energy into unified cost
// seconds: spending battery is penalized like spending time, so plans that
// burn motes to shave latency lose.
const EnergySecondsPerMJ = 0.02

// FragmentKind classifies what is pushed to the sensor engine.
type FragmentKind uint8

// Fragment kinds.
const (
	FragShipAll FragmentKind = iota // raw acquisition, no in-network work
	FragSelect
	FragJoin
	FragAggregate
)

// String names the kind.
func (k FragmentKind) String() string {
	switch k {
	case FragShipAll:
		return "ship-all"
	case FragSelect:
		return "in-network-select"
	case FragJoin:
		return "in-network-join"
	case FragAggregate:
		return "in-network-aggregate"
	}
	return "frag?"
}

// Fragment is one subquery assigned to the sensor engine. It becomes a
// derived stream input of the stream engine.
type Fragment struct {
	Kind FragmentKind
	// DerivedName is the stream-engine input the fragment feeds.
	DerivedName string
	// Bindings lists the FROM bindings the fragment covers.
	Bindings []string
	// Sources lists the lowercased catalog source names behind those
	// bindings — the physical sensor feeds the fragment reads. Locality
	// placement routes shards to the workers hosting them, and shard-side
	// fragment deployment requires every one in the host's registry.
	Sources []string
	// Schema of the derived stream.
	Schema *data.Schema

	Select *sensor.SelectQuery
	Join   *sensor.JoinQuery
	Agg    *sensor.AggregateQuery

	// Est is the sensor optimizer's cost report.
	Est sensor.CostEstimate
}

// Alternative is one enumerated partitioning with its costs.
type Alternative struct {
	// Desc summarizes the partition for the E1 plan display.
	Desc string
	// Fragments pushed to the sensor engine (including trivial ship-all
	// acquisition for sensor sources the partition does not push work to).
	Fragments []*Fragment
	// StreamPlan is the remaining plan on the stream engine.
	StreamPlan *plan.Built
	// StreamStmt is the rewritten statement the stream plan was built from.
	StreamStmt *sql.SelectStmt

	// StreamWork is operator work per second on the stream engine.
	StreamWork float64
	// MsgsPerSec is expected radio traffic.
	MsgsPerSec float64
	// Unified is the single-model cost (seconds of weighted work per
	// second); lower is better.
	Unified float64
}

// Result is the optimizer's decision with the full alternative list.
type Result struct {
	Chosen       *Alternative
	Alternatives []*Alternative
	// Rejected explains partitions that failed capability checks.
	Rejected []string
}

// Binding connects catalog sensor-stream sources to physical sensor kinds.
type Binding struct {
	// Kinds maps lowercased source names to the mote sensor that produces
	// them.
	Kinds map[string]sensornet.SensorKind
	// Engine is the sensor engine whose optimizer prices fragments.
	Engine *sensor.Engine
}

// Federator partitions queries.
type Federator struct {
	Cat     *catalog.Catalog
	Sensors *Binding // nil when no sensor engine is deployed
}

// Optimize enumerates partitions of the query and returns the cheapest
// feasible one under the unified cost model.
func (f *Federator) Optimize(stmt *sql.SelectStmt) (*Result, error) {
	flat, err := plan.Inline(stmt, f.Cat)
	if err != nil {
		return nil, err
	}
	// Identify pushable FROM items: sensor-stream sources with a binding
	// and the raw reading schema.
	var sensorsHere []sensorItem
	if f.Sensors != nil {
		for i, fi := range flat.From {
			src, ok := f.Cat.Source(fi.Name)
			if !ok {
				return nil, fmt.Errorf("federation: unknown source %q", fi.Name)
			}
			if src.Kind != catalog.KindSensorStream {
				continue
			}
			kind, bound := f.Sensors.Kinds[strings.ToLower(src.Name)]
			if !bound || !isReadingSchema(src.Schema) {
				continue
			}
			sensorsHere = append(sensorsHere, sensorItem{idx: i, kind: kind})
		}
	}

	res := &Result{}
	conjuncts := expr.Conjuncts(flat.Where)

	// Enumerate subsets of pushable items (bitmask; |S| is small).
	n := len(sensorsHere)
	for mask := 0; mask < 1<<n; mask++ {
		var pushedIdx []int
		var kinds []sensornet.SensorKind
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				pushedIdx = append(pushedIdx, sensorsHere[b].idx)
				kinds = append(kinds, sensorsHere[b].kind)
			}
		}
		alt, reason := f.buildAlternative(flat, conjuncts, sensorsHere, pushedIdx, kinds, mask)
		if alt == nil {
			if reason != "" {
				res.Rejected = append(res.Rejected, reason)
			}
			continue
		}
		res.Alternatives = append(res.Alternatives, alt)
	}
	if len(res.Alternatives) == 0 {
		return nil, fmt.Errorf("federation: no feasible partition (%d rejected)", len(res.Rejected))
	}
	sort.SliceStable(res.Alternatives, func(i, j int) bool {
		return res.Alternatives[i].Unified < res.Alternatives[j].Unified
	})
	res.Chosen = res.Alternatives[0]
	return res, nil
}

// isReadingSchema checks the (mote, room, desk, value) shape of raw sensor
// streams.
func isReadingSchema(s *data.Schema) bool {
	if s.Arity() != 4 {
		return false
	}
	names := []string{"mote", "room", "desk", "value"}
	for i, n := range names {
		if !strings.EqualFold(s.Cols[i].Name, n) {
			return false
		}
	}
	return true
}
