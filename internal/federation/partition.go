package federation

import (
	"fmt"
	"strings"
	"time"

	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/plan"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/sql"
	"aspen/internal/stream"
)

// sensorItem pairs a FROM index with its physical sensor kind.
type sensorItem struct {
	idx  int
	kind sensornet.SensorKind
}

// buildAlternative constructs and prices one partition: the FROM items at
// pushedIdx are executed by the sensor engine, everything else by the
// stream engine. A nil Alternative with a reason means the partition failed
// a capability check.
func (f *Federator) buildAlternative(flat *sql.SelectStmt, conjuncts []expr.Expr,
	all []sensorItem, pushedIdx []int, kinds []sensornet.SensorKind, mask int) (*Alternative, string) {

	period := flat.SamplePeriod
	if period <= 0 {
		period = f.Cat.Stats().EpochPeriod
	}

	var fragments []*Fragment
	consumed := map[int]bool{} // conjunct indexes consumed by pushed work
	var rewritten sql.SelectStmt
	rewritten = *flat
	rewritten.From = nil

	// Capability check and fragment construction for the pushed subset.
	var pushed *Fragment
	switch len(pushedIdx) {
	case 0:
		// nothing pushed beyond raw acquisition
	case 1:
		fr, used, reason := f.selectFragment(flat, conjuncts, pushedIdx[0], kinds[0], period, mask)
		if fr == nil {
			return nil, reason
		}
		pushed = fr
		for _, u := range used {
			consumed[u] = true
		}
	case 2:
		fr, used, reason := f.joinFragment(flat, conjuncts, pushedIdx, kinds, period, mask)
		if fr == nil {
			return nil, reason
		}
		pushed = fr
		for _, u := range used {
			consumed[u] = true
		}
	default:
		return nil, fmt.Sprintf("partition %b: sensor engine executes at most pairwise joins (%d sources pushed)", mask, len(pushedIdx))
	}
	if pushed != nil {
		fragments = append(fragments, pushed)
	}

	// Rewritten FROM: derived item replaces the covered ones; everything
	// else stays. Non-pushed sensor sources acquire a trivial ship-all
	// fragment feeding their raw input.
	pushedSet := map[int]bool{}
	for _, i := range pushedIdx {
		pushedSet[i] = true
	}
	placedDerived := false
	for i, fi := range flat.From {
		if pushedSet[i] {
			if !placedDerived {
				item := sql.FromItem{Name: pushed.DerivedName, Alias: pushed.DerivedName}
				if fi.Window != nil {
					item.Window = fi.Window
				}
				rewritten.From = append(rewritten.From, item)
				placedDerived = true
			}
			continue
		}
		rewritten.From = append(rewritten.From, fi)
		for _, s := range all {
			if s.idx != i {
				continue
			}
			src, _ := f.Cat.Source(fi.Name)
			fr := &Fragment{
				Kind:        FragShipAll,
				DerivedName: src.Name,
				Bindings:    []string{fi.Binding()},
				Sources:     []string{strings.ToLower(src.Name)},
				Schema:      src.Schema,
				Select: &sensor.SelectQuery{
					Rel: fi.Binding(), Sensor: s.kind, Period: period,
				},
			}
			est, err := f.Sensors.Engine.EstimateSelect(fr.Select)
			if err != nil {
				return nil, fmt.Sprintf("partition %b: %v", mask, err)
			}
			fr.Est = est
			fragments = append(fragments, fr)
		}
	}

	// Remaining WHERE.
	var remaining []expr.Expr
	for i, c := range conjuncts {
		if !consumed[i] {
			remaining = append(remaining, c)
		}
	}
	rewritten.Where = expr.Conjoin(remaining)

	// Shadow catalog with the derived source registered.
	shadow := catalog.New()
	shadow.SetStats(f.Cat.Stats())
	for _, s := range f.Cat.Sources() {
		cp := *s
		if err := shadow.AddSource(&cp); err != nil {
			return nil, fmt.Sprintf("partition %b: %v", mask, err)
		}
	}
	if pushed != nil {
		if err := shadow.AddSource(&catalog.Source{
			Name: pushed.DerivedName, Kind: catalog.KindStream,
			Schema: pushed.Schema, Rate: pushed.Est.PerSecond(), Derived: true,
		}); err != nil {
			return nil, fmt.Sprintf("partition %b: %v", mask, err)
		}
	}

	built, err := plan.Build(&rewritten, shadow)
	if err != nil {
		return nil, fmt.Sprintf("partition %b: stream engine rejects remainder: %v", mask, err)
	}

	alt := &Alternative{
		Fragments:  fragments,
		StreamPlan: built,
		StreamStmt: &rewritten,
		StreamWork: plan.Work(built.Root),
	}
	for _, fr := range fragments {
		alt.MsgsPerSec += fr.Est.PerSecond()
	}
	stats := f.Cat.Stats()
	radioCostPerMsg := stats.RadioMsgLatency.Seconds() + stats.RadioMsgEnergy*EnergySecondsPerMJ
	alt.Unified = alt.StreamWork*plan.PerTupleCost.Seconds() + alt.MsgsPerSec*radioCostPerMsg
	alt.Desc = describe(pushed, fragments)
	return alt, ""
}

func describe(pushed *Fragment, fragments []*Fragment) string {
	if pushed == nil {
		return fmt.Sprintf("all-stream (%d raw acquisitions)", len(fragments))
	}
	return fmt.Sprintf("push %s over {%s}; %d raw acquisitions",
		pushed.Kind, strings.Join(pushed.Bindings, ", "), len(fragments)-1)
}

// selectFragment pushes filtering for one sensor source in-network.
func (f *Federator) selectFragment(flat *sql.SelectStmt, conjuncts []expr.Expr,
	idx int, kind sensornet.SensorKind, period time.Duration, mask int) (*Fragment, []int, string) {

	fi := flat.From[idx]
	binding := fi.Binding()
	schema := sensor.ReadingSchema(binding)

	var local []expr.Expr
	var used []int
	for i, c := range conjuncts {
		if expr.BoundBy(c, schema) {
			local = append(local, c)
			used = append(used, i)
		}
	}
	q := &sensor.SelectQuery{Rel: binding, Sensor: kind, Period: period}
	if len(local) > 0 {
		pred, err := expr.Bind(expr.Conjoin(local), schema)
		if err != nil {
			return nil, nil, fmt.Sprintf("partition %b: cannot bind local predicate: %v", mask, err)
		}
		q.Pred = pred
	}
	est, err := f.Sensors.Engine.EstimateSelect(q)
	if err != nil {
		return nil, nil, fmt.Sprintf("partition %b: %v", mask, err)
	}
	return &Fragment{
		Kind:        FragSelect,
		DerivedName: derivedName(mask),
		Bindings:    []string{binding},
		Sources:     []string{strings.ToLower(fi.Name)},
		Schema:      schema,
		Select:      q,
		Est:         est,
	}, used, ""
}

// joinFragment pushes a pairwise in-network join.
func (f *Federator) joinFragment(flat *sql.SelectStmt, conjuncts []expr.Expr,
	pushedIdx []int, kinds []sensornet.SensorKind, period time.Duration, mask int) (*Fragment, []int, string) {

	bi := flat.From[pushedIdx[0]].Binding()
	bj := flat.From[pushedIdx[1]].Binding()
	si := sensor.ReadingSchema(bi)
	sj := sensor.ReadingSchema(bj)
	joined := si.Concat(sj)

	var leftLocal, rightLocal, residual []expr.Expr
	var used []int
	joinCols := map[string]bool{} // unqualified equi-join column names
	for i, c := range conjuncts {
		switch {
		case expr.BoundBy(c, si):
			leftLocal = append(leftLocal, c)
			used = append(used, i)
		case expr.BoundBy(c, sj):
			rightLocal = append(rightLocal, c)
			used = append(used, i)
		case expr.BoundBy(c, joined):
			if l, r, ok := expr.EquiJoin(c, si, sj); ok {
				_, ln := data.SplitQualified(l)
				_, rn := data.SplitQualified(r)
				if strings.EqualFold(ln, rn) && (strings.EqualFold(ln, "room") || strings.EqualFold(ln, "desk")) {
					joinCols[strings.ToLower(ln)] = true
					used = append(used, i)
					continue
				}
			}
			residual = append(residual, c)
			used = append(used, i)
		}
	}
	var pairBy sensor.PairBy
	switch {
	case joinCols["room"] && joinCols["desk"]:
		pairBy = sensor.PairSameDesk
	case joinCols["room"]:
		pairBy = sensor.PairSameRoom
	default:
		return nil, nil, fmt.Sprintf("partition %b: in-network join needs a room or room+desk equi-join between %s and %s", mask, bi, bj)
	}

	q := &sensor.JoinQuery{
		Left:      sensor.JoinSide{Rel: bi, Sensor: kinds[0]},
		Right:     sensor.JoinSide{Rel: bj, Sensor: kinds[1]},
		PairBy:    pairBy,
		Placement: sensor.PlaceOptimized,
		Period:    period,
	}
	bindSide := func(local []expr.Expr, schema *data.Schema) (*expr.Compiled, error) {
		if len(local) == 0 {
			return nil, nil
		}
		return expr.Bind(expr.Conjoin(local), schema)
	}
	var err error
	if q.Left.Pred, err = bindSide(leftLocal, si); err != nil {
		return nil, nil, fmt.Sprintf("partition %b: %v", mask, err)
	}
	if q.Right.Pred, err = bindSide(rightLocal, sj); err != nil {
		return nil, nil, fmt.Sprintf("partition %b: %v", mask, err)
	}
	if len(residual) > 0 {
		if q.On, err = expr.Bind(expr.Conjoin(residual), joined); err != nil {
			return nil, nil, fmt.Sprintf("partition %b: %v", mask, err)
		}
	}
	st, err := f.Sensors.Engine.PlanJoin(q)
	if err != nil {
		return nil, nil, fmt.Sprintf("partition %b: %v", mask, err)
	}
	est, err := f.Sensors.Engine.EstimateJoin(st)
	if err != nil {
		return nil, nil, fmt.Sprintf("partition %b: %v", mask, err)
	}
	return &Fragment{
		Kind:        FragJoin,
		DerivedName: derivedName(mask),
		Bindings:    []string{bi, bj},
		Sources: []string{
			strings.ToLower(flat.From[pushedIdx[0]].Name),
			strings.ToLower(flat.From[pushedIdx[1]].Name),
		},
		Schema: joined,
		Join:   q,
		Est:    est,
	}, used, ""
}

func derivedName(mask int) string { return fmt.Sprintf("aspen_frag_%d", mask) }

// PushedAggregate attempts to push a whole single-source aggregation query
// in-network (TAG). It succeeds only for SELECT [room,] agg(value) FROM one
// sensor source [GROUP BY room] with optional local WHERE and no HAVING.
func (f *Federator) PushedAggregate(stmt *sql.SelectStmt) (*Fragment, *plan.Built, error) {
	flat, err := plan.Inline(stmt, f.Cat)
	if err != nil {
		return nil, nil, err
	}
	if f.Sensors == nil || len(flat.From) != 1 || flat.Having != nil {
		return nil, nil, fmt.Errorf("federation: aggregate not pushable")
	}
	fi := flat.From[0]
	src, ok := f.Cat.Source(fi.Name)
	if !ok || src.Kind != catalog.KindSensorStream || !isReadingSchema(src.Schema) {
		return nil, nil, fmt.Errorf("federation: %s is not a raw sensor source", fi.Name)
	}
	kind, bound := f.Sensors.Kinds[strings.ToLower(src.Name)]
	if !bound {
		return nil, nil, fmt.Errorf("federation: no sensor binding for %s", src.Name)
	}
	binding := fi.Binding()
	schema := sensor.ReadingSchema(binding)

	groupByRoom := false
	switch len(flat.GroupBy) {
	case 0:
	case 1:
		_, n := data.SplitQualified(flat.GroupBy[0])
		if !strings.EqualFold(n, "room") {
			return nil, nil, fmt.Errorf("federation: in-network grouping supports room only")
		}
		groupByRoom = true
	default:
		return nil, nil, fmt.Errorf("federation: in-network grouping supports one key")
	}

	var fn sensor.AggFunc
	found := false
	for _, item := range flat.Items {
		call, isCall := item.Expr.(expr.Call)
		if !isCall {
			continue
		}
		kindName, isAgg := stream.ParseAggKind(call.Name)
		if !isAgg {
			continue
		}
		if found {
			return nil, nil, fmt.Errorf("federation: one in-network aggregate at a time")
		}
		found = true
		switch kindName {
		case stream.AggCount:
			fn = sensor.AggCount
		case stream.AggSum:
			fn = sensor.AggSum
		case stream.AggAvg:
			fn = sensor.AggAvg
		case stream.AggMin:
			fn = sensor.AggMin
		case stream.AggMax:
			fn = sensor.AggMax
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("federation: no aggregate to push")
	}

	period := flat.SamplePeriod
	if period <= 0 {
		period = f.Cat.Stats().EpochPeriod
	}
	q := &sensor.AggregateQuery{
		Rel: binding, Sensor: kind, Func: fn,
		GroupByRoom: groupByRoom, Mode: sensor.AggInNetwork, Period: period,
	}
	if flat.Where != nil {
		if !expr.BoundBy(flat.Where, schema) {
			return nil, nil, fmt.Errorf("federation: aggregate WHERE not local to the sensor source")
		}
		pred, err := expr.Bind(flat.Where, schema)
		if err != nil {
			return nil, nil, err
		}
		q.Pred = pred
	}
	est, err := f.Sensors.Engine.EstimateAggregate(q)
	if err != nil {
		return nil, nil, err
	}
	frag := &Fragment{
		Kind:        FragAggregate,
		DerivedName: "aspen_agg_" + strings.ToLower(binding),
		Bindings:    []string{binding},
		Sources:     []string{strings.ToLower(src.Name)},
		Schema:      q.Schema(),
		Agg:         q,
		Est:         est,
	}
	// The stream side just materializes the derived aggregate stream.
	shadow := catalog.New()
	shadow.SetStats(f.Cat.Stats())
	if err := shadow.AddSource(&catalog.Source{
		Name: frag.DerivedName, Kind: catalog.KindStream,
		Schema: frag.Schema, Rate: est.PerSecond(), Derived: true,
	}); err != nil {
		return nil, nil, err
	}
	body := &sql.SelectStmt{
		Star:  true,
		From:  []sql.FromItem{{Name: frag.DerivedName, Alias: frag.DerivedName}},
		Limit: -1, OutputTo: flat.OutputTo,
	}
	built, err := plan.Build(body, shadow)
	if err != nil {
		return nil, nil, err
	}
	return frag, built, nil
}
