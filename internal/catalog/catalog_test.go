package catalog

import (
	"strings"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/sql"
)

func tempSource() *Source {
	return &Source{
		Name: "Temperature",
		Kind: KindSensorStream,
		Schema: data.NewSchema("Temperature",
			data.Col("mote", data.TInt),
			data.Col("temp", data.TFloat)),
		Rate:         10,
		SamplePeriod: time.Second,
	}
}

func TestSourceRegistry(t *testing.T) {
	c := New()
	c.MustAddSource(tempSource())
	if _, ok := c.Source("temperature"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := c.Source("TEMPERATURE"); !ok {
		t.Fatal("uppercase lookup failed")
	}
	if err := c.AddSource(tempSource()); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := c.AddSource(&Source{Name: "x"}); err == nil {
		t.Fatal("schema-less source accepted")
	}
	if err := c.AddSource(&Source{Schema: data.NewSchema("y")}); err == nil {
		t.Fatal("nameless source accepted")
	}
	c.MustAddSource(&Source{Name: "Alpha", Kind: KindTable,
		Schema: data.NewSchema("Alpha", data.Col("a", data.TInt))})
	all := c.Sources()
	if len(all) != 2 || all[0].Name != "Alpha" {
		t.Fatalf("Sources = %v", all)
	}
}

func TestViewRegistry(t *testing.T) {
	c := New()
	v := sql.MustParse(`CREATE VIEW OpenMachineInfo AS (SELECT ss.room FROM SeatSensors ss)`).(*sql.CreateView)
	if err := c.AddView(v); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.View("openmachineinfo"); !ok {
		t.Fatal("view lookup failed")
	}
	if err := c.AddView(v); err == nil {
		t.Fatal("duplicate view accepted")
	}
	// name clash with a source
	c.MustAddSource(tempSource())
	clash := sql.MustParse(`CREATE VIEW Temperature AS (SELECT t.mote FROM T t)`).(*sql.CreateView)
	if err := c.AddView(clash); err == nil {
		t.Fatal("view/source clash accepted")
	}
	if err := c.AddSource(&Source{Name: "OpenMachineInfo",
		Schema: data.NewSchema("OpenMachineInfo", data.Col("room", data.TString))}); err == nil {
		t.Fatal("source/view clash accepted")
	}
	c.DropView("OpenMachineInfo")
	if _, ok := c.View("OpenMachineInfo"); ok {
		t.Fatal("DropView failed")
	}
}

func TestDevicesAndDisplays(t *testing.T) {
	c := New()
	c.RegisterDevice(Device{ID: 3, Kind: "mote", Room: "H1", X: 1, Y: 2})
	c.RegisterDevice(Device{ID: 1, Kind: "pdu", Room: "L101"})
	if d, ok := c.Device(3); !ok || d.Room != "H1" {
		t.Fatalf("Device(3) = %+v %t", d, ok)
	}
	if _, ok := c.Device(99); ok {
		t.Fatal("phantom device")
	}
	ds := c.Devices()
	if len(ds) != 2 || ds[0].ID != 1 {
		t.Fatalf("Devices = %v", ds)
	}
	c.RegisterDisplay(Display{Name: "LobbyScreen", Room: "Lobby"})
	if d, ok := c.Display("lobbyscreen"); !ok || d.Room != "Lobby" {
		t.Fatalf("Display = %+v %t", d, ok)
	}
}

func TestStats(t *testing.T) {
	c := New()
	st := c.Stats()
	if st.NetworkDiameter != 6 || st.EpochPeriod != time.Second {
		t.Fatalf("defaults = %+v", st)
	}
	st.NetworkDiameter = 10
	c.SetStats(st)
	if c.Stats().NetworkDiameter != 10 {
		t.Fatal("SetStats failed")
	}
}

func TestCardinality(t *testing.T) {
	s := tempSource()
	if s.Cardinality() != 10 {
		t.Fatalf("stream cardinality = %v", s.Cardinality())
	}
	rel := data.NewRelation(data.NewSchema("t", data.Col("a", data.TInt)))
	rel.MustInsert(data.Int(1))
	rel.MustInsert(data.Int(2))
	tab := &Source{Name: "t", Kind: KindTable, Schema: rel.Schema(), Table: rel}
	if tab.Cardinality() != 2 {
		t.Fatalf("table cardinality = %v", tab.Cardinality())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[SourceKind]string{
		KindSensorStream: "sensor-stream", KindStream: "stream",
		KindTable: "table", KindWeb: "web",
	} {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(SourceKind(9).String(), "kind") {
		t.Error("unknown kind should format")
	}
}
