// Package catalog implements ASPEN's Source & Device Catalog (Fig. 1): the
// registry of every data source (sensor streams, PC streams, database
// tables, Web sources), the devices deployed in the building, the display
// endpoints that queries can route output to, and the statistics the
// federated optimizer needs to convert between engine cost models (network
// diameter, sampling rates, stream rates, cardinalities).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"aspen/internal/data"
	"aspen/internal/sql"
)

// SourceKind classifies where a source lives and which engine can scan it.
type SourceKind uint8

// Source kinds.
const (
	// KindSensorStream is produced by motes; scannable by the sensor engine
	// (and, via the base station, by the stream engine).
	KindSensorStream SourceKind = iota
	// KindStream is a PC-side stream (soft sensors, PDU wrappers, Web
	// feeds); scannable by the stream engine only.
	KindStream
	// KindTable is a stored database relation.
	KindTable
	// KindWeb is a periodically scraped Web source materialized as a
	// stream; scannable by the stream engine only.
	KindWeb
)

// String names the kind.
func (k SourceKind) String() string {
	switch k {
	case KindSensorStream:
		return "sensor-stream"
	case KindStream:
		return "stream"
	case KindTable:
		return "table"
	case KindWeb:
		return "web"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Source describes one registered data source.
type Source struct {
	Name   string
	Kind   SourceKind
	Schema *data.Schema

	// Rate is the steady-state tuple rate (tuples/second) for streams.
	Rate float64
	// SamplePeriod is the default device sampling period for sensor streams.
	SamplePeriod time.Duration
	// Table is the backing relation for KindTable sources.
	Table *data.Relation
	// Selectivity maps lowercased column names to an estimated fraction of
	// tuples passing an equality predicate on that column; optional.
	Selectivity map[string]float64
	// Derived marks streams produced by pushed sensor fragments: their
	// schemas already carry per-binding column qualifiers that the planner
	// must preserve rather than re-alias.
	Derived bool
}

// Cardinality estimates the number of tuples visible to one query
// evaluation: table size for tables, rate for streams (per second).
func (s *Source) Cardinality() float64 {
	if s.Kind == KindTable && s.Table != nil {
		return float64(s.Table.Len())
	}
	return s.Rate
}

// Device is one physical device known to the catalog. The paper's database
// stores "the coordinates on the map of each RFID detector" — motes have no
// built-in positioning, so positions live here.
type Device struct {
	ID   int
	Kind string // "mote", "rfid-reader", "pdu", "workstation", "server"
	Room string
	Desk int // 0 when not on a desk
	X, Y float64
}

// Display is a GUI endpoint that OUTPUT TO can route results to.
type Display struct {
	Name string
	Room string // virtual mapping of a laptop to a building position
}

// Stats holds the global federation statistics used to unify cost models.
type Stats struct {
	// NetworkDiameter is the sensor network diameter in hops.
	NetworkDiameter int
	// EpochPeriod is the sensor network's global sampling epoch.
	EpochPeriod time.Duration
	// RadioMsgLatency is the per-hop transmission latency of one radio
	// message; used to convert message counts into seconds.
	RadioMsgLatency time.Duration
	// RadioMsgEnergy is the per-message transmit energy in millijoules.
	RadioMsgEnergy float64
}

// DefaultStats returns sane defaults for a small building deployment.
func DefaultStats() Stats {
	return Stats{
		NetworkDiameter: 6,
		EpochPeriod:     time.Second,
		RadioMsgLatency: 20 * time.Millisecond,
		RadioMsgEnergy:  0.05,
	}
}

// Catalog is the source & device catalog. All methods are safe for
// concurrent use.
type Catalog struct {
	mu       sync.RWMutex
	sources  map[string]*Source
	views    map[string]*sql.CreateView
	devices  map[int]Device
	displays map[string]Display
	stats    Stats
}

// New returns an empty catalog with default statistics.
func New() *Catalog {
	return &Catalog{
		sources:  map[string]*Source{},
		views:    map[string]*sql.CreateView{},
		devices:  map[int]Device{},
		displays: map[string]Display{},
		stats:    DefaultStats(),
	}
}

// AddSource registers a source; the name must be unused by sources and views.
func (c *Catalog) AddSource(s *Source) error {
	if s.Name == "" || s.Schema == nil {
		return fmt.Errorf("catalog: source needs a name and schema")
	}
	key := strings.ToLower(s.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.sources[key]; dup {
		return fmt.Errorf("catalog: duplicate source %q", s.Name)
	}
	if _, dup := c.views[key]; dup {
		return fmt.Errorf("catalog: %q already names a view", s.Name)
	}
	c.sources[key] = s
	return nil
}

// MustAddSource registers a statically known source; panics on error.
func (c *Catalog) MustAddSource(s *Source) {
	if err := c.AddSource(s); err != nil {
		panic(err)
	}
}

// Source resolves a source by name (case-insensitive).
func (c *Catalog) Source(name string) (*Source, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.sources[strings.ToLower(name)]
	return s, ok
}

// Sources returns all sources sorted by name.
func (c *Catalog) Sources() []*Source {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Source, 0, len(c.sources))
	for _, s := range c.sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddView registers a named view definition.
func (c *Catalog) AddView(v *sql.CreateView) error {
	key := strings.ToLower(v.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.views[key]; dup {
		return fmt.Errorf("catalog: duplicate view %q", v.Name)
	}
	if _, dup := c.sources[key]; dup {
		return fmt.Errorf("catalog: %q already names a source", v.Name)
	}
	c.views[key] = v
	return nil
}

// View resolves a view by name.
func (c *Catalog) View(name string) (*sql.CreateView, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[strings.ToLower(name)]
	return v, ok
}

// DropView removes a view if present.
func (c *Catalog) DropView(name string) {
	c.mu.Lock()
	delete(c.views, strings.ToLower(name))
	c.mu.Unlock()
}

// RegisterDevice adds or replaces a device record.
func (c *Catalog) RegisterDevice(d Device) {
	c.mu.Lock()
	c.devices[d.ID] = d
	c.mu.Unlock()
}

// Device looks up a device by ID.
func (c *Catalog) Device(id int) (Device, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.devices[id]
	return d, ok
}

// Devices returns all devices sorted by ID.
func (c *Catalog) Devices() []Device {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Device, 0, len(c.devices))
	for _, d := range c.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RegisterDisplay adds a display endpoint.
func (c *Catalog) RegisterDisplay(d Display) {
	c.mu.Lock()
	c.displays[strings.ToLower(d.Name)] = d
	c.mu.Unlock()
}

// Display resolves a display by name.
func (c *Catalog) Display(name string) (Display, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.displays[strings.ToLower(name)]
	return d, ok
}

// Stats returns the federation statistics.
func (c *Catalog) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// SetStats replaces the federation statistics.
func (c *Catalog) SetStats(s Stats) {
	c.mu.Lock()
	c.stats = s
	c.mu.Unlock()
}
