package stream

import (
	"fmt"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

// shardPipe is one built join+aggregate pipeline under test: the entry
// windows (serial) or sharders (parallel), its materialized result, and
// the hooks to advance clocks and quiesce.
type shardPipe struct {
	left, right BatchOperator
	mat         *Materialize
	advance     func(now vtime.Time)
	flush       func()
	close       func()
}

func e7Schemas() (left, right *data.Schema) {
	left = data.NewSchema("a", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	right = data.NewSchema("bb", data.Col("k", data.TInt), data.Col("w", data.TFloat))
	return
}

// buildSerialPipe builds the serial reference: window → join → agg → mat.
func buildSerialPipe(t *testing.T, win time.Duration) *shardPipe {
	t.Helper()
	left, right := e7Schemas()
	joined := left.Concat(right)
	specs := []AggSpec{{Kind: AggAvg, Arg: expr.C("v"), Alias: "m"}}
	out, err := AggOutSchema(joined, []string{"a.k"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialize(out)
	agg, err := NewAggregate(mat, joined, []string{"a.k"}, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJoin(agg, left, right, []string{"a.k"}, []string{"bb.k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wl := NewTimeWindow(j.Left(), win, 0)
	wr := NewTimeWindow(j.Right(), win, 0)
	return &shardPipe{
		left: wl, right: wr, mat: mat,
		advance: func(now vtime.Time) { wl.Advance(now); wr.Advance(now) },
		flush:   func() {},
		close:   func() {},
	}
}

// buildShardedPipe builds P replicas of the same pipeline behind Sharders
// keyed on column k, merging into one shared Materialize.
func buildShardedPipe(t *testing.T, win time.Duration, p int) *shardPipe {
	t.Helper()
	left, right := e7Schemas()
	joined := left.Concat(right)
	specs := []AggSpec{{Kind: AggAvg, Arg: expr.C("v"), Alias: "m"}}
	out, err := AggOutSchema(joined, []string{"a.k"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialize(out)
	merge := NewMerge(mat)
	set := NewShardSet(p)
	lheads := make([]Operator, p)
	rheads := make([]Operator, p)
	for s := 0; s < p; s++ {
		agg, err := NewAggregate(merge, joined, []string{"a.k"}, specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		j, err := NewJoin(agg, left, right, []string{"a.k"}, []string{"bb.k"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		wl := NewTimeWindow(j.Left(), win, 0)
		wr := NewTimeWindow(j.Right(), win, 0)
		set.Track(s, wl)
		set.Track(s, wr)
		lheads[s], rheads[s] = wl, wr
	}
	lsh, err := NewSharder(set, lheads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	rsh, err := NewSharder(set, rheads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	set.Start()
	return &shardPipe{
		left: lsh, right: rsh, mat: mat,
		advance: set.Advance,
		flush:   set.Flush,
		close:   set.Close,
	}
}

// driveShardWorkload pushes a deterministic insert/delete workload with
// interleaved clock ticks: batches of keyed tuples, a delete of a
// still-windowed tuple every few batches, and a mid-stream tick that
// expires the window's tail.
func driveShardWorkload(p *shardPipe, n int) {
	ts := vtime.Time(0)
	const batch = 32
	for i := 0; i < n; i += batch {
		var lb, rb []data.Tuple
		for k := 0; k < batch; k++ {
			ts += vtime.Time(50 * time.Millisecond)
			t := data.NewTuple(ts, data.Int(int64((i+k)%13)), data.Float(float64(i+k)))
			if k%2 == 0 {
				lb = append(lb, t)
			} else {
				rb = append(rb, t)
			}
		}
		// Retract one still-live tuple per batch, exercising deletes
		// through sharder, window, join and aggregate.
		lb = append(lb, lb[len(lb)-1].Clone().Negate())
		p.left.PushBatch(lb)
		p.right.PushBatch(rb)
		if i%(4*batch) == 0 {
			p.advance(ts)
		}
	}
	p.advance(ts + vtime.Time(time.Second))
}

func snapshotRows(t *testing.T, m *Materialize) []data.Tuple {
	t.Helper()
	rows, err := m.Snapshot(nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	SortTuples(rows)
	return rows
}

func requireSameRows(t *testing.T, want, got []data.Tuple, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: serial has %d rows, sharded %d\nserial: %v\nsharded: %v",
			label, len(want), len(got), want, got)
	}
	for i := range want {
		if !want[i].EqualVals(got[i]) {
			t.Fatalf("%s: row %d differs: serial %v vs sharded %v", label, i, want[i], got[i])
		}
	}
}

// TestShardedJoinAggEquivalence verifies that the partition-parallel
// pipeline produces exactly the serial result for a windowed join +
// aggregation under inserts, deletes and clock-driven expiry, across
// several shard counts (including non-power-of-two).
func TestShardedJoinAggEquivalence(t *testing.T) {
	const win = 2 * time.Second
	serial := buildSerialPipe(t, win)
	driveShardWorkload(serial, 1024)
	want := snapshotRows(t, serial.mat)
	if len(want) == 0 {
		t.Fatal("serial reference produced no rows; workload is vacuous")
	}
	for _, p := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			sharded := buildShardedPipe(t, win, p)
			driveShardWorkload(sharded, 1024)
			sharded.flush()
			got := snapshotRows(t, sharded.mat)
			sharded.close()
			requireSameRows(t, want, got, fmt.Sprintf("P=%d", p))
		})
	}
}

// TestShardedEquivalenceUnderForcedCollisions re-runs the equivalence
// check with every operator hash forced into one bucket, so the replicas'
// collision-verification paths carry the load. (Routing uses the full
// hash, so tuples still spread across shards.)
func TestShardedEquivalenceUnderForcedCollisions(t *testing.T) {
	forceHashCollisions(t)
	const win = 2 * time.Second
	serial := buildSerialPipe(t, win)
	driveShardWorkload(serial, 256)
	want := snapshotRows(t, serial.mat)
	sharded := buildShardedPipe(t, win, 3)
	driveShardWorkload(sharded, 256)
	sharded.flush()
	got := snapshotRows(t, sharded.mat)
	sharded.close()
	requireSameRows(t, want, got, "collisions")
}

// TestShardedDistinctEquivalence checks set semantics across shards:
// multiplicity counting must agree with the serial Distinct for both
// polarities when tuples partition on the full row.
func TestShardedDistinctEquivalence(t *testing.T) {
	schema := data.NewSchema("s", data.Col("room", data.TString), data.Col("n", data.TInt))
	workload := func(push func(data.Tuple)) {
		for i := 0; i < 300; i++ {
			t := data.NewTuple(vtime.Time(i+1), data.Str(fmt.Sprintf("L%d", i%7)), data.Int(int64(i%5)))
			push(t)
			if i%3 == 0 {
				push(t.Clone().Negate()) // 1→0 for fresh values, n→n-1 otherwise
			}
		}
	}

	serialMat := NewMaterialize(schema)
	serialD := NewDistinct(serialMat)
	workload(serialD.Push)
	want := snapshotRows(t, serialMat)

	const p = 3
	mat := NewMaterialize(schema)
	merge := NewMerge(mat)
	set := NewShardSet(p)
	heads := make([]Operator, p)
	for s := 0; s < p; s++ {
		heads[s] = NewDistinct(merge)
	}
	sh, err := NewSharder(set, heads, nil) // nil = partition on all columns
	if err != nil {
		t.Fatal(err)
	}
	set.Start()
	workload(sh.Push)
	set.Flush()
	got := snapshotRows(t, mat)
	set.Close()
	requireSameRows(t, want, got, "distinct")
}

// TestSharderRoutesKeysConsistently feeds many keys through a Sharder over
// plain collectors and checks every key lands in exactly one shard, with
// per-shard arrival order preserved.
func TestSharderRoutesKeysConsistently(t *testing.T) {
	schema := data.NewSchema("s", data.Col("k", data.TInt), data.Col("seq", data.TInt))
	const p = 4
	set := NewShardSet(p)
	cols := make([]*Collector, p)
	heads := make([]Operator, p)
	for s := 0; s < p; s++ {
		cols[s] = NewCollector(schema)
		heads[s] = cols[s]
	}
	sh, err := NewSharder(set, heads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	set.Start()
	var batch []data.Tuple
	for i := 0; i < 1000; i++ {
		batch = append(batch, data.NewTuple(vtime.Time(i+1), data.Int(int64(i%37)), data.Int(int64(i))))
	}
	sh.PushBatch(batch)
	set.Flush()
	set.Close()

	shardOf := map[int64]int{}
	total := 0
	for s, c := range cols {
		lastSeq := map[int64]int64{}
		for _, tu := range c.Snapshot() {
			k, seq := tu.Vals[0].I, tu.Vals[1].I
			if prev, ok := shardOf[k]; ok && prev != s {
				t.Fatalf("key %d appeared in shards %d and %d", k, prev, s)
			}
			shardOf[k] = s
			if last, ok := lastSeq[k]; ok && seq < last {
				t.Fatalf("shard %d: key %d out of order (%d after %d)", s, k, seq, last)
			}
			lastSeq[k] = seq
			total++
		}
	}
	if total != 1000 {
		t.Fatalf("routed %d of 1000 tuples", total)
	}
	if len(shardOf) != 37 {
		t.Fatalf("saw %d distinct keys, want 37", len(shardOf))
	}
}

// TestShardSetAdvanceExpiresWindows drives tuples into per-shard time
// windows, then ticks the set past the range: every shard must emit its
// expirations, draining the merged result to empty.
func TestShardSetAdvanceExpiresWindows(t *testing.T) {
	schema := data.NewSchema("s", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	const p = 3
	mat := NewMaterialize(schema)
	merge := NewMerge(mat)
	set := NewShardSet(p)
	heads := make([]Operator, p)
	for s := 0; s < p; s++ {
		w := NewTimeWindow(merge, time.Second, 0)
		set.Track(s, w)
		heads[s] = w
	}
	sh, err := NewSharder(set, heads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	set.Start()
	var batch []data.Tuple
	for i := 0; i < 60; i++ {
		batch = append(batch, data.NewTuple(vtime.Time(i+1), data.Int(int64(i)), data.Float(float64(i))))
	}
	sh.PushBatch(batch)
	set.Flush()
	if got := mat.Len(); got != 60 {
		t.Fatalf("before expiry: %d rows, want 60", got)
	}
	set.Advance(vtime.Time(10 * time.Second))
	set.Flush()
	if got := mat.Len(); got != 0 {
		t.Fatalf("after expiry tick: %d rows remain, want 0", got)
	}
	set.Close()
}

// TestShardSetCloseWithLiveProducers closes a set whose Sharder is still
// wired to producers and whose Advance keeps ticking (the engine has no
// unsubscribe/untrack): post-close pushes and ticks must be dropped, not
// panic, and the sink must keep its last state.
func TestShardSetCloseWithLiveProducers(t *testing.T) {
	schema := data.NewSchema("s", data.Col("k", data.TInt))
	col := NewCollector(schema)
	merge := NewMerge(col)
	const p = 2
	set := NewShardSet(p)
	heads := make([]Operator, p)
	for s := 0; s < p; s++ {
		w := NewTimeWindow(merge, time.Second, 0)
		set.Track(s, w)
		heads[s] = w
	}
	sh, err := NewSharder(set, heads, nil)
	if err != nil {
		t.Fatal(err)
	}
	set.Start()
	sh.Push(data.NewTuple(1, data.Int(1)))
	set.Flush()
	if col.Len() != 1 {
		t.Fatalf("pre-close tuples = %d", col.Len())
	}
	set.Close()
	set.Close() // idempotent

	// The engine would keep doing all of this after a Query.Stop:
	sh.Push(data.NewTuple(2, data.Int(2)))
	sh.PushBatch([]data.Tuple{data.NewTuple(3, data.Int(3))})
	set.Advance(vtime.Time(time.Minute))
	set.Flush()
	if col.Len() != 1 {
		t.Fatalf("post-close activity reached the sink: %d tuples", col.Len())
	}
}

// TestMergeFunnelsConcurrentBatches hammers one Merge from the shard
// workers of a wide set; under -race this doubles as the proof that
// replica pipelines are single-writer and the funnel fully guards the
// shared sink.
func TestMergeFunnelsConcurrentBatches(t *testing.T) {
	schema := data.NewSchema("s", data.Col("k", data.TInt))
	col := NewCollector(schema)
	merge := NewMerge(col)
	const p = 8
	set := NewShardSet(p)
	heads := make([]Operator, p)
	for s := 0; s < p; s++ {
		heads[s] = merge
	}
	sh, err := NewSharder(set, heads, nil)
	if err != nil {
		t.Fatal(err)
	}
	set.Start()
	const n = 5000
	var batch []data.Tuple
	for i := 0; i < n; i++ {
		batch = append(batch, data.NewTuple(vtime.Time(i+1), data.Int(int64(i))))
		if len(batch) == 100 {
			sh.PushBatch(batch)
			batch = batch[:0]
		}
	}
	set.Flush()
	set.Close()
	if got := col.Len(); got != n {
		t.Fatalf("merged %d of %d tuples", got, n)
	}
}
