package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// Engine is one stream-engine node (a PC in the paper's architecture). It
// owns named input streams, the operator pipelines subscribed to them, and
// the display sinks that OUTPUT TO routes to.
//
// Execution is synchronous push: a Push drives the tuple through every
// subscribed pipeline before returning, which keeps single-node tests
// deterministic. Hot-path dispatch takes no engine lock — subscriber and
// advancer lists are copy-on-write, so pipelines on different inputs never
// serialize on the engine. Intra-pipeline parallelism comes from the
// partition exchange layer (shard.go); cross-node parallelism from the
// transport layer (transport.go), where each remote link feeds this engine
// from its own goroutine.
type Engine struct {
	mu       sync.Mutex // guards registries and copy-on-write writers
	name     string
	clock    vtime.Clock
	inputs   map[string]*Input
	displays map[string]*display
	advs     atomic.Pointer[[]Advancer]
}

// display is one registered display endpoint: the materialized view plus
// the original-case name it was first registered under (lookups are
// case-insensitive, listings report the registered name).
type display struct {
	name string
	mat  *Materialize
}

// NewEngine creates a named engine node.
func NewEngine(name string, clock vtime.Clock) *Engine {
	if clock == nil {
		clock = vtime.NewWallClock()
	}
	return &Engine{
		name:     name,
		clock:    clock,
		inputs:   map[string]*Input{},
		displays: map[string]*display{},
	}
}

// Name returns the node name.
func (e *Engine) Name() string { return e.name }

// Clock returns the engine clock.
func (e *Engine) Clock() vtime.Clock { return e.clock }

// Input is a named stream entry point with fan-out to subscribers.
type Input struct {
	name   string
	schema *data.Schema
	engine *Engine
	// subs is copy-on-write: Subscribe replaces the slice under the engine
	// lock, Push/PushBatch load it atomically and dispatch lock-free.
	subs atomic.Pointer[[]Operator]
}

// Register declares a named input stream. Duplicate names fail.
func (e *Engine) Register(name string, schema *data.Schema) (*Input, error) {
	key := strings.ToLower(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.inputs[key]; dup {
		return nil, fmt.Errorf("stream: duplicate input %q", name)
	}
	in := &Input{name: name, schema: schema, engine: e}
	e.inputs[key] = in
	return in, nil
}

// MustRegister registers a statically known input; panics on error.
func (e *Engine) MustRegister(name string, schema *data.Schema) *Input {
	in, err := e.Register(name, schema)
	if err != nil {
		panic(err)
	}
	return in
}

// Input resolves a registered input by name.
func (e *Engine) Input(name string) (*Input, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.inputs[strings.ToLower(name)]
	return in, ok
}

// Inputs lists registered input names, sorted.
func (e *Engine) Inputs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.inputs))
	for _, in := range e.inputs {
		out = append(out, in.name)
	}
	sort.Strings(out)
	return out
}

// Schema returns the input's schema.
func (in *Input) Schema() *data.Schema { return in.schema }

// Name returns the input's name.
func (in *Input) Name() string { return in.name }

// Subscribe attaches a pipeline head to this input. The subscriber list is
// copied, so in-flight pushes keep dispatching to the list they loaded.
func (in *Input) Subscribe(op Operator) {
	in.engine.mu.Lock()
	var next []Operator
	if cur := in.subs.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, op)
	in.subs.Store(&next)
	in.engine.mu.Unlock()
}

// Unsubscribe detaches a previously subscribed pipeline head, reporting
// whether it was found. Removal is copy-on-write like Subscribe: a push
// already dispatching keeps the list it loaded (the head may see one last
// in-flight delivery), every later push skips the head. Only the first
// matching subscription is removed, so double-subscribed heads detach one
// subscription per call.
func (in *Input) Unsubscribe(op Operator) bool {
	in.engine.mu.Lock()
	defer in.engine.mu.Unlock()
	cur := in.subs.Load()
	if cur == nil {
		return false
	}
	next := make([]Operator, 0, len(*cur))
	removed := false
	for _, o := range *cur {
		if !removed && o == op {
			removed = true
			continue
		}
		next = append(next, o)
	}
	if removed {
		in.subs.Store(&next)
	}
	return removed
}

// Subscribers reports the number of currently subscribed pipeline heads;
// churn tests assert it returns to baseline after queries stop.
func (in *Input) Subscribers() int { return len(in.subscribers()) }

// subscribers loads the current subscriber list without locking.
func (in *Input) subscribers() []Operator {
	if p := in.subs.Load(); p != nil {
		return *p
	}
	return nil
}

// Push injects a tuple into the input, driving all subscribed pipelines.
// A zero timestamp is stamped with the engine clock.
func (in *Input) Push(t data.Tuple) {
	if t.TS == 0 {
		t.TS = in.engine.clock.Now()
	}
	for _, op := range in.subscribers() {
		op.Push(t.Clone())
	}
}

// PushBatch injects a batch of tuples, driving all subscribed pipelines
// once per subscriber instead of once per tuple. Zero timestamps are
// stamped in place with the engine clock. Every subscriber but the last
// receives its own cloned batch; the final subscriber is handed the
// original tuples, making single-subscriber pipelines zero-copy — so the
// caller must not reuse the pushed Vals afterwards (the slice itself may
// be reused, per the BatchOperator contract).
func (in *Input) PushBatch(ts []data.Tuple) {
	if len(ts) == 0 {
		return
	}
	for i := range ts {
		if ts[i].TS == 0 {
			ts[i].TS = in.engine.clock.Now()
		}
	}
	subs := in.subscribers()
	for i, op := range subs {
		b := ts
		if i < len(subs)-1 {
			cl := make([]data.Tuple, len(ts))
			for k, t := range ts {
				cl[k] = t.Clone()
			}
			b = cl
		}
		PushBatch(op, b)
	}
}

// Push routes a tuple to the named input.
func (e *Engine) Push(input string, t data.Tuple) error {
	in, ok := e.Input(input)
	if !ok {
		return fmt.Errorf("stream: no input %q on node %s", input, e.name)
	}
	in.Push(t)
	return nil
}

// PushBatch routes a batch of tuples to the named input in one dispatch.
func (e *Engine) PushBatch(input string, ts []data.Tuple) error {
	in, ok := e.Input(input)
	if !ok {
		return fmt.Errorf("stream: no input %q on node %s", input, e.name)
	}
	in.PushBatch(ts)
	return nil
}

// TrackWindow registers a window (or any Advancer) for clock ticks. The
// advancer list is copy-on-write like subscriber lists.
func (e *Engine) TrackWindow(a Advancer) {
	e.mu.Lock()
	var next []Advancer
	if cur := e.advs.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, a)
	e.advs.Store(&next)
	e.mu.Unlock()
}

// UntrackWindow removes a tracked Advancer, reporting whether it was
// found — the symmetric detach Deployment.Close relies on so a stopped
// query's windows stop receiving ticks. Copy-on-write like TrackWindow: a
// concurrent Advance may deliver one last in-flight tick.
func (e *Engine) UntrackWindow(a Advancer) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.advs.Load()
	if cur == nil {
		return false
	}
	next := make([]Advancer, 0, len(*cur))
	removed := false
	for _, x := range *cur {
		if !removed && x == a {
			removed = true
			continue
		}
		next = append(next, x)
	}
	if removed {
		e.advs.Store(&next)
	}
	return removed
}

// Advancers reports the number of currently tracked Advancers; churn
// tests assert it returns to baseline after queries stop.
func (e *Engine) Advancers() int {
	if advs := e.advs.Load(); advs != nil {
		return len(*advs)
	}
	return 0
}

// Advance ticks every tracked window to the given instant, expiring state
// during stream silence.
func (e *Engine) Advance(now vtime.Time) {
	if advs := e.advs.Load(); advs != nil {
		for _, a := range *advs {
			a.Advance(now)
		}
	}
}

// Display returns (creating on first use) the materialized view behind a
// named display endpoint; OUTPUT TO d routes here. Lookups are
// case-insensitive. A nil schema is a pure lookup-or-create; a non-nil
// schema that conflicts with the existing display's (different arity or
// column types) is an error rather than a silently mismatched view.
func (e *Engine) Display(name string, schema *data.Schema) (*Materialize, error) {
	key := strings.ToLower(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.displays[key]; ok {
		if schema != nil && !schemaCompatible(d.mat.Schema(), schema) {
			return nil, fmt.Errorf("stream: display %q has schema %s, conflicting with %s",
				d.name, d.mat.Schema(), schema)
		}
		return d.mat, nil
	}
	m := NewMaterialize(schema)
	e.displays[key] = &display{name: name, mat: m}
	return m, nil
}

// MustDisplay is Display for statically compatible schemas; panics on a
// schema conflict.
func (e *Engine) MustDisplay(name string, schema *data.Schema) *Materialize {
	m, err := e.Display(name, schema)
	if err != nil {
		panic(err)
	}
	return m
}

// schemaCompatible reports whether two display schemas describe the same
// physical rows: same arity, same column types position by position.
// Column names may differ (queries alias freely); values are positional.
func schemaCompatible(a, b *data.Schema) bool {
	if a == nil || b == nil {
		return true
	}
	if a.Arity() != b.Arity() {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i].Type != b.Cols[i].Type {
			return false
		}
	}
	return true
}

// Displays lists display names as registered (original case), sorted.
func (e *Engine) Displays() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.displays))
	for _, d := range e.displays {
		out = append(out, d.name)
	}
	sort.Strings(out)
	return out
}
