package stream

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// valueEq compares wire-decoded values bit-exactly: floats by their IEEE
// pattern (NaN round-trips), everything else by the tagged payload.
func valueEq(a, b data.Value) bool {
	if a.T != b.T {
		return false
	}
	switch a.T {
	case data.TFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case data.TString:
		return a.S == b.S
	default:
		return a.I == b.I
	}
}

func tuplesEq(a, b []data.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TS != b[i].TS || a[i].Op != b[i].Op || len(a[i].Vals) != len(b[i].Vals) {
			return false
		}
		for j := range a[i].Vals {
			if !valueEq(a[i].Vals[j], b[i].Vals[j]) {
				return false
			}
		}
	}
	return true
}

// decodeBody runs one batch decode over body with a fresh decoder.
func decodeBody(t *testing.T, body []byte) ([]data.Tuple, error) {
	t.Helper()
	var dec batchDecoder
	br := byteReader{b: body}
	ts, err := dec.decode(&br)
	if err == nil && br.off != len(body) {
		t.Fatalf("decode left %d trailing bytes", len(body)-br.off)
	}
	return ts, err
}

func roundTrip(t *testing.T, ts []data.Tuple) {
	t.Helper()
	body := appendBatch(nil, ts)
	got, err := decodeBody(t, body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !tuplesEq(ts, got) {
		t.Fatalf("round trip mismatch:\n in  %v\n out %v", ts, got)
	}
}

// TestWireRoundTripAllTypes: one column per value type, NULLs sprinkled
// per column, both polarities, negative timestamps.
func TestWireRoundTripAllTypes(t *testing.T) {
	mk := func(i int) data.Tuple {
		tu := data.Tuple{
			TS: vtime.Time(int64(i-2) * 1_000_000),
			Op: data.Op(i % 2),
			Vals: []data.Value{
				data.Int(int64(i) - 3),
				data.Float(float64(i) * 1.5),
				data.Str(strings.Repeat("x", i)),
				data.Bool(i%3 == 0),
				{T: data.TTime, I: int64(i) * 7},
				data.Null,
			},
		}
		if i%2 == 0 {
			tu.Vals[i%5] = data.Null // punch NULLs through every column
		}
		return tu
	}
	var ts []data.Tuple
	for i := 0; i < 17; i++ {
		ts = append(ts, mk(i))
	}
	roundTrip(t, ts)
}

// TestWireRoundTripEdges: single tuples, empty strings, zero-column rows,
// all-null columns, extreme numerics.
func TestWireRoundTripEdges(t *testing.T) {
	for _, ts := range [][]data.Tuple{
		{{TS: 0, Vals: nil}},
		{{TS: -1, Op: data.Delete, Vals: []data.Value{}}},
		{{TS: math.MaxInt64, Vals: []data.Value{data.Int(math.MinInt64)}}},
		{{TS: 1, Vals: []data.Value{data.Float(math.NaN())}},
			{TS: 2, Vals: []data.Value{data.Float(math.Inf(-1))}}},
		{{TS: 1, Vals: []data.Value{data.Str("")}}, {TS: 2, Vals: []data.Value{data.Str("héllo, wörld")}}},
		{{TS: 1, Vals: []data.Value{data.Null, data.Null}}, {TS: 2, Vals: []data.Value{data.Null, data.Null}}},
		{{TS: 1, Op: data.Delete, Vals: []data.Value{data.Bool(true)}},
			{TS: 1, Op: data.Delete, Vals: []data.Value{data.Bool(false)}}},
	} {
		roundTrip(t, ts)
	}
}

// TestWireRoundTripEmptyBatch: a zero-row body decodes to an empty batch.
func TestWireRoundTripEmptyBatch(t *testing.T) {
	got, err := decodeBody(t, appendUvarint(nil, 0))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: got %v, %v", got, err)
	}
}

// TestWireRoundTripMixedColumn: a column whose rows disagree on type
// takes the tagged fallback and still round-trips.
func TestWireRoundTripMixedColumn(t *testing.T) {
	roundTrip(t, []data.Tuple{
		{TS: 1, Vals: []data.Value{data.Int(1), data.Str("a")}},
		{TS: 2, Vals: []data.Value{data.Float(2.5), data.Str("b")}},
		{TS: 3, Vals: []data.Value{data.Null, data.Bool(true)}},
	})
}

// TestWireRoundTripRagged: rows of differing arity take the row-oriented
// fallback mode.
func TestWireRoundTripRagged(t *testing.T) {
	ts := []data.Tuple{
		{TS: 1, Vals: []data.Value{data.Int(1)}},
		{TS: 2, Op: data.Delete, Vals: []data.Value{data.Int(2), data.Str("two")}},
		{TS: 3, Vals: nil},
	}
	body := appendBatch(nil, ts)
	if body[len(appendUvarint(nil, uint64(len(ts))))] != batchModeRows {
		t.Fatal("ragged batch must use row mode")
	}
	roundTrip(t, ts)
}

// TestWireRoundTripLarge: a frame-filling batch (every type, heavy
// strings) survives — the "max-size batch" case.
func TestWireRoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := make([]data.Tuple, 8192)
	for i := range ts {
		ts[i] = data.Tuple{TS: vtime.Time(rng.Int63()), Op: data.Op(rng.Intn(2)), Vals: randVals(rng, 6)}
	}
	roundTrip(t, ts)
}

// randVals draws n values across every type, biased toward NULLs and
// strings of assorted lengths.
func randVals(rng *rand.Rand, n int) []data.Value {
	vals := make([]data.Value, n)
	for j := range vals {
		switch rng.Intn(7) {
		case 0:
			vals[j] = data.Null
		case 1:
			vals[j] = data.Int(rng.Int63() - rng.Int63())
		case 2:
			vals[j] = data.Float(rng.NormFloat64())
		case 3:
			vals[j] = data.Str(strings.Repeat("s", rng.Intn(64)))
		case 4:
			vals[j] = data.Bool(rng.Intn(2) == 0)
		case 5:
			vals[j] = data.Value{T: data.TTime, I: rng.Int63()}
		case 6:
			vals[j] = data.Str("") // empty string vs NULL must stay distinct
		}
	}
	return vals
}

// TestWireRoundTripProperty: randomized batches across shapes — the
// property form of the round-trip law enc(dec(x)) == x.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(100)
		ncols := rng.Intn(8)
		ts := make([]data.Tuple, n)
		for i := range ts {
			ts[i] = data.Tuple{TS: vtime.Time(rng.Int63() - rng.Int63()), Op: data.Op(rng.Intn(2)), Vals: randVals(rng, ncols)}
		}
		roundTrip(t, ts)
	}
}

// TestWireDecodeGarbage: corrupted and truncated batch bodies must error
// (or decode to something self-consistent), never panic or over-allocate.
func TestWireDecodeGarbage(t *testing.T) {
	valid := appendBatch(nil, []data.Tuple{
		{TS: 1, Vals: []data.Value{data.Int(1), data.Str("abc"), data.Null}},
		{TS: 2, Op: data.Delete, Vals: []data.Value{data.Int(2), data.Str("defg"), data.Float(1.5)}},
	})
	var dec batchDecoder
	// Every truncation of a valid body.
	for cut := 0; cut < len(valid); cut++ {
		br := byteReader{b: valid[:cut]}
		dec.decode(&br)
	}
	// Every single-byte corruption.
	for i := range valid {
		for _, delta := range []byte{1, 0x7F, 0xFF} {
			mut := append([]byte(nil), valid...)
			mut[i] += delta
			br := byteReader{b: mut}
			dec.decode(&br)
		}
	}
	// Headers claiming absurd sizes must reject before allocating.
	for _, b := range [][]byte{
		appendUvarint(nil, 1<<40), // rows beyond the body
		append(appendUvarint(nil, 2), batchModeColumnar, 0xFF, 0xFF, 4), // huge ncols
	} {
		br := byteReader{b: b}
		if _, err := dec.decode(&br); err == nil {
			t.Fatalf("absurd header %v must not decode", b)
		}
	}
}

// FuzzWireBatch: arbitrary bytes must never panic the decoder, and
// whatever does decode must satisfy the round-trip law when re-encoded.
func FuzzWireBatch(f *testing.F) {
	f.Add(appendUvarint(nil, 0))
	f.Add(appendBatch(nil, []data.Tuple{{TS: 5, Vals: []data.Value{data.Int(9), data.Float(2.5)}}}))
	f.Add(appendBatch(nil, []data.Tuple{
		{TS: 1, Op: data.Delete, Vals: []data.Value{data.Str("a"), data.Null, data.Bool(true)}},
		{TS: 2, Vals: []data.Value{data.Str("bb"), data.Int(3), data.Bool(false)}},
	}))
	f.Add(appendBatch(nil, []data.Tuple{{TS: 3, Vals: []data.Value{data.Int(1)}}, {TS: 4, Vals: nil}}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		var dec batchDecoder
		br := byteReader{b: b}
		ts, err := dec.decode(&br)
		if err != nil {
			return
		}
		if len(ts) == 0 {
			return
		}
		// Copy out of the decoder scratch, re-encode, re-decode: the result
		// must match the first decode exactly.
		first := make([]data.Tuple, len(ts))
		copy(first, ts)
		body := appendBatch(nil, first)
		var dec2 batchDecoder
		br2 := byteReader{b: body}
		again, err := dec2.decode(&br2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !tuplesEq(first, again) {
			t.Fatalf("round-trip law broken:\n in  %v\n out %v", first, again)
		}
	})
}

// e7Batch builds the E7-shaped numeric batch (int key, float value) the
// exchange ships per shard per epoch.
func e7Batch(n int) []data.Tuple {
	ts := make([]data.Tuple, n)
	for i := range ts {
		ts[i] = data.Tuple{TS: vtime.Time(i), Vals: []data.Value{data.Int(int64(i % 50)), data.Float(float64(i))}}
	}
	return ts
}

// BenchmarkWireEncode measures the columnar encode of a 64-row numeric
// batch into a reused buffer — the steady-state coordinator send path
// (expected: 0 allocs/op).
func BenchmarkWireEncode(b *testing.B) {
	run := func(b *testing.B, ts []data.Tuple) {
		buf := appendBatch(nil, ts)
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendBatch(buf[:0], ts)
		}
	}
	b.Run("numeric64", func(b *testing.B) { run(b, e7Batch(64)) })
	b.Run("strings64", func(b *testing.B) {
		ts := e7Batch(64)
		for i := range ts {
			ts[i].Vals = append(ts[i].Vals, data.Str("sensor-payload"))
		}
		run(b, ts)
	})
}

// BenchmarkWireDecode measures the columnar decode of the same batch —
// the steady-state worker receive path. The per-frame values arena is
// the one expected allocation (decoded tuples outlive the frame); the
// tuple scratch is reused.
func BenchmarkWireDecode(b *testing.B) {
	run := func(b *testing.B, ts []data.Tuple) {
		body := appendBatch(nil, ts)
		var dec batchDecoder
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			br := byteReader{b: body}
			if _, err := dec.decode(&br); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("numeric64", func(b *testing.B) { run(b, e7Batch(64)) })
	b.Run("strings64", func(b *testing.B) {
		ts := e7Batch(64)
		for i := range ts {
			ts[i].Vals = append(ts[i].Vals, data.Str("sensor-payload"))
		}
		run(b, ts)
	})
}
