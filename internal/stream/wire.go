package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"unsafe"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// vtimeFrom rebuilds a timestamp from its wire representation.
func vtimeFrom(u uint64) vtime.Time { return vtime.Time(int64(u)) }

// The binary wire layer. Every frame on an exchange connection is
//
//	[u32 LE length][u8 kind][body]
//
// where length counts the kind byte plus the body. Bodies of hot-path
// frames (data, result, tick, ack, flush, close, checkpoint, ckptState)
// are hand-rolled so the steady-state data path encodes and decodes with
// zero allocations; only the deploy frame still carries a gob payload
// (replica specs are cold-path and deeply structured). Frame kinds keep
// their PR-4 numbering, so the protocol stays compatible at the
// frame-kind level even though the body encoding changed.
//
// Every body begins with a uvarint stream id: shard deployments
// multiplexed over one physical connection each own an id (mux.go), and
// the plain engine transport (Server/Remote) uses stream 0.
//
// Batches travel columnar: the timestamp vector, the delete-polarity
// bitmap, and then each column as a contiguous typed vector with a null
// bitmap — int64/time as fixed 8-byte little-endian, float64 as its IEEE
// bit pattern, bool as one byte, string as uvarint length + bytes. A
// column whose non-null values disagree on type (legal but rare: Vals is
// positional against a schema, yet nothing enforces it on the wire)
// falls back to a per-value tagged encoding, and a ragged batch (rows of
// differing arity) falls back to a row-oriented mode. The fallbacks
// trade speed for generality; the fast path is what the exchange emits.

// wireMaxFrame bounds one frame's kind+body. Large enough for any batch
// the exchange emits (batches are epoch-sized), small enough that a
// garbage length prefix from a non-protocol peer fails fast instead of
// waiting on a gigabyte that never comes.
const wireMaxFrame = 1 << 26

// wireFlushBytes is the write-combining threshold: producers buffer
// encoded frames per connection and flush once this much is pending (or
// at a tick/barrier, whichever comes first), amortizing syscalls across
// the many small frames one epoch produces.
const wireFlushBytes = 32 << 10

// Batch body layout discriminators.
const (
	batchModeColumnar = 0 // arity-uniform batch, columnar vectors
	batchModeRows     = 1 // ragged batch, row-oriented fallback
)

// colMixed tags a column whose non-null values span several types; it is
// deliberately outside the data.Type range.
const colMixed = 0xFF

// Decode-side resource bounds. A hostile or corrupt batch header must not
// make the decoder allocate out of proportion to the bytes received: an
// all-null column costs one byte on the wire but a full arena column in
// memory, so row and cell counts are capped beyond what any real epoch
// batch approaches.
const (
	maxBatchCols  = 1 << 12
	maxBatchCells = 1 << 22
)

// wireWriter accumulates encoded frames in one reusable buffer and
// writes them to the connection in a single syscall per flush. Not
// goroutine-safe; callers serialize through the owning connection's
// write lock.
type wireWriter struct {
	conn net.Conn
	buf  []byte
}

// begin opens a frame of the given kind and returns the patch mark for
// end. Between begin and end the caller appends the body to w.buf.
func (w *wireWriter) begin(kind frameKind) int {
	w.buf = append(w.buf, 0, 0, 0, 0, byte(kind))
	return len(w.buf) - 5
}

// end patches the length prefix of the frame opened at mark.
func (w *wireWriter) end(mark int) {
	binary.LittleEndian.PutUint32(w.buf[mark:], uint32(len(w.buf)-mark-4))
}

// buffered reports bytes encoded but not yet written to the connection.
func (w *wireWriter) buffered() int { return len(w.buf) }

// flush writes everything buffered in one syscall.
func (w *wireWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.conn.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// appendUvarint appends v as a varint.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendU64 appends v little-endian.
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// appendWireString appends a length-prefixed string.
func appendWireString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendValuePayload appends one value's payload for its type tag (no
// tag byte; the column header or the per-value tag carries it).
func appendValuePayload(b []byte, v data.Value) []byte {
	switch v.T {
	case data.TInt, data.TTime:
		return appendU64(b, uint64(v.I))
	case data.TFloat:
		return appendU64(b, uint64(float64bits(v.F)))
	case data.TBool:
		if v.I != 0 {
			return append(b, 1)
		}
		return append(b, 0)
	case data.TString:
		return appendWireString(b, v.S)
	}
	return b // TNull: no payload
}

func float64bits(f float64) uint64 { return *(*uint64)(unsafe.Pointer(&f)) }

func float64from(u uint64) float64 { return *(*float64)(unsafe.Pointer(&u)) }

// appendBatch appends the batch body (without the frame header or the
// stream id prefix). len(ts) > 0.
func appendBatch(b []byte, ts []data.Tuple) []byte {
	n := len(ts)
	b = appendUvarint(b, uint64(n))
	ncols := len(ts[0].Vals)
	for _, t := range ts[1:] {
		if len(t.Vals) != ncols {
			return appendBatchRows(b, ts)
		}
	}
	b = append(b, batchModeColumnar)
	b = appendUvarint(b, uint64(ncols))
	for _, t := range ts {
		b = appendU64(b, uint64(t.TS))
	}
	b = appendBitmap(b, ts, func(t data.Tuple) bool { return t.Op == data.Delete })
	for col := 0; col < ncols; col++ {
		b = appendColumn(b, ts, col)
	}
	return b
}

// appendBitmap appends an LSB-first bitmap with one bit per tuple.
func appendBitmap(b []byte, ts []data.Tuple, bit func(data.Tuple) bool) []byte {
	var acc byte
	for i, t := range ts {
		if bit(t) {
			acc |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			b = append(b, acc)
			acc = 0
		}
	}
	if len(ts)&7 != 0 {
		b = append(b, acc)
	}
	return b
}

// appendColumn appends one column: a type tag, then (for a uniform
// column) a null bitmap and the non-null payloads contiguously, or (for
// a mixed column) a per-value tagged encoding.
func appendColumn(b []byte, ts []data.Tuple, col int) []byte {
	tag := data.TNull
	for _, t := range ts {
		vt := t.Vals[col].T
		if vt == data.TNull {
			continue
		}
		if tag == data.TNull {
			tag = vt
		} else if tag != vt {
			b = append(b, colMixed)
			for _, t := range ts {
				v := t.Vals[col]
				b = append(b, byte(v.T))
				b = appendValuePayload(b, v)
			}
			return b
		}
	}
	b = append(b, byte(tag))
	if tag == data.TNull {
		return b // all-null column: the tag alone encodes it
	}
	b = appendBitmap(b, ts, func(t data.Tuple) bool { return t.Vals[col].T == data.TNull })
	for _, t := range ts {
		if v := t.Vals[col]; v.T != data.TNull {
			b = appendValuePayload(b, v)
		}
	}
	return b
}

// appendBatchRows is the ragged-arity fallback: each row is encoded as
// timestamp, polarity, arity, then tagged values. The mode byte replaces
// the columnar one; the caller already wrote the row count.
func appendBatchRows(b []byte, ts []data.Tuple) []byte {
	b = append(b, batchModeRows)
	for _, t := range ts {
		b = appendU64(b, uint64(t.TS))
		b = append(b, byte(t.Op))
		b = appendUvarint(b, uint64(len(t.Vals)))
		for _, v := range t.Vals {
			b = append(b, byte(v.T))
			b = appendValuePayload(b, v)
		}
	}
	return b
}

// wireReader decodes frames off a connection, reusing one payload buffer
// across frames.
type wireReader struct {
	r   *bufio.Reader
	buf []byte
}

func newWireReader(conn io.Reader) *wireReader {
	return &wireReader{r: bufio.NewReaderSize(conn, 64<<10)}
}

// buffered reports bytes already received but not yet decoded — zero
// means the peer has nothing further in flight that we know of, which
// the worker uses to coalesce credit acks (remote.go).
func (r *wireReader) buffered() int { return r.r.Buffered() }

// next reads one frame. The returned body aliases the reader's scratch
// buffer and is valid until the next call.
func (r *wireReader) next() (frameKind, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > wireMaxFrame {
		return 0, nil, fmt.Errorf("stream: wire frame length %d out of range", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return 0, nil, err
	}
	return frameKind(r.buf[0]), r.buf[1:], nil
}

// byteReader walks a frame body with bounds checking: any overrun sets
// fail and subsequent reads return zero values, so decoders check once
// at the end instead of threading errors through every field.
type byteReader struct {
	b    []byte
	off  int
	fail bool
}

func (r *byteReader) u8() byte {
	if r.off >= len(r.b) {
		r.fail = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *byteReader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *byteReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail = true
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.fail = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *byteReader) rest() []byte {
	v := r.b[r.off:]
	r.off = len(r.b)
	return v
}

// wireString decodes a length-prefixed string with a copy (for the rare
// paths where no arena is prepared).
func (r *byteReader) wireString() string {
	n := int(r.uvarint())
	return string(r.bytes(n))
}

// batchDecoder turns batch bodies back into tuples. The tuple slice is
// scratch — reused across calls, so consumers must not retain it (the
// established batch convention: operators retain tuples, never the
// batch slice). The Vals of the decoded tuples live in one fresh arena
// per call, because windows retain pushed tuples indefinitely; string
// payloads likewise get one arena per string column. At epoch-sized
// batches both arenas amortize below one allocation per operation.
type batchDecoder struct {
	tuples []data.Tuple
}

// errBadBatch reports a structurally invalid batch body.
var errBadBatch = fmt.Errorf("stream: malformed wire batch")

// decode parses one batch body. The returned slice is valid until the
// next call.
func (d *batchDecoder) decode(r *byteReader) ([]data.Tuple, error) {
	n := int(r.uvarint())
	// Every row costs at least one body byte in either mode, so a row
	// count past the remaining bytes is garbage — reject before sizing
	// any scratch by it.
	if r.fail || n < 0 || n > len(r.b)-r.off {
		return nil, errBadBatch
	}
	if n == 0 {
		return d.tuples[:0], nil
	}
	mode := r.u8()
	if cap(d.tuples) < n {
		d.tuples = make([]data.Tuple, n)
	}
	ts := d.tuples[:n]
	switch mode {
	case batchModeColumnar:
		if err := d.decodeColumnar(r, ts); err != nil {
			return nil, err
		}
	case batchModeRows:
		if err := d.decodeRows(r, ts); err != nil {
			return nil, err
		}
	default:
		return nil, errBadBatch
	}
	if r.fail {
		return nil, errBadBatch
	}
	return ts, nil
}

func (d *batchDecoder) decodeColumnar(r *byteReader, ts []data.Tuple) error {
	n := len(ts)
	ncols := int(r.uvarint())
	if r.fail || ncols < 0 || ncols > maxBatchCols || n*ncols > maxBatchCells {
		return errBadBatch
	}
	// One flat values arena for the whole batch: decoded tuples are
	// retained by operators (windows), so the arena cannot be recycled,
	// but one allocation per frame beats one per tuple by the batch size.
	var arena []data.Value
	if ncols > 0 {
		arena = make([]data.Value, n*ncols)
	}
	for i := range ts {
		ts[i].TS = vtimeFrom(r.u64())
		if ncols > 0 {
			ts[i].Vals = arena[i*ncols : (i+1)*ncols : (i+1)*ncols]
		} else {
			ts[i].Vals = nil
		}
	}
	ops := r.bytes((n + 7) / 8)
	for i := range ts {
		if ops != nil && ops[i>>3]&(1<<(uint(i)&7)) != 0 {
			ts[i].Op = data.Delete
		} else {
			ts[i].Op = data.Insert
		}
	}
	for col := 0; col < ncols; col++ {
		if err := d.decodeColumn(r, ts, col); err != nil {
			return err
		}
	}
	return nil
}

func (d *batchDecoder) decodeColumn(r *byteReader, ts []data.Tuple, col int) error {
	tag := r.u8()
	if r.fail {
		return errBadBatch
	}
	if tag == colMixed {
		for i := range ts {
			v, ok := decodeTaggedValue(r)
			if !ok {
				return errBadBatch
			}
			ts[i].Vals[col] = v
		}
		return nil
	}
	vt := data.Type(tag)
	if vt == data.TNull {
		return nil // all-null column: Vals arena is already zero (NULL)
	}
	if vt > data.TTime {
		return errBadBatch
	}
	nulls := r.bytes((len(ts) + 7) / 8)
	if r.fail {
		return errBadBatch
	}
	isNull := func(i int) bool { return nulls[i>>3]&(1<<(uint(i)&7)) != 0 }
	if vt == data.TString {
		// Prescan the payload to size one string arena for the column, so
		// every string header can alias it without per-string copies.
		start := r.off
		total := 0
		for i := range ts {
			if isNull(i) {
				continue
			}
			sl := int(r.uvarint())
			if r.bytes(sl) == nil {
				return errBadBatch
			}
			total += sl
		}
		if r.fail {
			return errBadBatch
		}
		arena := make([]byte, 0, total)
		r.off = start
		for i := range ts {
			if isNull(i) {
				continue
			}
			b := r.bytes(int(r.uvarint()))
			pos := len(arena)
			arena = append(arena, b...)
			s := arena[pos:]
			var str string
			if len(s) > 0 {
				str = unsafe.String(&s[0], len(s))
			}
			ts[i].Vals[col] = data.Value{T: data.TString, S: str}
		}
		return nil
	}
	for i := range ts {
		if isNull(i) {
			continue
		}
		switch vt {
		case data.TInt, data.TTime:
			ts[i].Vals[col] = data.Value{T: vt, I: int64(r.u64())}
		case data.TFloat:
			ts[i].Vals[col] = data.Value{T: data.TFloat, F: float64from(r.u64())}
		case data.TBool:
			ts[i].Vals[col] = data.Value{T: data.TBool, I: int64(r.u8() & 1)}
		}
	}
	if r.fail {
		return errBadBatch
	}
	return nil
}

// decodeRows is the ragged-arity fallback decoder. Allocation per row is
// acceptable here: the exchange never produces ragged batches.
func (d *batchDecoder) decodeRows(r *byteReader, ts []data.Tuple) error {
	for i := range ts {
		ts[i].TS = vtimeFrom(r.u64())
		op := r.u8()
		if op > byte(data.Delete) {
			return errBadBatch
		}
		ts[i].Op = data.Op(op)
		nv := int(r.uvarint())
		if r.fail || nv < 0 || nv > len(r.b)-r.off {
			return errBadBatch
		}
		vals := make([]data.Value, nv)
		for j := range vals {
			v, ok := decodeTaggedValue(r)
			if !ok {
				return errBadBatch
			}
			vals[j] = v
		}
		ts[i].Vals = vals
	}
	return nil
}

// decodeTaggedValue reads one [tag][payload] value.
func decodeTaggedValue(r *byteReader) (data.Value, bool) {
	switch vt := data.Type(r.u8()); vt {
	case data.TNull:
		return data.Value{}, !r.fail
	case data.TInt, data.TTime:
		return data.Value{T: vt, I: int64(r.u64())}, !r.fail
	case data.TFloat:
		return data.Value{T: data.TFloat, F: float64from(r.u64())}, !r.fail
	case data.TBool:
		return data.Value{T: data.TBool, I: int64(r.u8() & 1)}, !r.fail
	case data.TString:
		return data.Value{T: data.TString, S: r.wireString()}, !r.fail
	}
	return data.Value{}, false
}
