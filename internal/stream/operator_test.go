package stream

import (
	"testing"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

func tempSchema() *data.Schema {
	s := data.NewSchema("t",
		data.Col("room", data.TString),
		data.Col("temp", data.TFloat),
	)
	s.IsStream = true
	return s
}

func temp(ts int64, room string, v float64) data.Tuple {
	return data.NewTuple(vtime.Time(ts)*vtime.Second, data.Str(room), data.Float(v))
}

func TestFilterPolarity(t *testing.T) {
	col := NewCollector(tempSchema())
	f := NewFilter(col, expr.MustBind(
		expr.Bin{Op: expr.OpGt, L: expr.C("temp"), R: expr.L(30.0)}, tempSchema()))
	f.Push(temp(1, "L1", 35))
	f.Push(temp(2, "L1", 25))
	f.Push(temp(3, "L1", 35).Negate())
	got := col.Snapshot()
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got[0].Op != data.Insert || got[1].Op != data.Delete {
		t.Fatalf("polarity: %v", got)
	}
	if f.Schema() != col.Schema() {
		t.Fatal("filter schema should be downstream schema")
	}
}

func TestProject(t *testing.T) {
	in := tempSchema()
	items := []ProjectItem{
		{Expr: expr.C("room")},
		{Expr: expr.Bin{Op: expr.OpMul, L: expr.C("temp"), R: expr.L(2.0)}, Alias: "double"},
	}
	out, err := OutSchema(in, items)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols[0].Name != "room" || out.Cols[1].Name != "double" || out.Cols[1].Type != data.TFloat {
		t.Fatalf("out schema = %s", out)
	}
	col := NewCollector(out)
	p, err := NewProject(col, in, items)
	if err != nil {
		t.Fatal(err)
	}
	p.Push(temp(1, "L1", 21))
	got := col.Snapshot()
	if got[0].Vals[1].AsFloat() != 42 {
		t.Fatalf("project result = %v", got)
	}
	// arity mismatch with downstream
	if _, err := NewProject(col, in, items[:1]); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// unbound expression
	if _, err := NewProject(col, in, []ProjectItem{{Expr: expr.C("x")}, {Expr: expr.C("y")}}); err == nil {
		t.Fatal("unbound projection accepted")
	}
	if _, err := OutSchema(in, []ProjectItem{{Expr: expr.C("nope")}}); err == nil {
		t.Fatal("OutSchema over missing column accepted")
	}
	// positional naming for computed columns
	out2, _ := OutSchema(in, []ProjectItem{{Expr: expr.Bin{Op: expr.OpAdd, L: expr.C("temp"), R: expr.L(1.0)}}})
	if out2.Cols[0].Name != "col1" {
		t.Fatalf("positional name = %q", out2.Cols[0].Name)
	}
}

func TestDistinctCounting(t *testing.T) {
	col := NewCollector(tempSchema())
	d := NewDistinct(col)
	a := temp(1, "L1", 20)
	d.Push(a)
	d.Push(a) // duplicate: suppressed
	if col.Len() != 1 {
		t.Fatalf("dup leaked: %v", col.Snapshot())
	}
	d.Push(a.Negate()) // 2→1: suppressed
	if col.Len() != 1 {
		t.Fatalf("early delete leaked")
	}
	d.Push(a.Negate()) // 1→0: emitted
	got := col.Snapshot()
	if len(got) != 2 || got[1].Op != data.Delete {
		t.Fatalf("snapshot = %v", got)
	}
	// deleting an unknown tuple is a no-op
	d.Push(temp(9, "zz", 1).Negate())
	if col.Len() != 2 {
		t.Fatal("unknown delete leaked")
	}
	if d.Schema() != col.Schema() {
		t.Fatal("schema passthrough")
	}
}

func TestTeeClonesTuples(t *testing.T) {
	a, b := NewCollector(tempSchema()), NewCollector(tempSchema())
	tee := NewTee(a, b)
	tee.Push(temp(1, "L1", 20))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("fanout failed")
	}
	// mutating one branch must not affect the other
	a.Snapshot()[0].Vals[0] = data.Str("X")
	if b.Snapshot()[0].Vals[0].AsString() != "L1" {
		t.Fatal("tee shares storage")
	}
	if tee.Schema() != a.Schema() {
		t.Fatal("tee schema")
	}
	if (&Tee{}).Schema() == nil {
		t.Fatal("empty tee schema should be non-nil")
	}
}

func TestCallbackAndCollector(t *testing.T) {
	n := 0
	cb := NewCallback(tempSchema(), func(data.Tuple) { n++ })
	cb.Push(temp(1, "L1", 20))
	if n != 1 || cb.Schema().Arity() != 2 {
		t.Fatal("callback")
	}
	c := NewCollector(tempSchema())
	c.Push(temp(1, "a", 1))
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset")
	}
}
