package stream

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

// restartWorker rebinds a shard worker on the exact address a previous
// one vacated — the "worker rejoins on its old endpoint" half of the
// elastic chaos. The rebind can transiently race the old listener's
// teardown, so it retries briefly.
func restartWorker(t *testing.T, addr string) *ShardWorker {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		w, err := NewShardWorker(addr, echoDeploy)
		if err == nil {
			return w
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("rebind worker on %s: %v", addr, lastErr)
	return nil
}

// TestShardPoolEvictionRedialRace hammers the process-wide connection
// pool with the elastic worst case: a worker is killed and rejoins on the
// same address over and over while many goroutines concurrently dial
// streams, deploy, push, and close. Link failures evict the shared
// physical connection while redials race to register a fresh one; under
// -race this proves eviction and redial cannot corrupt the pool, and the
// end-state assertions prove a dead connection can neither leak (refs
// held forever, socket pooled forever) nor be resurrected (handed to a
// later dial).
func TestShardPoolEvictionRedialRace(t *testing.T) {
	before := WorkerConnCount()
	w, err := NewShardWorker("127.0.0.1:0", echoDeploy)
	if err != nil {
		t.Fatal(err)
	}
	addr := w.Addr()

	const goroutines = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c, err := DialShard(addr, NewCollector(tempSchema()))
				if err != nil {
					continue // worker down this instant: next dial retries
				}
				c.SetStallTimeout(200 * time.Millisecond)
				// Any of these may fail when the kill lands mid-flight;
				// the invariant under test is pool consistency, not
				// per-operation success.
				if err := c.Deploy(nil, g, nil); err == nil {
					_ = c.SendBatch(g, "s0", []data.Tuple{temp(int64(i), "L1", 20)})
					_ = c.Flush()
				}
				_ = c.Close()
			}
		}(g)
	}

	// Kill-then-rejoin cycles on the same address while the dialers churn.
	for round := 0; round < 6; round++ {
		time.Sleep(10 * time.Millisecond)
		w.Close()
		w = restartWorker(t, addr)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	// No leak: every stream released its reference, so no physical
	// connection stays pooled.
	deadline := time.Now().Add(5 * time.Second)
	for WorkerConnCount() != before {
		if time.Now().After(deadline) {
			t.Fatalf("%d physical connections still pooled after every stream closed",
				WorkerConnCount()-before)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// No resurrection: with the worker alive, a fresh dial must get a
	// working connection — not any evicted carcass from the churn.
	c, err := DialShard(addr, NewCollector(tempSchema()))
	if err != nil {
		t.Fatalf("dial after churn: %v", err)
	}
	if err := c.Deploy(nil, 0, nil); err != nil {
		t.Fatalf("deploy after churn: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush after churn: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close after churn: %v", err)
	}
	w.Close()
}

// TestShardConnUndeploy: tearing one shard's replica off a stream leaves
// the stream's other shards serving, drops the undeployed shard's replay
// bookkeeping, and survives ticks (no advancer left to advance).
func TestShardConnUndeploy(t *testing.T) {
	w := startEchoWorker(t)
	col := NewCollector(tempSchema())
	c, err := DialShard(w.Addr(), col)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for shard := 0; shard < 2; shard++ {
		if err := c.Deploy(nil, shard, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SendBatch(0, "s0", []data.Tuple{temp(1, "L1", 20)}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(1, "s0", []data.Tuple{temp(2, "L2", 21)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := col.Len(); got != 2 {
		t.Fatalf("%d rows before undeploy, want 2", got)
	}

	if err := c.Undeploy(0); err != nil {
		t.Fatalf("undeploy: %v", err)
	}
	// The undeployed shard's input drops on the worker; shard 1 serves on.
	if err := c.SendBatch(0, "s0", []data.Tuple{temp(3, "L1", 22)}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(1, "s0", []data.Tuple{temp(4, "L2", 23)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Tick(vtime.Time(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := col.Len(); got != 3 {
		t.Fatalf("%d rows after undeploy, want 3 (shard 0's post-undeploy push must drop)", got)
	}
	// Undeploying a shard the stream no longer hosts is still just an
	// acked barrier (the replica map simply has nothing to delete).
	if err := c.Undeploy(7); err != nil {
		t.Fatalf("undeploy of an absent shard: %v", err)
	}
}

// TestRescaleValidation: the placement-change entry points reject
// malformed requests loudly instead of corrupting a serving set.
func TestRescaleValidation(t *testing.T) {
	s := NewShardSet(2)
	if err := s.Rescale([]string{""}); err == nil {
		t.Fatal("wrong-arity placement must be rejected")
	}
	if err := s.Rescale([]string{"", ""}); err == nil {
		t.Fatal("Rescale without elastic arming must be rejected")
	}
	if _, err := s.CheckpointAll(nil); err == nil {
		t.Fatal("CheckpointAll without elastic arming must be rejected")
	}

	armed := NewShardSet(2)
	armed.EnableElastic(FailoverConfig{})
	if err := armed.Rescale([]string{"", ""}); err == nil {
		t.Fatal("Rescale before Start must be rejected")
	}
	if _, err := armed.CheckpointAll(nil); err == nil {
		t.Fatal("CheckpointAll before Start must be rejected")
	}
}

func mustRescale(t *testing.T, s *ShardSet, loc []string) {
	t.Helper()
	if err := s.Rescale(loc); err != nil {
		t.Fatalf("rescale to %v: %v", loc, err)
	}
	if got := s.Placement(); fmt.Sprint(got) != fmt.Sprint(loc) {
		t.Fatalf("placement after rescale = %v, want %v", got, loc)
	}
}

// TestRescaleEndToEndDifferential walks a serving 4-shard deployment
// through the full placement matrix — drain onto one worker, scale to
// zero workers (all in-process), spread back out mixed — checking the
// materialized result against a lockstep serial reference after every
// move, and takes a CheckpointAll barrier (with sidecar) mid-serve.
// Planned rescales must never trip the failover machinery.
func TestRescaleEndToEndDifferential(t *testing.T) {
	h := newFoHarness(t, 4, 2, 2*time.Second)
	evs := foEvents(31, 400)
	a0, a1 := h.addrs[0], h.addrs[1]

	h.feed(evs[:100])
	h.check("before any rescale")

	// Drain: every shard onto worker 0; worker 1's now-idle connection
	// must leave the barrier set.
	mustRescale(t, h.set, []string{a0, a0, a0, a0})
	h.feed(evs[100:180])
	h.check("all shards drained onto one worker")

	// Scale to zero workers: every shard migrates in-process.
	mustRescale(t, h.set, []string{"", "", "", ""})
	h.feed(evs[180:260])
	h.check("all shards in-process")

	// Spread back out: fresh dials to both workers, one shard stays home.
	mustRescale(t, h.set, []string{a0, a1, "", a1})
	h.feed(evs[260:340])
	h.check("mixed remote/local placement")

	// A coordinator-snapshot barrier mid-serve: every shard checkpoints
	// and the sidecar runs at the same consistency point.
	sidecarRan := false
	states, err := h.set.CheckpointAll(func() error { sidecarRan = true; return nil })
	if err != nil {
		t.Fatalf("CheckpointAll: %v", err)
	}
	if !sidecarRan || len(states) != 4 {
		t.Fatalf("CheckpointAll: sidecar=%v, %d states, want 4", sidecarRan, len(states))
	}
	for j, st := range states {
		if len(st) == 0 {
			t.Fatalf("shard %d checkpointed empty state", j)
		}
	}

	h.feed(evs[340:])
	h.check("final")
	if evts := h.failovers(); len(evts) != 0 {
		t.Fatalf("planned rescales ran failovers: %+v", evts)
	}
}

// TestRescaleHealBackToRejoinedWorker: a worker dies (unplanned
// failover moves its shards away), a replacement rejoins on the same
// address, and a rescale back to the intended placement heals the
// deployment — all while the result stays exact against serial.
func TestRescaleHealBackToRejoinedWorker(t *testing.T) {
	h := newFoHarness(t, 2, 2, 2*time.Second)
	evs := foEvents(33, 300)
	h.feed(evs[:100])
	h.checkpointAll()
	h.kill(1)
	h.feed(evs[100:160])
	h.check("after unplanned failover")

	h.restart(1)
	mustRescale(t, h.set, []string{h.addrs[0], h.addrs[1]})
	h.feed(evs[160:])
	h.check("after heal-back")
	evts := h.failovers()
	if len(evts) != 1 || evts[0].Err != nil {
		t.Fatalf("failovers = %+v, want exactly the one unplanned kill", evts)
	}
}

// TestElasticOnlyLocalToRemoteAndBack: a set armed with EnableElastic
// (no replay logs, zero hot-path overhead) serving in-process replicas
// rescales out to a real worker and back home. Covers the elastic-only
// checkpoint path: worker streams without a replay log get one armed
// just for the barrier and detached after.
func TestElasticOnlyLocalToRemoteAndBack(t *testing.T) {
	w, err := NewShardWorker("127.0.0.1:0", foDeploy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })

	mat := NewMaterialize(foOutSchema(t))
	merge := NewMerge(mat)
	refMat := NewMaterialize(foOutSchema(t))
	refHeads, _, _, err := foDeploy(nil, 0, nil, func(ts []data.Tuple) error {
		PushBatch(refMat, ts)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	refWin := refHeads["s0"]

	set := NewShardSet(2)
	set.EnableElastic(FailoverConfig{
		Sink:         merge,
		LocalDeploy:  foDeploy,
		StallTimeout: 2 * time.Second,
	})
	send := ResultSender(func(ts []data.Tuple) error {
		PushBatch(merge, ts)
		return nil
	})
	heads := make([]Operator, 2)
	for j := 0; j < 2; j++ {
		hm, advs, cks, err := foDeploy(nil, j, nil, send)
		if err != nil {
			t.Fatal(err)
		}
		heads[j] = hm["s0"]
		for _, a := range advs {
			set.Track(j, a)
		}
		set.SetLocalCks(j, cks)
	}
	sh, err := NewSharder(set, heads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	sh.SetName("s0")
	set.Start()
	t.Cleanup(set.Close)

	evs := foEvents(35, 300)
	feed := func(part []foEvent) {
		for _, ev := range part {
			if ev.tick != 0 {
				set.Advance(ev.tick)
				if adv, ok := refWin.(Advancer); ok {
					adv.Advance(ev.tick)
				}
				continue
			}
			sh.Push(ev.t.Clone())
			refWin.Push(ev.t.Clone())
		}
	}
	check := func(label string) {
		t.Helper()
		set.Flush()
		got := mat.MustSnapshot(nil, -1)
		want := refMat.MustSnapshot(nil, -1)
		SortTuples(got)
		SortTuples(want)
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
		}
		for i := range want {
			if !got[i].EqualVals(want[i]) {
				t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
			}
		}
	}

	feed(evs[:100])
	check("in-process before scale-out")

	// CheckpointAll on an all-local elastic set: the SetLocalCks-registered
	// checkpointers answer the barrier.
	states, err := set.CheckpointAll(nil)
	if err != nil {
		t.Fatalf("local CheckpointAll: %v", err)
	}
	if len(states) != 2 {
		t.Fatalf("local CheckpointAll: %d states, want 2", len(states))
	}

	// Scale out to the worker, serve, and checkpoint over the wire — the
	// elastic-only stream must arm a replay log just for the barrier.
	mustRescale(t, set, []string{w.Addr(), w.Addr()})
	feed(evs[100:200])
	check("after scale-out")
	if _, err := set.CheckpointAll(nil); err != nil {
		t.Fatalf("remote CheckpointAll: %v", err)
	}

	// And home again.
	mustRescale(t, set, []string{"", ""})
	feed(evs[200:])
	check("after scale-in")
}

// TestCoordinatorSpineCheckpointRoundTrip covers the checkpoint kinds a
// coordinator snapshot adds over worker checkpoints: the FinalMerge on
// the two-phase spine and the Materialize result sink. Restored
// instances must continue exactly where the originals left off,
// multiplicities included.
func TestCoordinatorSpineCheckpointRoundTrip(t *testing.T) {
	specs := []AggSpec{
		{Kind: AggCount, Alias: "n"},
		{Kind: AggSum, Arg: expr.C("temp"), Alias: "s"},
	}
	out, err := AggOutSchema(tempSchema(), []string{"room"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	build := func(col Operator) (*PartialAggregate, []Checkpointer) {
		t.Helper()
		fm, err := NewFinalMerge(col, tempSchema(), []string{"room"}, specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := NewPartialAggregate(fm, tempSchema(), []string{"room"}, specs)
		if err != nil {
			t.Fatal(err)
		}
		return pa, []Checkpointer{pa, fm}
	}
	prefix := ckWorkload(13, 40)
	suffix := ckWorkload(14, 40)

	colA := NewCollector(out)
	paA, cksA := build(colA)
	for _, tu := range prefix {
		paA.Push(tu.Clone())
	}
	state, err := EncodeCheckpoint(cksA)
	if err != nil {
		t.Fatal(err)
	}
	colB := NewCollector(out)
	paB, cksB := build(colB)
	if err := RestoreCheckpoint(cksB, state); err != nil {
		t.Fatal(err)
	}
	colA.Reset()
	for _, tu := range suffix {
		paA.Push(tu.Clone())
		paB.Push(tu.Clone())
	}
	got, want := colB.Snapshot(), colA.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("restored spine emitted %d deltas, original %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || !got[i].EqualVals(want[i]) {
			t.Fatalf("delta %d: restored %v, original %v", i, got[i], want[i])
		}
	}
}

func TestMaterializeCheckpointRoundTrip(t *testing.T) {
	matA := NewMaterialize(tempSchema())
	// Duplicates drive multiplicity > 1; the restore must carry counts,
	// not just distinct rows.
	rows := []data.Tuple{temp(1, "L1", 20), temp(1, "L1", 20), temp(2, "L2", 21), temp(3, "L3", 22)}
	for _, r := range rows {
		matA.Push(r.Clone())
	}
	state, err := EncodeCheckpoint([]Checkpointer{matA})
	if err != nil {
		t.Fatal(err)
	}
	matB := NewMaterialize(tempSchema())
	if err := RestoreCheckpoint([]Checkpointer{matB}, state); err != nil {
		t.Fatal(err)
	}
	compare := func(label string) {
		t.Helper()
		got := matB.MustSnapshot(nil, -1)
		want := matA.MustSnapshot(nil, -1)
		SortTuples(got)
		SortTuples(want)
		if len(got) != len(want) {
			t.Fatalf("%s: restored %d rows, original %d", label, len(got), len(want))
		}
		for i := range want {
			if !got[i].EqualVals(want[i]) {
				t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
			}
		}
	}
	compare("after restore")
	// One retraction of the duplicated row: both must drop one count, not
	// the whole row — proof the multiplicity survived the round-trip.
	del := temp(1, "L1", 20).Negate()
	matA.Push(del.Clone())
	matB.Push(del.Clone())
	compare("after retracting one duplicate")

	// Kind and shape mismatches must error, never corrupt.
	fm, err := NewFinalMerge(NewCollector(tempSchema()), tempSchema(), nil,
		[]AggSpec{{Kind: AggCount, Alias: "n"}}, nil)
	if err == nil {
		if err := RestoreCheckpoint([]Checkpointer{fm}, state); err == nil {
			t.Fatal("materialize state must not restore into a FinalMerge")
		}
	}
	bad := matA.CheckpointState()
	bad.Rows = &RowsState{Tuples: bad.Rows.Tuples, Counts: bad.Rows.Counts[:1]}
	if err := matB.RestoreState(bad); err == nil {
		t.Fatal("tuple/count length mismatch must fail")
	}
}

// TestDistinctAddrs covers the placement→candidate-list derivation.
func TestDistinctAddrs(t *testing.T) {
	got := distinctAddrs([]string{"", "b", "a", "b", "", "a"})
	want := []string{"b", "a"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("distinctAddrs = %v, want %v", got, want)
	}
	if out := distinctAddrs([]string{"", ""}); out != nil {
		t.Fatalf("all-local placement must derive no candidates, got %v", out)
	}
}
