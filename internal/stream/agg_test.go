package stream

import (
	"math/rand"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

func newAgg(t *testing.T, groupBy []string, specs []AggSpec, having expr.Expr) (*Aggregate, *Materialize) {
	t.Helper()
	out, err := AggOutSchema(tempSchema(), groupBy, specs)
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialize(out)
	a, err := NewAggregate(mat, tempSchema(), groupBy, specs, having)
	if err != nil {
		t.Fatal(err)
	}
	return a, mat
}

func TestAggregateGroupedAvg(t *testing.T) {
	a, mat := newAgg(t, []string{"room"},
		[]AggSpec{{Kind: AggAvg, Arg: expr.C("temp"), Alias: "avgtemp"}}, nil)
	a.Push(temp(1, "L1", 20))
	a.Push(temp(2, "L1", 30))
	a.Push(temp(3, "L2", 10))
	snap := mat.MustSnapshot([]OrderSpec{{Col: "room"}}, -1)
	if len(snap) != 2 {
		t.Fatalf("groups = %v", snap)
	}
	if snap[0].Vals[1].AsFloat() != 25 || snap[1].Vals[1].AsFloat() != 10 {
		t.Fatalf("avgs = %v", snap)
	}
	if a.Groups() != 2 {
		t.Fatalf("group count = %d", a.Groups())
	}
}

func TestAggregateRetractionUpdates(t *testing.T) {
	a, mat := newAgg(t, []string{"room"},
		[]AggSpec{{Kind: AggSum, Arg: expr.C("temp"), Alias: "s"}}, nil)
	x := temp(1, "L1", 20)
	a.Push(x)
	a.Push(temp(2, "L1", 5))
	if got := mat.MustSnapshot(nil, -1); got[0].Vals[1].AsFloat() != 25 {
		t.Fatalf("sum = %v", got)
	}
	a.Push(x.Negate()) // delete the 20
	got := mat.MustSnapshot(nil, -1)
	if len(got) != 1 || got[0].Vals[1].AsFloat() != 5 {
		t.Fatalf("after retraction = %v", got)
	}
	// empty the group entirely: result disappears
	a.Push(temp(3, "L1", 5).Negate())
	if mat.Len() != 0 {
		t.Fatalf("empty group lingers: %v", mat.MustSnapshot(nil, -1))
	}
	if a.Groups() != 0 {
		t.Fatal("group state leaked")
	}
}

func TestAggregateMinMaxWithDeletes(t *testing.T) {
	a, mat := newAgg(t, nil, []AggSpec{
		{Kind: AggMin, Arg: expr.C("temp"), Alias: "lo"},
		{Kind: AggMax, Arg: expr.C("temp"), Alias: "hi"},
	}, nil)
	v1, v2, v3 := temp(1, "x", 10), temp(2, "x", 30), temp(3, "x", 20)
	a.Push(v1)
	a.Push(v2)
	a.Push(v3)
	got := mat.MustSnapshot(nil, -1)
	if got[0].Vals[0].AsFloat() != 10 || got[0].Vals[1].AsFloat() != 30 {
		t.Fatalf("min/max = %v", got)
	}
	a.Push(v2.Negate()) // delete current max
	got = mat.MustSnapshot(nil, -1)
	if got[0].Vals[1].AsFloat() != 20 {
		t.Fatalf("max after delete = %v", got)
	}
	a.Push(v1.Negate()) // delete current min
	got = mat.MustSnapshot(nil, -1)
	if got[0].Vals[0].AsFloat() != 20 {
		t.Fatalf("min after delete = %v", got)
	}
}

func TestAggregateCountStar(t *testing.T) {
	a, mat := newAgg(t, []string{"room"}, []AggSpec{{Kind: AggCount, Alias: "n"}}, nil)
	a.Push(temp(1, "L1", 1))
	a.Push(temp(2, "L1", 2))
	got := mat.MustSnapshot(nil, -1)
	if got[0].Vals[1].AsInt() != 2 {
		t.Fatalf("count = %v", got)
	}
	// deletion of unknown group ignored
	a.Push(temp(3, "ZZ", 0).Negate())
	if a.Groups() != 1 {
		t.Fatal("phantom group created")
	}
}

func TestAggregateHaving(t *testing.T) {
	a, mat := newAgg(t, []string{"room"},
		[]AggSpec{{Kind: AggAvg, Arg: expr.C("temp"), Alias: "avgtemp"}},
		expr.Bin{Op: expr.OpGt, L: expr.C("avgtemp"), R: expr.L(25.0)})
	a.Push(temp(1, "L1", 20)) // avg 20: filtered
	if mat.Len() != 0 {
		t.Fatalf("having leaked: %v", mat.MustSnapshot(nil, -1))
	}
	a.Push(temp(2, "L1", 40)) // avg 30: passes
	if mat.Len() != 1 {
		t.Fatal("having blocked valid group")
	}
	a.Push(temp(3, "L1", 0)) // avg 20: drops out again
	if mat.Len() != 0 {
		t.Fatalf("having did not retract: %v", mat.MustSnapshot(nil, -1))
	}
}

func TestAggregateNullsSkipped(t *testing.T) {
	a, mat := newAgg(t, nil, []AggSpec{{Kind: AggAvg, Arg: expr.C("temp"), Alias: "m"}}, nil)
	a.Push(data.NewTuple(1, data.Str("L1"), data.Null))
	a.Push(temp(2, "L1", 10))
	got := mat.MustSnapshot(nil, -1)
	if got[0].Vals[0].AsFloat() != 10 {
		t.Fatalf("null not skipped: %v", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	col := NewCollector(tempSchema())
	if _, err := NewAggregate(col, tempSchema(), []string{"bogus"}, nil, nil); err == nil {
		t.Fatal("bad group col accepted")
	}
	if _, err := NewAggregate(col, tempSchema(), nil,
		[]AggSpec{{Kind: AggSum, Arg: expr.C("room")}}, nil); err == nil {
		t.Fatal("sum over string accepted")
	}
	if _, err := NewAggregate(col, tempSchema(), nil,
		[]AggSpec{{Kind: AggSum}}, nil); err == nil {
		t.Fatal("sum without argument accepted")
	}
	if _, err := NewAggregate(col, tempSchema(), nil,
		[]AggSpec{{Kind: AggCount, Arg: expr.C("nope")}}, nil); err == nil {
		t.Fatal("unbound agg arg accepted")
	}
	two := NewCollector(tempSchema())
	if _, err := NewAggregate(two, tempSchema(), nil,
		[]AggSpec{{Kind: AggCount}}, nil); err == nil {
		t.Fatal("downstream arity mismatch accepted")
	}
	// having over missing output column
	okDown := NewCollector(&data.Schema{Cols: make([]data.Column, 1)})
	if _, err := NewAggregate(okDown, tempSchema(), nil,
		[]AggSpec{{Kind: AggCount, Alias: "n"}}, expr.C("zzz")); err == nil {
		t.Fatal("unbound having accepted")
	}
}

func TestParseAggKind(t *testing.T) {
	for name, want := range map[string]AggKind{"count": AggCount, "SUM": AggSum, "Avg": AggAvg, "min": AggMin, "max": AggMax} {
		got, ok := ParseAggKind(name)
		if !ok || got != want {
			t.Errorf("ParseAggKind(%q) = %v %t", name, got, ok)
		}
	}
	if _, ok := ParseAggKind("median"); ok {
		t.Error("median should be unknown")
	}
	if AggAvg.String() != "avg" {
		t.Error("String")
	}
}

// Property: windowed aggregation equals recomputing the aggregate over the
// brute-force window contents at every point.
func TestWindowedAggregateEquivalence(t *testing.T) {
	a, mat := newAgg(t, []string{"room"},
		[]AggSpec{{Kind: AggSum, Arg: expr.C("temp"), Alias: "s"},
			{Kind: AggCount, Alias: "n"}}, nil)
	w := NewTimeWindow(a, 20*time.Second, 0)

	r := rand.New(rand.NewSource(9))
	var ref []data.Tuple
	now := vtime.Time(0)
	rooms := []string{"L1", "L2"}
	for i := 0; i < 200; i++ {
		now += vtime.Time(r.Int63n(int64(5 * vtime.Second)))
		tu := data.NewTuple(now, data.Str(rooms[r.Intn(2)]), data.Float(float64(r.Intn(50))))
		w.Push(tu)
		ref = append(ref, tu)
		ref = expireRef(ref, now, 20*time.Second)

		want := map[string]struct {
			sum float64
			n   int64
		}{}
		for _, rt := range ref {
			e := want[rt.Vals[0].AsString()]
			e.sum += rt.Vals[1].AsFloat()
			e.n++
			want[rt.Vals[0].AsString()] = e
		}
		snap := mat.MustSnapshot([]OrderSpec{{Col: "room"}}, -1)
		if len(snap) != len(want) {
			t.Fatalf("step %d: %d groups, want %d", i, len(snap), len(want))
		}
		for _, row := range snap {
			e := want[row.Vals[0].AsString()]
			if row.Vals[1].AsFloat() != e.sum || row.Vals[2].AsInt() != e.n {
				t.Fatalf("step %d: group %v: got (%v, %v) want (%v, %v)",
					i, row.Vals[0], row.Vals[1], row.Vals[2], e.sum, e.n)
			}
		}
	}
}
