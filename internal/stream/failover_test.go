package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

// This file is the shard-failover chaos matrix: checkpoint/restore
// round-trips per operator kind, and kill scenarios (during flush, during
// a failover's own deploy, double failure, kill-then-rejoin, a wedged but
// connected worker) driven against real loopback workers, always compared
// against a serial reference pipeline fed in lockstep.

// ---- checkpoint/restore round-trips per operator kind ----

// ckFeeder routes one deterministic workload tuple into an operator under
// test (joins alternate sides, everything else has one input head).
type ckFeeder func(i int, t data.Tuple)

// ckBuild constructs one operator kind in front of next and returns its
// feeder, its checkpointer, and its advancer (nil when timeless).
type ckBuild func(t *testing.T, next Operator) (ckFeeder, Checkpointer, Advancer)

func ckWorkload(seed int64, n int) []data.Tuple {
	rng := rand.New(rand.NewSource(seed))
	var out []data.Tuple
	var live []data.Tuple
	for i := 0; i < n; i++ {
		if len(live) > 0 && rng.Intn(4) == 0 {
			k := rng.Intn(len(live))
			del := live[k].Negate()
			del.TS = vtime.Time(i) * vtime.Second
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			out = append(out, del)
			continue
		}
		tu := temp(int64(i), fmt.Sprintf("L%d", rng.Intn(3)), float64(rng.Intn(5)))
		live = append(live, tu)
		out = append(out, tu)
	}
	return out
}

// TestCheckpointRestoreRoundTrip: for every stateful operator kind, feed a
// prefix workload into instance A, checkpoint it, restore into a fresh
// instance B, then feed the identical suffix to both — their emissions
// must match tuple for tuple, or the restored state diverged.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	aggSpecs := []AggSpec{
		{Kind: AggCount, Alias: "n"},
		{Kind: AggSum, Arg: expr.C("temp"), Alias: "s"},
		{Kind: AggMin, Arg: expr.C("temp"), Alias: "lo"},
		{Kind: AggMax, Arg: expr.C("temp"), Alias: "hi"},
		{Kind: AggAvg, Arg: expr.C("temp"), Alias: "m"},
	}
	outSchema := func(t *testing.T, partial bool) *data.Schema {
		t.Helper()
		var s *data.Schema
		var err error
		if partial {
			s, err = AggPartialSchema(tempSchema(), []string{"room"}, aggSpecs)
		} else {
			s, err = AggOutSchema(tempSchema(), []string{"room"}, aggSpecs)
		}
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	single := func(op Operator) ckFeeder { return func(_ int, t data.Tuple) { op.Push(t) } }
	cases := []struct {
		name   string
		schema func(t *testing.T) *data.Schema // collector schema
		build  ckBuild
	}{
		{"time-window", func(*testing.T) *data.Schema { return tempSchema() },
			func(t *testing.T, next Operator) (ckFeeder, Checkpointer, Advancer) {
				w := NewTimeWindow(next, 8*time.Second, 0)
				return single(w), w, w
			}},
		{"slide-window", func(*testing.T) *data.Schema { return tempSchema() },
			func(t *testing.T, next Operator) (ckFeeder, Checkpointer, Advancer) {
				w := NewTimeWindow(next, 8*time.Second, 2*time.Second)
				return single(w), w, w
			}},
		{"rows-window", func(*testing.T) *data.Schema { return tempSchema() },
			func(t *testing.T, next Operator) (ckFeeder, Checkpointer, Advancer) {
				w := NewRowsWindow(next, 5)
				return single(w), w, nil
			}},
		{"join", func(*testing.T) *data.Schema { return tempSchema().Concat(tempSchema()) },
			func(t *testing.T, next Operator) (ckFeeder, Checkpointer, Advancer) {
				j, err := NewJoin(next, tempSchema(), tempSchema(), []string{"room"}, []string{"room"}, nil)
				if err != nil {
					t.Fatal(err)
				}
				return func(i int, tu data.Tuple) {
					if i%2 == 0 {
						j.Left().Push(tu)
					} else {
						j.Right().Push(tu)
					}
				}, j, nil
			}},
		{"aggregate", func(t *testing.T) *data.Schema { return outSchema(t, false) },
			func(t *testing.T, next Operator) (ckFeeder, Checkpointer, Advancer) {
				a, err := NewAggregate(next, tempSchema(), []string{"room"}, aggSpecs,
					nil)
				if err != nil {
					t.Fatal(err)
				}
				return single(a), a, nil
			}},
		{"distinct", func(*testing.T) *data.Schema { return tempSchema() },
			func(t *testing.T, next Operator) (ckFeeder, Checkpointer, Advancer) {
				d := NewDistinct(next)
				return single(d), d, nil
			}},
		{"partial-aggregate", func(t *testing.T) *data.Schema { return outSchema(t, true) },
			func(t *testing.T, next Operator) (ckFeeder, Checkpointer, Advancer) {
				a, err := NewPartialAggregate(next, tempSchema(), []string{"room"}, aggSpecs)
				if err != nil {
					t.Fatal(err)
				}
				return single(a), a, nil
			}},
	}
	for _, tc := range cases {
		for _, masked := range []bool{false, true} {
			name := tc.name
			if masked {
				name += "/forced-collisions"
			}
			t.Run(name, func(t *testing.T) {
				if masked {
					old := SetTestHashMask(0)
					t.Cleanup(func() { SetTestHashMask(old) })
				}
				prefix := ckWorkload(3, 40)
				suffix := ckWorkload(4, 40)
				colA := NewCollector(tc.schema(t))
				feedA, ckA, advA := tc.build(t, colA)
				for i, tu := range prefix {
					feedA(i, tu.Clone())
				}
				if advA != nil {
					advA.Advance(20 * vtime.Second)
				}
				state, err := EncodeCheckpoint([]Checkpointer{ckA})
				if err != nil {
					t.Fatal(err)
				}
				colB := NewCollector(tc.schema(t))
				feedB, ckB, advB := tc.build(t, colB)
				if err := RestoreCheckpoint([]Checkpointer{ckB}, state); err != nil {
					t.Fatal(err)
				}
				colA.Reset()
				for i, tu := range suffix {
					feedA(i, tu.Clone())
					feedB(i, tu.Clone())
				}
				if advA != nil {
					advA.Advance(100 * vtime.Second)
					advB.Advance(100 * vtime.Second)
				}
				got, want := colB.Snapshot(), colA.Snapshot()
				if len(got) != len(want) {
					t.Fatalf("restored instance emitted %d deltas, original %d\ngot:  %v\nwant: %v",
						len(got), len(want), got, want)
				}
				for i := range want {
					if got[i].Op != want[i].Op || !got[i].EqualVals(want[i]) {
						t.Fatalf("delta %d: restored %v, original %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestCheckpointRestoreMismatches: restoring the wrong kind or a
// wrong-shape payload must error, not corrupt.
func TestCheckpointRestoreMismatches(t *testing.T) {
	w := NewTimeWindow(NewCollector(tempSchema()), time.Second, 0)
	d := NewDistinct(NewCollector(tempSchema()))
	state, err := EncodeCheckpoint([]Checkpointer{w})
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreCheckpoint([]Checkpointer{d}, state); err == nil {
		t.Fatal("window state must not restore into a distinct")
	}
	if err := RestoreCheckpoint([]Checkpointer{w, d}, state); err == nil {
		t.Fatal("operator count mismatch must fail")
	}
	if err := RestoreCheckpoint([]Checkpointer{w}, []byte{0x1, 0x2}); err == nil {
		t.Fatal("garbage payload must fail")
	}
	if err := RestoreCheckpoint([]Checkpointer{w}, nil); err != nil {
		t.Fatalf("empty checkpoint is the fresh state: %v", err)
	}
}

// ---- kill scenarios against loopback workers ----

// foSpecs is the aggregate shape of the failover harness pipeline.
func foSpecs() []AggSpec {
	return []AggSpec{
		{Kind: AggCount, Alias: "n"},
		{Kind: AggSum, Arg: expr.C("temp"), Alias: "s"},
	}
}

func foOutSchema(t *testing.T) *data.Schema {
	t.Helper()
	s, err := AggOutSchema(tempSchema(), []string{"room"}, foSpecs())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// foDeploy builds the harness replica: a 10s time window into a grouped
// aggregate, results shipping back through send. The checkpointer order
// (aggregate, then window) is fixed — both sides of a failover run this
// same builder.
func foDeploy(spec []byte, shard int, state []byte, send ResultSender) (map[string]Operator, []Advancer, []Checkpointer, error) {
	out, err := AggOutSchema(tempSchema(), []string{"room"}, foSpecs())
	if err != nil {
		return nil, nil, nil, err
	}
	agg, err := NewAggregate(&sendSink{schema: out, send: send}, tempSchema(), []string{"room"}, foSpecs(), nil)
	if err != nil {
		return nil, nil, nil, err
	}
	win := NewTimeWindow(agg, 10*time.Second, 0)
	cks := []Checkpointer{agg, win}
	if err := RestoreCheckpoint(cks, state); err != nil {
		return nil, nil, nil, err
	}
	return map[string]Operator{"s0": win}, []Advancer{win}, cks, nil
}

// foEvent is one harness workload step: a tuple or a clock tick.
type foEvent struct {
	t    data.Tuple
	tick vtime.Time
}

func foEvents(seed int64, n int) []foEvent {
	rng := rand.New(rand.NewSource(seed))
	var evs []foEvent
	var live []data.Tuple
	for i := 0; i < n; i++ {
		ts := vtime.Time(i) * vtime.Second
		if i%10 == 9 {
			evs = append(evs, foEvent{tick: ts})
			continue
		}
		if len(live) > 0 && rng.Intn(5) == 0 {
			k := rng.Intn(len(live))
			del := live[k].Negate()
			del.TS = ts
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			evs = append(evs, foEvent{t: del})
			continue
		}
		tu := temp(int64(i), fmt.Sprintf("L%d", rng.Intn(5)), float64(rng.Intn(7)))
		live = append(live, tu)
		evs = append(evs, foEvent{t: tu})
	}
	return evs
}

// foHarness is one failover scenario: P shards over loopback workers with
// failover armed, compared in lockstep against a serial reference of the
// same pipeline.
type foHarness struct {
	t       *testing.T
	mat     *Materialize
	set     *ShardSet
	sh      *Sharder
	addrs   []string
	workers []*ShardWorker // by index; nil once killed

	refMat *Materialize
	refWin *Window

	mu     sync.Mutex
	events []FailoverEvent
}

func newFoHarness(t *testing.T, p, nWorkers int, stall time.Duration) *foHarness {
	t.Helper()
	h := &foHarness{t: t}
	h.mat = NewMaterialize(foOutSchema(t))
	merge := NewMerge(h.mat)

	h.refMat = NewMaterialize(foOutSchema(t))
	refAgg, err := NewAggregate(h.refMat, tempSchema(), []string{"room"}, foSpecs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	h.refWin = NewTimeWindow(refAgg, 10*time.Second, 0)

	for i := 0; i < nWorkers; i++ {
		w, err := NewShardWorker("127.0.0.1:0", foDeploy)
		if err != nil {
			t.Fatal(err)
		}
		h.workers = append(h.workers, w)
		h.addrs = append(h.addrs, w.Addr())
		t.Cleanup(func() { w.Close() })
	}
	h.set = NewShardSet(p)
	h.set.EnableFailover(FailoverConfig{
		Nodes:           h.addrs,
		Sink:            merge,
		LocalDeploy:     foDeploy,
		CheckpointEvery: 2,
		StallTimeout:    stall,
		OnFailover: func(ev FailoverEvent) {
			h.mu.Lock()
			h.events = append(h.events, ev)
			h.mu.Unlock()
		},
	})
	conns := map[string]*ShardConn{}
	heads := make([]Operator, p)
	for j := 0; j < p; j++ {
		addr := h.addrs[j%nWorkers]
		c := conns[addr]
		if c == nil {
			c, err = DialShard(addr, merge)
			if err != nil {
				t.Fatal(err)
			}
			c.SetStallTimeout(stall)
			conns[addr] = c
		}
		h.set.SetRemote(j, c)
		if err := c.Deploy(nil, j, nil); err != nil {
			t.Fatal(err)
		}
		heads[j] = c.Head(tempSchema(), j, "s0")
	}
	h.sh, err = NewSharder(h.set, heads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	h.sh.SetName("s0")
	h.set.Start()
	t.Cleanup(h.set.Close)
	return h
}

// feed drives a workload slice into the sharded set and the serial
// reference in lockstep.
func (h *foHarness) feed(evs []foEvent) {
	for _, ev := range evs {
		if ev.tick != 0 {
			h.set.Advance(ev.tick)
			h.refWin.Advance(ev.tick)
			continue
		}
		h.sh.Push(ev.t.Clone())
		h.refWin.Push(ev.t.Clone())
	}
}

// kill severs a worker like a SIGKILL: every replica it hosts dies with
// its connections.
func (h *foHarness) kill(i int) {
	h.workers[i].Close()
	h.workers[i] = nil
}

// restart brings a fresh worker back up on a killed worker's address.
func (h *foHarness) restart(i int) {
	h.t.Helper()
	w, err := NewShardWorker(h.addrs[i], foDeploy)
	if err != nil {
		h.t.Fatal(err)
	}
	h.workers[i] = w
	h.t.Cleanup(func() { w.Close() })
}

// checkpointAll forces a committed checkpoint on every live connection, so
// a subsequent kill exercises restore-from-state rather than full replay.
func (h *foHarness) checkpointAll() {
	h.set.mu.RLock()
	conns := append([]*ShardConn(nil), h.set.uconns...)
	h.set.mu.RUnlock()
	for _, c := range conns {
		c.Checkpoint()
	}
}

// check flushes (the barrier must be exact whatever failovers ran) and
// compares the merged materialized result against the serial reference.
func (h *foHarness) check(label string) {
	h.t.Helper()
	h.set.Flush()
	got := h.mat.MustSnapshot(nil, -1)
	want := h.refMat.MustSnapshot(nil, -1)
	SortTuples(got)
	SortTuples(want)
	if len(got) != len(want) {
		h.t.Fatalf("%s: %d rows, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if !got[i].EqualVals(want[i]) {
			h.t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func (h *foHarness) failovers() []FailoverEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]FailoverEvent(nil), h.events...)
}

// TestFailoverKillDuringFlush kills a worker while a flush barrier is in
// flight: the flush must absorb the failover and still return an exact
// barrier.
func TestFailoverKillDuringFlush(t *testing.T) {
	h := newFoHarness(t, 2, 2, 2*time.Second)
	evs := foEvents(21, 200)
	h.feed(evs[:120])
	h.checkpointAll()
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(2 * time.Millisecond)
		h.kill(1)
	}()
	h.set.Flush()
	<-done
	h.check("mid-run flush across a kill")
	h.feed(evs[120:])
	h.check("final")
	evts := h.failovers()
	if len(evts) != 1 || evts[0].Err != nil {
		t.Fatalf("failovers = %+v, want exactly one clean failover", evts)
	}
	if evts[0].To != h.addrs[0] {
		t.Fatalf("failover landed on %q, want the surviving worker %q", evts[0].To, h.addrs[0])
	}
}

// TestFailoverDoubleKill kills both workers at different epochs: the
// second failover must land in-process and the result must stay exact.
func TestFailoverDoubleKill(t *testing.T) {
	h := newFoHarness(t, 4, 2, 2*time.Second)
	evs := foEvents(22, 300)
	h.feed(evs[:100])
	h.checkpointAll()
	h.kill(0)
	h.feed(evs[100:200])
	h.check("after first kill")
	h.kill(1)
	h.feed(evs[200:])
	h.check("after second kill")
	evts := h.failovers()
	if len(evts) < 2 {
		t.Fatalf("failovers = %+v, want two", evts)
	}
	for _, ev := range evts {
		if ev.Err != nil {
			t.Fatalf("failover abandoned shards: %+v", ev)
		}
	}
	if last := evts[len(evts)-1]; last.To != "" {
		t.Fatalf("second failover landed on %q, want in-process", last.To)
	}
}

// TestFailoverKillDuringDeploy kills both workers at the same instant: the
// first failover's deploy onto the "surviving" worker fails mid-failover
// and it must fall through — fresh dial refused, then in-process — without
// losing exactness.
func TestFailoverKillDuringDeploy(t *testing.T) {
	h := newFoHarness(t, 2, 2, time.Second)
	evs := foEvents(23, 200)
	h.feed(evs[:80])
	h.checkpointAll()
	h.kill(0)
	h.kill(1)
	h.feed(evs[80:])
	h.check("after simultaneous kills")
	for _, ev := range h.failovers() {
		if ev.Err != nil {
			t.Fatalf("failover abandoned shards: %+v", ev)
		}
		if ev.To != "" {
			t.Fatalf("failover landed on %q, want in-process (both workers dead)", ev.To)
		}
	}
}

// TestFailoverKillThenRejoin: after the first worker dies and its shards
// move to the survivor, a fresh worker rejoins on the dead address; when
// the survivor then dies too, the failover must redeploy onto the rejoined
// worker rather than in-process.
func TestFailoverKillThenRejoin(t *testing.T) {
	h := newFoHarness(t, 2, 2, 2*time.Second)
	evs := foEvents(24, 300)
	h.feed(evs[:100])
	h.checkpointAll()
	h.kill(1)
	h.feed(evs[100:180])
	h.check("after first kill")
	h.restart(1)
	h.kill(0)
	h.feed(evs[180:])
	h.check("after kill with rejoined worker")
	evts := h.failovers()
	if len(evts) != 2 {
		t.Fatalf("failovers = %+v, want two", evts)
	}
	if evts[0].To != h.addrs[0] {
		t.Fatalf("first failover landed on %q, want %q", evts[0].To, h.addrs[0])
	}
	if evts[1].To != h.addrs[1] {
		t.Fatalf("second failover landed on %q, want the rejoined worker %q", evts[1].To, h.addrs[1])
	}
}

// wedgeDeploy is foDeploy behind a gate operator: while the gate is shut,
// processing a data frame blocks the worker's frame loop — the worker
// stays connected but stops acking, the stalled-but-alive failure mode.
func wedgeDeploy(gate chan struct{}) DeployFunc {
	return func(spec []byte, shard int, state []byte, send ResultSender) (map[string]Operator, []Advancer, []Checkpointer, error) {
		heads, advs, cks, err := foDeploy(spec, shard, state, send)
		if err != nil {
			return nil, nil, nil, err
		}
		return map[string]Operator{"s0": &gateOp{next: heads["s0"], gate: gate}}, advs, cks, nil
	}
}

type gateOp struct {
	next Operator
	gate chan struct{}
}

func (g *gateOp) Schema() *data.Schema { return g.next.Schema() }
func (g *gateOp) Push(t data.Tuple) {
	<-g.gate
	g.next.Push(t)
}

// TestFailoverWedgedWorkerFlushDeadline is the regression test for the
// stalled-but-connected worker: its TCP session stays up but it stops
// acking, so a flush barrier would wait forever without the configured
// ack deadline. The deadline must convert the hang into a detected
// failure, and failover (no other worker: in-process) must keep the
// result exact — the flush returns an exact barrier instead of hanging.
func TestFailoverWedgedWorkerFlushDeadline(t *testing.T) {
	gate := make(chan struct{})
	w, err := NewShardWorker("127.0.0.1:0", wedgeDeploy(gate))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	// Registered after the worker's Close, so it runs first (LIFO):
	// releasing the gate lets the wedged frame loop drain and Close return.
	t.Cleanup(func() { close(gate) })

	h := &foHarness{t: t}
	h.mat = NewMaterialize(foOutSchema(t))
	merge := NewMerge(h.mat)
	h.refMat = NewMaterialize(foOutSchema(t))
	refAgg, err := NewAggregate(h.refMat, tempSchema(), []string{"room"}, foSpecs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	h.refWin = NewTimeWindow(refAgg, 10*time.Second, 0)

	const stall = 300 * time.Millisecond
	h.set = NewShardSet(2)
	h.set.EnableFailover(FailoverConfig{
		// No checkpoint cadence and fewer sends than the credit window
		// below: the flush-ack deadline itself must detect the stall.
		Nodes: []string{w.Addr()}, Sink: merge, LocalDeploy: foDeploy,
		CheckpointEvery: 1 << 20, StallTimeout: stall,
		OnFailover: func(ev FailoverEvent) {
			h.mu.Lock()
			h.events = append(h.events, ev)
			h.mu.Unlock()
		},
	})
	c, err := DialShard(w.Addr(), merge)
	if err != nil {
		t.Fatal(err)
	}
	c.SetStallTimeout(stall)
	for j := 0; j < 2; j++ {
		h.set.SetRemote(j, c)
		if err := c.Deploy(nil, j, nil); err != nil {
			t.Fatal(err)
		}
	}
	h.sh, err = NewSharder(h.set, []Operator{c.Head(tempSchema(), 0, "s0"), c.Head(tempSchema(), 1, "s0")}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	h.sh.SetName("s0")
	h.set.Start()
	t.Cleanup(h.set.Close)

	evs := foEvents(25, 120)
	h.feed(evs[:20]) // the first data frame wedges the worker's frame loop
	if err := c.Err(); err != nil {
		t.Fatalf("stall detected before the flush barrier ran: %v", err)
	}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.set.Flush()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("flush on a wedged worker hung: the ack deadline did not fire")
	}
	if waited := time.Since(start); waited < stall/2 {
		t.Fatalf("flush returned in %v, before the %v ack deadline could have detected the stall", waited, stall)
	}
	h.check("after wedged-worker failover")
	h.feed(evs[20:])
	h.check("final")
	evts := h.failovers()
	if len(evts) != 1 || evts[0].Err != nil || evts[0].To != "" {
		t.Fatalf("failovers = %+v, want one clean in-process failover", evts)
	}
}

// TestFailoverAbandonWithoutCandidates: a single worker, no local builder
// — when it dies there is nowhere to go. The failover must report the
// abandonment through OnFailover (fail-stop semantics), later sends must
// drop without accumulating, and Flush must still return.
func TestFailoverAbandonWithoutCandidates(t *testing.T) {
	w, err := NewShardWorker("127.0.0.1:0", foDeploy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	mat := NewMaterialize(foOutSchema(t))
	merge := NewMerge(mat)
	set := NewShardSet(2)
	var events []FailoverEvent
	var mu sync.Mutex
	set.EnableFailover(FailoverConfig{
		Nodes: []string{w.Addr()}, Sink: merge, LocalDeploy: nil, // no last resort
		StallTimeout: 500 * time.Millisecond,
		OnFailover: func(ev FailoverEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	c, err := DialShard(w.Addr(), merge)
	if err != nil {
		t.Fatal(err)
	}
	c.SetStallTimeout(500 * time.Millisecond)
	heads := make([]Operator, 2)
	for j := 0; j < 2; j++ {
		set.SetRemote(j, c)
		if err := c.Deploy(nil, j, nil); err != nil {
			t.Fatal(err)
		}
		heads[j] = c.Head(tempSchema(), j, "s0")
	}
	sh, err := NewSharder(set, heads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	sh.SetName("s0")
	set.Start()
	t.Cleanup(set.Close)

	sh.Push(temp(1, "L1", 20))
	set.Flush()
	if mat.Len() == 0 {
		t.Fatal("no rows before the kill")
	}
	w.Close()
	sh.Push(temp(2, "L2", 21))
	set.Flush() // must absorb the abandonment, not hang
	mu.Lock()
	evts := append([]FailoverEvent(nil), events...)
	mu.Unlock()
	if len(evts) != 1 || evts[0].Err == nil {
		t.Fatalf("events = %+v, want one abandonment", evts)
	}
	// Dropped-log conn: further traffic must not accumulate anywhere.
	sh.Push(temp(3, "L3", 22))
	set.Advance(vtime.Time(time.Hour))
	set.Flush()
	c.flog.mu.Lock()
	n := len(c.flog.in)
	c.flog.mu.Unlock()
	if n != 0 {
		t.Fatalf("abandoned connection accumulated %d log entries", n)
	}
}

// TestFailoverAbandonAllCandidatesFail drives the abandonment branch the
// hard way: candidates exist but every one of them fails — the only other
// configured worker address refuses connections, and the in-process last
// resort errors out of its builder. The failover must walk the full
// candidate ladder, report abandonment with the failed worker's shards,
// drop the replay log, and leave the deployment fail-stopped: later input
// to the abandoned shards drops without accumulating anywhere, and
// Advance/Flush/Close stay non-blocking.
func TestFailoverAbandonAllCandidatesFail(t *testing.T) {
	w, err := NewShardWorker("127.0.0.1:0", foDeploy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	// A worker address that is configured but refuses connections: bind a
	// listener to reserve a port, then close it before the test begins.
	dead, err := NewShardWorker("127.0.0.1:0", foDeploy)
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	dead.Close()

	mat := NewMaterialize(foOutSchema(t))
	merge := NewMerge(mat)
	set := NewShardSet(2)
	var events []FailoverEvent
	var mu sync.Mutex
	localTried := 0
	set.EnableFailover(FailoverConfig{
		Nodes: []string{w.Addr(), deadAddr},
		Sink:  merge,
		LocalDeploy: func(spec []byte, shard int, state []byte, send ResultSender) (map[string]Operator, []Advancer, []Checkpointer, error) {
			mu.Lock()
			localTried++
			mu.Unlock()
			return nil, nil, nil, fmt.Errorf("no replica capacity on the coordinator")
		},
		CheckpointEvery: 1,
		StallTimeout:    500 * time.Millisecond,
		OnFailover: func(ev FailoverEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	c, err := DialShard(w.Addr(), merge)
	if err != nil {
		t.Fatal(err)
	}
	c.SetStallTimeout(500 * time.Millisecond)
	c.enableFailover(1, 0)
	heads := make([]Operator, 2)
	for j := 0; j < 2; j++ {
		set.SetRemote(j, c)
		if err := c.Deploy(nil, j, nil); err != nil {
			t.Fatal(err)
		}
		heads[j] = c.Head(tempSchema(), j, "s0")
	}
	sh, err := NewSharder(set, heads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	sh.SetName("s0")
	set.Start()
	t.Cleanup(set.Close)

	sh.Push(temp(1, "L1", 20))
	sh.Push(temp(2, "L2", 21))
	set.Flush()
	if mat.Len() == 0 {
		t.Fatal("no rows before the kill")
	}

	w.Close()
	sh.Push(temp(3, "L3", 22))
	set.Flush() // detects the dead link, runs the failover to abandonment

	mu.Lock()
	evts := append([]FailoverEvent(nil), events...)
	tried := localTried
	mu.Unlock()
	if len(evts) != 1 || evts[0].Err == nil || evts[0].To != "" {
		t.Fatalf("events = %+v, want one abandonment", evts)
	}
	if len(evts[0].Shards) != 2 {
		t.Fatalf("abandonment reported shards %v, want both", evts[0].Shards)
	}
	if tried == 0 {
		t.Fatal("failover never reached the in-process last resort")
	}

	// Replay log dropped: nothing retained, and fail-stopped traffic must
	// not start accumulating again.
	if undo := c.flog.takeOut(); len(undo) != 0 {
		t.Fatalf("abandoned connection retained %d undo batches", len(undo))
	}
	rows := mat.Len()
	for i := 0; i < 4; i++ {
		sh.Push(temp(int64(10+i), fmt.Sprintf("L%d", i), 25))
	}
	set.Advance(vtime.Time(time.Hour))
	set.Flush()
	c.flog.mu.Lock()
	n := len(c.flog.in)
	c.flog.mu.Unlock()
	if n != 0 {
		t.Fatalf("fail-stopped deployment accumulated %d replay entries", n)
	}
	if got := mat.Len(); got != rows {
		t.Fatalf("fail-stopped deployment emitted rows: %d -> %d", rows, got)
	}
	mu.Lock()
	extra := len(events)
	mu.Unlock()
	if extra != 1 {
		t.Fatalf("fail-stop must not re-run failovers, got %d events", extra)
	}
}

// TestFailoverTargetRejectsDeploy: the failover's first candidate accepts
// the connection but rejects the redeploy; the failover must discard it
// and land in-process instead, still exactly.
func TestFailoverTargetRejectsDeploy(t *testing.T) {
	deploys := 0
	var dmu sync.Mutex
	picky := func(spec []byte, shard int, state []byte, send ResultSender) (map[string]Operator, []Advancer, []Checkpointer, error) {
		dmu.Lock()
		deploys++
		n := deploys
		dmu.Unlock()
		if n > 1 {
			return nil, nil, nil, fmt.Errorf("replica quota exhausted")
		}
		return foDeploy(spec, shard, state, send)
	}
	wa, err := NewShardWorker("127.0.0.1:0", foDeploy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wa.Close() })
	wb, err := NewShardWorker("127.0.0.1:0", picky)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wb.Close() })

	h := &foHarness{t: t}
	h.mat = NewMaterialize(foOutSchema(t))
	merge := NewMerge(h.mat)
	h.refMat = NewMaterialize(foOutSchema(t))
	refAgg, err := NewAggregate(h.refMat, tempSchema(), []string{"room"}, foSpecs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	h.refWin = NewTimeWindow(refAgg, 10*time.Second, 0)
	h.set = NewShardSet(2)
	h.set.EnableFailover(FailoverConfig{
		Nodes: []string{wa.Addr(), wb.Addr()}, Sink: merge, LocalDeploy: foDeploy,
		CheckpointEvery: 2, StallTimeout: 2 * time.Second,
		OnFailover: func(ev FailoverEvent) {
			h.mu.Lock()
			h.events = append(h.events, ev)
			h.mu.Unlock()
		},
	})
	ca, err := DialShard(wa.Addr(), merge)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := DialShard(wb.Addr(), merge)
	if err != nil {
		t.Fatal(err)
	}
	conns := []*ShardConn{ca, cb}
	heads := make([]Operator, 2)
	for j := 0; j < 2; j++ {
		conns[j].SetStallTimeout(2 * time.Second)
		h.set.SetRemote(j, conns[j])
		if err := conns[j].Deploy(nil, j, nil); err != nil {
			t.Fatal(err)
		}
		heads[j] = conns[j].Head(tempSchema(), j, "s0")
	}
	h.sh, err = NewSharder(h.set, heads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	h.sh.SetName("s0")
	h.set.Start()
	t.Cleanup(h.set.Close)

	evs := foEvents(26, 200)
	h.feed(evs[:100])
	h.checkpointAll()
	wa.Close() // shard 0's worker dies; candidate wb rejects the redeploy
	h.feed(evs[100:])
	h.check("after deploy-rejecting candidate")
	evts := h.failovers()
	if len(evts) != 1 || evts[0].Err != nil {
		t.Fatalf("events = %+v, want one clean failover", evts)
	}
	if evts[0].To != "" {
		t.Fatalf("failover landed on %q, want in-process after the rejected deploy", evts[0].To)
	}
}
