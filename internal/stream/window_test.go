package stream

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

func at(sec int64, room string, v float64) data.Tuple {
	return data.NewTuple(vtime.Time(sec)*vtime.Second, data.Str(room), data.Float(v))
}

func TestTimeWindowExpiry(t *testing.T) {
	col := NewCollector(tempSchema())
	w := NewTimeWindow(col, 10*time.Second, 0)
	w.Push(at(0, "a", 1))
	w.Push(at(5, "b", 2))
	w.Push(at(11, "c", 3)) // expires "a" (ts 0 <= 11-10)
	got := col.Snapshot()
	// +a +b -a +c  (expiry fires before insert)
	if len(got) != 4 {
		t.Fatalf("events = %v", got)
	}
	if got[2].Op != data.Delete || got[2].Vals[0].AsString() != "a" {
		t.Fatalf("expected -a third: %v", got)
	}
	if w.Len() != 2 {
		t.Fatalf("window len = %d", w.Len())
	}
	// expiry tuple carries the expiry time
	if got[2].TS != 11*vtime.Second {
		t.Fatalf("expiry ts = %v", got[2].TS)
	}
}

func TestTimeWindowAdvanceOnSilence(t *testing.T) {
	col := NewCollector(tempSchema())
	w := NewTimeWindow(col, 10*time.Second, 0)
	w.Push(at(0, "a", 1))
	w.Advance(30 * vtime.Second)
	got := col.Snapshot()
	if len(got) != 2 || got[1].Op != data.Delete {
		t.Fatalf("advance did not expire: %v", got)
	}
	if w.Len() != 0 {
		t.Fatal("window should be empty")
	}
}

func TestTimeWindowSlide(t *testing.T) {
	col := NewCollector(tempSchema())
	w := NewTimeWindow(col, 10*time.Second, 5*time.Second)
	w.Push(at(0, "a", 1))
	w.Push(at(12, "b", 2))
	// slide snaps expiry to 10s boundary: cutoff = 10-10 = 0 → "a" (ts 0) expires
	del := 0
	for _, tu := range col.Snapshot() {
		if tu.Op == data.Delete {
			del++
		}
	}
	if del != 1 {
		t.Fatalf("deletes = %d; events %v", del, col.Snapshot())
	}
	// within the same slide period no further expiry happens
	w.Push(at(13, "c", 3))
	del = 0
	for _, tu := range col.Snapshot() {
		if tu.Op == data.Delete {
			del++
		}
	}
	if del != 1 {
		t.Fatalf("slide re-expired: %v", col.Snapshot())
	}
}

func TestRowsWindow(t *testing.T) {
	col := NewCollector(tempSchema())
	w := NewRowsWindow(col, 2)
	w.Push(at(1, "a", 1))
	w.Push(at(2, "b", 2))
	w.Push(at(3, "c", 3)) // evicts a
	got := col.Snapshot()
	if len(got) != 4 {
		t.Fatalf("events = %v", got)
	}
	last := got[3]
	if last.Op != data.Delete || last.Vals[0].AsString() != "a" {
		t.Fatalf("eviction = %v", last)
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestNowWindow(t *testing.T) {
	col := NewCollector(tempSchema())
	w := NewNowWindow(col)
	w.Push(at(1, "a", 1))
	got := col.Snapshot()
	if len(got) != 2 || got[0].Op != data.Insert || got[1].Op != data.Delete {
		t.Fatalf("now window = %v", got)
	}
	if w.Len() != 0 {
		t.Fatal("now window retains state")
	}
}

func TestWindowUpstreamDelete(t *testing.T) {
	col := NewCollector(tempSchema())
	w := NewTimeWindow(col, time.Minute, 0)
	a := at(1, "a", 1)
	w.Push(a)
	w.Push(a.Negate())
	got := col.Snapshot()
	if len(got) != 2 || got[1].Op != data.Delete {
		t.Fatalf("events = %v", got)
	}
	if w.Len() != 0 {
		t.Fatal("window should be empty after retraction")
	}
	// deleting a tuple not in the window is silent
	w.Push(at(2, "zz", 9).Negate())
	if col.Len() != 2 {
		t.Fatal("phantom retraction forwarded")
	}
}

func TestWindowContentsMatchBruteForce(t *testing.T) {
	// Property: after any prefix of pushes, window population equals the
	// brute-force count of tuples within the range.
	col := NewCollector(tempSchema())
	w := NewTimeWindow(col, 7*time.Second, 0)
	var all []int64
	for sec := int64(0); sec < 50; sec += 3 {
		w.Push(at(sec, "x", float64(sec)))
		all = append(all, sec)
		want := 0
		for _, s := range all {
			if s > sec-7 {
				want++
			}
		}
		if w.Len() != want {
			t.Fatalf("at %ds: len=%d want %d", sec, w.Len(), want)
		}
	}
}
