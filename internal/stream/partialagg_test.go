package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

// twoPhase assembles PartialAggregate×p → Merge → FinalMerge → Materialize
// over in, returning the per-shard partial stages and the result. The
// partials are driven directly (no ShardSet) so tests control routing.
func twoPhase(t *testing.T, in *data.Schema, p int, groupBy []string, specs []AggSpec, having expr.Expr) ([]*PartialAggregate, *Materialize) {
	t.Helper()
	out, err := AggOutSchema(in, groupBy, specs)
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialize(out)
	fm, err := NewFinalMerge(mat, in, groupBy, specs, having)
	if err != nil {
		t.Fatal(err)
	}
	merge := NewMerge(fm)
	parts := make([]*PartialAggregate, p)
	for j := range parts {
		pa, err := NewPartialAggregate(merge, in, groupBy, specs)
		if err != nil {
			t.Fatal(err)
		}
		parts[j] = pa
	}
	return parts, mat
}

// serialAgg assembles the one-phase reference: Aggregate → Materialize.
func serialAgg(t *testing.T, in *data.Schema, groupBy []string, specs []AggSpec, having expr.Expr) (*Aggregate, *Materialize) {
	t.Helper()
	out, err := AggOutSchema(in, groupBy, specs)
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialize(out)
	agg, err := NewAggregate(mat, in, groupBy, specs, having)
	if err != nil {
		t.Fatal(err)
	}
	return agg, mat
}

func sameRows(t *testing.T, ctx string, got, want *Materialize) {
	t.Helper()
	g := got.MustSnapshot(nil, -1)
	w := want.MustSnapshot(nil, -1)
	SortTuples(g)
	SortTuples(w)
	if len(g) != len(w) {
		t.Fatalf("%s: two-phase rows %v, want %v", ctx, g, w)
	}
	for i := range w {
		if !g[i].EqualVals(w[i]) {
			t.Fatalf("%s: row %d: two-phase %v, want %v", ctx, i, g[i], w[i])
		}
	}
}

// aggWorkload drives an identical insert+delete workload (every aggregate
// kind, NULL arguments, group churn to zero and back) through the serial
// aggregate and the sharded partial stages, routing by a hash of the group
// column so a group always lands on one shard — and, in the global case,
// spreading one group across every shard.
func aggWorkload(t *testing.T, groupBy []string, having expr.Expr, p int) {
	in := data.NewSchema("r",
		data.Col("g", data.TString), data.Col("v", data.TInt))
	in.IsStream = true
	specs := []AggSpec{
		{Kind: AggCount, Alias: "cnt"},
		{Kind: AggCount, Arg: expr.C("v"), Alias: "cntv"},
		{Kind: AggSum, Arg: expr.C("v"), Alias: "s"},
		{Kind: AggAvg, Arg: expr.C("v"), Alias: "a"},
		{Kind: AggMin, Arg: expr.C("v"), Alias: "lo"},
		{Kind: AggMax, Arg: expr.C("v"), Alias: "hi"},
	}
	agg, want := serialAgg(t, in, groupBy, specs, having)
	parts, got := twoPhase(t, in, p, groupBy, specs, having)

	var hasher data.Hasher
	route := func(tu data.Tuple) *PartialAggregate {
		if len(groupBy) == 0 {
			// Global group: spread the tuples over every shard.
			return parts[int(hasher.Hash(tu)%uint64(p))]
		}
		return parts[int(hasher.HashOn(tu, []int{0})%uint64(p))]
	}

	rng := rand.New(rand.NewSource(7))
	groups := []string{"g0", "g1", "g2", "g3"}
	var live []data.Tuple
	for i := 0; i < 600; i++ {
		if len(live) > 0 && rng.Intn(4) == 0 {
			k := rng.Intn(len(live))
			del := live[k].Negate()
			del.TS = vtime.Time(i)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			agg.Push(del.Clone())
			route(del).Push(del.Clone())
			continue
		}
		v := data.Int(int64(rng.Intn(9) - 4))
		if rng.Intn(8) == 0 {
			v = data.Null
		}
		tu := data.NewTuple(vtime.Time(i), data.Str(groups[rng.Intn(len(groups))]), v)
		live = append(live, tu)
		agg.Push(tu.Clone())
		route(tu).Push(tu.Clone())
	}
	sameRows(t, "steady", got, want)

	// Drain every remaining tuple: both sides must retract down to nothing
	// (or, for the global COUNT(*) group, the same empty-state row).
	for i, tu := range live {
		del := tu.Negate()
		del.TS = vtime.Time(1000 + i)
		agg.Push(del.Clone())
		route(del).Push(del.Clone())
	}
	sameRows(t, "drained", got, want)
}

func TestTwoPhaseGroupedEquivalence(t *testing.T) {
	aggWorkload(t, []string{"g"}, nil, 3)
}

func TestTwoPhaseGlobalEquivalence(t *testing.T) {
	// One global group spread across every shard: the case one-phase
	// sharding cannot handle at all.
	aggWorkload(t, nil, nil, 4)
}

func TestTwoPhaseHavingEquivalence(t *testing.T) {
	having := expr.Bin{Op: expr.OpGt, L: expr.C("cnt"), R: expr.L(3)}
	aggWorkload(t, []string{"g"}, having, 3)
}

func TestTwoPhaseForcedCollisions(t *testing.T) {
	old := testHashMask
	testHashMask = 0
	t.Cleanup(func() { testHashMask = old })
	aggWorkload(t, []string{"g"}, nil, 3)
}

// TestFinalMergeShardInterleaving checks the merge is insensitive to how
// shard contributions interleave: each shard's retract→insert pairs stay
// ordered, but other shards' pairs slot in between.
func TestFinalMergeShardInterleaving(t *testing.T) {
	in := data.NewSchema("r", data.Col("g", data.TString), data.Col("v", data.TInt))
	specs := []AggSpec{
		{Kind: AggSum, Arg: expr.C("v"), Alias: "s"},
		{Kind: AggMin, Arg: expr.C("v"), Alias: "lo"},
	}
	out, err := AggOutSchema(in, []string{"g"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialize(out)
	fm, err := NewFinalMerge(mat, in, []string{"g"}, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	partial := func(cnt, n1 int64, v1 data.Value, n2 int64, v2 data.Value, op data.Op) data.Tuple {
		return data.Tuple{Vals: []data.Value{data.Str("g0"),
			data.Int(cnt), data.Int(n1), v1, data.Int(n2), v2}, Op: op}
	}
	// Shard A contributes (2 tuples, sum 7, min 3); shard B interleaves its
	// own replacement between A's retract and insert.
	fm.Push(partial(2, 2, data.Float(7), 2, data.Float(3), data.Insert))
	fm.Push(partial(1, 1, data.Float(5), 1, data.Float(5), data.Insert))
	fm.Push(partial(2, 2, data.Float(7), 2, data.Float(3), data.Delete)) // A retracts…
	fm.Push(partial(1, 1, data.Float(5), 1, data.Float(5), data.Delete)) // B swaps in between
	fm.Push(partial(2, 2, data.Float(9), 2, data.Float(4), data.Insert))
	fm.Push(partial(3, 3, data.Float(9), 3, data.Float(1), data.Insert)) // …A inserts
	rows := mat.MustSnapshot(nil, -1)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if got := rows[0].Vals[1].AsFloat(); got != 18 {
		t.Fatalf("sum = %v, want 18", got)
	}
	if got := rows[0].Vals[2].AsFloat(); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if fm.Groups() != 1 {
		t.Fatalf("groups = %d", fm.Groups())
	}
}

// TestPartialSchemaShape pins the partial row layout FinalMerge decodes
// positionally.
func TestPartialSchemaShape(t *testing.T) {
	in := data.NewSchema("r", data.Col("g", data.TString), data.Col("v", data.TInt))
	specs := []AggSpec{{Kind: AggAvg, Arg: expr.C("v"), Alias: "a"}}
	ps, err := AggPartialSchema(in, []string{"g"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"g", "_cnt", "_n1", "_v1"}
	if ps.Arity() != len(want) {
		t.Fatalf("partial schema = %s", ps)
	}
	for i, n := range want {
		if ps.Cols[i].Name != n {
			t.Fatalf("col %d = %s, want %s", i, ps.Cols[i].Name, n)
		}
	}
	if _, err := AggPartialSchema(in, []string{"nope"}, specs); err == nil {
		t.Fatal("bad group column must fail")
	}
	if _, err := NewPartialAggregate(NewCollector(in), in, []string{"g"}, specs); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

// TestExprSharderRouting checks computed-key routing: tuples whose key
// expression values are equal land on the same shard, matching the shard a
// column Sharder picks for the expression's value, and deletes follow
// their inserts.
func TestExprSharderRouting(t *testing.T) {
	schema := data.NewSchema("s", data.Col("k", data.TInt), data.Col("v", data.TInt))
	set := NewShardSet(4)
	cols := make([]*Collector, 4)
	heads := make([]Operator, 4)
	for i := range cols {
		cols[i] = NewCollector(schema)
		heads[i] = cols[i]
	}
	// Key expression k+1 over the source column.
	keyExpr := expr.MustBind(expr.Bin{Op: expr.OpAdd, L: expr.C("k"), R: expr.L(1)}, schema)
	sh, err := NewExprSharder(set, heads, []*expr.Compiled{keyExpr})
	if err != nil {
		t.Fatal(err)
	}
	set.Start()
	defer set.Close()
	for i := 0; i < 64; i++ {
		sh.Push(data.NewTuple(vtime.Time(i), data.Int(int64(i%8)), data.Int(int64(i))))
	}
	for i := 0; i < 64; i++ {
		tu := data.NewTuple(vtime.Time(100+i), data.Int(int64(i%8)), data.Int(int64(i)))
		sh.Push(tu.Negate())
	}
	set.Flush()

	// Every shard's stream must balance (each delete reached its insert's
	// shard), and each key value must appear on exactly one shard.
	var hasher data.Hasher
	keyShard := map[int64]int{}
	total := 0
	for j, c := range cols {
		byKey := map[int64]int{}
		for _, tu := range c.Snapshot() {
			k := tu.Vals[0].AsInt()
			if tu.Op == data.Delete {
				byKey[k]--
			} else {
				byKey[k]++
			}
			if prev, ok := keyShard[k]; ok && prev != j {
				t.Fatalf("key %d split across shards %d and %d", k, prev, j)
			}
			keyShard[k] = j
			total++
		}
		for k, n := range byKey {
			if n != 0 {
				t.Fatalf("shard %d: key %d unbalanced by %d", j, k, n)
			}
		}
		// The chosen shard must agree with hashing the computed value, the
		// invariant that aligns this exchange with a column exchange on the
		// other side of a join.
		for k := range byKey {
			want := int(hasher.HashOn(data.Tuple{Vals: []data.Value{data.Int(k + 1)}}, nil) % 4)
			if want != j {
				t.Fatalf("key %d on shard %d, value-hash says %d", k, j, want)
			}
		}
	}
	if total != 128 {
		t.Fatalf("routed %d tuples, want 128", total)
	}
}

// TestTwoPhaseBehindShardSet runs the two-phase pipeline behind a real
// ShardSet/Sharder exchange (global aggregate, shard workers pushing into
// the Merge funnel concurrently) and compares against serial.
func TestTwoPhaseBehindShardSet(t *testing.T) {
	in := data.NewSchema("r", data.Col("g", data.TString), data.Col("v", data.TInt))
	in.IsStream = true
	specs := []AggSpec{
		{Kind: AggCount, Alias: "cnt"},
		{Kind: AggAvg, Arg: expr.C("v"), Alias: "a"},
	}
	agg, want := serialAgg(t, in, nil, specs, nil)
	parts, got := twoPhase(t, in, 4, nil, specs, nil)

	set := NewShardSet(4)
	heads := make([]Operator, 4)
	for j := range heads {
		heads[j] = parts[j]
	}
	sh, err := NewSharder(set, heads, nil) // partition on all columns
	if err != nil {
		t.Fatal(err)
	}
	set.Start()
	defer set.Close()

	rng := rand.New(rand.NewSource(11))
	var live []data.Tuple
	for i := 0; i < 500; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			del := live[k].Negate()
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			agg.Push(del.Clone())
			sh.Push(del.Clone())
			continue
		}
		tu := data.NewTuple(vtime.Time(i),
			data.Str(fmt.Sprintf("g%d", rng.Intn(5))), data.Int(int64(rng.Intn(7))))
		live = append(live, tu)
		agg.Push(tu.Clone())
		sh.Push(tu.Clone())
	}
	set.Flush()
	sameRows(t, "sharded", got, want)
}
