package stream

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// retainer stores pushed tuples without cloning, so tests can observe the
// fan-out ownership convention (clones for all but the last subscriber).
type retainer struct {
	schema *data.Schema
	tuples []data.Tuple
}

func (r *retainer) Schema() *data.Schema { return r.schema }
func (r *retainer) Push(t data.Tuple)    { r.tuples = append(r.tuples, t) }

func TestFanoutSubscribeUnsubscribe(t *testing.T) {
	f := NewFanout(tempSchema())
	a := NewCollector(tempSchema())
	b := NewCollector(tempSchema())
	f.Subscribe(a)
	f.Subscribe(b)
	if f.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", f.Subscribers())
	}
	f.Push(temp(1, "L1", 20))
	if len(a.Snapshot()) != 1 || len(b.Snapshot()) != 1 {
		t.Fatal("push did not reach both subscribers")
	}
	if !f.Unsubscribe(a) {
		t.Fatal("unsubscribe reported not found")
	}
	if f.Unsubscribe(a) {
		t.Fatal("double unsubscribe reported found")
	}
	f.Push(temp(2, "L2", 21))
	if len(a.Snapshot()) != 1 {
		t.Fatal("detached subscriber still receiving")
	}
	if len(b.Snapshot()) != 2 {
		t.Fatal("surviving subscriber perturbed by unsubscribe")
	}
	if !f.Unsubscribe(b) || f.Subscribers() != 0 {
		t.Fatal("teardown incomplete")
	}
	f.Push(temp(3, "L3", 22)) // no subscribers: must not panic
}

func TestFanoutFreshAndEmpty(t *testing.T) {
	schema := tempSchema()
	f := NewFanout(schema)
	if f.Schema() != schema {
		t.Fatal("schema accessor")
	}
	if f.Unsubscribe(NewCollector(tempSchema())) {
		t.Fatal("unsubscribe on never-subscribed fanout reported found")
	}
	col := NewCollector(tempSchema())
	f.Subscribe(col)
	f.PushBatch(nil) // empty batch: no-op
	if col.Len() != 0 {
		t.Fatal("empty batch delivered tuples")
	}

	sched := vtime.NewScheduler()
	sched.At(5*vtime.Second, func() {})
	sched.Run() // clock at 5s so zero-TS stamping is observable below
	e := NewEngine("n", sched)
	if e.Advancers() != 0 {
		t.Fatal("fresh engine has advancers")
	}
	if e.UntrackWindow(NewTimeWindow(col, time.Second, 0)) {
		t.Fatal("untrack on fresh engine reported found")
	}
	in := e.MustRegister("s", schema)
	if in.Schema() != schema || in.Name() != "s" {
		t.Fatal("input accessors")
	}
	if in.Unsubscribe(col) {
		t.Fatal("unsubscribe on never-subscribed input reported found")
	}
	in.PushBatch(nil) // empty batch: no-op

	// Multi-subscriber batch push: zero timestamps stamped in place, every
	// subscriber but the last on its own clone.
	a, b := &retainer{schema: tempSchema()}, &retainer{schema: tempSchema()}
	in.Subscribe(a)
	in.Subscribe(b)
	in.PushBatch([]data.Tuple{temp(1, "L1", 20), {Vals: []data.Value{data.Str("L2"), data.Float(21)}}})
	if len(a.tuples) != 2 || len(b.tuples) != 2 {
		t.Fatal("batch lost")
	}
	if a.tuples[1].TS == 0 || b.tuples[1].TS == 0 {
		t.Fatal("zero timestamp not stamped")
	}
	a.tuples[0].Vals[1] = data.Float(99)
	if b.tuples[0].Vals[1].AsFloat() != 20 {
		t.Fatal("batch clone shares storage across subscribers")
	}
	if err := e.PushBatch("s", []data.Tuple{temp(2, "L1", 22)}); err != nil {
		t.Fatal(err)
	}
	if err := e.PushBatch("missing", nil); err == nil {
		t.Fatal("batch push to missing input accepted")
	}
	if len(a.tuples) != 3 {
		t.Fatal("engine batch push lost")
	}
}

func TestMustDisplayPanicsOnConflict(t *testing.T) {
	e := NewEngine("n", vtime.NewScheduler())
	e.MustDisplay("lobby", tempSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.MustDisplay("lobby", data.NewSchema("x", data.Col("r", data.TString)))
}

func TestFanoutOwnershipConvention(t *testing.T) {
	f := NewFanout(tempSchema())
	first := &retainer{schema: tempSchema()}
	last := &retainer{schema: tempSchema()}
	f.Subscribe(first)
	f.Subscribe(last)
	orig := temp(1, "L1", 20)
	f.Push(orig)
	// The last subscriber gets the original (zero-copy); earlier ones get
	// clones, so mutating one subscriber's copy must not corrupt another's.
	if &last.tuples[0].Vals[0] != &orig.Vals[0] {
		t.Fatal("last subscriber did not receive the original tuple")
	}
	first.tuples[0].Vals[1] = data.Float(99)
	if last.tuples[0].Vals[1].AsFloat() != 20 {
		t.Fatal("clone shares storage with the original")
	}

	f.PushBatch([]data.Tuple{temp(2, "L2", 21), temp(3, "L3", 22)})
	first.tuples[1].Vals[1] = data.Float(77)
	if last.tuples[1].Vals[1].AsFloat() != 21 {
		t.Fatal("batch clone shares storage with the original")
	}
}

func TestInputUnsubscribe(t *testing.T) {
	e := NewEngine("n", vtime.NewScheduler())
	in, err := e.Register("temps", tempSchema())
	if err != nil {
		t.Fatal(err)
	}
	a := NewCollector(tempSchema())
	b := NewCollector(tempSchema())
	in.Subscribe(a)
	in.Subscribe(b)
	if in.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", in.Subscribers())
	}
	if !in.Unsubscribe(a) {
		t.Fatal("unsubscribe reported not found")
	}
	if in.Unsubscribe(a) {
		t.Fatal("double unsubscribe reported found")
	}
	in.Push(temp(1, "L1", 20))
	if len(a.Snapshot()) != 0 {
		t.Fatal("detached subscriber still receiving")
	}
	if len(b.Snapshot()) != 1 {
		t.Fatal("surviving subscriber perturbed by unsubscribe")
	}
}

func TestEngineUntrackWindow(t *testing.T) {
	e := NewEngine("n", vtime.NewScheduler())
	col := NewCollector(tempSchema())
	w := NewTimeWindow(col, 2*time.Second, 0)
	e.TrackWindow(w)
	if e.Advancers() != 1 {
		t.Fatalf("advancers = %d", e.Advancers())
	}
	w.Push(temp(1, "a", 1))
	e.Advance(30 * vtime.Second)
	if got := col.Snapshot(); len(got) != 2 || got[1].Op != data.Delete {
		t.Fatalf("tracked window never expired: %v", got)
	}
	if !e.UntrackWindow(w) {
		t.Fatal("untrack reported not found")
	}
	if e.UntrackWindow(w) {
		t.Fatal("double untrack reported found")
	}
	if e.Advancers() != 0 {
		t.Fatalf("advancers = %d after untrack", e.Advancers())
	}
	w.Push(temp(31, "b", 2))
	e.Advance(60 * vtime.Second)
	if got := col.Snapshot(); len(got) != 3 {
		t.Fatalf("untracked window still ticked: %v", got)
	}
}

func TestWindowContents(t *testing.T) {
	col := NewCollector(tempSchema())
	w := NewTimeWindow(col, 5*time.Second, 0)
	w.Push(temp(1, "a", 1))
	w.Push(temp(2, "b", 2))
	w.Push(temp(10, "c", 3)) // expires a and b
	got := w.Contents()
	if len(got) != 1 || got[0].Vals[0].AsString() != "c" {
		t.Fatalf("contents = %v", got)
	}
	// Contents clones: mutating the snapshot must not corrupt the window.
	got[0].Vals[0] = data.Str("x")
	if w.Contents()[0].Vals[0].AsString() != "c" {
		t.Fatal("Contents returned live storage")
	}
}
