package stream

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// TestMuxSharedPhysicalConn: many deployments to one worker share one
// pooled TCP connection, each stream's results route only to its own
// sink, and the socket lives until the last deployment releases it.
func TestMuxSharedPhysicalConn(t *testing.T) {
	before := WorkerConnCount()
	w := startEchoWorker(t)

	const n = 8
	conns := make([]*ShardConn, n)
	cols := make([]*Collector, n)
	for i := range conns {
		cols[i] = NewCollector(tempSchema())
		c, err := DialShard(w.Addr(), cols[i])
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		if err := c.Deploy(nil, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := WorkerConnCount(); got != before+1 {
		t.Fatalf("%d deployments to one worker hold %d connections, want 1", n, got-before)
	}

	// Each stream delivers to its own sink: stream i sends i+1 tuples.
	for i, c := range conns {
		for k := 0; k <= i; k++ {
			if err := c.SendBatch(0, "s0", []data.Tuple{temp(int64(k+1), "L1", float64(i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range conns {
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i, col := range cols {
		if col.Len() != i+1 {
			t.Fatalf("stream %d sink has %d tuples, want %d (cross-stream leak?)", i, col.Len(), i+1)
		}
	}

	// Closing all but one stream keeps the shared socket (and the
	// survivor) alive.
	for _, c := range conns[:n-1] {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := WorkerConnCount(); got != before+1 {
		t.Fatalf("connection released while a stream still uses it (count %d)", got-before)
	}
	if err := conns[n-1].SendBatch(0, "s0", []data.Tuple{temp(100, "L1", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := conns[n-1].Flush(); err != nil {
		t.Fatal(err)
	}
	if cols[n-1].Len() != n+1 {
		t.Fatalf("survivor stream broken after sibling closes: %d tuples", cols[n-1].Len())
	}
	if err := conns[n-1].Close(); err != nil {
		t.Fatal(err)
	}
	if got := WorkerConnCount(); got != before {
		t.Fatalf("last close must release the pooled connection (count %d)", got-before)
	}
}

// TestMuxFailureFailsAllStreams: the physical link is the failure domain
// — when the worker dies, every stream multiplexed over the connection
// observes the sticky error and every armed failover callback fires.
func TestMuxFailureFailsAllStreams(t *testing.T) {
	before := WorkerConnCount()
	w := startEchoWorker(t)

	c1, err := DialShard(w.Addr(), NewCollector(tempSchema()))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := DialShard(w.Addr(), NewCollector(tempSchema()))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*ShardConn{c1, c2} {
		if err := c.Deploy(nil, 0, nil); err != nil {
			t.Fatal(err)
		}
		c.enableFailover(0, 1<<20)
	}
	fails := make(chan *ShardConn, 2)
	c1.armFailover(func(c *ShardConn) { fails <- c })
	c2.armFailover(func(c *ShardConn) { fails <- c })

	w.Close()

	seen := map[*ShardConn]bool{}
	for len(seen) < 2 {
		select {
		case c := <-fails:
			seen[c] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 2 streams notified after worker death", len(seen))
		}
	}
	if c1.Err() == nil || c2.Err() == nil {
		t.Fatal("both streams must carry the sticky link error")
	}
	// The dead connection is evicted: no pooled socket remains.
	if got := WorkerConnCount(); got != before {
		t.Fatalf("dead connection still pooled (count %d)", got-before)
	}
	// severLink on one stream after the fact stays idempotent.
	c1.severLink()
	c2.severLink()
}

// TestMuxTickFansOutPerStream: ticks advance only the replicas of their
// own stream — window expiry on one deployment must not disturb another.
func TestMuxTickFansOutPerStream(t *testing.T) {
	w := startEchoWorker(t)
	col1, col2 := NewCollector(tempSchema()), NewCollector(tempSchema())
	c1, err := DialShard(w.Addr(), col1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := DialShard(w.Addr(), col2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c1.Deploy(nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := c2.Deploy(nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := c1.SendBatch(0, "s0", []data.Tuple{temp(1, "L1", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := c2.SendBatch(0, "s0", []data.Tuple{temp(1, "L1", 2)}); err != nil {
		t.Fatal(err)
	}
	// Advance only stream 1 far past the echo replica's 2m window: its
	// window retracts (a delete lands in col1), stream 2 stays put.
	if err := c1.Tick(vtime.Time(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	dels := 0
	for _, tu := range col1.Snapshot() {
		if tu.Op == data.Delete {
			dels++
		}
	}
	if dels != 1 {
		t.Fatalf("stream 1 window expiry produced %d deletes, want 1", dels)
	}
	for _, tu := range col2.Snapshot() {
		if tu.Op == data.Delete {
			t.Fatal("stream 2 saw an expiry from stream 1's tick")
		}
	}
}
