package stream

import (
	"math/rand"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

func areaSchema() *data.Schema {
	s := data.NewSchema("sa",
		data.Col("room", data.TString),
		data.Col("status", data.TString),
	)
	s.IsStream = true
	return s
}

func seatSchema() *data.Schema {
	s := data.NewSchema("ss",
		data.Col("room", data.TString),
		data.Col("desk", data.TInt),
		data.Col("status", data.TString),
	)
	s.IsStream = true
	return s
}

func area(ts int64, room, status string) data.Tuple {
	return data.NewTuple(vtime.Time(ts), data.Str(room), data.Str(status))
}

func seat(ts int64, room string, desk int64, status string) data.Tuple {
	return data.NewTuple(vtime.Time(ts), data.Str(room), data.Int(desk), data.Str(status))
}

func newTestJoin(t *testing.T, residual expr.Expr) (*Join, *Collector) {
	t.Helper()
	out := areaSchema().Concat(seatSchema())
	col := NewCollector(out)
	j, err := NewJoin(col, areaSchema(), seatSchema(),
		[]string{"sa.room"}, []string{"ss.room"}, residual)
	if err != nil {
		t.Fatal(err)
	}
	return j, col
}

func TestJoinBasicMatch(t *testing.T) {
	j, col := newTestJoin(t, nil)
	j.Left().Push(area(1, "L1", "open"))
	j.Right().Push(seat(2, "L1", 1, "free"))
	j.Right().Push(seat(3, "L2", 1, "free")) // no partner
	got := col.Snapshot()
	if len(got) != 1 {
		t.Fatalf("joined = %v", got)
	}
	if got[0].Vals[0].AsString() != "L1" || got[0].Vals[2].AsString() != "L1" {
		t.Fatalf("tuple = %v", got[0])
	}
	// max timestamp propagates
	if got[0].TS != 2 {
		t.Fatalf("ts = %v", got[0].TS)
	}
	if j.SizeLeft() != 1 || j.SizeRight() != 2 {
		t.Fatalf("tables = %d, %d", j.SizeLeft(), j.SizeRight())
	}
}

func TestJoinRetraction(t *testing.T) {
	j, col := newTestJoin(t, nil)
	a := area(1, "L1", "open")
	s1 := seat(1, "L1", 1, "free")
	s2 := seat(1, "L1", 2, "free")
	j.Left().Push(a)
	j.Right().Push(s1)
	j.Right().Push(s2)
	if col.Len() != 2 {
		t.Fatalf("inserts = %v", col.Snapshot())
	}
	j.Left().Push(a.Negate()) // retracting the area row retracts both joins
	got := col.Snapshot()
	if len(got) != 4 {
		t.Fatalf("events = %v", got)
	}
	if got[2].Op != data.Delete || got[3].Op != data.Delete {
		t.Fatalf("retractions = %v", got[2:])
	}
	if j.SizeLeft() != 0 {
		t.Fatal("left table should be empty")
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	j, col := newTestJoin(t, expr.Bin{Op: expr.OpGt, L: expr.C("ss.desk"), R: expr.L(1)})
	j.Left().Push(area(1, "L1", "open"))
	j.Right().Push(seat(1, "L1", 1, "free")) // fails residual
	j.Right().Push(seat(1, "L1", 2, "free")) // passes
	got := col.Snapshot()
	if len(got) != 1 || got[0].Vals[3].AsInt() != 2 {
		t.Fatalf("residual join = %v", got)
	}
}

func TestJoinErrors(t *testing.T) {
	out := areaSchema().Concat(seatSchema())
	col := NewCollector(out)
	if _, err := NewJoin(col, areaSchema(), seatSchema(),
		[]string{"sa.room"}, []string{}, nil); err == nil {
		t.Fatal("key arity mismatch accepted")
	}
	if _, err := NewJoin(col, areaSchema(), seatSchema(),
		[]string{"bogus"}, []string{"ss.room"}, nil); err == nil {
		t.Fatal("bad left key accepted")
	}
	if _, err := NewJoin(col, areaSchema(), seatSchema(),
		[]string{"sa.room"}, []string{"bogus"}, nil); err == nil {
		t.Fatal("bad right key accepted")
	}
	if _, err := NewJoin(col, areaSchema(), seatSchema(),
		[]string{"sa.room"}, []string{"ss.room"}, expr.C("nope")); err == nil {
		t.Fatal("unbound residual accepted")
	}
	small := NewCollector(areaSchema())
	if _, err := NewJoin(small, areaSchema(), seatSchema(),
		[]string{"sa.room"}, []string{"ss.room"}, nil); err == nil {
		t.Fatal("downstream arity mismatch accepted")
	}
}

// Property: the symmetric hash join over windows equals a brute-force
// nested-loop join of the current window contents, across random
// insert/expiry interleavings.
func TestJoinEquivalentToNestedLoop(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rooms := []string{"L1", "L2", "L3"}

	out := areaSchema().Concat(seatSchema())
	mat := NewMaterialize(out)
	j, err := NewJoin(mat, areaSchema(), seatSchema(),
		[]string{"sa.room"}, []string{"ss.room"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wl := NewTimeWindow(j.Left(), 10*time.Second, 0)
	wr := NewTimeWindow(j.Right(), 15*time.Second, 0)

	var lWin, rWin []data.Tuple // reference window contents
	now := vtime.Time(0)
	for step := 0; step < 300; step++ {
		now += vtime.Time(r.Int63n(int64(3 * vtime.Second)))
		if r.Intn(2) == 0 {
			tu := data.NewTuple(now, data.Str(rooms[r.Intn(3)]), data.Str("open"))
			wl.Push(tu)
			lWin = append(lWin, tu)
		} else {
			tu := data.NewTuple(now, data.Str(rooms[r.Intn(3)]), data.Int(int64(r.Intn(4))), data.Str("free"))
			wr.Push(tu)
			rWin = append(rWin, tu)
		}
		// both windows see the clock advance (Engine.Advance in production)
		wl.Advance(now)
		wr.Advance(now)
		// reference expiry
		lWin = expireRef(lWin, now, 10*time.Second)
		rWin = expireRef(rWin, now, 15*time.Second)

		if step%37 != 0 {
			continue
		}
		want := 0
		for _, l := range lWin {
			for _, rr := range rWin {
				if l.Vals[0].Equal(rr.Vals[0]) {
					want++
				}
			}
		}
		snap := mat.MustSnapshot(nil, -1)
		if len(snap) != want {
			t.Fatalf("step %d: join has %d rows, nested loop %d", step, len(snap), want)
		}
	}
}

func expireRef(win []data.Tuple, now vtime.Time, rng time.Duration) []data.Tuple {
	out := win[:0]
	for _, tu := range win {
		if tu.TS > now.Add(-rng) {
			out = append(out, tu)
		}
	}
	return out
}
