package stream

import (
	"fmt"
	"strings"

	"aspen/internal/data"
	"aspen/internal/expr"
)

// AggKind enumerates the aggregate functions of the stream engine.
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// ParseAggKind maps a function name from the parser to an AggKind.
func ParseAggKind(name string) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	}
	return 0, false
}

// String names the kind.
func (k AggKind) String() string {
	return [...]string{"count", "sum", "avg", "min", "max"}[k]
}

// AggSpec is one aggregate column: FUNC(Arg) AS Alias. A nil Arg means
// COUNT(*).
type AggSpec struct {
	Kind  AggKind
	Arg   expr.Expr
	Alias string
}

// Aggregate maintains grouped aggregates incrementally over a delta
// stream. On every input delta that changes a group's result, it emits a
// retraction of the group's previous output row followed by an insertion of
// the new one, so downstream state (materialized displays, HAVING filters)
// tracks the aggregate exactly.
// Group state is keyed by 64-bit hashes of the canonical grouping-key
// encoding; a bucket holds every group sharing the hash, and lookups verify
// candidates against the stored key values, so no key string is
// materialized per push.
type Aggregate struct {
	next   Operator
	in     *data.Schema
	out    *data.Schema
	specs  []AggSpec
	args   []*expr.Compiled // nil entry for COUNT(*)
	table  groupTable
	having *expr.Compiled
}

// groupTable is the grouped-state core shared by the one-phase Aggregate
// and the two-phase PartialAggregate / FinalMerge operators: hash-bucketed
// group lookup keyed on the canonical encoding of the grouping columns
// (data.Hasher), with collision buckets verified value-by-value through
// EqualOn, so no key string is materialized per push.
type groupTable struct {
	keyIdx []int
	kvIdx  []int // identity indexes into groupState.keyVals
	nAggs  int
	groups map[uint64][]*groupState
	n      int // live group count
	hasher data.Hasher
}

// newGroupTable resolves the grouping columns against in. groupBy must
// already be validated (AggOutSchema / AggPartialSchema do).
func newGroupTable(in *data.Schema, groupBy []string, nAggs int) groupTable {
	gt := groupTable{nAggs: nAggs, groups: map[uint64][]*groupState{}}
	// keyIdx must stay non-nil: Tuple.HashOn(h, nil) means "all columns",
	// but an empty GROUP BY means one global group (empty key).
	gt.keyIdx = make([]int, 0, len(groupBy))
	gt.kvIdx = make([]int, 0, len(groupBy))
	for _, g := range groupBy {
		i, _ := in.ColIndex(g)
		gt.keyIdx = append(gt.keyIdx, i)
		gt.kvIdx = append(gt.kvIdx, len(gt.kvIdx))
	}
	return gt
}

// lookup finds the tuple's group, creating it for insertions. The nil
// group result means a deletion addressed an unknown group (ignored by
// every caller, matching the delta-stream convention).
func (gt *groupTable) lookup(t data.Tuple) (uint64, *groupState) {
	key := gt.hasher.HashOn(t, gt.keyIdx) & testHashMask
	for _, cand := range gt.groups[key] {
		// Verify the hash-bucket candidate's stored key values against the
		// tuple's grouping columns under key-equality semantics.
		if (data.Tuple{Vals: cand.keyVals}).EqualOn(gt.kvIdx, t, gt.keyIdx) {
			return key, cand
		}
	}
	if t.Op == data.Delete {
		return key, nil
	}
	g := &groupState{aggs: make([]aggState, gt.nAggs)}
	for i := range g.aggs {
		g.aggs[i].vals = map[float64]int64{}
	}
	g.keyVals = make([]data.Value, len(gt.keyIdx))
	for i, idx := range gt.keyIdx {
		g.keyVals[i] = t.Vals[idx]
	}
	gt.groups[key] = append(gt.groups[key], g)
	gt.n++
	return key, g
}

// remove drops a dead group from its bucket.
func (gt *groupTable) remove(key uint64, g *groupState) {
	bucket := gt.groups[key]
	for i, cand := range bucket {
		if cand == g {
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = nil // drop the reference for GC
			if len(bucket) == 1 {
				delete(gt.groups, key)
			} else {
				gt.groups[key] = bucket[:len(bucket)-1]
			}
			break
		}
	}
	gt.n--
}

// emitRow retracts g's previously emitted row and emits newOut (nil means
// no visible row, e.g. failed HAVING or dead group), suppressing no-op
// transitions, then removes the group once its count reaches zero.
func (gt *groupTable) emitRow(next Operator, key uint64, g *groupState, newOut []data.Value, cause data.Tuple) {
	if g.lastOut != nil {
		same := newOut != nil && len(newOut) == len(g.lastOut)
		if same {
			for i := range newOut {
				if !(newOut[i].IsNull() && g.lastOut[i].IsNull()) && !newOut[i].Equal(g.lastOut[i]) {
					same = false
					break
				}
			}
		}
		if same {
			return // no visible change
		}
		next.Push(data.Tuple{Vals: g.lastOut, TS: cause.TS, Op: data.Delete})
		g.lastOut = nil
	}
	if newOut != nil {
		next.Push(data.Tuple{Vals: newOut, TS: cause.TS, Op: data.Insert})
		g.lastOut = newOut
	}
	if g.count <= 0 {
		gt.remove(key, g)
	}
}

type groupState struct {
	keyVals []data.Value
	count   int64 // tuples in group
	aggs    []aggState
	lastOut []data.Value // previously emitted row (nil if none)
}

type aggState struct {
	n   int64 // non-null inputs
	sum float64
	// multiset of values for min/max deletion support
	vals map[float64]int64
}

// AggOutSchema computes the output schema of a grouped aggregation:
// grouping columns followed by one column per aggregate (COUNT is INT,
// the numeric aggregates are FLOAT).
func AggOutSchema(in *data.Schema, groupBy []string, specs []AggSpec) (*data.Schema, error) {
	out := &data.Schema{Name: in.Name, IsStream: in.IsStream}
	for _, g := range groupBy {
		i, err := in.ColIndex(g)
		if err != nil {
			return nil, err
		}
		out.Cols = append(out.Cols, in.Cols[i])
	}
	for i, s := range specs {
		typ := data.TInt
		if s.Arg != nil {
			c, err := expr.Bind(s.Arg, in)
			if err != nil {
				return nil, err
			}
			if !c.Type.Numeric() && s.Kind != AggCount {
				return nil, fmt.Errorf("stream: %s over non-numeric %s", s.Kind, c.Type)
			}
			if s.Kind != AggCount {
				typ = data.TFloat // numeric aggregates are computed in float64
			}
		} else if s.Kind != AggCount {
			return nil, fmt.Errorf("stream: %s requires an argument", s.Kind)
		}
		name := s.Alias
		if name == "" {
			name = fmt.Sprintf("%s%d", s.Kind, i+1)
		}
		out.Cols = append(out.Cols, data.Column{Name: name, Type: typ})
	}
	return out, nil
}

// NewAggregate builds the operator. groupBy names grouping columns in the
// input schema; having (optional) is evaluated over the output schema.
func NewAggregate(next Operator, in *data.Schema, groupBy []string, specs []AggSpec, having expr.Expr) (*Aggregate, error) {
	out, err := AggOutSchema(in, groupBy, specs)
	if err != nil {
		return nil, err
	}
	a := &Aggregate{next: next, in: in, out: out, specs: specs,
		table: newGroupTable(in, groupBy, len(specs))}
	if a.args, err = bindAggArgs(in, specs); err != nil {
		return nil, err
	}
	if err := checkAggDownstream(next, out, "aggregate"); err != nil {
		return nil, err
	}
	if having != nil {
		c, err := expr.Bind(having, out)
		if err != nil {
			return nil, err
		}
		a.having = c
	}
	return a, nil
}

// Schema implements Operator.
func (a *Aggregate) Schema() *data.Schema { return a.in }

// OutSchema returns the grouped output schema.
func (a *Aggregate) OutSchema() *data.Schema { return a.out }

// Push implements Operator.
func (a *Aggregate) Push(t data.Tuple) {
	key, g := a.table.lookup(t)
	if g == nil {
		return // deletion for unknown group: ignore
	}
	accumulate(g, t, a.args)
	a.emit(key, g, t)
}

// bindAggArgs compiles each spec's argument against in (nil entries mark
// COUNT(*)). Shared by the one- and two-phase aggregate constructors.
func bindAggArgs(in *data.Schema, specs []AggSpec) ([]*expr.Compiled, error) {
	args := make([]*expr.Compiled, len(specs))
	for i, s := range specs {
		if s.Arg == nil {
			continue
		}
		c, err := expr.Bind(s.Arg, in)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	return args, nil
}

// checkAggDownstream validates that next accepts out-shaped tuples.
func checkAggDownstream(next Operator, out *data.Schema, what string) error {
	if next.Schema().Arity() != out.Arity() {
		return fmt.Errorf("stream: %s output arity %d does not match downstream %s",
			what, out.Arity(), next.Schema())
	}
	return nil
}

// accumulate folds one input tuple into the group's running state — the
// group count and every aggregate's (n, sum, value-multiset) — with the
// tuple's polarity deciding the delta sign. Aggregate and
// PartialAggregate accumulate identically; they differ only in what they
// emit.
func accumulate(g *groupState, t data.Tuple, args []*expr.Compiled) {
	delta := int64(1)
	if t.Op == data.Delete {
		delta = -1
	}
	g.count += delta
	for i := range args {
		st := &g.aggs[i]
		if args[i] == nil { // COUNT(*)
			st.n += delta
			continue
		}
		v := args[i].Eval(t)
		if v.IsNull() {
			continue
		}
		f := v.AsFloat()
		st.n += delta
		st.sum += float64(delta) * f
		st.vals[f] += delta
		if st.vals[f] <= 0 {
			delete(st.vals, f)
		}
	}
}

// emit retracts the group's previous row and emits the new one (subject to
// HAVING). Groups that become empty only retract.
func (a *Aggregate) emit(key uint64, g *groupState, cause data.Tuple) {
	a.table.emitRow(a.next, key, g, finalRow(g, a.specs, a.having), cause)
}

// finalRow builds a group's visible output row — grouping columns followed
// by finalized aggregates — or nil for a dead group / failed HAVING.
// Shared by Aggregate and FinalMerge, whose output contracts are identical.
func finalRow(g *groupState, specs []AggSpec, having *expr.Compiled) []data.Value {
	if g.count <= 0 {
		return nil
	}
	out := make([]data.Value, 0, len(g.keyVals)+len(specs))
	out = append(out, g.keyVals...)
	for i, s := range specs {
		out = append(out, g.aggs[i].result(s.Kind))
	}
	if having != nil && !having.EvalVals(out).AsBool() {
		return nil
	}
	return out
}

// result finalizes one aggregate from its state.
func (st *aggState) result(k AggKind) data.Value {
	switch k {
	case AggCount:
		return data.Int(st.n)
	case AggSum:
		if st.n == 0 {
			return data.Null
		}
		return data.Float(st.sum)
	case AggAvg:
		if st.n == 0 {
			return data.Null
		}
		return data.Float(st.sum / float64(st.n))
	case AggMin:
		if len(st.vals) == 0 {
			return data.Null
		}
		first := true
		min := 0.0
		for v := range st.vals {
			if first || v < min {
				min, first = v, false
			}
		}
		return data.Float(min)
	case AggMax:
		if len(st.vals) == 0 {
			return data.Null
		}
		first := true
		max := 0.0
		for v := range st.vals {
			if first || v > max {
				max, first = v, false
			}
		}
		return data.Float(max)
	}
	return data.Null
}

// Groups reports the live group count (for plan displays).
func (a *Aggregate) Groups() int { return a.table.n }
