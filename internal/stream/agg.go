package stream

import (
	"fmt"
	"strings"

	"aspen/internal/data"
	"aspen/internal/expr"
)

// AggKind enumerates the aggregate functions of the stream engine.
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// ParseAggKind maps a function name from the parser to an AggKind.
func ParseAggKind(name string) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	}
	return 0, false
}

// String names the kind.
func (k AggKind) String() string {
	return [...]string{"count", "sum", "avg", "min", "max"}[k]
}

// AggSpec is one aggregate column: FUNC(Arg) AS Alias. A nil Arg means
// COUNT(*).
type AggSpec struct {
	Kind  AggKind
	Arg   expr.Expr
	Alias string
}

// Aggregate maintains grouped aggregates incrementally over a delta
// stream. On every input delta that changes a group's result, it emits a
// retraction of the group's previous output row followed by an insertion of
// the new one, so downstream state (materialized displays, HAVING filters)
// tracks the aggregate exactly.
// Group state is keyed by 64-bit hashes of the canonical grouping-key
// encoding; a bucket holds every group sharing the hash, and lookups verify
// candidates against the stored key values, so no key string is
// materialized per push.
type Aggregate struct {
	next   Operator
	in     *data.Schema
	out    *data.Schema
	keyIdx []int
	kvIdx  []int // identity indexes into groupState.keyVals
	specs  []AggSpec
	args   []*expr.Compiled // nil entry for COUNT(*)
	groups map[uint64][]*groupState
	n      int // live group count
	hasher data.Hasher
	having *expr.Compiled
}

type groupState struct {
	keyVals []data.Value
	count   int64 // tuples in group
	aggs    []aggState
	lastOut []data.Value // previously emitted row (nil if none)
}

type aggState struct {
	n   int64 // non-null inputs
	sum float64
	// multiset of values for min/max deletion support
	vals map[float64]int64
}

// AggOutSchema computes the output schema of a grouped aggregation:
// grouping columns followed by one column per aggregate (COUNT is INT,
// the numeric aggregates are FLOAT).
func AggOutSchema(in *data.Schema, groupBy []string, specs []AggSpec) (*data.Schema, error) {
	out := &data.Schema{Name: in.Name, IsStream: in.IsStream}
	for _, g := range groupBy {
		i, err := in.ColIndex(g)
		if err != nil {
			return nil, err
		}
		out.Cols = append(out.Cols, in.Cols[i])
	}
	for i, s := range specs {
		typ := data.TInt
		if s.Arg != nil {
			c, err := expr.Bind(s.Arg, in)
			if err != nil {
				return nil, err
			}
			if !c.Type.Numeric() && s.Kind != AggCount {
				return nil, fmt.Errorf("stream: %s over non-numeric %s", s.Kind, c.Type)
			}
			if s.Kind != AggCount {
				typ = data.TFloat // numeric aggregates are computed in float64
			}
		} else if s.Kind != AggCount {
			return nil, fmt.Errorf("stream: %s requires an argument", s.Kind)
		}
		name := s.Alias
		if name == "" {
			name = fmt.Sprintf("%s%d", s.Kind, i+1)
		}
		out.Cols = append(out.Cols, data.Column{Name: name, Type: typ})
	}
	return out, nil
}

// NewAggregate builds the operator. groupBy names grouping columns in the
// input schema; having (optional) is evaluated over the output schema.
func NewAggregate(next Operator, in *data.Schema, groupBy []string, specs []AggSpec, having expr.Expr) (*Aggregate, error) {
	out, err := AggOutSchema(in, groupBy, specs)
	if err != nil {
		return nil, err
	}
	a := &Aggregate{next: next, in: in, out: out, specs: specs, groups: map[uint64][]*groupState{}}
	// keyIdx must stay non-nil: Tuple.HashOn(h, nil) means "all columns", but
	// an empty GROUP BY means one global group (empty key).
	a.keyIdx = make([]int, 0, len(groupBy))
	a.kvIdx = make([]int, 0, len(groupBy))
	for _, g := range groupBy {
		i, _ := in.ColIndex(g) // validated by AggOutSchema
		a.keyIdx = append(a.keyIdx, i)
		a.kvIdx = append(a.kvIdx, len(a.kvIdx))
	}
	for _, s := range specs {
		var c *expr.Compiled
		if s.Arg != nil {
			c, err = expr.Bind(s.Arg, in)
			if err != nil {
				return nil, err
			}
		}
		a.args = append(a.args, c)
	}
	if next.Schema().Arity() != out.Arity() {
		return nil, fmt.Errorf("stream: aggregate output arity %d does not match downstream %s",
			out.Arity(), next.Schema())
	}
	if having != nil {
		c, err := expr.Bind(having, out)
		if err != nil {
			return nil, err
		}
		a.having = c
	}
	return a, nil
}

// Schema implements Operator.
func (a *Aggregate) Schema() *data.Schema { return a.in }

// OutSchema returns the grouped output schema.
func (a *Aggregate) OutSchema() *data.Schema { return a.out }

// Push implements Operator.
func (a *Aggregate) Push(t data.Tuple) {
	key := a.hasher.HashOn(t, a.keyIdx) & testHashMask
	var g *groupState
	for _, cand := range a.groups[key] {
		// Verify the hash-bucket candidate's stored key values against the
		// tuple's grouping columns under key-equality semantics.
		if (data.Tuple{Vals: cand.keyVals}).EqualOn(a.kvIdx, t, a.keyIdx) {
			g = cand
			break
		}
	}
	if g == nil {
		if t.Op == data.Delete {
			return // deletion for unknown group: ignore
		}
		g = &groupState{aggs: make([]aggState, len(a.specs))}
		for i := range g.aggs {
			g.aggs[i].vals = map[float64]int64{}
		}
		g.keyVals = make([]data.Value, len(a.keyIdx))
		for i, idx := range a.keyIdx {
			g.keyVals[i] = t.Vals[idx]
		}
		a.groups[key] = append(a.groups[key], g)
		a.n++
	}

	delta := int64(1)
	if t.Op == data.Delete {
		delta = -1
	}
	g.count += delta
	for i := range a.specs {
		st := &g.aggs[i]
		if a.args[i] == nil { // COUNT(*)
			st.n += delta
			continue
		}
		v := a.args[i].Eval(t)
		if v.IsNull() {
			continue
		}
		f := v.AsFloat()
		st.n += delta
		st.sum += float64(delta) * f
		st.vals[f] += delta
		if st.vals[f] <= 0 {
			delete(st.vals, f)
		}
	}
	a.emit(key, g, t)
}

// emit retracts the group's previous row and emits the new one (subject to
// HAVING). Groups that become empty only retract.
func (a *Aggregate) emit(key uint64, g *groupState, cause data.Tuple) {
	var newOut []data.Value
	if g.count > 0 {
		newOut = make([]data.Value, 0, len(g.keyVals)+len(a.specs))
		newOut = append(newOut, g.keyVals...)
		for i, s := range a.specs {
			newOut = append(newOut, g.aggs[i].result(s.Kind))
		}
		if a.having != nil && !a.having.EvalVals(newOut).AsBool() {
			newOut = nil
		}
	}

	if g.lastOut != nil {
		same := newOut != nil && len(newOut) == len(g.lastOut)
		if same {
			for i := range newOut {
				if !(newOut[i].IsNull() && g.lastOut[i].IsNull()) && !newOut[i].Equal(g.lastOut[i]) {
					same = false
					break
				}
			}
		}
		if same {
			return // no visible change
		}
		a.next.Push(data.Tuple{Vals: g.lastOut, TS: cause.TS, Op: data.Delete})
		g.lastOut = nil
	}
	if newOut != nil {
		a.next.Push(data.Tuple{Vals: newOut, TS: cause.TS, Op: data.Insert})
		g.lastOut = newOut
	}
	if g.count <= 0 {
		bucket := a.groups[key]
		for i, cand := range bucket {
			if cand == g {
				copy(bucket[i:], bucket[i+1:])
				bucket[len(bucket)-1] = nil // drop the reference for GC
				if len(bucket) == 1 {
					delete(a.groups, key)
				} else {
					a.groups[key] = bucket[:len(bucket)-1]
				}
				break
			}
		}
		a.n--
	}
}

// result finalizes one aggregate from its state.
func (st *aggState) result(k AggKind) data.Value {
	switch k {
	case AggCount:
		return data.Int(st.n)
	case AggSum:
		if st.n == 0 {
			return data.Null
		}
		return data.Float(st.sum)
	case AggAvg:
		if st.n == 0 {
			return data.Null
		}
		return data.Float(st.sum / float64(st.n))
	case AggMin:
		if len(st.vals) == 0 {
			return data.Null
		}
		first := true
		min := 0.0
		for v := range st.vals {
			if first || v < min {
				min, first = v, false
			}
		}
		return data.Float(min)
	case AggMax:
		if len(st.vals) == 0 {
			return data.Null
		}
		first := true
		max := 0.0
		for v := range st.vals {
			if first || v > max {
				max, first = v, false
			}
		}
		return data.Float(max)
	}
	return data.Null
}

// Groups reports the live group count (for plan displays).
func (a *Aggregate) Groups() int { return a.n }
