package stream

import (
	"fmt"
	"sync"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

// This file is the engine's partition-parallel execution layer: a pipeline
// is replicated P ways, a Sharder exchange operator routes every tuple to
// the replica owning its key partition, and a Merge funnel folds the
// replicas' outputs back into one sink. Because routing hashes the same
// canonical key encoding the stateful operators key their tables on
// (data.Hasher), join, aggregate and distinct state partitions cleanly by
// construction: all tuples of one group / join key land in one replica.
//
// Concurrency model: single writer per shard. Each shard owns one worker
// goroutine and one bounded FIFO queue; every message for replica j —
// tuple batches from any Sharder of the set, clock ticks, flush barriers —
// travels through queue j, so replica operators never see two goroutines
// and need no locks. Only the funnel sink behind Merge is shared.

// shardBatchCap is the capacity of recycled batch buffers; a Sharder
// flushes a shard's pending buffer early once it fills.
const shardBatchCap = 256

// shardQueueCap bounds each shard's message queue; producers block when a
// worker falls this far behind (backpressure instead of unbounded memory).
const shardQueueCap = 16

type shardMsgKind uint8

const (
	msgData shardMsgKind = iota
	msgTick
	msgBarrier
)

// shardMsg is one queue entry. Data messages carry a tuple batch and the
// replica operator to deliver it to; ticks carry a clock instant for the
// shard's Advancers; barriers carry a WaitGroup the worker signals.
type shardMsg struct {
	head  Operator
	batch []data.Tuple
	now   vtime.Time
	wg    *sync.WaitGroup
	kind  shardMsgKind
}

// FailoverConfig arms a ShardSet with everything it needs to redeploy the
// shards of a lost worker: the replica wire spec, the candidate worker
// addresses, the merged result sink replacement replicas emit into, and a
// builder for the in-process last resort.
type FailoverConfig struct {
	// Spec is the encoded replica subplan every worker shard was deployed
	// from (plan.encodeReplica); redeployments ship the same spec.
	Spec []byte
	// Nodes lists worker addresses failover may dial for a replacement
	// (typically the deployment's original topology). The failed address is
	// skipped; a restarted worker on the same address is usable again by
	// the next failover.
	Nodes []string
	// Sink is the deployment's merge funnel: replacement connections decode
	// results into it, undo retractions push through it, and in-process
	// replacement replicas emit into it.
	Sink Operator
	// LocalDeploy builds an in-process replica from Spec (the same builder
	// shard workers run, plan.DeployReplica) — the last-resort host when no
	// worker is reachable.
	LocalDeploy DeployFunc
	// CheckpointEvery is the tick cadence of worker checkpoints (default 8
	// ticks); CheckpointMaxLog forces a checkpoint once a connection's
	// replay log holds that many entries (default 256), bounding replay
	// work and log memory between ticks.
	CheckpointEvery  int
	CheckpointMaxLog int
	// StallTimeout bounds every ack wait on replacement connections dialed
	// by failover (0 = the package default); the plan layer applies the
	// same bound to the original connections.
	StallTimeout time.Duration
	// OnFailover, when set, observes every completed (or abandoned)
	// failover — tests and operators hook it. It runs with no operator
	// locks held, but before the failover is accounted finished, so it
	// must not call Flush/Snapshot (they wait for pending failovers).
	OnFailover func(FailoverEvent)
}

// FailoverEvent describes one failover outcome.
type FailoverEvent struct {
	// Shards lists the shard indexes that moved.
	Shards []int
	// From is the lost worker's address; To is the replacement worker
	// address, or "" for an in-process replacement.
	From, To string
	// Err, when non-nil, reports that every candidate was exhausted and the
	// shards were abandoned (the pre-failover fail-stop behavior).
	Err error
}

// failoverRuntime is the ShardSet's failover (and rescale) bookkeeping.
type failoverRuntime struct {
	cfg FailoverConfig
	// logs arms the per-connection replay/undo logs and failure
	// notification — full failover. Without it (EnableElastic) the set can
	// still Rescale and checkpoint, but worker loss stays fail-stop.
	logs bool
	// fmu serializes failovers and rescales: a double failure (or a rescale
	// racing a failure) queues behind the first.
	fmu sync.Mutex
	// pending counts scheduled-but-unfinished failovers; Flush waits for it
	// to reach zero so its barrier covers replayed work.
	pmu     sync.Mutex
	cond    *sync.Cond
	pending int
}

func (f *failoverRuntime) schedule() {
	f.pmu.Lock()
	f.pending++
	f.pmu.Unlock()
}

func (f *failoverRuntime) finish() {
	f.pmu.Lock()
	f.pending--
	f.cond.Broadcast()
	f.pmu.Unlock()
}

// waitIdle blocks until no failover is pending and reports whether it had
// to wait.
func (f *failoverRuntime) waitIdle() bool {
	f.pmu.Lock()
	defer f.pmu.Unlock()
	waited := false
	for f.pending > 0 {
		waited = true
		f.cond.Wait()
	}
	return waited
}

// ShardSet is the runtime of one partition-parallel deployment: P worker
// goroutines, their queues, a shared freelist of batch buffers, and the
// per-shard Advancers (replica windows) that clock ticks fan out to.
//
// Lifecycle: NewShardSet → Track (replica windows) → Start → data flows
// through Sharders → Flush (barrier) whenever a consistent snapshot of the
// downstream sink is needed → Close. Close is safe while producers (engine
// ticks, still-subscribed Sharders) are live: the set drops everything
// sent after the close instead of panicking, so the detach a stopping
// deployment performs (Input.Unsubscribe, Engine.UntrackWindow) can land
// before or after the set closes without a window of panics between.
//
// # Failover state machine
//
// With EnableFailover, a remote shard moves through these states:
//
//	SERVING ──(sticky link error: reset, EOF, missed flush-ack or
//	│          credit deadline)──▶ QUARANTINED
//	│
//	│   QUARANTINED: the connection's sends stop reaching the worker but
//	│   keep appending to its replay log, so nothing pushed during the
//	│   outage is lost; results can no longer arrive (the link is severed
//	│   before the logs are read). fail() notifies the set before any
//	│   barrier waiter observes the error, so Flush always finds the
//	│   failover pending and waits it out.
//	│
//	QUARANTINED ──(acquire every Sharder lock and the set lock: all
//	│              producers and the tick fan-out are excluded, so the
//	│              replay log is final)──▶ RESTORING
//	│
//	RESTORING (still under the locks):
//	│   1. undo — retract the connection's un-checkpointed output from
//	│      the sink, newest first (delta operators unwind exactly under
//	│      reverse-order inverse application);
//	│   2. redeploy — ship the replica spec plus the last committed
//	│      checkpoint to a surviving connection, a freshly dialed Nodes
//	│      worker, or in-process via LocalDeploy;
//	│   3. replay — deliver the logged inputs in wire order. Holding the
//	│      locks through the deploy matters: a replica must never receive
//	│      a live clock tick before its replayed (older) input, or its
//	│      windows would advance past tuples that still have to arrive.
//	│
//	RESTORING ──(flip exchange heads and shard routing to the new home,
//	│            release the locks)──▶ SERVING. Deployment.Flush/Snapshot
//	│            barriers are exact throughout: the undo/replay pair
//	│            restores exactly-once delivery, and Flush waits out any
//	│            pending failover before trusting a barrier.
//	│
//	└──(every candidate exhausted)──▶ ABANDONED (fail-stop: the shard's
//	    contribution freezes at its last checkpoint minus the undo;
//	    reported via OnFailover.Err)
//
// A replacement that dies mid-restore is handled by the same machine: its
// own failure queues a failover that undoes whatever the partial replay
// emitted, while the original failover retries the next candidate with the
// full backlog.
type ShardSet struct {
	p      int
	queues []chan shardMsg
	free   chan []data.Tuple
	advs   [][]Advancer
	wg     sync.WaitGroup
	// conns[j] non-nil marks shard j remote: its replica lives on a
	// ShardWorker behind that connection, so batches route over the wire
	// instead of through queue j. uconns holds each distinct connection
	// once, for tick fan-out and barriers. A ShardConn is a logical
	// stream: connections to the same worker share one pooled socket,
	// and a physical-link failure fails every stream on it, so each
	// affected deployment's failover runs independently.
	conns  []*ShardConn
	uconns []*ShardConn
	// running[j] marks queue j's worker goroutine live: a shard that moved
	// remote leaves its (idle) worker parked, and a later move back must
	// not start a second one.
	running []bool
	// lcks[j] lists the stateful operators of an in-process replica in
	// DeployReplica's deterministic order (two-phase cap first, then
	// compile order) so rescales and coordinator snapshots can checkpoint
	// local shards exactly like remote ones.
	lcks [][]Checkpointer
	// sharders lists the set's exchanges; failover rewires their per-shard
	// heads when a replica moves.
	sharders []*Sharder
	fo       *failoverRuntime
	// mu serializes in-flight queue sends against Close: senders hold it
	// for reading (per batch, not per tuple), Close for writing.
	mu      sync.RWMutex
	started bool
	closed  bool
}

// NewShardSet creates a set of p shards (p >= 1), not yet started.
func NewShardSet(p int) *ShardSet {
	if p < 1 {
		p = 1
	}
	s := &ShardSet{
		p:       p,
		queues:  make([]chan shardMsg, p),
		free:    make(chan []data.Tuple, p*shardQueueCap),
		advs:    make([][]Advancer, p),
		conns:   make([]*ShardConn, p),
		running: make([]bool, p),
		lcks:    make([][]Checkpointer, p),
	}
	for j := range s.queues {
		s.queues[j] = make(chan shardMsg, shardQueueCap)
	}
	return s
}

// Shards returns the partition width P.
func (s *ShardSet) Shards() int { return s.p }

// EnableFailover arms checkpointed redeploy of lost workers. Must be
// called before any SetRemote registration (the connections are wired for
// logging and failure notification as they register).
func (s *ShardSet) EnableFailover(cfg FailoverConfig) {
	if s.started {
		panic("stream: ShardSet.EnableFailover after Start")
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 8
	}
	if cfg.CheckpointMaxLog <= 0 {
		cfg.CheckpointMaxLog = 256
	}
	s.fo = &failoverRuntime{cfg: cfg, logs: true}
	s.fo.cond = sync.NewCond(&s.fo.pmu)
}

// EnableElastic arms the set for planned topology change (Rescale,
// CheckpointAll) without the per-frame replay logging and failure
// notification full failover carries: the spec, sink, and local deployer
// let a rescale checkpoint shards and redeploy them elsewhere, but worker
// loss stays fail-stop and the hot path is untouched — armed-but-idle
// elasticity costs nothing. EnableFailover supersedes it.
func (s *ShardSet) EnableElastic(cfg FailoverConfig) {
	s.EnableFailover(cfg)
	s.fo.logs = false
}

// SetRemote marks shard j as living behind a ShardWorker connection (its
// replica was deployed there; the Sharder's head for j is a RemoteHead on
// the same connection). Must be called before Start. The set takes
// ownership of the connection: Close barriers and closes it. With failover
// enabled, the connection is armed for replay logging and failure
// notification.
func (s *ShardSet) SetRemote(j int, c *ShardConn) {
	if s.started {
		panic("stream: ShardSet.SetRemote after Start")
	}
	s.conns[j] = c
	if s.fo != nil && s.fo.logs && c.flog == nil {
		c.enableFailover(s.fo.cfg.CheckpointEvery, s.fo.cfg.CheckpointMaxLog)
	}
	for _, u := range s.uconns {
		if u == c {
			return
		}
	}
	s.uconns = append(s.uconns, c)
}

// Track registers a time-driven operator (a replica's window) with its
// shard; Advance ticks reach it in-order with that shard's data. Must be
// called before Start.
func (s *ShardSet) Track(shard int, a Advancer) {
	if s.started {
		panic("stream: ShardSet.Track after Start")
	}
	if s.conns[shard] != nil {
		panic("stream: ShardSet.Track on a remote shard (its worker tracks replica windows)")
	}
	s.advs[shard] = append(s.advs[shard], a)
}

// SetLocalCks records an in-process replica's stateful operators in
// DeployReplica's deterministic order (two-phase cap first, then compile
// order), so rescales and coordinator snapshots can checkpoint the shard.
// Must be called before Start.
func (s *ShardSet) SetLocalCks(shard int, cks []Checkpointer) {
	if s.started {
		panic("stream: ShardSet.SetLocalCks after Start")
	}
	s.lcks[shard] = cks
}

// Start launches the local shard workers (remote shards are driven by
// their ShardWorker connection). Call after all Track/SetRemote
// registrations and before any Sharder of the set receives data.
func (s *ShardSet) Start() {
	if s.started {
		return
	}
	s.started = true
	for j := 0; j < s.p; j++ {
		if s.conns[j] != nil {
			continue
		}
		s.running[j] = true
		s.wg.Add(1)
		go s.worker(j)
	}
	if s.fo != nil && s.fo.logs {
		// Arm failure notification only now: a worker lost during compile
		// fails the compile; one lost from here on fails over.
		for _, c := range s.uconns {
			c.armFailover(s.connFailed)
		}
	}
}

// worker drains shard j's queue: one goroutine, hence a single writer for
// every operator of replica j. The loop performs no steady-state heap
// allocation: batch buffers recycle through the freelist.
func (s *ShardSet) worker(j int) {
	defer s.wg.Done()
	for m := range s.queues[j] {
		switch m.kind {
		case msgData:
			PushBatch(m.head, m.batch)
			// drop tuple references (the pipeline owns them now) and recycle
			s.recycle(m.batch)
		case msgTick:
			for _, a := range s.advs[j] {
				a.Advance(m.now)
			}
		case msgBarrier:
			m.wg.Done()
		}
	}
}

// buf returns an empty batch buffer, recycling drained ones.
func (s *ShardSet) buf() []data.Tuple {
	select {
	case b := <-s.free:
		return b
	default:
		return make([]data.Tuple, 0, shardBatchCap)
	}
}

// send enqueues one data batch for shard j — through queue j for a local
// shard, over the worker connection for a remote one (the encode copies the
// tuples, so the buffer recycles immediately and the push path stays
// allocation-free on the coordinator). After Close the batch is dropped but
// its buffer still recycles, so a still-subscribed Sharder on a live input
// keeps the push path allocation-free.
func (s *ShardSet) send(j int, head Operator, batch []data.Tuple) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.recycle(batch)
		return
	}
	if c := s.conns[j]; c != nil {
		// Ship outside the lock: a stalled worker then blocks only this
		// producer, never a pending Close (and through the writer-pending
		// RWMutex, every other producer). A send racing Close lands on a
		// failed/closing link and drops there (sticky); on a dead link the
		// batch lands in the replay log when failover is armed — the
		// quarantined shard's traffic replays onto its replacement — and
		// drops like any lossy link otherwise.
		s.mu.RUnlock()
		rh := head.(*RemoteHead)
		_ = c.sendShard(rh.shard, rh.name, rh.key, batch)
		s.recycle(batch)
		return
	}
	s.queues[j] <- shardMsg{kind: msgData, head: head, batch: batch}
	s.mu.RUnlock()
}

// recycle clears a drained batch buffer back into the freelist.
func (s *ShardSet) recycle(batch []data.Tuple) {
	clear(batch)
	select {
	case s.free <- batch[:0]:
	default:
	}
}

// Advance implements Advancer by fanning the tick to every local shard
// queue and once to every worker connection, so replica windows expire
// in-order with their shard's data stream wherever the replica lives. The
// engine tick loop returns promptly (remote ticks can briefly block on
// backpressure); Flush waits for the expiry work. Ticks after Close are
// dropped — Deployment.Close untracks the set from its engine, but an
// in-flight Advance may still deliver one last tick.
//
// Worker connections tick concurrently under the set's read lock: one
// stalled worker costs the engine tick loop at most one stall timeout
// (once — the link error is sticky), not one per connection. The wait
// keeps successive ticks ordered per connection; cross-connection order
// is free, as with the local queues. Holding the read lock across the
// fan-out is what failover relies on for ordering: a restore (which holds
// the write lock) can never interleave a live tick between a replica's
// checkpoint and its replayed input. Close and failover therefore wait at
// most one bounded tick fan-out for the write lock.
func (s *ShardSet) Advance(now vtime.Time) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return
	}
	for j := 0; j < s.p; j++ {
		if s.conns[j] != nil {
			continue
		}
		s.queues[j] <- shardMsg{kind: msgTick, now: now}
	}
	if len(s.uconns) == 1 {
		_ = s.uconns[0].Tick(now) // common case: no fan-out machinery
		return
	}
	var wg sync.WaitGroup
	for _, c := range s.uconns {
		wg.Add(1)
		go func(c *ShardConn) {
			defer wg.Done()
			_ = c.Tick(now)
		}(c)
	}
	wg.Wait()
}

// Flush blocks until every message enqueued before the call — batches and
// ticks alike — has been fully processed, establishing a barrier: after
// Flush, the merged sink reflects everything pushed so far. Producers must
// be quiet for the barrier to be meaningful.
//
// With failover enabled the barrier stays exact across worker loss: a
// failed connection barrier means a failover is already pending (fail()
// notifies before waking waiters), so Flush waits for the redeploy/replay
// to finish and barriers the new topology again.
func (s *ShardSet) Flush() {
	for {
		ok := s.flushOnce()
		if s.fo == nil || !s.fo.logs {
			// Without failure notification (elastic-only arming) no failover
			// can be pending, and a failed barrier is fail-stop — rerunning
			// it would spin on the dead link forever.
			return
		}
		waited := s.fo.waitIdle()
		if ok && !waited {
			return
		}
	}
}

// flushOnce runs one barrier pass over the current topology, reporting
// whether every connection barrier succeeded.
func (s *ShardSet) flushOnce() bool {
	var wg sync.WaitGroup
	s.mu.RLock()
	if !s.started || s.closed {
		s.mu.RUnlock()
		return true
	}
	for j := 0; j < s.p; j++ {
		if s.conns[j] != nil {
			continue
		}
		wg.Add(1)
		s.queues[j] <- shardMsg{kind: msgBarrier, wg: &wg}
	}
	// Remote barriers run concurrently with the local drain: each flush ack
	// arrives behind the worker's results (FIFO), so when Wait returns the
	// merged sink reflects every replica. Without failover a dead link acks
	// vacuously (fail-stop); with it, the error reruns the barrier after
	// the failover completes.
	uconns := s.uconns
	errs := make([]error, len(uconns))
	for i, c := range uconns {
		wg.Add(1)
		go func(i int, c *ShardConn) {
			defer wg.Done()
			errs[i] = c.Flush()
		}(i, c)
	}
	s.mu.RUnlock()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return false
		}
	}
	return true
}

// Close drains the queues, stops the local workers, and barrier-closes
// every worker connection (remote replicas are torn down on their hosts).
// It is safe with live producers: anything a Sharder or Advance sends
// afterwards is dropped (the deployment's result simply stops updating).
// Idempotent.
func (s *ShardSet) Close() {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for j := 0; j < s.p; j++ {
		// Every shard with a live worker goroutine — including one whose
		// shard has since rescaled onto a remote home — gets its queue
		// closed, or wg.Wait below would wait forever.
		if !s.running[j] {
			continue
		}
		close(s.queues[j]) // workers drain buffered messages, then exit
	}
	conns := s.uconns
	s.mu.Unlock()
	s.wg.Wait()
	// Connection teardowns are acked round trips: run them concurrently so
	// closing an N-worker deployment costs one RTT, not N (like Flush).
	var cwg sync.WaitGroup
	for _, c := range conns {
		cwg.Add(1)
		go func(c *ShardConn) {
			defer cwg.Done()
			_ = c.Close()
		}(c)
	}
	cwg.Wait()
}

// connFailed is the sticky-failure hook of every failover-armed connection:
// it registers the pending failover synchronously (so barriers observing
// the failure find it) and runs the redeploy asynchronously (fail() may be
// on the engine tick loop or a producer).
func (s *ShardSet) connFailed(c *ShardConn) {
	s.fo.schedule()
	go s.runFailover(c)
}

// failoverTarget is one candidate home for the shards of a lost worker:
// a replacement connection, or (conn nil) in-process replicas.
type failoverTarget struct {
	conn  *ShardConn
	fresh bool // dialed by this failover: ours to close until cutover
	addr  string
	heads map[int]map[string]Operator // local replica heads per shard
	advs  map[int][]Advancer          // local replica windows per shard
	cks   map[int][]Checkpointer      // local replica stateful operators per shard
}

// deliver replays logged entries into the target, in log (= wire) order.
// Local replicas are delivered directly: until cutover this goroutine is
// their only writer.
func (t *failoverTarget) deliver(entries []logEntry) error {
	for _, e := range entries {
		if t.conn != nil {
			var err error
			if e.tick {
				err = t.conn.Tick(e.now)
			} else {
				err = t.conn.sendShard(e.shard, e.name, headKey(e.shard, e.name), e.batch)
			}
			if err != nil {
				return err
			}
			continue
		}
		if e.tick {
			for _, advs := range t.advs {
				for _, a := range advs {
					a.Advance(e.now)
				}
			}
		} else if h := t.heads[e.shard][e.name]; h != nil {
			PushBatch(h, e.batch)
		}
	}
	return nil
}

// runFailover moves every shard of a failed connection onto a new home:
// sever → lock out producers and ticks → undo → restore (deploy
// checkpoint + replay log) → flip routing. See the state-machine comment
// on ShardSet.
//
// The OnFailover hook fires after every operator lock is released (the
// hook may push or inspect the deployment) but before the failover is
// accounted finished, so a Flush concurrent with it still waits the event
// out — which also means the hook itself must not call Flush/Snapshot.
func (s *ShardSet) runFailover(failed *ShardConn) {
	defer s.fo.finish()
	ev := s.failover(failed)
	if ev != nil && s.fo.cfg.OnFailover != nil {
		s.fo.cfg.OnFailover(*ev)
	}
}

// failover is runFailover's locked core; it returns the event to report.
func (s *ShardSet) failover(failed *ShardConn) *FailoverEvent {
	s.fo.fmu.Lock()
	defer s.fo.fmu.Unlock()

	// Sever: the reader is down once this returns, so the undo log is
	// final; producers keep appending inputs to the replay log until the
	// locks below exclude them.
	failed.severLink()

	// Exclude every appender: data producers hold their Sharder's lock
	// through route-and-send, and the tick fan-out holds the set's read
	// lock through delivery. Under all of them the replay log is final and
	// — critically — no live tick can reach a redeployed replica before
	// its replayed (older) input does.
	s.mu.RLock()
	sharders := s.sharders
	s.mu.RUnlock()
	for _, sh := range sharders {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range sharders {
			sh.mu.Unlock()
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}

	var moved []int
	for j := 0; j < s.p; j++ {
		if s.conns[j] == failed {
			moved = append(moved, j)
		}
	}

	// Undo: retract the connection's un-checkpointed output from the sink,
	// newest first, restoring the sink to the checkpoint-consistent state
	// the redeployed replicas will regenerate from. Delta operators unwind
	// exactly under reverse-order inverse application.
	undo := failed.flog.takeOut()
	for i := len(undo) - 1; i >= 0; i-- {
		batch := undo[i]
		neg := make([]data.Tuple, len(batch))
		for k := range batch {
			neg[k] = batch[len(batch)-1-k].Negate()
		}
		PushBatch(s.fo.cfg.Sink, neg)
	}
	states := failed.flog.statesCopy()
	backlog := failed.flog.takeIn()
	failed.flog.drop()
	s.removeConnLocked(failed)

	if len(moved) == 0 {
		// A replacement that died before any shard was flipped to it: the
		// undo above removed its partial replay output; the failover that
		// was using it retries elsewhere with the full backlog.
		return nil
	}

	// Restore: try surviving connections, then fresh dials, then local. A
	// candidate that dies mid-restore costs a full redelivery to the next
	// one (its own failover, queued behind this one, undoes the partial
	// output it emitted).
	tried := map[string]bool{failed.addr: true}
	for {
		target := s.pickTargetLocked(tried)
		if target == nil {
			err := fmt.Errorf("stream: shard failover: no candidate left for shards %v of %s", moved, failed.addr)
			return &FailoverEvent{Shards: moved, From: failed.addr, Err: err}
		}
		if !s.restoreOn(target, moved, states) {
			s.discardTarget(target)
			continue
		}
		if target.deliver(backlog) != nil {
			s.discardTarget(target)
			continue
		}
		// Flip: reroute the moved shards, rebuild the exchanges' heads,
		// start queue workers for an in-process replacement.
		for _, j := range moved {
			if target.conn != nil {
				s.conns[j] = target.conn
				s.advs[j] = nil
				s.lcks[j] = nil
				continue
			}
			s.conns[j] = nil
			s.advs[j] = target.advs[j]
			s.lcks[j] = target.cks[j]
			if !s.running[j] {
				s.running[j] = true
				s.wg.Add(1)
				go s.worker(j)
			}
		}
		for _, sh := range sharders {
			for _, j := range moved {
				if target.conn != nil {
					sh.heads[j] = target.conn.Head(sh.schema, j, sh.name)
				} else {
					sh.heads[j] = target.heads[j][sh.name]
				}
			}
		}
		if target.conn != nil {
			s.addConnLocked(target.conn)
		}
		return &FailoverEvent{Shards: moved, From: failed.addr, To: target.addr}
	}
}

// pickTargetLocked chooses the next restore candidate: a healthy
// connection the set already owns, a fresh dial to a configured worker
// address, then in-process replicas as the last resort (nil when even that
// was tried). Caller holds s.mu.
func (s *ShardSet) pickTargetLocked(tried map[string]bool) *failoverTarget {
	for _, u := range s.uconns {
		if u.Err() == nil && !tried[u.addr] {
			tried[u.addr] = true
			return &failoverTarget{conn: u, addr: u.addr}
		}
	}
	for _, addr := range s.fo.cfg.Nodes {
		if addr == "" || tried[addr] {
			continue
		}
		tried[addr] = true
		// The bounded dial matters: we hold the deployment's locks, so a
		// blackholed candidate must fail within the stall bound, not the
		// kernel's connect timeout.
		c, err := dialShard(addr, s.fo.cfg.Sink, s.fo.cfg.StallTimeout)
		if err != nil {
			continue
		}
		c.enableFailover(s.fo.cfg.CheckpointEvery, s.fo.cfg.CheckpointMaxLog)
		c.armFailover(s.connFailed)
		return &failoverTarget{conn: c, fresh: true, addr: addr}
	}
	if tried[""] {
		return nil
	}
	tried[""] = true
	return &failoverTarget{}
}

// removeConnLocked drops a connection from the barrier/tick set; caller
// holds s.mu.
func (s *ShardSet) removeConnLocked(c *ShardConn) {
	keep := s.uconns[:0]
	for _, u := range s.uconns {
		if u != c {
			keep = append(keep, u)
		}
	}
	s.uconns = keep
}

// addConnLocked adopts a connection into the barrier/tick set once;
// caller holds s.mu.
func (s *ShardSet) addConnLocked(c *ShardConn) {
	for _, u := range s.uconns {
		if u == c {
			return
		}
	}
	s.uconns = append(s.uconns, c)
}

// restoreOn deploys the moved shards' spec and checkpoint states onto the
// target, building in-process replicas for the local last resort.
func (s *ShardSet) restoreOn(t *failoverTarget, moved []int, states map[int][]byte) bool {
	cfg := &s.fo.cfg
	if t.conn != nil {
		for _, j := range moved {
			if t.conn.Deploy(cfg.Spec, j, states[j]) != nil {
				return false
			}
		}
		return true
	}
	if cfg.LocalDeploy == nil {
		return false
	}
	t.heads = map[int]map[string]Operator{}
	t.advs = map[int][]Advancer{}
	t.cks = map[int][]Checkpointer{}
	sink := cfg.Sink
	send := ResultSender(func(ts []data.Tuple) error {
		PushBatch(sink, ts)
		return nil
	})
	for _, j := range moved {
		heads, advs, cks, err := cfg.LocalDeploy(cfg.Spec, j, states[j], send)
		if err != nil {
			return false
		}
		t.heads[j] = heads
		t.advs[j] = advs
		t.cks[j] = cks
	}
	return true
}

// discardTarget abandons a candidate: fresh connections are torn down (a
// dead one is severed; its own failover, if notified, finds zero mapped
// shards and only undoes whatever partial replay it emitted). A surviving
// connection that died here runs its own failover, queued behind this one.
func (s *ShardSet) discardTarget(t *failoverTarget) {
	if t.conn == nil || !t.fresh {
		return
	}
	if t.conn.Err() != nil {
		t.conn.severLink()
	} else {
		_ = t.conn.Close()
	}
}

// Sharder is the exchange operator in front of one replicated pipeline
// entry point: it routes each pushed tuple to the shard owning the tuple's
// key partition (hash of the key columns modulo P) and forwards batches
// through the set's queues. Several Sharders (one per scan of a plan)
// share one ShardSet, so a join's left and right inputs partitioned on
// aligned keys meet in the same replica.
//
// Ownership: pushed tuples are handed to the owning replica un-cloned, per
// the Operator convention. Producers may push from multiple goroutines;
// dispatch state is mutex-protected (per-shard order then follows arrival
// order under the lock).
type Sharder struct {
	set    *ShardSet
	heads  []Operator // replica entry points, one per shard
	keyIdx []int      // key column indexes; nil = all columns
	schema *data.Schema
	hasher data.Hasher
	// name is the scan's wire name (plan.scanName); failover uses it to
	// rebuild this exchange's head for a moved shard.
	name string

	// keyFns, when set, routes on computed key expressions instead of
	// stored columns: the partition key a plan imposes through a
	// deterministic computed projection. keyBuf is the reusable scratch the
	// expression values are evaluated into (guarded by mu like pend).
	keyFns []*expr.Compiled
	keyBuf []data.Value

	mu   sync.Mutex
	pend [][]data.Tuple // per-shard pending batch, freelist-backed
}

// NewSharder builds the exchange in front of the given replica heads (one
// per shard of set, all sharing a schema). keyIdx names the partition key
// columns; nil partitions on all columns.
func NewSharder(set *ShardSet, heads []Operator, keyIdx []int) (*Sharder, error) {
	if len(heads) != set.p {
		return nil, fmt.Errorf("stream: sharder needs %d heads, got %d", set.p, len(heads))
	}
	sh := &Sharder{
		set:    set,
		heads:  heads,
		keyIdx: keyIdx,
		schema: heads[0].Schema(),
		pend:   make([][]data.Tuple, set.p),
	}
	set.mu.Lock()
	set.sharders = append(set.sharders, sh)
	set.mu.Unlock()
	return sh, nil
}

// NewExprSharder builds an exchange that routes each tuple on the hashed
// values of computed key expressions (all bound against the head schema)
// rather than stored columns. Equal expression values hash equal across
// Sharders (the canonical value encoding), so two exchanges partitioned on
// value-aligned expressions still co-locate matching tuples; and because
// the expressions are deterministic over the tuple's values, an insert and
// its later delete route to the same shard.
func NewExprSharder(set *ShardSet, heads []Operator, keys []*expr.Compiled) (*Sharder, error) {
	sh, err := NewSharder(set, heads, nil)
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("stream: expression sharder needs at least one key")
	}
	sh.keyFns = keys
	sh.keyBuf = make([]data.Value, len(keys))
	return sh, nil
}

// SetName records the exchange's scan wire name for failover rerouting;
// call before the set starts.
func (sh *Sharder) SetName(name string) { sh.name = name }

// Schema implements Operator.
func (sh *Sharder) Schema() *data.Schema { return sh.schema }

// Push implements Operator: the tuple routes to its shard and ships
// immediately (single-tuple pushes do not linger in pending buffers).
func (sh *Sharder) Push(t data.Tuple) {
	sh.mu.Lock()
	sh.route(t)
	sh.flushPending()
	sh.mu.Unlock()
}

// PushBatch implements BatchOperator: the batch is split by key partition
// and each shard's slice ships as one queue message, so downstream
// dispatch amortizes exactly like the serial PushBatch path.
func (sh *Sharder) PushBatch(ts []data.Tuple) {
	if len(ts) == 0 {
		return
	}
	sh.mu.Lock()
	for _, t := range ts {
		sh.route(t)
	}
	sh.flushPending()
	sh.mu.Unlock()
}

// route appends t to its shard's pending buffer, shipping the buffer early
// when full. Caller holds sh.mu.
func (sh *Sharder) route(t data.Tuple) {
	j := 0
	if sh.set.p > 1 {
		if sh.keyFns != nil {
			for i, f := range sh.keyFns {
				sh.keyBuf[i] = f.Eval(t)
			}
			j = int(sh.hasher.HashOn(data.Tuple{Vals: sh.keyBuf}, nil) % uint64(sh.set.p))
		} else {
			j = int(sh.hasher.HashOn(t, sh.keyIdx) % uint64(sh.set.p))
		}
	}
	b := sh.pend[j]
	if b == nil {
		b = sh.set.buf()
	}
	b = append(b, t)
	if len(b) == cap(b) {
		sh.set.send(j, sh.heads[j], b)
		b = nil
	}
	sh.pend[j] = b
}

// flushPending ships every non-empty pending buffer. Caller holds sh.mu.
func (sh *Sharder) flushPending() {
	for j, b := range sh.pend {
		if len(b) > 0 {
			sh.set.send(j, sh.heads[j], b)
			sh.pend[j] = nil
		}
	}
}

// Merge folds concurrent shard outputs into one downstream operator: a
// mutex funnel. Per-shard output order is preserved (each shard pushes
// from its single worker), interleaving across shards is arbitrary —
// sound, because partitioned state never emits deltas for the same key
// from two shards.
type Merge struct {
	mu   sync.Mutex
	next Operator
}

// NewMerge builds a funnel in front of next.
func NewMerge(next Operator) *Merge { return &Merge{next: next} }

// Schema implements Operator.
func (m *Merge) Schema() *data.Schema { return m.next.Schema() }

// Push implements Operator.
func (m *Merge) Push(t data.Tuple) {
	m.mu.Lock()
	m.next.Push(t)
	m.mu.Unlock()
}

// PushBatch implements BatchOperator: the whole batch crosses the funnel
// under one lock acquisition.
func (m *Merge) PushBatch(ts []data.Tuple) {
	m.mu.Lock()
	PushBatch(m.next, ts)
	m.mu.Unlock()
}
