package stream

import (
	"fmt"
	"sync"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

// This file is the engine's partition-parallel execution layer: a pipeline
// is replicated P ways, a Sharder exchange operator routes every tuple to
// the replica owning its key partition, and a Merge funnel folds the
// replicas' outputs back into one sink. Because routing hashes the same
// canonical key encoding the stateful operators key their tables on
// (data.Hasher), join, aggregate and distinct state partitions cleanly by
// construction: all tuples of one group / join key land in one replica.
//
// Concurrency model: single writer per shard. Each shard owns one worker
// goroutine and one bounded FIFO queue; every message for replica j —
// tuple batches from any Sharder of the set, clock ticks, flush barriers —
// travels through queue j, so replica operators never see two goroutines
// and need no locks. Only the funnel sink behind Merge is shared.

// shardBatchCap is the capacity of recycled batch buffers; a Sharder
// flushes a shard's pending buffer early once it fills.
const shardBatchCap = 256

// shardQueueCap bounds each shard's message queue; producers block when a
// worker falls this far behind (backpressure instead of unbounded memory).
const shardQueueCap = 16

type shardMsgKind uint8

const (
	msgData shardMsgKind = iota
	msgTick
	msgBarrier
)

// shardMsg is one queue entry. Data messages carry a tuple batch and the
// replica operator to deliver it to; ticks carry a clock instant for the
// shard's Advancers; barriers carry a WaitGroup the worker signals.
type shardMsg struct {
	head  Operator
	batch []data.Tuple
	now   vtime.Time
	wg    *sync.WaitGroup
	kind  shardMsgKind
}

// ShardSet is the runtime of one partition-parallel deployment: P worker
// goroutines, their queues, a shared freelist of batch buffers, and the
// per-shard Advancers (replica windows) that clock ticks fan out to.
//
// Lifecycle: NewShardSet → Track (replica windows) → Start → data flows
// through Sharders → Flush (barrier) whenever a consistent snapshot of the
// downstream sink is needed → Close. Close is safe while producers (engine
// ticks, still-subscribed Sharders) are live: the set drops everything
// sent after the close instead of panicking, matching the engine's
// "stopped queries abandon their operator state" convention.
type ShardSet struct {
	p      int
	queues []chan shardMsg
	free   chan []data.Tuple
	advs   [][]Advancer
	wg     sync.WaitGroup
	// conns[j] non-nil marks shard j remote: its replica lives on a
	// ShardWorker behind that connection, so batches route over the wire
	// instead of through queue j. uconns holds each distinct connection
	// once, for tick fan-out and barriers.
	conns  []*ShardConn
	uconns []*ShardConn
	// mu serializes in-flight queue sends against Close: senders hold it
	// for reading (per batch, not per tuple), Close for writing.
	mu      sync.RWMutex
	started bool
	closed  bool
}

// NewShardSet creates a set of p shards (p >= 1), not yet started.
func NewShardSet(p int) *ShardSet {
	if p < 1 {
		p = 1
	}
	s := &ShardSet{
		p:      p,
		queues: make([]chan shardMsg, p),
		free:   make(chan []data.Tuple, p*shardQueueCap),
		advs:   make([][]Advancer, p),
		conns:  make([]*ShardConn, p),
	}
	for j := range s.queues {
		s.queues[j] = make(chan shardMsg, shardQueueCap)
	}
	return s
}

// Shards returns the partition width P.
func (s *ShardSet) Shards() int { return s.p }

// SetRemote marks shard j as living behind a ShardWorker connection (its
// replica was deployed there; the Sharder's head for j is a RemoteHead on
// the same connection). Must be called before Start. The set takes
// ownership of the connection: Close barriers and closes it.
func (s *ShardSet) SetRemote(j int, c *ShardConn) {
	if s.started {
		panic("stream: ShardSet.SetRemote after Start")
	}
	s.conns[j] = c
	for _, u := range s.uconns {
		if u == c {
			return
		}
	}
	s.uconns = append(s.uconns, c)
}

// Track registers a time-driven operator (a replica's window) with its
// shard; Advance ticks reach it in-order with that shard's data. Must be
// called before Start.
func (s *ShardSet) Track(shard int, a Advancer) {
	if s.started {
		panic("stream: ShardSet.Track after Start")
	}
	if s.conns[shard] != nil {
		panic("stream: ShardSet.Track on a remote shard (its worker tracks replica windows)")
	}
	s.advs[shard] = append(s.advs[shard], a)
}

// Start launches the local shard workers (remote shards are driven by
// their ShardWorker connection). Call after all Track/SetRemote
// registrations and before any Sharder of the set receives data.
func (s *ShardSet) Start() {
	if s.started {
		return
	}
	s.started = true
	for j := 0; j < s.p; j++ {
		if s.conns[j] != nil {
			continue
		}
		s.wg.Add(1)
		go s.worker(j)
	}
}

// worker drains shard j's queue: one goroutine, hence a single writer for
// every operator of replica j. The loop performs no steady-state heap
// allocation: batch buffers recycle through the freelist.
func (s *ShardSet) worker(j int) {
	defer s.wg.Done()
	for m := range s.queues[j] {
		switch m.kind {
		case msgData:
			PushBatch(m.head, m.batch)
			// drop tuple references (the pipeline owns them now) and recycle
			s.recycle(m.batch)
		case msgTick:
			for _, a := range s.advs[j] {
				a.Advance(m.now)
			}
		case msgBarrier:
			m.wg.Done()
		}
	}
}

// buf returns an empty batch buffer, recycling drained ones.
func (s *ShardSet) buf() []data.Tuple {
	select {
	case b := <-s.free:
		return b
	default:
		return make([]data.Tuple, 0, shardBatchCap)
	}
}

// send enqueues one data batch for shard j — through queue j for a local
// shard, over the worker connection for a remote one (the encode copies the
// tuples, so the buffer recycles immediately and the push path stays
// allocation-free on the coordinator). After Close the batch is dropped but
// its buffer still recycles, so a still-subscribed Sharder on a live input
// keeps the push path allocation-free.
func (s *ShardSet) send(j int, head Operator, batch []data.Tuple) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.recycle(batch)
		return
	}
	if c := s.conns[j]; c != nil {
		// Ship outside the lock: a stalled worker then blocks only this
		// producer, never a pending Close (and through the writer-pending
		// RWMutex, every other producer). A send racing Close lands on a
		// failed/closing link and drops there (sticky), and a dead link
		// drops the batch the same way — the shard's contribution stops
		// updating, like any lossy link.
		s.mu.RUnlock()
		_ = c.sendBatchKey(head.(*RemoteHead).key, batch)
		s.recycle(batch)
		return
	}
	s.queues[j] <- shardMsg{kind: msgData, head: head, batch: batch}
	s.mu.RUnlock()
}

// recycle clears a drained batch buffer back into the freelist.
func (s *ShardSet) recycle(batch []data.Tuple) {
	clear(batch)
	select {
	case s.free <- batch[:0]:
	default:
	}
}

// Advance implements Advancer by fanning the tick to every local shard
// queue and once to every worker connection, so replica windows expire
// in-order with their shard's data stream wherever the replica lives. The
// engine tick loop returns promptly (remote ticks can briefly block on
// backpressure); Flush waits for the expiry work. Ticks after Close are
// dropped (the engine has no untrack).
//
// Worker connections tick concurrently, outside the set's lock: one
// stalled worker costs the engine tick loop at most one stall timeout
// (once — the link error is sticky), not one per connection, and a
// pending Close is never starved of the write lock. The wait keeps
// successive ticks ordered per connection; cross-connection order is
// free, as with the local queues.
func (s *ShardSet) Advance(now vtime.Time) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	for j := 0; j < s.p; j++ {
		if s.conns[j] != nil {
			continue
		}
		s.queues[j] <- shardMsg{kind: msgTick, now: now}
	}
	conns := s.uconns
	s.mu.RUnlock()
	// A tick racing a concurrent Close lands on a closed/failed link and
	// drops there (sticky), like any post-Close send.
	if len(conns) == 1 {
		_ = conns[0].Tick(now) // common case: no fan-out machinery
		return
	}
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *ShardConn) {
			defer wg.Done()
			_ = c.Tick(now)
		}(c)
	}
	wg.Wait()
}

// Flush blocks until every message enqueued before the call — batches and
// ticks alike — has been fully processed, establishing a barrier: after
// Flush, the merged sink reflects everything pushed so far. Producers must
// be quiet for the barrier to be meaningful.
func (s *ShardSet) Flush() {
	var wg sync.WaitGroup
	s.mu.RLock()
	if !s.started || s.closed {
		s.mu.RUnlock()
		return
	}
	for j := 0; j < s.p; j++ {
		if s.conns[j] != nil {
			continue
		}
		wg.Add(1)
		s.queues[j] <- shardMsg{kind: msgBarrier, wg: &wg}
	}
	// Remote barriers run concurrently with the local drain: each flush ack
	// arrives behind the worker's results (FIFO), so when Wait returns the
	// merged sink reflects every replica. A dead link acks vacuously.
	for _, c := range s.uconns {
		wg.Add(1)
		go func(c *ShardConn) {
			defer wg.Done()
			_ = c.Flush()
		}(c)
	}
	s.mu.RUnlock()
	wg.Wait()
}

// Close drains the queues, stops the local workers, and barrier-closes
// every worker connection (remote replicas are torn down on their hosts).
// It is safe with live producers: anything a Sharder or Advance sends
// afterwards is dropped (the deployment's result simply stops updating).
// Idempotent.
func (s *ShardSet) Close() {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for j := 0; j < s.p; j++ {
		if s.conns[j] != nil {
			continue
		}
		close(s.queues[j]) // workers drain buffered messages, then exit
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Connection teardowns are acked round trips: run them concurrently so
	// closing an N-worker deployment costs one RTT, not N (like Flush).
	var cwg sync.WaitGroup
	for _, c := range s.uconns {
		cwg.Add(1)
		go func(c *ShardConn) {
			defer cwg.Done()
			_ = c.Close()
		}(c)
	}
	cwg.Wait()
}

// Sharder is the exchange operator in front of one replicated pipeline
// entry point: it routes each pushed tuple to the shard owning the tuple's
// key partition (hash of the key columns modulo P) and forwards batches
// through the set's queues. Several Sharders (one per scan of a plan)
// share one ShardSet, so a join's left and right inputs partitioned on
// aligned keys meet in the same replica.
//
// Ownership: pushed tuples are handed to the owning replica un-cloned, per
// the Operator convention. Producers may push from multiple goroutines;
// dispatch state is mutex-protected (per-shard order then follows arrival
// order under the lock).
type Sharder struct {
	set    *ShardSet
	heads  []Operator // replica entry points, one per shard
	keyIdx []int      // key column indexes; nil = all columns
	schema *data.Schema
	hasher data.Hasher

	// keyFns, when set, routes on computed key expressions instead of
	// stored columns: the partition key a plan imposes through a
	// deterministic computed projection. keyBuf is the reusable scratch the
	// expression values are evaluated into (guarded by mu like pend).
	keyFns []*expr.Compiled
	keyBuf []data.Value

	mu   sync.Mutex
	pend [][]data.Tuple // per-shard pending batch, freelist-backed
}

// NewSharder builds the exchange in front of the given replica heads (one
// per shard of set, all sharing a schema). keyIdx names the partition key
// columns; nil partitions on all columns.
func NewSharder(set *ShardSet, heads []Operator, keyIdx []int) (*Sharder, error) {
	if len(heads) != set.p {
		return nil, fmt.Errorf("stream: sharder needs %d heads, got %d", set.p, len(heads))
	}
	return &Sharder{
		set:    set,
		heads:  heads,
		keyIdx: keyIdx,
		schema: heads[0].Schema(),
		pend:   make([][]data.Tuple, set.p),
	}, nil
}

// NewExprSharder builds an exchange that routes each tuple on the hashed
// values of computed key expressions (all bound against the head schema)
// rather than stored columns. Equal expression values hash equal across
// Sharders (the canonical value encoding), so two exchanges partitioned on
// value-aligned expressions still co-locate matching tuples; and because
// the expressions are deterministic over the tuple's values, an insert and
// its later delete route to the same shard.
func NewExprSharder(set *ShardSet, heads []Operator, keys []*expr.Compiled) (*Sharder, error) {
	sh, err := NewSharder(set, heads, nil)
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("stream: expression sharder needs at least one key")
	}
	sh.keyFns = keys
	sh.keyBuf = make([]data.Value, len(keys))
	return sh, nil
}

// Schema implements Operator.
func (sh *Sharder) Schema() *data.Schema { return sh.schema }

// Push implements Operator: the tuple routes to its shard and ships
// immediately (single-tuple pushes do not linger in pending buffers).
func (sh *Sharder) Push(t data.Tuple) {
	sh.mu.Lock()
	sh.route(t)
	sh.flushPending()
	sh.mu.Unlock()
}

// PushBatch implements BatchOperator: the batch is split by key partition
// and each shard's slice ships as one queue message, so downstream
// dispatch amortizes exactly like the serial PushBatch path.
func (sh *Sharder) PushBatch(ts []data.Tuple) {
	if len(ts) == 0 {
		return
	}
	sh.mu.Lock()
	for _, t := range ts {
		sh.route(t)
	}
	sh.flushPending()
	sh.mu.Unlock()
}

// route appends t to its shard's pending buffer, shipping the buffer early
// when full. Caller holds sh.mu.
func (sh *Sharder) route(t data.Tuple) {
	j := 0
	if sh.set.p > 1 {
		if sh.keyFns != nil {
			for i, f := range sh.keyFns {
				sh.keyBuf[i] = f.Eval(t)
			}
			j = int(sh.hasher.HashOn(data.Tuple{Vals: sh.keyBuf}, nil) % uint64(sh.set.p))
		} else {
			j = int(sh.hasher.HashOn(t, sh.keyIdx) % uint64(sh.set.p))
		}
	}
	b := sh.pend[j]
	if b == nil {
		b = sh.set.buf()
	}
	b = append(b, t)
	if len(b) == cap(b) {
		sh.set.send(j, sh.heads[j], b)
		b = nil
	}
	sh.pend[j] = b
}

// flushPending ships every non-empty pending buffer. Caller holds sh.mu.
func (sh *Sharder) flushPending() {
	for j, b := range sh.pend {
		if len(b) > 0 {
			sh.set.send(j, sh.heads[j], b)
			sh.pend[j] = nil
		}
	}
}

// Merge folds concurrent shard outputs into one downstream operator: a
// mutex funnel. Per-shard output order is preserved (each shard pushes
// from its single worker), interleaving across shards is arbitrary —
// sound, because partitioned state never emits deltas for the same key
// from two shards.
type Merge struct {
	mu   sync.Mutex
	next Operator
}

// NewMerge builds a funnel in front of next.
func NewMerge(next Operator) *Merge { return &Merge{next: next} }

// Schema implements Operator.
func (m *Merge) Schema() *data.Schema { return m.next.Schema() }

// Push implements Operator.
func (m *Merge) Push(t data.Tuple) {
	m.mu.Lock()
	m.next.Push(t)
	m.mu.Unlock()
}

// PushBatch implements BatchOperator: the whole batch crosses the funnel
// under one lock acquisition.
func (m *Merge) PushBatch(ts []data.Tuple) {
	m.mu.Lock()
	PushBatch(m.next, ts)
	m.mu.Unlock()
}
