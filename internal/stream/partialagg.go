package stream

import (
	"fmt"

	"aspen/internal/data"
	"aspen/internal/expr"
)

// Two-phase aggregation: a partition-parallel plan that cannot co-locate a
// group's tuples in one replica (a global aggregate, or a grouping key the
// exchange cannot partition on) splits the Aggregate into
//
//	replica j: PartialAggregate  — per-shard partial group states
//	serial:    FinalMerge        — merges the shards' partials per group
//
// PartialAggregate emits each group's partial state as a tuple; every
// change retracts the previous partial row and inserts the new one, the
// exact discipline Aggregate uses for visible rows, so FinalMerge sees at
// most one live contribution per (group, shard) at any instant and can
// combine contributions additively. Deletions flow through both stages:
// the partial state shrinks, the shrunken partial replaces the old one,
// and the merged result follows.
//
// The partial row layout (AggPartialSchema) is the grouping columns, the
// group's tuple count, then per aggregate a non-null-input count and a
// kind-dependent value (SUM/AVG: the partial sum; MIN/MAX: the shard's
// current extremum; COUNT: unused). Summing counts and sums merges
// exactly; MIN/MAX merge through a multiset of per-shard extrema, since
// the global extremum is the extremum of the shard extrema.

// AggPartialSchema computes the partial-state schema of a two-phase
// aggregation over in: grouping columns, the group tuple count, then one
// (count, value) column pair per aggregate.
func AggPartialSchema(in *data.Schema, groupBy []string, specs []AggSpec) (*data.Schema, error) {
	if _, err := AggOutSchema(in, groupBy, specs); err != nil {
		return nil, err // same validation (group columns resolve, args bind)
	}
	out := &data.Schema{Name: in.Name, IsStream: in.IsStream}
	for _, g := range groupBy {
		i, _ := in.ColIndex(g)
		out.Cols = append(out.Cols, in.Cols[i])
	}
	out.Cols = append(out.Cols, data.Column{Name: "_cnt", Type: data.TInt})
	for i := range specs {
		out.Cols = append(out.Cols,
			data.Column{Name: fmt.Sprintf("_n%d", i+1), Type: data.TInt},
			data.Column{Name: fmt.Sprintf("_v%d", i+1), Type: data.TFloat})
	}
	return out, nil
}

// PartialAggregate is the replica-side stage: it maintains the same group
// state as Aggregate over the tuples routed to its shard, but emits
// partial-state rows instead of finalized results.
type PartialAggregate struct {
	next  Operator
	in    *data.Schema
	out   *data.Schema
	specs []AggSpec
	args  []*expr.Compiled // nil entry for COUNT(*)
	table groupTable
}

// NewPartialAggregate builds the partial stage; next (the exchange funnel
// in front of the FinalMerge) must accept AggPartialSchema-shaped tuples.
func NewPartialAggregate(next Operator, in *data.Schema, groupBy []string, specs []AggSpec) (*PartialAggregate, error) {
	out, err := AggPartialSchema(in, groupBy, specs)
	if err != nil {
		return nil, err
	}
	a := &PartialAggregate{next: next, in: in, out: out, specs: specs,
		table: newGroupTable(in, groupBy, len(specs))}
	if a.args, err = bindAggArgs(in, specs); err != nil {
		return nil, err
	}
	if err := checkAggDownstream(next, out, "partial aggregate"); err != nil {
		return nil, err
	}
	return a, nil
}

// Schema implements Operator.
func (a *PartialAggregate) Schema() *data.Schema { return a.in }

// OutSchema returns the partial-state schema.
func (a *PartialAggregate) OutSchema() *data.Schema { return a.out }

// Groups reports the live group count of this shard.
func (a *PartialAggregate) Groups() int { return a.table.n }

// Push implements Operator.
func (a *PartialAggregate) Push(t data.Tuple) {
	key, g := a.table.lookup(t)
	if g == nil {
		return // deletion for unknown group: ignore
	}
	accumulate(g, t, a.args)
	a.emit(key, g, t)
}

// emit replaces the group's previous partial row with the current state;
// dead groups only retract (their contribution leaves the merge).
func (a *PartialAggregate) emit(key uint64, g *groupState, cause data.Tuple) {
	var newOut []data.Value
	if g.count > 0 {
		newOut = make([]data.Value, 0, len(g.keyVals)+1+2*len(a.specs))
		newOut = append(newOut, g.keyVals...)
		newOut = append(newOut, data.Int(g.count))
		for i, s := range a.specs {
			st := &g.aggs[i]
			newOut = append(newOut, data.Int(st.n), st.partial(s.Kind))
		}
	}
	a.table.emitRow(a.next, key, g, newOut, cause)
}

// partial encodes the kind-dependent partial value of one aggregate.
func (st *aggState) partial(k AggKind) data.Value {
	switch k {
	case AggCount:
		return data.Null // the count column carries everything
	case AggAvg:
		if st.n == 0 {
			return data.Null
		}
		return data.Float(st.sum) // finalized only at the merge
	default: // SUM, MIN, MAX partials encode like their finalized results
		return st.result(k)
	}
}

// FinalMerge is the serial stage: it combines the shards' partial-state
// rows per group and emits finalized rows exactly as Aggregate would have
// (retract-then-insert on change, HAVING over the output schema). It is a
// single-writer operator; the plan places it behind the exchange's Merge
// funnel, which serializes the shard workers' pushes.
type FinalMerge struct {
	next   Operator
	in     *data.Schema // AggPartialSchema(source, groupBy, specs)
	out    *data.Schema
	specs  []AggSpec
	cntIdx int   // group tuple-count column in the partial row
	nIdx   []int // per-spec non-null-input count columns
	vIdx   []int // per-spec partial value columns
	table  groupTable
	having *expr.Compiled
}

// NewFinalMerge builds the merge stage for an aggregation over source (the
// pre-aggregation schema). next must accept AggOutSchema-shaped tuples;
// having (optional) is evaluated over that output schema.
func NewFinalMerge(next Operator, source *data.Schema, groupBy []string, specs []AggSpec, having expr.Expr) (*FinalMerge, error) {
	in, err := AggPartialSchema(source, groupBy, specs)
	if err != nil {
		return nil, err
	}
	out, err := AggOutSchema(source, groupBy, specs)
	if err != nil {
		return nil, err
	}
	f := &FinalMerge{next: next, in: in, out: out, specs: specs,
		cntIdx: len(groupBy),
		table:  groupTable{nAggs: len(specs), groups: map[uint64][]*groupState{}}}
	// Group columns sit first in the partial row, in groupBy order; key on
	// them positionally (identity indexes, like the stored key values).
	f.table.keyIdx = make([]int, len(groupBy))
	f.table.kvIdx = make([]int, len(groupBy))
	for i := range groupBy {
		f.table.keyIdx[i] = i
		f.table.kvIdx[i] = i
	}
	for i := range specs {
		f.nIdx = append(f.nIdx, f.cntIdx+1+2*i)
		f.vIdx = append(f.vIdx, f.cntIdx+2+2*i)
	}
	if next.Schema().Arity() != out.Arity() {
		return nil, fmt.Errorf("stream: merged aggregate output arity %d does not match downstream %s",
			out.Arity(), next.Schema())
	}
	if having != nil {
		c, err := expr.Bind(having, out)
		if err != nil {
			return nil, err
		}
		f.having = c
	}
	return f, nil
}

// Schema implements Operator (the partial-state input schema).
func (f *FinalMerge) Schema() *data.Schema { return f.in }

// OutSchema returns the finalized output schema.
func (f *FinalMerge) OutSchema() *data.Schema { return f.out }

// Groups reports the live merged group count.
func (f *FinalMerge) Groups() int { return f.table.n }

// Push implements Operator: one partial-state delta folds into the group's
// merged totals. Contributions are additive (counts and sums subtract
// exactly; MIN/MAX contributions live in a delta-counted multiset), so
// interleaving across shards is immaterial — each shard retracts its old
// partial before inserting the new one, in its own order.
func (f *FinalMerge) Push(t data.Tuple) {
	key, g := f.table.lookup(t)
	if g == nil {
		return // retraction for an unknown group: ignore
	}
	delta := int64(1)
	if t.Op == data.Delete {
		delta = -1
	}
	g.count += delta * t.Vals[f.cntIdx].AsInt()
	for i, s := range f.specs {
		st := &g.aggs[i]
		st.n += delta * t.Vals[f.nIdx[i]].AsInt()
		v := t.Vals[f.vIdx[i]]
		if v.IsNull() {
			continue
		}
		switch s.Kind {
		case AggSum, AggAvg:
			st.sum += float64(delta) * v.AsFloat()
		case AggMin, AggMax:
			fv := v.AsFloat()
			st.vals[fv] += delta
			if st.vals[fv] <= 0 {
				delete(st.vals, fv)
			}
		}
	}
	f.table.emitRow(f.next, key, g, finalRow(g, f.specs, f.having), t)
}
