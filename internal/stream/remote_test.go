package stream

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// sendSink forwards every tuple straight back through the worker's
// ResultSender — the minimal replica pipeline for protocol tests.
type sendSink struct {
	schema *data.Schema
	send   ResultSender
}

func (s *sendSink) Schema() *data.Schema { return s.schema }

func (s *sendSink) Push(t data.Tuple) {
	batch := [1]data.Tuple{t}
	_ = s.send(batch[:])
}

func (s *sendSink) PushBatch(ts []data.Tuple) { _ = s.send(ts) }

// echoDeploy builds a windowed echo replica: tuples flow through a 2m time
// window back to the coordinator, so expiry deletions exercise the tick
// path. A spec of "fail" rejects the deploy; a checkpoint restores into
// the window.
func echoDeploy(spec []byte, shard int, state []byte, send ResultSender) (map[string]Operator, []Advancer, []Checkpointer, error) {
	if string(spec) == "fail" {
		return nil, nil, nil, errors.New("replica spec rejected")
	}
	win := NewTimeWindow(&sendSink{schema: tempSchema(), send: send}, 2*time.Minute, 0)
	if err := RestoreCheckpoint([]Checkpointer{win}, state); err != nil {
		return nil, nil, nil, err
	}
	return map[string]Operator{"s0": win}, []Advancer{win}, []Checkpointer{win}, nil
}

func startEchoWorker(t *testing.T) *ShardWorker {
	t.Helper()
	w, err := NewShardWorker("127.0.0.1:0", echoDeploy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// TestShardConnRoundtrip drives the full frame protocol against a worker:
// deploy, batch data, flush barrier (results drained on return), tick
// expiry, close barrier.
func TestShardConnRoundtrip(t *testing.T) {
	w := startEchoWorker(t)
	col := NewCollector(tempSchema())
	c, err := DialShard(w.Addr(), col)
	if err != nil {
		t.Fatal(err)
	}
	if c.Addr() != w.Addr() {
		t.Fatalf("conn addr %s, want %s", c.Addr(), w.Addr())
	}
	if err := c.Deploy(nil, 0, nil); err != nil {
		t.Fatal(err)
	}

	batch := []data.Tuple{temp(1, "L1", 20), temp(2, "L2", 21)}
	if err := c.SendBatch(0, "s0", batch); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(0, "s0", nil); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
	// Flush is a result-drain barrier: no waitFor needed.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 2 {
		t.Fatalf("after flush: %d results, want 2", col.Len())
	}
	// A singleton push through the RemoteHead stand-in.
	rh := c.Head(tempSchema(), 0, "s0")
	if rh.Schema() != tempSchema() && rh.Schema().Arity() != 2 {
		t.Fatal("remote head schema")
	}
	rh.Push(temp(3, "L3", 22))
	// Batches to an unknown head drop silently, like Server.
	if err := c.SendBatch(0, "nowhere", batch); err != nil {
		t.Fatal(err)
	}
	// Advancing past the window retracts all three live tuples.
	if err := c.Tick(vtime.Time(10 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got := col.Snapshot()
	if len(got) != 6 {
		t.Fatalf("after expiry: %d results, want 6 (3 inserts + 3 deletes)", len(got))
	}
	dels := 0
	for _, tu := range got {
		if tu.Op == data.Delete {
			dels++
		}
	}
	if dels != 3 {
		t.Fatalf("expiry deletes = %d, want 3", dels)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}

// TestShardConnDeployError: a worker-side compile failure travels back as
// the Deploy error.
func TestShardConnDeployError(t *testing.T) {
	w := startEchoWorker(t)
	c, err := DialShard(w.Addr(), NewCollector(tempSchema()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Deploy([]byte("fail"), 0, nil); err == nil {
		t.Fatal("rejected spec must fail the deploy barrier")
	}
	// The connection survives a failed deploy.
	if err := c.Deploy(nil, 0, nil); err != nil {
		t.Fatalf("deploy after failed deploy: %v", err)
	}
}

// TestShardSetMixedLocalRemote runs one ShardSet with shard 0 in-process
// and shard 1 behind a worker: every routed tuple must reach the shared
// funnel exactly once, ticks must expire both replicas' windows, and
// Close must tear both down.
func TestShardSetMixedLocalRemote(t *testing.T) {
	w := startEchoWorker(t)
	mat := NewMaterialize(tempSchema())
	merge := NewMerge(mat)

	c, err := DialShard(w.Addr(), merge)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(nil, 1, nil); err != nil {
		t.Fatal(err)
	}

	set := NewShardSet(2)
	// Local replica mirrors the worker's echo pipeline.
	lwin := NewTimeWindow(merge, 2*time.Minute, 0)
	set.Track(0, lwin)
	set.SetRemote(1, c)
	set.SetRemote(1, c) // idempotent re-registration keeps one unique conn
	if set.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", set.Shards())
	}
	heads := []Operator{lwin, c.Head(tempSchema(), 1, "s0")}
	sh, err := NewSharder(set, heads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Schema().Arity() != 2 {
		t.Fatal("sharder schema")
	}
	set.Start()

	const n = 50
	batch := make([]data.Tuple, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, temp(int64(i+1), fmt.Sprintf("L%d", i%7), float64(i)))
	}
	sh.PushBatch(batch)
	set.Flush()
	if mat.Len() != n {
		t.Fatalf("merged rows = %d, want %d", mat.Len(), n)
	}
	// Ticks fan to the local queue and the worker connection alike.
	set.Advance(vtime.Time(time.Hour))
	set.Flush()
	if mat.Len() != 0 {
		t.Fatalf("after expiry: %d live rows, want 0", mat.Len())
	}

	set.Close()
	set.Close() // idempotent with a remote shard
	// Drop-after-close: routing into a closed set must not panic or block,
	// for local and remote shards alike.
	sh.PushBatch([]data.Tuple{temp(1, "L1", 1), temp(2, "L2", 2)})
	set.Advance(vtime.Time(2 * time.Hour))
	set.Flush()
	if mat.Len() != 0 {
		t.Fatalf("closed set still updated the sink: %d rows", mat.Len())
	}
}

// TestShardConnDeploySilentPeerTimesOut: a peer that accepts the
// connection but never acks shard frames — a plain engine Server, or any
// mistyped address — fails the deploy within the ack timeout and marks the
// link broken, instead of hanging the compile forever.
func TestShardConnDeploySilentPeerTimesOut(t *testing.T) {
	old := remoteStallTimeout
	remoteStallTimeout = 100 * time.Millisecond
	t.Cleanup(func() { remoteStallTimeout = old })

	// A plain engine transport server: accepts, decodes, drops shard frames.
	srv, err := NewServer(NewEngine("plain", vtime.NewScheduler()), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialShard(srv.Addr(), NewCollector(tempSchema()))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Deploy(nil, 0, nil) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("deploy against a silent peer must fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deploy against a silent peer hung")
	}
	if c.Err() == nil {
		t.Fatal("timed-out deploy must mark the link broken")
	}
}

// TestShardConnStalledWorker: a worker that deploys fine but then stops
// acking (SIGSTOPped process, blackholed-but-ACKed link) exhausts the
// credit window; the sender must fail the link after the stall timeout
// instead of wedging forever (it may be the engine tick loop under the
// shard set's lock), and later barriers must fail fast.
func TestShardConnStalledWorker(t *testing.T) {
	old := remoteStallTimeout
	remoteStallTimeout = 100 * time.Millisecond
	t.Cleanup(func() { remoteStallTimeout = old })

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := newWireReader(conn)
		wr := &wireWriter{conn: conn}
		for {
			kind, body, err := r.next()
			if err != nil {
				return
			}
			br := &byteReader{b: body}
			id := br.uvarint()
			if kind == frameDeploy {
				var db deployBody
				if gob.NewDecoder(bytes.NewReader(br.rest())).Decode(&db) != nil {
					return
				}
				appendAckFrame(wr, id, db.Seq, 0, "")
				if wr.flush() != nil {
					return
				}
			}
			// Data frames are read but never acked: the worker "stalls".
		}
	}()

	c, err := DialShard(l.Addr().String(), NewCollector(tempSchema()))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// More batches than the credit window: the sender must hit the
		// stall timeout, not block forever.
		for i := 0; i < remoteInflight+2; i++ {
			if c.SendBatch(0, "s0", []data.Tuple{temp(int64(i+1), "L1", 1)}) != nil {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sender wedged on a stalled worker")
	}
	if c.Err() == nil {
		t.Fatal("stalled worker must mark the link broken")
	}
	if err := c.Flush(); err == nil {
		t.Fatal("flush after a stall must fail")
	}
	// Post-failure sends drop immediately — even with leftover credits —
	// instead of touching the dead socket.
	start := time.Now()
	if err := c.SendBatch(0, "s0", []data.Tuple{temp(99, "L9", 9)}); err == nil {
		t.Fatal("send on a broken link must error")
	}
	if time.Since(start) > remoteStallTimeout {
		t.Fatal("send on a broken link blocked instead of dropping")
	}
}

// TestShardSetAllRemoteTwoWorkers runs both shards of a set on two
// distinct workers: batch routing through RemoteHead.PushBatch, the
// multi-connection tick fan-out, and the concurrent barrier/close paths.
func TestShardSetAllRemoteTwoWorkers(t *testing.T) {
	mat := NewMaterialize(tempSchema())
	merge := NewMerge(mat)
	set := NewShardSet(2)
	heads := make([]Operator, 2)
	for j := 0; j < 2; j++ {
		w := startEchoWorker(t)
		c, err := DialShard(w.Addr(), merge)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Deploy(nil, j, nil); err != nil {
			t.Fatal(err)
		}
		set.SetRemote(j, c)
		heads[j] = c.Head(tempSchema(), j, "s0")
	}
	sh, err := NewSharder(set, heads, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	set.Start()

	const n = 40
	batch := make([]data.Tuple, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, temp(int64(i+1), fmt.Sprintf("L%d", i%5), float64(i)))
	}
	sh.PushBatch(batch)
	set.Flush()
	if mat.Len() != n {
		t.Fatalf("merged rows = %d, want %d", mat.Len(), n)
	}
	set.Advance(vtime.Time(time.Hour)) // multi-conn tick fan-out
	set.Flush()
	if mat.Len() != 0 {
		t.Fatalf("after expiry: %d live rows, want 0", mat.Len())
	}
	set.Close()
}

// TestShardSetTrackRemotePanics: replica windows of a remote shard are
// tracked by its worker, never locally.
func TestShardSetTrackRemotePanics(t *testing.T) {
	w := startEchoWorker(t)
	c, err := DialShard(w.Addr(), NewCollector(tempSchema()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	set := NewShardSet(2)
	set.SetRemote(1, c)
	defer func() {
		if recover() == nil {
			t.Fatal("Track on a remote shard must panic")
		}
	}()
	set.Track(1, NewNowWindow(NewCollector(tempSchema())))
}
