package stream

import (
	"fmt"
	"sync"
	"time"

	"aspen/internal/data"
)

// This file aims the failover machinery at planned topology change:
// Rescale moves shard replicas between workers (and in/out of the
// coordinator process) while the deployment keeps serving, and
// CheckpointAll snapshots every shard's operator state for durable
// coordinator snapshots. Both run under the exact lock ladder failover
// uses, so barriers stay exact throughout.
//
// # Rescale state machine
//
// A rescale moves only the shards whose home changes; untouched replicas
// never stop serving. For the moving set:
//
//	SERVING ──(acquire fmu, every Sharder lock, and the set write lock:
//	│          producers and the tick fan-out are excluded)──▶ QUIESCED
//	│
//	│   QUIESCED: barrier the local queues and flush every worker stream,
//	│   so every pre-rescale message is fully processed and the sink is
//	│   consistent.
//	│
//	QUIESCED ──(synchronous checkpoint of every source: worker streams
//	│           answer a checkpoint barrier — lazily armed with a replay
//	│           log if the set is elastic-only — and local replicas encode
//	│           their tracked Checkpointers)──▶ CHECKPOINTED. The replay
//	│           logs are empty afterwards (nothing was sent since the
//	│           quiesce), so no undo and no replay is needed: the planned
//	│           path skips the two failover stages that exist only because
//	│           failure strikes mid-epoch.
//	│
//	CHECKPOINTED ──(per moving shard: deploy spec+state onto the new home
//	│               — an existing healthy stream, a freshly dialed worker,
//	│               or an in-process replica — then flip the exchange
//	│               heads and shard routing, then frameUndeploy the old
//	│               replica)──▶ SERVING on the new topology. A worker
//	│               stream left hosting nothing is closed and dropped
//	│               from the barrier/tick set.
//	│
//	└──(any deploy fails)──▶ the rescale stops and reports the error;
//	    already-moved shards stay moved (the placement is valid, just not
//	    the requested one), un-moved shards keep their old home, and with
//	    failover armed a mid-rescale worker death queues an ordinary
//	    failover behind the rescale's fmu hold.
//
// Heal-back is the same path run toward the intended placement: shards a
// past failover stranded in-process (or piled onto a survivor) move back
// to a (re)joined worker, so the deployment converges instead of
// degrading monotonically.

// Rescale moves the set's replicas to a new placement: loc[j] names shard
// j's home worker address, "" keeps (or lands) shard j in-process. The
// set must be armed with EnableElastic or EnableFailover. Safe on a live
// deployment: producers block for the duration (like a failover) and
// Flush/Snapshot barriers stay exact. Returns on the first deploy error,
// leaving the deployment on a valid (possibly partially moved) topology.
func (s *ShardSet) Rescale(loc []string) error {
	if len(loc) != s.p {
		return fmt.Errorf("stream: Rescale placement names %d shards, set has %d", len(loc), s.p)
	}
	if s.fo == nil {
		return fmt.Errorf("stream: Rescale on a set without EnableElastic/EnableFailover")
	}
	return s.retryThroughFailover(func() error { return s.rescaleOnce(loc) })
}

// retryThroughFailover runs one control-plane operation, retrying when a
// worker link dies underneath it: the flush/checkpoint error queues an
// ordinary failover (the set is log-armed), which re-homes the dead link's
// shards, and the next attempt re-plans against the healed topology.
// Elastic-only sets have no failover to defer to, so errors are final.
func (s *ShardSet) retryThroughFailover(op func() error) error {
	const attempts = 10
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil || !s.fo.logs {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
	return err
}

func (s *ShardSet) rescaleOnce(loc []string) error {
	s.fo.waitIdle() // let a pending failover settle before re-planning
	s.fo.fmu.Lock()
	defer s.fo.fmu.Unlock()

	unlock := s.quiesce()
	defer unlock()
	if !s.started || s.closed {
		return fmt.Errorf("stream: Rescale on a stopped set")
	}

	var moved []int
	for j := 0; j < s.p; j++ {
		cur := ""
		if s.conns[j] != nil {
			cur = s.conns[j].addr
		}
		if loc[j] != cur {
			moved = append(moved, j)
		}
	}
	// Future failovers should dial the new topology.
	s.fo.cfg.Nodes = distinctAddrs(loc)
	if len(moved) == 0 {
		return nil
	}

	if err := s.drainLocked(); err != nil {
		return err
	}
	states, detach, err := s.checkpointShardsLocked(moved)
	defer detach()
	if err != nil {
		return err
	}
	return s.moveLocked(moved, loc, states)
}

// quiesce acquires the failover lock ladder — every Sharder's lock, then
// the set write lock — excluding all producers and the tick fan-out. The
// returned func releases everything.
func (s *ShardSet) quiesce() func() {
	s.mu.RLock()
	sharders := s.sharders
	s.mu.RUnlock()
	for _, sh := range sharders {
		sh.mu.Lock()
	}
	s.mu.Lock()
	return func() {
		s.mu.Unlock()
		for _, sh := range sharders {
			sh.mu.Unlock()
		}
	}
}

// drainLocked barriers every local queue and flushes every worker stream,
// so every message sent before the quiesce is fully processed. Caller
// holds the quiesce locks.
func (s *ShardSet) drainLocked() error {
	var wg sync.WaitGroup
	for j := 0; j < s.p; j++ {
		if s.conns[j] != nil || !s.running[j] {
			continue
		}
		wg.Add(1)
		s.queues[j] <- shardMsg{kind: msgBarrier, wg: &wg}
	}
	wg.Wait()
	for _, c := range s.uconns {
		if err := c.Flush(); err != nil {
			return fmt.Errorf("stream: rescale: flush %s: %w", c.addr, err)
		}
	}
	return nil
}

// checkpointShardsLocked takes a synchronous checkpoint of every listed
// shard — a checkpoint barrier per source worker stream (armed with a
// temporary replay log when the set is elastic-only), a local encode for
// in-process replicas — and returns the per-shard states. The returned
// detach func removes any temporarily attached logs; callers run it after
// the moves, still under the quiesce locks.
func (s *ShardSet) checkpointShardsLocked(shards []int) (map[int][]byte, func(), error) {
	states := map[int][]byte{}
	var temps []*ShardConn
	detach := func() {
		for _, c := range temps {
			c.flog = nil
		}
	}
	done := map[*ShardConn]bool{}
	for _, j := range shards {
		c := s.conns[j]
		if c == nil {
			st, err := EncodeCheckpoint(s.lcks[j])
			if err != nil {
				return nil, detach, fmt.Errorf("stream: rescale: checkpoint local shard %d: %w", j, err)
			}
			states[j] = st
			continue
		}
		if done[c] {
			continue
		}
		done[c] = true
		if c.flog == nil {
			// Elastic-only sets carry no replay log in steady state; attach
			// one just to receive the checkpoint states. Producers are
			// excluded, so nothing else can observe it.
			c.enableFailover(s.fo.cfg.CheckpointEvery, s.fo.cfg.CheckpointMaxLog)
			temps = append(temps, c)
		}
		if err := c.checkpointSync(); err != nil {
			return nil, detach, fmt.Errorf("stream: rescale: checkpoint %s: %w", c.addr, err)
		}
		if n := c.flog.pendingIn(); n != 0 {
			return nil, detach, fmt.Errorf("stream: rescale: %s still has %d unsnapshotted entries after a quiesced checkpoint", c.addr, n)
		}
		for k, st := range c.flog.statesCopy() {
			states[k] = st
		}
	}
	for _, j := range shards {
		if _, ok := states[j]; !ok {
			return nil, detach, fmt.Errorf("stream: rescale: no checkpoint for shard %d", j)
		}
	}
	return states, detach, nil
}

// moveLocked redeploys each moving shard onto its new home with its
// checkpointed state, flips routing, and tears the old replica down.
// Caller holds the quiesce locks and fmu.
func (s *ShardSet) moveLocked(moved []int, loc []string, states map[int][]byte) error {
	cfg := &s.fo.cfg
	sink := cfg.Sink
	send := ResultSender(func(ts []data.Tuple) error {
		PushBatch(sink, ts)
		return nil
	})
	findConn := func(addr string) (*ShardConn, error) {
		for _, u := range s.uconns {
			if u.addr == addr && u.Err() == nil {
				return u, nil
			}
		}
		c, err := dialShard(addr, sink, cfg.StallTimeout)
		if err != nil {
			return nil, err
		}
		if s.fo.logs {
			c.enableFailover(cfg.CheckpointEvery, cfg.CheckpointMaxLog)
			c.armFailover(s.connFailed)
		}
		return c, nil
	}
	vacated := map[*ShardConn]bool{}
	for _, j := range moved {
		old := s.conns[j]
		if loc[j] != "" {
			c, err := findConn(loc[j])
			if err != nil {
				return fmt.Errorf("stream: rescale shard %d: %w", j, err)
			}
			if err := c.Deploy(cfg.Spec, j, states[j]); err != nil {
				return fmt.Errorf("stream: rescale shard %d onto %s: %w", j, loc[j], err)
			}
			s.conns[j] = c
			s.advs[j] = nil
			s.lcks[j] = nil
			s.addConnLocked(c)
			for _, sh := range s.sharders {
				sh.heads[j] = c.Head(sh.schema, j, sh.name)
			}
		} else {
			if cfg.LocalDeploy == nil {
				return fmt.Errorf("stream: rescale shard %d in-process: no LocalDeploy configured", j)
			}
			heads, advs, cks, err := cfg.LocalDeploy(cfg.Spec, j, states[j], send)
			if err != nil {
				return fmt.Errorf("stream: rescale shard %d in-process: %w", j, err)
			}
			s.conns[j] = nil
			s.advs[j] = advs
			s.lcks[j] = cks
			for _, sh := range s.sharders {
				sh.heads[j] = heads[sh.name]
			}
			if !s.running[j] {
				s.running[j] = true
				s.wg.Add(1)
				go s.worker(j)
			}
		}
		if old != nil {
			vacated[old] = true
			// Best effort: a broken old link just means its replica died with
			// the worker; the shard already lives elsewhere.
			_ = old.Undeploy(j)
		}
	}
	// Close worker streams that no longer host any shard — the "leave" half
	// of elasticity releases the socket once the last deployment lets go.
	for c := range vacated {
		still := false
		for j := 0; j < s.p; j++ {
			if s.conns[j] == c {
				still = true
				break
			}
		}
		if !still {
			s.removeConnLocked(c)
			_ = c.Close()
		}
	}
	return nil
}

// distinctAddrs lists the distinct non-empty addresses of a placement in
// first-appearance order — the failover candidate list implied by it.
func distinctAddrs(loc []string) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range loc {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}

// Placement reports each shard's current home address ("" = in-process).
func (s *ShardSet) Placement() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc := make([]string, s.p)
	for j := 0; j < s.p; j++ {
		if s.conns[j] != nil {
			loc[j] = s.conns[j].addr
		}
	}
	return loc
}

// CheckpointAll quiesces the set, checkpoints every shard (remote and
// local alike), and returns the per-shard encoded operator states —
// the worker half of a durable coordinator snapshot. sidecar, when
// non-nil, runs under the same quiescent locks after the checkpoint, so
// the coordinator can snapshot its own serial-spine state at the exact
// same consistency point. Requires EnableElastic/EnableFailover arming.
func (s *ShardSet) CheckpointAll(sidecar func() error) (map[int][]byte, error) {
	if s.fo == nil {
		return nil, fmt.Errorf("stream: CheckpointAll on a set without EnableElastic/EnableFailover")
	}
	var states map[int][]byte
	err := s.retryThroughFailover(func() error {
		var cerr error
		states, cerr = s.checkpointAllOnce(sidecar)
		return cerr
	})
	return states, err
}

func (s *ShardSet) checkpointAllOnce(sidecar func() error) (map[int][]byte, error) {
	s.fo.waitIdle()
	s.fo.fmu.Lock()
	defer s.fo.fmu.Unlock()
	unlock := s.quiesce()
	defer unlock()
	if !s.started || s.closed {
		return nil, fmt.Errorf("stream: CheckpointAll on a stopped set")
	}
	if err := s.drainLocked(); err != nil {
		return nil, err
	}
	all := make([]int, s.p)
	for j := range all {
		all[j] = j
	}
	states, detach, err := s.checkpointShardsLocked(all)
	defer detach()
	if err != nil {
		return nil, err
	}
	if sidecar != nil {
		if err := sidecar(); err != nil {
			return nil, err
		}
	}
	return states, nil
}
