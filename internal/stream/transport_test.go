package stream

import (
	"net"
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

func TestInProcTransport(t *testing.T) {
	e := NewEngine("local", vtime.NewScheduler())
	in := e.MustRegister("s", tempSchema())
	col := NewCollector(tempSchema())
	in.Subscribe(col)

	tr := NewInProc(e)
	if err := tr.Send("s", temp(1, "L1", 20)); err != nil {
		t.Fatal(err)
	}
	if err := tr.SendBatch("s", []data.Tuple{temp(2, "L2", 21), temp(3, "L3", 22)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("missing", temp(1, "L1", 20)); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 3 {
		t.Fatal("tuples lost")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestServerSurvivesMalformedFrame injects truncated/garbage bytes where
// the server expects a gob frame: only the offending connection must die
// (the server closes it), while frames keep flowing on other connections.
func TestServerSurvivesMalformedFrame(t *testing.T) {
	remote := NewEngine("remote", vtime.NewScheduler())
	in := remote.MustRegister("s", tempSchema())
	col := NewCollector(tempSchema())
	in.Subscribe(col)

	srv, err := NewServer(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	good, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.Send("s", temp(1, "L1", 20)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return col.Len() == 1 })

	for name, garbage := range map[string][]byte{
		// A complete length prefix far past the frame-size bound: the
		// decoder fails without waiting for more bytes.
		"garbage": {0xFF, 0xFF, 0xFF, 0xFF},
		// A truncated frame: a plausible length prefix, then EOF.
		"truncated": {0x40, 0x01},
	} {
		t.Run(name, func(t *testing.T) {
			bad, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer bad.Close()
			if _, err := bad.Write(garbage); err != nil {
				t.Fatal(err)
			}
			if name == "truncated" {
				// Half-close so the decoder sees EOF mid-frame.
				bad.(*net.TCPConn).CloseWrite()
			}
			// The server must close only this connection: a read observes
			// EOF/reset rather than hanging.
			bad.SetReadDeadline(time.Now().Add(5 * time.Second))
			var buf [1]byte
			if _, err := bad.Read(buf[:]); err == nil {
				t.Fatal("server kept the malformed connection open")
			} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("server neither served nor closed the malformed connection")
			}

			// …while the healthy connection keeps delivering.
			before := col.Len()
			if err := good.Send("s", temp(2, "L2", 21)); err != nil {
				t.Fatal(err)
			}
			waitFor(t, func() bool { return col.Len() == before+1 })
		})
	}
}

func TestTCPTransportDelivers(t *testing.T) {
	remote := NewEngine("remote", vtime.NewScheduler())
	in := remote.MustRegister("s", tempSchema())
	col := NewCollector(tempSchema())
	in.Subscribe(col)

	srv, err := NewServer(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 10; i++ {
		if err := cl.Send("s", temp(int64(i), "L1", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return col.Len() == 10 })
	got := col.Snapshot()
	// ordering preserved on one connection
	for i := 0; i < 10; i++ {
		if got[i].Vals[1].AsFloat() != float64(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
	// polarity survives the wire
	if err := cl.Send("s", temp(99, "L1", 0).Negate()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return col.Len() == 11 })
	if col.Snapshot()[10].Op != data.Delete {
		t.Fatal("polarity lost on wire")
	}
}

func TestTCPTransportBatchDelivers(t *testing.T) {
	remote := NewEngine("remote", vtime.NewScheduler())
	in := remote.MustRegister("s", tempSchema())
	col := NewCollector(tempSchema())
	in.Subscribe(col)

	srv, err := NewServer(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	batch := make([]data.Tuple, 0, 10)
	for i := 0; i < 10; i++ {
		batch = append(batch, temp(int64(i+1), "L1", float64(i)))
	}
	batch[7] = batch[7].Negate()
	if err := cl.SendBatch("s", batch); err != nil {
		t.Fatal(err)
	}
	// Singles and batches interleave on one connection.
	if err := cl.Send("s", temp(99, "L2", 42)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return col.Len() == 11 })
	got := col.Snapshot()
	for i := 0; i < 10; i++ {
		if got[i].Vals[1].AsFloat() != float64(i) {
			t.Fatalf("batch order broken: %v", got)
		}
	}
	if got[7].Op != data.Delete {
		t.Fatal("polarity lost in batch")
	}
	if got[10].Vals[0].AsString() != "L2" {
		t.Fatal("single after batch lost")
	}
	if err := cl.SendBatch("s", nil); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
}

func TestTCPTransportUnknownInputDropped(t *testing.T) {
	remote := NewEngine("remote", vtime.NewScheduler())
	srv, err := NewServer(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Unknown input must not kill the connection.
	if err := cl.Send("nowhere", temp(1, "L1", 1)); err != nil {
		t.Fatal(err)
	}
	in := remote.MustRegister("s", tempSchema())
	col := NewCollector(tempSchema())
	in.Subscribe(col)
	if err := cl.Send("s", temp(2, "L1", 2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return col.Len() == 1 })
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestShipOperator(t *testing.T) {
	e := NewEngine("n", vtime.NewScheduler())
	in := e.MustRegister("s", tempSchema())
	col := NewCollector(tempSchema())
	in.Subscribe(col)

	ship := NewShip(tempSchema(), "s", NewInProc(e))
	ship.Push(temp(1, "L1", 20))
	if ship.Sent() != 1 || col.Len() != 1 {
		t.Fatal("ship failed")
	}
	ship.PushBatch([]data.Tuple{temp(2, "L2", 21), temp(3, "L3", 22)})
	ship.PushBatch(nil) // no-op
	if ship.Sent() != 3 || col.Len() != 3 {
		t.Fatal("ship batch failed")
	}
	if ship.Schema().Arity() != 2 {
		t.Fatal("ship schema")
	}
	// failed sends invoke OnError and are not counted
	var gotErr error
	bad := NewShip(tempSchema(), "missing", NewInProc(e))
	bad.OnError = func(err error) { gotErr = err }
	bad.Push(temp(1, "L1", 20))
	if bad.Sent() != 0 || gotErr == nil {
		t.Fatal("ship error path")
	}
	// without OnError the failure is silent
	bad2 := NewShip(tempSchema(), "missing", NewInProc(e))
	bad2.Push(temp(1, "L1", 20))
	if bad2.Sent() != 0 {
		t.Fatal("silent drop")
	}
}

// TestServerTickFrame: a tick frame on the plain engine transport advances
// the remote engine's tracked windows (cross-node Engine.Advance).
func TestServerTickFrame(t *testing.T) {
	remote := NewEngine("remote", vtime.NewScheduler())
	in := remote.MustRegister("s", tempSchema())
	col := NewCollector(tempSchema())
	win := NewTimeWindow(col, 2*time.Second, 0)
	remote.TrackWindow(win)
	in.Subscribe(win)

	srv, err := NewServer(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Send("s", temp(1, "L1", 20)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return col.Len() == 1 })
	if err := cl.SendTick(vtime.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// The expiry deletion proves the tick advanced the remote window.
	waitFor(t, func() bool { return col.Len() == 2 })
	if col.Snapshot()[1].Op != data.Delete {
		t.Fatal("tick did not expire the windowed tuple")
	}
}

// TestShardWorkerDisconnectMidEpoch: the worker dies while batches are in
// flight. The link error is sticky, later sends drop instead of blocking,
// flush barriers fail fast instead of hanging, and a ShardSet spanning the
// dead link still flushes and closes.
func TestShardWorkerDisconnectMidEpoch(t *testing.T) {
	w := startEchoWorker(t)
	mat := NewMaterialize(tempSchema())
	merge := NewMerge(mat)
	c, err := DialShard(w.Addr(), merge)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(0, "s0", []data.Tuple{temp(1, "L1", 20)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	w.Close() // mid-epoch: the coordinator still has batches to send

	// The reader notices the dead peer; sends and barriers then fail fast
	// (the first few sends may still land in the kernel buffer).
	waitFor(t, func() bool {
		c.SendBatch(0, "s0", []data.Tuple{temp(2, "L2", 21)})
		return c.Err() != nil
	})
	done := make(chan error, 1)
	go func() { done <- c.Flush() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("flush over a dead link must fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flush over a dead link hung")
	}

	// A set spanning the dead link barriers vacuously and closes cleanly.
	set := NewShardSet(1)
	set.SetRemote(0, c)
	set.Start()
	set.Advance(vtime.Time(time.Hour))
	set.Flush()
	set.Close()
}

// TestShardConnTruncatedBarrierAck: the worker answers a flush with a
// truncated/garbage ack and drops the link; the barrier must surface the
// decode error, not hang.
func TestShardConnTruncatedBarrierAck(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := newWireReader(conn)
		for {
			kind, _, err := r.next()
			if err != nil {
				return
			}
			if kind == frameFlush {
				// A plausible length prefix, then EOF: the ack truncates.
				conn.Write([]byte{0x40, 0x01, 0x00, 0x00})
				return
			}
		}
	}()

	c, err := DialShard(l.Addr().String(), NewCollector(tempSchema()))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Flush() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("truncated barrier ack must fail the flush")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("truncated barrier ack hung the flush")
	}
	if c.Err() == nil {
		t.Fatal("truncated ack must mark the link broken")
	}
}

// TestShardConnReconnectRefused: dialing a worker that is gone — both a
// never-listening port and a closed worker's stale address — is refused
// with an error rather than a hang, and the error names the address.
func TestShardConnReconnectRefused(t *testing.T) {
	if _, err := DialShard("127.0.0.1:1", NewCollector(tempSchema())); err == nil {
		t.Fatal("dial to a closed port must fail")
	}
	w := startEchoWorker(t)
	addr := w.Addr()
	w.Close()
	if _, err := DialShard(addr, NewCollector(tempSchema())); err == nil {
		t.Fatal("reconnect to a closed worker must be refused")
	}
}

// TestShardWorkerSurvivesMalformedFrame: garbage where the worker expects
// a shard frame kills only that connection; a healthy coordinator link on
// the same worker keeps its replicas served.
func TestShardWorkerSurvivesMalformedFrame(t *testing.T) {
	w := startEchoWorker(t)
	col := NewCollector(tempSchema())
	good, err := DialShard(w.Addr(), col)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.Deploy(nil, 0, nil); err != nil {
		t.Fatal(err)
	}

	bad, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	// A complete frame of an unknown kind: a non-protocol peer.
	if _, err := bad.Write([]byte{0x01, 0x00, 0x00, 0x00, 0xEE}); err != nil {
		t.Fatal(err)
	}
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf [1]byte
	if _, err := bad.Read(buf[:]); err == nil {
		t.Fatal("worker kept the malformed connection open")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("worker neither served nor closed the malformed connection")
	}

	if err := good.SendBatch(0, "s0", []data.Tuple{temp(1, "L1", 20)}); err != nil {
		t.Fatal(err)
	}
	if err := good.Flush(); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 1 {
		t.Fatal("healthy link lost its replica after a malformed peer")
	}
}

// Distributed plan: a filter runs on node A, ships to node B, which joins
// with a local stream — the paper's "computation pushed where appropriate".
func TestTwoNodeDistributedPipeline(t *testing.T) {
	nodeB := NewEngine("pcB", vtime.NewScheduler())
	shipped := nodeB.MustRegister("TempsFiltered", tempSchema())
	seat := data.NewSchema("ss", data.Col("room", data.TString))
	seat.IsStream = true
	seats := nodeB.MustRegister("Seats", seat)

	mat := NewMaterialize(tempSchema().Concat(seat))
	j, err := NewJoin(mat, tempSchema(), seat, []string{"t.room"}, []string{"ss.room"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	shipped.Subscribe(j.Left())
	seats.Subscribe(j.Right())

	srv, err := NewServer(nodeB, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// node A: filter hot temps, ship the survivors to node B.
	nodeA := NewEngine("pcA", vtime.NewScheduler())
	temps := nodeA.MustRegister("Temps", tempSchema())
	link, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	hot := NewFilter(NewShip(tempSchema(), "TempsFiltered", link),
		expr.MustBind(expr.Bin{Op: expr.OpGt, L: expr.C("temp"), R: expr.L(30.0)}, tempSchema()))
	temps.Subscribe(hot)

	seats.Push(data.NewTuple(1, data.Str("L1")))
	temps.Push(temp(1, "L1", 50)) // passes filter, joins
	temps.Push(temp(2, "L1", 10)) // filtered on node A

	waitFor(t, func() bool { return mat.Len() == 1 })
	snap := mat.MustSnapshot(nil, -1)
	if snap[0].Vals[1].AsFloat() != 50 {
		t.Fatalf("distributed result = %v", snap)
	}
}
