package stream

import (
	"fmt"
	"sort"
	"sync"

	"aspen/internal/data"
)

// OrderSpec is one sort key for snapshots.
type OrderSpec struct {
	Col  string
	Desc bool
}

// Materialize maintains the current multiset of result tuples of a
// continuous query. Displays take ordered snapshots from it — this is how
// ORDER BY / LIMIT are given meaning over unbounded streams, and how the
// SmartCIS GUI renders live results (§4).
//
// Rows are keyed by 64-bit hashes of the full canonical key with
// collision buckets verified by EqualVals, and retired rows feed a small
// freelist, so the steady-state retract/insert churn of upstream
// aggregates allocates nothing.
type Materialize struct {
	mu     sync.Mutex
	schema *data.Schema
	rows   map[uint64][]*matRow
	n      int // distinct rows
	free   []*matRow
	hasher data.Hasher
	// OnChange, when set, fires after every mutation; the GUI uses it to
	// repaint.
	OnChange func()
	version  uint64
}

type matRow struct {
	t     data.Tuple
	count int
}

// freelistCap bounds retained retired rows.
const freelistCap = 1024

// NewMaterialize creates an empty materialized result with the schema.
func NewMaterialize(schema *data.Schema) *Materialize {
	return &Materialize{schema: schema, rows: map[uint64][]*matRow{}}
}

// Schema implements Operator.
func (m *Materialize) Schema() *data.Schema { return m.schema }

// apply performs one mutation under m.mu.
func (m *Materialize) apply(t data.Tuple) {
	key := m.hasher.Hash(t) & testHashMask
	bucket := m.rows[key]
	slot := -1
	for i, r := range bucket {
		if r.t.EqualVals(t) {
			slot = i
			break
		}
	}
	switch t.Op {
	case data.Insert:
		if slot >= 0 {
			bucket[slot].count++
			break
		}
		var r *matRow
		if n := len(m.free); n > 0 {
			r = m.free[n-1]
			m.free = m.free[:n-1]
			r.t = t.CloneInto(r.t.Vals)
		} else {
			r = &matRow{t: t.Clone()}
		}
		r.count = 1
		m.rows[key] = append(bucket, r)
		m.n++
	case data.Delete:
		if slot < 0 {
			break
		}
		r := bucket[slot]
		r.count--
		if r.count <= 0 {
			bucket[slot] = bucket[len(bucket)-1]
			bucket[len(bucket)-1] = nil
			m.rows[key] = bucket[:len(bucket)-1]
			if len(m.rows[key]) == 0 {
				delete(m.rows, key)
			}
			m.n--
			if len(m.free) < freelistCap {
				m.free = append(m.free, r)
			}
		}
	}
	m.version++
}

// Push implements Operator.
func (m *Materialize) Push(t data.Tuple) {
	m.mu.Lock()
	m.apply(t)
	cb := m.OnChange
	m.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// PushBatch implements BatchOperator: one lock acquisition and one
// OnChange notification per batch.
func (m *Materialize) PushBatch(ts []data.Tuple) {
	if len(ts) == 0 {
		return
	}
	m.mu.Lock()
	for _, t := range ts {
		m.apply(t)
	}
	cb := m.OnChange
	m.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// ChainOnChange installs fn to run after any already-installed OnChange
// hook, atomically with respect to concurrent mutations — use it instead
// of writing the OnChange field once the materialize may be receiving
// pushes (e.g. from shard workers).
func (m *Materialize) ChainOnChange(fn func()) {
	m.mu.Lock()
	prev := m.OnChange
	if prev == nil {
		m.OnChange = fn
	} else {
		m.OnChange = func() { prev(); fn() }
	}
	m.mu.Unlock()
}

// Len returns the number of distinct rows currently in the result.
func (m *Materialize) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Version increments on every mutation; displays poll it cheaply.
func (m *Materialize) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Snapshot returns the current result ordered by the given keys (ties
// broken by canonical key for determinism), truncated to limit when
// limit >= 0. Duplicate rows appear with their multiplicity.
func (m *Materialize) Snapshot(order []OrderSpec, limit int) ([]data.Tuple, error) {
	idx := make([]int, len(order))
	for i, o := range order {
		j, err := m.schema.ColIndex(o.Col)
		if err != nil {
			return nil, fmt.Errorf("stream: snapshot order: %w", err)
		}
		idx[i] = j
	}
	m.mu.Lock()
	out := make([]data.Tuple, 0, m.n)
	for _, bucket := range m.rows {
		for _, r := range bucket {
			for i := 0; i < r.count; i++ {
				out = append(out, r.t.Clone())
			}
		}
	}
	m.mu.Unlock()

	sort.Slice(out, func(a, b int) bool {
		for k, j := range idx {
			c, ok := out[a].Vals[j].Compare(out[b].Vals[j])
			if !ok || c == 0 {
				// NULLs and ties fall through to the next key
				if ok && c == 0 {
					continue
				}
				// order NULLs first deterministically
				an, bn := out[a].Vals[j].IsNull(), out[b].Vals[j].IsNull()
				if an != bn {
					return an && !order[k].Desc || !an && order[k].Desc
				}
				continue
			}
			if order[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return out[a].Key() < out[b].Key()
	})
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// MustSnapshot is Snapshot for statically correct order keys.
func (m *Materialize) MustSnapshot(order []OrderSpec, limit int) []data.Tuple {
	out, err := m.Snapshot(order, limit)
	if err != nil {
		panic(err)
	}
	return out
}
